# End-to-end CLI smoke: generate a small grid instance, then answer a KOSR
# query on it. Each step must exit 0 and print its expected marker.
if(NOT DEFINED CLI OR NOT DEFINED SCRATCH)
  message(FATAL_ERROR "smoke_cli_roundtrip.cmake needs -DCLI=... and -DSCRATCH=...")
endif()

file(REMOVE_RECURSE ${SCRATCH})
file(MAKE_DIRECTORY ${SCRATCH})

function(run_step marker)
  execute_process(COMMAND ${CLI} ${ARGN}
    WORKING_DIRECTORY ${SCRATCH}
    OUTPUT_VARIABLE _stdout
    ERROR_VARIABLE _stderr
    RESULT_VARIABLE _exit)
  if(NOT _exit EQUAL 0)
    message(FATAL_ERROR
      "kosr_cli ${ARGN} exited with ${_exit}\nstdout:\n${_stdout}\nstderr:\n${_stderr}")
  endif()
  string(FIND "${_stdout}" "${marker}" _pos)
  if(_pos EQUAL -1)
    message(FATAL_ERROR
      "kosr_cli ${ARGN} exited 0 but stdout lacks marker '${marker}'\nstdout:\n${_stdout}")
  endif()
endfunction()

run_step("wrote graph.gr"
  generate --type grid --rows 16 --cols 16 --seed 7
  --out graph.gr --categories-out cats.txt --category-size 12)

run_step("vertices: 256"
  stats --graph graph.gr --categories cats.txt)

run_step("routes:"
  query --graph graph.gr --categories cats.txt
  --source 0 --target 255 --sequence 0,1,2 --k 3
  --algorithm sk --nn hoplabel --paths 1)

message(STATUS "smoke OK: CLI generate -> stats -> query round trip")
