# Runs CMD (plus optional ARGS) and fails unless it exits 0 AND its stdout
# contains the literal MARKER string. Used by the smoke CTest entries.
if(NOT DEFINED CMD OR NOT DEFINED MARKER)
  message(FATAL_ERROR "run_smoke.cmake needs -DCMD=... and -DMARKER=...")
endif()

execute_process(COMMAND ${CMD} ${ARGS}
  OUTPUT_VARIABLE _stdout
  ERROR_VARIABLE _stderr
  RESULT_VARIABLE _exit)

if(NOT _exit EQUAL 0)
  message(FATAL_ERROR
    "smoke command '${CMD}' exited with ${_exit}\nstdout:\n${_stdout}\nstderr:\n${_stderr}")
endif()
string(FIND "${_stdout}" "${MARKER}" _pos)
if(_pos EQUAL -1)
  message(FATAL_ERROR
    "smoke command '${CMD}' exited 0 but stdout lacks marker '${MARKER}'\nstdout:\n${_stdout}")
endif()
message(STATUS "smoke OK: '${MARKER}' found, exit 0")
