# End-to-end serving-layer smoke: generate a grid instance, persist an
# index snapshot with build-index, then pipe a protocol script through
# `kosr_cli serve` and check the response markers (ISSUE 2 satellite).
if(NOT DEFINED CLI OR NOT DEFINED SCRATCH)
  message(FATAL_ERROR "smoke_serve.cmake needs -DCLI=... and -DSCRATCH=...")
endif()

file(REMOVE_RECURSE ${SCRATCH})
file(MAKE_DIRECTORY ${SCRATCH})

function(run_step marker)
  execute_process(COMMAND ${CLI} ${ARGN}
    WORKING_DIRECTORY ${SCRATCH}
    OUTPUT_VARIABLE _stdout
    ERROR_VARIABLE _stderr
    RESULT_VARIABLE _exit)
  if(NOT _exit EQUAL 0)
    message(FATAL_ERROR
      "kosr_cli ${ARGN} exited with ${_exit}\nstdout:\n${_stdout}\nstderr:\n${_stderr}")
  endif()
  string(FIND "${_stdout}" "${marker}" _pos)
  if(_pos EQUAL -1)
    message(FATAL_ERROR
      "kosr_cli ${ARGN} exited 0 but stdout lacks marker '${marker}'\nstdout:\n${_stdout}")
  endif()
endfunction()

run_step("wrote graph.gr"
  generate --type grid --rows 16 --cols 16 --seed 7
  --out graph.gr --categories-out cats.txt --category-size 12)

run_step("wrote index snapshot"
  build-index --graph graph.gr --categories cats.txt --indexes-out idx.bin)

# Protocol script: two identical queries (the second must be a cache hit),
# a different method, each dynamic-update entry point — including the full
# SET_EDGE increase and REMOVE_EDGE repair paths — metrics, and QUIT.
file(WRITE ${SCRATCH}/requests.txt
"# smoke_serve protocol script
PING
QUERY 0 255 0,1,2 3
QUERY 0 255 0,1,2 3
QUERY 0 255 0,1,2 3 pk
ADD_CAT 5 0
REMOVE_CAT 5 0
ADD_EDGE 0 255 1
QUERY 0 255 0,1,2 3
SET_EDGE 0 255 9000
QUERY 0 255 0,1,2 3
REMOVE_EDGE 0 255
QUERY 0 255 0,1,2 3
METRICS
QUIT
")

execute_process(
  COMMAND ${CLI} serve --graph graph.gr --categories cats.txt
    --indexes idx.bin --workers 2 --queue-capacity 16 --cache-capacity 64
  WORKING_DIRECTORY ${SCRATCH}
  INPUT_FILE ${SCRATCH}/requests.txt
  OUTPUT_VARIABLE _stdout
  ERROR_VARIABLE _stderr
  RESULT_VARIABLE _exit)
if(NOT _exit EQUAL 0)
  message(FATAL_ERROR
    "kosr_cli serve exited with ${_exit}\nstdout:\n${_stdout}\nstderr:\n${_stderr}")
endif()

foreach(_marker
    "ready workers=2"
    "OK PONG"
    "OK ROUTES n=3"
    "cached=1"
    "OK UPDATED"
    "OK UPDATED changed=1"
    "OK METRICS {\"uptime_s\""
    "\"hits\":"
    "OK BYE"
    "served 14 requests")
  string(FIND "${_stdout}" "${_marker}" _pos)
  if(_pos EQUAL -1)
    message(FATAL_ERROR
      "serve output lacks marker '${_marker}'\nstdout:\n${_stdout}")
  endif()
endforeach()

# Graceful-shutdown leg (ISSUE 9 satellite): SIGTERM a journaled server
# mid-session and require a clean exit — drain, final checkpoint, exit 0
# with the "clean shutdown" marker. Driven from bash so a signal can be
# delivered while the server blocks reading a pipe.
find_program(_bash bash)
if(_bash)
  file(WRITE ${SCRATCH}/sigterm.sh
"set -e
cd '${SCRATCH}'
mkfifo serve_in
'${CLI}' serve --graph graph.gr --categories cats.txt --indexes idx.bin \\
  --journal jdir --fsync-policy always < serve_in > serve_out 2>serve_err &
pid=\$!
exec 3>serve_in
printf 'PING\\nSET_EDGE 0 255 123\\n' >&3
for i in \$(seq 1 100); do
  grep -q 'OK UPDATED' serve_out 2>/dev/null && break
  sleep 0.1
done
kill -TERM \$pid
wait \$pid
")
  execute_process(COMMAND ${_bash} ${SCRATCH}/sigterm.sh
    RESULT_VARIABLE _exit
    OUTPUT_VARIABLE _stdout
    ERROR_VARIABLE _stderr)
  file(READ ${SCRATCH}/serve_out _serve_out)
  if(NOT _exit EQUAL 0)
    message(FATAL_ERROR
      "SIGTERM shutdown: server did not exit 0 (got ${_exit})\nserve_out:\n${_serve_out}\nstderr:\n${_stderr}")
  endif()
  foreach(_marker "OK PONG" "OK UPDATED" "clean shutdown")
    string(FIND "${_serve_out}" "${_marker}" _pos)
    if(_pos EQUAL -1)
      message(FATAL_ERROR
        "SIGTERM shutdown output lacks marker '${_marker}'\nserve_out:\n${_serve_out}")
    endif()
  endforeach()
  # The shutdown checkpoint must exist and the journal must be truncated
  # down to its header (no pending records).
  if(NOT EXISTS ${SCRATCH}/jdir/checkpoint/MANIFEST)
    message(FATAL_ERROR "SIGTERM shutdown left no checkpoint manifest")
  endif()
else()
  message(STATUS "bash not found - skipping the SIGTERM shutdown leg")
endif()

# TCP transport leg (ISSUE 10): the same protocol script over real sockets.
# `serve --listen 127.0.0.1:0` binds an ephemeral port and advertises it in
# the ready line; kosr_net_client pipelines the script through the binary
# framing (--window 1 keeps the duplicate query a deterministic cache hit)
# and must print the exact same markers the stdio transport produced. The
# server is then SIGTERMed and must drain to a clean exit.
if(_bash AND DEFINED NETCLIENT)
  file(WRITE ${SCRATCH}/tcp.sh
"set -e
cd '${SCRATCH}'
'${CLI}' serve --graph graph.gr --categories cats.txt --indexes idx.bin \\
  --workers 2 --queue-capacity 16 --cache-capacity 64 \\
  --listen 127.0.0.1:0 < /dev/null > serve_tcp_out 2>serve_tcp_err &
pid=\$!
port=''
for i in \$(seq 1 100); do
  port=\$(sed -n 's/.*listen=127\\.0\\.0\\.1:\\([0-9]*\\).*/\\1/p' serve_tcp_out 2>/dev/null)
  [ -n \"\$port\" ] && break
  sleep 0.1
done
[ -n \"\$port\" ] || { echo 'no listen port in ready line' >&2; exit 1; }
'${NETCLIENT}' --connect 127.0.0.1:\$port --window 1 < requests.txt > tcp_out
kill -TERM \$pid
wait \$pid
")
  execute_process(COMMAND ${_bash} ${SCRATCH}/tcp.sh
    RESULT_VARIABLE _exit
    OUTPUT_VARIABLE _stdout
    ERROR_VARIABLE _stderr)
  file(READ ${SCRATCH}/serve_tcp_out _serve_tcp_out)
  if(NOT _exit EQUAL 0)
    message(FATAL_ERROR
      "TCP leg: server did not exit 0 (got ${_exit})\nserver:\n${_serve_tcp_out}\nstderr:\n${_stderr}")
  endif()
  file(READ ${SCRATCH}/tcp_out _tcp_out)
  foreach(_marker
      "OK PONG"
      "OK ROUTES n=3"
      "cached=1"
      "OK UPDATED changed=1"
      "OK METRICS {\"uptime_s\""
      "\"net\":{\"enabled\":true"
      "OK BYE")
    string(FIND "${_tcp_out}" "${_marker}" _pos)
    if(_pos EQUAL -1)
      message(FATAL_ERROR
        "TCP client output lacks marker '${_marker}'\ntcp_out:\n${_tcp_out}")
    endif()
  endforeach()
  foreach(_marker "listen=127.0.0.1:" "served 14 frames" "clean shutdown")
    string(FIND "${_serve_tcp_out}" "${_marker}" _pos)
    if(_pos EQUAL -1)
      message(FATAL_ERROR
        "TCP server output lacks marker '${_marker}'\nserver:\n${_serve_tcp_out}")
    endif()
  endforeach()
else()
  message(STATUS "bash or NETCLIENT missing - skipping the TCP transport leg")
endif()

message(STATUS "smoke OK: generate -> build-index -> serve protocol round trip")
