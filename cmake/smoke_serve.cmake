# End-to-end serving-layer smoke: generate a grid instance, persist an
# index snapshot with build-index, then pipe a protocol script through
# `kosr_cli serve` and check the response markers (ISSUE 2 satellite).
if(NOT DEFINED CLI OR NOT DEFINED SCRATCH)
  message(FATAL_ERROR "smoke_serve.cmake needs -DCLI=... and -DSCRATCH=...")
endif()

file(REMOVE_RECURSE ${SCRATCH})
file(MAKE_DIRECTORY ${SCRATCH})

function(run_step marker)
  execute_process(COMMAND ${CLI} ${ARGN}
    WORKING_DIRECTORY ${SCRATCH}
    OUTPUT_VARIABLE _stdout
    ERROR_VARIABLE _stderr
    RESULT_VARIABLE _exit)
  if(NOT _exit EQUAL 0)
    message(FATAL_ERROR
      "kosr_cli ${ARGN} exited with ${_exit}\nstdout:\n${_stdout}\nstderr:\n${_stderr}")
  endif()
  string(FIND "${_stdout}" "${marker}" _pos)
  if(_pos EQUAL -1)
    message(FATAL_ERROR
      "kosr_cli ${ARGN} exited 0 but stdout lacks marker '${marker}'\nstdout:\n${_stdout}")
  endif()
endfunction()

run_step("wrote graph.gr"
  generate --type grid --rows 16 --cols 16 --seed 7
  --out graph.gr --categories-out cats.txt --category-size 12)

run_step("wrote index snapshot"
  build-index --graph graph.gr --categories cats.txt --indexes-out idx.bin)

# Protocol script: two identical queries (the second must be a cache hit),
# a different method, each dynamic-update entry point — including the full
# SET_EDGE increase and REMOVE_EDGE repair paths — metrics, and QUIT.
file(WRITE ${SCRATCH}/requests.txt
"# smoke_serve protocol script
PING
QUERY 0 255 0,1,2 3
QUERY 0 255 0,1,2 3
QUERY 0 255 0,1,2 3 pk
ADD_CAT 5 0
REMOVE_CAT 5 0
ADD_EDGE 0 255 1
QUERY 0 255 0,1,2 3
SET_EDGE 0 255 9000
QUERY 0 255 0,1,2 3
REMOVE_EDGE 0 255
QUERY 0 255 0,1,2 3
METRICS
QUIT
")

execute_process(
  COMMAND ${CLI} serve --graph graph.gr --categories cats.txt
    --indexes idx.bin --workers 2 --queue-capacity 16 --cache-capacity 64
  WORKING_DIRECTORY ${SCRATCH}
  INPUT_FILE ${SCRATCH}/requests.txt
  OUTPUT_VARIABLE _stdout
  ERROR_VARIABLE _stderr
  RESULT_VARIABLE _exit)
if(NOT _exit EQUAL 0)
  message(FATAL_ERROR
    "kosr_cli serve exited with ${_exit}\nstdout:\n${_stdout}\nstderr:\n${_stderr}")
endif()

foreach(_marker
    "ready workers=2"
    "OK PONG"
    "OK ROUTES n=3"
    "cached=1"
    "OK UPDATED"
    "OK UPDATED changed=1"
    "OK METRICS {\"uptime_s\""
    "\"hits\":"
    "OK BYE"
    "served 14 requests")
  string(FIND "${_stdout}" "${_marker}" _pos)
  if(_pos EQUAL -1)
    message(FATAL_ERROR
      "serve output lacks marker '${_marker}'\nstdout:\n${_stdout}")
  endif()
endforeach()

message(STATUS "smoke OK: generate -> build-index -> serve protocol round trip")
