# Failpoint self-test (ISSUE 9 satellite): proves that arming a durability
# failpoint through the KOSR_FAILPOINTS environment variable makes a real
# `kosr_cli serve` process die with the distinctive crash exit code (97) at
# the injection point — the mechanism the crash-recovery harness depends on.
# Also checks that a malformed spec is rejected loudly instead of silently
# disabling injection.
if(NOT DEFINED CLI OR NOT DEFINED SCRATCH)
  message(FATAL_ERROR "smoke_failpoint.cmake needs -DCLI=... and -DSCRATCH=...")
endif()

file(REMOVE_RECURSE ${SCRATCH})
file(MAKE_DIRECTORY ${SCRATCH})

execute_process(COMMAND ${CLI}
  generate --type grid --rows 8 --cols 8 --seed 3
  --out graph.gr --categories-out cats.txt --category-size 8
  WORKING_DIRECTORY ${SCRATCH}
  RESULT_VARIABLE _exit OUTPUT_QUIET)
if(NOT _exit EQUAL 0)
  message(FATAL_ERROR "generate failed with ${_exit}")
endif()

file(WRITE ${SCRATCH}/requests.txt "SET_EDGE 0 1 5\nQUIT\n")

# Armed: the update's journal append hits the failpoint and the process
# _Exits(97) before responding.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env KOSR_FAILPOINTS=journal-after-append=crash
    ${CLI} serve --graph graph.gr --categories cats.txt --journal jdir
  WORKING_DIRECTORY ${SCRATCH}
  INPUT_FILE ${SCRATCH}/requests.txt
  OUTPUT_VARIABLE _stdout
  ERROR_VARIABLE _stderr
  RESULT_VARIABLE _exit)
if(NOT _exit EQUAL 97)
  message(FATAL_ERROR
    "armed failpoint: expected exit 97, got ${_exit}\nstdout:\n${_stdout}\nstderr:\n${_stderr}")
endif()
string(FIND "${_stderr}" "failpoint journal-after-append" _pos)
if(_pos EQUAL -1)
  message(FATAL_ERROR
    "armed failpoint fired but stderr lacks the failpoint marker\nstderr:\n${_stderr}")
endif()

# The journaled-but-unacked record must survive: restarting over the same
# journal directory replays it.
execute_process(
  COMMAND ${CLI} serve --graph graph.gr --categories cats.txt --journal jdir
  WORKING_DIRECTORY ${SCRATCH}
  INPUT_FILE ${SCRATCH}/requests.txt
  OUTPUT_VARIABLE _stdout
  RESULT_VARIABLE _exit)
if(NOT _exit EQUAL 0)
  message(FATAL_ERROR "recovery serve exited with ${_exit}\nstdout:\n${_stdout}")
endif()
string(FIND "${_stdout}" "replayed=1" _pos)
if(_pos EQUAL -1)
  message(FATAL_ERROR
    "recovery serve did not replay the crashed append\nstdout:\n${_stdout}")
endif()

# Malformed spec: refuse to start rather than run with injection silently off.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env KOSR_FAILPOINTS=not-a-valid-spec
    ${CLI} serve --graph graph.gr --categories cats.txt
  WORKING_DIRECTORY ${SCRATCH}
  INPUT_FILE ${SCRATCH}/requests.txt
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE _exit)
if(_exit EQUAL 0)
  message(FATAL_ERROR "malformed KOSR_FAILPOINTS spec was silently accepted")
endif()

message(STATUS "smoke OK: env-armed failpoint crashes at 97 and recovery replays")
