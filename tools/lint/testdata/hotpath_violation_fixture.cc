// Seeded-violation fixture for hotpath_lint.py --self-test. NOT compiled,
// NOT part of the build: this file exists so CI can prove the allocation
// lint actually rejects what it claims to reject. The self-test requires
// the checker to report EXACTLY the five violations marked below and none
// of the allowed uses — if a checker regression stops catching one (or
// starts flagging the legal patterns), the lint test itself turns red.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

namespace kosr::lint_fixture {

struct KosrScratch {
  std::vector<int> found;  // arena member: growth is the design
};

// A declaration only: must not confuse the function finder.
int SealedMergeJoin(const std::vector<int>& runs, KosrScratch& scratch);

int SealedMergeJoin(const std::vector<int>& runs, KosrScratch& scratch) {
  // Allowed: reference binding, pointer, member growth, arena construction.
  const std::vector<int>& view = runs;
  const std::vector<int>* ptr = &runs;
  scratch.found.push_back(static_cast<int>(view.size() + (ptr != nullptr)));
  KosrScratch local;

  // VIOLATION 1: fresh container per call.
  std::vector<int> merged;
  merged.push_back(1);

  // VIOLATION 2: operator new.
  int* leak = new int(42);
  int result = *leak + merged.front() + static_cast<int>(local.found.size());
  delete leak;
  return result;
}

int SealedCursorStep(int x) {
  // VIOLATION 3: allocating temporary.
  int len = static_cast<int>(std::string("step").size());

  // VIOLATION 4: malloc on the hot path.
  void* raw = std::malloc(16);
  std::free(raw);

  // Allowed: reasoned suppression (e.g. one-time setup path).
  std::vector<int> setup;  // hotpath-lint: allow(cold setup branch, runs once)
  setup.push_back(x);

  return len + setup.front();
}

// Mirrors the ISSUE-7 counter-bump discipline: an instrumented hot function
// may only touch plain thread-local slots. A "counter" kept in a heap
// container is exactly the regression the lint must keep out.
uint64_t tls_slot;

uint64_t SealedCounterBump(uint64_t n) {
  // Allowed: the real pattern — a plain TLS slot add, no allocation.
  tls_slot += n;

  // VIOLATION 5: allocating counter storage on the hot path.
  std::unordered_map<std::string, uint64_t> by_name;
  by_name["label_queries"] += n;
  return tls_slot + by_name.size();
}

}  // namespace kosr::lint_fixture
