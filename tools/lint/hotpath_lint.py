#!/usr/bin/env python3
"""Project lint: no allocation on the sealed KOSR query hot path.

PR 4 sealed the query hot path (ISSUE 4): after index build, answering a
query must not allocate — every growing container lives in the per-thread
KosrScratch arena, and the label merge-join walks sentinel-terminated flat
runs. That invariant is what keeps tail latency flat under the service's
worker pool, and nothing in the type system defends it: one innocent
`std::vector<...> tmp;` inside a cursor would silently reintroduce a malloc
per NN step. This checker makes the invariant a build failure.

What it checks, per (file, function) target in hotpath_lint.json:

  * no `new` expressions and no malloc-family calls;
  * no construction of growing standard containers (vector, deque, string,
    map/set families, list, function, stringstream family) — declaring an
    object or materializing a temporary is flagged; references, pointers,
    and type-position mentions (template arguments, parameter types of
    local lambdas) are not, since they don't allocate.

Member-container *growth* (e.g. `found_.push_back(...)` on a KosrScratch
member) is deliberately allowed: the arena's amortized growth is the design
— the ban is on creating fresh containers per query. Constructing a
KosrScratch itself is likewise fine (it is the arena).

A finding can be waived inline with a reasoned suppression on its line:

    std::vector<int> once;  // hotpath-lint: allow(built once at setup)

The reason is mandatory; a bare `hotpath-lint: allow` does not suppress.

The checker also enforces the annotation-escape ban from src/util/sync.h:
KOSR_NO_THREAD_SAFETY_ANALYSIS must not appear anywhere in src/service/ or
src/util/parallel.h (the thread-safety analysis gate is only meaningful if
nothing opts out).

Targets that no longer resolve (file missing, function renamed) are hard
errors, so the config cannot silently rot.

Usage:
  hotpath_lint.py [--root REPO_ROOT] [--config CONFIG_JSON]
  hotpath_lint.py --self-test   # verify the checker itself catches/allows

Exit code 0 = clean, 1 = findings (or self-test failure), 2 = bad config.
Pure standard library; runs anywhere Python 3.8+ exists.
"""

import argparse
import json
import pathlib
import re
import sys

# Growing standard containers whose construction allocates (or will on
# first use). Fixed-size std::array and views (span, string_view) are
# absent on purpose: they never allocate.
GROWING_CONTAINERS = (
    "vector|deque|list|forward_list|string|basic_string|"
    "map|multimap|unordered_map|unordered_multimap|"
    "set|multiset|unordered_set|unordered_multiset|"
    "function|stringstream|ostringstream|istringstream"
)

CONTAINER_RE = re.compile(r"\bstd\s*::\s*(" + GROWING_CONTAINERS + r")\b")
NEW_RE = re.compile(r"\bnew\b")
MALLOC_RE = re.compile(
    r"\b(malloc|calloc|realloc|strdup|strndup|aligned_alloc|posix_memalign)"
    r"\s*\("
)
SUPPRESS_RE = re.compile(r"hotpath-lint:\s*allow\(([^)]+)\)")
ESCAPE_MACRO = "KOSR_NO_THREAD_SAFETY_ANALYSIS"
# Paths where the escape hatch is banned outright (sync.h documents this).
ESCAPE_BAN_PATHS = ("src/service/", "src/util/parallel.h")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines and
    column positions so findings report real locations. Returns (stripped,
    suppressed) where suppressed maps 1-based line -> suppression reason."""
    suppressed = {}
    out = list(text)
    i, n = 0, len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j == -1 else j
            m = SUPPRESS_RE.search(text[i:j])
            if m:
                suppressed[line] = m.group(1).strip()
            for k in range(i, j):
                out[k] = " "
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            m = SUPPRESS_RE.search(text[i : j + 2])
            if m:
                suppressed[line] = m.group(1).strip()
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            line += text.count("\n", i, j + 2)
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            line += text.count("\n", i, min(j + 1, n))
            i = j + 1
        else:
            i += 1
    return "".join(out), suppressed


def match_balanced(text, start, open_ch, close_ch):
    """Index just past the token balancing text[start] (an open_ch)."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def skip_ws(text, i):
    while i < len(text) and text[i].isspace():
        i += 1
    return i


def find_function_bodies(stripped, name):
    """Yield (start, end) character spans of every *definition* of `name`
    in comment/string-stripped source. A definition is `name ( params )`
    followed — possibly after const/noexcept/attribute-macro/trailing-return
    tokens — by `{`; anything else (declaration `;`, plain call in an
    expression) is skipped."""
    for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", stripped):
        paren_open = stripped.index("(", m.start())
        after_params = match_balanced(stripped, paren_open, "(", ")")
        i = skip_ws(stripped, after_params)
        # Tolerate the tokens C++ allows between the parameter list and the
        # body: const, noexcept(...), override/final, KOSR_* annotation
        # macros with arguments, and a trailing return type.
        while i < len(stripped):
            if stripped.startswith("->", i):
                i += 2
                continue
            word = re.match(r"[A-Za-z_][A-Za-z0-9_:<>,&*\s]*", stripped[i:])
            if stripped[i] == "(":
                i = match_balanced(stripped, i, "(", ")")
                continue
            if word and stripped[i] not in "{;":
                i += word.end()
                i = skip_ws(stripped, i)
                continue
            break
        if i < len(stripped) and stripped[i] == "{":
            yield i, match_balanced(stripped, i, "{", "}")


def container_is_object(stripped, match_end):
    """True when the std::container mention at match_end declares an object
    or materializes a temporary (allocating uses); False for reference /
    pointer declarations and pure type-position mentions."""
    i = skip_ws(stripped, match_end)
    if i < len(stripped) and stripped[i] == "<":
        i = skip_ws(stripped, match_balanced(stripped, i, "<", ">"))
    if i >= len(stripped):
        return False
    c = stripped[i]
    if c in "&*":  # reference/pointer: no allocation
        return False
    if stripped.startswith("::", i):  # static member, e.g. string::npos
        return False
    if c in ">,)":  # template argument / parameter-type position
        return False
    # `std::vector<int> name`, `std::string s`, or a temporary
    # `std::string(...)` / `std::vector<int>{...}` — all construct.
    return c == "(" or c == "{" or re.match(r"[A-Za-z_]", c) is not None


def scan_body(stripped, start, end, path, func, suppressed, findings):
    line_of = lambda pos: stripped.count("\n", 0, pos) + 1  # noqa: E731

    def note(pos, what):
        line = line_of(pos)
        if line in suppressed:
            return
        text_line = stripped.splitlines()[line - 1].strip()
        findings.append((path, line, func, what, text_line))

    body = stripped[start:end]
    for m in NEW_RE.finditer(body):
        note(start + m.start(), "operator new on the sealed hot path")
    for m in MALLOC_RE.finditer(body):
        note(start + m.start(),
             f"{m.group(1)}() on the sealed hot path")
    for m in CONTAINER_RE.finditer(body):
        if container_is_object(stripped, start + m.end()):
            note(start + m.start(),
                 f"constructs std::{m.group(1)} on the sealed hot path "
                 "(move it into KosrScratch)")


def check_targets(root, config, findings, errors):
    for target in config["targets"]:
        path = root / target["file"]
        if not path.is_file():
            errors.append(f"config target missing on disk: {target['file']}")
            continue
        stripped, suppressed = strip_comments_and_strings(
            path.read_text(encoding="utf-8"))
        for func in target["functions"]:
            spans = list(find_function_bodies(stripped, func))
            if not spans:
                errors.append(
                    f"{target['file']}: no definition of '{func}' found "
                    "(renamed or moved? update tools/lint/hotpath_lint.json)")
            for start, end in spans:
                scan_body(stripped, start, end, target["file"], func,
                          suppressed, findings)


def check_escapes(root, findings):
    """The sync.h escape macro is banned in the annotated core."""
    paths = []
    for entry in ESCAPE_BAN_PATHS:
        p = root / entry
        if p.is_dir():
            paths.extend(sorted(p.rglob("*.h")) + sorted(p.rglob("*.cc")))
        elif p.is_file():
            paths.append(p)
    for p in paths:
        stripped, _ = strip_comments_and_strings(
            p.read_text(encoding="utf-8"))
        for i, line in enumerate(stripped.splitlines(), 1):
            if ESCAPE_MACRO in line:
                findings.append(
                    (str(p.relative_to(root)), i, "-",
                     f"{ESCAPE_MACRO} is banned here: annotate properly "
                     "instead of opting out of the analysis", line.strip()))


def run(root, config_path):
    try:
        config = json.loads(config_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"hotpath-lint: cannot read config {config_path}: {e}",
              file=sys.stderr)
        return 2
    findings, errors = [], []
    check_targets(root, config, findings, errors)
    check_escapes(root, findings)
    for e in errors:
        print(f"hotpath-lint: config error: {e}", file=sys.stderr)
    for path, line, func, what, text in findings:
        print(f"{path}:{line}: [{func}] {what}\n    {text}", file=sys.stderr)
    if errors:
        return 2
    if findings:
        print(f"hotpath-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def self_test(root):
    """Prove the checker catches what it must and allows what it should,
    using the seeded-violation fixture. This is the 'does the gate actually
    close' test: if the fixture's intentional violations stop being
    reported, CI fails here rather than silently passing bad code later."""
    fixture = root / "tools/lint/testdata/hotpath_violation_fixture.cc"
    stripped, suppressed = strip_comments_and_strings(
        fixture.read_text(encoding="utf-8"))
    findings = []
    for func in ("SealedMergeJoin", "SealedCursorStep", "SealedCounterBump"):
        spans = list(find_function_bodies(stripped, func))
        if not spans:
            print(f"self-test: fixture function {func} not found",
                  file=sys.stderr)
            return 1
        for start, end in spans:
            scan_body(stripped, start, end, fixture.name, func, suppressed,
                      findings)
    kinds = sorted(what for _, _, _, what, _ in findings)
    expected_bits = ["constructs std::string", "constructs std::unordered_map",
                     "constructs std::vector", "malloc() on", "operator new"]
    missing = [bit for bit in expected_bits
               if not any(bit in k for k in kinds)]
    # The fixture's suppressed line and its reference/pointer/KosrScratch/
    # TLS-slot lines must NOT be reported: exactly the expected five findings.
    if missing or len(findings) != len(expected_bits):
        print("self-test FAILED:", file=sys.stderr)
        print(f"  expected exactly {len(expected_bits)} findings "
              f"({expected_bits}), got {len(findings)}:", file=sys.stderr)
        for f in findings:
            print(f"    {f}", file=sys.stderr)
        if missing:
            print(f"  missing: {missing}", file=sys.stderr)
        return 1
    print("self-test passed: fixture violations caught, allowed uses clean")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2],
                    help="repository root (default: two dirs up)")
    ap.add_argument("--config", type=pathlib.Path, default=None,
                    help="targets JSON (default: hotpath_lint.json beside "
                         "this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="check the checker against the seeded fixture")
    args = ap.parse_args()
    if args.self_test:
        return self_test(args.root)
    config = args.config or pathlib.Path(__file__).with_name(
        "hotpath_lint.json")
    return run(args.root, config)


if __name__ == "__main__":
    sys.exit(main())
