// kosr_cli — command-line front end for the library: generate synthetic
// instances, inspect graphs, build/persist indexes, and answer KOSR queries.
// Run `kosr_cli help` for usage.

#include <iostream>
#include <string>
#include <vector>

#include "src/cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return kosr::cli::RunCli(args, std::cin, std::cout);
}
