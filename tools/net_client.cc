// kosr_net_client — netcat-style client for the binary framed transport:
// reads newline-protocol request lines from stdin, pipelines them to a
// `kosr_cli serve --listen` server, and prints one response line per
// request in request order (rendering framed statuses the way the stdio
// transport would, so the same protocol script produces the same markers
// over either transport — the TCP smoke leg depends on that).
//
//   kosr_net_client --connect <host:port> [--window <n>]

#include <iostream>
#include <string>
#include <vector>

#include "src/net/client.h"

int main(int argc, char** argv) {
  std::string connect;
  size_t window = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      window = std::stoul(argv[++i]);
    } else {
      std::cerr << "usage: kosr_net_client --connect <host:port> "
                   "[--window <n>]\n";
      return 2;
    }
  }
  if (connect.empty()) {
    std::cerr << "kosr_net_client: --connect <host:port> is required\n";
    return 2;
  }
  try {
    auto [host, port] = kosr::net::ParseHostPort(connect);
    kosr::net::FramedClient client(host, port);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      lines.push_back(line);
    }
    for (const kosr::net::ClientResponse& response :
         kosr::net::ExchangePipelined(client, lines, window)) {
      std::cout << kosr::net::RenderResponse(response) << "\n";
    }
    std::cout << std::flush;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "kosr_net_client: " << e.what() << "\n";
    return 1;
  }
}
