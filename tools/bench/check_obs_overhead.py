#!/usr/bin/env python3
"""Observability overhead smoke (ISSUE 7): the instrumentation tax must
stay within budget on the hottest query path.

The engine counters are plain thread-local adds behind one predictable
branch, so the label-query microbench with observability ON must run
within --max-ratio (default 1.05, the <=5% budget from DESIGN.md) of the
same binary with KOSR_OBS_OFF=1. The comparison is best-of-N in each mode,
with the modes alternated (on, off, on, off, ...) so slow drift in machine
load biases both sides equally instead of whichever mode ran last.

Using the minimum per mode is deliberate: a microbench's floor is its
reproducible signal — means absorb scheduler noise, and on a shared CI
runner that noise dwarfs a 5% effect. The floor only moves when the code
actually got slower.

Usage:
  check_obs_overhead.py --bench PATH [--filter REGEX] [--runs N]
                        [--max-ratio R] [--min-time SECS]

Exit code 0 = within budget, 1 = budget exceeded, 2 = bench run failed.
Pure standard library; runs anywhere Python 3.8+ exists.
"""

import argparse
import json
import os
import subprocess
import sys


def run_bench(bench, bench_filter, min_time, obs_off):
    env = dict(os.environ)
    if obs_off:
        env["KOSR_OBS_OFF"] = "1"
    else:
        env.pop("KOSR_OBS_OFF", None)
    cmd = [
        bench,
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_min_time={min_time}s",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"bench exited {proc.returncode}")
    # The benches print a one-line machine_meta header before the JSON
    # document; skip to the first line that opens the document.
    text = proc.stdout
    if not text.startswith("{"):
        start = text.find("\n{")
        if start == -1:
            raise RuntimeError("no JSON document in bench output")
        text = text[start + 1:]
    report = json.loads(text)
    benchmarks = [
        b for b in report.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ]
    if not benchmarks:
        raise RuntimeError(f"filter {bench_filter!r} matched no benchmarks")
    # One scalar per run: the summed real time of every matched benchmark.
    return sum(b["real_time"] for b in benchmarks)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True,
                    help="path to the bench_label_query binary")
    ap.add_argument("--filter", default="label_query/FLA/random/flat",
                    help="benchmark filter regex (the hot flat-store path)")
    ap.add_argument("--runs", type=int, default=3,
                    help="runs per mode; best (minimum) is compared")
    ap.add_argument("--max-ratio", type=float, default=1.05,
                    help="largest allowed on/off time ratio")
    ap.add_argument("--min-time", type=float, default=0.1,
                    help="--benchmark_min_time per run, in seconds")
    args = ap.parse_args()

    on_times, off_times = [], []
    try:
        for _ in range(args.runs):
            on_times.append(
                run_bench(args.bench, args.filter, args.min_time, False))
            off_times.append(
                run_bench(args.bench, args.filter, args.min_time, True))
    except (RuntimeError, OSError, json.JSONDecodeError, KeyError) as e:
        print(f"obs-overhead: bench run failed: {e}", file=sys.stderr)
        return 2

    best_on, best_off = min(on_times), min(off_times)
    ratio = best_on / best_off if best_off > 0 else float("inf")
    print(f"obs-overhead: filter={args.filter} runs={args.runs}")
    print(f"  obs on : best {best_on:.1f} ns  (all: "
          f"{', '.join(f'{t:.1f}' for t in on_times)})")
    print(f"  obs off: best {best_off:.1f} ns  (all: "
          f"{', '.join(f'{t:.1f}' for t in off_times)})")
    print(f"  ratio  : {ratio:.4f} (budget {args.max_ratio:.2f})")
    if ratio > args.max_ratio:
        print(f"obs-overhead: FAILED — instrumentation costs "
              f"{(ratio - 1) * 100:.1f}% on the hot path "
              f"(budget {(args.max_ratio - 1) * 100:.0f}%)", file=sys.stderr)
        return 1
    print("obs-overhead: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
