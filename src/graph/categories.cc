#include "src/graph/categories.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "src/util/zipf.h"

namespace kosr {

CategoryTable::CategoryTable(uint32_t num_vertices, uint32_t num_categories)
    : vertex_cats_(num_vertices), members_(num_categories) {}

void CategoryTable::Add(VertexId v, CategoryId category) {
  assert(v < num_vertices() && category < num_categories());
  auto& cats = vertex_cats_[v];
  if (std::find(cats.begin(), cats.end(), category) != cats.end()) return;
  cats.push_back(category);
  members_[category].push_back(v);
}

bool CategoryTable::Remove(VertexId v, CategoryId category) {
  auto& cats = vertex_cats_[v];
  auto it = std::find(cats.begin(), cats.end(), category);
  if (it == cats.end()) return false;
  cats.erase(it);
  auto& mem = members_[category];
  mem.erase(std::find(mem.begin(), mem.end(), v));
  return true;
}

bool CategoryTable::Has(VertexId v, CategoryId category) const {
  const auto& cats = vertex_cats_[v];
  return std::find(cats.begin(), cats.end(), category) != cats.end();
}

CategoryTable CategoryTable::Uniform(uint32_t num_vertices,
                                     uint32_t category_size, uint64_t seed) {
  if (category_size == 0 || category_size > num_vertices) {
    throw std::invalid_argument("category_size out of range");
  }
  uint32_t num_categories = std::max(1u, num_vertices / category_size);
  CategoryTable table(num_vertices, num_categories);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> pick(0, num_categories - 1);
  for (VertexId v = 0; v < num_vertices; ++v) table.Add(v, pick(rng));
  return table;
}

CategoryTable CategoryTable::Zipfian(uint32_t num_vertices,
                                     uint32_t num_categories, double f,
                                     uint64_t seed) {
  if (f < 1.0) throw std::invalid_argument("zipf factor f must be >= 1");
  CategoryTable table(num_vertices, num_categories);
  // Paper convention: larger f = less skew. Exponent 1/f keeps f = 1 very
  // skewed and f -> inf uniform.
  ZipfSampler zipf(num_categories, 1.0 / f);
  std::mt19937_64 rng(seed);
  for (VertexId v = 0; v < num_vertices; ++v) table.Add(v, zipf.Sample(rng));
  return table;
}

CategorySequence RandomCategorySequence(const CategoryTable& table,
                                        uint32_t length,
                                        std::mt19937_64& rng) {
  std::vector<CategoryId> nonempty;
  for (CategoryId c = 0; c < table.num_categories(); ++c) {
    if (table.CategorySize(c) > 0) nonempty.push_back(c);
  }
  if (nonempty.size() < length) {
    throw std::invalid_argument("not enough non-empty categories");
  }
  std::shuffle(nonempty.begin(), nonempty.end(), rng);
  nonempty.resize(length);
  return nonempty;
}

}  // namespace kosr
