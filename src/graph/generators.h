#ifndef KOSR_GRAPH_GENERATORS_H_
#define KOSR_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>

#include "src/graph/categories.h"
#include "src/graph/graph.h"

namespace kosr {

/// The worked example of the paper (Figure 1): 8 vertices s,a,b,c,d,e,f,t,
/// 14 directed arcs, and categories MA = {a, c}, RE = {b, e}, CI = {d, f}.
/// The KOSR query (s, t, <MA, RE, CI>, 3) has results with costs 20, 21, 22.
struct Figure1 {
  Graph graph;
  CategoryTable categories;

  // Vertex ids.
  static constexpr VertexId s = 0, a = 1, b = 2, c = 3, d = 4, e = 5, f = 6,
                            t = 7;
  // Category ids.
  static constexpr CategoryId MA = 0, RE = 1, CI = 2;

  /// Name of a vertex id, e.g. "s", "a".
  static std::string VertexName(VertexId v);
};

/// Builds the Figure 1 instance.
Figure1 MakeFigure1();

/// Synthetic road network: an r x c grid where each vertex connects to its
/// 4-neighborhood with two *independently* perturbed directed arcs (weights
/// uniform in [min_weight, max_weight]). Independent perturbation makes the
/// graph asymmetric and breaks the triangle inequality, which is exactly the
/// "general graph" regime of the paper (travel-time-like weights).
/// Additionally, a small fraction of long-range "highway" chords is added.
///
/// Stands in for the paper's CAL/NYC/COL/FLA road networks (see DESIGN.md).
Graph MakeGridRoadNetwork(uint32_t rows, uint32_t cols, uint64_t seed,
                          Weight min_weight = 10, Weight max_weight = 100,
                          double highway_fraction = 0.005);

/// Small-world graph: a bidirectional ring with `ring_degree` neighbors per
/// side plus `chords_per_vertex` random chords, all unit weight. Tiny
/// diameter, unweighted — the paper's G+ (Google+) analog.
Graph MakeSmallWorld(uint32_t num_vertices, uint32_t ring_degree,
                     double chords_per_vertex, uint64_t seed);

/// Erdos-Renyi-style random sparse directed graph with uniform weights.
/// Used by property tests (not an experiment workload).
Graph MakeRandomGraph(uint32_t num_vertices, uint64_t num_edges,
                      uint64_t seed, Weight min_weight = 1,
                      Weight max_weight = 1000);

/// Hub-labeling vertex order for an r x c grid by recursive separator
/// dissection: vertices on high-level separators (middle rows/columns) come
/// first. On grid road networks this yields labels of size ~O(sqrt(n))
/// versus the much larger degree-order labels — the ordering-quality point
/// of hierarchical hub labelings (paper reference [1]).
std::vector<VertexId> GridDissectionOrder(uint32_t rows, uint32_t cols);

}  // namespace kosr

#endif  // KOSR_GRAPH_GENERATORS_H_
