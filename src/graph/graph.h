#ifndef KOSR_GRAPH_GRAPH_H_
#define KOSR_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "src/util/types.h"

namespace kosr {

/// One outgoing (or incoming) arc in CSR storage.
struct Arc {
  VertexId head;   ///< Target vertex (or source, in the reverse graph).
  Weight weight;   ///< Non-negative cost of traversing the arc.
};

/// Directed weighted graph in compressed-sparse-row form, with a
/// materialized reverse adjacency for backward searches. Bulk construction
/// is via FromEdges; in-place mutation is via AddOrDecreaseArc,
/// SetArcWeight, and RemoveArc — the dynamic-update paths of Sec. IV-C.
///
/// This is Definition 1 of the paper minus the category function, which
/// lives in CategoryTable so one graph can carry many category assignments.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph from an arbitrary-order edge list. Parallel edges are
  /// kept (the cheaper one naturally dominates in searches); self loops are
  /// dropped.
  ///
  /// @param num_vertices  vertex universe [0, num_vertices).
  /// @param edges         (tail, head, weight) triples.
  static Graph FromEdges(
      uint32_t num_vertices,
      const std::vector<std::tuple<VertexId, VertexId, Weight>>& edges);

  uint32_t num_vertices() const { return static_cast<uint32_t>(out_begin_.size()) - 1; }
  uint64_t num_edges() const { return out_arcs_.size(); }

  /// Outgoing arcs of `v`.
  std::span<const Arc> OutArcs(VertexId v) const {
    return {out_arcs_.data() + out_begin_[v],
            out_arcs_.data() + out_begin_[v + 1]};
  }

  /// Incoming arcs of `v` (each Arc::head is the *tail* of the original arc).
  std::span<const Arc> InArcs(VertexId v) const {
    return {in_arcs_.data() + in_begin_[v],
            in_arcs_.data() + in_begin_[v + 1]};
  }

  uint32_t OutDegree(VertexId v) const {
    return out_begin_[v + 1] - out_begin_[v];
  }
  uint32_t InDegree(VertexId v) const {
    return in_begin_[v + 1] - in_begin_[v];
  }

  /// Weight of arc (u, v), or kInfCost if absent (minimum over parallels).
  Cost ArcWeight(VertexId u, VertexId v) const;

  /// In-place edge insertion or weight decrease: lowers the cheapest
  /// existing (u, v) arc to `w`, or inserts the arc once if absent — never
  /// accumulates parallel arcs, unlike rebuilding from an edge list with an
  /// appended triple. Both adjacencies stay (head, weight)-sorted. Returns
  /// true iff the minimum u->v weight actually decreased (false for
  /// self-loops and no-op updates with w >= the current weight, so callers
  /// can skip index repairs). Throws std::invalid_argument for out-of-range
  /// endpoints. O(degree) for a decrease; an insert additionally shifts the
  /// arc arrays (O(n + m) worst case, still far cheaper than a rebuild).
  bool AddOrDecreaseArc(VertexId u, VertexId v, Weight w);

  /// In-place arbitrary weight update: sets the u->v weight to exactly `w`,
  /// raising or lowering the existing arc (collapsing any parallel (u, v)
  /// arcs into one, so the effective minimum afterwards is exactly `w`) or
  /// inserting the arc if absent. Both adjacencies stay (head, weight)-
  /// sorted. Returns the previous minimum u->v weight, kInfCost inside the
  /// optional if the arc was inserted, or std::nullopt for a self loop
  /// (dropped, as in FromEdges — nothing changes). Throws
  /// std::invalid_argument for out-of-range endpoints. O(degree) in place;
  /// an insert additionally shifts the arc arrays like AddOrDecreaseArc.
  std::optional<Cost> SetArcWeight(VertexId u, VertexId v, Weight w);

  /// In-place edge deletion: removes every (u, v) arc (parallels included)
  /// from both adjacencies. Returns the previous minimum weight, or
  /// std::nullopt if no such arc existed (or u == v). Throws
  /// std::invalid_argument for out-of-range endpoints.
  std::optional<Cost> RemoveArc(VertexId u, VertexId v);

  /// True if every arc (u, v) has a twin (v, u) of equal weight.
  bool IsSymmetric() const;

  /// Exports all arcs as (tail, head, weight) triples, in tail order.
  std::vector<std::tuple<VertexId, VertexId, Weight>> ToEdges() const;

 private:
  std::vector<uint32_t> out_begin_{0};
  std::vector<Arc> out_arcs_;
  std::vector<uint32_t> in_begin_{0};
  std::vector<Arc> in_arcs_;
};

/// Single-source shortest-path distances by textbook Dijkstra. Reference
/// implementation used to validate labelings and NN structures; O(m log n).
///
/// @param reverse  if true, searches the reverse graph (distances *to*
///                 `source` in the original graph).
std::vector<Cost> DijkstraAllDistances(const Graph& graph, VertexId source,
                                       bool reverse = false);

/// Point-to-point Dijkstra with early termination at `target`.
Cost DijkstraDistance(const Graph& graph, VertexId source, VertexId target);

/// Shortest s-t path as a vertex sequence (empty if unreachable).
std::vector<VertexId> DijkstraPath(const Graph& graph, VertexId source,
                                   VertexId target);

}  // namespace kosr

#endif  // KOSR_GRAPH_GRAPH_H_
