#include "src/graph/generators.h"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace kosr {

std::string Figure1::VertexName(VertexId v) {
  static constexpr const char* kNames[] = {"s", "a", "b", "c",
                                           "d", "e", "f", "t"};
  if (v < 8) return kNames[v];
  // Built via insert rather than `"?" + std::to_string(v)`, which trips a
  // GCC 12 -Wrestrict false positive at -O3 (libstdc++ PR105651).
  std::string name = std::to_string(v);
  name.insert(name.begin(), '?');
  return name;
}

Figure1 MakeFigure1() {
  using F = Figure1;
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges = {
      {F::s, F::a, 8},  {F::s, F::c, 10}, {F::a, F::b, 5}, {F::a, F::e, 6},
      {F::b, F::d, 3},  {F::b, F::s, 5},  {F::c, F::b, 5}, {F::c, F::d, 3},
      {F::d, F::t, 4},  {F::e, F::d, 3},  {F::e, F::f, 10}, {F::f, F::t, 3},
      {F::t, F::c, 15}, {F::t, F::e, 10},
  };
  Figure1 fig;
  fig.graph = Graph::FromEdges(8, edges);
  fig.categories = CategoryTable(8, 3);
  fig.categories.Add(F::a, F::MA);
  fig.categories.Add(F::c, F::MA);
  fig.categories.Add(F::b, F::RE);
  fig.categories.Add(F::e, F::RE);
  fig.categories.Add(F::d, F::CI);
  fig.categories.Add(F::f, F::CI);
  return fig;
}

Graph MakeGridRoadNetwork(uint32_t rows, uint32_t cols, uint64_t seed,
                          Weight min_weight, Weight max_weight,
                          double highway_fraction) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("empty grid");
  if (min_weight > max_weight) throw std::invalid_argument("bad weights");
  uint32_t n = rows * cols;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Weight> w(min_weight, max_weight);
  auto id = [cols](uint32_t r, uint32_t c) { return r * cols + c; };

  uint64_t num_chords = static_cast<uint64_t>(highway_fraction * n);
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
  edges.reserve(static_cast<size_t>(n) * 4 + 2 * num_chords);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      VertexId u = id(r, c);
      if (c + 1 < cols) {
        // Two independently drawn directions: asymmetric travel times.
        edges.emplace_back(u, id(r, c + 1), w(rng));
        edges.emplace_back(id(r, c + 1), u, w(rng));
      }
      if (r + 1 < rows) {
        edges.emplace_back(u, id(r + 1, c), w(rng));
        edges.emplace_back(id(r + 1, c), u, w(rng));
      }
    }
  }
  // Highway chords: long-range shortcuts whose weight is *less* than the sum
  // of grid hops they replace, further violating the triangle inequality in
  // interesting ways (fast ring-roads).
  std::uniform_int_distribution<uint32_t> pick(0, n - 1);
  for (uint64_t i = 0; i < num_chords; ++i) {
    VertexId u = pick(rng), v = pick(rng);
    if (u == v) continue;
    Weight chord = static_cast<Weight>(
        std::uniform_int_distribution<Weight>(min_weight, 3 * max_weight)(rng));
    edges.emplace_back(u, v, chord);
    edges.emplace_back(v, u, chord);
  }
  return Graph::FromEdges(n, edges);
}

Graph MakeSmallWorld(uint32_t num_vertices, uint32_t ring_degree,
                     double chords_per_vertex, uint64_t seed) {
  if (num_vertices < 3) throw std::invalid_argument("graph too small");
  std::mt19937_64 rng(seed);
  uint64_t num_chords =
      static_cast<uint64_t>(chords_per_vertex * num_vertices);
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
  edges.reserve(2 * static_cast<size_t>(num_vertices) * ring_degree +
                2 * num_chords);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (uint32_t k = 1; k <= ring_degree; ++k) {
      VertexId v = (u + k) % num_vertices;
      edges.emplace_back(u, v, 1);
      edges.emplace_back(v, u, 1);
    }
  }
  std::uniform_int_distribution<uint32_t> pick(0, num_vertices - 1);
  for (uint64_t i = 0; i < num_chords; ++i) {
    VertexId u = pick(rng), v = pick(rng);
    if (u == v) continue;
    edges.emplace_back(u, v, 1);
    edges.emplace_back(v, u, 1);
  }
  return Graph::FromEdges(num_vertices, edges);
}

Graph MakeRandomGraph(uint32_t num_vertices, uint64_t num_edges,
                      uint64_t seed, Weight min_weight, Weight max_weight) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> pick(0, num_vertices - 1);
  std::uniform_int_distribution<Weight> w(min_weight, max_weight);
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
  edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    VertexId u = pick(rng), v = pick(rng);
    if (u == v) continue;
    edges.emplace_back(u, v, w(rng));
  }
  return Graph::FromEdges(num_vertices, edges);
}

std::vector<VertexId> GridDissectionOrder(uint32_t rows, uint32_t cols) {
  // Collect (recursion level, vertex) pairs: each region emits its middle
  // row or column (whichever dimension is longer) as a separator, then
  // recurses into the two halves.
  std::vector<std::pair<uint32_t, VertexId>> levels;
  levels.reserve(static_cast<size_t>(rows) * cols);
  auto id = [cols](uint32_t r, uint32_t c) { return r * cols + c; };

  auto rec = [&](auto&& self, uint32_t r0, uint32_t r1, uint32_t c0,
                 uint32_t c1, uint32_t level) -> void {
    if (r0 >= r1 || c0 >= c1) return;
    uint32_t height = r1 - r0, width = c1 - c0;
    if (height <= 2 && width <= 2) {
      for (uint32_t r = r0; r < r1; ++r) {
        for (uint32_t c = c0; c < c1; ++c) levels.emplace_back(level, id(r, c));
      }
      return;
    }
    if (height >= width) {
      uint32_t mid = r0 + height / 2;
      for (uint32_t c = c0; c < c1; ++c) levels.emplace_back(level, id(mid, c));
      self(self, r0, mid, c0, c1, level + 1);
      self(self, mid + 1, r1, c0, c1, level + 1);
    } else {
      uint32_t mid = c0 + width / 2;
      for (uint32_t r = r0; r < r1; ++r) levels.emplace_back(level, id(r, mid));
      self(self, r0, r1, c0, mid, level + 1);
      self(self, r0, r1, mid + 1, c1, level + 1);
    }
  };
  rec(rec, 0, rows, 0, cols, 0);

  std::stable_sort(levels.begin(), levels.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<VertexId> order;
  order.reserve(levels.size());
  for (const auto& [level, v] : levels) order.push_back(v);
  return order;
}

}  // namespace kosr
