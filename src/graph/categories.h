#ifndef KOSR_GRAPH_CATEGORIES_H_
#define KOSR_GRAPH_CATEGORIES_H_

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "src/util/types.h"

namespace kosr {

class Graph;

/// The category function F : V -> 2^S of Definition 1, stored both ways:
/// per vertex (the set of categories it carries) and per category (the
/// member vertex set V_Ci). A vertex may belong to any number of categories,
/// including none.
class CategoryTable {
 public:
  CategoryTable() = default;

  /// @param num_vertices     vertex universe.
  /// @param num_categories   category universe.
  CategoryTable(uint32_t num_vertices, uint32_t num_categories);

  uint32_t num_vertices() const { return static_cast<uint32_t>(vertex_cats_.size()); }
  uint32_t num_categories() const { return static_cast<uint32_t>(members_.size()); }

  /// Adds `category` to F(v). No-op if already present.
  void Add(VertexId v, CategoryId category);

  /// Removes `category` from F(v). Returns false if it was not present.
  bool Remove(VertexId v, CategoryId category);

  bool Has(VertexId v, CategoryId category) const;

  /// F(v): categories carried by vertex v (unsorted).
  std::span<const CategoryId> CategoriesOf(VertexId v) const {
    return vertex_cats_[v];
  }

  /// V_Ci: member vertices of a category (unsorted).
  std::span<const VertexId> Members(CategoryId category) const {
    return members_[category];
  }

  /// |Ci|.
  uint32_t CategorySize(CategoryId category) const {
    return static_cast<uint32_t>(members_[category].size());
  }

  /// Assigns every vertex to exactly one category uniformly at random so
  /// each category has (on expectation) `category_size` members:
  /// num_categories = floor(num_vertices / category_size), as in Sec. V-A
  /// of the paper (uniform distribution, following [29]).
  static CategoryTable Uniform(uint32_t num_vertices, uint32_t category_size,
                               uint64_t seed);

  /// Assigns every vertex to one of `num_categories` categories with a
  /// Zipfian size distribution; `f >= 1` is the paper's skew factor (greater
  /// f = less skew), following [32].
  static CategoryTable Zipfian(uint32_t num_vertices, uint32_t num_categories,
                               double f, uint64_t seed);

 private:
  std::vector<std::vector<CategoryId>> vertex_cats_;
  std::vector<std::vector<VertexId>> members_;
};

/// A KOSR category sequence <C1, ..., Cj> (Definition 3). The dummy
/// categories C0 = {s} and C_{|C|+1} = {t} of the paper are *not* part of
/// this sequence; algorithms add them implicitly.
using CategorySequence = std::vector<CategoryId>;

/// Draws a random category sequence of the given length with all-distinct
/// categories, each of which must be non-empty in `table`.
CategorySequence RandomCategorySequence(const CategoryTable& table,
                                        uint32_t length,
                                        std::mt19937_64& rng);

}  // namespace kosr

#endif  // KOSR_GRAPH_CATEGORIES_H_
