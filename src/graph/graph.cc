#include "src/graph/graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/util/min_heap.h"

namespace kosr {

Graph Graph::FromEdges(
    uint32_t num_vertices,
    const std::vector<std::tuple<VertexId, VertexId, Weight>>& edges) {
  Graph g;
  g.out_begin_.assign(num_vertices + 1, 0);
  g.in_begin_.assign(num_vertices + 1, 0);

  for (const auto& [tail, head, weight] : edges) {
    (void)weight;
    assert(tail < num_vertices && head < num_vertices);
    if (tail == head) continue;
    ++g.out_begin_[tail + 1];
    ++g.in_begin_[head + 1];
  }
  for (uint32_t v = 0; v < num_vertices; ++v) {
    g.out_begin_[v + 1] += g.out_begin_[v];
    g.in_begin_[v + 1] += g.in_begin_[v];
  }
  g.out_arcs_.resize(g.out_begin_.back());
  g.in_arcs_.resize(g.in_begin_.back());

  std::vector<uint32_t> out_fill(num_vertices, 0), in_fill(num_vertices, 0);
  for (const auto& [tail, head, weight] : edges) {
    if (tail == head) continue;
    g.out_arcs_[g.out_begin_[tail] + out_fill[tail]++] = {head, weight};
    g.in_arcs_[g.in_begin_[head] + in_fill[head]++] = {tail, weight};
  }

  // Sort adjacency by head id for deterministic iteration and binary search.
  for (uint32_t v = 0; v < num_vertices; ++v) {
    auto cmp = [](const Arc& a, const Arc& b) {
      return a.head != b.head ? a.head < b.head : a.weight < b.weight;
    };
    std::sort(g.out_arcs_.begin() + g.out_begin_[v],
              g.out_arcs_.begin() + g.out_begin_[v + 1], cmp);
    std::sort(g.in_arcs_.begin() + g.in_begin_[v],
              g.in_arcs_.begin() + g.in_begin_[v + 1], cmp);
  }
  return g;
}

bool Graph::AddOrDecreaseArc(VertexId u, VertexId v, Weight w) {
  if (u >= num_vertices() || v >= num_vertices()) {
    throw std::invalid_argument("arc endpoint outside the vertex universe");
  }
  if (u == v) return false;  // self loops are dropped, as in FromEdges

  auto arc_less = [](const Arc& a, const Arc& b) {
    return a.head != b.head ? a.head < b.head : a.weight < b.weight;
  };

  // Adjacency rows are (head, weight)-sorted, so the first arc with head v
  // is the cheapest parallel.
  auto out_lo = out_arcs_.begin() + out_begin_[u];
  auto out_hi = out_arcs_.begin() + out_begin_[u + 1];
  auto out_it = std::lower_bound(out_lo, out_hi, Arc{v, 0}, arc_less);
  if (out_it != out_hi && out_it->head == v) {
    if (out_it->weight <= w) return false;
    // Lowering the cheapest parallel keeps the row sorted (it stays first
    // in its head group). Mirror the change on the matching reverse arc.
    Weight old = out_it->weight;
    out_it->weight = w;
    auto in_lo = in_arcs_.begin() + in_begin_[v];
    auto in_hi = in_arcs_.begin() + in_begin_[v + 1];
    auto in_it = std::lower_bound(in_lo, in_hi, Arc{u, old}, arc_less);
    assert(in_it != in_hi && in_it->head == u && in_it->weight == old);
    in_it->weight = w;
    return true;
  }

  // New arc: splice into both CSR arrays and shift the row offsets after it.
  out_arcs_.insert(out_it, Arc{v, w});
  for (size_t i = u + 1; i < out_begin_.size(); ++i) ++out_begin_[i];
  auto in_lo = in_arcs_.begin() + in_begin_[v];
  auto in_hi = in_arcs_.begin() + in_begin_[v + 1];
  auto in_it = std::lower_bound(in_lo, in_hi, Arc{u, w}, arc_less);
  in_arcs_.insert(in_it, Arc{u, w});
  for (size_t i = v + 1; i < in_begin_.size(); ++i) ++in_begin_[i];
  return true;
}

namespace {

bool ArcLess(const Arc& a, const Arc& b) {
  return a.head != b.head ? a.head < b.head : a.weight < b.weight;
}

}  // namespace

std::optional<Cost> Graph::SetArcWeight(VertexId u, VertexId v, Weight w) {
  if (u >= num_vertices() || v >= num_vertices()) {
    throw std::invalid_argument("arc endpoint outside the vertex universe");
  }
  if (u == v) return std::nullopt;  // self loops are dropped, as in FromEdges

  auto out_lo = out_arcs_.begin() + out_begin_[u];
  auto out_hi = out_arcs_.begin() + out_begin_[u + 1];
  auto out_it = std::lower_bound(out_lo, out_hi, Arc{v, 0}, ArcLess);
  if (out_it == out_hi || out_it->head != v) {
    // Absent: splice into both CSR arrays, exactly like AddOrDecreaseArc's
    // insert path.
    out_arcs_.insert(out_it, Arc{v, w});
    for (size_t i = u + 1; i < out_begin_.size(); ++i) ++out_begin_[i];
    auto in_lo = in_arcs_.begin() + in_begin_[v];
    auto in_hi = in_arcs_.begin() + in_begin_[v + 1];
    in_arcs_.insert(std::lower_bound(in_lo, in_hi, Arc{u, w}, ArcLess),
                    Arc{u, w});
    for (size_t i = v + 1; i < in_begin_.size(); ++i) ++in_begin_[i];
    return kInfCost;
  }

  // Present: the (head, weight) sort puts the cheapest parallel first. Keep
  // that one at weight w and drop the rest, so the effective minimum is
  // exactly w afterwards (a raised weight must not leave a cheaper parallel
  // behind). A single surviving arc per head keeps the row sorted.
  Cost old = out_it->weight;
  out_it->weight = w;
  auto out_last = out_it + 1;
  while (out_last != out_hi && out_last->head == v) ++out_last;
  size_t extra = static_cast<size_t>(out_last - (out_it + 1));
  if (extra > 0) {
    out_arcs_.erase(out_it + 1, out_last);
    for (size_t i = u + 1; i < out_begin_.size(); ++i) {
      out_begin_[i] -= static_cast<uint32_t>(extra);
    }
  }
  // Mirror on the reverse adjacency: all (u, *) arcs in v's in-row are
  // contiguous; collapse them to one arc of weight w the same way.
  auto in_lo = in_arcs_.begin() + in_begin_[v];
  auto in_hi = in_arcs_.begin() + in_begin_[v + 1];
  auto in_it = std::lower_bound(in_lo, in_hi, Arc{u, 0}, ArcLess);
  assert(in_it != in_hi && in_it->head == u);
  in_it->weight = w;
  auto in_last = in_it + 1;
  while (in_last != in_hi && in_last->head == u) ++in_last;
  if (in_last != in_it + 1) {
    size_t in_extra = static_cast<size_t>(in_last - (in_it + 1));
    in_arcs_.erase(in_it + 1, in_last);
    for (size_t i = v + 1; i < in_begin_.size(); ++i) {
      in_begin_[i] -= static_cast<uint32_t>(in_extra);
    }
  }
  return old;
}

std::optional<Cost> Graph::RemoveArc(VertexId u, VertexId v) {
  if (u >= num_vertices() || v >= num_vertices()) {
    throw std::invalid_argument("arc endpoint outside the vertex universe");
  }
  if (u == v) return std::nullopt;

  auto out_lo = out_arcs_.begin() + out_begin_[u];
  auto out_hi = out_arcs_.begin() + out_begin_[u + 1];
  auto out_it = std::lower_bound(out_lo, out_hi, Arc{v, 0}, ArcLess);
  if (out_it == out_hi || out_it->head != v) return std::nullopt;
  Cost old = out_it->weight;
  auto out_last = out_it + 1;
  while (out_last != out_hi && out_last->head == v) ++out_last;
  size_t removed = static_cast<size_t>(out_last - out_it);
  out_arcs_.erase(out_it, out_last);
  for (size_t i = u + 1; i < out_begin_.size(); ++i) {
    out_begin_[i] -= static_cast<uint32_t>(removed);
  }

  auto in_lo = in_arcs_.begin() + in_begin_[v];
  auto in_hi = in_arcs_.begin() + in_begin_[v + 1];
  auto in_it = std::lower_bound(in_lo, in_hi, Arc{u, 0}, ArcLess);
  assert(in_it != in_hi && in_it->head == u);
  auto in_last = in_it + 1;
  while (in_last != in_hi && in_last->head == u) ++in_last;
  size_t in_removed = static_cast<size_t>(in_last - in_it);
  assert(in_removed == removed);
  (void)in_removed;
  in_arcs_.erase(in_it, in_last);
  for (size_t i = v + 1; i < in_begin_.size(); ++i) {
    in_begin_[i] -= static_cast<uint32_t>(removed);
  }
  return old;
}

Cost Graph::ArcWeight(VertexId u, VertexId v) const {
  Cost best = kInfCost;
  for (const Arc& a : OutArcs(u)) {
    if (a.head == v) best = std::min(best, static_cast<Cost>(a.weight));
  }
  return best;
}

bool Graph::IsSymmetric() const {
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (const Arc& a : OutArcs(u)) {
      if (ArcWeight(a.head, u) != static_cast<Cost>(a.weight)) return false;
    }
  }
  return true;
}

std::vector<std::tuple<VertexId, VertexId, Weight>> Graph::ToEdges() const {
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
  edges.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (const Arc& a : OutArcs(u)) edges.emplace_back(u, a.head, a.weight);
  }
  return edges;
}

std::vector<Cost> DijkstraAllDistances(const Graph& graph, VertexId source,
                                       bool reverse) {
  std::vector<Cost> dist(graph.num_vertices(), kInfCost);
  IndexedMinHeap heap(graph.num_vertices());
  dist[source] = 0;
  heap.InsertOrDecrease(source, 0);
  while (!heap.Empty()) {
    auto [d, u] = heap.ExtractMin();
    auto arcs = reverse ? graph.InArcs(u) : graph.OutArcs(u);
    for (const Arc& a : arcs) {
      Cost nd = d + a.weight;
      if (nd < dist[a.head]) {
        dist[a.head] = nd;
        heap.InsertOrDecrease(a.head, nd);
      }
    }
  }
  return dist;
}

Cost DijkstraDistance(const Graph& graph, VertexId source, VertexId target) {
  if (source == target) return 0;
  std::vector<Cost> dist(graph.num_vertices(), kInfCost);
  IndexedMinHeap heap(graph.num_vertices());
  dist[source] = 0;
  heap.InsertOrDecrease(source, 0);
  while (!heap.Empty()) {
    auto [d, u] = heap.ExtractMin();
    if (u == target) return d;
    for (const Arc& a : graph.OutArcs(u)) {
      Cost nd = d + a.weight;
      if (nd < dist[a.head]) {
        dist[a.head] = nd;
        heap.InsertOrDecrease(a.head, nd);
      }
    }
  }
  return kInfCost;
}

std::vector<VertexId> DijkstraPath(const Graph& graph, VertexId source,
                                   VertexId target) {
  std::vector<Cost> dist(graph.num_vertices(), kInfCost);
  std::vector<VertexId> parent(graph.num_vertices(), kInvalidVertex);
  IndexedMinHeap heap(graph.num_vertices());
  dist[source] = 0;
  heap.InsertOrDecrease(source, 0);
  bool found = source == target;
  while (!heap.Empty() && !found) {
    auto [d, u] = heap.ExtractMin();
    if (u == target) { found = true; break; }
    for (const Arc& a : graph.OutArcs(u)) {
      Cost nd = d + a.weight;
      if (nd < dist[a.head]) {
        dist[a.head] = nd;
        parent[a.head] = u;
        heap.InsertOrDecrease(a.head, nd);
      }
    }
  }
  if (!found && dist[target] == kInfCost) return {};
  std::vector<VertexId> path;
  for (VertexId v = target; v != kInvalidVertex; v = parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != source) return {};
  return path;
}

}  // namespace kosr
