#ifndef KOSR_GRAPH_IO_H_
#define KOSR_GRAPH_IO_H_

#include <string>

#include "src/graph/categories.h"
#include "src/graph/graph.h"

namespace kosr {

/// Loads a 9th DIMACS Implementation Challenge `.gr` file, the format of the
/// paper's COL/FLA road networks:
///   c <comment>
///   p sp <n> <m>
///   a <tail> <head> <weight>      (1-based vertex ids)
/// Throws std::runtime_error on malformed input.
Graph LoadDimacsGraph(const std::string& path);

/// Writes a graph in DIMACS `.gr` format.
void SaveDimacsGraph(const Graph& graph, const std::string& path);

/// Loads a whitespace-separated edge list "tail head weight" per line with
/// 0-based ids; lines starting with '#' are comments. `num_vertices` of the
/// result is 1 + max id seen.
Graph LoadEdgeList(const std::string& path);

/// Loads a category file with one "vertex category" pair per line (0-based
/// ids, '#' comments). Vertices may appear multiple times (multi-category).
CategoryTable LoadCategories(const std::string& path, uint32_t num_vertices,
                             uint32_t num_categories);

/// Writes a category table in the LoadCategories format.
void SaveCategories(const CategoryTable& table, const std::string& path);

}  // namespace kosr

#endif  // KOSR_GRAPH_IO_H_
