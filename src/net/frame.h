// Wire format for the TCP serving transport (ISSUE 10).
//
// Every message — request or response — is one length-prefixed frame:
//
//   request:   u32 len | u64 request_id | u8 verb   | payload
//   response:  u32 len | u64 request_id | u8 status | payload
//
// All integers are little-endian. `len` counts every byte AFTER the length
// field itself (request_id + verb/status + payload), so the smallest legal
// frame is len == 9 (empty payload) and the whole header occupies 13 bytes
// on the wire. A frame whose declared length is below 9 or above the
// server's cap is unrecoverable — the length field cannot be trusted, so
// there is no way to resynchronise the stream — and the connection is
// closed after a BAD_FRAME response.
//
// The only request verb today is kLine: the payload is a single request
// line in the newline protocol grammar (src/service/protocol.h) without
// the trailing newline. Framing and the text grammar are deliberately
// independent layers: the TCP and stdio transports share protocol.cc for
// execution, and new verbs can be added without touching the framing.
#ifndef KOSR_NET_FRAME_H_
#define KOSR_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace kosr::net {

/// Bytes of `u32 len | u64 request_id | u8 code` on the wire.
inline constexpr std::size_t kFrameHeaderBytes = 13;
/// Minimum legal value of the `len` field (request_id + code, no payload).
inline constexpr std::uint32_t kMinFrameLen = 9;
/// Default cap on the `len` field; a lying prefix above the cap closes the
/// connection instead of allocating whatever the peer asked for.
inline constexpr std::uint32_t kDefaultMaxFrameLen = 1u << 20;

/// Request verbs. The payload interpretation depends on the verb.
enum Verb : std::uint8_t {
  /// Payload is one newline-protocol request line (no trailing '\n').
  kVerbLine = 1,
};

/// Response status codes.
enum Status : std::uint8_t {
  /// Request executed; payload is the protocol response line (which may
  /// itself report a protocol-level error as "ERR ...").
  kStatusOk = 0,
  /// Backpressure: the per-connection pipeline cap or the service queue
  /// refused the request. Retry later; the connection stays open.
  kStatusRejected = 1,
  /// The frame was well-formed but unintelligible (unknown verb). The
  /// connection stays open.
  kStatusBadRequest = 2,
  /// Framing violation (lying length prefix). The stream cannot be
  /// resynchronised; the server flushes this response and closes.
  kStatusBadFrame = 3,
};

/// Appends one encoded frame to `out`.
void AppendFrame(std::string& out, std::uint64_t request_id, std::uint8_t code,
                 std::string_view payload);

/// A frame decoded off the wire.
struct ParsedFrame {
  std::uint64_t request_id = 0;
  std::uint8_t code = 0;
  std::string payload;
};

/// Incremental frame decoder over a byte stream. Feed arbitrary chunks with
/// Append (torn frames, one byte at a time, many frames at once — anything a
/// TCP read can produce) and Pop complete frames out.
class FrameBuffer {
 public:
  explicit FrameBuffer(std::uint32_t max_frame_len = kDefaultMaxFrameLen)
      : max_frame_len_(max_frame_len) {}

  void Append(const char* data, std::size_t size);

  enum class PopResult {
    kFrame,     // *frame filled with the next complete frame
    kNeedMore,  // no complete frame buffered yet
    kBad,       // unrecoverable framing violation; *error describes it
  };

  /// Pops the next frame. On kBad, `frame->request_id` is filled best-effort
  /// (when enough of the header arrived to read it) so the server can still
  /// correlate its BAD_FRAME response; the buffer is poisoned and every
  /// later Pop returns kBad again.
  PopResult Pop(ParsedFrame* frame, std::string* error);

  /// True when a partial frame (or undecodable prefix) is buffered.
  bool HasPartial() const { return buffer_.size() > offset_; }

  std::size_t BufferedBytes() const { return buffer_.size() - offset_; }

 private:
  std::uint32_t max_frame_len_;
  std::string buffer_;
  std::size_t offset_ = 0;  // consumed prefix, compacted lazily
  bool poisoned_ = false;
};

}  // namespace kosr::net

#endif  // KOSR_NET_FRAME_H_
