#include "src/net/frame.h"

#include <cstring>

namespace kosr::net {
namespace {

void PutU32(std::string& out, std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(b, 4);
}

void PutU64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, 8);
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

}  // namespace

void AppendFrame(std::string& out, std::uint64_t request_id, std::uint8_t code,
                 std::string_view payload) {
  PutU32(out, static_cast<std::uint32_t>(kMinFrameLen + payload.size()));
  PutU64(out, request_id);
  out.push_back(static_cast<char>(code));
  out.append(payload);
}

void FrameBuffer::Append(const char* data, std::size_t size) {
  if (poisoned_) return;  // stream is dead; don't grow an unbounded buffer
  // Compact once the consumed prefix dominates, so long-lived pipelined
  // connections don't accumulate dead bytes.
  if (offset_ > 4096 && offset_ >= buffer_.size() / 2) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(data, size);
}

FrameBuffer::PopResult FrameBuffer::Pop(ParsedFrame* frame,
                                        std::string* error) {
  if (poisoned_) {
    if (error) *error = "frame stream poisoned by earlier framing violation";
    return PopResult::kBad;
  }
  const std::size_t avail = buffer_.size() - offset_;
  if (avail < 4) return PopResult::kNeedMore;
  const char* base = buffer_.data() + offset_;
  const std::uint32_t len = GetU32(base);
  if (len < kMinFrameLen || len > max_frame_len_) {
    poisoned_ = true;
    // Best-effort request id so the rejection can still be correlated.
    frame->request_id = avail >= 12 ? GetU64(base + 4) : 0;
    frame->code = 0;
    frame->payload.clear();
    if (error) {
      *error = "bad frame length " + std::to_string(len) + " (min " +
               std::to_string(kMinFrameLen) + ", max " +
               std::to_string(max_frame_len_) + ")";
    }
    return PopResult::kBad;
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return PopResult::kNeedMore;
  frame->request_id = GetU64(base + 4);
  frame->code = static_cast<std::uint8_t>(base[12]);
  frame->payload.assign(base + kFrameHeaderBytes, len - kMinFrameLen);
  offset_ += 4 + static_cast<std::size_t>(len);
  if (offset_ == buffer_.size()) {
    buffer_.clear();
    offset_ = 0;
  }
  return PopResult::kFrame;
}

}  // namespace kosr::net
