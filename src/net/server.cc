#include "src/net/server.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/service/protocol.h"
#include "src/util/timer.h"

namespace kosr::net {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

/// One completed query ready to be framed back onto its connection.
struct Completion {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  uint8_t status = kStatusOk;
  std::string payload;
};

/// MPSC completion queue between the service's worker threads and the
/// event loop. Owns the wakeup eventfd so a worker callback that outlives
/// the server (drain deadline hit) still has a live fd to poke — the
/// callbacks hold shared_ptr copies, and Close() turns late pushes into
/// cheap drops.
class CompletionSink {
 public:
  CompletionSink() : wake_fd_(eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
    if (wake_fd_ < 0) throw std::runtime_error(ErrnoString("eventfd"));
  }
  ~CompletionSink() { ::close(wake_fd_); }

  CompletionSink(const CompletionSink&) = delete;
  CompletionSink& operator=(const CompletionSink&) = delete;

  int wake_fd() const { return wake_fd_; }

  void Push(Completion completion) {
    {
      MutexLock lock(mutex_);
      if (closed_) return;
      items_.push_back(std::move(completion));
    }
    Wake();
  }

  void Wake() {
    uint64_t one = 1;
    // Failure (full counter) still leaves the eventfd readable.
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }

  std::vector<Completion> Drain() {
    uint64_t counter;
    while (::read(wake_fd_, &counter, sizeof counter) > 0) {
    }
    std::vector<Completion> items;
    MutexLock lock(mutex_);
    items.swap(items_);
    return items;
  }

  void Close() {
    MutexLock lock(mutex_);
    closed_ = true;
    items_.clear();
  }

 private:
  int wake_fd_;
  Mutex mutex_;
  bool closed_ KOSR_GUARDED_BY(mutex_) = false;
  std::vector<Completion> items_ KOSR_GUARDED_BY(mutex_);
};

/// Per-connection session state; owned and touched only by the loop thread.
struct NetServer::Connection {
  int fd = -1;
  uint64_t id = 0;
  FrameBuffer in;
  /// Unsent response bytes; [out_off, out.size()) is pending.
  std::string out;
  size_t out_off = 0;
  /// Query frames handed to the worker pool, not yet answered.
  uint32_t in_flight = 0;
  /// Last epoll interest mask actually installed.
  uint32_t epoll_mask = 0;
  /// No more frames will be read (QUIT, framing violation, or drain).
  bool stop_reading = false;
  /// Close once the write buffer flushes and in_flight hits zero.
  bool close_after_flush = false;

  explicit Connection(uint32_t max_frame) : in(max_frame) {}
};

NetServer::NetServer(service::KosrService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

NetServer::~NetServer() { Shutdown(); }

void NetServer::Start() {
  {
    MutexLock lock(lifecycle_mutex_);
    if (started_) return;
    started_ = true;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string port_str = std::to_string(options_.port);
  int rc = getaddrinfo(options_.host.c_str(), port_str.c_str(), &hints,
                       &result);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve listen address " +
                             options_.host + ": " + gai_strerror(rc));
  }
  listen_fd_ = socket(result->ai_family,
                      result->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                      result->ai_protocol);
  if (listen_fd_ < 0) {
    freeaddrinfo(result);
    throw std::runtime_error(ErrnoString("socket"));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (bind(listen_fd_, result->ai_addr, result->ai_addrlen) != 0 ||
      listen(listen_fd_, 128) != 0) {
    std::string error = ErrnoString("bind/listen");
    freeaddrinfo(result);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(error + " on " + options_.host + ":" + port_str);
  }
  freeaddrinfo(result);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(ErrnoString("epoll_create1"));
  }
  sink_ = std::make_shared<CompletionSink>();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = sink_->wake_fd();
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, sink_->wake_fd(), &ev);

  service_.AttachNetGauges([this] { return gauges(); });
  loop_ = std::thread(&NetServer::LoopThread, this);
}

void NetServer::Shutdown() {
  MutexLock lock(lifecycle_mutex_);
  if (!started_ || joined_) return;
  joined_ = true;
  // Detach the gauge provider before anything can free server state a
  // concurrent Metrics() call would read through it.
  service_.AttachNetGauges(nullptr);
  stop_.store(true, std::memory_order_release);
  sink_->Wake();
  loop_.join();
  sink_->Close();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

service::NetGauges NetServer::gauges() const {
  service::NetGauges g;
  g.enabled = true;
  g.connections_accepted = accepted_.load(kRelaxed);
  g.connections_open = open_.load(kRelaxed);
  g.frames_in = frames_in_.load(kRelaxed);
  g.frames_out = frames_out_.load(kRelaxed);
  g.bytes_in = bytes_in_.load(kRelaxed);
  g.bytes_out = bytes_out_.load(kRelaxed);
  g.partial_reads = partial_reads_.load(kRelaxed);
  g.rejected_frames = rejected_frames_.load(kRelaxed);
  g.bad_frames = bad_frames_.load(kRelaxed);
  g.in_flight_queries = in_flight_queries_.load(kRelaxed);
  return g;
}

void NetServer::LoopThread() {
  std::vector<epoll_event> events(64);
  WallTimer drain_clock;
  for (;;) {
    if (!draining_ && stop_.load(std::memory_order_acquire)) {
      StartDrain();
      drain_clock.Reset();
    }
    // Short timeout: the stop flag may be set without a wake reaching us
    // (signal delivered to another thread), and the drain deadline needs
    // polling anyway.
    int n = epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken; teardown below closes sessions
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      if (sink_ && fd == sink_->wake_fd()) continue;  // drained below
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Connection* conn = it->second.get();
      if (ev & (EPOLLHUP | EPOLLERR)) {
        // Flush what we can (the peer may have half-closed); a dead
        // socket fails the write and closes below either way.
        if (!TryWrite(*conn)) continue;
        if (conn->out_off == conn->out.size() && conn->in_flight == 0) {
          CloseConn(fd);
          continue;
        }
      }
      if ((ev & EPOLLIN) && !HandleReadable(*conn, 16)) continue;
      if (ev & EPOLLOUT) TryWrite(*conn);
    }
    DrainCompletions();
    if (draining_) {
      if (conns_.empty() && in_flight_queries_.load(kRelaxed) == 0) break;
      if (drain_clock.ElapsedSeconds() > options_.drain_timeout_s) break;
    }
  }
  // Teardown: force-close whatever the drain (or an epoll failure) left.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) CloseConn(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void NetServer::AcceptNew() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or transient (EMFILE/ECONNABORTED): retry later
    }
    accepted_.fetch_add(1, kRelaxed);
    if (draining_ || conns_.size() >= options_.max_connections) {
      ::close(fd);  // deterministic EOF instead of an unbounded session
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conn->epoll_mask = EPOLLIN;
    conn_by_id_[conn->id] = fd;
    conns_.emplace(fd, std::move(conn));
    open_.fetch_add(1, kRelaxed);
  }
}

bool NetServer::HandleReadable(Connection& conn, int max_passes) {
  if (conn.stop_reading) return true;
  char buf[65536];
  for (int pass = 0; pass < max_passes; ++pass) {
    ssize_t r = recv(conn.fd, buf, sizeof buf, 0);
    if (r > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(r), kRelaxed);
      conn.in.Append(buf, static_cast<size_t>(r));
      if (!ProcessFrames(conn)) return false;
      if (conn.stop_reading) break;
      if (static_cast<size_t>(r) < sizeof buf) break;  // kernel buffer drained
      continue;
    }
    if (r == 0) {  // peer closed; everything parsed was already handled
      CloseConn(conn.fd);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn.fd);
    return false;
  }
  if (conn.in.HasPartial()) partial_reads_.fetch_add(1, kRelaxed);
  return true;
}

bool NetServer::ProcessFrames(Connection& conn) {
  ParsedFrame frame;
  std::string error;
  while (!conn.stop_reading) {
    FrameBuffer::PopResult res = conn.in.Pop(&frame, &error);
    if (res == FrameBuffer::PopResult::kNeedMore) break;
    if (res == FrameBuffer::PopResult::kBad) {
      bad_frames_.fetch_add(1, kRelaxed);
      conn.stop_reading = true;
      conn.close_after_flush = true;
      if (!SendFrame(conn, frame.request_id, kStatusBadFrame, error)) {
        return false;
      }
      SetEpollMask(conn);
      break;
    }
    frames_in_.fetch_add(1, kRelaxed);
    if (!HandleFrame(conn, frame)) return false;
  }
  return true;
}

bool NetServer::HandleFrame(Connection& conn, const ParsedFrame& frame) {
  if (frame.code != kVerbLine) {
    return SendFrame(conn, frame.request_id, kStatusBadRequest,
                     "unknown verb " + std::to_string(frame.code));
  }
  const std::string& line = frame.payload;
  const size_t first = line.find_first_not_of(" \t");
  const bool is_query =
      first != std::string::npos && line.compare(first, 5, "QUERY") == 0 &&
      (first + 5 == line.size() || line[first + 5] == ' ' ||
       line[first + 5] == '\t');
  if (!is_query) {
    // Inline on the loop thread: updates stay ordered per connection (and
    // across connections in arrival order), which is what makes update-ack
    // versions monotone on a connection.
    std::string response = service::HandleRequestLine(service_, line);
    const bool quit = response == "OK BYE";
    if (!SendFrame(conn, frame.request_id, kStatusOk, response)) return false;
    if (quit) {
      conn.stop_reading = true;
      conn.close_after_flush = true;
      SetEpollMask(conn);
      const int fd = conn.fd;
      CloseIfIdle(conn);  // may free conn; only the saved fd is safe after
      return conns_.count(fd) != 0;
    }
    return true;
  }
  if (conn.in_flight >= options_.max_pipeline) {
    rejected_frames_.fetch_add(1, kRelaxed);
    return SendFrame(conn, frame.request_id, kStatusRejected,
                     "pipeline full");
  }
  service::ServiceRequest request;
  std::string parse_error;
  if (!service::ParseQueryLine(line, &request, &parse_error)) {
    return SendFrame(conn, frame.request_id, kStatusOk, parse_error);
  }
  conn.in_flight++;
  in_flight_queries_.fetch_add(1, kRelaxed);
  // The callback runs on a worker thread: it may touch only the sink (kept
  // alive by the shared_ptr even past server teardown) and the service
  // (alive by contract) — never the server or the connection.
  std::shared_ptr<CompletionSink> sink = sink_;
  service::KosrService& service = service_;
  const uint64_t conn_id = conn.id;
  const uint64_t request_id = frame.request_id;
  service_.SubmitAsync(
      request, [sink, &service, conn_id,
                request_id](service::ServiceResponse response) {
        Completion completion;
        completion.conn_id = conn_id;
        completion.request_id = request_id;
        switch (response.status) {
          case service::ResponseStatus::kRejected:
            completion.status = kStatusRejected;
            completion.payload = response.error;
            break;
          case service::ResponseStatus::kShutdown:
            completion.status = kStatusRejected;
            completion.payload = "shutting down";
            break;
          default:
            completion.status = kStatusOk;
            completion.payload = FormatQueryResponse(service, response);
        }
        sink->Push(std::move(completion));
      });
  return true;
}

bool NetServer::SendFrame(Connection& conn, uint64_t request_id,
                          uint8_t status, std::string_view payload) {
  AppendFrame(conn.out, request_id, status, payload);
  frames_out_.fetch_add(1, kRelaxed);
  return TryWrite(conn);
}

bool NetServer::TryWrite(Connection& conn) {
  while (conn.out_off < conn.out.size()) {
    ssize_t w = send(conn.fd, conn.out.data() + conn.out_off,
                     conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (w > 0) {
      bytes_out_.fetch_add(static_cast<uint64_t>(w), kRelaxed);
      conn.out_off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    CloseConn(conn.fd);  // EPIPE/ECONNRESET/...: the peer is gone
    return false;
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.epoll_mask & EPOLLOUT) {
      conn.epoll_mask &= ~static_cast<uint32_t>(EPOLLOUT);
      SetEpollMask(conn);
    }
    if (conn.close_after_flush && conn.in_flight == 0) {
      CloseConn(conn.fd);
      return false;
    }
    return true;
  }
  // Partial write: bound the buffer, then wait for EPOLLOUT.
  if (conn.out.size() - conn.out_off > options_.max_write_buffer_bytes) {
    CloseConn(conn.fd);
    return false;
  }
  if (conn.out_off > 65536 && conn.out_off >= conn.out.size() / 2) {
    conn.out.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  if (!(conn.epoll_mask & EPOLLOUT)) {
    conn.epoll_mask |= EPOLLOUT;
    SetEpollMask(conn);
  }
  return true;
}

void NetServer::SetEpollMask(Connection& conn) {
  uint32_t mask = conn.epoll_mask;
  if (conn.stop_reading) mask &= ~static_cast<uint32_t>(EPOLLIN);
  else mask |= EPOLLIN;
  conn.epoll_mask = mask;
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = conn.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void NetServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  conn_by_id_.erase(it->second->id);
  conns_.erase(it);
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  open_.fetch_sub(1, kRelaxed);
}

void NetServer::DrainCompletions() {
  if (!sink_) return;
  std::vector<Completion> items = sink_->Drain();
  for (Completion& completion : items) {
    in_flight_queries_.fetch_sub(1, kRelaxed);
    if (completion.status == kStatusRejected) {
      rejected_frames_.fetch_add(1, kRelaxed);
    }
    auto it = conn_by_id_.find(completion.conn_id);
    if (it == conn_by_id_.end()) continue;  // connection died mid-flight
    Connection& conn = *conns_.at(it->second);
    conn.in_flight--;
    // SendFrame's flush notices close_after_flush once the last in-flight
    // response lands (QUIT or drain), so no separate idle check is needed.
    SendFrame(conn, completion.request_id, completion.status,
              completion.payload);
  }
}

void NetServer::StartDrain() {
  draining_ = true;
  if (listen_fd_ >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Final read pass per connection: everything the kernel has already
  // accepted gets parsed and answered; after this no more reads.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Connection& conn = *it->second;
    if (!HandleReadable(conn, 1 << 20)) continue;  // unbounded: drain fully
    conn.stop_reading = true;
    conn.close_after_flush = true;
    SetEpollMask(conn);
    CloseIfIdle(conn);
  }
}

void NetServer::CloseIfIdle(Connection& conn) {
  if (conn.close_after_flush && conn.out_off == conn.out.size() &&
      conn.in_flight == 0) {
    CloseConn(conn.fd);
  }
}

}  // namespace kosr::net
