// TCP serving front-end (ISSUE 10 tentpole): a single-threaded
// level-triggered epoll event loop speaking the length-prefixed binary
// framing of src/net/frame.h, layered on KosrService.
//
// Threading model. One event-loop thread owns every socket, every
// per-connection session (partial-read FrameBuffer, partial-write buffer,
// pipeline accounting), and the epoll set — none of that state needs a
// lock. Query frames are handed to the service's worker pool through the
// callback SubmitAsync and complete out of order; workers push the
// formatted response onto a mutex-guarded completion queue and poke an
// eventfd, and the loop writes the frame back on the connection that asked
// (matched by connection id — a connection that died mid-flight simply
// drops its completions). Every non-query verb (updates, METRICS, PING,
// CHECKPOINT, QUIT) executes inline on the loop thread, which makes
// per-connection update ordering — and therefore `version=` monotonicity
// across one connection's update acks — a structural guarantee rather
// than a locking exercise.
//
// Backpressure degrades to REJECTED frames, never unbounded buffering:
// a connection exceeding its pipeline cap gets kStatusRejected per excess
// frame, a full service queue surfaces as kStatusRejected the same way,
// and a peer that stops reading while responses accumulate past the
// write-buffer cap is closed. Graceful drain (Shutdown): stop accepting,
// take a final read pass per connection, answer everything parsed, wait
// for in-flight completions (bounded by drain_timeout_s), flush, close.
// See DESIGN.md, "Network serving".
#ifndef KOSR_NET_SERVER_H_
#define KOSR_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/net/frame.h"
#include "src/service/metrics.h"
#include "src/service/service.h"
#include "src/util/sync.h"

namespace kosr::net {

struct ServerOptions {
  /// Bind address. Port 0 asks the kernel for an ephemeral port; the bound
  /// port is readable through port() after Start().
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Connections beyond the cap are accepted and immediately closed (the
  /// peer sees EOF) so the backlog cannot smuggle unbounded sessions in.
  size_t max_connections = 1024;
  /// Cap on a frame's declared length; a prefix above it is a framing
  /// violation (kStatusBadFrame, connection closed).
  uint32_t max_frame_bytes = kDefaultMaxFrameLen;
  /// Per-connection in-flight query cap; excess frames get kStatusRejected.
  uint32_t max_pipeline = 128;
  /// A connection whose unsent responses outgrow this is closed (the peer
  /// is not reading; buffering more is how servers die).
  size_t max_write_buffer_bytes = 8u << 20;
  /// Graceful-drain deadline: how long Shutdown waits for in-flight
  /// queries to complete and response buffers to flush before
  /// force-closing what remains.
  double drain_timeout_s = 10.0;
};

class CompletionSink;

class NetServer {
 public:
  /// `service` must outlive the server. The server registers its gauges
  /// with the service (METRICS "net" block) while running.
  explicit NetServer(service::KosrService& service, ServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and spawns the event loop. Throws std::runtime_error
  /// when the address cannot be bound.
  void Start();
  /// Graceful drain (see file comment). Idempotent; also run by the
  /// destructor. Safe to call from any thread, including a signal-watcher.
  void Shutdown();

  /// Bound port (after Start; useful with port 0).
  uint16_t port() const { return port_; }
  /// Live counters, readable from any thread.
  service::NetGauges gauges() const;

 private:
  struct Connection;

  void LoopThread();
  void AcceptNew();
  /// Reads until EAGAIN/EOF (bounded to `max_passes` 64 KiB reads for
  /// fairness on the normal path; drain passes are unbounded) and
  /// processes every complete frame. Returns false when the connection
  /// was closed.
  bool HandleReadable(Connection& conn, int max_passes);
  bool ProcessFrames(Connection& conn);
  bool HandleFrame(Connection& conn, const ParsedFrame& frame);
  /// Appends one response frame and flushes opportunistically. Returns
  /// false when the connection was closed (flush found close_after_flush
  /// satisfied, the peer vanished, or the write buffer blew its cap).
  bool SendFrame(Connection& conn, uint64_t request_id, uint8_t status,
                 std::string_view payload);
  bool TryWrite(Connection& conn);
  void SetEpollMask(Connection& conn);
  void CloseConn(int fd);
  void DrainCompletions();
  void StartDrain();
  void CloseIfIdle(Connection& conn);

  service::KosrService& service_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  uint16_t port_ = 0;
  /// Completion queue shared with worker callbacks. shared_ptr: a query
  /// can outlive the server (drain deadline hit), so the callback keeps
  /// the sink alive and the closed sink swallows the late completion.
  std::shared_ptr<CompletionSink> sink_;
  std::thread loop_;
  std::atomic<bool> stop_{false};
  /// Serializes Start/Shutdown; never touched by the loop thread.
  Mutex lifecycle_mutex_;
  bool started_ KOSR_GUARDED_BY(lifecycle_mutex_) = false;
  bool joined_ KOSR_GUARDED_BY(lifecycle_mutex_) = false;

  // --- Event-loop private state (loop thread only, no locks) --------------
  uint64_t next_conn_id_ = 1;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::unordered_map<uint64_t, int> conn_by_id_;
  bool draining_ = false;

  // --- Gauges (relaxed atomics; written by the loop, read anywhere) -------
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> open_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> partial_reads_{0};
  std::atomic<uint64_t> rejected_frames_{0};
  std::atomic<uint64_t> bad_frames_{0};
  std::atomic<uint64_t> in_flight_queries_{0};
};

}  // namespace kosr::net

#endif  // KOSR_NET_SERVER_H_
