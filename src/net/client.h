// Blocking framed TCP client for the src/net wire format: the netcat-style
// CLI tool, the socket test suites, and the network bench all drive the
// server through this. One FramedClient is one connection; it is not
// thread-safe (the bench gives each connection its own thread).
#ifndef KOSR_NET_CLIENT_H_
#define KOSR_NET_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/net/frame.h"

namespace kosr::net {

/// Parses "host:port" (e.g. "127.0.0.1:7070"); throws std::invalid_argument
/// on malformed input or a port outside [0, 65535].
std::pair<std::string, uint16_t> ParseHostPort(const std::string& text);

/// One response frame, correlated by request_id.
struct ClientResponse {
  uint64_t request_id = 0;
  uint8_t status = kStatusOk;
  std::string payload;
};

/// Renders a response the way the stdio transport would print it, so the
/// two transports produce comparable output: kStatusOk passes the protocol
/// line through, backpressure becomes "REJECTED ...", framing-level
/// failures become "ERR ...".
std::string RenderResponse(const ClientResponse& response);

class FramedClient {
 public:
  /// Connects (blocking); throws std::runtime_error on failure.
  FramedClient(const std::string& host, uint16_t port);
  ~FramedClient();

  FramedClient(const FramedClient&) = delete;
  FramedClient& operator=(const FramedClient&) = delete;

  int fd() const { return fd_; }

  /// Frames `line` under the next request id (returned) and writes it out.
  uint64_t SendLine(std::string_view line);
  /// Arbitrary verb/payload under the next request id (returned).
  uint64_t SendFrame(uint8_t verb, std::string_view payload);
  /// Fully explicit frame — adversarial tests forge ids and verbs.
  void SendFrameWithId(uint64_t request_id, uint8_t verb,
                       std::string_view payload);
  /// Raw bytes, no framing: torn frames, lying prefixes, slow-loris drips.
  void SendRaw(std::string_view bytes);

  /// True when a frame (or EOF) is ready within `timeout_s` seconds.
  bool Poll(double timeout_s);
  /// Blocks for the next response frame. nullopt = server closed the
  /// connection. Throws std::runtime_error if the server emits bytes that
  /// do not frame-decode (a server bug by contract).
  std::optional<ClientResponse> Recv();

  /// Half-close: no more sends, reads still work.
  void ShutdownWrite();

 private:
  void WriteAll(const char* data, size_t size);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  FrameBuffer in_;
};

/// Pipelined exchange with at most `window` unanswered frames: sends every
/// line, returns the responses ordered by send index. Throws if the server
/// closes before answering everything.
std::vector<ClientResponse> ExchangePipelined(
    FramedClient& client, const std::vector<std::string>& lines,
    size_t window);

}  // namespace kosr::net

#endif  // KOSR_NET_CLIENT_H_
