#include "src/net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

namespace kosr::net {
namespace {

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::pair<std::string, uint16_t> ParseHostPort(const std::string& text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    throw std::invalid_argument("expected host:port, got: " + text);
  }
  const std::string port_str = text.substr(colon + 1);
  size_t consumed = 0;
  unsigned long port = 0;
  try {
    port = std::stoul(port_str, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != port_str.size() || port > 65535) {
    throw std::invalid_argument("bad port in: " + text);
  }
  return {text.substr(0, colon), static_cast<uint16_t>(port)};
}

std::string RenderResponse(const ClientResponse& response) {
  switch (response.status) {
    case kStatusOk:
      return response.payload;
    case kStatusRejected:
      return "REJECTED " + response.payload;
    default:
      return "ERR " + response.payload;
  }
}

FramedClient::FramedClient(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  int rc = getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve " + host + ": " +
                             gai_strerror(rc));
  }
  fd_ = socket(result->ai_family, result->ai_socktype | SOCK_CLOEXEC,
               result->ai_protocol);
  if (fd_ < 0) {
    freeaddrinfo(result);
    throw std::runtime_error(ErrnoString("socket"));
  }
  if (connect(fd_, result->ai_addr, result->ai_addrlen) != 0) {
    std::string error = ErrnoString("connect");
    freeaddrinfo(result);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(error + " to " + host + ":" + port_str);
  }
  freeaddrinfo(result);
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

FramedClient::~FramedClient() {
  if (fd_ >= 0) ::close(fd_);
}

void FramedClient::WriteAll(const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    // MSG_NOSIGNAL: a server that closed on us must surface as an error,
    // not kill the test/bench process with SIGPIPE.
    ssize_t w = send(fd_, data + written, size - written, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(ErrnoString("send"));
    }
    written += static_cast<size_t>(w);
  }
}

uint64_t FramedClient::SendLine(std::string_view line) {
  return SendFrame(kVerbLine, line);
}

uint64_t FramedClient::SendFrame(uint8_t verb, std::string_view payload) {
  const uint64_t id = next_id_++;
  SendFrameWithId(id, verb, payload);
  return id;
}

void FramedClient::SendFrameWithId(uint64_t request_id, uint8_t verb,
                                   std::string_view payload) {
  std::string wire;
  AppendFrame(wire, request_id, verb, payload);
  WriteAll(wire.data(), wire.size());
}

void FramedClient::SendRaw(std::string_view bytes) {
  WriteAll(bytes.data(), bytes.size());
}

bool FramedClient::Poll(double timeout_s) {
  if (in_.BufferedBytes() >= kFrameHeaderBytes) return true;
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    int rc = poll(&pfd, 1, static_cast<int>(timeout_s * 1000));
    if (rc < 0 && errno == EINTR) continue;
    return rc > 0;
  }
}

std::optional<ClientResponse> FramedClient::Recv() {
  ParsedFrame frame;
  std::string error;
  for (;;) {
    FrameBuffer::PopResult res = in_.Pop(&frame, &error);
    if (res == FrameBuffer::PopResult::kFrame) {
      return ClientResponse{frame.request_id, frame.code,
                            std::move(frame.payload)};
    }
    if (res == FrameBuffer::PopResult::kBad) {
      throw std::runtime_error("server sent an unparseable frame: " + error);
    }
    char buf[65536];
    ssize_t r = recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      in_.Append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) return std::nullopt;
    if (errno == EINTR) continue;
    throw std::runtime_error(ErrnoString("recv"));
  }
}

void FramedClient::ShutdownWrite() { shutdown(fd_, SHUT_WR); }

std::vector<ClientResponse> ExchangePipelined(
    FramedClient& client, const std::vector<std::string>& lines,
    size_t window) {
  if (window == 0) window = 1;
  std::vector<ClientResponse> responses(lines.size());
  std::unordered_map<uint64_t, size_t> index_of;
  index_of.reserve(lines.size());
  size_t next_send = 0;
  size_t answered = 0;
  while (answered < lines.size()) {
    while (next_send < lines.size() &&
           next_send - answered < window) {
      index_of[client.SendLine(lines[next_send])] = next_send;
      ++next_send;
    }
    std::optional<ClientResponse> response = client.Recv();
    if (!response) {
      throw std::runtime_error(
          "server closed with " + std::to_string(lines.size() - answered) +
          " responses outstanding");
    }
    auto it = index_of.find(response->request_id);
    if (it == index_of.end()) {
      throw std::runtime_error("response for unknown request_id " +
                               std::to_string(response->request_id));
    }
    responses[it->second] = std::move(*response);
    index_of.erase(it);
    ++answered;
  }
  return responses;
}

}  // namespace kosr::net
