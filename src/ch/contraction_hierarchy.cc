#include "src/ch/contraction_hierarchy.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "src/util/min_heap.h"
#include "src/util/timer.h"

namespace kosr {
namespace {

// Dynamic adjacency for the remaining (not yet contracted) graph; keeps the
// minimum weight per vertex pair.
using AdjMap = std::vector<std::unordered_map<VertexId, Weight>>;

void AddOrRelax(AdjMap& adj, VertexId u, VertexId v, Weight w) {
  auto [it, inserted] = adj[u].try_emplace(v, w);
  if (!inserted && w < it->second) it->second = w;
}

// Local witness search: is there a u -> w path of cost <= limit in the
// remaining graph that avoids `banned`? Bounded by a settle budget; an
// inconclusive search returns false (caller adds a shortcut, which is safe).
// Dense scratch arrays (reset via a touched list) keep this allocation-free;
// it is the inner loop of the whole construction.
bool HasWitness(const AdjMap& fwd, const std::vector<bool>& contracted,
                VertexId source, VertexId target, VertexId banned,
                Cost limit, uint32_t settle_budget) {
  static thread_local std::vector<Cost> dist;
  static thread_local std::vector<VertexId> touched;
  static thread_local IndexedMinHeap heap;
  if (dist.size() < fwd.size()) {
    dist.assign(fwd.size(), kInfCost);
    heap.Resize(static_cast<uint32_t>(fwd.size()));
  }
  auto cleanup = [&] {
    for (VertexId v : touched) dist[v] = kInfCost;
    touched.clear();
    heap.Clear();
  };
  dist[source] = 0;
  touched.push_back(source);
  heap.InsertOrDecrease(source, 0);
  uint32_t settled = 0;
  bool found = false;
  while (!heap.Empty() && settled < settle_budget) {
    auto [d, u] = heap.ExtractMin();
    ++settled;
    if (u == target) {
      found = d <= limit;
      break;
    }
    if (d > limit) break;
    for (const auto& [v, w] : fwd[u]) {
      if (v == banned || contracted[v]) continue;
      Cost nd = d + w;
      if (nd < dist[v]) {
        if (dist[v] == kInfCost) touched.push_back(v);
        dist[v] = nd;
        heap.InsertOrDecrease(v, nd);
      }
    }
  }
  cleanup();
  return found;
}

}  // namespace

ContractionHierarchy ContractionHierarchy::Build(const Graph& graph,
                                                 uint32_t witness_settle_limit) {
  WallTimer timer;
  const uint32_t n = graph.num_vertices();
  AdjMap fwd(n), bwd(n);
  for (VertexId u = 0; u < n; ++u) {
    for (const Arc& a : graph.OutArcs(u)) {
      AddOrRelax(fwd, u, a.head, a.weight);
      AddOrRelax(bwd, a.head, u, a.weight);
    }
  }

  std::vector<bool> contracted(n, false);
  std::vector<uint32_t> contracted_neighbors(n, 0);
  ContractionHierarchy ch;
  ch.rank_.assign(n, 0);
  ch.forward_up_.assign(n, {});
  ch.backward_up_.assign(n, {});

  struct Shortcut {
    VertexId from, to;
    Weight weight;
  };

  // Simulates contracting v; returns the shortcuts it would (or does) add.
  auto shortcuts_for = [&](VertexId v) {
    std::vector<Shortcut> result;
    for (const auto& [u, wu] : bwd[v]) {
      if (contracted[u] || u == v) continue;
      // Upper bound for witness searches from u.
      Cost max_need = 0;
      for (const auto& [w, ww] : fwd[v]) {
        if (contracted[w] || w == u || w == v) continue;
        max_need = std::max(max_need, static_cast<Cost>(wu) + ww);
      }
      if (max_need == 0) continue;
      for (const auto& [w, ww] : fwd[v]) {
        if (contracted[w] || w == u || w == v) continue;
        Cost through = static_cast<Cost>(wu) + ww;
        if (!HasWitness(fwd, contracted, u, w, v, through,
                        witness_settle_limit)) {
          Weight sw = static_cast<Weight>(through);
          result.push_back({u, w, sw});
        }
      }
    }
    return result;
  };

  // Shortcut simulation doubles as the priority function; the computed list
  // is reused when the pop wins, so each contraction simulates exactly once.
  std::vector<Shortcut> scratch_shortcuts;
  auto priority_of = [&](VertexId v) -> int64_t {
    scratch_shortcuts = shortcuts_for(v);
    int64_t removed = static_cast<int64_t>(fwd[v].size() + bwd[v].size());
    int64_t added = static_cast<int64_t>(scratch_shortcuts.size());
    return added - removed + 2 * contracted_neighbors[v];
  };

  // Lazy priority queue of contraction candidates.
  std::priority_queue<std::pair<int64_t, VertexId>,
                      std::vector<std::pair<int64_t, VertexId>>,
                      std::greater<>>
      order_queue;
  for (VertexId v = 0; v < n; ++v) order_queue.emplace(priority_of(v), v);

  uint32_t next_rank = 0;
  while (!order_queue.empty()) {
    auto [prio, v] = order_queue.top();
    order_queue.pop();
    if (contracted[v]) continue;
    int64_t fresh = priority_of(v);
    if (!order_queue.empty() && fresh > order_queue.top().first) {
      order_queue.emplace(fresh, v);
      continue;
    }
    // Contract v, reusing the shortcut list the priority check computed.
    ch.rank_[v] = next_rank++;
    auto shortcuts = std::move(scratch_shortcuts);
    contracted[v] = true;
    for (const auto& [u, w] : bwd[v]) {
      if (!contracted[u]) ++contracted_neighbors[u];
    }
    for (const auto& [w, ww] : fwd[v]) {
      if (!contracted[w]) ++contracted_neighbors[w];
    }
    for (const Shortcut& sc : shortcuts) {
      // Record the middle only when this shortcut actually improves (or
      // creates) the arc, so expansion always follows the cheapest version.
      auto existing = fwd[sc.from].find(sc.to);
      if (existing == fwd[sc.from].end() || sc.weight < existing->second) {
        ch.shortcut_middle_[(static_cast<uint64_t>(sc.from) << 32) | sc.to] =
            v;
      }
      AddOrRelax(fwd, sc.from, sc.to, sc.weight);
      AddOrRelax(bwd, sc.to, sc.from, sc.weight);
      ++ch.num_shortcuts_;
    }
  }

  // Assemble upward adjacencies from the final augmented graph.
  for (VertexId u = 0; u < n; ++u) {
    for (const auto& [v, w] : fwd[u]) {
      if (ch.rank_[v] > ch.rank_[u]) ch.forward_up_[u].push_back({v, w});
      if (ch.rank_[v] < ch.rank_[u]) ch.backward_up_[v].push_back({u, w});
    }
  }
  ch.build_seconds_ = timer.ElapsedSeconds();
  return ch;
}

Cost ContractionHierarchy::Query(VertexId s, VertexId t) const {
  if (s == t) return 0;
  // Bidirectional upward Dijkstra with best-bound termination.
  auto run = [](const std::vector<std::vector<Arc>>& up, VertexId start,
                std::unordered_map<VertexId, Cost>& dist) {
    std::priority_queue<std::pair<Cost, VertexId>,
                        std::vector<std::pair<Cost, VertexId>>,
                        std::greater<>>
        heap;
    dist[start] = 0;
    heap.emplace(0, start);
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (const Arc& a : up[u]) {
        Cost nd = d + a.weight;
        auto it = dist.find(a.head);
        if (it == dist.end() || nd < it->second) {
          dist[a.head] = nd;
          heap.emplace(nd, a.head);
        }
      }
    }
  };
  std::unordered_map<VertexId, Cost> fwd_dist, bwd_dist;
  run(forward_up_, s, fwd_dist);
  run(backward_up_, t, bwd_dist);
  Cost best = kInfCost;
  const auto& small = fwd_dist.size() <= bwd_dist.size() ? fwd_dist : bwd_dist;
  const auto& large = fwd_dist.size() <= bwd_dist.size() ? bwd_dist : fwd_dist;
  for (const auto& [v, d] : small) {
    auto it = large.find(v);
    if (it != large.end()) best = std::min(best, d + it->second);
  }
  return best;
}

void ContractionHierarchy::ExpandArc(VertexId u, VertexId v,
                                     std::vector<VertexId>& out) const {
  auto it = shortcut_middle_.find((static_cast<uint64_t>(u) << 32) | v);
  if (it == shortcut_middle_.end()) {
    out.push_back(v);  // original edge
    return;
  }
  ExpandArc(u, it->second, out);
  ExpandArc(it->second, v, out);
}

std::vector<VertexId> ContractionHierarchy::QueryPath(VertexId s,
                                                      VertexId t) const {
  if (s == t) return {s};
  auto run = [](const std::vector<std::vector<Arc>>& up, VertexId start,
                std::unordered_map<VertexId, Cost>& dist,
                std::unordered_map<VertexId, VertexId>& parent) {
    std::priority_queue<std::pair<Cost, VertexId>,
                        std::vector<std::pair<Cost, VertexId>>,
                        std::greater<>>
        heap;
    dist[start] = 0;
    heap.emplace(0, start);
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (const Arc& a : up[u]) {
        Cost nd = d + a.weight;
        auto it = dist.find(a.head);
        if (it == dist.end() || nd < it->second) {
          dist[a.head] = nd;
          parent[a.head] = u;
          heap.emplace(nd, a.head);
        }
      }
    }
  };
  std::unordered_map<VertexId, Cost> fwd_dist, bwd_dist;
  std::unordered_map<VertexId, VertexId> fwd_parent, bwd_parent;
  run(forward_up_, s, fwd_dist, fwd_parent);
  run(backward_up_, t, bwd_dist, bwd_parent);

  Cost best = kInfCost;
  VertexId meeting = kInvalidVertex;
  for (const auto& [v, d] : fwd_dist) {
    auto it = bwd_dist.find(v);
    if (it != bwd_dist.end() && d + it->second < best) {
      best = d + it->second;
      meeting = v;
    }
  }
  if (meeting == kInvalidVertex) return {};

  // Upward chain s -> meeting in the forward graph.
  std::vector<VertexId> fwd_chain;
  for (VertexId cur = meeting; cur != s; cur = fwd_parent.at(cur)) {
    fwd_chain.push_back(cur);
  }
  fwd_chain.push_back(s);
  std::reverse(fwd_chain.begin(), fwd_chain.end());

  // Chain meeting -> t: the backward search walked t -> ... -> meeting over
  // reversed arcs, so the original-direction arcs run meeting -> t.
  std::vector<VertexId> bwd_chain;  // meeting first
  for (VertexId cur = meeting; cur != t; cur = bwd_parent.at(cur)) {
    bwd_chain.push_back(cur);
  }
  bwd_chain.push_back(t);

  std::vector<VertexId> path{s};
  for (size_t i = 0; i + 1 < fwd_chain.size(); ++i) {
    ExpandArc(fwd_chain[i], fwd_chain[i + 1], path);
  }
  for (size_t i = 0; i + 1 < bwd_chain.size(); ++i) {
    ExpandArc(bwd_chain[i], bwd_chain[i + 1], path);
  }
  return path;
}

std::vector<VertexId> ContractionHierarchy::ImportanceOrder() const {
  std::vector<VertexId> order(rank_.size());
  for (VertexId v = 0; v < rank_.size(); ++v) {
    order[rank_.size() - 1 - rank_[v]] = v;
  }
  return order;
}

}  // namespace kosr
