#ifndef KOSR_CH_CONTRACTION_HIERARCHY_H_
#define KOSR_CH_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/types.h"

namespace kosr {

/// Contraction Hierarchies [Geisberger et al., WEA 2008] — the shortest-path
/// acceleration the paper's GSP comparator [29] builds on (reference [15]).
///
/// Vertices are contracted in importance order (lazy edge-difference +
/// contracted-neighbors heuristic); shortcuts preserve all shortest
/// distances among the remaining vertices. Point-to-point queries run a
/// bidirectional upward Dijkstra that only relaxes arcs toward
/// higher-ranked vertices.
///
/// Used here as (a) a validated alternative distance oracle benchmarked
/// against hub labeling and Dijkstra (bench_ablation), and (b) a source of
/// a high-quality hub-labeling vertex order: the reverse contraction order
/// ranks important vertices first.
class ContractionHierarchy {
 public:
  ContractionHierarchy() = default;

  /// Builds the hierarchy. `witness_hop_limit` caps each local witness
  /// search (larger = fewer shortcuts, slower build).
  static ContractionHierarchy Build(const Graph& graph,
                                    uint32_t witness_settle_limit = 64);

  /// dis(s, t) or kInfCost.
  Cost Query(VertexId s, VertexId t) const;

  /// Shortest s-t path as a full vertex sequence (empty if unreachable,
  /// {s} if s == t). Shortcuts are expanded recursively through their
  /// middle vertices.
  std::vector<VertexId> QueryPath(VertexId s, VertexId t) const;

  /// Contraction order, most important (contracted last) first. Suitable
  /// as a HubLabeling build order.
  std::vector<VertexId> ImportanceOrder() const;

  uint32_t num_vertices() const { return static_cast<uint32_t>(rank_.size()); }
  uint64_t num_shortcuts() const { return num_shortcuts_; }
  double BuildSeconds() const { return build_seconds_; }

 private:
  // Expands the augmented-graph arc (u, v) into original vertices,
  // appending everything after `u` to `out`.
  void ExpandArc(VertexId u, VertexId v, std::vector<VertexId>& out) const;

  // Upward arcs for the forward search and (reversed) upward arcs for the
  // backward search.
  std::vector<std::vector<Arc>> forward_up_;
  std::vector<std::vector<Arc>> backward_up_;
  std::vector<uint32_t> rank_;  // contraction position, higher = later.
  // Middle vertex of each shortcut arc, keyed by (tail << 32) | head; arcs
  // absent from the map are original edges.
  std::unordered_map<uint64_t, VertexId> shortcut_middle_;
  uint64_t num_shortcuts_ = 0;
  double build_seconds_ = 0;
};

}  // namespace kosr

#endif  // KOSR_CH_CONTRACTION_HIERARCHY_H_
