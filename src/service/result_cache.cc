#include "src/service/result_cache.h"

#include <algorithm>

namespace kosr::service {
namespace {

inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace

size_t CacheKeyHash::operator()(const CacheKey& key) const {
  size_t seed = std::hash<uint64_t>{}(
      (static_cast<uint64_t>(key.source) << 32) | key.target);
  for (CategoryId c : key.sequence) {
    HashCombine(seed, std::hash<uint32_t>{}(c));
  }
  HashCombine(seed, std::hash<uint32_t>{}(key.k));
  HashCombine(seed, static_cast<size_t>(key.algorithm));
  HashCombine(seed, static_cast<size_t>(key.nn_mode) * 2 +
                        (key.with_paths ? 1 : 0));
  return seed;
}

ShardedResultCache::ShardedResultCache(size_t capacity, size_t num_shards)
    : capacity_(capacity),
      shards_(std::max<size_t>(1, std::min(num_shards, std::max<size_t>(
                                                           1, capacity)))) {
  // Floor, never ceil: total residency must stay within `capacity` (the
  // shard clamp above guarantees at least 1 per shard when enabled).
  per_shard_capacity_ = capacity_ / shards_.size();
}

ShardedResultCache::Shard& ShardedResultCache::ShardFor(const CacheKey& key) {
  return shards_[CacheKeyHash{}(key) % shards_.size()];
}

std::optional<KosrResult> ShardedResultCache::Lookup(const CacheKey& key,
                                                     uint64_t pinned_version) {
  if (!enabled()) return std::nullopt;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end() || it->second->version > pinned_version) {
    // Too new for this reader's snapshot: miss without erasing — readers
    // pinned at the current version still want it.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void ShardedResultCache::Insert(const CacheKey& key, const KosrResult& result,
                                uint64_t version) {
  if (!enabled()) return;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  // The shard-mutex handoff with the invalidation walk orders this load
  // after BeginInvalidation's store (see the member comment), so a result
  // computed against a pre-update snapshot can never land after the walk
  // already scrubbed this shard.
  if (version < latest_invalidation_version_.load(std::memory_order_relaxed)) {
    return;
  }
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    if (version >= it->second->version) {
      it->second->result = result;
      it->second->version = version;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front({key, result, version});
  shard.index[key] = shard.lru.begin();
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedResultCache::BeginInvalidation(uint64_t version) {
  // Monotonic max: concurrent rounds can only tighten the gate.
  uint64_t previous =
      latest_invalidation_version_.load(std::memory_order_relaxed);
  while (previous < version &&
         !latest_invalidation_version_.compare_exchange_weak(
             previous, version, std::memory_order_relaxed)) {
  }
}

void ShardedResultCache::InvalidateAll() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    invalidations_.fetch_add(shard.lru.size(), std::memory_order_relaxed);
    shard.index.clear();
    shard.lru.clear();
  }
}

void ShardedResultCache::InvalidateCategory(CategoryId c) {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      const CategorySequence& seq = it->key.sequence;
      if (std::find(seq.begin(), seq.end(), c) != seq.end()) {
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

void ShardedResultCache::InvalidateEdgeDelta(
    const EdgeInvalidationFilter& filter) {
  auto flagged = [](const std::vector<bool>& flags, uint32_t id) {
    return id < flags.size() && flags[id];
  };
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      const CacheKey& key = it->key;
      bool stale = key.with_paths || flagged(filter.changed_out, key.source) ||
                   flagged(filter.changed_in, key.target);
      if (!stale) {
        for (CategoryId c : key.sequence) {
          if (flagged(filter.affected_categories, c)) {
            stale = true;
            break;
          }
        }
      }
      if (stale) {
        shard.index.erase(key);
        it = shard.lru.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

CacheStats ShardedResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

size_t ShardedResultCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace kosr::service
