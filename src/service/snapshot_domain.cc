#include "src/service/snapshot_domain.h"

#include <algorithm>
#include <utility>

namespace kosr::service {

SnapshotDomain::SnapshotDomain(uint32_t num_workers,
                               std::shared_ptr<const EngineSnapshot> initial)
    : num_workers_(num_workers),
      num_slots_(num_workers + kGuestSlots),
      slots_(num_slots_) {
  version_.store(initial->version(), std::memory_order_relaxed);
  current_.store(initial.get(), std::memory_order_seq_cst);
  MutexLock lock(retire_mutex_);
  current_owner_ = std::move(initial);
}

SnapshotDomain::~SnapshotDomain() = default;

uint32_t SnapshotDomain::ClaimGuestSlot() {
  for (;;) {
    for (uint32_t i = num_workers_; i < num_slots_; ++i) {
      // Same announce-then-resolve order as Pin: the CAS publishes the
      // epoch before the caller loads the snapshot pointer.
      uint64_t expected = kIdle;
      uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
      if (slots_[i].epoch.compare_exchange_strong(
              expected, epoch, std::memory_order_seq_cst)) {
        return i;
      }
    }
  }
}

void SnapshotDomain::Publish(std::shared_ptr<const EngineSnapshot> next) {
  MutexLock lock(retire_mutex_);
  version_.store(next->version(), std::memory_order_relaxed);
  const EngineSnapshot* raw = next.get();
  std::shared_ptr<const EngineSnapshot> displaced = std::move(current_owner_);
  current_owner_ = std::move(next);
  current_.store(raw, std::memory_order_seq_cst);
  // Tag the displaced snapshot with the pre-increment epoch: readers
  // pinned at or before it may still hold the old pointer; readers who
  // announce the post-increment epoch provably resolve the new one.
  uint64_t retire_epoch =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  retired_.push_back({std::move(displaced), retire_epoch});
  retired_count_.store(retired_.size(), std::memory_order_relaxed);
  ReclaimLocked();
}

void SnapshotDomain::Reclaim() {
  MutexLock lock(retire_mutex_);
  ReclaimLocked();
}

std::shared_ptr<const EngineSnapshot> SnapshotDomain::SharedCurrent() {
  MutexLock lock(retire_mutex_);
  return current_owner_;
}

void SnapshotDomain::TryReclaim() {
  if (!retire_mutex_.TryLock()) return;  // a publisher/reclaimer is already in
  ReclaimLocked();
  retire_mutex_.Unlock();
}

void SnapshotDomain::ReclaimLocked() {
  uint64_t min_active = global_epoch_.load(std::memory_order_seq_cst);
  for (uint32_t i = 0; i < num_slots_; ++i) {
    uint64_t epoch = slots_[i].epoch.load(std::memory_order_seq_cst);
    min_active = std::min(min_active, epoch);  // kIdle = max, never the min
  }
  std::erase_if(retired_, [min_active](const Retired& retired) {
    return retired.epoch < min_active;
  });
  retired_count_.store(retired_.size(), std::memory_order_relaxed);
}

uint64_t SnapshotDomain::epoch_lag() const {
  uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
  uint64_t oldest = now;
  for (uint32_t i = 0; i < num_slots_; ++i) {
    uint64_t epoch = slots_[i].epoch.load(std::memory_order_seq_cst);
    oldest = std::min(oldest, epoch);
  }
  return now - oldest;
}

}  // namespace kosr::service
