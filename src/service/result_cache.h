#ifndef KOSR_SERVICE_RESULT_CACHE_H_
#define KOSR_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/query.h"
#include "src/util/sync.h"
#include "src/util/types.h"

namespace kosr::service {

/// Identity of a cacheable query: the full query plus everything about the
/// execution method that changes the answer's *content*. Execution knobs
/// that only change counters (phase timing, budgets) are deliberately not
/// part of the key; queries with a slot filter are never cached (the
/// std::function has no identity to key on).
struct CacheKey {
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  CategorySequence sequence;
  uint32_t k = 1;
  Algorithm algorithm = Algorithm::kStar;
  NnMode nn_mode = NnMode::kHopLabel;
  bool with_paths = false;

  bool operator==(const CacheKey& other) const = default;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const;
};

/// Monotonic counters, readable while the cache is in use.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  ///< Entries dropped by invalidation calls.

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0 : static_cast<double>(hits) / lookups;
  }
};

/// Which cached entries an applied edge update can stale (ISSUE 8:
/// invalidation granularity). Built by the service from the repair delta's
/// changed-label vertex lists; see KosrService::InvalidateForEdgeUpdate
/// for the exactness argument.
struct EdgeInvalidationFilter {
  /// changed_out[v]: v's out-labels changed (v can reach differently).
  std::vector<bool> changed_out;
  /// changed_in[v]: v's in-labels changed (v is reached differently).
  std::vector<bool> changed_in;
  /// Categories with a member whose labels changed (intermediate route
  /// stops are members of the key's sequence categories).
  std::vector<bool> affected_categories;
};

/// Sharded LRU cache of completed query results, version-keyed (ISSUE 8).
///
/// The key space is split over `num_shards` independently locked shards so
/// concurrent workers rarely contend; each shard keeps its own LRU list and
/// evicts at `capacity / num_shards` entries.
///
/// Every entry carries the snapshot version its result was computed
/// against. A reader pinned to snapshot version P only consumes entries
/// with version <= P (a newer entry reflects updates the reader's snapshot
/// has not seen — returning it would break the reader's consistent view).
/// Invalidation is targeted: an applied edge update erases exactly the
/// entries its repair delta can stale (InvalidateEdgeDelta) instead of
/// flushing the whole cache, and the BeginInvalidation gate rejects
/// straggler inserts computed against pre-update snapshots so a slow
/// reader cannot resurrect a stale answer after the walk.
class ShardedResultCache {
 public:
  /// `capacity` = total entries across shards (0 disables caching);
  /// `num_shards` is rounded up to at least 1.
  explicit ShardedResultCache(size_t capacity, size_t num_shards = 8);

  /// Returns the cached result if its version is visible to a reader
  /// pinned at `pinned_version`, promoting the entry to most-recent;
  /// nullopt (counting a miss) otherwise. An entry newer than the pinned
  /// snapshot stays cached for current readers.
  std::optional<KosrResult> Lookup(const CacheKey& key,
                                   uint64_t pinned_version);

  /// Inserts or refreshes an entry computed against snapshot `version`,
  /// evicting the shard's least-recent entries beyond its capacity share.
  /// Rejected when `version` predates the latest invalidation (the result
  /// was computed before an update that may have staled it); a refresh
  /// never replaces a newer result with an older one.
  void Insert(const CacheKey& key, const KosrResult& result,
              uint64_t version);

  /// Opens an invalidation round for the update published as `version`:
  /// from now on, inserts computed against any older snapshot are
  /// rejected. Call before the invalidation walk, which must complete
  /// before the new snapshot is published (the shard-mutex handoff then
  /// makes the gate visible to every straggler insert).
  void BeginInvalidation(uint64_t version);

  /// Drops every entry (serving without indexes: any graph change can move
  /// any Dijkstra answer, and there is no repair delta to target with).
  void InvalidateAll();
  /// Drops entries whose sequence contains `c` (category membership
  /// updates only affect queries that visit that category).
  void InvalidateCategory(CategoryId c);
  /// Drops exactly the entries an edge update's repair delta can stale:
  /// source with changed out-labels, target with changed in-labels, a
  /// sequence category with a changed member, or any entry with
  /// reconstructed paths (parent chains traverse arbitrary intermediate
  /// vertices). Everything else provably kept its answer.
  void InvalidateEdgeDelta(const EdgeInvalidationFilter& filter);

  CacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  bool enabled() const { return capacity_ > 0; }

 private:
  struct Entry {
    CacheKey key;
    KosrResult result;
    /// Snapshot version the result was computed against.
    uint64_t version = 0;
  };
  struct Shard {
    mutable Mutex mutex;
    /// Front = most recent.
    std::list<Entry> lru KOSR_GUARDED_BY(mutex);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index KOSR_GUARDED_BY(mutex);
  };

  Shard& ShardFor(const CacheKey& key);

  size_t capacity_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;

  /// Version of the most recent invalidation round. Read under the shard
  /// mutex in Insert: the publisher stores it before walking the shards,
  /// and the walk locks every shard, so any insert racing the walk either
  /// lands before the walk scrubs that shard or observes the gate through
  /// the shard-mutex handoff — plain relaxed accesses suffice.
  std::atomic<uint64_t> latest_invalidation_version_{0};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace kosr::service

#endif  // KOSR_SERVICE_RESULT_CACHE_H_
