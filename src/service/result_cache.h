#ifndef KOSR_SERVICE_RESULT_CACHE_H_
#define KOSR_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/query.h"
#include "src/util/sync.h"
#include "src/util/types.h"

namespace kosr::service {

/// Identity of a cacheable query: the full query plus everything about the
/// execution method that changes the answer's *content*. Execution knobs
/// that only change counters (phase timing, budgets) are deliberately not
/// part of the key; queries with a slot filter are never cached (the
/// std::function has no identity to key on).
struct CacheKey {
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  CategorySequence sequence;
  uint32_t k = 1;
  Algorithm algorithm = Algorithm::kStar;
  NnMode nn_mode = NnMode::kHopLabel;
  bool with_paths = false;

  bool operator==(const CacheKey& other) const = default;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const;
};

/// Monotonic counters, readable while the cache is in use.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  ///< Entries dropped by invalidation calls.

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0 : static_cast<double>(hits) / lookups;
  }
};

/// Sharded LRU cache of completed query results.
///
/// The key space is split over `num_shards` independently locked shards so
/// concurrent workers rarely contend; each shard keeps its own LRU list and
/// evicts at `capacity / num_shards` entries. Invalidation supports the two
/// granularities the engine's dynamic updates need (DESIGN.md, "Serving
/// layer"): a category update only stales results whose sequence mentions
/// that category; an edge update may move shortest-path distances anywhere
/// and stales everything — though the service only calls that when the
/// label repair certifies something actually changed.
class ShardedResultCache {
 public:
  /// `capacity` = total entries across shards (0 disables caching);
  /// `num_shards` is rounded up to at least 1.
  explicit ShardedResultCache(size_t capacity, size_t num_shards = 8);

  /// Returns the cached result and promotes the entry to most-recent, or
  /// nullopt (counting a miss).
  std::optional<KosrResult> Lookup(const CacheKey& key);

  /// Inserts or refreshes an entry, evicting the shard's least-recent
  /// entries beyond its capacity share.
  void Insert(const CacheKey& key, const KosrResult& result);

  /// Drops every entry (edge-weight updates: all distances may change).
  void InvalidateAll();
  /// Drops entries whose sequence contains `c` (category membership
  /// updates only affect queries that visit that category).
  void InvalidateCategory(CategoryId c);

  CacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  bool enabled() const { return capacity_ > 0; }

 private:
  struct Entry {
    CacheKey key;
    KosrResult result;
  };
  struct Shard {
    mutable Mutex mutex;
    /// Front = most recent.
    std::list<Entry> lru KOSR_GUARDED_BY(mutex);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index KOSR_GUARDED_BY(mutex);
  };

  Shard& ShardFor(const CacheKey& key);

  size_t capacity_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace kosr::service

#endif  // KOSR_SERVICE_RESULT_CACHE_H_
