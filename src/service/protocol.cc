#include "src/service/protocol.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace kosr::service {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

// Every numeric protocol field is a 32-bit id/count. Digits only: signs
// would otherwise wrap through std::stoull and execute (e.g. a weight of
// "-5" becoming ~4 billion) instead of being rejected.
uint32_t ParseU32(const std::string& token, const char* what) {
  bool digits = !token.empty() &&
                std::all_of(token.begin(), token.end(), [](unsigned char ch) {
                  return std::isdigit(ch) != 0;
                });
  unsigned long long value = 0;
  if (digits) {
    try {
      value = std::stoull(token);
    } catch (const std::exception&) {
      digits = false;  // Out of range for unsigned long long.
    }
  }
  if (!digits || value > std::numeric_limits<uint32_t>::max()) {
    throw std::invalid_argument(std::string("bad ") + what + ": " + token);
  }
  return static_cast<uint32_t>(value);
}

std::string HandleQuery(KosrService& service, const std::string& line) {
  ServiceRequest request;
  std::string error;
  if (!ParseQueryLine(line, &request, &error)) return error;
  return FormatQueryResponse(service, service.Submit(request));
}

// Edge verbs report the repair summary so a peer driving a live edge feed
// can see which updates actually moved anything; buffered updates (batch
// window open) report BUFFERED with the still-current snapshot version.
std::string UpdateResponse(const UpdateAck& ack) {
  std::ostringstream os;
  if (!ack.applied) {
    os << "OK BUFFERED pending=" << ack.pending
       << " version=" << ack.snapshot_version;
    return os.str();
  }
  os << "OK UPDATED changed=" << (ack.summary.graph_changed ? 1 : 0)
     << " labels="
     << ack.summary.changed_in_labels + ack.summary.changed_out_labels
     << " version=" << ack.snapshot_version;
  return os.str();
}

std::string HandleUpdate(KosrService& service,
                         const std::vector<std::string>& tokens) {
  const std::string& cmd = tokens[0];
  if (cmd == "ADD_EDGE") {
    if (tokens.size() != 4) return "ERR ADD_EDGE wants: ADD_EDGE <u> <v> <w>";
    return UpdateResponse(service.AddOrDecreaseEdge(ParseU32(tokens[1], "u"),
                                                    ParseU32(tokens[2], "v"),
                                                    ParseU32(tokens[3], "w")));
  }
  if (cmd == "SET_EDGE") {
    if (tokens.size() != 4) return "ERR SET_EDGE wants: SET_EDGE <u> <v> <w>";
    return UpdateResponse(service.SetEdgeWeight(ParseU32(tokens[1], "u"),
                                                ParseU32(tokens[2], "v"),
                                                ParseU32(tokens[3], "w")));
  }
  if (cmd == "REMOVE_EDGE") {
    if (tokens.size() != 3) {
      return "ERR REMOVE_EDGE wants: REMOVE_EDGE <u> <v>";
    }
    return UpdateResponse(service.RemoveEdge(ParseU32(tokens[1], "u"),
                                             ParseU32(tokens[2], "v")));
  }
  if (tokens.size() != 3) {
    return "ERR " + cmd + " wants: " + cmd + " <vertex> <category>";
  }
  VertexId v = ParseU32(tokens[1], "vertex");
  CategoryId c = ParseU32(tokens[2], "category");
  UpdateAck ack = cmd == "ADD_CAT" ? service.AddVertexCategory(v, c)
                                   : service.RemoveVertexCategory(v, c);
  return "OK UPDATED version=" + std::to_string(ack.snapshot_version);
}

}  // namespace

bool ParseQueryLine(const std::string& line, ServiceRequest* request,
                    std::string* error) {
  try {
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty() || tokens[0] != "QUERY" || tokens.size() < 5 ||
        tokens.size() > 6) {
      *error =
          "ERR QUERY wants: QUERY <source> <target> <c1,c2,...> <k> "
          "[<method>]";
      return false;
    }
    request->query.source = ParseU32(tokens[1], "source");
    request->query.target = ParseU32(tokens[2], "target");
    request->query.sequence = ParseCategorySequence(tokens[3]);
    request->query.k = ParseU32(tokens[4], "k");
    if (tokens.size() == 6 &&
        !ParseMethod(tokens[5], &request->options.algorithm,
                     &request->options.nn_mode)) {
      *error = "ERR unknown method: " + tokens[5];
      return false;
    }
    return true;
  } catch (const std::exception& e) {
    *error = std::string("ERR ") + e.what();
    return false;
  }
}

std::string FormatQueryResponse(KosrService& service,
                                const ServiceResponse& response) {
  switch (response.status) {
    case ResponseStatus::kRejected:
      return "REJECTED " + response.error;
    case ResponseStatus::kShutdown:
      return "ERR service stopped";
    case ResponseStatus::kError:
      return "ERR " + response.error;
    case ResponseStatus::kOk:
      break;
  }
  // The serialize stage span covers formatting the OK line; the worker is
  // done with the request by now, so the protocol layer reports it.
  WallTimer serialize;
  std::ostringstream os;
  os << "OK ROUTES n=" << response.result.routes.size() << " costs=";
  for (size_t i = 0; i < response.result.routes.size(); ++i) {
    if (i > 0) os << ',';
    os << response.result.routes[i].cost;
  }
  os << " cached=" << (response.cache_hit ? 1 : 0)
     << " ms=" << response.latency_s * 1e3;
  // A budget-truncated answer may be partial/suboptimal; the client must
  // be able to tell it from a complete one (the cache already refuses it).
  if (response.result.stats.timed_out) os << " truncated=1";
  os << " version=" << response.snapshot_version;
  std::string line = os.str();
  service.RecordSerializeSpan(serialize.ElapsedSeconds());
  return line;
}

CategorySequence ParseCategorySequence(const std::string& token) {
  CategorySequence sequence;
  size_t start = 0;
  for (;;) {
    size_t comma = token.find(',', start);
    sequence.push_back(ParseU32(
        token.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start),
        "category"));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return sequence;
}

bool ParseMethod(const std::string& token, Algorithm* algorithm,
                 NnMode* nn_mode) {
  std::string base = token;
  *nn_mode = NnMode::kHopLabel;
  if (base.size() > 4 && base.substr(base.size() - 4) == "-dij") {
    *nn_mode = NnMode::kDijkstra;
    base = base.substr(0, base.size() - 4);
  }
  if (base == "sk") {
    *algorithm = Algorithm::kStar;
  } else if (base == "pk") {
    *algorithm = Algorithm::kPruning;
  } else if (base == "kpne") {
    *algorithm = Algorithm::kKpne;
  } else {
    return false;
  }
  return true;
}

std::string HandleRequestLine(KosrService& service, const std::string& line) {
  try {
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) return "ERR empty request";
    const std::string& cmd = tokens[0];
    if (cmd == "QUERY") return HandleQuery(service, line);
    if (cmd == "ADD_CAT" || cmd == "REMOVE_CAT" || cmd == "ADD_EDGE" ||
        cmd == "SET_EDGE" || cmd == "REMOVE_EDGE") {
      return HandleUpdate(service, tokens);
    }
    if (cmd == "FLUSH_UPDATES") {
      UpdateAck ack = service.FlushUpdates();
      std::ostringstream os;
      os << "OK FLUSHED changed=" << (ack.summary.graph_changed ? 1 : 0)
         << " labels="
         << ack.summary.changed_in_labels + ack.summary.changed_out_labels
         << " version=" << ack.snapshot_version;
      return os.str();
    }
    if (cmd == "CHECKPOINT") {
      if (!service.durable()) {
        return "ERR CHECKPOINT requires serve --journal";
      }
      CheckpointAck ack = service.Checkpoint();
      std::ostringstream os;
      os << "OK CHECKPOINT written=" << (ack.written ? 1 : 0)
         << " seq=" << ack.seq;
      return os.str();
    }
    if (cmd == "METRICS") return "OK METRICS " + service.MetricsJson();
    if (cmd == "PING") return "OK PONG";
    if (cmd == "QUIT") return "OK BYE";
    return "ERR unknown command: " + cmd;
  } catch (const std::exception& e) {
    return std::string("ERR ") + e.what();
  }
}

uint64_t RunServeLoop(KosrService& service, std::istream& in,
                      std::ostream& out, const std::atomic<bool>* stop) {
  uint64_t handled = 0;
  std::string line;
  while (!(stop && stop->load(std::memory_order_relaxed)) &&
         std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Skip blank lines and comments so request files can be annotated.
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::string response = HandleRequestLine(service, line);
    out << response << "\n" << std::flush;
    ++handled;
    if (response == "OK BYE") break;
  }
  return handled;
}

}  // namespace kosr::service
