#include "src/service/metrics.h"

#include <sstream>

namespace kosr::service {

const char* MethodName(Algorithm algorithm, NnMode nn_mode) {
  bool dij = nn_mode == NnMode::kDijkstra;
  switch (algorithm) {
    case Algorithm::kKpne:
      return dij ? "KPNE-Dij" : "KPNE";
    case Algorithm::kPruning:
      return dij ? "PK-Dij" : "PK";
    case Algorithm::kStar:
      return dij ? "SK-Dij" : "SK";
  }
  return "?";
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"uptime_s\":" << uptime_s << ",\"submitted\":" << submitted
     << ",\"completed\":" << completed << ",\"rejected\":" << rejected
     << ",\"errors\":" << errors << ",\"qps\":" << qps << ",\"cache\":{"
     << "\"hits\":" << cache.hits << ",\"misses\":" << cache.misses
     << ",\"insertions\":" << cache.insertions
     << ",\"evictions\":" << cache.evictions
     << ",\"invalidations\":" << cache.invalidations
     << ",\"hit_rate\":" << cache.HitRate() << "},\"methods\":{";
  bool first = true;
  for (const auto& [name, histogram] : per_method) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << histogram.SummaryJson();
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::RecordCompleted(Algorithm algorithm, NnMode nn_mode,
                                      double latency_seconds) {
  completed_.fetch_add(1, kRelaxed);
  MutexLock lock(histogram_mutex_);
  per_method_
      .try_emplace(MethodName(algorithm, nn_mode),
                   LatencyHistogram(kMaxSamplesPerMethod))
      .first->second.Record(latency_seconds);
}

MetricsSnapshot MetricsRegistry::Snapshot(const CacheStats& cache) const {
  MetricsSnapshot snap;
  // The uptime clock is restarted by Reset() under the same mutex; read it
  // inside the lock so a concurrent Metrics()/Reset() pair does not race.
  MutexLock lock(histogram_mutex_);
  snap.uptime_s = uptime_.ElapsedSeconds();
  snap.submitted = submitted_.load(kRelaxed);
  snap.completed = completed_.load(kRelaxed);
  snap.rejected = rejected_.load(kRelaxed);
  snap.errors = errors_.load(kRelaxed);
  snap.qps = snap.uptime_s > 0 ? snap.completed / snap.uptime_s : 0;
  snap.cache = cache;
  snap.per_method = per_method_;
  return snap;
}

void MetricsRegistry::Reset() {
  submitted_.store(0, kRelaxed);
  completed_.store(0, kRelaxed);
  rejected_.store(0, kRelaxed);
  errors_.store(0, kRelaxed);
  MutexLock lock(histogram_mutex_);
  per_method_.clear();
  uptime_.Reset();
}

}  // namespace kosr::service
