#include "src/service/metrics.h"

#include <sstream>
#include <utility>

namespace kosr::service {

const char* MethodName(Algorithm algorithm, NnMode nn_mode) {
  bool dij = nn_mode == NnMode::kDijkstra;
  switch (algorithm) {
    case Algorithm::kKpne:
      return dij ? "KPNE-Dij" : "KPNE";
    case Algorithm::kPruning:
      return dij ? "PK-Dij" : "PK";
    case Algorithm::kStar:
      return dij ? "SK-Dij" : "SK";
  }
  return "?";
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"uptime_s\":" << uptime_s << ",\"submitted\":" << submitted
     << ",\"completed\":" << completed << ",\"rejected\":" << rejected
     << ",\"errors\":" << errors << ",\"qps\":" << qps << ",\"gauges\":{"
     << "\"queue_depth\":" << queue_depth << ",\"in_flight\":" << in_flight
     << "},\"snapshots\":{"
     << "\"version\":" << snapshots.version
     << ",\"live_snapshots\":" << snapshots.live_snapshots
     << ",\"epoch_lag\":" << snapshots.epoch_lag
     << ",\"pending_updates\":" << snapshots.pending_updates
     << ",\"updates_enqueued\":" << snapshots.updates_enqueued
     << ",\"updates_applied\":" << snapshots.updates_applied
     << ",\"batches_applied\":" << snapshots.batches_applied
     << "},\"durability\":{"
     << "\"enabled\":" << (durability.enabled ? "true" : "false")
     << ",\"journal_bytes\":" << durability.journal_bytes
     << ",\"journal_appends\":" << durability.journal_appends
     << ",\"journal_fsyncs\":" << durability.journal_fsyncs
     << ",\"journal_truncations\":" << durability.journal_truncations
     << ",\"applied_seq\":" << durability.applied_seq
     << ",\"checkpoint_seq\":" << durability.checkpoint_seq
     << ",\"checkpoints_written\":" << durability.checkpoints_written
     << ",\"replayed_records\":" << durability.replayed_records
     << ",\"recovery_s\":" << durability.recovery_s
     << "},\"net\":{"
     << "\"enabled\":" << (net.enabled ? "true" : "false")
     << ",\"connections_accepted\":" << net.connections_accepted
     << ",\"connections_open\":" << net.connections_open
     << ",\"frames_in\":" << net.frames_in
     << ",\"frames_out\":" << net.frames_out
     << ",\"bytes_in\":" << net.bytes_in
     << ",\"bytes_out\":" << net.bytes_out
     << ",\"partial_reads\":" << net.partial_reads
     << ",\"rejected_frames\":" << net.rejected_frames
     << ",\"bad_frames\":" << net.bad_frames
     << ",\"in_flight_queries\":" << net.in_flight_queries
     << "},\"cache\":{"
     << "\"hits\":" << cache.hits << ",\"misses\":" << cache.misses
     << ",\"insertions\":" << cache.insertions
     << ",\"evictions\":" << cache.evictions
     << ",\"invalidations\":" << cache.invalidations
     << ",\"hit_rate\":" << cache.HitRate() << "},\"methods\":{";
  bool first = true;
  for (const auto& [name, histogram] : per_method) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << histogram.SummaryJson();
  }
  os << "},\"stages\":{";
  for (size_t i = 0; i < obs::kNumStages; ++i) {
    if (i != 0) os << ",";
    os << "\"" << obs::StageName(static_cast<obs::Stage>(i))
       << "\":" << stages[i].SummaryJson();
  }
  os << "},\"counters\":{";
  for (size_t i = 0; i < obs::kNumCounters; ++i) {
    if (i != 0) os << ",";
    os << "\"" << obs::CounterName(static_cast<obs::Counter>(i))
       << "\":" << counters[i];
  }
  os << "},\"slow_queries\":[";
  for (size_t i = 0; i < slow_queries.size(); ++i) {
    if (i != 0) os << ",";
    os << slow_queries[i].ToJson();
  }
  os << "]}";
  return os.str();
}

void MetricsRegistry::RecordCompleted(Algorithm algorithm, NnMode nn_mode,
                                      double latency_seconds) {
  completed_.fetch_add(1, kRelaxed);
  MutexLock lock(histogram_mutex_);
  per_method_[MethodName(algorithm, nn_mode)].Record(latency_seconds);
}

void MetricsRegistry::RecordStages(const obs::StageTimes& stages) {
  MutexLock lock(histogram_mutex_);
  for (size_t i = 0; i < obs::kNumStages; ++i) {
    obs::Stage stage = static_cast<obs::Stage>(i);
    if (stages.Recorded(stage)) stages_[i].Record(stages.Get(stage));
  }
}

void MetricsRegistry::RecordStage(obs::Stage stage, double seconds) {
  MutexLock lock(histogram_mutex_);
  stages_[static_cast<size_t>(stage)].Record(seconds);
}

void MetricsRegistry::AddEngineCounters(const obs::EngineCounters& delta) {
  for (size_t i = 0; i < obs::kNumCounters; ++i) {
    uint64_t v = delta.slots[i];
    if (v == 0) continue;
    std::atomic<uint64_t>& total = engine_counters_[i];
    if (obs::IsMaxCounter(static_cast<obs::Counter>(i))) {
      uint64_t cur = total.load(kRelaxed);
      while (cur < v && !total.compare_exchange_weak(cur, v, kRelaxed)) {
      }
    } else {
      total.fetch_add(v, kRelaxed);
    }
  }
}

void MetricsRegistry::RecordSlowQuery(obs::SlowQueryEntry entry) {
  MutexLock lock(histogram_mutex_);
  if (slow_capacity_ == 0) return;
  if (slow_ring_.size() < slow_capacity_) {
    slow_ring_.push_back(std::move(entry));
  } else {
    slow_ring_[slow_next_] = std::move(entry);
    slow_next_ = (slow_next_ + 1) % slow_capacity_;
  }
}

void MetricsRegistry::SetSlowLogCapacity(size_t capacity) {
  MutexLock lock(histogram_mutex_);
  slow_capacity_ = capacity;
  slow_ring_.clear();
  slow_ring_.reserve(capacity);
  slow_next_ = 0;
}

MetricsSnapshot MetricsRegistry::Snapshot(
    const CacheStats& cache, uint32_t queue_depth, uint32_t in_flight,
    const SnapshotGauges& snapshots, const DurabilityGauges& durability,
    const NetGauges& net) const {
  MetricsSnapshot snap;
  // The uptime clock and the counters are reset under the same mutex; read
  // everything inside the lock so a concurrent Metrics()/Reset() pair does
  // not race (a snapshot straddling a reset would pair fresh counters with
  // a stale clock and mis-report QPS).
  MutexLock lock(histogram_mutex_);
  snap.uptime_s = uptime_.ElapsedSeconds();
  snap.submitted = submitted_.load(kRelaxed);
  snap.completed = completed_.load(kRelaxed);
  snap.rejected = rejected_.load(kRelaxed);
  snap.errors = errors_.load(kRelaxed);
  snap.qps = snap.uptime_s > 0 ? snap.completed / snap.uptime_s : 0;
  snap.queue_depth = queue_depth;
  snap.in_flight = in_flight;
  snap.snapshots = snapshots;
  snap.durability = durability;
  snap.net = net;
  snap.cache = cache;
  snap.per_method = per_method_;
  snap.stages = stages_;
  for (size_t i = 0; i < obs::kNumCounters; ++i) {
    snap.counters[i] = engine_counters_[i].load(kRelaxed);
  }
  // Unroll the ring into chronological order: when full, slow_next_ points
  // at the oldest retained entry.
  snap.slow_queries.reserve(slow_ring_.size());
  for (size_t i = 0; i < slow_ring_.size(); ++i) {
    snap.slow_queries.push_back(
        slow_ring_[(slow_next_ + i) % slow_ring_.size()]);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(histogram_mutex_);
  submitted_.store(0, kRelaxed);
  completed_.store(0, kRelaxed);
  rejected_.store(0, kRelaxed);
  errors_.store(0, kRelaxed);
  for (std::atomic<uint64_t>& c : engine_counters_) c.store(0, kRelaxed);
  per_method_.clear();
  for (obs::LogHistogram& h : stages_) h.Clear();
  slow_ring_.clear();
  slow_next_ = 0;
  uptime_.Reset();
}

}  // namespace kosr::service
