#ifndef KOSR_SERVICE_METRICS_H_
#define KOSR_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/query.h"
#include "src/obs/counters.h"
#include "src/obs/log_histogram.h"
#include "src/obs/trace.h"
#include "src/service/result_cache.h"
#include "src/util/sync.h"
#include "src/util/timer.h"

namespace kosr::service {

/// Canonical method name for an (algorithm, NN mode) pair, matching the
/// paper's naming used across the benches: SK, PK, KPNE, SK-Dij, ...
const char* MethodName(Algorithm algorithm, NnMode nn_mode);

/// Snapshot-publication gauges, sampled by the service from its
/// SnapshotDomain and update-batching state at Metrics() time (ISSUE 8).
struct SnapshotGauges {
  /// Version of the currently published snapshot (1 = initial seal).
  uint64_t version = 0;
  /// Published snapshots not yet reclaimed (1 at quiescence).
  uint64_t live_snapshots = 0;
  /// Global epoch minus the oldest pinned reader's epoch (0 = all current).
  uint64_t epoch_lag = 0;
  /// Edge updates buffered, waiting for the batch window to close.
  uint64_t pending_updates = 0;
  /// Edge updates accepted so far (buffered or applied).
  uint64_t updates_enqueued = 0;
  /// Edge updates whose graph mutation has been applied.
  uint64_t updates_applied = 0;
  /// Update batches flushed into a repair (each at most one publication).
  uint64_t batches_applied = 0;
};

/// Durability gauges, sampled by the service from its journal and
/// checkpoint state at Metrics() time (ISSUE 9). All zero (enabled =
/// false) when the service runs without a journal.
struct DurabilityGauges {
  bool enabled = false;
  /// Current journal file size (bytes, header included).
  uint64_t journal_bytes = 0;
  /// Records appended / fsync(2) calls / checkpoint truncations since the
  /// journal was opened.
  uint64_t journal_appends = 0;
  uint64_t journal_fsyncs = 0;
  uint64_t journal_truncations = 0;
  /// Last journal sequence applied to the engine, and the last sequence
  /// the newest on-disk checkpoint covers.
  uint64_t applied_seq = 0;
  uint64_t checkpoint_seq = 0;
  /// Checkpoints written by this process.
  uint64_t checkpoints_written = 0;
  /// Journal records replayed at startup, and total recovery time.
  uint64_t replayed_records = 0;
  double recovery_s = 0;
};

/// Network-transport gauges, sampled from the TCP front-end's counters at
/// Metrics() time (ISSUE 10). All zero (enabled = false) while no server
/// is attached — the stdio transport reports nothing here.
struct NetGauges {
  bool enabled = false;
  /// Connections accepted since the server started / currently open.
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  /// Complete frames decoded off / written onto the wire.
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  /// Raw socket bytes received / sent.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  /// Read passes that left a torn frame buffered (partial-read events).
  uint64_t partial_reads = 0;
  /// Frames answered with REJECTED (pipeline cap or service queue full).
  uint64_t rejected_frames = 0;
  /// Framing violations (lying length prefixes) that poisoned a stream.
  uint64_t bad_frames = 0;
  /// Query frames submitted to the worker pool, not yet answered.
  uint64_t in_flight_queries = 0;
};

/// Frozen view of the registry, taken under the lock.
struct MetricsSnapshot {
  double uptime_s = 0;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  double qps = 0;  ///< completed / uptime.
  /// Queue/backpressure gauges, sampled by the service at snapshot time.
  uint32_t queue_depth = 0;
  uint32_t in_flight = 0;
  SnapshotGauges snapshots;
  DurabilityGauges durability;
  NetGauges net;
  CacheStats cache;
  /// End-to-end (enqueue -> response) latency per method name. Cache hits
  /// are included: the service-level percentiles are what a client sees.
  std::map<std::string, obs::LogHistogram> per_method;
  /// Per-stage span histograms, indexed by obs::Stage. Queue-wait,
  /// and serialize cover every request; NN and enumerate only
  /// the sampled ones, so their counts are lower.
  std::array<obs::LogHistogram, obs::kNumStages> stages;
  /// Aggregated engine work counters, indexed by obs::Counter (sum
  /// counters accumulate; max counters hold the process-wide high water).
  std::array<uint64_t, obs::kNumCounters> counters{};
  /// Retained slow-query traces, oldest first.
  std::vector<obs::SlowQueryEntry> slow_queries;

  std::string ToJson() const;
};

/// Aggregates service-level counters, per-method and per-stage latency
/// histograms, engine work counters, and a slow-query ring buffer.
/// Counter bumps are atomic; histogram and slow-log writes take a mutex
/// (they are off the query's critical path — recorded once per completed
/// request). Memory is bounded for arbitrarily long uptimes: LogHistogram
/// has a fixed bucket array and the slow log is a fixed-capacity ring.
class MetricsRegistry {
 public:
  void RecordSubmitted() { submitted_.fetch_add(1, kRelaxed); }
  void RecordRejected() { rejected_.fetch_add(1, kRelaxed); }
  void RecordError() { errors_.fetch_add(1, kRelaxed); }
  void RecordCompleted(Algorithm algorithm, NnMode nn_mode,
                       double latency_seconds) KOSR_EXCLUDES(histogram_mutex_);

  /// Folds one query's recorded spans into the per-stage histograms
  /// (unrecorded slots are skipped).
  void RecordStages(const obs::StageTimes& stages)
      KOSR_EXCLUDES(histogram_mutex_);
  /// Single-stage variant for spans measured outside the worker (the
  /// protocol layer times response serialization).
  void RecordStage(obs::Stage stage, double seconds)
      KOSR_EXCLUDES(histogram_mutex_);

  /// Folds a per-thread counter delta into the shared totals: relaxed
  /// fetch_add for sum counters, a CAS max-merge for high-water counters.
  /// Lock-free — called once per completed request by every worker.
  void AddEngineCounters(const obs::EngineCounters& delta);

  /// Retains one slow-query trace in the ring (dropping the oldest once
  /// full). No-op while the capacity is zero.
  void RecordSlowQuery(obs::SlowQueryEntry entry)
      KOSR_EXCLUDES(histogram_mutex_);
  /// Sets the ring capacity and drops any retained entries. Intended for
  /// service construction; safe (but destructive) at any time.
  void SetSlowLogCapacity(size_t capacity) KOSR_EXCLUDES(histogram_mutex_);

  /// Snapshot including the cache's counters and the service's queue and
  /// snapshot-publication gauges (all live beside the registry in the
  /// service; passing them in keeps this class standalone).
  MetricsSnapshot Snapshot(const CacheStats& cache, uint32_t queue_depth,
                           uint32_t in_flight,
                           const SnapshotGauges& snapshots,
                           const DurabilityGauges& durability = {},
                           const NetGauges& net = {}) const
      KOSR_EXCLUDES(histogram_mutex_);

  /// Zeroes counters and histograms and restarts the uptime clock; the
  /// throughput bench uses this between its cold and warm phases. The
  /// counter stores happen under the same lock Snapshot() reads under, so
  /// a concurrent snapshot sees either the old counters with the old clock
  /// or the zeroed counters with the fresh clock — never a mix (which
  /// would mis-report QPS).
  void Reset() KOSR_EXCLUDES(histogram_mutex_);

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> errors_{0};
  /// Shared engine-counter totals. Value-initialized atomics start at zero.
  std::array<std::atomic<uint64_t>, obs::kNumCounters> engine_counters_{};
  mutable Mutex histogram_mutex_;
  std::map<std::string, obs::LogHistogram> per_method_
      KOSR_GUARDED_BY(histogram_mutex_);
  std::array<obs::LogHistogram, obs::kNumStages> stages_
      KOSR_GUARDED_BY(histogram_mutex_);
  /// Slow-query ring: grows to slow_capacity_, then slow_next_ wraps.
  std::vector<obs::SlowQueryEntry> slow_ring_
      KOSR_GUARDED_BY(histogram_mutex_);
  size_t slow_capacity_ KOSR_GUARDED_BY(histogram_mutex_) = 0;
  size_t slow_next_ KOSR_GUARDED_BY(histogram_mutex_) = 0;
  /// Also guarded: Reset() restarts the clock while Snapshot() reads it, so
  /// the pair is only coherent under the same lock.
  WallTimer uptime_ KOSR_GUARDED_BY(histogram_mutex_);
};

}  // namespace kosr::service

#endif  // KOSR_SERVICE_METRICS_H_
