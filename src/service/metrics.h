#ifndef KOSR_SERVICE_METRICS_H_
#define KOSR_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "src/core/query.h"
#include "src/service/result_cache.h"
#include "src/util/stats.h"
#include "src/util/sync.h"
#include "src/util/timer.h"

namespace kosr::service {

/// Canonical method name for an (algorithm, NN mode) pair, matching the
/// paper's naming used across the benches: SK, PK, KPNE, SK-Dij, ...
const char* MethodName(Algorithm algorithm, NnMode nn_mode);

/// Frozen view of the registry, taken under the lock.
struct MetricsSnapshot {
  double uptime_s = 0;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  double qps = 0;  ///< completed / uptime.
  CacheStats cache;
  /// End-to-end (enqueue -> response) latency per method name. Cache hits
  /// are included: the service-level percentiles are what a client sees.
  std::map<std::string, LatencyHistogram> per_method;

  std::string ToJson() const;
};

/// Aggregates service-level counters and per-method latency histograms.
/// Counter bumps are atomic; histogram writes take a mutex (they are off
/// the query's critical path — recorded once per completed request).
/// Memory is bounded for arbitrarily long uptimes: each per-method
/// histogram caps its retained samples at kMaxSamplesPerMethod (uniform
/// reservoir — count/mean stay exact, percentiles become estimates once a
/// method exceeds the cap).
class MetricsRegistry {
 public:
  /// 64Ki doubles = 512 KiB per method; also bounds the sort cost of a
  /// METRICS snapshot.
  static constexpr size_t kMaxSamplesPerMethod = 1 << 16;
  void RecordSubmitted() { submitted_.fetch_add(1, kRelaxed); }
  void RecordRejected() { rejected_.fetch_add(1, kRelaxed); }
  void RecordError() { errors_.fetch_add(1, kRelaxed); }
  void RecordCompleted(Algorithm algorithm, NnMode nn_mode,
                       double latency_seconds) KOSR_EXCLUDES(histogram_mutex_);

  /// Snapshot including the cache's counters (the cache lives beside the
  /// registry in the service; passing it in keeps this class standalone).
  MetricsSnapshot Snapshot(const CacheStats& cache) const
      KOSR_EXCLUDES(histogram_mutex_);

  /// Zeroes counters and histograms and restarts the uptime clock; the
  /// throughput bench uses this between its cold and warm phases.
  void Reset() KOSR_EXCLUDES(histogram_mutex_);

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> errors_{0};
  mutable Mutex histogram_mutex_;
  std::map<std::string, LatencyHistogram> per_method_
      KOSR_GUARDED_BY(histogram_mutex_);
  /// Also guarded: Reset() restarts the clock while Snapshot() reads it, so
  /// the pair is only coherent under the same lock.
  WallTimer uptime_ KOSR_GUARDED_BY(histogram_mutex_);
};

}  // namespace kosr::service

#endif  // KOSR_SERVICE_METRICS_H_
