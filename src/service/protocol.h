#ifndef KOSR_SERVICE_PROTOCOL_H_
#define KOSR_SERVICE_PROTOCOL_H_

#include <atomic>
#include <iosfwd>
#include <string>

#include "src/service/service.h"

namespace kosr::service {

/// Newline-delimited request/response protocol spoken by `kosr_cli serve`
/// over stdin/stdout: one request line in, exactly one response line out,
/// in order. Scriptable from a shell pipe and testable under CTest.
///
/// Request grammar (tokens separated by spaces; blank lines and lines
/// starting with '#' are ignored; README.md has the full grammar):
///
///   QUERY <source> <target> <c1,c2,...> <k> [<method>]
///   ADD_CAT <vertex> <category>
///   REMOVE_CAT <vertex> <category>
///   ADD_EDGE <u> <v> <weight>        (insert / decrease only; worse weight
///                                     is a no-op)
///   SET_EDGE <u> <v> <weight>        (set exactly: insert, decrease, or
///                                     increase with incremental repair)
///   REMOVE_EDGE <u> <v>              (delete the arc, incremental repair)
///   FLUSH_UPDATES                    (apply buffered edge updates now,
///                                     without waiting for the batch window)
///   CHECKPOINT                       (flush, snapshot engine state to the
///                                     journal directory, truncate the
///                                     journal; needs serve --journal)
///   METRICS
///   PING
///   QUIT
///
/// <method> is one of sk | pk | kpne | sk-dij | pk-dij | kpne-dij
/// (default sk). Every answer-bearing response carries the version of the
/// snapshot it was computed against (`version=`), so a peer can correlate
/// answers with the updates it has submitted. Responses:
///
///   OK ROUTES n=<n> costs=<c1,c2,...> cached=<0|1> ms=<latency>
///             [truncated=1] version=<v>    (truncated: time budget hit,
///                                           partial answer)
///   OK UPDATED version=<v>                (ADD_CAT / REMOVE_CAT)
///   OK UPDATED changed=<0|1> labels=<n> version=<v>
///             (edge verbs, applied synchronously: whether the graph
///             changed, and how many label vectors were repaired)
///   OK BUFFERED pending=<n> version=<v>   (edge verbs under a batch
///             window: buffered, not yet applied; version still current)
///   OK FLUSHED changed=<0|1> labels=<n> version=<v>
///   OK CHECKPOINT written=<0|1> seq=<s>  (written=0: already current)
///   OK METRICS <json>
///   OK PONG
///   OK BYE
///   REJECTED <reason>
///   ERR <message>
///
/// Parses one request line and executes it against the service, returning
/// the response line (no trailing newline). Never throws: malformed input
/// and engine errors become "ERR ..." responses.
std::string HandleRequestLine(KosrService& service, const std::string& line);

/// Parses a QUERY request line into a service request without executing it.
/// The TCP transport needs parse and execute split apart: it pipelines
/// queries through the callback SubmitAsync and formats the response when
/// the worker completes, while every other verb still goes through
/// HandleRequestLine. Returns false with *error set on malformed input;
/// never throws.
bool ParseQueryLine(const std::string& line, ServiceRequest* request,
                    std::string* error);

/// Formats a completed query response exactly as HandleRequestLine would
/// ("OK ROUTES ..." / "REJECTED ..." / "ERR ..."), recording the serialize
/// stage span for OK responses.
std::string FormatQueryResponse(KosrService& service,
                                const ServiceResponse& response);

/// Reads request lines from `in` until EOF or QUIT, writing one response
/// line per request to `out` (flushed per line, so a pipe peer can
/// request/response in lockstep). Returns the number of requests handled.
/// `stop` (optional) makes the loop exit between requests once it reads
/// true — the serve front-end's SIGTERM/SIGINT flag; the handler's
/// unrestarted signal also interrupts a getline blocked in read(2), so a
/// mid-read shutdown request is seen promptly.
///
/// Deliberately one request in flight at a time: an interactive peer waits
/// for response i before sending line i+1, so reading ahead to pipeline
/// would deadlock it. Consequently the worker pool's parallelism and the
/// queue's REJECTED backpressure don't surface through this front-end —
/// they belong to the concurrent C++ API (Submit/SubmitAsync), which the
/// throughput bench drives.
uint64_t RunServeLoop(KosrService& service, std::istream& in,
                      std::ostream& out,
                      const std::atomic<bool>* stop = nullptr);

/// Parses a method token (sk, pk-dij, ...) into options; returns false on
/// unknown token.
bool ParseMethod(const std::string& token, Algorithm* algorithm,
                 NnMode* nn_mode);

/// Strict "c1,c2,..." parser shared with the CLI front-end: digits only
/// (signs are rejected, not wrapped through unsigned conversion), no empty
/// parts. Throws std::invalid_argument on malformed input.
CategorySequence ParseCategorySequence(const std::string& token);

}  // namespace kosr::service

#endif  // KOSR_SERVICE_PROTOCOL_H_
