#include "src/service/service.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

namespace kosr::service {
namespace {

// The engine's update entry points index internal tables unchecked; the
// service fronts untrusted callers (the serve protocol), so range-check
// here and throw — the worker/protocol layers turn this into an error
// response instead of corrupting the long-lived process.
void CheckVertex(const KosrEngine& engine, VertexId v, const char* what) {
  if (v >= engine.graph().num_vertices()) {
    throw std::invalid_argument(std::string(what) + " " + std::to_string(v) +
                                " outside the vertex universe");
  }
}

void CheckCategory(const KosrEngine& engine, CategoryId c) {
  if (c >= engine.categories().num_categories()) {
    throw std::invalid_argument("unknown category " + std::to_string(c));
  }
}

}  // namespace

KosrService::KosrService(KosrEngine engine, const ServiceConfig& config)
    : engine_(std::move(engine)),
      cache_(config.cache_capacity, config.cache_shards),
      num_workers_(config.num_workers != 0
                       ? config.num_workers
                       : std::max(1u, std::thread::hardware_concurrency())),
      queue_capacity_(std::max<size_t>(1, config.queue_capacity)),
      default_time_budget_s_(config.default_time_budget_s),
      slow_query_threshold_s_(config.slow_query_threshold_s),
      stage_sample_every_(config.stage_sample_every) {
  metrics_.SetSlowLogCapacity(
      config.slow_query_threshold_s > 0 ? config.slow_log_capacity : 0);
  if (config.start_workers) Start();
}

KosrService::~KosrService() { Stop(); }

void KosrService::Start() {
  MutexLock lifecycle(lifecycle_mutex_);
  if (!workers_.empty()) return;
  {
    MutexLock lock(queue_mutex_);
    stopping_ = false;
  }
  workers_.reserve(num_workers_);
  for (uint32_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back(&KosrService::WorkerLoop, this);
  }
}

void KosrService::Stop() {
  MutexLock lifecycle(lifecycle_mutex_);
  std::deque<Pending> drained;
  {
    MutexLock lock(queue_mutex_);
    stopping_ = true;
    drained.swap(queue_);
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  for (Pending& pending : drained) {
    ServiceResponse response;
    response.status = ResponseStatus::kShutdown;
    pending.promise.set_value(std::move(response));
  }
}

std::future<ServiceResponse> KosrService::SubmitAsync(
    const ServiceRequest& request) {
  std::promise<ServiceResponse> promise;
  std::future<ServiceResponse> future = promise.get_future();
  metrics_.RecordSubmitted();
  {
    MutexLock lock(queue_mutex_);
    if (stopping_) {
      ServiceResponse response;
      response.status = ResponseStatus::kShutdown;
      promise.set_value(std::move(response));
      return future;
    }
    if (queue_.size() >= queue_capacity_) {
      metrics_.RecordRejected();
      ServiceResponse response;
      response.status = ResponseStatus::kRejected;
      response.error = "queue full";
      promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back(Pending{request, std::move(promise), WallTimer()});
  }
  queue_cv_.NotifyOne();
  return future;
}

ServiceResponse KosrService::Submit(const ServiceRequest& request) {
  return SubmitAsync(request).get();
}

void KosrService::WorkerLoop() {
  // Worker-private query scratch: the hot containers of every search this
  // worker runs live here, allocated once and reused across requests.
  QueryContext ctx;
  // Worker-local request count driving the engine-phase sampling; no
  // cross-worker coordination needed for a 1-in-N sample.
  uint64_t processed = 0;
  const bool obs_on = obs::Enabled();
  for (;;) {
    Pending pending;
    {
      MutexLock lock(queue_mutex_);
      // Explicit wait loop instead of the predicate overload: the guarded
      // reads stay in this (analyzed) scope, not inside a lambda the
      // thread-safety analysis cannot attribute a lock to.
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(queue_mutex_);
      if (stopping_) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    const double queue_wait_s = pending.queued.ElapsedSeconds();
    const bool sample = obs_on && stage_sample_every_ != 0 &&
                        processed++ % stage_sample_every_ == 0;
    // Engine counters accumulate in this thread's private slots; the delta
    // across one request is folded into the shared registry afterwards.
    obs::EngineCounters before;
    if (obs_on) before = obs::TlsCounters();
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    ServiceResponse response;
    try {
      response = Process(pending.request, ctx, sample);
    } catch (const std::exception& e) {
      response.status = ResponseStatus::kError;
      response.error = e.what();
    } catch (...) {
      response.status = ResponseStatus::kError;
      response.error = "unknown error";
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    response.latency_s = pending.queued.ElapsedSeconds();
    if (response.ok()) {
      metrics_.RecordCompleted(pending.request.options.algorithm,
                               pending.request.options.nn_mode,
                               response.latency_s);
    } else {
      metrics_.RecordError();
    }
    if (obs_on) {
      ctx.stage_times.Set(obs::Stage::kQueueWait, queue_wait_s);
      metrics_.RecordStages(ctx.stage_times);
      metrics_.AddEngineCounters(obs::Diff(obs::TlsCounters(), before));
      if (response.ok() && slow_query_threshold_s_ > 0 &&
          response.latency_s >= slow_query_threshold_s_) {
        obs::SlowQueryEntry entry;
        entry.method = MethodName(pending.request.options.algorithm,
                                  pending.request.options.nn_mode);
        entry.source = pending.request.query.source;
        entry.target = pending.request.query.target;
        entry.k = pending.request.query.k;
        entry.sequence_length =
            static_cast<uint32_t>(pending.request.query.sequence.size());
        entry.latency_s = response.latency_s;
        entry.cache_hit = response.cache_hit;
        entry.timed_out = response.result.stats.timed_out;
        entry.stages = ctx.stage_times;
        metrics_.RecordSlowQuery(std::move(entry));
      }
    }
    pending.promise.set_value(std::move(response));
  }
}

bool KosrService::Cacheable(const ServiceRequest& request) {
  // A slot filter is an opaque std::function — no identity to key on.
  return !request.options.filter;
}

CacheKey KosrService::KeyFor(const ServiceRequest& request) {
  CacheKey key;
  key.source = request.query.source;
  key.target = request.query.target;
  key.sequence = request.query.sequence;
  key.k = request.query.k;
  key.algorithm = request.options.algorithm;
  key.nn_mode = request.options.nn_mode;
  key.with_paths = request.options.reconstruct_paths;
  return key;
}

ServiceResponse KosrService::Process(const ServiceRequest& request,
                                     QueryContext& ctx, bool sample_stages) {
  ctx.stage_times.Clear();
  ServiceResponse response;
  const bool cacheable = cache_.enabled() && Cacheable(request);
  CacheKey key;
  if (cacheable) key = KeyFor(request);

  // Shared lock: queries run concurrently with each other but exclusively
  // with dynamic updates; cache lookup/insert stay inside the lock so an
  // update's invalidation cannot be interleaved with a stale insert.
  WallTimer lock_wait;
  ReaderMutexLock lock(engine_mutex_);
  if (obs::Enabled()) {
    ctx.stage_times.Set(obs::Stage::kLockWait, lock_wait.ElapsedSeconds());
  }
  if (cacheable) {
    if (std::optional<KosrResult> cached = cache_.Lookup(key)) {
      response.result = std::move(*cached);
      response.cache_hit = true;
      return response;
    }
  }
  KosrOptions options = request.options;
  if (options.time_budget_s == 0) {
    options.time_budget_s = default_time_budget_s_;
  }
  if (sample_stages) options.collect_phase_times = true;
  WallTimer engine_timer;
  response.result = engine_.Query(request.query, options, &ctx);
  if (sample_stages) {
    // NN span = the engine's per-phase timers (cursor probing plus NEN
    // estimation); enumeration is the rest of the engine time.
    const double engine_s = engine_timer.ElapsedSeconds();
    const QueryStats& stats = response.result.stats;
    const double nn_s = stats.nn_time_s + stats.estimation_time_s;
    ctx.stage_times.Set(obs::Stage::kNn, nn_s);
    ctx.stage_times.Set(obs::Stage::kEnumerate,
                        std::max(0.0, engine_s - nn_s));
  }
  // Budget-truncated results are incomplete; serving them from cache would
  // turn one slow query into many wrong answers.
  if (cacheable && !response.result.stats.timed_out) {
    cache_.Insert(key, response.result);
  }
  return response;
}

void KosrService::AddVertexCategory(VertexId v, CategoryId c) {
  WriterMutexLock lock(engine_mutex_);
  CheckVertex(engine_, v, "vertex");
  CheckCategory(engine_, c);
  engine_.AddVertexCategory(v, c);
  cache_.InvalidateCategory(c);
}

void KosrService::RemoveVertexCategory(VertexId v, CategoryId c) {
  WriterMutexLock lock(engine_mutex_);
  CheckVertex(engine_, v, "vertex");
  CheckCategory(engine_, c);
  engine_.RemoveVertexCategory(v, c);
  cache_.InvalidateCategory(c);
}

EdgeUpdateSummary KosrService::AddOrDecreaseEdge(VertexId u, VertexId v,
                                                 Weight w) {
  WriterMutexLock lock(engine_mutex_);
  CheckVertex(engine_, u, "tail");
  CheckVertex(engine_, v, "head");
  EdgeUpdateSummary summary = engine_.AddOrDecreaseEdge(u, v, w);
  InvalidateForEdgeUpdate(summary);
  return summary;
}

EdgeUpdateSummary KosrService::SetEdgeWeight(VertexId u, VertexId v,
                                             Weight w) {
  WriterMutexLock lock(engine_mutex_);
  CheckVertex(engine_, u, "tail");
  CheckVertex(engine_, v, "head");
  EdgeUpdateSummary summary = engine_.SetEdgeWeight(u, v, w);
  InvalidateForEdgeUpdate(summary);
  return summary;
}

EdgeUpdateSummary KosrService::RemoveEdge(VertexId u, VertexId v) {
  WriterMutexLock lock(engine_mutex_);
  CheckVertex(engine_, u, "tail");
  CheckVertex(engine_, v, "head");
  EdgeUpdateSummary summary = engine_.RemoveEdge(u, v);
  InvalidateForEdgeUpdate(summary);
  return summary;
}

void KosrService::InvalidateForEdgeUpdate(const EdgeUpdateSummary& summary) {
  // Shortest-path distances may move anywhere, so an effective update
  // invalidates every cached route. Targeted part: an update that repaired
  // no label provably changed no distance, path, or KOSR answer (see
  // EdgeUpdateSummary), so it keeps the cache warm — replayed idempotent
  // edge feeds and weight increases on off-shortest-path arcs no longer
  // collapse the hit rate. Without built indexes there is no repair signal
  // and queries run Dijkstra on the raw graph, so any graph change flushes.
  if (summary.labels_changed ||
      (summary.graph_changed && !engine_.indexes_built())) {
    cache_.InvalidateAll();
  }
}

MetricsSnapshot KosrService::Metrics() const {
  return metrics_.Snapshot(cache_.stats(),
                           static_cast<uint32_t>(queue_depth()),
                           in_flight_.load(std::memory_order_relaxed));
}

uint32_t KosrService::num_categories() const {
  ReaderMutexLock lock(engine_mutex_);
  return engine_.categories().num_categories();
}

size_t KosrService::queue_depth() const {
  MutexLock lock(queue_mutex_);
  return queue_.size();
}

}  // namespace kosr::service
