#include "src/service/service.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/durability/checkpoint.h"
#include "src/util/failpoint.h"

namespace kosr::service {
namespace {

using durability::JournalRecord;

JournalRecord EdgeRecord(const EdgeUpdate& update) {
  JournalRecord record;
  switch (update.kind) {
    case EdgeUpdate::Kind::kAddOrDecrease:
      record.type = JournalRecord::Type::kAddOrDecreaseEdge;
      break;
    case EdgeUpdate::Kind::kSet:
      record.type = JournalRecord::Type::kSetEdge;
      break;
    case EdgeUpdate::Kind::kRemove:
      record.type = JournalRecord::Type::kRemoveEdge;
      break;
  }
  record.a = update.u;
  record.b = update.v;
  record.w = update.w;
  return record;
}

JournalRecord CategoryRecord(bool add, VertexId v, CategoryId c) {
  JournalRecord record;
  record.type = add ? JournalRecord::Type::kAddCategory
                    : JournalRecord::Type::kRemoveCategory;
  record.a = v;
  record.b = c;
  return record;
}

// The engine's update entry points index internal tables unchecked; the
// service fronts untrusted callers (the serve protocol), so range-check
// here and throw — the front-end turns this into an error response
// instead of corrupting the long-lived process. The vertex universe is
// fixed for the service's lifetime, so the check needs no lock.
void CheckVertexId(VertexId v, uint32_t num_vertices, const char* what) {
  if (v >= num_vertices) {
    throw std::invalid_argument(std::string(what) + " " + std::to_string(v) +
                                " outside the vertex universe");
  }
}

/// Exception-safe epoch pin: unpins even when the query throws.
class ScopedPin {
 public:
  ScopedPin(SnapshotDomain& domain, uint32_t slot)
      : domain_(domain), slot_(slot), snapshot_(domain.Pin(slot)) {}
  ~ScopedPin() { domain_.Unpin(slot_); }

  ScopedPin(const ScopedPin&) = delete;
  ScopedPin& operator=(const ScopedPin&) = delete;

  const EngineSnapshot* operator->() const { return snapshot_; }

 private:
  SnapshotDomain& domain_;
  uint32_t slot_;
  const EngineSnapshot* snapshot_;
};

}  // namespace

KosrService::KosrService(KosrEngine engine, const ServiceConfig& config,
                         DurabilityAttachment durability)
    : engine_(std::move(engine)),
      cache_(config.cache_capacity, config.cache_shards),
      num_workers_(config.num_workers != 0
                       ? config.num_workers
                       : std::max(1u, std::thread::hardware_concurrency())),
      queue_capacity_(std::max<size_t>(1, config.queue_capacity)),
      default_time_budget_s_(config.default_time_budget_s),
      slow_query_threshold_s_(config.slow_query_threshold_s),
      stage_sample_every_(config.stage_sample_every),
      update_batch_window_s_(std::max(0.0, config.update_batch_window_s)),
      num_vertices_(engine_.graph().num_vertices()),
      domain_(num_workers_, engine_.SealSnapshot(1)),
      journal_(std::move(durability.journal)),
      journal_dir_(std::move(durability.dir)),
      checkpoint_bytes_(durability.checkpoint_bytes),
      applied_seq_(journal_ ? journal_->last_sequence() : 0),
      checkpoint_seq_(durability.checkpoint_seq),
      checkpoint_exists_(durability.checkpoint_loaded),
      replayed_records_(durability.replayed_records),
      recovery_s_(durability.recovery_s) {
  applied_seq_hint_.store(applied_seq_, std::memory_order_relaxed);
  checkpoint_seq_hint_.store(checkpoint_seq_, std::memory_order_relaxed);
  metrics_.SetSlowLogCapacity(
      config.slow_query_threshold_s > 0 ? config.slow_log_capacity : 0);
  if (config.start_workers) Start();
}

KosrService::~KosrService() { Stop(); }

void KosrService::Start() {
  MutexLock lifecycle(lifecycle_mutex_);
  if (!workers_.empty()) return;
  {
    MutexLock lock(queue_mutex_);
    stopping_ = false;
  }
  {
    MutexLock lock(batch_mutex_);
    batch_stopping_ = false;
  }
  workers_.reserve(num_workers_);
  for (uint32_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back(&KosrService::WorkerLoop, this, i);
  }
  if (update_batch_window_s_ > 0) {
    flusher_ = std::thread(&KosrService::FlusherLoop, this);
  }
}

void KosrService::Stop() {
  MutexLock lifecycle(lifecycle_mutex_);
  std::deque<Pending> drained;
  {
    MutexLock lock(queue_mutex_);
    stopping_ = true;
    drained.swap(queue_);
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  {
    MutexLock lock(batch_mutex_);
    batch_stopping_ = true;
  }
  batch_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
  // Buffered updates are applied, never dropped: a window that had not
  // closed yet still reaches the labels (and the next Start's readers).
  FlushUpdates();
  if (journal_) {
    // Graceful shutdown checkpoints so the next start skips replay (and
    // the index build) entirely. Stop() must not throw — it runs from the
    // destructor — so a failed checkpoint is reported, not propagated; the
    // journal still holds everything and recovery replays it.
    try {
      MutexLock publish(publish_mutex_);
      CheckpointLocked();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "shutdown checkpoint failed: %s\n", e.what());
    }
  }
  // Every reader is gone, so every retired snapshot is reclaimable and
  // the live-snapshot gauge converges to 1.
  domain_.Reclaim();
  for (Pending& pending : drained) {
    ServiceResponse response;
    response.status = ResponseStatus::kShutdown;
    pending.done(std::move(response));
  }
}

void KosrService::SubmitAsync(const ServiceRequest& request,
                              std::function<void(ServiceResponse)> done) {
  metrics_.RecordSubmitted();
  // Reject/shutdown resolve inline, but outside the queue lock: the
  // callback is caller code and must not run under queue_mutex_.
  ServiceResponse bounced;
  bool enqueued = false;
  {
    MutexLock lock(queue_mutex_);
    if (stopping_) {
      bounced.status = ResponseStatus::kShutdown;
    } else if (queue_.size() >= queue_capacity_) {
      metrics_.RecordRejected();
      bounced.status = ResponseStatus::kRejected;
      bounced.error = "queue full";
    } else {
      queue_.push_back(Pending{request, std::move(done), WallTimer()});
      enqueued = true;
    }
  }
  if (!enqueued) {
    done(std::move(bounced));
    return;
  }
  queue_cv_.NotifyOne();
}

std::future<ServiceResponse> KosrService::SubmitAsync(
    const ServiceRequest& request) {
  auto promise = std::make_shared<std::promise<ServiceResponse>>();
  std::future<ServiceResponse> future = promise->get_future();
  SubmitAsync(request, [promise](ServiceResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

ServiceResponse KosrService::Submit(const ServiceRequest& request) {
  return SubmitAsync(request).get();
}

void KosrService::WorkerLoop(uint32_t slot) {
  // Worker-private query scratch: the hot containers of every search this
  // worker runs live here, allocated once and reused across requests.
  QueryContext ctx;
  // Worker-local request count driving the engine-phase sampling; no
  // cross-worker coordination needed for a 1-in-N sample.
  uint64_t processed = 0;
  const bool obs_on = obs::Enabled();
  for (;;) {
    Pending pending;
    {
      MutexLock lock(queue_mutex_);
      // Explicit wait loop instead of the predicate overload: the guarded
      // reads stay in this (analyzed) scope, not inside a lambda the
      // thread-safety analysis cannot attribute a lock to.
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(queue_mutex_);
      if (stopping_) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    const double queue_wait_s = pending.queued.ElapsedSeconds();
    const bool sample = obs_on && stage_sample_every_ != 0 &&
                        processed++ % stage_sample_every_ == 0;
    // Engine counters accumulate in this thread's private slots; the delta
    // across one request is folded into the shared registry afterwards.
    obs::EngineCounters before;
    if (obs_on) before = obs::TlsCounters();
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    ServiceResponse response;
    try {
      response = Process(pending.request, ctx, sample, slot);
    } catch (const std::exception& e) {
      response.status = ResponseStatus::kError;
      response.error = e.what();
    } catch (...) {
      response.status = ResponseStatus::kError;
      response.error = "unknown error";
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    response.latency_s = pending.queued.ElapsedSeconds();
    if (response.ok()) {
      metrics_.RecordCompleted(pending.request.options.algorithm,
                               pending.request.options.nn_mode,
                               response.latency_s);
    } else {
      metrics_.RecordError();
    }
    if (obs_on) {
      ctx.stage_times.Set(obs::Stage::kQueueWait, queue_wait_s);
      metrics_.RecordStages(ctx.stage_times);
      metrics_.AddEngineCounters(obs::Diff(obs::TlsCounters(), before));
      if (response.ok() && slow_query_threshold_s_ > 0 &&
          response.latency_s >= slow_query_threshold_s_) {
        obs::SlowQueryEntry entry;
        entry.method = MethodName(pending.request.options.algorithm,
                                  pending.request.options.nn_mode);
        entry.source = pending.request.query.source;
        entry.target = pending.request.query.target;
        entry.k = pending.request.query.k;
        entry.sequence_length =
            static_cast<uint32_t>(pending.request.query.sequence.size());
        entry.latency_s = response.latency_s;
        entry.cache_hit = response.cache_hit;
        entry.timed_out = response.result.stats.timed_out;
        entry.stages = ctx.stage_times;
        metrics_.RecordSlowQuery(std::move(entry));
      }
    }
    pending.done(std::move(response));
  }
}

bool KosrService::Cacheable(const ServiceRequest& request) {
  // A slot filter is an opaque std::function — no identity to key on.
  return !request.options.filter;
}

CacheKey KosrService::KeyFor(const ServiceRequest& request) {
  CacheKey key;
  key.source = request.query.source;
  key.target = request.query.target;
  key.sequence = request.query.sequence;
  key.k = request.query.k;
  key.algorithm = request.options.algorithm;
  key.nn_mode = request.options.nn_mode;
  key.with_paths = request.options.reconstruct_paths;
  return key;
}

ServiceResponse KosrService::Process(const ServiceRequest& request,
                                     QueryContext& ctx, bool sample_stages,
                                     uint32_t slot) {
  ctx.stage_times.Clear();
  ServiceResponse response;
  const bool cacheable = cache_.enabled() && Cacheable(request);
  CacheKey key;
  if (cacheable) key = KeyFor(request);

  // Epoch pin instead of a lock: resolve the current immutable snapshot
  // and run the whole query — cache lookup and insert included — against
  // that frozen state. Updates never block this path; they publish a new
  // snapshot that the *next* pin resolves. The version tag keeps the
  // cache consistent with the pinned state (see the class comment).
  ScopedPin pin(domain_, slot);
  response.snapshot_version = pin->version();
  if (cacheable) {
    if (std::optional<KosrResult> cached =
            cache_.Lookup(key, pin->version())) {
      response.result = std::move(*cached);
      response.cache_hit = true;
      return response;
    }
  }
  KosrOptions options = request.options;
  if (options.time_budget_s == 0) {
    options.time_budget_s = default_time_budget_s_;
  }
  if (sample_stages) options.collect_phase_times = true;
  WallTimer engine_timer;
  response.result = pin->Query(request.query, options, &ctx);
  if (sample_stages) {
    // NN span = the engine's per-phase timers (cursor probing plus NEN
    // estimation); enumeration is the rest of the engine time.
    const double engine_s = engine_timer.ElapsedSeconds();
    const QueryStats& stats = response.result.stats;
    const double nn_s = stats.nn_time_s + stats.estimation_time_s;
    ctx.stage_times.Set(obs::Stage::kNn, nn_s);
    ctx.stage_times.Set(obs::Stage::kEnumerate,
                        std::max(0.0, engine_s - nn_s));
  }
  // Budget-truncated results are incomplete; serving them from cache would
  // turn one slow query into many wrong answers.
  if (cacheable && !response.result.stats.timed_out) {
    cache_.Insert(key, response.result, pin->version());
  }
  return response;
}

UpdateAck KosrService::AddVertexCategory(VertexId v, CategoryId c) {
  MutexLock publish(publish_mutex_);
  CheckVertexId(v, num_vertices_, "vertex");
  if (c >= engine_.categories().num_categories()) {
    throw std::invalid_argument("unknown category " + std::to_string(c));
  }
  // Journal after validation (the journal must never hold a record replay
  // would reject) and before the mutation (write-ahead).
  uint64_t seq = 0;
  if (journal_) seq = journal_->Append(CategoryRecord(/*add=*/true, v, c));
  // Buffered edge updates precede this call in submission order; apply
  // them first so the combined update stream replays in order.
  FlushLocked();
  if (journal_) {
    journal_->SyncIfAlways();  // no-op when the flush above already synced
    applied_seq_ = std::max(applied_seq_, seq);
    applied_seq_hint_.store(applied_seq_, std::memory_order_relaxed);
  }
  engine_.AddVertexCategory(v, c);
  uint64_t version = ++next_version_;
  cache_.BeginInvalidation(version);
  cache_.InvalidateCategory(c);
  domain_.Publish(engine_.SealSnapshot(version));
  MaybeCheckpointLocked();
  UpdateAck ack;
  ack.applied = true;
  ack.snapshot_version = version;
  return ack;
}

UpdateAck KosrService::RemoveVertexCategory(VertexId v, CategoryId c) {
  MutexLock publish(publish_mutex_);
  CheckVertexId(v, num_vertices_, "vertex");
  if (c >= engine_.categories().num_categories()) {
    throw std::invalid_argument("unknown category " + std::to_string(c));
  }
  uint64_t seq = 0;
  if (journal_) seq = journal_->Append(CategoryRecord(/*add=*/false, v, c));
  FlushLocked();
  if (journal_) {
    journal_->SyncIfAlways();
    applied_seq_ = std::max(applied_seq_, seq);
    applied_seq_hint_.store(applied_seq_, std::memory_order_relaxed);
  }
  engine_.RemoveVertexCategory(v, c);
  uint64_t version = ++next_version_;
  cache_.BeginInvalidation(version);
  cache_.InvalidateCategory(c);
  domain_.Publish(engine_.SealSnapshot(version));
  MaybeCheckpointLocked();
  UpdateAck ack;
  ack.applied = true;
  ack.snapshot_version = version;
  return ack;
}

UpdateAck KosrService::AddOrDecreaseEdge(VertexId u, VertexId v, Weight w) {
  return SubmitEdgeUpdate({EdgeUpdate::Kind::kAddOrDecrease, u, v, w});
}

UpdateAck KosrService::SetEdgeWeight(VertexId u, VertexId v, Weight w) {
  return SubmitEdgeUpdate({EdgeUpdate::Kind::kSet, u, v, w});
}

UpdateAck KosrService::RemoveEdge(VertexId u, VertexId v) {
  return SubmitEdgeUpdate({EdgeUpdate::Kind::kRemove, u, v, 0});
}

UpdateAck KosrService::SubmitEdgeUpdate(const EdgeUpdate& update) {
  CheckVertexId(update.u, num_vertices_, "tail");
  CheckVertexId(update.v, num_vertices_, "head");
  updates_enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (update_batch_window_s_ <= 0) {
    // Journal under the publish lock so sequence order equals apply order
    // on the synchronous path — a checkpoint can then trust applied_seq_
    // to cover a contiguous prefix.
    MutexLock publish(publish_mutex_);
    uint64_t seq = 0;
    if (journal_) seq = journal_->Append(EdgeRecord(update));
    UpdateAck ack = ApplyBatchLocked({&update, 1}, seq);
    MaybeCheckpointLocked();
    return ack;
  }
  size_t depth;
  {
    // Append and buffer-push are atomic with respect to FlushLocked's
    // swap: a journaled record is either in the batch the next flush
    // applies, or still buffered with a sequence above applied_seq_.
    // BUFFERED semantics: the record has reached the journal (write(2),
    // fsynced per policy at the window close), so an acked-buffered
    // update survives a crash once the policy fsync lands.
    MutexLock lock(batch_mutex_);
    if (journal_) {
      pending_last_seq_ = journal_->Append(EdgeRecord(update));
    }
    pending_updates_.push_back(update);
    depth = pending_updates_.size();
  }
  // The first buffered update opens the batch window — wake the flusher;
  // later arrivals ride the already-open window without waking anyone.
  if (depth == 1) batch_cv_.NotifyAll();
  UpdateAck ack;
  ack.applied = false;
  ack.pending = depth;
  ack.snapshot_version = domain_.version();
  return ack;
}

UpdateAck KosrService::FlushUpdates() {
  MutexLock publish(publish_mutex_);
  UpdateAck ack = FlushLocked();
  MaybeCheckpointLocked();
  return ack;
}

UpdateAck KosrService::FlushLocked() {
  std::vector<EdgeUpdate> batch;
  uint64_t batch_last_seq = 0;
  {
    MutexLock lock(batch_mutex_);
    batch.swap(pending_updates_);
    batch_last_seq = pending_last_seq_;
  }
  return ApplyBatchLocked(batch, batch_last_seq);
}

UpdateAck KosrService::ApplyBatchLocked(std::span<const EdgeUpdate> batch,
                                        uint64_t batch_last_seq) {
  UpdateAck ack;
  ack.applied = true;
  if (!batch.empty()) {
    if (journal_) {
      // One fsync makes the whole batch durable before any of it is
      // applied or acknowledged applied (write-ahead; `OK BUFFERED`
      // acks become durable here at the latest under fsync=always).
      journal_->SyncIfAlways();
    }
    KOSR_FAILPOINT(kFailpointMidBatchApply);
    ack.summary = engine_.ApplyEdgeUpdates(batch);
    if (journal_) {
      applied_seq_ = std::max(applied_seq_, batch_last_seq);
      applied_seq_hint_.store(applied_seq_, std::memory_order_relaxed);
    }
    updates_applied_.fetch_add(batch.size(), std::memory_order_relaxed);
    batches_applied_.fetch_add(1, std::memory_order_relaxed);
    if (ack.summary.graph_changed) {
      uint64_t version = ++next_version_;
      // Invalidate before publishing: the gate plus the shard walk close
      // the stale-insert race (a result computed against a pre-update
      // snapshot cannot land after the walk), and new-snapshot readers
      // find the stale entries already gone. An update that repaired no
      // label provably changed no distance, path, or KOSR answer (see
      // EdgeUpdateSummary), so it keeps the whole cache warm — unless the
      // engine serves Dijkstra-mode queries without indexes, where there
      // is no repair signal and any graph change flushes everything.
      if (ack.summary.labels_changed) {
        cache_.BeginInvalidation(version);
        cache_.InvalidateEdgeDelta(FilterFor(ack.summary));
      } else if (!engine_.indexes_built()) {
        cache_.BeginInvalidation(version);
        cache_.InvalidateAll();
      }
      domain_.Publish(engine_.SealSnapshot(version));
    }
  }
  ack.snapshot_version = domain_.version();
  return ack;
}

CheckpointAck KosrService::Checkpoint() {
  if (!journal_) {
    throw std::logic_error("checkpoint requires a journal (--journal)");
  }
  MutexLock publish(publish_mutex_);
  return CheckpointLocked();
}

CheckpointAck KosrService::CheckpointLocked() {
  CheckpointAck ack;
  // Fold buffered updates in first so the checkpoint covers everything
  // accepted so far (their journal records get truncated right after).
  FlushLocked();
  ack.seq = applied_seq_;
  if (checkpoint_exists_ && checkpoint_seq_ == applied_seq_) {
    return ack;  // nothing new since the last checkpoint
  }
  durability::WriteCheckpoint(journal_dir_, engine_, applied_seq_);
  KOSR_FAILPOINT(durability::kFailpointBeforeTruncate);
  // A crash before this truncation recovers from the new checkpoint and
  // skips the journal's already-covered prefix (seq <= manifest seq).
  journal_->TruncateThrough(applied_seq_);
  checkpoint_seq_ = applied_seq_;
  checkpoint_exists_ = true;
  checkpoint_seq_hint_.store(checkpoint_seq_, std::memory_order_relaxed);
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  ack.written = true;
  return ack;
}

void KosrService::MaybeCheckpointLocked() {
  if (!journal_ || checkpoint_bytes_ == 0) return;
  if (journal_->size_bytes() < checkpoint_bytes_) return;
  CheckpointLocked();
}

EdgeInvalidationFilter KosrService::FilterFor(
    const EdgeUpdateSummary& summary) const {
  EdgeInvalidationFilter filter;
  filter.changed_out.assign(num_vertices_, false);
  filter.changed_in.assign(num_vertices_, false);
  const CategoryTable& categories = engine_.categories();
  filter.affected_categories.assign(categories.num_categories(), false);
  auto mark = [&](const std::vector<VertexId>& vertices,
                  std::vector<bool>& flags) {
    for (VertexId v : vertices) {
      flags[v] = true;
      for (CategoryId c : categories.CategoriesOf(v)) {
        filter.affected_categories[c] = true;
      }
    }
  };
  mark(summary.changed_out_vertices, filter.changed_out);
  mark(summary.changed_in_vertices, filter.changed_in);
  return filter;
}

void KosrService::FlusherLoop() {
  for (;;) {
    {
      MutexLock lock(batch_mutex_);
      while (!batch_stopping_ && pending_updates_.empty()) {
        batch_cv_.Wait(batch_mutex_);
      }
      if (batch_stopping_) return;  // Stop() applies the remainder itself
      // The window opened with the first buffered update; let it close,
      // re-checking the remaining time across spurious wakeups.
      WallTimer window_open;
      double remaining = update_batch_window_s_;
      while (remaining > 0 && !batch_stopping_) {
        batch_cv_.WaitFor(batch_mutex_, remaining);
        remaining = update_batch_window_s_ - window_open.ElapsedSeconds();
      }
      if (batch_stopping_) return;
    }
    // A concurrent FlushUpdates may have beaten us to the batch; applying
    // an empty one is a no-op.
    FlushUpdates();
  }
}

MetricsSnapshot KosrService::Metrics() const {
  // Deterministic reclaim pass so the live-snapshot gauge converges even
  // when no reader traffic triggers the opportunistic path.
  domain_.Reclaim();
  SnapshotGauges gauges;
  gauges.version = domain_.version();
  gauges.live_snapshots = domain_.live_snapshots();
  gauges.epoch_lag = domain_.epoch_lag();
  gauges.updates_enqueued = updates_enqueued_.load(std::memory_order_relaxed);
  gauges.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  gauges.pending_updates = gauges.updates_enqueued > gauges.updates_applied
                               ? gauges.updates_enqueued - gauges.updates_applied
                               : 0;
  gauges.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  DurabilityGauges durability;
  if (journal_) {
    durability.enabled = true;
    durability.journal_bytes = journal_->size_bytes();
    durability.journal_appends = journal_->appends();
    durability.journal_fsyncs = journal_->fsyncs();
    durability.journal_truncations = journal_->truncations();
    durability.applied_seq =
        applied_seq_hint_.load(std::memory_order_relaxed);
    durability.checkpoint_seq =
        checkpoint_seq_hint_.load(std::memory_order_relaxed);
    durability.checkpoints_written =
        checkpoints_written_.load(std::memory_order_relaxed);
    durability.replayed_records = replayed_records_;
    durability.recovery_s = recovery_s_;
  }
  NetGauges net;
  {
    MutexLock lock(net_gauges_mutex_);
    if (net_gauges_provider_) net = net_gauges_provider_();
  }
  return metrics_.Snapshot(cache_.stats(),
                           static_cast<uint32_t>(queue_depth()),
                           in_flight_.load(std::memory_order_relaxed), gauges,
                           durability, net);
}

void KosrService::AttachNetGauges(std::function<NetGauges()> provider) {
  MutexLock lock(net_gauges_mutex_);
  net_gauges_provider_ = std::move(provider);
}

uint32_t KosrService::num_categories() const {
  // Guest epoch pin: lock-free, never blocks behind an in-flight update.
  SnapshotDomain::GuestPin pin(domain_);
  return pin.snapshot()->num_categories();
}

size_t KosrService::queue_depth() const {
  MutexLock lock(queue_mutex_);
  return queue_.size();
}

}  // namespace kosr::service
