#ifndef KOSR_SERVICE_SNAPSHOT_DOMAIN_H_
#define KOSR_SERVICE_SNAPSHOT_DOMAIN_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "src/core/snapshot.h"
#include "src/util/sync.h"

namespace kosr::service {

/// Epoch-based snapshot publication and reclamation (ISSUE 8; the RCU
/// scheme of ERMIA's dbcore, see DESIGN.md "Snapshot publication").
///
/// One atomic pointer (`current_`) names the live EngineSnapshot. Readers
/// pin by announcing the global epoch in their own cache-line-padded slot
/// (one plain atomic store — no shared cache line, no lock, no reference
/// count), then load the pointer and run the whole query against it.
/// Publishers swap the pointer, tag the displaced snapshot with the
/// pre-increment epoch, and advance the global epoch; a retired snapshot
/// is destroyed only once every announced epoch has moved past its tag —
/// i.e. every reader that could possibly still hold it has unpinned.
///
/// Safety (all epoch/pointer accesses are seq_cst, so one total order):
/// a reader's announce-store precedes its pointer-load, and a publisher's
/// pointer-store precedes its epoch increment. A reader that obtained
/// snapshot S therefore loaded the pointer before S was swapped out, so
/// its announced epoch e satisfies e <= tag(S); and any reclaim scan that
/// runs while the reader is still pinned sees e in its slot, keeps
/// min_active <= tag(S), and spares S. Conversely a reader that announces
/// after the swap can only load the *new* pointer, so it never holds S.
///
/// Worker slots [0, num_workers) are owned 1:1 by service workers; guest
/// slots [num_workers, num_workers + kGuestSlots) are claimed by CAS for
/// occasional non-worker readers (metrics, category lookups).
class SnapshotDomain {
 public:
  /// Guest slots appended after the per-worker slots.
  static constexpr uint32_t kGuestSlots = 16;
  /// Slot value meaning "not in a read-side critical section".
  static constexpr uint64_t kIdle = std::numeric_limits<uint64_t>::max();

  SnapshotDomain(uint32_t num_workers,
                 std::shared_ptr<const EngineSnapshot> initial);
  ~SnapshotDomain();

  SnapshotDomain(const SnapshotDomain&) = delete;
  SnapshotDomain& operator=(const SnapshotDomain&) = delete;

  /// Enters a read-side critical section on the calling worker's own slot
  /// and resolves the current snapshot. The snapshot stays valid until the
  /// matching Unpin. Hot path: two seq_cst atomic accesses on a private
  /// cache line plus one shared load — no locks, no allocation.
  const EngineSnapshot* Pin(uint32_t slot) {
    uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
    slots_[slot].epoch.store(epoch, std::memory_order_seq_cst);
    return current_.load(std::memory_order_seq_cst);
  }

  /// Leaves the read-side critical section. When retired snapshots are
  /// waiting, opportunistically reclaims (try-lock; never blocks the
  /// reader behind a publisher).
  void Unpin(uint32_t slot) {
    slots_[slot].epoch.store(kIdle, std::memory_order_seq_cst);
    if (retired_count_.load(std::memory_order_relaxed) > 0) TryReclaim();
  }

  /// RAII guest pin for non-worker threads: claims a guest slot by CAS
  /// (spinning over the guest range; guests are rare and their critical
  /// sections short, so a free slot turns up immediately in practice).
  class GuestPin {
   public:
    explicit GuestPin(SnapshotDomain& domain) : domain_(domain) {
      slot_ = domain_.ClaimGuestSlot();
      snapshot_ = domain_.current_.load(std::memory_order_seq_cst);
    }
    ~GuestPin() { domain_.Unpin(slot_); }

    GuestPin(const GuestPin&) = delete;
    GuestPin& operator=(const GuestPin&) = delete;

    const EngineSnapshot* snapshot() const { return snapshot_; }

   private:
    SnapshotDomain& domain_;
    uint32_t slot_;
    const EngineSnapshot* snapshot_;
  };

  /// Publishes `next` as the current snapshot and retires the displaced
  /// one. Single-publisher by contract (the service's publish mutex), but
  /// internally serialized against reclaimers anyway.
  void Publish(std::shared_ptr<const EngineSnapshot> next)
      KOSR_EXCLUDES(retire_mutex_);

  /// Deterministic reclaim pass (blocking lock) — quiescent shutdown and
  /// metrics polling use this so the live-snapshot gauge converges without
  /// depending on reader traffic.
  void Reclaim() KOSR_EXCLUDES(retire_mutex_);

  /// Shared ownership of the current snapshot, for out-of-band
  /// introspection (tools, tests) that wants to hold state across calls.
  /// Not the query path: takes the retire mutex, so it can wait behind a
  /// publisher.
  std::shared_ptr<const EngineSnapshot> SharedCurrent()
      KOSR_EXCLUDES(retire_mutex_);

  // --- Gauges (lock-free; exported through METRICS) ------------------------

  /// Version of the currently published snapshot.
  uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }
  /// Published snapshots not yet destroyed (1 at quiescence).
  uint64_t live_snapshots() const {
    return 1 + retired_count_.load(std::memory_order_relaxed);
  }
  /// Distance between the global epoch and the oldest announced epoch
  /// (0 when no reader is pinned or every reader is current).
  uint64_t epoch_lag() const;

  uint32_t num_slots() const { return num_slots_; }

 private:
  /// One reader's announced epoch, padded to a cache line so worker pins
  /// never contend with each other.
  struct alignas(64) EpochSlot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  struct Retired {
    std::shared_ptr<const EngineSnapshot> snapshot;
    uint64_t epoch;  ///< Pre-increment global epoch at retirement.
  };

  uint32_t ClaimGuestSlot();
  void TryReclaim() KOSR_EXCLUDES(retire_mutex_);
  /// Destroys every retired snapshot whose tag precedes the oldest
  /// announced epoch.
  void ReclaimLocked() KOSR_REQUIRES(retire_mutex_);

  const uint32_t num_workers_;
  const uint32_t num_slots_;
  std::vector<EpochSlot> slots_;
  std::atomic<uint64_t> global_epoch_{1};
  std::atomic<uint64_t> version_{0};
  /// Raw pointer readers resolve; owned by current_owner_ below.
  std::atomic<const EngineSnapshot*> current_{nullptr};
  /// Mirror of retired_.size() readable without the mutex (Unpin's cheap
  /// "anything to do?" probe and the live-snapshot gauge).
  std::atomic<uint64_t> retired_count_{0};

  Mutex retire_mutex_;
  /// Owner of the published snapshot (keeps current_ alive).
  std::shared_ptr<const EngineSnapshot> current_owner_
      KOSR_GUARDED_BY(retire_mutex_);
  std::vector<Retired> retired_ KOSR_GUARDED_BY(retire_mutex_);
};

}  // namespace kosr::service

#endif  // KOSR_SERVICE_SNAPSHOT_DOMAIN_H_
