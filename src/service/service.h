#ifndef KOSR_SERVICE_SERVICE_H_
#define KOSR_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/service/metrics.h"
#include "src/service/result_cache.h"
#include "src/util/sync.h"

namespace kosr::service {

struct ServiceConfig {
  /// Worker threads answering queries. 0 picks hardware concurrency.
  uint32_t num_workers = 0;
  /// Bounded request queue; SubmitAsync rejects beyond this depth.
  size_t queue_capacity = 256;
  /// Total result-cache entries across shards (0 disables caching).
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;
  /// Per-query time budget applied when a request does not set its own
  /// (0 = unlimited). Admission control only rejects at the door; this
  /// bounds the damage of a pathological query that already got in —
  /// essential for the serve front-end, which accepts untrusted queries.
  double default_time_budget_s = 0;
  /// Spawn workers in the constructor. Tests set false to fill the queue
  /// deterministically, then call Start().
  bool start_workers = true;
  /// Completed requests at or above this end-to-end latency are retained
  /// verbatim (descriptor + stage spans) in the slow-query ring buffer.
  /// 0 disables the slow log.
  double slow_query_threshold_s = 0;
  /// Ring-buffer capacity of the slow-query log (oldest entries drop).
  size_t slow_log_capacity = 32;
  /// Sample every Nth request per worker for the engine-internal stage
  /// spans (NN and enumerate need per-phase timers inside the search; the
  /// cheap queue-wait/lock-wait/serialize spans are always recorded).
  /// 0 disables engine-phase sampling entirely.
  uint32_t stage_sample_every = 64;
};

struct ServiceRequest {
  KosrQuery query;
  KosrOptions options;
};

enum class ResponseStatus {
  kOk,
  kRejected,  ///< Backpressure: queue at capacity, request never enqueued.
  kError,     ///< The engine threw; `error` has the message.
  kShutdown,  ///< Service stopped before the request was processed.
};

struct ServiceResponse {
  ResponseStatus status = ResponseStatus::kOk;
  KosrResult result;
  bool cache_hit = false;
  double latency_s = 0;  ///< Enqueue -> completion (includes queue wait).
  std::string error;

  bool ok() const { return status == ResponseStatus::kOk; }
};

/// Long-lived serving layer over a built KosrEngine (ISSUE 2 tentpole; see
/// DESIGN.md, "Serving layer").
///
/// Requests enter a bounded FIFO queue and are answered by a persistent
/// worker pool; when the queue is full SubmitAsync resolves immediately
/// with kRejected (reject-with-status backpressure — the caller sheds load,
/// the service never buffers unboundedly). Completed results are cached in
/// a sharded LRU keyed on (source, target, sequence, k, method).
///
/// Concurrency contract (machine-checked; DESIGN.md, "Concurrency
/// contract"): workers answer queries under a shared lock on the engine;
/// the dynamic-update entry points take the lock exclusively, apply the
/// engine mutation, and invalidate the affected cache entries *before*
/// releasing it. Since cache inserts also happen under the shared lock, a
/// result computed against the pre-update engine can never be inserted
/// after the invalidation — no stale-entry race. Each capability below
/// names what it guards; no method ever holds two of them except
/// Start/Stop, which take lifecycle_mutex_ strictly before queue_mutex_.
class KosrService {
 public:
  /// Takes ownership of a built engine (BuildIndexes()/LoadIndexes() must
  /// already have run unless every query uses NnMode::kDijkstra).
  explicit KosrService(KosrEngine engine, const ServiceConfig& config = {});
  ~KosrService();

  KosrService(const KosrService&) = delete;
  KosrService& operator=(const KosrService&) = delete;

  /// Starts the worker pool (no-op when already running). Start/Stop are
  /// serialized against each other by a lifecycle mutex, so concurrent
  /// calls (or Stop racing the destructor) are safe.
  void Start() KOSR_EXCLUDES(lifecycle_mutex_, queue_mutex_);
  /// Drains nothing: pending requests resolve with kShutdown, workers join.
  /// Idempotent; also run by the destructor.
  void Stop() KOSR_EXCLUDES(lifecycle_mutex_, queue_mutex_);

  /// Enqueues a request. The future resolves when a worker answers it (or
  /// immediately with kRejected / kShutdown).
  std::future<ServiceResponse> SubmitAsync(const ServiceRequest& request)
      KOSR_EXCLUDES(queue_mutex_);
  /// Blocking convenience wrapper.
  ServiceResponse Submit(const ServiceRequest& request)
      KOSR_EXCLUDES(queue_mutex_);

  // --- Dynamic updates (cache-invalidation hooks) --------------------------
  // Mirror KosrEngine's update entry points; each applies the engine update
  // under the exclusive lock and drops the cache entries it can stale.
  // Out-of-range vertices/categories throw std::invalid_argument (the
  // engine itself does not range-check; the service fronts untrusted
  // input, so it must).

  void AddVertexCategory(VertexId v, CategoryId c)
      KOSR_EXCLUDES(engine_mutex_);
  void RemoveVertexCategory(VertexId v, CategoryId c)
      KOSR_EXCLUDES(engine_mutex_);
  /// Edge updates return the engine's repair summary so front-ends can
  /// report how much the update actually changed. Cache invalidation is
  /// targeted: the whole cache is flushed only when the update changed
  /// labels (distances may have moved) — or changed the graph while the
  /// engine serves Dijkstra-mode queries without indexes. An update that
  /// repaired nothing provably changed no answer and keeps the cache warm.
  EdgeUpdateSummary AddOrDecreaseEdge(VertexId u, VertexId v, Weight w)
      KOSR_EXCLUDES(engine_mutex_);
  /// SET_EDGE verb: set the u->v weight exactly (increase or decrease),
  /// with incremental label repair either way.
  EdgeUpdateSummary SetEdgeWeight(VertexId u, VertexId v, Weight w)
      KOSR_EXCLUDES(engine_mutex_);
  /// REMOVE_EDGE verb: delete the u->v arc with incremental label repair.
  EdgeUpdateSummary RemoveEdge(VertexId u, VertexId v)
      KOSR_EXCLUDES(engine_mutex_);

  // --- Introspection -------------------------------------------------------

  /// Snapshot of the metrics registry plus the live queue-depth and
  /// in-flight gauges (the former sampled under the existing queue mutex).
  MetricsSnapshot Metrics() const KOSR_EXCLUDES(queue_mutex_);
  std::string MetricsJson() const KOSR_EXCLUDES(queue_mutex_) {
    return Metrics().ToJson();
  }
  /// Lets the protocol layer fold a response-serialization span into the
  /// per-stage histograms (the span ends after the worker has already
  /// finished the request, so the worker cannot record it itself). No-op
  /// when observability is off.
  void RecordSerializeSpan(double seconds) {
    if (obs::Enabled()) {
      metrics_.RecordStage(obs::Stage::kSerialize, seconds);
    }
  }
  /// Clears counters/histograms (not the cache) — phase boundaries in the
  /// throughput bench.
  void ResetMetrics() { metrics_.Reset(); }

  /// The result cache is internally synchronized (per-shard locks), so a
  /// reference to it is safe to hand out; the engine is guarded by
  /// engine_mutex_ and deliberately has no reference accessor — use the
  /// narrow locked reads below, or go through Submit like everyone else.
  const ShardedResultCache& cache() const { return cache_; }
  /// Category universe size, read under the shared engine lock.
  uint32_t num_categories() const KOSR_EXCLUDES(engine_mutex_);
  size_t queue_depth() const KOSR_EXCLUDES(queue_mutex_);
  uint32_t num_workers() const { return num_workers_; }

 private:
  struct Pending {
    ServiceRequest request;
    std::promise<ServiceResponse> promise;
    WallTimer queued;  ///< Started at enqueue; read at completion.
  };

  void WorkerLoop() KOSR_EXCLUDES(queue_mutex_, engine_mutex_);
  /// `ctx` is the calling worker's private reusable query scratch.
  /// `sample_stages` turns on the engine's per-phase timers for this query
  /// (the NN/enumerate spans of the stage histograms).
  ServiceResponse Process(const ServiceRequest& request, QueryContext& ctx,
                          bool sample_stages) KOSR_EXCLUDES(engine_mutex_);
  /// Targeted cache invalidation for an applied edge update (see the public
  /// update entry points). Caller holds the exclusive engine lock.
  void InvalidateForEdgeUpdate(const EdgeUpdateSummary& summary)
      KOSR_REQUIRES(engine_mutex_);
  static bool Cacheable(const ServiceRequest& request);
  static CacheKey KeyFor(const ServiceRequest& request);

  /// Reader/writer engine lock: queries hold it shared, dynamic updates
  /// exclusive (together with their cache invalidation).
  mutable SharedMutex engine_mutex_;
  KosrEngine engine_ KOSR_GUARDED_BY(engine_mutex_);
  ShardedResultCache cache_;    // internally synchronized (per-shard locks)
  MetricsRegistry metrics_;     // internally synchronized

  uint32_t num_workers_;            // const after construction
  size_t queue_capacity_;           // const after construction
  double default_time_budget_s_;    // const after construction
  double slow_query_threshold_s_;   // const after construction
  uint32_t stage_sample_every_;     // const after construction
  /// Requests currently inside Process (between dequeue and completion).
  std::atomic<uint32_t> in_flight_{0};
  /// Guards the request queue and the stopping flag workers wait on.
  mutable Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<Pending> queue_ KOSR_GUARDED_BY(queue_mutex_);
  bool stopping_ KOSR_GUARDED_BY(queue_mutex_) = false;
  /// Serializes Start/Stop (which mutate and join workers_); never taken
  /// by the workers themselves. Lock hierarchy: lifecycle_mutex_ strictly
  /// before queue_mutex_ (Start/Stop take both; nothing else takes both).
  Mutex lifecycle_mutex_;
  std::vector<std::thread> workers_ KOSR_GUARDED_BY(lifecycle_mutex_);
};

}  // namespace kosr::service

#endif  // KOSR_SERVICE_SERVICE_H_
