#ifndef KOSR_SERVICE_SERVICE_H_
#define KOSR_SERVICE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/service/metrics.h"
#include "src/service/result_cache.h"

namespace kosr::service {

struct ServiceConfig {
  /// Worker threads answering queries. 0 picks hardware concurrency.
  uint32_t num_workers = 0;
  /// Bounded request queue; SubmitAsync rejects beyond this depth.
  size_t queue_capacity = 256;
  /// Total result-cache entries across shards (0 disables caching).
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;
  /// Per-query time budget applied when a request does not set its own
  /// (0 = unlimited). Admission control only rejects at the door; this
  /// bounds the damage of a pathological query that already got in —
  /// essential for the serve front-end, which accepts untrusted queries.
  double default_time_budget_s = 0;
  /// Spawn workers in the constructor. Tests set false to fill the queue
  /// deterministically, then call Start().
  bool start_workers = true;
};

struct ServiceRequest {
  KosrQuery query;
  KosrOptions options;
};

enum class ResponseStatus {
  kOk,
  kRejected,  ///< Backpressure: queue at capacity, request never enqueued.
  kError,     ///< The engine threw; `error` has the message.
  kShutdown,  ///< Service stopped before the request was processed.
};

struct ServiceResponse {
  ResponseStatus status = ResponseStatus::kOk;
  KosrResult result;
  bool cache_hit = false;
  double latency_s = 0;  ///< Enqueue -> completion (includes queue wait).
  std::string error;

  bool ok() const { return status == ResponseStatus::kOk; }
};

/// Long-lived serving layer over a built KosrEngine (ISSUE 2 tentpole; see
/// DESIGN.md, "Serving layer").
///
/// Requests enter a bounded FIFO queue and are answered by a persistent
/// worker pool; when the queue is full SubmitAsync resolves immediately
/// with kRejected (reject-with-status backpressure — the caller sheds load,
/// the service never buffers unboundedly). Completed results are cached in
/// a sharded LRU keyed on (source, target, sequence, k, method).
///
/// Concurrency contract: workers answer queries under a shared lock on the
/// engine; the dynamic-update entry points take the lock exclusively, apply
/// the engine mutation, and invalidate the affected cache entries *before*
/// releasing it. Since cache inserts also happen under the shared lock, a
/// result computed against the pre-update engine can never be inserted
/// after the invalidation — no stale-entry race.
class KosrService {
 public:
  /// Takes ownership of a built engine (BuildIndexes()/LoadIndexes() must
  /// already have run unless every query uses NnMode::kDijkstra).
  explicit KosrService(KosrEngine engine, const ServiceConfig& config = {});
  ~KosrService();

  KosrService(const KosrService&) = delete;
  KosrService& operator=(const KosrService&) = delete;

  /// Starts the worker pool (no-op when already running). Start/Stop are
  /// serialized against each other by a lifecycle mutex, so concurrent
  /// calls (or Stop racing the destructor) are safe.
  void Start();
  /// Drains nothing: pending requests resolve with kShutdown, workers join.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// Enqueues a request. The future resolves when a worker answers it (or
  /// immediately with kRejected / kShutdown).
  std::future<ServiceResponse> SubmitAsync(const ServiceRequest& request);
  /// Blocking convenience wrapper.
  ServiceResponse Submit(const ServiceRequest& request);

  // --- Dynamic updates (cache-invalidation hooks) --------------------------
  // Mirror KosrEngine's update entry points; each applies the engine update
  // under the exclusive lock and drops the cache entries it can stale.
  // Out-of-range vertices/categories throw std::invalid_argument (the
  // engine itself does not range-check; the service fronts untrusted
  // input, so it must).

  void AddVertexCategory(VertexId v, CategoryId c);
  void RemoveVertexCategory(VertexId v, CategoryId c);
  /// Edge updates return the engine's repair summary so front-ends can
  /// report how much the update actually changed. Cache invalidation is
  /// targeted: the whole cache is flushed only when the update changed
  /// labels (distances may have moved) — or changed the graph while the
  /// engine serves Dijkstra-mode queries without indexes. An update that
  /// repaired nothing provably changed no answer and keeps the cache warm.
  EdgeUpdateSummary AddOrDecreaseEdge(VertexId u, VertexId v, Weight w);
  /// SET_EDGE verb: set the u->v weight exactly (increase or decrease),
  /// with incremental label repair either way.
  EdgeUpdateSummary SetEdgeWeight(VertexId u, VertexId v, Weight w);
  /// REMOVE_EDGE verb: delete the u->v arc with incremental label repair.
  EdgeUpdateSummary RemoveEdge(VertexId u, VertexId v);

  // --- Introspection -------------------------------------------------------

  MetricsSnapshot Metrics() const {
    return metrics_.Snapshot(cache_.stats());
  }
  std::string MetricsJson() const { return Metrics().ToJson(); }
  /// Clears counters/histograms (not the cache) — phase boundaries in the
  /// throughput bench.
  void ResetMetrics() { metrics_.Reset(); }

  const KosrEngine& engine() const { return engine_; }
  const ShardedResultCache& cache() const { return cache_; }
  size_t queue_depth() const;
  uint32_t num_workers() const { return num_workers_; }

 private:
  struct Pending {
    ServiceRequest request;
    std::promise<ServiceResponse> promise;
    WallTimer queued;  ///< Started at enqueue; read at completion.
  };

  void WorkerLoop();
  /// `ctx` is the calling worker's private reusable query scratch.
  ServiceResponse Process(const ServiceRequest& request, QueryContext& ctx);
  /// Targeted cache invalidation for an applied edge update (see the public
  /// update entry points). Caller holds the exclusive engine lock.
  void InvalidateForEdgeUpdate(const EdgeUpdateSummary& summary);
  static bool Cacheable(const ServiceRequest& request);
  static CacheKey KeyFor(const ServiceRequest& request);

  KosrEngine engine_;
  mutable std::shared_mutex engine_mutex_;
  ShardedResultCache cache_;
  MetricsRegistry metrics_;

  uint32_t num_workers_;
  size_t queue_capacity_;
  double default_time_budget_s_;
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  /// Serializes Start/Stop (which mutate and join workers_); never taken
  /// by the workers themselves, so there is no ordering against
  /// queue_mutex_ to get wrong.
  std::mutex lifecycle_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace kosr::service

#endif  // KOSR_SERVICE_SERVICE_H_
