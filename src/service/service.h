#ifndef KOSR_SERVICE_SERVICE_H_
#define KOSR_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/core/snapshot.h"
#include "src/durability/journal.h"
#include "src/service/metrics.h"
#include "src/service/result_cache.h"
#include "src/service/snapshot_domain.h"
#include "src/util/sync.h"

namespace kosr::service {

/// Failpoint between the journal fsync and the engine mutation of a batch
/// apply — a crash here loses in-memory state the journal already holds,
/// so recovery must replay it.
inline constexpr char kFailpointMidBatchApply[] = "batch-mid-apply";

/// Durability wiring handed to the service by the recovery path (ISSUE 9).
/// Default-constructed (no journal) the service runs exactly as before —
/// purely in-memory, zero overhead on the update path.
struct DurabilityAttachment {
  /// Open journal, sequences continuing past everything recovered.
  std::unique_ptr<durability::UpdateJournal> journal;
  /// Directory holding journal + checkpoints (= RecoveryOptions::dir).
  std::string dir;
  /// Journal size that triggers an automatic checkpoint (0 = only the
  /// CHECKPOINT verb and graceful shutdown checkpoint).
  uint64_t checkpoint_bytes = 0;
  /// Whether a checkpoint already exists on disk, and its sequence —
  /// lets the service skip redundant checkpoints when nothing changed.
  bool checkpoint_loaded = false;
  uint64_t checkpoint_seq = 0;
  /// Recovery statistics, surfaced through METRICS.
  uint64_t replayed_records = 0;
  double recovery_s = 0;
};

/// Result of an explicit checkpoint request.
struct CheckpointAck {
  /// False when the service skipped the write because the newest
  /// checkpoint already covers every applied update.
  bool written = false;
  /// Last journal sequence the on-disk checkpoint now covers.
  uint64_t seq = 0;
};

struct ServiceConfig {
  /// Worker threads answering queries. 0 picks hardware concurrency.
  uint32_t num_workers = 0;
  /// Bounded request queue; SubmitAsync rejects beyond this depth.
  size_t queue_capacity = 256;
  /// Total result-cache entries across shards (0 disables caching).
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;
  /// Per-query time budget applied when a request does not set its own
  /// (0 = unlimited). Admission control only rejects at the door; this
  /// bounds the damage of a pathological query that already got in —
  /// essential for the serve front-end, which accepts untrusted queries.
  double default_time_budget_s = 0;
  /// Spawn workers in the constructor. Tests set false to fill the queue
  /// deterministically, then call Start().
  bool start_workers = true;
  /// Completed requests at or above this end-to-end latency are retained
  /// verbatim (descriptor + stage spans) in the slow-query ring buffer.
  /// 0 disables the slow log.
  double slow_query_threshold_s = 0;
  /// Ring-buffer capacity of the slow-query log (oldest entries drop).
  size_t slow_log_capacity = 32;
  /// Sample every Nth request per worker for the engine-internal stage
  /// spans (NN and enumerate need per-phase timers inside the search; the
  /// cheap queue-wait/serialize spans are always recorded).
  /// 0 disables engine-phase sampling entirely.
  uint32_t stage_sample_every = 64;
  /// Edge updates arriving within this window batch into one repair and one
  /// published snapshot (seconds; 0 = apply each update immediately).
  double update_batch_window_s = 0;
};

struct ServiceRequest {
  KosrQuery query;
  KosrOptions options;
};

enum class ResponseStatus {
  kOk,
  kRejected,  ///< Backpressure: queue at capacity, request never enqueued.
  kError,     ///< The engine threw; `error` has the message.
  kShutdown,  ///< Service stopped before the request was processed.
};

struct ServiceResponse {
  ResponseStatus status = ResponseStatus::kOk;
  KosrResult result;
  bool cache_hit = false;
  double latency_s = 0;  ///< Enqueue -> completion (includes queue wait).
  /// Version of the snapshot the answer was computed against (cache hits:
  /// the pinned version that accepted the entry). 0 for requests that
  /// never reached a worker (rejected/shutdown).
  uint64_t snapshot_version = 0;
  std::string error;

  bool ok() const { return status == ResponseStatus::kOk; }
};

/// Outcome of a dynamic-update call (ISSUE 8). With a zero batch window
/// every update applies synchronously (`applied` = true and `summary`
/// describes the repair); with a positive window edge updates buffer until
/// the window closes (`applied` = false, `summary` empty) and
/// `snapshot_version` reports the still-current snapshot.
struct UpdateAck {
  bool applied = false;
  /// Buffered updates (this one included) waiting for the window to close.
  /// 0 on the synchronous path.
  uint64_t pending = 0;
  /// Version of the published snapshot after this call returned.
  uint64_t snapshot_version = 0;
  /// Repair summary of the batch this update was applied in (sync path:
  /// just this update). Empty while the update is still buffered.
  EdgeUpdateSummary summary;
};

/// Long-lived serving layer over a built KosrEngine (ISSUE 2 tentpole,
/// rebuilt on epoch-based snapshots in ISSUE 8; see DESIGN.md, "Serving
/// layer" and "Snapshot publication").
///
/// Requests enter a bounded FIFO queue and are answered by a persistent
/// worker pool; when the queue is full SubmitAsync resolves immediately
/// with kRejected (reject-with-status backpressure — the caller sheds load,
/// the service never buffers unboundedly). Completed results are cached in
/// a sharded LRU keyed on (source, target, sequence, k, method) and tagged
/// with the snapshot version they were computed against.
///
/// Concurrency contract (machine-checked where lockable; DESIGN.md,
/// "Concurrency contract"): queries never take a lock on the engine.
/// Each worker pins an epoch slot, resolves the current immutable
/// EngineSnapshot, and runs the whole query — including cache lookup and
/// insert — against that frozen state; updates run concurrently against
/// the engine's private copy-on-write master and go live in one atomic
/// pointer swap. publish_mutex_ serializes writers only; readers are
/// annotation-free by construction because everything they touch is
/// immutable. The version-tagged cache closes the stale-insert race the
/// old exclusive lock used to close: an update opens an invalidation round
/// before scrubbing, so a result computed against a pre-update snapshot
/// can never be inserted afterwards.
class KosrService {
 public:
  /// Takes ownership of a built engine (BuildIndexes()/LoadIndexes() must
  /// already have run unless every query uses NnMode::kDijkstra).
  /// `durability` (optional) attaches a recovered write-ahead journal;
  /// every accepted update is then journaled before it is applied, and
  /// checkpoints truncate the journal (see DESIGN.md, "Durability &
  /// recovery").
  explicit KosrService(KosrEngine engine, const ServiceConfig& config = {},
                       DurabilityAttachment durability = {});
  ~KosrService();

  KosrService(const KosrService&) = delete;
  KosrService& operator=(const KosrService&) = delete;

  /// Starts the worker pool and (with a positive batch window) the update
  /// flusher (no-op when already running). Start/Stop are serialized
  /// against each other by a lifecycle mutex, so concurrent calls (or Stop
  /// racing the destructor) are safe.
  void Start() KOSR_EXCLUDES(lifecycle_mutex_, queue_mutex_);
  /// Drains nothing from the queue: pending requests resolve with
  /// kShutdown, workers join. Buffered edge updates are flushed (applied,
  /// not dropped) after the flusher joins, and all retired snapshots are
  /// reclaimed. Idempotent; also run by the destructor.
  void Stop() KOSR_EXCLUDES(lifecycle_mutex_, queue_mutex_, publish_mutex_);

  /// Enqueues a request. The future resolves when a worker answers it (or
  /// immediately with kRejected / kShutdown).
  std::future<ServiceResponse> SubmitAsync(const ServiceRequest& request)
      KOSR_EXCLUDES(queue_mutex_);
  /// Callback flavour for transports that pipeline (the TCP front-end):
  /// `done` is invoked exactly once — from a worker thread on completion,
  /// inline from this call on reject, or from Stop() with kShutdown for
  /// requests drained unanswered. The callback must be cheap and must not
  /// block (it runs on the answering worker's thread) and must not call
  /// back into Start/Stop.
  void SubmitAsync(const ServiceRequest& request,
                   std::function<void(ServiceResponse)> done)
      KOSR_EXCLUDES(queue_mutex_);
  /// Blocking convenience wrapper.
  ServiceResponse Submit(const ServiceRequest& request)
      KOSR_EXCLUDES(queue_mutex_);

  // --- Dynamic updates -----------------------------------------------------
  // Mirror KosrEngine's update entry points. Out-of-range vertices and
  // categories throw std::invalid_argument (the service fronts untrusted
  // input, so it must range-check). Edge updates buffer when a batch
  // window is configured; category updates always flush pending edge
  // updates first (preserving submission order) and apply synchronously.

  UpdateAck AddVertexCategory(VertexId v, CategoryId c)
      KOSR_EXCLUDES(publish_mutex_);
  UpdateAck RemoveVertexCategory(VertexId v, CategoryId c)
      KOSR_EXCLUDES(publish_mutex_);
  /// ADD_EDGE verb: insert u->v or decrease its weight (never increases).
  UpdateAck AddOrDecreaseEdge(VertexId u, VertexId v, Weight w)
      KOSR_EXCLUDES(publish_mutex_);
  /// SET_EDGE verb: set the u->v weight exactly (increase or decrease),
  /// with incremental label repair either way.
  UpdateAck SetEdgeWeight(VertexId u, VertexId v, Weight w)
      KOSR_EXCLUDES(publish_mutex_);
  /// REMOVE_EDGE verb: delete the u->v arc with incremental label repair.
  UpdateAck RemoveEdge(VertexId u, VertexId v) KOSR_EXCLUDES(publish_mutex_);
  /// Applies every buffered edge update now (one repair, one snapshot)
  /// without waiting for the window. The returned summary covers the
  /// flushed batch; a no-op when nothing is buffered.
  UpdateAck FlushUpdates() KOSR_EXCLUDES(publish_mutex_);

  // --- Durability ----------------------------------------------------------

  /// Whether a journal is attached (the CHECKPOINT verb requires one).
  bool durable() const { return journal_ != nullptr; }
  /// Flushes buffered updates, writes a checkpoint covering every applied
  /// update, and truncates the journal behind it. Skipped (written =
  /// false) when the newest checkpoint is already current. Throws
  /// std::logic_error without a journal, std::runtime_error on I/O
  /// failure (the previous checkpoint and the journal survive).
  CheckpointAck Checkpoint() KOSR_EXCLUDES(publish_mutex_);

  // --- Introspection -------------------------------------------------------

  /// Snapshot of the metrics registry plus the live queue-depth,
  /// in-flight, and snapshot-publication gauges. Runs a reclaim pass first
  /// so the live-snapshot gauge converges even without reader traffic.
  MetricsSnapshot Metrics() const KOSR_EXCLUDES(queue_mutex_);
  std::string MetricsJson() const KOSR_EXCLUDES(queue_mutex_) {
    return Metrics().ToJson();
  }
  /// Lets the protocol layer fold a response-serialization span into the
  /// per-stage histograms (the span ends after the worker has already
  /// finished the request, so the worker cannot record it itself). No-op
  /// when observability is off.
  void RecordSerializeSpan(double seconds) {
    if (obs::Enabled()) {
      metrics_.RecordStage(obs::Stage::kSerialize, seconds);
    }
  }
  /// Clears counters/histograms (not the cache) — phase boundaries in the
  /// throughput bench.
  void ResetMetrics() { metrics_.Reset(); }

  /// Lets a network front-end surface its per-connection gauges through
  /// Metrics()/METRICS JSON (sampled at snapshot time). Pass nullptr to
  /// detach — the front-end must detach before it is destroyed. The
  /// provider must be thread-safe and non-blocking (it typically reads a
  /// handful of atomics).
  void AttachNetGauges(std::function<NetGauges()> provider)
      KOSR_EXCLUDES(net_gauges_mutex_);

  /// The result cache is internally synchronized (per-shard locks), so a
  /// reference to it is safe to hand out; the engine master copy is guarded
  /// by publish_mutex_ and deliberately has no accessor — read through a
  /// pinned snapshot (queries) or the lock-free gauges below.
  const ShardedResultCache& cache() const { return cache_; }
  /// Category universe size off the current snapshot — lock-free (guest
  /// epoch pin), never blocks behind an in-flight update.
  uint32_t num_categories() const;
  /// Version of the currently published snapshot.
  uint64_t snapshot_version() const { return domain_.version(); }
  /// Shared ownership of the current snapshot for out-of-band inspection
  /// (the byte-identity tests serialize its labeling). Can wait behind a
  /// publisher — not for the query path, which pins instead.
  std::shared_ptr<const EngineSnapshot> CurrentSnapshot() const {
    return domain_.SharedCurrent();
  }
  size_t queue_depth() const KOSR_EXCLUDES(queue_mutex_);
  uint32_t num_workers() const { return num_workers_; }

 private:
  struct Pending {
    ServiceRequest request;
    /// Completion continuation: resolves a promise (future flavour) or
    /// hands the response to the TCP session (callback flavour).
    std::function<void(ServiceResponse)> done;
    WallTimer queued;  ///< Started at enqueue; read at completion.
  };

  void WorkerLoop(uint32_t slot) KOSR_EXCLUDES(queue_mutex_);
  /// Flusher thread (only with a positive batch window): waits for the
  /// first buffered update, lets the window close, then applies the batch.
  void FlusherLoop() KOSR_EXCLUDES(batch_mutex_, publish_mutex_);
  /// `ctx` is the calling worker's private reusable query scratch;
  /// `slot` its epoch slot. `sample_stages` turns on the engine's
  /// per-phase timers for this query. Lock-free: runs entirely against
  /// the snapshot pinned on `slot`.
  ServiceResponse Process(const ServiceRequest& request, QueryContext& ctx,
                          bool sample_stages, uint32_t slot);
  /// Routes one edge update: buffers it (positive window) or applies it as
  /// a batch of one (window zero).
  UpdateAck SubmitEdgeUpdate(const EdgeUpdate& update)
      KOSR_EXCLUDES(publish_mutex_);
  /// Swaps out the buffered batch and applies it. Also the tail of every
  /// synchronous category update, which flushes to preserve order.
  UpdateAck FlushLocked() KOSR_REQUIRES(publish_mutex_)
      KOSR_EXCLUDES(batch_mutex_);
  /// Applies `batch` to the master engine, invalidates exactly the cache
  /// entries the repair delta can stale, and publishes a new snapshot when
  /// the graph changed. `batch_last_seq` is the journal sequence of the
  /// batch's last record (0 without a journal); with a kAlways journal one
  /// fsync covering the whole batch happens before the engine mutates.
  UpdateAck ApplyBatchLocked(std::span<const EdgeUpdate> batch,
                             uint64_t batch_last_seq)
      KOSR_REQUIRES(publish_mutex_);
  /// Checkpoint body: flush, skip if current, write, truncate journal.
  CheckpointAck CheckpointLocked() KOSR_REQUIRES(publish_mutex_)
      KOSR_EXCLUDES(batch_mutex_);
  /// Runs CheckpointLocked when the journal outgrew checkpoint_bytes_.
  void MaybeCheckpointLocked() KOSR_REQUIRES(publish_mutex_)
      KOSR_EXCLUDES(batch_mutex_);
  /// Builds the targeted invalidation filter for a repair delta: the
  /// changed-label vertex sets plus every category with a changed member.
  EdgeInvalidationFilter FilterFor(const EdgeUpdateSummary& summary) const
      KOSR_REQUIRES(publish_mutex_);
  static bool Cacheable(const ServiceRequest& request);
  static CacheKey KeyFor(const ServiceRequest& request);

  // Lock hierarchy: lifecycle_mutex_ -> queue_mutex_ (Start/Stop), and
  // publish_mutex_ -> batch_mutex_ -> journal internal mutex (update and
  // flush paths; the journal's mutex is a strict leaf). No method ever
  // holds a mutex from both families at once; queries hold none at all.

  /// Serializes writers: updates mutate the copy-on-write master engine,
  /// invalidate the cache, and publish, all under this mutex. Never taken
  /// on the query path.
  mutable Mutex publish_mutex_;
  /// Master copy-on-write engine state; snapshots are sealed from it.
  KosrEngine engine_ KOSR_GUARDED_BY(publish_mutex_);
  /// Next snapshot version to assign (version 1 = the initial seal).
  uint64_t next_version_ KOSR_GUARDED_BY(publish_mutex_) = 1;

  ShardedResultCache cache_;    // internally synchronized (per-shard locks)
  MetricsRegistry metrics_;     // internally synchronized

  uint32_t num_workers_;            // const after construction
  size_t queue_capacity_;           // const after construction
  double default_time_budget_s_;    // const after construction
  double slow_query_threshold_s_;   // const after construction
  uint32_t stage_sample_every_;     // const after construction
  double update_batch_window_s_;    // const after construction
  uint32_t num_vertices_;           // const after construction
  /// Epoch-based snapshot publication/reclamation; internally
  /// synchronized. Mutable so const introspection (Metrics, category
  /// reads) can pin and reclaim.
  mutable SnapshotDomain domain_;

  // --- Durability state (ISSUE 9) -----------------------------------------
  // The journal is internally synchronized (its own leaf mutex, below
  // every service lock). Buffered edge updates journal under batch_mutex_
  // so the append and the buffer push are atomic with respect to a flush;
  // everything else journals under publish_mutex_.

  /// Null when durability is off — every journal touch is gated on this.
  std::unique_ptr<durability::UpdateJournal> journal_;
  std::string journal_dir_;    // const after construction
  uint64_t checkpoint_bytes_;  // const after construction
  /// Last journal sequence applied to engine_ (what a checkpoint covers).
  uint64_t applied_seq_ KOSR_GUARDED_BY(publish_mutex_) = 0;
  /// Last sequence covered by the on-disk checkpoint, if one exists.
  uint64_t checkpoint_seq_ KOSR_GUARDED_BY(publish_mutex_) = 0;
  bool checkpoint_exists_ KOSR_GUARDED_BY(publish_mutex_) = false;
  /// Mirrors for the lock-free METRICS gauges.
  std::atomic<uint64_t> applied_seq_hint_{0};
  std::atomic<uint64_t> checkpoint_seq_hint_{0};
  std::atomic<uint64_t> checkpoints_written_{0};
  uint64_t replayed_records_;  // const after construction (recovery stat)
  double recovery_s_;          // const after construction (recovery stat)

  /// Guards the edge-update batch buffer.
  Mutex batch_mutex_;
  CondVar batch_cv_;
  std::vector<EdgeUpdate> pending_updates_ KOSR_GUARDED_BY(batch_mutex_);
  /// Journal sequence of the newest buffered update (passed to
  /// ApplyBatchLocked by the flush that drains it).
  uint64_t pending_last_seq_ KOSR_GUARDED_BY(batch_mutex_) = 0;
  bool batch_stopping_ KOSR_GUARDED_BY(batch_mutex_) = false;
  /// Monotonic update counters (gauges; pending = enqueued - applied).
  std::atomic<uint64_t> updates_enqueued_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> batches_applied_{0};

  /// Requests currently inside Process (between dequeue and completion).
  std::atomic<uint32_t> in_flight_{0};
  /// Guards the request queue and the stopping flag workers wait on.
  mutable Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<Pending> queue_ KOSR_GUARDED_BY(queue_mutex_);
  bool stopping_ KOSR_GUARDED_BY(queue_mutex_) = false;
  /// Guards the optional network-gauge provider (attached by the TCP
  /// front-end, sampled by Metrics). Leaf mutex: the provider only reads
  /// the server's atomic counters.
  mutable Mutex net_gauges_mutex_;
  std::function<NetGauges()> net_gauges_provider_
      KOSR_GUARDED_BY(net_gauges_mutex_);

  /// Serializes Start/Stop (which mutate and join the threads); never
  /// taken by the workers themselves.
  Mutex lifecycle_mutex_;
  std::vector<std::thread> workers_ KOSR_GUARDED_BY(lifecycle_mutex_);
  std::thread flusher_ KOSR_GUARDED_BY(lifecycle_mutex_);
};

}  // namespace kosr::service

#endif  // KOSR_SERVICE_SERVICE_H_
