#ifndef KOSR_NN_DIJKSTRA_NN_H_
#define KOSR_NN_DIJKSTRA_NN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/graph/categories.h"
#include "src/graph/graph.h"
#include "src/nn/find_nen.h"
#include "src/nn/nn_provider.h"

namespace kosr {

/// Incremental x-th nearest neighbor by plain (resumable) Dijkstra search —
/// the paper's KPNE-Dij / PK-Dij / SK-Dij comparison point. Each cursor owns
/// a paused Dijkstra from its query vertex and resumes where it stopped when
/// a deeper neighbor is requested; this is the *favourable* implementation
/// of the Dijkstra strategy (a fresh search per request would be even
/// slower), and it still loses badly to the inverted label index.
class DijkstraKnnCursor {
 public:
  DijkstraKnnCursor(const Graph* graph, const CategoryTable* categories,
                    CategoryId category, VertexId v, uint32_t slot,
                    const SlotFilter* filter);

  std::optional<NnResult> Get(uint32_t x, QueryStats* stats);

 private:
  const Graph* graph_;
  const CategoryTable* categories_;
  CategoryId category_;
  VertexId v_;
  uint32_t slot_;
  const SlotFilter* filter_;

  std::vector<NnResult> found_;
  // Sparse Dijkstra state: many cursors coexist per query, so dense arrays
  // per cursor would be O(|V|) each.
  std::unordered_map<VertexId, Cost> dist_;
  std::unordered_set<VertexId> settled_;
  std::priority_queue<std::pair<Cost, VertexId>,
                      std::vector<std::pair<Cost, VertexId>>,
                      std::greater<>>
      heap_;
  bool initialized_ = false;
};

/// Dijkstra-backed NnProvider (method family "-Dij" in Sec. V).
class DijkstraNnProvider : public NnProvider {
 public:
  DijkstraNnProvider(const Graph* graph, const CategoryTable* categories,
                     CategorySequence sequence, VertexId target,
                     SlotFilter filter = nullptr);

  std::optional<NnResult> FindNN(VertexId v, uint32_t slot, uint32_t x,
                                 QueryStats* stats) override;

 private:
  const Graph* graph_;
  const CategoryTable* categories_;
  CategorySequence sequence_;
  VertexId target_;
  SlotFilter filter_;
  std::unordered_map<uint64_t, DijkstraKnnCursor> cursors_;
  // Lazily computed distances *to* the target (one backward Dijkstra),
  // used for the destination slot.
  const std::vector<Cost>& DistToTarget();
  std::vector<Cost> dist_to_target_;
};

/// Dijkstra-backed NenProvider (method "SK-Dij"): plain-NN cursors plus a
/// single backward Dijkstra from the target for the heuristic.
class DijkstraNenProvider : public NenProvider {
 public:
  DijkstraNenProvider(const Graph* graph, const CategoryTable* categories,
                      CategorySequence sequence, VertexId target,
                      SlotFilter filter = nullptr);

  std::optional<NenResult> FindNEN(VertexId v, uint32_t slot, uint32_t x,
                                   QueryStats* stats) override;

  Cost EstimateToTarget(VertexId v, QueryStats* stats) override;

 private:
  const Graph* graph_;
  VertexId target_;
  uint32_t num_slots_;
  DijkstraNnProvider nn_;
  std::unordered_map<uint64_t, FindNenCursor> cursors_;
  std::vector<Cost> dist_to_target_;
  bool dist_ready_ = false;
};

}  // namespace kosr

#endif  // KOSR_NN_DIJKSTRA_NN_H_
