#include "src/nn/find_nen.h"

#include "src/obs/counters.h"
#include "src/util/timer.h"

namespace kosr {

void FindNenCursor::EnsureLn(QueryStats* stats) {
  if (ln_.has_value() || exhausted_) return;
  ln_ = fetch_(++fetched_, stats);
  if (!ln_.has_value()) exhausted_ = true;
}

std::optional<NenResult> FindNenCursor::Get(uint32_t x, QueryStats* stats) {
  if (found_.size() >= x) return found_[x - 1];
  while (found_.size() < x) {
    EnsureLn(stats);
    // Buffer plain NNs until the cheapest buffered estimate is provably
    // final: every unpulled neighbor is at least ln away.
    while (!exhausted_ &&
           (queue_.Empty() || ln_->dist < queue_.Top().est)) {
      Cost h = heuristic_(ln_->vertex, stats);
      Cost est = (h >= kInfCost) ? kInfCost : ln_->dist + h;
      queue_.Push({ln_->vertex, ln_->dist, est});
      ln_.reset();
      EnsureLn(stats);
    }
    if (queue_.Empty()) return std::nullopt;
    NenResult top = queue_.Top();
    queue_.Pop();
    KOSR_COUNT(kNnCursorPops, 1);
    // A minimum estimate of infinity means no remaining member reaches the
    // destination (the frontier is exhausted by construction here).
    if (top.est >= kInfCost) return std::nullopt;
    found_.push_back(top);
  }
  return found_[x - 1];
}

HopLabelNenProvider::HopLabelNenProvider(
    const HubLabeling* labeling,
    std::vector<const InvertedLabelIndex*> slot_indexes, VertexId target,
    SlotFilter filter)
    : labeling_(labeling),
      target_(target),
      nn_(labeling, slot_indexes, target, std::move(filter)),
      num_slots_(static_cast<uint32_t>(slot_indexes.size())) {}

Cost HopLabelNenProvider::EstimateToTarget(VertexId v, QueryStats* stats) {
  if (stats != nullptr && stats->timing_enabled) {
    WallTimer timer;
    Cost d = labeling_->Query(v, target_);
    stats->estimation_time_s += timer.ElapsedSeconds();
    return d;
  }
  return labeling_->Query(v, target_);
}

std::optional<NenResult> HopLabelNenProvider::FindNEN(VertexId v,
                                                      uint32_t slot,
                                                      uint32_t x,
                                                      QueryStats* stats) {
  if (slot == num_slots_ + 1) {
    // Destination slot: only t itself, estimate equals the real leg.
    if (x > 1 || target_ == kInvalidVertex) return std::nullopt;
    if (stats != nullptr) ++stats->nn_queries;
    Cost d = labeling_->Query(v, target_);
    if (d >= kInfCost) return std::nullopt;
    return NenResult{target_, d, d};
  }
  uint64_t key = (static_cast<uint64_t>(v) << 16) | slot;
  auto it = cursors_.find(key);
  if (it == cursors_.end()) {
    FindNenCursor cursor(
        [this, v, slot](uint32_t nx, QueryStats* s) {
          return nn_.FindNN(v, slot, nx, s);
        },
        [this](VertexId u, QueryStats* s) { return EstimateToTarget(u, s); });
    it = cursors_.emplace(key, std::move(cursor)).first;
  }
  return it->second.Get(x, stats);
}

}  // namespace kosr
