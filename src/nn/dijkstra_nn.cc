#include "src/nn/dijkstra_nn.h"

#include "src/util/timer.h"

namespace kosr {

DijkstraKnnCursor::DijkstraKnnCursor(const Graph* graph,
                                     const CategoryTable* categories,
                                     CategoryId category, VertexId v,
                                     uint32_t slot, const SlotFilter* filter)
    : graph_(graph), categories_(categories), category_(category), v_(v),
      slot_(slot), filter_(filter) {}

std::optional<NnResult> DijkstraKnnCursor::Get(uint32_t x,
                                               QueryStats* stats) {
  if (found_.size() >= x) return found_[x - 1];
  if (stats != nullptr) ++stats->nn_queries;
  if (!initialized_) {
    initialized_ = true;
    dist_[v_] = 0;
    heap_.emplace(0, v_);
  }
  while (found_.size() < x) {
    if (heap_.empty()) return std::nullopt;
    auto [d, u] = heap_.top();
    heap_.pop();
    if (settled_.contains(u)) continue;
    settled_.insert(u);
    if (categories_->Has(u, category_) &&
        (filter_ == nullptr || !*filter_ || (*filter_)(slot_, u))) {
      found_.push_back({u, d});
    }
    for (const Arc& a : graph_->OutArcs(u)) {
      Cost nd = d + a.weight;
      auto it = dist_.find(a.head);
      if (it == dist_.end() || nd < it->second) {
        dist_[a.head] = nd;
        heap_.emplace(nd, a.head);
      }
    }
  }
  return found_[x - 1];
}

DijkstraNnProvider::DijkstraNnProvider(const Graph* graph,
                                       const CategoryTable* categories,
                                       CategorySequence sequence,
                                       VertexId target, SlotFilter filter)
    : graph_(graph), categories_(categories), sequence_(std::move(sequence)),
      target_(target), filter_(std::move(filter)) {}

const std::vector<Cost>& DijkstraNnProvider::DistToTarget() {
  if (dist_to_target_.empty() && target_ != kInvalidVertex) {
    dist_to_target_ = DijkstraAllDistances(*graph_, target_, /*reverse=*/true);
  }
  return dist_to_target_;
}

std::optional<NnResult> DijkstraNnProvider::FindNN(VertexId v, uint32_t slot,
                                                   uint32_t x,
                                                   QueryStats* stats) {
  if (slot == sequence_.size() + 1) {
    if (x > 1 || target_ == kInvalidVertex) return std::nullopt;
    if (stats != nullptr) ++stats->nn_queries;
    Cost d = DistToTarget()[v];
    if (d >= kInfCost) return std::nullopt;
    return NnResult{target_, d};
  }
  uint64_t key = (static_cast<uint64_t>(v) << 16) | slot;
  auto it = cursors_.find(key);
  if (it == cursors_.end()) {
    it = cursors_
             .emplace(key, DijkstraKnnCursor(graph_, categories_,
                                             sequence_[slot - 1], v, slot,
                                             filter_ ? &filter_ : nullptr))
             .first;
  }
  return it->second.Get(x, stats);
}

DijkstraNenProvider::DijkstraNenProvider(const Graph* graph,
                                         const CategoryTable* categories,
                                         CategorySequence sequence,
                                         VertexId target, SlotFilter filter)
    : graph_(graph),
      target_(target),
      num_slots_(static_cast<uint32_t>(sequence.size())),
      nn_(graph, categories, std::move(sequence), target, std::move(filter)) {}

Cost DijkstraNenProvider::EstimateToTarget(VertexId v, QueryStats* stats) {
  if (!dist_ready_) {
    WallTimer timer;
    dist_to_target_ = DijkstraAllDistances(*graph_, target_, /*reverse=*/true);
    dist_ready_ = true;
    if (stats != nullptr && stats->timing_enabled) {
      stats->estimation_time_s += timer.ElapsedSeconds();
    }
  }
  return dist_to_target_[v];
}

std::optional<NenResult> DijkstraNenProvider::FindNEN(VertexId v,
                                                      uint32_t slot,
                                                      uint32_t x,
                                                      QueryStats* stats) {
  if (slot == num_slots_ + 1) {
    if (x > 1 || target_ == kInvalidVertex) return std::nullopt;
    if (stats != nullptr) ++stats->nn_queries;
    Cost d = EstimateToTarget(v, stats);
    if (d >= kInfCost) return std::nullopt;
    return NenResult{target_, d, d};
  }
  uint64_t key = (static_cast<uint64_t>(v) << 16) | slot;
  auto it = cursors_.find(key);
  if (it == cursors_.end()) {
    FindNenCursor cursor(
        [this, v, slot](uint32_t nx, QueryStats* s) {
          return nn_.FindNN(v, slot, nx, s);
        },
        [this](VertexId u, QueryStats* s) { return EstimateToTarget(u, s); });
    it = cursors_.emplace(key, std::move(cursor)).first;
  }
  return it->second.Get(x, stats);
}

}  // namespace kosr
