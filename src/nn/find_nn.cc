#include "src/nn/find_nn.h"

#include "src/obs/counters.h"

namespace kosr {

FindNnCursor::FindNnCursor(const HubLabeling* labeling,
                           const InvertedLabelIndex* index, VertexId v,
                           uint32_t slot, const SlotFilter* filter)
    : labeling_(labeling), index_(index), v_(v), slot_(slot),
      filter_(filter) {}

bool FindNnCursor::Eligible(VertexId member) const {
  return filter_ == nullptr || !*filter_ || (*filter_)(slot_, member);
}

void FindNnCursor::PushNext(Cost base, uint32_t rank, uint32_t pos) {
  auto entries = index_->Entries(rank);
  while (pos < entries.size()) {
    const InvertedEntry& e = entries[pos];
    if (Eligible(e.member) && !found_set_.contains(e.member)) {
      queue_.Push({base + e.dist, base, rank, pos});
      return;
    }
    ++pos;
  }
}

std::optional<NnResult> FindNnCursor::Get(uint32_t x, QueryStats* stats) {
  if (found_.size() >= x) return found_[x - 1];  // NL hit: not counted.
  if (stats != nullptr) ++stats->nn_queries;
  if (!initialized_) {
    initialized_ = true;
    LabelRun lout = labeling_->OutRun(v_);
    for (uint32_t i = 0; i < lout.size; ++i) {
      PushNext(lout.DistAt(i), lout.RankAt(i), 0);
    }
  }
  while (found_.size() < x) {
    if (queue_.Empty()) return std::nullopt;
    Candidate top = queue_.Top();
    queue_.Pop();
    KOSR_COUNT(kNnCursorPops, 1);
    VertexId member = index_->Entries(top.rank)[top.pos].member;
    // Keep this inverted list flowing regardless of whether the popped
    // candidate is fresh.
    PushNext(top.base, top.rank, top.pos + 1);
    if (found_set_.contains(member)) continue;  // duplicate via another hub
    found_.push_back({member, top.total});
    found_set_.insert(member);
  }
  return found_[x - 1];
}

HopLabelNnProvider::HopLabelNnProvider(
    const HubLabeling* labeling,
    std::vector<const InvertedLabelIndex*> slot_indexes, VertexId target,
    SlotFilter filter)
    : labeling_(labeling),
      slot_indexes_(std::move(slot_indexes)),
      target_(target),
      filter_(std::move(filter)) {}

std::optional<NnResult> HopLabelNnProvider::FindNN(VertexId v, uint32_t slot,
                                                   uint32_t x,
                                                   QueryStats* stats) {
  if (slot == slot_indexes_.size() + 1) {
    // Destination slot: the dummy category {t}.
    if (x > 1 || target_ == kInvalidVertex) return std::nullopt;
    if (stats != nullptr) ++stats->nn_queries;
    Cost d = labeling_->Query(v, target_);
    if (d >= kInfCost) return std::nullopt;
    return NnResult{target_, d};
  }
  uint64_t key = (static_cast<uint64_t>(v) << 16) | slot;
  auto it = cursors_.find(key);
  if (it == cursors_.end()) {
    it = cursors_
             .emplace(key, FindNnCursor(labeling_, slot_indexes_[slot - 1], v,
                                        slot, filter_ ? &filter_ : nullptr))
             .first;
  }
  return it->second.Get(x, stats);
}

}  // namespace kosr
