#ifndef KOSR_NN_FIND_NEN_H_
#define KOSR_NN_FIND_NEN_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/labeling/hub_labeling.h"
#include "src/nn/find_nn.h"
#include "src/nn/nn_provider.h"
#include "src/util/min_heap.h"

namespace kosr {

/// Algorithm 4 of the paper: incremental x-th nearest *estimated* neighbor.
///
/// Members u of a category are ranked by dis(v, u) + dis(u, t). The cursor
/// pulls plain nearest neighbors (in dis(v, u) order) from an underlying
/// FindNN source and buffers them in a priority queue by estimated cost
/// (ENQ); a buffered candidate may be emitted once its estimate is no larger
/// than the plain distance of the next unpulled neighbor — every unpulled
/// u' has dis(v, u') >= dis(v, ln) and thus estimate >= dis(v, ln).
///
/// The cursor is generic over the NN source and the heuristic, so it serves
/// both the hub-labeling backend (SK) and the Dijkstra backend (SK-Dij).
class FindNenCursor {
 public:
  /// Fetches the x-th plain nearest neighbor (1-based, monotone calls).
  using FetchNn = std::function<std::optional<NnResult>(uint32_t x,
                                                        QueryStats* stats)>;
  /// Admissible estimate dis(u, t); kInfCost when t is unreachable from u.
  using Heuristic = std::function<Cost(VertexId u, QueryStats* stats)>;

  FindNenCursor(FetchNn fetch, Heuristic heuristic)
      : fetch_(std::move(fetch)), heuristic_(std::move(heuristic)) {}

  /// The x-th nearest estimated neighbor, or nullopt when no further
  /// category member can reach the destination.
  std::optional<NenResult> Get(uint32_t x, QueryStats* stats);

 private:
  struct ByEst {
    bool operator()(const NenResult& a, const NenResult& b) const {
      return a.est != b.est ? a.est > b.est : a.vertex > b.vertex;
    }
  };

  void EnsureLn(QueryStats* stats);

  FetchNn fetch_;
  Heuristic heuristic_;
  std::vector<NenResult> found_;  // ENL
  MinQueue<NenResult, ByEst> queue_;  // ENQ
  std::optional<NnResult> ln_;    // last fetched NN, not yet buffered
  uint32_t fetched_ = 0;
  bool exhausted_ = false;
};

/// Hub-labeling-backed NenProvider: FindNN through inverted label indexes,
/// heuristic through label distance queries (Sec. IV-B).
class HopLabelNenProvider : public NenProvider {
 public:
  HopLabelNenProvider(const HubLabeling* labeling,
                      std::vector<const InvertedLabelIndex*> slot_indexes,
                      VertexId target, SlotFilter filter = nullptr);

  std::optional<NenResult> FindNEN(VertexId v, uint32_t slot, uint32_t x,
                                   QueryStats* stats) override;

  Cost EstimateToTarget(VertexId v, QueryStats* stats) override;

 private:
  const HubLabeling* labeling_;
  VertexId target_;
  HopLabelNnProvider nn_;
  std::unordered_map<uint64_t, FindNenCursor> cursors_;
  uint32_t num_slots_;
};

}  // namespace kosr

#endif  // KOSR_NN_FIND_NEN_H_
