#ifndef KOSR_NN_FIND_NN_H_
#define KOSR_NN_FIND_NN_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/graph/categories.h"
#include "src/labeling/hub_labeling.h"
#include "src/nn/inverted_label_index.h"
#include "src/nn/nn_provider.h"
#include "src/util/min_heap.h"

namespace kosr {

/// Algorithm 3 of the paper: incremental x-th nearest neighbor of a fixed
/// vertex `v` within a fixed category, via the inverted label index.
///
/// State mirrors the paper's globals: NL = `found_` (nearest neighbors in
/// discovery order), NQ = `queue_` (frontier: at most one candidate entry
/// per matching inverted label list), KV = the per-list positions carried
/// inside the queue entries. Re-asking for an already-found x is O(1).
class FindNnCursor {
 public:
  /// @param filter  optional vertex predicate; ineligible members are
  ///                transparently skipped (preference extension, Sec. IV-C).
  FindNnCursor(const HubLabeling* labeling, const InvertedLabelIndex* index,
               VertexId v, uint32_t slot, const SlotFilter* filter);

  /// The x-th nearest neighbor (1-based), or nullopt if fewer than x
  /// category members are reachable from v.
  std::optional<NnResult> Get(uint32_t x, QueryStats* stats);

 private:
  struct Candidate {
    Cost total;     ///< dis(v, hub) + dis(hub, member).
    Cost base;      ///< dis(v, hub).
    uint32_t rank;  ///< hub rank.
    uint32_t pos;   ///< position within IL(hub).
    bool operator>(const Candidate& other) const {
      return total != other.total ? total > other.total : rank > other.rank;
    }
  };

  bool Eligible(VertexId member) const;
  // Pushes the next eligible, not-yet-found entry of list `rank` at
  // position >= `pos`.
  void PushNext(Cost base, uint32_t rank, uint32_t pos);

  const HubLabeling* labeling_;
  const InvertedLabelIndex* index_;
  VertexId v_;
  uint32_t slot_;
  const SlotFilter* filter_;

  std::vector<NnResult> found_;
  std::unordered_set<VertexId> found_set_;
  MinQueue<Candidate> queue_;
  bool initialized_ = false;
};

/// Hub-labeling-backed NnProvider for one KOSR query: slot i in [1, |C|]
/// resolves against the inverted label index of category Ci; slot |C|+1 is
/// the destination singleton answered directly from the labeling.
class HopLabelNnProvider : public NnProvider {
 public:
  /// @param slot_indexes  inverted label index per sequence position
  ///                      (size |C|); element i serves slot i+1.
  /// @param target        destination vertex (kInvalidVertex if the query
  ///                      has no destination — variant of Sec. IV-C).
  HopLabelNnProvider(const HubLabeling* labeling,
                     std::vector<const InvertedLabelIndex*> slot_indexes,
                     VertexId target, SlotFilter filter = nullptr);

  std::optional<NnResult> FindNN(VertexId v, uint32_t slot, uint32_t x,
                                 QueryStats* stats) override;

 private:
  const HubLabeling* labeling_;
  std::vector<const InvertedLabelIndex*> slot_indexes_;
  VertexId target_;
  SlotFilter filter_;
  std::unordered_map<uint64_t, FindNnCursor> cursors_;
};

}  // namespace kosr

#endif  // KOSR_NN_FIND_NN_H_
