#ifndef KOSR_NN_NN_PROVIDER_H_
#define KOSR_NN_NN_PROVIDER_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "src/util/stats.h"
#include "src/util/types.h"

namespace kosr {

/// Result of a FindNN query: the x-th nearest member of a category slot.
struct NnResult {
  VertexId vertex;
  Cost dist;  ///< dis(query vertex, vertex).
};

/// Result of a FindNEN query (Algorithm 4): the x-th nearest *estimated*
/// neighbor, i.e. ranked by dis(v, u) + dis(u, t).
struct NenResult {
  VertexId vertex;
  Cost dist;  ///< dis(query vertex, vertex) — the real leg cost.
  Cost est;   ///< dist + dis(vertex, target).
};

/// Optional per-slot vertex predicate ("only Italian restaurants" — the
/// personal-preference extension of Sec. IV-C). A candidate is eligible for
/// slot `slot` only if the filter returns true.
using SlotFilter = std::function<bool(uint32_t slot, VertexId v)>;

/// Incremental nearest-neighbor oracle over the slots of one KOSR query.
///
/// Slots are 1-based positions in the extended category sequence:
/// slot i in [1, |C|] is category Ci; slot |C|+1 is the dummy destination
/// category {t}. Implementations keep per-(vertex, slot) cursors so that
/// successive x = 1, 2, 3, ... queries never repeat work (the paper's NL /
/// NQ / KV state).
class NnProvider {
 public:
  virtual ~NnProvider() = default;

  /// The x-th (1-based) nearest neighbor of `v` among slot members, or
  /// nullopt if fewer than x members are reachable. `stats` (optional)
  /// accumulates the NN-query counter per the paper's convention: cached
  /// answers (NL hits) are not counted.
  virtual std::optional<NnResult> FindNN(VertexId v, uint32_t slot,
                                         uint32_t x, QueryStats* stats) = 0;
};

/// Incremental nearest *estimated* neighbor oracle (StarKOSR).
class NenProvider {
 public:
  virtual ~NenProvider() = default;

  /// The x-th member u of the slot ranked by dis(v, u) + dis(u, t).
  virtual std::optional<NenResult> FindNEN(VertexId v, uint32_t slot,
                                           uint32_t x, QueryStats* stats) = 0;

  /// Admissible heuristic h(v) = dis(v, t); kInfCost if v cannot reach t.
  virtual Cost EstimateToTarget(VertexId v, QueryStats* stats) = 0;
};

}  // namespace kosr

#endif  // KOSR_NN_NN_PROVIDER_H_
