#include "src/nn/inverted_label_index.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace kosr {
namespace {

bool EntryLess(const InvertedEntry& a, const InvertedEntry& b) {
  return a.dist != b.dist ? a.dist < b.dist : a.member < b.member;
}

}  // namespace

void InvertedLabelIndex::InsertEntry(uint32_t rank, VertexId member,
                                     uint32_t dist) {
  auto& list = lists_[rank];
  InvertedEntry entry{member, dist};
  list.insert(std::lower_bound(list.begin(), list.end(), entry, EntryLess),
              entry);
}

void InvertedLabelIndex::RemoveEntry(uint32_t rank, VertexId member,
                                     uint32_t dist) {
  auto it = lists_.find(rank);
  if (it == lists_.end()) return;
  auto& list = it->second;
  InvertedEntry entry{member, dist};
  auto pos = std::lower_bound(list.begin(), list.end(), entry, EntryLess);
  if (pos != list.end() && pos->member == member && pos->dist == dist) {
    list.erase(pos);
    if (list.empty()) lists_.erase(it);
  }
}

InvertedLabelIndex InvertedLabelIndex::Build(
    const HubLabeling& labeling, std::span<const VertexId> members) {
  InvertedLabelIndex index;
  for (VertexId u : members) {
    LabelRun lin = labeling.InRun(u);
    for (uint32_t i = 0; i < lin.size; ++i) {
      index.lists_[lin.RankAt(i)].push_back({u, lin.DistAt(i)});
    }
  }
  for (auto& [rank, list] : index.lists_) {
    std::sort(list.begin(), list.end(), EntryLess);
  }
  return index;
}

void InvertedLabelIndex::AddMember(const HubLabeling& labeling, VertexId v) {
  LabelRun lin = labeling.InRun(v);
  for (uint32_t i = 0; i < lin.size; ++i) {
    InsertEntry(lin.RankAt(i), v, lin.DistAt(i));
  }
}

void InvertedLabelIndex::RemoveMember(const HubLabeling& labeling, VertexId v) {
  LabelRun lin = labeling.InRun(v);
  for (uint32_t i = 0; i < lin.size; ++i) {
    RemoveEntry(lin.RankAt(i), v, lin.DistAt(i));
  }
}

void InvertedLabelIndex::UpdateMember(VertexId v,
                                      std::span<const LabelEntry> old_lin,
                                      std::span<const LabelEntry> new_lin) {
  // Lockstep merge over the rank-sorted vectors: a rank only in the old Lin
  // lost its entry, one only in the new Lin gained one, and a rank in both
  // moves its entry only if the distance changed.
  size_t i = 0, j = 0;
  while (i < old_lin.size() || j < new_lin.size()) {
    if (j == new_lin.size() ||
        (i < old_lin.size() && old_lin[i].hub_rank < new_lin[j].hub_rank)) {
      RemoveEntry(old_lin[i].hub_rank, v, old_lin[i].dist);
      ++i;
    } else if (i == old_lin.size() ||
               new_lin[j].hub_rank < old_lin[i].hub_rank) {
      InsertEntry(new_lin[j].hub_rank, v, new_lin[j].dist);
      ++j;
    } else {
      if (old_lin[i].dist != new_lin[j].dist) {
        RemoveEntry(old_lin[i].hub_rank, v, old_lin[i].dist);
        InsertEntry(new_lin[j].hub_rank, v, new_lin[j].dist);
      }
      ++i;
      ++j;
    }
  }
}

uint64_t InvertedLabelIndex::total_entries() const {
  uint64_t total = 0;
  for (const auto& [rank, list] : lists_) total += list.size();
  return total;
}

double InvertedLabelIndex::AvgListSize() const {
  if (lists_.empty()) return 0;
  return static_cast<double>(total_entries()) / lists_.size();
}

uint64_t InvertedLabelIndex::IndexBytes() const {
  return total_entries() * sizeof(InvertedEntry) +
         lists_.size() * (sizeof(uint32_t) + sizeof(void*));
}

void InvertedLabelIndex::Serialize(std::ostream& out) const {
  // Canonical order: the map's iteration order depends on its insertion
  // history, so emitting it directly would make byte-identical indexes
  // (fresh build vs. snapshot load vs. incremental repair) serialize
  // differently. Sorted ranks make the serialization a pure function of the
  // index contents — what the checkpoint/recovery equivalence checks
  // (ISSUE 9) and the build-reproducibility tests compare.
  std::vector<uint32_t> ranks;
  ranks.reserve(lists_.size());
  for (const auto& [rank, list] : lists_) ranks.push_back(rank);
  std::sort(ranks.begin(), ranks.end());
  uint64_t n = ranks.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (uint32_t rank : ranks) {
    const std::vector<InvertedEntry>& list = lists_.at(rank);
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    uint64_t size = list.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(list.data()),
              static_cast<std::streamsize>(size * sizeof(InvertedEntry)));
  }
}

InvertedLabelIndex InvertedLabelIndex::Deserialize(std::istream& in,
                                                   uint32_t num_vertices) {
  InvertedLabelIndex index;
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) throw std::runtime_error("truncated inverted label stream");
  // One list per hub, one entry per (member, hub) Lin pair: both counts are
  // bounded by the vertex universe, so anything larger is malformed — check
  // before allocating from attacker-controlled sizes.
  if (n > num_vertices) {
    throw std::runtime_error("inverted label list count exceeds vertex count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t rank;
    uint64_t size;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in) throw std::runtime_error("truncated inverted label stream");
    if (num_vertices != kInvalidVertex &&
        (rank >= num_vertices || size > num_vertices)) {
      throw std::runtime_error("inverted label list header out of range");
    }
    std::vector<InvertedEntry> list(size);
    in.read(reinterpret_cast<char*>(list.data()),
            static_cast<std::streamsize>(size * sizeof(InvertedEntry)));
    if (!in) throw std::runtime_error("truncated inverted label stream");
    if (num_vertices != kInvalidVertex) {
      for (const InvertedEntry& e : list) {
        if (e.member >= num_vertices) {
          throw std::runtime_error("inverted label member out of range");
        }
      }
    }
    index.lists_[rank] = std::move(list);
  }
  return index;
}

}  // namespace kosr
