#ifndef KOSR_NN_INVERTED_LABEL_INDEX_H_
#define KOSR_NN_INVERTED_LABEL_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/labeling/hub_labeling.h"
#include "src/util/types.h"

namespace kosr {

/// One entry of an inverted label list IL(u'): a category member `member`
/// whose Lin contains hub u' at distance `dist`.
struct InvertedEntry {
  VertexId member;
  uint32_t dist;
};

/// Inverted label index IL(Ci) for one category (Sec. IV-A of the paper).
///
/// For every hub u' appearing in the Lin label of some member u of the
/// category, IL(u') lists (u, dis(u', u)) sorted by distance ascending.
/// FindNN then only needs the *first unconsumed* entry of each matching
/// list, which makes incremental x-th-nearest-neighbor queries cheap.
///
/// Hubs are identified by their rank in the hub labeling.
class InvertedLabelIndex {
 public:
  InvertedLabelIndex() = default;

  /// Builds the index for the given category members.
  static InvertedLabelIndex Build(const HubLabeling& labeling,
                                  std::span<const VertexId> members);

  /// IL(hub): entries sorted by dist (empty span if the hub indexes no
  /// member).
  std::span<const InvertedEntry> Entries(uint32_t hub_rank) const {
    auto it = lists_.find(hub_rank);
    if (it == lists_.end()) return {};
    return it->second;
  }

  /// Dynamic category update (Sec. IV-C): vertex `v` joined the category.
  /// Inserts (v, d) into IL(u') for every (u', d) in Lin(v), via binary
  /// search — O(|Lin(v)| log |Ci|).
  void AddMember(const HubLabeling& labeling, VertexId v);

  /// Dynamic category update: vertex `v` left the category.
  void RemoveMember(const HubLabeling& labeling, VertexId v);

  /// Dynamic *label* update (Sec. IV-C): member `v`'s Lin changed from
  /// `old_lin` to `new_lin` (both rank-sorted) after an incremental edge
  /// repair. Walks the two vectors in lockstep and patches only the lists
  /// of hubs whose entry for `v` appeared, vanished, or moved — the result
  /// is identical to a from-scratch Build over the same members (asserted
  /// in dynamic_update_test). O((|old| + |new|) log |Ci|), independent of
  /// how many categories exist.
  void UpdateMember(VertexId v, std::span<const LabelEntry> old_lin,
                    std::span<const LabelEntry> new_lin);

  uint64_t num_lists() const { return lists_.size(); }
  uint64_t total_entries() const;
  /// Avg entries per inverted label list (paper Table IX "Avg |IL(v)|").
  double AvgListSize() const;
  uint64_t IndexBytes() const;

  void Serialize(std::ostream& out) const;
  /// Reads an index written by Serialize. When `num_vertices` is given
  /// (untrusted snapshots: serve --indexes), every hub rank, member id, and
  /// claimed list size is range-checked against it before any allocation;
  /// malformed input raises std::runtime_error.
  static InvertedLabelIndex Deserialize(std::istream& in,
                                        uint32_t num_vertices = kInvalidVertex);

 private:
  void InsertEntry(uint32_t rank, VertexId member, uint32_t dist);
  void RemoveEntry(uint32_t rank, VertexId member, uint32_t dist);

  std::unordered_map<uint32_t, std::vector<InvertedEntry>> lists_;
};

}  // namespace kosr

#endif  // KOSR_NN_INVERTED_LABEL_INDEX_H_
