#ifndef KOSR_CLI_CLI_H_
#define KOSR_CLI_CLI_H_

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace kosr::cli {

/// Parsed command line: one subcommand plus --key value flags.
struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::optional<std::string> Get(const std::string& key) const;
  std::string GetOr(const std::string& key, const std::string& fallback) const;
  /// Returns the flag parsed as int64, or throws std::invalid_argument with
  /// a helpful message if absent/malformed.
  long long GetInt(const std::string& key) const;
  long long GetIntOr(const std::string& key, long long fallback) const;
};

/// Parses ["subcommand", "--key", "value", ...]. Flags must be --key value
/// pairs; bare "--key" with no value or unknown syntax throws
/// std::invalid_argument.
Args ParseArgs(const std::vector<std::string>& argv);

/// Parses a comma-separated category sequence, e.g. "3,1,4".
std::vector<uint32_t> ParseSequence(const std::string& text);

/// Runs a CLI invocation, writing human-readable output to `out` and (for
/// the `serve` subcommand) reading protocol requests from `in`.
/// Returns a process exit code (0 success, 1 usage error, 2 runtime error).
///
/// Subcommands:
///   generate     synthesize a graph + categories to files
///   stats        print graph/category statistics
///   build-index  build hub-label indexes and persist them (plain disk
///                store layout, compressed labeling, and/or a bulk
///                snapshot for `serve --indexes`)
///   query        answer a KOSR query (optionally from a prebuilt store)
///   serve        long-lived query service speaking the newline protocol
///                of src/service/protocol.h over in/out
///   help         usage text
int RunCli(const std::vector<std::string>& argv, std::istream& in,
           std::ostream& out);

/// Convenience overload: `serve` reads from std::cin.
int RunCli(const std::vector<std::string>& argv, std::ostream& out);

}  // namespace kosr::cli

#endif  // KOSR_CLI_CLI_H_
