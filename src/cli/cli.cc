#include "src/cli/cli.h"

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/core/engine.h"
#include "src/durability/recovery.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/labeling/compressed_io.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/json_reader.h"
#include "src/service/protocol.h"
#include "src/service/service.h"
#include "src/util/durable_file.h"
#include "src/util/timer.h"

namespace kosr::cli {
namespace {

constexpr const char* kUsage = R"(kosr command-line interface

Usage: kosr_cli <command> [--flag value ...]

Commands:
  generate     --type grid|smallworld|random --out graph.gr
               --categories-out cats.txt [--rows R --cols C] [--vertices N]
               [--edges M] [--seed S] [--category-size K]
               [--zipf F --num-categories N]
  stats        --graph graph.gr [--categories cats.txt --num-categories N]
  build-index  --graph graph.gr --categories cats.txt --num-categories N
               --out store_dir [--order degree|dissection --rows R --cols C]
               [--threads T (parallel build; 0 = all cores, default 1)]
               [--compressed-out labels.bin] [--indexes-out snapshot.bin]
  query        --graph graph.gr --categories cats.txt --num-categories N
               --source S --target T --sequence c1,c2,... [--k K]
               [--algorithm kpne|pk|sk] [--nn hoplabel|dijkstra] [--paths 1]
               [--threads T] [--updates updates.txt (applied after the index
               build, before the query; lines are ADD_EDGE u v w |
               SET_EDGE u v w | REMOVE_EDGE u v, exercising the
               incremental label repair)]
  serve        --graph graph.gr --categories cats.txt [--num-categories N]
               [--indexes snapshot.bin] [--order degree|dissection
               --rows R --cols C] [--threads T (index build at startup)]
               [--workers W] [--queue-capacity Q]
               [--cache-capacity C] [--cache-shards S]
               [--time-budget S (per-query seconds, default 30, 0=unlimited)]
               [--slow-query-threshold S (retain traces of queries slower
               than S seconds; 0=off, default)] [--slow-log-capacity N]
               [--stage-sample-every N (engine-phase span sampling rate,
               0=off, default 64)]
               [--update-batch-window S (edge updates arriving within S
               seconds batch into one label repair and one published
               snapshot; 0=apply immediately, default)]
               [--journal DIR (write-ahead journal + checkpoints: updates
               are logged before they apply, and startup recovers from
               DIR's newest checkpoint plus journal replay — when a
               checkpoint exists it overrides --graph/--categories/
               --indexes and skips the index build)]
               [--fsync-policy always|interval|never (when journal appends
               reach disk; default always = fsync before each ack, one
               fsync per batch under a batch window)]
               [--fsync-interval S (group-commit period for
               --fsync-policy interval, default 0.05)]
               [--checkpoint-bytes N (checkpoint + truncate once the
               journal exceeds N bytes; 0=only CHECKPOINT verb and
               shutdown, default 64MiB)]
               [--listen HOST:PORT (serve the same protocol over TCP with
               binary framing instead of stdin/stdout; port 0 picks an
               ephemeral port, reported on the ready line; see README.md,
               "TCP transport")]
               [--max-connections N (TCP: concurrent connections beyond N
               are accepted and closed, default 1024)]
               [--max-pipeline N (TCP: per-connection in-flight query cap;
               excess frames get REJECTED, default 128)]
               then speaks the newline request/response protocol on
               stdin/stdout (QUERY/ADD_CAT/REMOVE_CAT/ADD_EDGE/SET_EDGE/
               REMOVE_EDGE/FLUSH_UPDATES/CHECKPOINT/METRICS/PING/QUIT; see
               README.md for the grammar); SIGTERM/SIGINT shut down
               gracefully (drain, flush, final checkpoint)
  metrics      [--file metrics.json] pretty-prints a METRICS snapshot
               (reads stdin when --file is absent; accepts either the raw
               JSON or a full "OK METRICS {...}" response line)
  help         this text
)";

uint32_t CountCategories(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string line;
  uint32_t max_cat = 0;
  bool any = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint64_t v, c;
    ls >> v >> c;
    if (!ls) continue;
    max_cat = std::max(max_cat, static_cast<uint32_t>(c));
    any = true;
  }
  return any ? max_cat + 1 : 0;
}

int CmdGenerate(const Args& args, std::ostream& out) {
  std::string type = args.GetOr("type", "grid");
  uint64_t seed = args.GetIntOr("seed", 42);
  Graph graph;
  uint32_t rows = 0, cols = 0;
  if (type == "grid") {
    rows = static_cast<uint32_t>(args.GetIntOr("rows", 64));
    cols = static_cast<uint32_t>(args.GetIntOr("cols", 64));
    graph = MakeGridRoadNetwork(rows, cols, seed);
  } else if (type == "smallworld") {
    uint32_t n = static_cast<uint32_t>(args.GetIntOr("vertices", 2000));
    graph = MakeSmallWorld(n, 2, 6.0, seed);
  } else if (type == "random") {
    uint32_t n = static_cast<uint32_t>(args.GetIntOr("vertices", 1000));
    uint64_t m = static_cast<uint64_t>(args.GetIntOr("edges", 5000));
    graph = MakeRandomGraph(n, m, seed);
  } else {
    throw std::invalid_argument("unknown --type " + type);
  }

  std::string graph_out = args.GetOr("out", "graph.gr");
  SaveDimacsGraph(graph, graph_out);
  out << "wrote " << graph_out << ": " << graph.num_vertices()
      << " vertices, " << graph.num_edges() << " arcs\n";

  if (auto cats_out = args.Get("categories-out")) {
    CategoryTable cats;
    if (auto zipf = args.Get("zipf")) {
      uint32_t num_categories =
          static_cast<uint32_t>(args.GetIntOr("num-categories", 100));
      cats = CategoryTable::Zipfian(graph.num_vertices(), num_categories,
                                    std::stod(*zipf), seed + 1);
    } else {
      uint32_t size = static_cast<uint32_t>(args.GetIntOr("category-size", 64));
      cats = CategoryTable::Uniform(graph.num_vertices(), size, seed + 1);
    }
    SaveCategories(cats, *cats_out);
    out << "wrote " << *cats_out << ": " << cats.num_categories()
        << " categories\n";
  }
  return 0;
}

int CmdStats(const Args& args, std::ostream& out) {
  Graph graph = LoadDimacsGraph(args.GetOr("graph", "graph.gr"));
  out << "vertices: " << graph.num_vertices() << "\n";
  out << "arcs: " << graph.num_edges() << "\n";
  uint64_t degree_sum = 0;
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    degree_sum += graph.OutDegree(v);
    max_degree = std::max(max_degree, graph.OutDegree(v));
  }
  out << "avg out-degree: "
      << static_cast<double>(degree_sum) / graph.num_vertices() << "\n";
  out << "max out-degree: " << max_degree << "\n";
  out << "symmetric: " << (graph.IsSymmetric() ? "yes" : "no") << "\n";
  if (auto cats_path = args.Get("categories")) {
    uint32_t num_categories = args.Get("num-categories")
                                  ? static_cast<uint32_t>(args.GetInt("num-categories"))
                                  : CountCategories(*cats_path);
    CategoryTable cats =
        LoadCategories(*cats_path, graph.num_vertices(), num_categories);
    out << "categories: " << cats.num_categories() << "\n";
    uint32_t min_size = UINT32_MAX, max_size = 0;
    uint64_t total = 0;
    for (CategoryId c = 0; c < cats.num_categories(); ++c) {
      uint32_t size = cats.CategorySize(c);
      min_size = std::min(min_size, size);
      max_size = std::max(max_size, size);
      total += size;
    }
    out << "category sizes: min " << min_size << ", max " << max_size
        << ", avg "
        << static_cast<double>(total) / std::max(1u, cats.num_categories())
        << "\n";
  }
  return 0;
}

KosrEngine LoadEngine(const Args& args) {
  Graph graph = LoadDimacsGraph(args.GetOr("graph", "graph.gr"));
  std::string cats_path = args.GetOr("categories", "cats.txt");
  uint32_t num_categories = args.Get("num-categories")
                                ? static_cast<uint32_t>(args.GetInt("num-categories"))
                                : CountCategories(cats_path);
  CategoryTable cats =
      LoadCategories(cats_path, graph.num_vertices(), num_categories);
  return KosrEngine(std::move(graph), std::move(cats));
}

void BuildWithRequestedOrder(const Args& args, KosrEngine& engine) {
  // --threads 0 means "use the hardware"; negatives (and values past the
  // 32-bit range) would otherwise wrap through the unsigned cast.
  long long threads = args.GetIntOr("threads", 1);
  if (threads < 0 || threads > std::numeric_limits<uint32_t>::max()) {
    throw std::invalid_argument("--threads must be in [0, 2^32)");
  }
  uint32_t num_threads = static_cast<uint32_t>(threads);
  std::string order = args.GetOr("order", "degree");
  if (order == "dissection") {
    uint32_t rows = static_cast<uint32_t>(args.GetInt("rows"));
    uint32_t cols = static_cast<uint32_t>(args.GetInt("cols"));
    if (static_cast<uint64_t>(rows) * cols !=
        engine.graph().num_vertices()) {
      throw std::invalid_argument("--rows * --cols must equal |V|");
    }
    engine.BuildIndexes(GridDissectionOrder(rows, cols), num_threads);
  } else if (order == "degree") {
    engine.BuildIndexes(num_threads);
  } else {
    throw std::invalid_argument("unknown --order " + order);
  }
}

int CmdBuildIndex(const Args& args, std::ostream& out) {
  KosrEngine engine = LoadEngine(args);
  WallTimer timer;
  BuildWithRequestedOrder(args, engine);
  out << "built indexes in " << timer.ElapsedSeconds() << " s (labels "
      << engine.label_build_seconds() << " s, inverted "
      << engine.inverted_build_seconds() << " s)\n";
  out << "avg |Lin| " << engine.labeling().AvgInLabelSize() << ", avg |Lout| "
      << engine.labeling().AvgOutLabelSize() << ", size "
      << engine.labeling().IndexBytes() / 1048576.0 << " MB\n";

  if (auto dir = args.Get("out")) {
    engine.WriteDiskStore(*dir);
    out << "wrote disk store to " << *dir << "\n";
  }
  // Both snapshot writers go through write-temp + fsync + atomic-rename: a
  // crash mid-write must never leave a torn file under the final name that
  // a later `serve --indexes` would try to load.
  if (auto compressed = args.Get("compressed-out")) {
    AtomicFileWriter file(*compressed);
    SerializeCompressed(engine.labeling(), file.stream());
    file.Commit();
    out << "wrote compressed labeling to " << *compressed << " ("
        << CompressedSizeBytes(engine.labeling()) / 1048576.0 << " MB, "
        << "plain would be "
        << engine.labeling().IndexBytes() / 1048576.0 << " MB)\n";
  }
  if (auto snapshot = args.Get("indexes-out")) {
    AtomicFileWriter file(*snapshot);
    engine.SaveIndexes(file.stream());
    file.Commit();
    out << "wrote index snapshot to " << *snapshot << "\n";
  }
  return 0;
}

// Serve shutdown flag, set by SIGTERM/SIGINT. Lock-free atomics are the
// only std synchronization a signal handler may touch.
std::atomic<bool> g_serve_stop{false};

extern "C" void HandleServeSignal(int) {
  g_serve_stop.store(true, std::memory_order_relaxed);
}

void InstallServeSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleServeSignal;
  sigemptyset(&action.sa_mask);
  // Deliberately no SA_RESTART: a getline blocked in read(2) on stdin must
  // return EINTR so the serve loop observes the flag and shuts down
  // instead of waiting for the next request line.
  action.sa_flags = 0;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

int CmdServe(const Args& args, std::istream& in, std::ostream& out) {
  // Durability flags are validated before paying for an engine build.
  auto journal_dir = args.Get("journal");
  std::string policy_text = args.GetOr("fsync-policy", "always");
  auto fsync_policy = durability::ParseFsyncPolicy(policy_text);
  if (!fsync_policy) {
    throw std::invalid_argument(
        "--fsync-policy must be always|interval|never, got " + policy_text);
  }
  std::string interval_text = args.GetOr("fsync-interval", "0.05");
  double fsync_interval = 0;
  size_t interval_consumed = 0;
  try {
    fsync_interval = std::stod(interval_text, &interval_consumed);
  } catch (const std::exception&) {
    interval_consumed = 0;
  }
  if (interval_consumed != interval_text.size() ||
      !std::isfinite(fsync_interval) || fsync_interval <= 0) {
    throw std::invalid_argument(
        "--fsync-interval must be a finite number > 0, got " + interval_text);
  }
  long long checkpoint_bytes =
      args.GetIntOr("checkpoint-bytes", 64ll << 20);
  if (checkpoint_bytes < 0) {
    throw std::invalid_argument(
        "--checkpoint-bytes must be >= 0 (0 = manual/shutdown only)");
  }
  // TCP-transport flags, also validated before the engine build.
  auto listen = args.Get("listen");
  net::ServerOptions listen_options;
  if (listen) {
    auto [host, port] = net::ParseHostPort(*listen);  // throws on bad input
    listen_options.host = host;
    listen_options.port = port;
    long long max_connections = args.GetIntOr("max-connections", 1024);
    long long max_pipeline = args.GetIntOr("max-pipeline", 128);
    if (max_connections <= 0) {
      throw std::invalid_argument("--max-connections must be positive");
    }
    if (max_pipeline <= 0) {
      throw std::invalid_argument("--max-pipeline must be positive");
    }
    listen_options.max_connections = static_cast<size_t>(max_connections);
    listen_options.max_pipeline = static_cast<uint32_t>(
        std::min<long long>(max_pipeline,
                            std::numeric_limits<uint32_t>::max()));
  }

  // The normal engine path: load graph + categories, then load or build
  // indexes. With a journal this only runs when no checkpoint exists —
  // steady-state restarts recover from the checkpoint instead.
  auto make_engine = [&args] {
    auto engine = std::make_unique<KosrEngine>(LoadEngine(args));
    if (auto snapshot = args.Get("indexes")) {
      std::ifstream file(*snapshot, std::ios::binary);
      if (!file) throw std::runtime_error("cannot open " + *snapshot);
      engine->LoadIndexes(file);
    } else {
      BuildWithRequestedOrder(args, *engine);
    }
    return engine;
  };

  std::unique_ptr<KosrEngine> engine;
  service::DurabilityAttachment attachment;
  if (journal_dir) {
    durability::RecoveryOptions options;
    options.dir = *journal_dir;
    options.fsync_policy = *fsync_policy;
    options.fsync_interval_s = fsync_interval;
    durability::RecoveredState recovered =
        durability::Recover(options, make_engine);
    engine = std::move(recovered.engine);
    attachment.journal = std::move(recovered.journal);
    attachment.dir = *journal_dir;
    attachment.checkpoint_bytes = static_cast<uint64_t>(checkpoint_bytes);
    attachment.checkpoint_loaded = recovered.stats.checkpoint_loaded;
    attachment.checkpoint_seq = recovered.stats.checkpoint_seq;
    attachment.replayed_records = recovered.stats.replayed_records;
    attachment.recovery_s =
        recovered.stats.checkpoint_load_s + recovered.stats.replay_s;
  } else {
    engine = make_engine();
  }

  // Reject negatives before the unsigned casts: --workers -1 would
  // otherwise ask for ~4 billion threads, --queue-capacity -1 would make
  // the "bounded" queue unbounded.
  long long workers = args.GetIntOr("workers", 0);
  long long queue_capacity = args.GetIntOr("queue-capacity", 256);
  long long cache_capacity = args.GetIntOr("cache-capacity", 1024);
  long long cache_shards = args.GetIntOr("cache-shards", 8);
  if (workers < 0) throw std::invalid_argument("--workers must be >= 0");
  if (queue_capacity <= 0) {
    throw std::invalid_argument("--queue-capacity must be positive");
  }
  if (cache_capacity < 0) {
    throw std::invalid_argument("--cache-capacity must be >= 0 (0 disables)");
  }
  if (cache_shards <= 0) {
    throw std::invalid_argument("--cache-shards must be positive");
  }
  // Untrusted stdin can ask for arbitrarily expensive queries; cap each by
  // default so one pathological request cannot wedge the process. Strict
  // parse: "nan" would sail past the < 0 check and silently disable the
  // cap (NaN comparisons are false), "30x" would silently drop the tail.
  std::string budget_text = args.GetOr("time-budget", "30");
  double time_budget = 0;
  size_t consumed = 0;
  try {
    time_budget = std::stod(budget_text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != budget_text.size() || !std::isfinite(time_budget) ||
      time_budget < 0) {
    throw std::invalid_argument(
        "--time-budget must be a finite number >= 0 (0 = unlimited), got " +
        budget_text);
  }
  // Same strict-parse treatment for the slow-query threshold as for the
  // time budget (both are untrusted doubles).
  std::string slow_text = args.GetOr("slow-query-threshold", "0");
  double slow_threshold = 0;
  size_t slow_consumed = 0;
  try {
    slow_threshold = std::stod(slow_text, &slow_consumed);
  } catch (const std::exception&) {
    slow_consumed = 0;
  }
  if (slow_consumed != slow_text.size() || !std::isfinite(slow_threshold) ||
      slow_threshold < 0) {
    throw std::invalid_argument(
        "--slow-query-threshold must be a finite number >= 0 (0 = off), "
        "got " + slow_text);
  }
  std::string window_text = args.GetOr("update-batch-window", "0");
  double batch_window = 0;
  size_t window_consumed = 0;
  try {
    batch_window = std::stod(window_text, &window_consumed);
  } catch (const std::exception&) {
    window_consumed = 0;
  }
  if (window_consumed != window_text.size() || !std::isfinite(batch_window) ||
      batch_window < 0) {
    throw std::invalid_argument(
        "--update-batch-window must be a finite number >= 0 (0 = apply "
        "immediately), got " + window_text);
  }
  long long slow_capacity = args.GetIntOr("slow-log-capacity", 32);
  long long sample_every = args.GetIntOr("stage-sample-every", 64);
  if (slow_capacity < 0) {
    throw std::invalid_argument("--slow-log-capacity must be >= 0");
  }
  if (sample_every < 0 ||
      sample_every > std::numeric_limits<uint32_t>::max()) {
    throw std::invalid_argument(
        "--stage-sample-every must be in [0, 2^32) (0 disables sampling)");
  }

  service::ServiceConfig config;
  config.num_workers = static_cast<uint32_t>(workers);
  config.queue_capacity = static_cast<size_t>(queue_capacity);
  config.cache_capacity = static_cast<size_t>(cache_capacity);
  config.cache_shards = static_cast<size_t>(cache_shards);
  config.default_time_budget_s = time_budget;
  config.slow_query_threshold_s = slow_threshold;
  config.slow_log_capacity = static_cast<size_t>(slow_capacity);
  config.stage_sample_every = static_cast<uint32_t>(sample_every);
  config.update_batch_window_s = batch_window;

  const uint64_t start_seq =
      attachment.journal ? attachment.journal->last_sequence() : 0;
  const uint64_t replayed = attachment.replayed_records;
  const double recovery_s = attachment.recovery_s;
  service::KosrService service(std::move(*engine), config,
                               std::move(attachment));
  g_serve_stop.store(false, std::memory_order_relaxed);
  InstallServeSignalHandlers();
  if (listen) {
    // TCP transport: the event loop owns the sockets; this thread only
    // watches the signal flag. The ready line reports the bound port
    // (useful with --listen host:0) and must be flushed — test harnesses
    // parse it to learn where to connect.
    net::NetServer server(service, listen_options);
    server.Start();
    out << "ready workers=" << service.num_workers()
        << " queue=" << config.queue_capacity
        << " cache=" << service.cache().capacity()
        << " batch_window=" << config.update_batch_window_s
        << " journal=" << (journal_dir ? *journal_dir : std::string("off"))
        << " seq=" << start_seq << " replayed=" << replayed
        << " recovery_ms=" << recovery_s * 1e3
        << " listen=" << listen_options.host << ":" << server.port() << "\n"
        << std::flush;
    while (!g_serve_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    // Drain order matters: answer everything the sockets accepted first
    // (Shutdown), then stop the service (flush buffered updates, final
    // checkpoint), then the exit marker.
    server.Shutdown();
    const uint64_t handled = server.gauges().frames_in;
    service.Stop();
    out << "served " << handled << " frames\n";
    out << "clean shutdown\n";
    return 0;
  }
  out << "ready workers=" << service.num_workers()
      << " queue=" << config.queue_capacity
      << " cache=" << service.cache().capacity()
      << " batch_window=" << config.update_batch_window_s
      << " journal=" << (journal_dir ? *journal_dir : std::string("off"))
      << " seq=" << start_seq << " replayed=" << replayed
      << " recovery_ms=" << recovery_s * 1e3 << "\n"
      << std::flush;
  uint64_t handled = service::RunServeLoop(service, in, out, &g_serve_stop);
  // Graceful shutdown on EOF, QUIT, or SIGTERM/SIGINT: stop accepting,
  // drain workers, flush buffered updates, final checkpoint (with a
  // journal). Only after all of that is the exit marker printed.
  service.Stop();
  out << "served " << handled << " requests\n";
  out << "clean shutdown\n";
  return 0;
}

// Applies an update script (one ADD_EDGE / SET_EDGE / REMOVE_EDGE per line,
// same verbs as the serve protocol; blank lines and '#' comments skipped)
// against a built engine. Returns (updates applied, label vectors repaired).
std::pair<uint64_t, uint64_t> ApplyUpdateScript(KosrEngine& engine,
                                                const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  uint64_t applied = 0, repaired = 0;
  std::string line;
  auto parse_u32 = [](std::istringstream& ls, const char* what) {
    long long value = -1;
    if (!(ls >> value) || value < 0 ||
        value > std::numeric_limits<uint32_t>::max()) {
      throw std::invalid_argument(std::string("bad ") + what +
                                  " in updates file");
    }
    return static_cast<uint32_t>(value);
  };
  while (std::getline(in, line)) {
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string verb;
    ls >> verb;
    EdgeUpdateSummary summary;
    if (verb == "ADD_EDGE" || verb == "SET_EDGE") {
      VertexId u = parse_u32(ls, "u"), v = parse_u32(ls, "v");
      Weight w = parse_u32(ls, "w");
      summary = verb == "ADD_EDGE" ? engine.AddOrDecreaseEdge(u, v, w)
                                   : engine.SetEdgeWeight(u, v, w);
    } else if (verb == "REMOVE_EDGE") {
      VertexId u = parse_u32(ls, "u"), v = parse_u32(ls, "v");
      summary = engine.RemoveEdge(u, v);
    } else {
      throw std::invalid_argument("unknown update verb: " + verb);
    }
    ++applied;
    repaired += summary.changed_in_labels + summary.changed_out_labels;
  }
  return {applied, repaired};
}

int CmdQuery(const Args& args, std::ostream& out) {
  KosrEngine engine = LoadEngine(args);

  KosrQuery query;
  query.source = static_cast<VertexId>(args.GetInt("source"));
  query.target = static_cast<VertexId>(args.GetInt("target"));
  for (uint32_t c : ParseSequence(args.GetOr("sequence", ""))) {
    query.sequence.push_back(c);
  }
  query.k = static_cast<uint32_t>(args.GetIntOr("k", 1));

  KosrOptions options;
  std::string algo = args.GetOr("algorithm", "sk");
  if (algo == "kpne") {
    options.algorithm = Algorithm::kKpne;
  } else if (algo == "pk") {
    options.algorithm = Algorithm::kPruning;
  } else if (algo == "sk") {
    options.algorithm = Algorithm::kStar;
  } else {
    throw std::invalid_argument("unknown --algorithm " + algo);
  }
  std::string nn = args.GetOr("nn", "hoplabel");
  if (nn == "hoplabel") {
    options.nn_mode = NnMode::kHopLabel;
  } else if (nn == "dijkstra") {
    options.nn_mode = NnMode::kDijkstra;
  } else {
    throw std::invalid_argument("unknown --nn " + nn);
  }
  options.reconstruct_paths = args.GetIntOr("paths", 0) != 0;

  if (options.nn_mode == NnMode::kHopLabel) {
    BuildWithRequestedOrder(args, engine);
  }

  // Dynamic updates run after the index build on purpose: they exercise the
  // incremental label repair, not a rebuild on a pre-updated graph.
  if (auto updates = args.Get("updates")) {
    auto [applied, repaired] = ApplyUpdateScript(engine, *updates);
    out << "applied " << applied << " updates (" << repaired
        << " label vectors repaired)\n";
  }

  KosrResult result = engine.Query(query, options);
  out << "routes: " << result.routes.size() << "\n";
  for (size_t i = 0; i < result.routes.size(); ++i) {
    const auto& route = result.routes[i];
    out << "#" << i + 1 << " cost " << route.cost << " witness";
    for (VertexId v : route.witness) out << ' ' << v;
    out << "\n";
    if (options.reconstruct_paths) {
      out << "   path";
      for (VertexId v : route.path) out << ' ' << v;
      out << "\n";
    }
  }
  out << "stats: " << result.stats.ToString() << "\n";
  return 0;
}

// --- kosr_cli metrics ------------------------------------------------------

// Number lookup with a default for optional members: old snapshots (or
// hand-trimmed ones) simply print zeros instead of failing.
double NumberOr(const obs::JsonValue& object, std::string_view key,
                double fallback = 0) {
  const obs::JsonValue* v = object.Find(key);
  return v != nullptr && v->IsNumber() ? v->number : fallback;
}

// One histogram row: count plus the latency summary, aligned for scanning.
void PrintHistogramRow(std::ostream& out, const std::string& name,
                       const obs::JsonValue& h) {
  out << "  " << std::left << std::setw(12) << name << std::right
      << " count " << std::setw(10)
      << static_cast<uint64_t>(NumberOr(h, "count"))
      << "  mean " << std::setw(9) << NumberOr(h, "mean_ms")
      << " ms  p50 " << std::setw(9) << NumberOr(h, "p50_ms")
      << " ms  p95 " << std::setw(9) << NumberOr(h, "p95_ms")
      << " ms  p99 " << std::setw(9) << NumberOr(h, "p99_ms") << " ms\n";
}

int CmdMetrics(const Args& args, std::istream& in, std::ostream& out) {
  std::string text;
  if (auto file = args.Get("file")) {
    std::ifstream f(*file);
    if (!f) throw std::runtime_error("cannot open " + *file);
    std::ostringstream buffer;
    buffer << f.rdbuf();
    text = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  // Accept either the raw snapshot or a full protocol response line
  // ("OK METRICS {...}"): parse from the first '{' to the last '}'.
  size_t open = text.find('{');
  size_t close = text.rfind('}');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    throw std::invalid_argument(
        "no JSON object in input (expected a METRICS snapshot)");
  }
  obs::JsonValue doc = obs::ParseJson(text.substr(open, close - open + 1));

  out << "uptime " << NumberOr(doc, "uptime_s") << " s, "
      << NumberOr(doc, "qps") << " qps\n";
  out << "requests: submitted "
      << static_cast<uint64_t>(NumberOr(doc, "submitted")) << ", completed "
      << static_cast<uint64_t>(NumberOr(doc, "completed")) << ", rejected "
      << static_cast<uint64_t>(NumberOr(doc, "rejected")) << ", errors "
      << static_cast<uint64_t>(NumberOr(doc, "errors")) << "\n";
  if (const obs::JsonValue* gauges = doc.Find("gauges")) {
    out << "gauges: queue_depth "
        << static_cast<uint64_t>(NumberOr(*gauges, "queue_depth"))
        << ", in_flight "
        << static_cast<uint64_t>(NumberOr(*gauges, "in_flight")) << "\n";
  }
  if (const obs::JsonValue* snapshots = doc.Find("snapshots")) {
    out << "snapshots: version "
        << static_cast<uint64_t>(NumberOr(*snapshots, "version")) << ", live "
        << static_cast<uint64_t>(NumberOr(*snapshots, "live_snapshots"))
        << ", epoch_lag "
        << static_cast<uint64_t>(NumberOr(*snapshots, "epoch_lag"))
        << ", pending_updates "
        << static_cast<uint64_t>(NumberOr(*snapshots, "pending_updates"))
        << ", updates_applied "
        << static_cast<uint64_t>(NumberOr(*snapshots, "updates_applied"))
        << ", batches "
        << static_cast<uint64_t>(NumberOr(*snapshots, "batches_applied"))
        << "\n";
  }
  if (const obs::JsonValue* durability = doc.Find("durability");
      durability != nullptr && durability->Find("enabled") != nullptr &&
      durability->Find("enabled")->bool_value) {
    out << "durability: journal "
        << static_cast<uint64_t>(NumberOr(*durability, "journal_bytes"))
        << " B, appends "
        << static_cast<uint64_t>(NumberOr(*durability, "journal_appends"))
        << ", fsyncs "
        << static_cast<uint64_t>(NumberOr(*durability, "journal_fsyncs"))
        << ", applied_seq "
        << static_cast<uint64_t>(NumberOr(*durability, "applied_seq"))
        << ", checkpoint_seq "
        << static_cast<uint64_t>(NumberOr(*durability, "checkpoint_seq"))
        << ", checkpoints "
        << static_cast<uint64_t>(NumberOr(*durability, "checkpoints_written"))
        << ", replayed "
        << static_cast<uint64_t>(NumberOr(*durability, "replayed_records"))
        << ", recovery " << NumberOr(*durability, "recovery_s") * 1e3
        << " ms\n";
  }
  if (const obs::JsonValue* net = doc.Find("net");
      net != nullptr && net->Find("enabled") != nullptr &&
      net->Find("enabled")->bool_value) {
    out << "net: connections "
        << static_cast<uint64_t>(NumberOr(*net, "connections_open")) << "/"
        << static_cast<uint64_t>(NumberOr(*net, "connections_accepted"))
        << " open/accepted, frames "
        << static_cast<uint64_t>(NumberOr(*net, "frames_in")) << " in / "
        << static_cast<uint64_t>(NumberOr(*net, "frames_out"))
        << " out, bytes "
        << static_cast<uint64_t>(NumberOr(*net, "bytes_in")) << " in / "
        << static_cast<uint64_t>(NumberOr(*net, "bytes_out"))
        << " out, partial_reads "
        << static_cast<uint64_t>(NumberOr(*net, "partial_reads"))
        << ", rejected "
        << static_cast<uint64_t>(NumberOr(*net, "rejected_frames"))
        << ", bad_frames "
        << static_cast<uint64_t>(NumberOr(*net, "bad_frames"))
        << ", in_flight "
        << static_cast<uint64_t>(NumberOr(*net, "in_flight_queries")) << "\n";
  }
  if (const obs::JsonValue* cache = doc.Find("cache")) {
    out << "cache: hits " << static_cast<uint64_t>(NumberOr(*cache, "hits"))
        << ", misses " << static_cast<uint64_t>(NumberOr(*cache, "misses"))
        << ", hit_rate " << NumberOr(*cache, "hit_rate") * 100 << "%"
        << ", evictions "
        << static_cast<uint64_t>(NumberOr(*cache, "evictions"))
        << ", invalidations "
        << static_cast<uint64_t>(NumberOr(*cache, "invalidations")) << "\n";
  }
  if (const obs::JsonValue* methods = doc.Find("methods");
      methods != nullptr && !methods->members.empty()) {
    out << "methods:\n";
    for (const auto& [name, h] : methods->members) {
      PrintHistogramRow(out, name, h);
    }
  }
  if (const obs::JsonValue* stages = doc.Find("stages");
      stages != nullptr && !stages->members.empty()) {
    out << "stages:\n";
    for (const auto& [name, h] : stages->members) {
      // Idle stages (count 0) are noise in a human-facing table.
      if (NumberOr(h, "count") == 0) continue;
      PrintHistogramRow(out, name, h);
    }
  }
  if (const obs::JsonValue* counters = doc.Find("counters");
      counters != nullptr && !counters->members.empty()) {
    out << "engine counters:\n";
    for (const auto& [name, v] : counters->members) {
      out << "  " << std::left << std::setw(24) << name << std::right
          << std::setw(16)
          << static_cast<uint64_t>(v.IsNumber() ? v.number : 0) << "\n";
    }
  }
  if (const obs::JsonValue* slow = doc.Find("slow_queries");
      slow != nullptr && !slow->items.empty()) {
    out << "slow queries (" << slow->items.size() << ", oldest first):\n";
    for (const obs::JsonValue& entry : slow->items) {
      const obs::JsonValue* method = entry.Find("method");
      out << "  " << (method != nullptr ? method->string : "?") << " "
          << static_cast<uint64_t>(NumberOr(entry, "source")) << "->"
          << static_cast<uint64_t>(NumberOr(entry, "target")) << " k="
          << static_cast<uint64_t>(NumberOr(entry, "k")) << " len="
          << static_cast<uint64_t>(NumberOr(entry, "sequence_length"))
          << " " << NumberOr(entry, "latency_ms") << " ms";
      if (NumberOr(entry, "cache_hit") != 0) out << " cached";
      if (NumberOr(entry, "timed_out") != 0) out << " truncated";
      if (const obs::JsonValue* spans = entry.Find("stages");
          spans != nullptr && !spans->members.empty()) {
        out << " [";
        bool first = true;
        for (const auto& [name, v] : spans->members) {
          if (!first) out << ", ";
          first = false;
          out << name << " " << (v.IsNumber() ? v.number : 0);
        }
        out << "]";
      }
      out << "\n";
    }
  }
  return 0;
}

}  // namespace

std::optional<std::string> Args::Get(const std::string& key) const {
  auto it = flags.find(key);
  if (it == flags.end()) return std::nullopt;
  return it->second;
}

std::string Args::GetOr(const std::string& key,
                        const std::string& fallback) const {
  auto v = Get(key);
  return v ? *v : fallback;
}

long long Args::GetInt(const std::string& key) const {
  auto v = Get(key);
  if (!v) throw std::invalid_argument("missing required flag --" + key);
  try {
    size_t consumed = 0;
    long long parsed = std::stoll(*v, &consumed);
    if (consumed != v->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " is not an integer: " + *v);
  }
}

long long Args::GetIntOr(const std::string& key, long long fallback) const {
  return Get(key) ? GetInt(key) : fallback;
}

Args ParseArgs(const std::vector<std::string>& argv) {
  Args args;
  if (argv.empty()) {
    args.command = "help";
    return args;
  }
  args.command = argv[0];
  size_t i = 1;
  while (i < argv.size()) {
    const std::string& token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument("expected --flag, got: " + token);
    }
    if (i + 1 >= argv.size()) {
      throw std::invalid_argument("flag " + token + " needs a value");
    }
    args.flags[token.substr(2)] = argv[i + 1];
    i += 2;
  }
  return args;
}

std::vector<uint32_t> ParseSequence(const std::string& text) {
  // One strict parser for both front-ends: digits only, so "-1" is
  // rejected instead of wrapping to 4294967295.
  return service::ParseCategorySequence(text);
}

int RunCli(const std::vector<std::string>& argv, std::istream& in,
           std::ostream& out) {
  Args args;
  try {
    args = ParseArgs(argv);
  } catch (const std::invalid_argument& e) {
    out << "error: " << e.what() << "\n" << kUsage;
    return 1;
  }
  try {
    if (args.command == "help" || args.command == "--help") {
      out << kUsage;
      return 0;
    }
    if (args.command == "generate") return CmdGenerate(args, out);
    if (args.command == "stats") return CmdStats(args, out);
    if (args.command == "build-index") return CmdBuildIndex(args, out);
    if (args.command == "query") return CmdQuery(args, out);
    if (args.command == "serve") return CmdServe(args, in, out);
    if (args.command == "metrics") return CmdMetrics(args, in, out);
    out << "error: unknown command '" << args.command << "'\n" << kUsage;
    return 1;
  } catch (const std::invalid_argument& e) {
    out << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    return 2;
  }
}

int RunCli(const std::vector<std::string>& argv, std::ostream& out) {
  return RunCli(argv, std::cin, out);
}

}  // namespace kosr::cli
