#ifndef KOSR_UTIL_FAILPOINT_H_
#define KOSR_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace kosr::failpoint {

/// Fault-injection registry (ISSUE 9). Named points sit on the durability
/// code paths (journal append, checkpoint write, batch apply); arming one
/// makes the process either die on the spot — simulating a crash exactly
/// between two persistence steps — or throw, exercising the error path.
///
/// Zero overhead when off: KOSR_FAILPOINT compiles to one relaxed atomic
/// load and a never-taken branch; the name lookup (mutex + map) only runs
/// while at least one point is armed. Production binaries keep the macro —
/// the crash-recovery harness arms points in a real `kosr_cli serve` child
/// via the KOSR_FAILPOINTS environment variable.
enum class Action : uint8_t {
  kOff,
  kCrash,  ///< std::_Exit(kCrashExitCode): no flushing, no destructors.
  kError,  ///< throw std::runtime_error("failpoint <name>").
};

/// Exit code of a kCrash failpoint — distinguishable from every normal
/// exit and from sanitizer aborts in the harness's waitpid status.
inline constexpr int kCrashExitCode = 97;

namespace internal {
/// Number of currently armed points. The macro's fast path reads only this.
extern std::atomic<uint32_t> g_num_armed;
/// Slow path: looks `name` up and performs its action (never returns for
/// kCrash). Unarmed names are a no-op.
void Hit(const char* name);
}  // namespace internal

/// Arms `name` programmatically (tests). kOff disarms.
void Arm(const std::string& name, Action action);
/// Disarms every point.
void DisarmAll();
/// Parses KOSR_FAILPOINTS ("name=crash|error[,name=...]") into the
/// registry, replacing any programmatic arming. Called once at process
/// start via a static initializer; tests call it after setenv. Throws
/// std::invalid_argument on a malformed spec (unknown action, missing
/// '='), so a typo in the variable cannot silently disable injection.
void ReloadFromEnv();
/// Times `name` was hit while armed (self-tests assert a point fired).
uint64_t HitCount(const std::string& name);

}  // namespace kosr::failpoint

/// Marks an injection point. `name` must be a string literal. When nothing
/// is armed this is a relaxed load + branch — cheap enough for update
/// paths (it is deliberately not placed on the query hot path at all).
#define KOSR_FAILPOINT(name)                                        \
  do {                                                              \
    if (::kosr::failpoint::internal::g_num_armed.load(              \
            std::memory_order_relaxed) != 0) {                      \
      ::kosr::failpoint::internal::Hit(name);                       \
    }                                                               \
  } while (0)

#endif  // KOSR_UTIL_FAILPOINT_H_
