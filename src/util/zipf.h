#ifndef KOSR_UTIL_ZIPF_H_
#define KOSR_UTIL_ZIPF_H_

#include <cstdint>
#include <random>
#include <vector>

namespace kosr {

/// Samples ranks 0..n-1 with probability proportional to 1 / (rank+1)^s.
///
/// Used to assign vertices to categories with a skewed (Zipfian) size
/// distribution, as in Sec. V-A of the paper. The paper's skew parameter
/// `f >= 1` controls skewness the same way: larger `f` means *less* skew in
/// category sizes; we map it to the exponent via s = 1/f so the smallest/
/// largest category-size ratio shrinks as f grows, matching the paper's
/// example (f = 1.2 -> sizes 23 .. 139,717 on FLA).
class ZipfSampler {
 public:
  /// @param n      number of distinct ranks.
  /// @param s      exponent (> 0). Larger = more skew.
  ZipfSampler(uint32_t n, double s);

  /// Draws one rank in [0, n).
  uint32_t Sample(std::mt19937_64& rng) const;

  uint32_t n() const { return n_; }

  /// Probability mass of each rank (sums to 1).
  const std::vector<double>& pmf() const { return pmf_; }

 private:
  uint32_t n_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

}  // namespace kosr

#endif  // KOSR_UTIL_ZIPF_H_
