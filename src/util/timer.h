#ifndef KOSR_UTIL_TIMER_H_
#define KOSR_UTIL_TIMER_H_

#include <chrono>

namespace kosr {

/// Simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time across disjoint intervals, e.g. to attribute query
/// time to phases (Table X of the paper).
class StopwatchAccumulator {
 public:
  void Start() { timer_.Reset(); running_ = true; }
  void Stop() {
    if (running_) total_ += timer_.ElapsedSeconds();
    running_ = false;
  }
  void Clear() { total_ = 0; running_ = false; }
  double TotalSeconds() const { return total_; }
  double TotalMillis() const { return total_ * 1e3; }

 private:
  WallTimer timer_;
  double total_ = 0;
  bool running_ = false;
};

}  // namespace kosr

#endif  // KOSR_UTIL_TIMER_H_
