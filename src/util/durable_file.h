#ifndef KOSR_UTIL_DURABLE_FILE_H_
#define KOSR_UTIL_DURABLE_FILE_H_

#include <fstream>
#include <string>

namespace kosr {

/// Crash-safe file primitives (ISSUE 9): fsync wrappers and the
/// write-temp → fsync → atomic-rename pattern every snapshot writer in the
/// tree uses (index snapshots, disk stores, checkpoints). POSIX-only, like
/// the rest of the serving stack.

/// fsyncs `path` (a file or a directory). Throws std::runtime_error on
/// failure. Directory fsync is what makes a just-renamed entry durable.
void FsyncPath(const std::string& path);

/// fsyncs the directory containing `path` ("." when `path` has no parent).
void FsyncParentDir(const std::string& path);

/// Atomically replaces `target` with `source` (rename(2)) and fsyncs the
/// parent directory, so after return the swap is durable. `source` must
/// already be fsynced by the caller.
void AtomicRename(const std::string& source, const std::string& target);

/// Stream writer with commit-or-discard semantics: bytes go to
/// `<path>.tmp`, and only Commit() — flush, fsync, atomic rename, parent
/// fsync — makes them visible under `path`. A crash (or an exception
/// unwinding past the writer) before Commit() leaves any previous `path`
/// untouched; the destructor removes the orphaned temp file.
class AtomicFileWriter {
 public:
  /// Throws std::runtime_error when the temp file cannot be opened.
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  std::ostream& stream() { return out_; }

  /// Flush + fsync + rename + parent fsync. Throws std::runtime_error if
  /// any step fails (the temp file is removed; `path` keeps its old
  /// content). At most one Commit per writer.
  void Commit();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

}  // namespace kosr

#endif  // KOSR_UTIL_DURABLE_FILE_H_
