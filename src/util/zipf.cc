#include "src/util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace kosr {

ZipfSampler::ZipfSampler(uint32_t n, double s) : n_(n) {
  assert(n > 0);
  pmf_.resize(n);
  double norm = 0;
  for (uint32_t i = 0; i < n; ++i) {
    pmf_[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    norm += pmf_[i];
  }
  cdf_.resize(n);
  double acc = 0;
  for (uint32_t i = 0; i < n; ++i) {
    pmf_[i] /= norm;
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  cdf_[n - 1] = 1.0;
}

uint32_t ZipfSampler::Sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  double u = uni(rng);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace kosr
