#ifndef KOSR_UTIL_STATS_H_
#define KOSR_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kosr {

/// Latency sample collector reporting count, mean, and percentiles.
///
/// By default keeps every sample (exact percentiles, no bucketing error);
/// sorting is deferred until a percentile is asked for. Constructed with a
/// `max_samples` cap it bounds memory for long-lived collectors (the
/// service metrics registry): count/mean/min/max stay exact, while
/// percentiles are computed over a uniform reservoir of the capped size.
/// Not thread-safe — concurrent writers guard it externally.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  /// `max_samples` = 0 keeps every sample (exact percentiles).
  explicit LatencyHistogram(size_t max_samples) : max_samples_(max_samples) {}

  void Record(double seconds);
  /// Folds `other` in: count/mean/min/max exactly; percentile samples are
  /// appended (reservoir-replaced beyond a cap).
  void Merge(const LatencyHistogram& other);
  void Clear();

  uint64_t count() const { return total_; }
  double MeanSeconds() const;
  double MinSeconds() const;
  double MaxSeconds() const;
  /// Nearest-rank percentile; `pct` in [0, 100]. Returns 0 when empty.
  /// Exact while count() <= max_samples (or uncapped), reservoir-estimated
  /// beyond.
  double PercentileSeconds(double pct) const;

  double P50Millis() const { return PercentileSeconds(50) * 1e3; }
  double P95Millis() const { return PercentileSeconds(95) * 1e3; }
  double P99Millis() const { return PercentileSeconds(99) * 1e3; }

  /// "count=8 mean_ms=1.2 p50_ms=1.0 p95_ms=3.1 p99_ms=3.4"
  std::string SummaryString() const;
  /// {"count":8,"mean_ms":1.2,"p50_ms":1.0,"p95_ms":3.1,"p99_ms":3.4}
  std::string SummaryJson() const;

 private:
  void EnsureSorted() const;
  void ReservoirRecord(double seconds);
  uint32_t NextRandom();

  size_t max_samples_ = 0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  uint64_t total_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  uint32_t rng_state_ = 0x9e3779b9u;  ///< xorshift32; deterministic.
};

/// Counters collected while answering one KOSR query. These are the
/// evaluation criteria of the paper (Sec. V-A): the number of examined
/// routes (witnesses popped from the global priority queue) and the number
/// of (next) nearest-neighbor queries actually executed (cache hits in the
/// NL list are not counted, matching the paper).
struct QueryStats {
  /// Witnesses extracted from the global priority queue.
  uint64_t examined_routes = 0;
  /// FindNN invocations that performed work (NL cache hits excluded).
  uint64_t nn_queries = 0;
  /// Witnesses pruned by the dominance relationship (PruningKOSR/StarKOSR).
  uint64_t dominated_routes = 0;
  /// Dominated witnesses re-added after a result was emitted.
  uint64_t reconsidered_routes = 0;
  /// Examined witnesses per category depth (Figure 5). Index = depth, i.e.
  /// 0 for the source, |C|+1 for the destination.
  std::vector<uint64_t> examined_per_depth;

  /// Phase timings in seconds (Table X). Collected only when
  /// `timing_enabled` is set before the query runs.
  double nn_time_s = 0;
  double queue_time_s = 0;
  double estimation_time_s = 0;
  double total_time_s = 0;

  /// Enables per-phase timing (adds clock overhead; off by default).
  bool timing_enabled = false;
  /// Set when the search was cut off by a budget (examined-route cap or
  /// time budget) before finding k routes; the paper reports such runs
  /// as INF.
  bool timed_out = false;

  /// Remaining (unattributed) time: total - nn - queue - estimation.
  double OtherTimeSeconds() const;

  void RecordExamined(size_t depth);

  /// Element-wise accumulation, for averaging over query batches.
  void Accumulate(const QueryStats& other);

  std::string ToString() const;
};

}  // namespace kosr

#endif  // KOSR_UTIL_STATS_H_
