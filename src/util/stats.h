#ifndef KOSR_UTIL_STATS_H_
#define KOSR_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kosr {

/// Counters collected while answering one KOSR query. These are the
/// evaluation criteria of the paper (Sec. V-A): the number of examined
/// routes (witnesses popped from the global priority queue) and the number
/// of (next) nearest-neighbor queries actually executed (cache hits in the
/// NL list are not counted, matching the paper).
struct QueryStats {
  /// Witnesses extracted from the global priority queue.
  uint64_t examined_routes = 0;
  /// FindNN invocations that performed work (NL cache hits excluded).
  uint64_t nn_queries = 0;
  /// Witnesses pruned by the dominance relationship (PruningKOSR/StarKOSR).
  uint64_t dominated_routes = 0;
  /// Dominated witnesses re-added after a result was emitted.
  uint64_t reconsidered_routes = 0;
  /// Examined witnesses per category depth (Figure 5). Index = depth, i.e.
  /// 0 for the source, |C|+1 for the destination.
  std::vector<uint64_t> examined_per_depth;

  /// Phase timings in seconds (Table X). Collected only when
  /// `timing_enabled` is set before the query runs.
  double nn_time_s = 0;
  double queue_time_s = 0;
  double estimation_time_s = 0;
  double total_time_s = 0;

  /// Enables per-phase timing (adds clock overhead; off by default).
  bool timing_enabled = false;
  /// Set when the search was cut off by a budget (examined-route cap or
  /// time budget) before finding k routes; the paper reports such runs
  /// as INF.
  bool timed_out = false;

  /// Remaining (unattributed) time: total - nn - queue - estimation.
  double OtherTimeSeconds() const;

  void RecordExamined(size_t depth);

  /// Element-wise accumulation, for averaging over query batches.
  void Accumulate(const QueryStats& other);

  std::string ToString() const;
};

}  // namespace kosr

#endif  // KOSR_UTIL_STATS_H_
