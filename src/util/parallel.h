#ifndef KOSR_UTIL_PARALLEL_H_
#define KOSR_UTIL_PARALLEL_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/sync.h"

namespace kosr {

/// Maps the user-facing thread knob to an actual count: 0 means "use the
/// hardware". Requests are clamped to max(64, 4 x hardware) — past that
/// point extra threads only cost memory (the hub-label build allocates O(n)
/// scratch per thread, so an unclamped `--threads 100000` would try to
/// allocate terabytes and spawn until std::thread throws, instead of
/// building). Never returns 0.
inline uint32_t ResolveThreadCount(uint32_t requested) {
  uint32_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (requested == 0) return hw;
  return std::min(requested, std::max<uint32_t>(64, 4 * hw));
}

/// Persistent worker pool for repeated parallel-for invocations. Spawns
/// `ResolveThreadCount(num_threads) - 1` workers once; every ParallelFor
/// call then reuses them (dynamic scheduling off a shared atomic counter,
/// caller participating as thread 0) instead of paying thread creation and
/// teardown per call — the rank-batched hub-label build issues one call per
/// batch, hundreds per index, which is exactly the case per-call spawning
/// was slowest for. Semantics match ParallelForEachIndexWithThread: the
/// first exception is rethrown on the caller after the call's iterations
/// drain, and `thread` is a dense index in [0, num_threads()).
///
/// ParallelFor calls must not overlap (one job at a time); issue them from
/// a single orchestrating thread.
class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads)
      : num_threads_(ResolveThreadCount(num_threads)) {
    workers_.reserve(num_threads_ - 1);
    for (uint32_t t = 1; t < num_threads_; ++t) {
      workers_.emplace_back([this, t] { WorkerMain(t); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.NotifyAll();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Runs fn(i, thread) for every i in [0, n); returns when all iterations
  /// finished. The caller drains indices alongside the workers.
  ///
  /// Every call is a full-pool rendezvous: all workers wake and check in
  /// even when n is smaller than the pool, so a tiny-n call pays one
  /// pool-wide wakeup round trip. That is the accepted trade-off for a
  /// protocol with no stale-claimer races (a worker can never touch a
  /// later call's counters); under the hub-label build's exponential
  /// batch schedule only O(log batch_cap) calls are tiny, and those are
  /// the top-hub searches whose work dwarfs the wakeup latency anyway.
  template <typename Fn>
  void ParallelFor(uint64_t n, Fn&& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (uint64_t i = 0; i < n; ++i) fn(i, uint32_t{0});
      return;
    }
    std::function<void(uint64_t, uint32_t)> job(std::forward<Fn>(fn));
    {
      MutexLock lock(mutex_);
      job_ = &job;
      limit_ = n;
      next_.store(0, std::memory_order_relaxed);
      running_ = static_cast<uint32_t>(workers_.size());
      ++generation_;
    }
    work_cv_.NotifyAll();
    Drain(0);
    std::exception_ptr error;
    {
      MutexLock lock(mutex_);
      while (running_ != 0) done_cv_.Wait(mutex_);
      job_ = nullptr;
      error = std::exchange(error_, nullptr);
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void Drain(uint32_t thread) KOSR_EXCLUDES(mutex_) {
    // Snapshot the current call's job under the lock once per drain; the
    // hot claim loop then runs lock-free off the atomic counter. The
    // snapshot stays valid for the whole drain: ParallelFor clears job_
    // only after running_ hits zero, which this thread delays until after
    // its drain returns.
    const std::function<void(uint64_t, uint32_t)>* job = nullptr;
    uint64_t limit = 0;
    {
      MutexLock lock(mutex_);
      job = job_;
      limit = limit_;
    }
    for (;;) {
      uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= limit) return;
      try {
        (*job)(i, thread);
      } catch (...) {
        // First error wins; remaining iterations still run (same contract
        // as ParallelForEachIndexWithThread).
        MutexLock lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }

  void WorkerMain(uint32_t thread) KOSR_EXCLUDES(mutex_) {
    uint64_t seen = 0;
    for (;;) {
      {
        MutexLock lock(mutex_);
        while (!shutdown_ && generation_ == seen) work_cv_.Wait(mutex_);
        if (shutdown_) return;
        seen = generation_;
      }
      Drain(thread);
      MutexLock lock(mutex_);
      if (--running_ == 0) done_cv_.NotifyOne();
    }
  }

  const uint32_t num_threads_;
  std::vector<std::thread> workers_;  // written only by ctor/dtor's thread
  /// One mutex guards the whole job-handoff protocol; the only unguarded
  /// shared state is the atomic claim counter next_.
  Mutex mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  const std::function<void(uint64_t, uint32_t)>* job_
      KOSR_GUARDED_BY(mutex_) = nullptr;
  std::atomic<uint64_t> next_{0};
  uint64_t limit_ KOSR_GUARDED_BY(mutex_) = 0;
  uint32_t running_ KOSR_GUARDED_BY(mutex_) = 0;
  uint64_t generation_ KOSR_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ KOSR_GUARDED_BY(mutex_);
  bool shutdown_ KOSR_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i, thread) for every i in [0, n) on up to `num_threads` threads,
/// pulling indices from a shared atomic counter (dynamic scheduling —
/// iterations may have very uneven cost, e.g. one hub-label search per hub).
/// `thread` is the worker's dense index in [0, min(num_threads, n)), for
/// indexing per-thread scratch. The calling thread participates as thread 0,
/// so num_threads == 1 degenerates to a plain loop with no spawns. The first
/// exception thrown by any iteration is rethrown on the caller once all
/// threads have joined (remaining iterations still run).
template <typename Fn>
void ParallelForEachIndexWithThread(uint32_t num_threads, uint64_t n,
                                    Fn&& fn) {
  num_threads = ResolveThreadCount(num_threads);
  if (num_threads <= 1 || n <= 1) {
    for (uint64_t i = 0; i < n; ++i) fn(i, uint32_t{0});
    return;
  }
  std::atomic<uint64_t> next{0};
  std::exception_ptr error;
  Mutex error_mutex;
  auto worker = [&](uint32_t thread) {
    for (;;) {
      uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i, thread);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!error) error = std::current_exception();
        // Keep draining indices so sibling threads are not starved into
        // running iterations this thread would otherwise have absorbed;
        // remaining work still runs, only the first error is reported.
      }
    }
  };
  uint32_t spawned = static_cast<uint32_t>(std::min<uint64_t>(num_threads, n)) - 1;
  std::vector<std::thread> threads;
  threads.reserve(spawned);
  for (uint32_t t = 0; t < spawned; ++t) {
    threads.emplace_back([&worker, t] { worker(t + 1); });
  }
  worker(0);
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

/// ParallelForEachIndexWithThread without the thread index.
template <typename Fn>
void ParallelForEachIndex(uint32_t num_threads, uint64_t n, Fn&& fn) {
  ParallelForEachIndexWithThread(num_threads, n,
                                 [&fn](uint64_t i, uint32_t) { fn(i); });
}

/// Deterministic parallel sort: the result equals std::sort with the same
/// strict-weak-order comparator (chunk sort + pairwise inplace_merge, so ties
/// must be broken by the comparator itself, as std::sort also requires for a
/// unique answer). Falls back to std::sort for small inputs or 1 thread.
template <typename T, typename Less>
void ParallelSort(std::vector<T>& items, Less less, uint32_t num_threads) {
  num_threads = ResolveThreadCount(num_threads);
  constexpr size_t kMinParallelSize = 1 << 14;
  if (num_threads <= 1 || items.size() < kMinParallelSize) {
    std::sort(items.begin(), items.end(), less);
    return;
  }
  // Chunk boundaries: one even-sized chunk per thread.
  size_t chunks = num_threads;
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = items.size() * c / chunks;
  ParallelForEachIndex(num_threads, chunks, [&](uint64_t c) {
    std::sort(items.begin() + bounds[c], items.begin() + bounds[c + 1], less);
  });
  // log2(chunks) rounds of pairwise merges, each round's merges in parallel.
  for (size_t width = 1; width < chunks; width *= 2) {
    std::vector<std::array<size_t, 3>> merges;
    for (size_t c = 0; c + width < chunks; c += 2 * width) {
      merges.push_back({bounds[c], bounds[c + width],
                        bounds[std::min(c + 2 * width, chunks)]});
    }
    ParallelForEachIndex(num_threads, merges.size(), [&](uint64_t m) {
      auto [lo, mid, hi] = merges[m];
      std::inplace_merge(items.begin() + lo, items.begin() + mid,
                         items.begin() + hi, less);
    });
  }
}

}  // namespace kosr

#endif  // KOSR_UTIL_PARALLEL_H_
