#include "src/util/stats.h"

#include <algorithm>
#include <sstream>

namespace kosr {

double QueryStats::OtherTimeSeconds() const {
  double other = total_time_s - nn_time_s - queue_time_s - estimation_time_s;
  return other > 0 ? other : 0;
}

void QueryStats::RecordExamined(size_t depth) {
  ++examined_routes;
  if (examined_per_depth.size() <= depth) examined_per_depth.resize(depth + 1);
  ++examined_per_depth[depth];
}

void QueryStats::Accumulate(const QueryStats& other) {
  examined_routes += other.examined_routes;
  nn_queries += other.nn_queries;
  dominated_routes += other.dominated_routes;
  reconsidered_routes += other.reconsidered_routes;
  if (examined_per_depth.size() < other.examined_per_depth.size()) {
    examined_per_depth.resize(other.examined_per_depth.size());
  }
  for (size_t i = 0; i < other.examined_per_depth.size(); ++i) {
    examined_per_depth[i] += other.examined_per_depth[i];
  }
  nn_time_s += other.nn_time_s;
  queue_time_s += other.queue_time_s;
  estimation_time_s += other.estimation_time_s;
  total_time_s += other.total_time_s;
}

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "examined=" << examined_routes << " nn_queries=" << nn_queries
     << " dominated=" << dominated_routes
     << " reconsidered=" << reconsidered_routes
     << " total_ms=" << total_time_s * 1e3;
  return os.str();
}

}  // namespace kosr
