#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace kosr {

uint32_t LatencyHistogram::NextRandom() {
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 17;
  rng_state_ ^= rng_state_ << 5;
  return rng_state_;
}

void LatencyHistogram::ReservoirRecord(double seconds) {
  if (max_samples_ == 0 || samples_.size() < max_samples_) {
    samples_.push_back(seconds);
    sorted_ = false;
    return;
  }
  // Algorithm R: keep each of the `total_` samples seen so far with equal
  // probability max_samples_/total_.
  uint64_t slot = NextRandom() % total_;
  if (slot < max_samples_) {
    samples_[slot] = seconds;
    sorted_ = false;
  }
}

void LatencyHistogram::Record(double seconds) {
  ++total_;
  sum_ += seconds;
  min_ = total_ == 1 ? seconds : std::min(min_, seconds);
  max_ = total_ == 1 ? seconds : std::max(max_, seconds);
  ReservoirRecord(seconds);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.total_ == 0) return;
  min_ = total_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = total_ == 0 ? other.max_ : std::max(max_, other.max_);
  for (double s : other.samples_) {
    ++total_;  // Approximate when `other` was itself capped; see header.
    ReservoirRecord(s);
  }
  total_ += other.total_ - other.samples_.size();
  sum_ += other.sum_;
}

void LatencyHistogram::Clear() {
  samples_.clear();
  sorted_ = true;
  total_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

void LatencyHistogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyHistogram::MeanSeconds() const {
  return total_ == 0 ? 0 : sum_ / static_cast<double>(total_);
}

double LatencyHistogram::MinSeconds() const { return min_; }

double LatencyHistogram::MaxSeconds() const { return max_; }

double LatencyHistogram::PercentileSeconds(double pct) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  pct = std::clamp(pct, 0.0, 100.0);
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(samples_.size())));
  if (rank > 0) --rank;  // nearest-rank is 1-based; clamp p0 to the minimum
  return samples_[std::min(rank, samples_.size() - 1)];
}

std::string LatencyHistogram::SummaryString() const {
  std::ostringstream os;
  os << "count=" << count() << " mean_ms=" << MeanSeconds() * 1e3
     << " p50_ms=" << P50Millis() << " p95_ms=" << P95Millis()
     << " p99_ms=" << P99Millis();
  return os.str();
}

std::string LatencyHistogram::SummaryJson() const {
  std::ostringstream os;
  os << "{\"count\":" << count() << ",\"mean_ms\":" << MeanSeconds() * 1e3
     << ",\"p50_ms\":" << P50Millis() << ",\"p95_ms\":" << P95Millis()
     << ",\"p99_ms\":" << P99Millis() << "}";
  return os.str();
}

double QueryStats::OtherTimeSeconds() const {
  double other = total_time_s - nn_time_s - queue_time_s - estimation_time_s;
  return other > 0 ? other : 0;
}

void QueryStats::RecordExamined(size_t depth) {
  ++examined_routes;
  if (examined_per_depth.size() <= depth) examined_per_depth.resize(depth + 1);
  ++examined_per_depth[depth];
}

void QueryStats::Accumulate(const QueryStats& other) {
  examined_routes += other.examined_routes;
  nn_queries += other.nn_queries;
  dominated_routes += other.dominated_routes;
  reconsidered_routes += other.reconsidered_routes;
  if (examined_per_depth.size() < other.examined_per_depth.size()) {
    examined_per_depth.resize(other.examined_per_depth.size());
  }
  for (size_t i = 0; i < other.examined_per_depth.size(); ++i) {
    examined_per_depth[i] += other.examined_per_depth[i];
  }
  nn_time_s += other.nn_time_s;
  queue_time_s += other.queue_time_s;
  estimation_time_s += other.estimation_time_s;
  total_time_s += other.total_time_s;
}

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "examined=" << examined_routes << " nn_queries=" << nn_queries
     << " dominated=" << dominated_routes
     << " reconsidered=" << reconsidered_routes
     << " total_ms=" << total_time_s * 1e3;
  return os.str();
}

}  // namespace kosr
