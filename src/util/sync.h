#ifndef KOSR_UTIL_SYNC_H_
#define KOSR_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Capability-annotated synchronization primitives (DESIGN.md, "Concurrency
// contract").
//
// Every mutex in the tree is one of the wrappers below, and every piece of
// shared state names the capability that guards it with KOSR_GUARDED_BY.
// Under clang the annotations feed Thread Safety Analysis: forgetting a
// lock, holding the wrong one, or re-acquiring a held mutex is a compile
// error under -Wthread-safety -Werror (the clang CI job builds exactly
// that configuration; tests/negative_compile/ proves the rejection cases).
// Under other compilers the macros expand to nothing and the wrappers are
// zero-cost forwarding shims over the std primitives.
//
// The macro set mirrors the attribute names in the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed to keep
// the global namespace clean.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define KOSR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef KOSR_THREAD_ANNOTATION
#define KOSR_THREAD_ANNOTATION(x)  // not clang: annotations are comments
#endif

/// Marks a type as a lockable capability; `x` names it in diagnostics.
#define KOSR_CAPABILITY(x) KOSR_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define KOSR_SCOPED_CAPABILITY KOSR_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding `x`.
#define KOSR_GUARDED_BY(x) KOSR_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is protected by `x`.
#define KOSR_PT_GUARDED_BY(x) KOSR_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability held exclusively on entry (not released).
#define KOSR_REQUIRES(...) \
  KOSR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function requires the capability held at least shared on entry.
#define KOSR_REQUIRES_SHARED(...) \
  KOSR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability exclusively and does not release it.
#define KOSR_ACQUIRE(...) \
  KOSR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define KOSR_ACQUIRE_SHARED(...) \
  KOSR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (generic: exclusive or shared).
#define KOSR_RELEASE(...) \
  KOSR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define KOSR_RELEASE_SHARED(...) \
  KOSR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability only when it returns the given value
/// (first argument), e.g. KOSR_TRY_ACQUIRE(true).
#define KOSR_TRY_ACQUIRE(...) \
  KOSR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must be called *without* the capability held (anti-deadlock).
#define KOSR_EXCLUDES(...) KOSR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime claim that the capability is held (trusted by the analysis).
#define KOSR_ASSERT_CAPABILITY(x) KOSR_THREAD_ANNOTATION(assert_capability(x))
#define KOSR_ASSERT_SHARED_CAPABILITY(x) \
  KOSR_THREAD_ANNOTATION(assert_shared_capability(x))
/// Function returns a reference to the given capability.
#define KOSR_RETURN_CAPABILITY(x) KOSR_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch. Must not appear in src/service/ or src/util/parallel.h
/// (enforced by the hot-path lint's companion grep in the CI lint job).
#define KOSR_NO_THREAD_SAFETY_ANALYSIS \
  KOSR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace kosr {

class CondVar;

/// std::mutex with a capability the analysis can track. Prefer the scoped
/// MutexLock; Lock/Unlock exist for the rare split acquire/release.
class KOSR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KOSR_ACQUIRE() { mu_.lock(); }
  void Unlock() KOSR_RELEASE() { mu_.unlock(); }
  bool TryLock() KOSR_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  /// Tells the analysis this thread holds the mutex when that fact cannot
  /// be proven locally (e.g. a callback invoked from a locked region).
  void AssertHeld() const KOSR_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex with a capability: exclusive for writers, shared for
/// readers. Prefer the scoped WriterMutexLock / ReaderMutexLock.
class KOSR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() KOSR_ACQUIRE() { mu_.lock(); }
  void Unlock() KOSR_RELEASE() { mu_.unlock(); }
  void LockShared() KOSR_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() KOSR_RELEASE_SHARED() { mu_.unlock_shared(); }
  void AssertHeld() const KOSR_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const KOSR_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (std::lock_guard replacement).
class KOSR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KOSR_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() KOSR_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// RAII exclusive lock on a SharedMutex (std::unique_lock replacement).
class KOSR_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) KOSR_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() KOSR_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex (std::shared_lock
/// replacement).
class KOSR_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) KOSR_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() KOSR_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to Mutex. There is deliberately no
/// predicate-lambda Wait: the analysis cannot see through a lambda's
/// capture, so call sites write the classic explicit loop —
///
///   MutexLock lock(mu_);
///   while (!predicate) cv_.Wait(mu_);
///
/// — which keeps every guarded read inside the annotated function scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires `mu` before
  /// returning (so the capability is held continuously from the analysis'
  /// point of view, matching std::condition_variable::wait semantics).
  void Wait(Mutex& mu) KOSR_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    // The lock is held again; hand ownership back to the caller's scope
    // instead of unlocking on destruction.
    inner.release();
  }

  /// Timed Wait: returns false on timeout, true when notified (spurious
  /// wakeups also return true — callers loop on their predicate anyway).
  /// Same adopt/release dance as Wait so the capability stays held.
  bool WaitFor(Mutex& mu, double seconds) KOSR_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    std::cv_status status =
        cv_.wait_for(inner, std::chrono::duration<double>(seconds));
    inner.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kosr

#endif  // KOSR_UTIL_SYNC_H_
