#include "src/util/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace kosr {
namespace {

[[noreturn]] void ThrowErrno(const std::string& what,
                             const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " +
                           std::strerror(errno));
}

}  // namespace

void FsyncPath(const std::string& path) {
  // O_RDONLY works for both files and directories on Linux; directories
  // cannot be opened for writing at all.
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) ThrowErrno("cannot open for fsync", path);
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno("cannot fsync", path);
  }
  ::close(fd);
}

void FsyncParentDir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  FsyncPath(parent.empty() ? "." : parent.string());
}

void AtomicRename(const std::string& source, const std::string& target) {
  if (std::rename(source.c_str(), target.c_str()) != 0) {
    ThrowErrno("cannot rename " + source + " over", target);
  }
  FsyncParentDir(target);
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) throw std::runtime_error("cannot write " + tmp_path_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    out_.close();
    std::error_code ec;  // best-effort cleanup; never throw from a dtor
    std::filesystem::remove(tmp_path_, ec);
  }
}

void AtomicFileWriter::Commit() {
  if (committed_) throw std::logic_error("AtomicFileWriter: double Commit");
  out_.flush();
  bool ok = static_cast<bool>(out_);
  out_.close();
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
    throw std::runtime_error("write failed for " + tmp_path_);
  }
  try {
    FsyncPath(tmp_path_);
    AtomicRename(tmp_path_, path_);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
    throw;
  }
  committed_ = true;
}

}  // namespace kosr
