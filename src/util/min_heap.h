#ifndef KOSR_UTIL_MIN_HEAP_H_
#define KOSR_UTIL_MIN_HEAP_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/util/types.h"

namespace kosr {

/// Minimal binary min-heap over an owned vector, as a drop-in for
/// std::priority_queue<T, std::vector<T>, Greater> on the query hot paths.
/// Unlike std::priority_queue it exposes Clear(), which empties the heap
/// while keeping the vector's capacity — a query that reuses the heap via
/// KosrScratch/QueryContext allocates nothing once warmed up.
///
/// `Greater` is a strict weak order with a > b meaning "a after b"; Top()
/// returns the minimum, exactly like the std::greater<> priority_queue
/// idiom it replaces.
template <typename T, typename Greater = std::greater<T>>
class MinQueue {
 public:
  bool Empty() const { return items_.empty(); }
  size_t Size() const { return items_.size(); }
  const T& Top() const {
    assert(!items_.empty());
    return items_.front();
  }

  void Push(T item) {
    items_.push_back(std::move(item));
    std::push_heap(items_.begin(), items_.end(), Greater{});
  }

  void Pop() {
    assert(!items_.empty());
    std::pop_heap(items_.begin(), items_.end(), Greater{});
    items_.pop_back();
  }

  /// Empties the heap, retaining capacity.
  void Clear() { items_.clear(); }

 private:
  std::vector<T> items_;
};

/// Addressable 4-ary min-heap over dense uint32 keys, specialized for
/// Dijkstra-style searches. Supports Insert, DecreaseKey (via Update) and
/// ExtractMin in O(log n); membership is tracked with a position array that
/// is lazily sized to the key universe.
///
/// The heap is reusable: Clear() resets it in O(#touched) rather than
/// O(universe), which matters when many small searches run on a big graph.
class IndexedMinHeap {
 public:
  explicit IndexedMinHeap(uint32_t universe = 0) { Resize(universe); }

  void Resize(uint32_t universe) { pos_.resize(universe, kAbsent); }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  bool Contains(uint32_t key) const {
    return key < pos_.size() && pos_[key] != kAbsent;
  }

  Cost PriorityOf(uint32_t key) const {
    assert(Contains(key));
    return heap_[pos_[key]].priority;
  }

  /// Inserts `key`, or lowers its priority if already present with a higher
  /// one. Returns true if the heap changed.
  bool InsertOrDecrease(uint32_t key, Cost priority) {
    assert(key < pos_.size());
    if (pos_[key] == kAbsent) {
      pos_[key] = static_cast<uint32_t>(heap_.size());
      heap_.push_back({priority, key});
      touched_.push_back(key);
      SiftUp(pos_[key]);
      return true;
    }
    uint32_t i = pos_[key];
    if (heap_[i].priority <= priority) return false;
    heap_[i].priority = priority;
    SiftUp(i);
    return true;
  }

  /// Removes and returns the (priority, key) pair with minimal priority.
  std::pair<Cost, uint32_t> ExtractMin() {
    assert(!heap_.empty());
    Entry top = heap_[0];
    SwapEntries(0, static_cast<uint32_t>(heap_.size() - 1));
    heap_.pop_back();
    pos_[top.key] = kAbsent;
    if (!heap_.empty()) SiftDown(0);
    return {top.priority, top.key};
  }

  /// Empties the heap and resets position bookkeeping for touched keys only.
  void Clear() {
    for (uint32_t k : touched_) pos_[k] = kAbsent;
    touched_.clear();
    heap_.clear();
  }

 private:
  struct Entry {
    Cost priority;
    uint32_t key;
  };
  static constexpr uint32_t kAbsent = UINT32_MAX;

  void SwapEntries(uint32_t a, uint32_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].key] = a;
    pos_[heap_[b].key] = b;
  }

  void SiftUp(uint32_t i) {
    while (i > 0) {
      uint32_t parent = (i - 1) / 4;
      if (heap_[parent].priority <= heap_[i].priority) break;
      SwapEntries(parent, i);
      i = parent;
    }
  }

  void SiftDown(uint32_t i) {
    for (;;) {
      uint32_t best = i;
      uint32_t first_child = 4 * i + 1;
      for (uint32_t c = first_child;
           c < first_child + 4 && c < heap_.size(); ++c) {
        if (heap_[c].priority < heap_[best].priority) best = c;
      }
      if (best == i) return;
      SwapEntries(best, i);
      i = best;
    }
  }

  std::vector<Entry> heap_;
  std::vector<uint32_t> pos_;
  std::vector<uint32_t> touched_;
};

}  // namespace kosr

#endif  // KOSR_UTIL_MIN_HEAP_H_
