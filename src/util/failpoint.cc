#include "src/util/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

namespace kosr::failpoint {
namespace {

struct Entry {
  Action action = Action::kOff;
  uint64_t hits = 0;
};

// Plain std::mutex on purpose: this file is leaf infrastructure below
// src/util/sync.h's annotated wrappers, and the slow path only runs while
// a test has armed a point.
std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, Entry>& Registry() {
  static std::map<std::string, Entry> registry;
  return registry;
}

void RecountArmedLocked() {
  uint32_t armed = 0;
  for (const auto& [name, entry] : Registry()) {
    if (entry.action != Action::kOff) ++armed;
  }
  internal::g_num_armed.store(armed, std::memory_order_relaxed);
}

Action ParseAction(const std::string& text) {
  if (text == "crash") return Action::kCrash;
  if (text == "error") return Action::kError;
  if (text == "off") return Action::kOff;
  throw std::invalid_argument("KOSR_FAILPOINTS: unknown action '" + text +
                              "' (want crash|error|off)");
}

// Parses env at process start so an armed child (the crash-recovery
// harness spawns `kosr_cli serve` with KOSR_FAILPOINTS set) needs no
// cooperation from main(). A malformed spec must not silently disable
// injection — but throwing from a static initializer would only terminate();
// print the reason and exit deterministically instead.
const bool g_env_loaded = [] {
  try {
    ReloadFromEnv();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
  return true;
}();

}  // namespace

namespace internal {

std::atomic<uint32_t> g_num_armed{0};

void Hit(const char* name) {
  Action action = Action::kOff;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto it = Registry().find(name);
    if (it == Registry().end() || it->second.action == Action::kOff) return;
    ++it->second.hits;
    action = it->second.action;
  }
  if (action == Action::kCrash) {
    // Simulate a crash at exactly this point: no stream flushing, no
    // destructors, no atexit — only what already reached the kernel
    // survives, which is precisely what recovery must tolerate.
    std::fprintf(stderr, "failpoint %s: crashing\n", name);
    std::_Exit(kCrashExitCode);
  }
  throw std::runtime_error(std::string("failpoint ") + name);
}

}  // namespace internal

void Arm(const std::string& name, Action action) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry()[name].action = action;
  RecountArmedLocked();
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (auto& [name, entry] : Registry()) entry.action = Action::kOff;
  RecountArmedLocked();
}

void ReloadFromEnv() {
  const char* spec = std::getenv("KOSR_FAILPOINTS");
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (auto& [name, entry] : Registry()) entry.action = Action::kOff;
  if (spec != nullptr && *spec != '\0') {
    std::string text(spec);
    size_t start = 0;
    while (start <= text.size()) {
      size_t comma = text.find(',', start);
      std::string item = text.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      if (!item.empty()) {
        size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
          throw std::invalid_argument(
              "KOSR_FAILPOINTS: want name=crash|error, got '" + item + "'");
        }
        Registry()[item.substr(0, eq)].action =
            ParseAction(item.substr(eq + 1));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  RecountArmedLocked();
}

uint64_t HitCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

}  // namespace kosr::failpoint
