#ifndef KOSR_UTIL_TYPES_H_
#define KOSR_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace kosr {

/// Vertex identifier. Vertices are dense integers in [0, num_vertices).
using VertexId = uint32_t;

/// Edge weight. Non-negative; need not satisfy the triangle inequality.
using Weight = uint32_t;

/// Accumulated route cost. 64-bit so that sums of 32-bit weights cannot
/// overflow on any realistic route.
using Cost = int64_t;

/// Category identifier. Categories are dense integers in [0, num_categories).
using CategoryId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for "unreachable". Chosen so that kInfCost + any Weight does not
/// overflow Cost.
inline constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;

/// Sentinel for "no category".
inline constexpr CategoryId kInvalidCategory =
    std::numeric_limits<CategoryId>::max();

}  // namespace kosr

#endif  // KOSR_UTIL_TYPES_H_
