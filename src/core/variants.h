#ifndef KOSR_CORE_VARIANTS_H_
#define KOSR_CORE_VARIANTS_H_

#include "src/core/engine.h"
#include "src/core/query.h"

namespace kosr {

/// KOSR variant without a fixed source (Sec. IV-C): the route may begin at
/// any vertex of the first sequence category. Implemented by seeding the
/// search with every member of C1 at depth 1 and cost 0 (the paper's
/// "initially add all vertices in the first category instead of the source
/// to the priority queue"). Both PruningKOSR and StarKOSR work here.
KosrResult QueryNoSource(const KosrEngine& engine, VertexId target,
                         const CategorySequence& sequence, uint32_t k,
                         const KosrOptions& options = {});

/// KOSR variant without a fixed destination (Sec. IV-C): the route ends at
/// its last category vertex. The A* estimate needs a destination, so
/// StarKOSR is rejected (std::invalid_argument) — use kPruning or kKpne,
/// exactly as the paper prescribes.
KosrResult QueryNoDestination(const KosrEngine& engine, VertexId source,
                              const CategorySequence& sequence, uint32_t k,
                              const KosrOptions& options = {});

}  // namespace kosr

#endif  // KOSR_CORE_VARIANTS_H_
