#ifndef KOSR_CORE_QUERY_CONTEXT_H_
#define KOSR_CORE_QUERY_CONTEXT_H_

#include <vector>

#include "src/algo/query_scratch.h"
#include "src/nn/inverted_label_index.h"
#include "src/obs/trace.h"

namespace kosr {

/// Reusable per-caller query state for KosrEngine::Query. A context is NOT
/// thread-safe: keep one per thread (each service worker owns one; a bench
/// loop reuses one across its batch) and hand it to successive Query calls.
/// The engine then runs the search over warmed containers — witness pool,
/// frontier heap, dominance tables — instead of allocating fresh ones per
/// query. Query results are identical with and without a context.
struct QueryContext {
  /// Search-state arena shared by the KOSR algorithms.
  KosrScratch scratch;
  /// Per-sequence-slot inverted-index pointers (rebuilt cheaply per query,
  /// reusing the vector's capacity).
  std::vector<const InvertedLabelIndex*> slot_indexes;
  /// Fixed-capacity per-query stage spans (queue-wait, NN,
  /// enumerate, serialize), filled by the service wrapper — plain doubles,
  /// no allocation after construction. Cleared at the start of each query.
  obs::StageTimes stage_times;
};

}  // namespace kosr

#endif  // KOSR_CORE_QUERY_CONTEXT_H_
