#ifndef KOSR_CORE_QUERY_H_
#define KOSR_CORE_QUERY_H_

#include <cstdint>
#include <vector>

#include "src/graph/categories.h"
#include "src/nn/nn_provider.h"
#include "src/util/stats.h"
#include "src/util/types.h"

namespace kosr {

/// KOSR query (Definition 5): find the k least-cost feasible routes from
/// `source` to `target` visiting one vertex of each category of `sequence`
/// in order.
struct KosrQuery {
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  CategorySequence sequence;
  uint32_t k = 1;
};

/// Which KOSR algorithm answers the query.
enum class Algorithm {
  kKpne,     ///< Baseline: PNE [32] extended to top-k (Sec. III-B).
  kPruning,  ///< PruningKOSR — dominance-based (Algorithm 2).
  kStar,     ///< StarKOSR — A*-style target-directed (Sec. IV-B).
};

/// How nearest neighbors inside categories are found.
enum class NnMode {
  kHopLabel,  ///< FindNN/FindNEN over inverted label indexes (Alg. 3/4).
  kDijkstra,  ///< Resumable Dijkstra searches (the "-Dij" method family).
};

/// Per-query execution options.
struct KosrOptions {
  Algorithm algorithm = Algorithm::kStar;
  NnMode nn_mode = NnMode::kHopLabel;

  /// Reconstruct the full vertex path of each result, not just its witness.
  bool reconstruct_paths = false;

  /// Collect the Table-X phase timing breakdown (adds clock overhead).
  bool collect_phase_times = false;

  /// Abort after examining this many witnesses (0 = unlimited). The paper
  /// reports aborted configurations as INF.
  uint64_t max_examined_routes = 0;

  /// Abort after this many seconds (0 = unlimited).
  double time_budget_s = 0;

  /// Optional per-slot candidate predicate (personal-preference extension,
  /// Sec. IV-C): slot i (1-based) only admits vertices the filter accepts.
  SlotFilter filter;
};

/// One result route.
struct SequencedRoute {
  /// Total route cost w(P) — the sum of shortest-path legs of the witness.
  Cost cost = 0;
  /// The witness <s, v1, ..., vj, t> (Definition 4).
  std::vector<VertexId> witness;
  /// Full vertex path, if reconstruction was requested (consecutive
  /// vertices are graph neighbors).
  std::vector<VertexId> path;
};

/// Query answer: up to k routes in nondecreasing cost order, plus counters.
struct KosrResult {
  std::vector<SequencedRoute> routes;
  QueryStats stats;
};

}  // namespace kosr

#endif  // KOSR_CORE_QUERY_H_
