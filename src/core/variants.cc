#include "src/core/variants.h"

#include <stdexcept>

#include "src/algo/kpne.h"
#include "src/algo/pruning_kosr.h"
#include "src/algo/star_kosr.h"
#include "src/nn/dijkstra_nn.h"
#include "src/nn/find_nen.h"
#include "src/nn/find_nn.h"

namespace kosr {
namespace {

AlgoConfig VariantConfig(const KosrEngine& engine, VertexId source,
                         VertexId target, const CategorySequence& sequence,
                         uint32_t k, const KosrOptions& options) {
  (void)engine;
  AlgoConfig config;
  config.source = source;
  config.target = target;
  config.num_categories = static_cast<uint32_t>(sequence.size());
  config.k = k;
  config.max_examined = options.max_examined_routes;
  config.time_budget_s = options.time_budget_s;
  config.collect_phase_times = options.collect_phase_times;
  return config;
}

std::vector<const InvertedLabelIndex*> SlotIndexes(
    const KosrEngine& engine, const CategorySequence& sequence) {
  std::vector<const InvertedLabelIndex*> out;
  for (CategoryId c : sequence) out.push_back(&engine.inverted(c));
  return out;
}

}  // namespace

KosrResult QueryNoSource(const KosrEngine& engine, VertexId target,
                         const CategorySequence& sequence, uint32_t k,
                         const KosrOptions& options) {
  if (sequence.empty()) throw std::invalid_argument("empty sequence");
  AlgoConfig config =
      VariantConfig(engine, kInvalidVertex, target, sequence, k, options);
  for (VertexId v : engine.categories().Members(sequence.front())) {
    if (options.filter && !options.filter(1, v)) continue;
    config.seeds.push_back({v, 1, 0});
  }

  if (options.nn_mode == NnMode::kDijkstra) {
    if (options.algorithm == Algorithm::kStar) {
      DijkstraNenProvider nen(&engine.graph(), &engine.categories(), sequence,
                              target, options.filter);
      return RunStarKosr(config, nen);
    }
    DijkstraNnProvider nn(&engine.graph(), &engine.categories(), sequence,
                          target, options.filter);
    return options.algorithm == Algorithm::kKpne ? RunKpne(config, nn)
                                                 : RunPruningKosr(config, nn);
  }
  auto slots = SlotIndexes(engine, sequence);
  if (options.algorithm == Algorithm::kStar) {
    HopLabelNenProvider nen(&engine.labeling(), slots, target, options.filter);
    return RunStarKosr(config, nen);
  }
  HopLabelNnProvider nn(&engine.labeling(), slots, target, options.filter);
  return options.algorithm == Algorithm::kKpne ? RunKpne(config, nn)
                                               : RunPruningKosr(config, nn);
}

KosrResult QueryNoDestination(const KosrEngine& engine, VertexId source,
                              const CategorySequence& sequence, uint32_t k,
                              const KosrOptions& options) {
  if (sequence.empty()) throw std::invalid_argument("empty sequence");
  if (options.algorithm == Algorithm::kStar) {
    throw std::invalid_argument(
        "StarKOSR needs a destination; use kPruning for this variant");
  }
  AlgoConfig config =
      VariantConfig(engine, source, kInvalidVertex, sequence, k, options);
  config.has_destination = false;

  if (options.nn_mode == NnMode::kDijkstra) {
    DijkstraNnProvider nn(&engine.graph(), &engine.categories(), sequence,
                          kInvalidVertex, options.filter);
    return options.algorithm == Algorithm::kKpne ? RunKpne(config, nn)
                                                 : RunPruningKosr(config, nn);
  }
  auto slots = SlotIndexes(engine, sequence);
  HopLabelNnProvider nn(&engine.labeling(), slots, kInvalidVertex,
                        options.filter);
  return options.algorithm == Algorithm::kKpne ? RunKpne(config, nn)
                                               : RunPruningKosr(config, nn);
}

}  // namespace kosr
