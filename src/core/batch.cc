#include "src/core/batch.h"

#include <atomic>
#include <exception>
#include <thread>

#include "src/util/sync.h"
#include "src/util/timer.h"

namespace kosr {

BatchResult RunQueryBatch(const KosrEngine& engine,
                          const std::vector<KosrQuery>& queries,
                          const KosrOptions& options, uint32_t num_threads) {
  BatchResult batch;
  batch.results.resize(queries.size());
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min<uint32_t>(
      num_threads, std::max<size_t>(1, queries.size()));

  WallTimer timer;
  if (num_threads == 1) {
    QueryContext ctx;
    for (size_t i = 0; i < queries.size(); ++i) {
      batch.results[i] = engine.Query(queries[i], options, &ctx);
    }
  } else {
    std::atomic<size_t> next{0};
    std::atomic<bool> stop{false};
    std::exception_ptr first_error;
    Mutex error_mutex;
    auto worker = [&] {
      QueryContext ctx;  // thread-private reusable query scratch
      for (;;) {
        if (stop.load(std::memory_order_relaxed)) return;
        size_t i = next.fetch_add(1);
        if (i >= queries.size()) return;
        try {
          batch.results[i] = engine.Query(queries[i], options, &ctx);
        } catch (...) {
          stop.store(true, std::memory_order_relaxed);
          MutexLock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }
  batch.wall_seconds = timer.ElapsedSeconds();
  for (const KosrResult& r : batch.results) {
    batch.aggregate.Accumulate(r.stats);
    batch.latencies.Record(r.stats.total_time_s);
  }
  return batch;
}

}  // namespace kosr
