#include "src/core/engine.h"

#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/algo/gsp.h"
#include "src/core/snapshot.h"
#include "src/algo/kpne.h"
#include "src/algo/pruning_kosr.h"
#include "src/algo/star_kosr.h"
#include "src/nn/dijkstra_nn.h"
#include "src/nn/find_nen.h"
#include "src/nn/find_nn.h"
#include "src/obs/counters.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace kosr {
namespace {

AlgoConfig MakeConfig(const KosrQuery& query, const KosrOptions& options) {
  AlgoConfig config;
  config.source = query.source;
  config.target = query.target;
  config.num_categories = static_cast<uint32_t>(query.sequence.size());
  config.k = query.k;
  config.max_examined = options.max_examined_routes;
  config.time_budget_s = options.time_budget_s;
  config.collect_phase_times = options.collect_phase_times;
  return config;
}

}  // namespace

void ValidateKosrQuery(const KosrQuery& query,
                       const CategoryTable& categories) {
  if (query.source == kInvalidVertex || query.target == kInvalidVertex) {
    throw std::invalid_argument("query needs a source and a target");
  }
  if (query.source >= categories.num_vertices() ||
      query.target >= categories.num_vertices()) {
    throw std::invalid_argument("source/target outside the vertex universe");
  }
  if (query.k == 0) throw std::invalid_argument("k must be positive");
  for (CategoryId c : query.sequence) {
    if (c >= categories.num_categories()) {
      throw std::invalid_argument("unknown category in sequence");
    }
  }
}

/// Shared driver used by the in-memory and disk-resident paths. `scratch`
/// (optional) is the reusable search-state arena of the caller's
/// QueryContext.
KosrResult RunQueryWithIndexes(
    const Graph& graph, const CategoryTable& categories,
    const HubLabeling& labeling,
    const std::vector<const InvertedLabelIndex*>& slot_indexes,
    const KosrQuery& query, const KosrOptions& options,
    KosrScratch* scratch) {
  AlgoConfig config = MakeConfig(query, options);
  KosrResult result;
  switch (options.algorithm) {
    case Algorithm::kKpne: {
      if (options.nn_mode == NnMode::kHopLabel) {
        HopLabelNnProvider nn(&labeling, slot_indexes, query.target,
                              options.filter);
        result = RunKpne(config, nn, scratch);
      } else {
        DijkstraNnProvider nn(&graph, &categories, query.sequence,
                              query.target, options.filter);
        result = RunKpne(config, nn, scratch);
      }
      break;
    }
    case Algorithm::kPruning: {
      if (options.nn_mode == NnMode::kHopLabel) {
        HopLabelNnProvider nn(&labeling, slot_indexes, query.target,
                              options.filter);
        result = RunPruningKosr(config, nn, scratch);
      } else {
        DijkstraNnProvider nn(&graph, &categories, query.sequence,
                              query.target, options.filter);
        result = RunPruningKosr(config, nn, scratch);
      }
      break;
    }
    case Algorithm::kStar: {
      if (options.nn_mode == NnMode::kHopLabel) {
        HopLabelNenProvider nen(&labeling, slot_indexes, query.target,
                                options.filter);
        result = RunStarKosr(config, nen, scratch);
      } else {
        DijkstraNenProvider nen(&graph, &categories, query.sequence,
                                query.target, options.filter);
        result = RunStarKosr(config, nen, scratch);
      }
      break;
    }
  }
  return result;
}

KosrEngine::KosrEngine(Graph graph, CategoryTable categories)
    : graph_(std::make_shared<Graph>(std::move(graph))),
      categories_(std::make_shared<CategoryTable>(std::move(categories))),
      labeling_(std::make_shared<HubLabeling>()) {
  if (categories_->num_vertices() != graph_->num_vertices()) {
    throw std::invalid_argument(
        "category table and graph disagree on the vertex universe");
  }
}

Graph& KosrEngine::MutableGraph() {
  if (graph_.use_count() > 1) graph_ = std::make_shared<Graph>(*graph_);
  return *graph_;
}

CategoryTable& KosrEngine::MutableCategories() {
  if (categories_.use_count() > 1) {
    categories_ = std::make_shared<CategoryTable>(*categories_);
  }
  return *categories_;
}

HubLabeling& KosrEngine::MutableLabeling() {
  if (labeling_.use_count() > 1) {
    labeling_ = std::make_shared<HubLabeling>(*labeling_);
  }
  return *labeling_;
}

InvertedLabelIndex& KosrEngine::MutableInverted(CategoryId c) {
  if (inverted_[c].use_count() > 1) {
    inverted_[c] = std::make_shared<InvertedLabelIndex>(*inverted_[c]);
  }
  return *inverted_[c];
}

void KosrEngine::BuildIndexes(uint32_t num_threads) {
  BuildIndexes(HubLabeling::DegreeOrder(*graph_, num_threads), num_threads);
}

void KosrEngine::BuildIndexes(const std::vector<VertexId>& order,
                              uint32_t num_threads) {
  MutableLabeling().Build(*graph_, order, num_threads);
  label_build_seconds_ = labeling_->BuildSeconds();
  WallTimer timer;
  // Categories are independent of one another, so each inverted index build
  // is one parallel task (dynamic scheduling — category sizes can be very
  // skewed under the Zipfian tables).
  inverted_.assign(categories_->num_categories(), nullptr);
  ParallelForEachIndex(
      num_threads, categories_->num_categories(), [&](uint64_t c) {
        inverted_[c] = std::make_shared<InvertedLabelIndex>(
            InvertedLabelIndex::Build(
                *labeling_, categories_->Members(static_cast<CategoryId>(c))));
      });
  inverted_build_seconds_ = timer.ElapsedSeconds();
  indexes_built_ = true;
}

KosrResult KosrEngine::Query(const KosrQuery& query,
                             const KosrOptions& options,
                             QueryContext* ctx) const {
  ValidateKosrQuery(query, *categories_);
  if (options.nn_mode == NnMode::kHopLabel && !indexes_built_) {
    throw std::logic_error("BuildIndexes() must run before hop-label queries");
  }
  std::vector<const InvertedLabelIndex*> local_slots;
  std::vector<const InvertedLabelIndex*>& slot_indexes =
      ctx != nullptr ? ctx->slot_indexes : local_slots;
  slot_indexes.clear();
  if (options.nn_mode == NnMode::kHopLabel) {
    // Dijkstra-mode providers never read the slot indexes, and inverted_
    // may be empty (indexes not built) — indexing it there would read past
    // an empty vector.
    for (CategoryId c : query.sequence) {
      slot_indexes.push_back(inverted_[c].get());
    }
  }
  KosrResult result =
      RunQueryWithIndexes(*graph_, *categories_, *labeling_, slot_indexes,
                          query, options,
                          ctx != nullptr ? &ctx->scratch : nullptr);
  if (ctx != nullptr) {
    // Arena high-water mark: the pool only grows across a context's
    // lifetime, so its size after a query is the peak witness count so far.
    KOSR_COUNT_MAX(kScratchPeakWitnesses, ctx->scratch.pool.size());
  }
  if (options.reconstruct_paths) {
    for (SequencedRoute& route : result.routes) {
      route.path = ReconstructPath(route.witness);
    }
  }
  return result;
}

std::optional<SequencedRoute> KosrEngine::QueryGsp(
    VertexId source, VertexId target, const CategorySequence& sequence,
    QueryStats* stats) const {
  return RunGsp(*graph_, *categories_, sequence, source, target, stats);
}

std::vector<VertexId> ReconstructWitnessPath(
    const Graph& graph, const HubLabeling& labeling, bool indexes_built,
    const std::vector<VertexId>& witness) {
  std::vector<VertexId> path;
  for (size_t i = 0; i + 1 < witness.size(); ++i) {
    std::vector<VertexId> leg;
    if (indexes_built) {
      leg = labeling.UnpackPath(witness[i], witness[i + 1]);
    } else {
      leg = DijkstraPath(graph, witness[i], witness[i + 1]);
    }
    if (leg.empty()) return {};  // disconnected witness (shouldn't happen)
    if (!path.empty()) path.pop_back();  // drop duplicated junction vertex
    path.insert(path.end(), leg.begin(), leg.end());
  }
  if (witness.size() == 1) path = witness;
  return path;
}

std::vector<VertexId> KosrEngine::ReconstructPath(
    const std::vector<VertexId>& witness) const {
  return ReconstructWitnessPath(*graph_, *labeling_, indexes_built_, witness);
}

void KosrEngine::AddVertexCategory(VertexId v, CategoryId c) {
  MutableCategories().Add(v, c);
  if (indexes_built_) MutableInverted(c).AddMember(*labeling_, v);
}

void KosrEngine::RemoveVertexCategory(VertexId v, CategoryId c) {
  if (indexes_built_) MutableInverted(c).RemoveMember(*labeling_, v);
  MutableCategories().Remove(v, c);
}

void KosrEngine::AbsorbLabelRepair(LabelRepairDelta delta,
                                   EdgeUpdateSummary& summary) {
  summary.labels_changed = !delta.Empty();
  summary.changed_in_labels = static_cast<uint32_t>(delta.changed_in.size());
  summary.changed_out_labels = static_cast<uint32_t>(delta.changed_out.size());
  // Inverted lists mirror Lin entries of category members; patch exactly
  // the lists of hubs whose entries for a changed member moved, instead of
  // rebuilding every category from scratch.
  for (size_t i = 0; i < delta.changed_in.size(); ++i) {
    VertexId x = delta.changed_in[i];
    for (CategoryId c : categories_->CategoriesOf(x)) {
      MutableInverted(c).UpdateMember(x, delta.old_in[i], labeling_->Lin(x));
    }
  }
  summary.changed_in_vertices = std::move(delta.changed_in);
  summary.changed_out_vertices = std::move(delta.changed_out);
}

EdgeUpdateSummary KosrEngine::AddOrDecreaseEdge(VertexId u, VertexId v,
                                                Weight w) {
  // In-place arc update; a no-op (existing weight already <= w, or a self
  // loop) leaves the graph and every index untouched, so repeated updates
  // to the same edge can neither grow the arc lists nor trigger repairs.
  EdgeUpdateSummary summary;
  if (u >= graph_->num_vertices() || v >= graph_->num_vertices()) {
    throw std::invalid_argument("arc endpoint outside the vertex universe");
  }
  if (u == v || graph_->ArcWeight(u, v) <= static_cast<Cost>(w)) {
    return summary;  // no-op: leave the shared graph untouched (no clone)
  }
  MutableGraph().AddOrDecreaseArc(u, v, w);
  summary.graph_changed = true;
  if (indexes_built_) {
    AbsorbLabelRepair(MutableLabeling().OnEdgeDecreased(*graph_, u, v, w),
                      summary);
  }
  return summary;
}

EdgeUpdateSummary KosrEngine::SetEdgeWeight(VertexId u, VertexId v, Weight w) {
  EdgeUpdateSummary summary;
  if (u >= graph_->num_vertices() || v >= graph_->num_vertices()) {
    throw std::invalid_argument("arc endpoint outside the vertex universe");
  }
  if (u == v) return summary;  // self loops are dropped, as everywhere
  Cost old = graph_->ArcWeight(u, v);
  if (old == static_cast<Cost>(w)) return summary;  // already exactly w
  MutableGraph().SetArcWeight(u, v, w);
  summary.graph_changed = true;
  if (indexes_built_) {
    LabelRepairDelta delta =
        static_cast<Cost>(w) < old
            ? MutableLabeling().OnEdgeDecreased(*graph_, u, v, w)
            : MutableLabeling().OnEdgeIncreased(*graph_, u, v,
                                                static_cast<Weight>(old));
    AbsorbLabelRepair(std::move(delta), summary);
  }
  return summary;
}

EdgeUpdateSummary KosrEngine::RemoveEdge(VertexId u, VertexId v) {
  EdgeUpdateSummary summary;
  if (u >= graph_->num_vertices() || v >= graph_->num_vertices()) {
    throw std::invalid_argument("arc endpoint outside the vertex universe");
  }
  // Probe before mutating so an absent arc (or self loop) never clones the
  // shared graph; RemoveArc itself re-checks and drops self loops.
  if (u == v || graph_->ArcWeight(u, v) == kInfCost) return summary;
  std::optional<Cost> old = MutableGraph().RemoveArc(u, v);
  if (!old.has_value()) return summary;
  summary.graph_changed = true;
  if (indexes_built_) {
    AbsorbLabelRepair(MutableLabeling().OnEdgeRemoved(
                          *graph_, u, v, static_cast<Weight>(*old)),
                      summary);
  }
  return summary;
}

EdgeUpdateSummary KosrEngine::ApplyEdgeUpdates(
    std::span<const EdgeUpdate> updates) {
  EdgeUpdateSummary summary;

  // Pass 1 — apply every graph mutation, recording each arc's pre-batch
  // minimum weight on first touch (kInfCost = the arc did not exist). The
  // ordered map keeps the coalesced requests in deterministic (u, v) order.
  std::map<std::pair<VertexId, VertexId>, Cost> first_old;
  for (const EdgeUpdate& update : updates) {
    VertexId u = update.u, v = update.v;
    if (u >= graph_->num_vertices() || v >= graph_->num_vertices()) {
      throw std::invalid_argument("arc endpoint outside the vertex universe");
    }
    if (u == v) continue;  // self loops are dropped, as everywhere
    Cost old = graph_->ArcWeight(u, v);
    switch (update.kind) {
      case EdgeUpdate::Kind::kAddOrDecrease:
        if (old <= static_cast<Cost>(update.w)) continue;
        first_old.try_emplace({u, v}, old);
        MutableGraph().AddOrDecreaseArc(u, v, update.w);
        summary.graph_changed = true;
        break;
      case EdgeUpdate::Kind::kSet:
        if (old == static_cast<Cost>(update.w)) continue;
        first_old.try_emplace({u, v}, old);
        MutableGraph().SetArcWeight(u, v, update.w);
        summary.graph_changed = true;
        break;
      case EdgeUpdate::Kind::kRemove:
        if (old == kInfCost) continue;
        first_old.try_emplace({u, v}, old);
        MutableGraph().RemoveArc(u, v);
        summary.graph_changed = true;
        break;
    }
  }
  if (!summary.graph_changed || !indexes_built_) return summary;

  // Pass 2 — coalesce per-arc to the net (pre-batch, post-batch) weight
  // change and emit exactly the tights the single-update entry points
  // would: a net decrease or insertion engages only the new-graph test, a
  // net increase or deletion only the old-graph test. Arcs that ended at
  // their pre-batch weight repair nothing.
  std::vector<HubLabeling::EdgeRepairRequest> requests;
  requests.reserve(first_old.size());
  for (const auto& [arc, old] : first_old) {
    Cost now = graph_->ArcWeight(arc.first, arc.second);
    if (now == old) continue;  // net no-op across the batch
    HubLabeling::EdgeRepairRequest request;
    request.u = arc.first;
    request.v = arc.second;
    if (now < old) {
      request.tight_new = now;
    } else {
      request.tight_old = old;
    }
    requests.push_back(request);
  }
  if (requests.empty()) return summary;

  AbsorbLabelRepair(MutableLabeling().RepairEdgeUpdates(*graph_, requests),
                    summary);
  return summary;
}

void KosrEngine::SaveIndexes(std::ostream& out) const {
  if (!indexes_built_) {
    throw std::logic_error("BuildIndexes() must run before SaveIndexes()");
  }
  labeling_->Serialize(out);
  uint32_t num_categories = categories_->num_categories();
  out.write(reinterpret_cast<const char*>(&num_categories),
            sizeof(num_categories));
  for (const auto& index : inverted_) index->Serialize(out);
}

void KosrEngine::LoadIndexes(std::istream& in) {
  // Passing the expected vertex count makes Deserialize reject an absurd
  // claimed n before sizing anything from it.
  labeling_ = std::make_shared<HubLabeling>(
      HubLabeling::Deserialize(in, graph_->num_vertices()));
  if (labeling_->num_vertices() != graph_->num_vertices()) {
    throw std::runtime_error("index snapshot is for a different graph");
  }
  uint32_t num_categories = 0;
  in.read(reinterpret_cast<char*>(&num_categories), sizeof(num_categories));
  if (!in || num_categories != categories_->num_categories()) {
    throw std::runtime_error("index snapshot is for different categories");
  }
  inverted_.clear();
  inverted_.reserve(num_categories);
  for (uint32_t c = 0; c < num_categories; ++c) {
    inverted_.push_back(std::make_shared<InvertedLabelIndex>(
        InvertedLabelIndex::Deserialize(in, graph_->num_vertices())));
  }
  indexes_built_ = true;
}

std::shared_ptr<const EngineSnapshot> KosrEngine::SealSnapshot(
    uint64_t version) const {
  std::vector<std::shared_ptr<const InvertedLabelIndex>> inverted(
      inverted_.begin(), inverted_.end());
  return std::make_shared<const EngineSnapshot>(
      version, indexes_built_, graph_, categories_, labeling_,
      std::move(inverted));
}

void KosrEngine::WriteDiskStore(const std::string& dir) const {
  if (!indexes_built_) {
    throw std::logic_error("BuildIndexes() must run before WriteDiskStore()");
  }
  DiskLabelStore::Write(dir, *labeling_, *categories_);
}

KosrResult KosrEngine::QueryFromDisk(const DiskLabelStore& store,
                                     const KosrQuery& query,
                                     const KosrOptions& options) {
  if (options.nn_mode != NnMode::kHopLabel) {
    throw std::invalid_argument("disk-resident queries are hop-label only");
  }
  DiskLabelStore::QueryContext ctx =
      store.Load(query.source, query.target, query.sequence);
  std::vector<const InvertedLabelIndex*> slot_indexes;
  for (const InvertedLabelIndex& idx : ctx.slot_indexes) {
    slot_indexes.push_back(&idx);
  }
  AlgoConfig config = MakeConfig(query, options);
  KosrResult result;
  switch (options.algorithm) {
    case Algorithm::kStar: {
      HopLabelNenProvider nen(&ctx.labeling, slot_indexes, query.target,
                              options.filter);
      result = RunStarKosr(config, nen);
      break;
    }
    case Algorithm::kKpne: {
      HopLabelNnProvider nn(&ctx.labeling, slot_indexes, query.target,
                            options.filter);
      result = RunKpne(config, nn);
      break;
    }
    case Algorithm::kPruning: {
      HopLabelNnProvider nn(&ctx.labeling, slot_indexes, query.target,
                            options.filter);
      result = RunPruningKosr(config, nn);
      break;
    }
  }
  result.stats.total_time_s += ctx.load_seconds;
  return result;
}

}  // namespace kosr
