#include "src/core/engine.h"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/algo/gsp.h"
#include "src/algo/kpne.h"
#include "src/algo/pruning_kosr.h"
#include "src/algo/star_kosr.h"
#include "src/nn/dijkstra_nn.h"
#include "src/nn/find_nen.h"
#include "src/nn/find_nn.h"
#include "src/obs/counters.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace kosr {
namespace {

AlgoConfig MakeConfig(const KosrQuery& query, const KosrOptions& options) {
  AlgoConfig config;
  config.source = query.source;
  config.target = query.target;
  config.num_categories = static_cast<uint32_t>(query.sequence.size());
  config.k = query.k;
  config.max_examined = options.max_examined_routes;
  config.time_budget_s = options.time_budget_s;
  config.collect_phase_times = options.collect_phase_times;
  return config;
}

void ValidateQuery(const KosrQuery& query, const CategoryTable& categories) {
  if (query.source == kInvalidVertex || query.target == kInvalidVertex) {
    throw std::invalid_argument("query needs a source and a target");
  }
  if (query.source >= categories.num_vertices() ||
      query.target >= categories.num_vertices()) {
    throw std::invalid_argument("source/target outside the vertex universe");
  }
  if (query.k == 0) throw std::invalid_argument("k must be positive");
  for (CategoryId c : query.sequence) {
    if (c >= categories.num_categories()) {
      throw std::invalid_argument("unknown category in sequence");
    }
  }
}

}  // namespace

/// Shared driver used by the in-memory and disk-resident paths. `scratch`
/// (optional) is the reusable search-state arena of the caller's
/// QueryContext.
KosrResult RunQueryWithIndexes(
    const Graph& graph, const CategoryTable& categories,
    const HubLabeling& labeling,
    const std::vector<const InvertedLabelIndex*>& slot_indexes,
    const KosrQuery& query, const KosrOptions& options,
    KosrScratch* scratch) {
  AlgoConfig config = MakeConfig(query, options);
  KosrResult result;
  switch (options.algorithm) {
    case Algorithm::kKpne: {
      if (options.nn_mode == NnMode::kHopLabel) {
        HopLabelNnProvider nn(&labeling, slot_indexes, query.target,
                              options.filter);
        result = RunKpne(config, nn, scratch);
      } else {
        DijkstraNnProvider nn(&graph, &categories, query.sequence,
                              query.target, options.filter);
        result = RunKpne(config, nn, scratch);
      }
      break;
    }
    case Algorithm::kPruning: {
      if (options.nn_mode == NnMode::kHopLabel) {
        HopLabelNnProvider nn(&labeling, slot_indexes, query.target,
                              options.filter);
        result = RunPruningKosr(config, nn, scratch);
      } else {
        DijkstraNnProvider nn(&graph, &categories, query.sequence,
                              query.target, options.filter);
        result = RunPruningKosr(config, nn, scratch);
      }
      break;
    }
    case Algorithm::kStar: {
      if (options.nn_mode == NnMode::kHopLabel) {
        HopLabelNenProvider nen(&labeling, slot_indexes, query.target,
                                options.filter);
        result = RunStarKosr(config, nen, scratch);
      } else {
        DijkstraNenProvider nen(&graph, &categories, query.sequence,
                                query.target, options.filter);
        result = RunStarKosr(config, nen, scratch);
      }
      break;
    }
  }
  return result;
}

KosrEngine::KosrEngine(Graph graph, CategoryTable categories)
    : graph_(std::move(graph)), categories_(std::move(categories)) {
  if (categories_.num_vertices() != graph_.num_vertices()) {
    throw std::invalid_argument(
        "category table and graph disagree on the vertex universe");
  }
}

void KosrEngine::BuildIndexes(uint32_t num_threads) {
  BuildIndexes(HubLabeling::DegreeOrder(graph_, num_threads), num_threads);
}

void KosrEngine::BuildIndexes(const std::vector<VertexId>& order,
                              uint32_t num_threads) {
  labeling_.Build(graph_, order, num_threads);
  label_build_seconds_ = labeling_.BuildSeconds();
  WallTimer timer;
  // Categories are independent of one another, so each inverted index build
  // is one parallel task (dynamic scheduling — category sizes can be very
  // skewed under the Zipfian tables).
  inverted_.assign(categories_.num_categories(), {});
  ParallelForEachIndex(
      num_threads, categories_.num_categories(), [&](uint64_t c) {
        inverted_[c] = InvertedLabelIndex::Build(
            labeling_, categories_.Members(static_cast<CategoryId>(c)));
      });
  inverted_build_seconds_ = timer.ElapsedSeconds();
  indexes_built_ = true;
}

KosrResult KosrEngine::Query(const KosrQuery& query,
                             const KosrOptions& options,
                             QueryContext* ctx) const {
  ValidateQuery(query, categories_);
  if (options.nn_mode == NnMode::kHopLabel && !indexes_built_) {
    throw std::logic_error("BuildIndexes() must run before hop-label queries");
  }
  std::vector<const InvertedLabelIndex*> local_slots;
  std::vector<const InvertedLabelIndex*>& slot_indexes =
      ctx != nullptr ? ctx->slot_indexes : local_slots;
  slot_indexes.clear();
  if (options.nn_mode == NnMode::kHopLabel) {
    // Dijkstra-mode providers never read the slot indexes, and inverted_
    // may be empty (indexes not built) — taking &inverted_[c] there would
    // bind a reference into an empty vector.
    for (CategoryId c : query.sequence) slot_indexes.push_back(&inverted_[c]);
  }
  KosrResult result =
      RunQueryWithIndexes(graph_, categories_, labeling_, slot_indexes, query,
                          options, ctx != nullptr ? &ctx->scratch : nullptr);
  if (ctx != nullptr) {
    // Arena high-water mark: the pool only grows across a context's
    // lifetime, so its size after a query is the peak witness count so far.
    KOSR_COUNT_MAX(kScratchPeakWitnesses, ctx->scratch.pool.size());
  }
  if (options.reconstruct_paths) {
    for (SequencedRoute& route : result.routes) {
      route.path = ReconstructPath(route.witness);
    }
  }
  return result;
}

std::optional<SequencedRoute> KosrEngine::QueryGsp(
    VertexId source, VertexId target, const CategorySequence& sequence,
    QueryStats* stats) const {
  return RunGsp(graph_, categories_, sequence, source, target, stats);
}

std::vector<VertexId> KosrEngine::ReconstructPath(
    const std::vector<VertexId>& witness) const {
  std::vector<VertexId> path;
  for (size_t i = 0; i + 1 < witness.size(); ++i) {
    std::vector<VertexId> leg;
    if (indexes_built_) {
      leg = labeling_.UnpackPath(witness[i], witness[i + 1]);
    } else {
      leg = DijkstraPath(graph_, witness[i], witness[i + 1]);
    }
    if (leg.empty()) return {};  // disconnected witness (shouldn't happen)
    if (!path.empty()) path.pop_back();  // drop duplicated junction vertex
    path.insert(path.end(), leg.begin(), leg.end());
  }
  if (witness.size() == 1) path = witness;
  return path;
}

void KosrEngine::AddVertexCategory(VertexId v, CategoryId c) {
  categories_.Add(v, c);
  if (indexes_built_) inverted_[c].AddMember(labeling_, v);
}

void KosrEngine::RemoveVertexCategory(VertexId v, CategoryId c) {
  if (indexes_built_) inverted_[c].RemoveMember(labeling_, v);
  categories_.Remove(v, c);
}

void KosrEngine::AbsorbLabelRepair(const LabelRepairDelta& delta,
                                   EdgeUpdateSummary& summary) {
  summary.labels_changed = !delta.Empty();
  summary.changed_in_labels = static_cast<uint32_t>(delta.changed_in.size());
  summary.changed_out_labels = static_cast<uint32_t>(delta.changed_out.size());
  // Inverted lists mirror Lin entries of category members; patch exactly
  // the lists of hubs whose entries for a changed member moved, instead of
  // rebuilding every category from scratch.
  for (size_t i = 0; i < delta.changed_in.size(); ++i) {
    VertexId x = delta.changed_in[i];
    for (CategoryId c : categories_.CategoriesOf(x)) {
      inverted_[c].UpdateMember(x, delta.old_in[i], labeling_.Lin(x));
    }
  }
}

EdgeUpdateSummary KosrEngine::AddOrDecreaseEdge(VertexId u, VertexId v,
                                                Weight w) {
  // In-place arc update; a no-op (existing weight already <= w, or a self
  // loop) leaves the graph and every index untouched, so repeated updates
  // to the same edge can neither grow the arc lists nor trigger repairs.
  EdgeUpdateSummary summary;
  if (!graph_.AddOrDecreaseArc(u, v, w)) return summary;
  summary.graph_changed = true;
  if (indexes_built_) {
    AbsorbLabelRepair(labeling_.OnEdgeDecreased(graph_, u, v, w), summary);
  }
  return summary;
}

EdgeUpdateSummary KosrEngine::SetEdgeWeight(VertexId u, VertexId v, Weight w) {
  EdgeUpdateSummary summary;
  if (u >= graph_.num_vertices() || v >= graph_.num_vertices()) {
    throw std::invalid_argument("arc endpoint outside the vertex universe");
  }
  if (u == v) return summary;  // self loops are dropped, as everywhere
  Cost old = graph_.ArcWeight(u, v);
  if (old == static_cast<Cost>(w)) return summary;  // already exactly w
  graph_.SetArcWeight(u, v, w);
  summary.graph_changed = true;
  if (indexes_built_) {
    LabelRepairDelta delta =
        static_cast<Cost>(w) < old
            ? labeling_.OnEdgeDecreased(graph_, u, v, w)
            : labeling_.OnEdgeIncreased(graph_, u, v,
                                        static_cast<Weight>(old));
    AbsorbLabelRepair(delta, summary);
  }
  return summary;
}

EdgeUpdateSummary KosrEngine::RemoveEdge(VertexId u, VertexId v) {
  EdgeUpdateSummary summary;
  // RemoveArc range-checks (and drops self loops) itself; no preamble
  // needed — unlike SetEdgeWeight, nothing here reads the graph first.
  std::optional<Cost> old = graph_.RemoveArc(u, v);
  if (!old.has_value()) return summary;  // absent arc (or self loop): no-op
  summary.graph_changed = true;
  if (indexes_built_) {
    AbsorbLabelRepair(
        labeling_.OnEdgeRemoved(graph_, u, v, static_cast<Weight>(*old)),
        summary);
  }
  return summary;
}

void KosrEngine::SaveIndexes(std::ostream& out) const {
  if (!indexes_built_) {
    throw std::logic_error("BuildIndexes() must run before SaveIndexes()");
  }
  labeling_.Serialize(out);
  uint32_t num_categories = categories_.num_categories();
  out.write(reinterpret_cast<const char*>(&num_categories),
            sizeof(num_categories));
  for (const InvertedLabelIndex& index : inverted_) index.Serialize(out);
}

void KosrEngine::LoadIndexes(std::istream& in) {
  // Passing the expected vertex count makes Deserialize reject an absurd
  // claimed n before sizing anything from it.
  labeling_ = HubLabeling::Deserialize(in, graph_.num_vertices());
  if (labeling_.num_vertices() != graph_.num_vertices()) {
    throw std::runtime_error("index snapshot is for a different graph");
  }
  uint32_t num_categories = 0;
  in.read(reinterpret_cast<char*>(&num_categories), sizeof(num_categories));
  if (!in || num_categories != categories_.num_categories()) {
    throw std::runtime_error("index snapshot is for different categories");
  }
  inverted_.clear();
  inverted_.reserve(num_categories);
  for (uint32_t c = 0; c < num_categories; ++c) {
    inverted_.push_back(
        InvertedLabelIndex::Deserialize(in, graph_.num_vertices()));
  }
  indexes_built_ = true;
}

void KosrEngine::WriteDiskStore(const std::string& dir) const {
  if (!indexes_built_) {
    throw std::logic_error("BuildIndexes() must run before WriteDiskStore()");
  }
  DiskLabelStore::Write(dir, labeling_, categories_);
}

KosrResult KosrEngine::QueryFromDisk(const DiskLabelStore& store,
                                     const KosrQuery& query,
                                     const KosrOptions& options) {
  if (options.nn_mode != NnMode::kHopLabel) {
    throw std::invalid_argument("disk-resident queries are hop-label only");
  }
  DiskLabelStore::QueryContext ctx =
      store.Load(query.source, query.target, query.sequence);
  std::vector<const InvertedLabelIndex*> slot_indexes;
  for (const InvertedLabelIndex& idx : ctx.slot_indexes) {
    slot_indexes.push_back(&idx);
  }
  AlgoConfig config = MakeConfig(query, options);
  KosrResult result;
  switch (options.algorithm) {
    case Algorithm::kStar: {
      HopLabelNenProvider nen(&ctx.labeling, slot_indexes, query.target,
                              options.filter);
      result = RunStarKosr(config, nen);
      break;
    }
    case Algorithm::kKpne: {
      HopLabelNnProvider nn(&ctx.labeling, slot_indexes, query.target,
                            options.filter);
      result = RunKpne(config, nn);
      break;
    }
    case Algorithm::kPruning: {
      HopLabelNnProvider nn(&ctx.labeling, slot_indexes, query.target,
                            options.filter);
      result = RunPruningKosr(config, nn);
      break;
    }
  }
  result.stats.total_time_s += ctx.load_seconds;
  return result;
}

}  // namespace kosr
