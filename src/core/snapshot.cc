#include "src/core/snapshot.h"

#include <stdexcept>

#include "src/core/engine.h"
#include "src/obs/counters.h"

namespace kosr {

KosrResult EngineSnapshot::Query(const KosrQuery& query,
                                 const KosrOptions& options,
                                 QueryContext* ctx) const {
  ValidateKosrQuery(query, *categories_);
  if (options.nn_mode == NnMode::kHopLabel && !indexes_built_) {
    throw std::logic_error("BuildIndexes() must run before hop-label queries");
  }
  std::vector<const InvertedLabelIndex*> local_slots;
  std::vector<const InvertedLabelIndex*>& slot_indexes =
      ctx != nullptr ? ctx->slot_indexes : local_slots;
  slot_indexes.clear();
  if (options.nn_mode == NnMode::kHopLabel) {
    for (CategoryId c : query.sequence) {
      slot_indexes.push_back(inverted_[c].get());
    }
  }
  KosrResult result =
      RunQueryWithIndexes(*graph_, *categories_, *labeling_, slot_indexes,
                          query, options,
                          ctx != nullptr ? &ctx->scratch : nullptr);
  if (ctx != nullptr) {
    KOSR_COUNT_MAX(kScratchPeakWitnesses, ctx->scratch.pool.size());
  }
  if (options.reconstruct_paths) {
    for (SequencedRoute& route : result.routes) {
      route.path = ReconstructWitnessPath(*graph_, *labeling_, indexes_built_,
                                          route.witness);
    }
  }
  return result;
}

}  // namespace kosr
