#ifndef KOSR_CORE_BATCH_H_
#define KOSR_CORE_BATCH_H_

#include <cstdint>
#include <vector>

#include "src/core/engine.h"
#include "src/core/query.h"

namespace kosr {

/// Aggregate outcome of a query batch (the unit the paper's evaluation
/// reports: 50 random query instances, average query time).
struct BatchResult {
  std::vector<KosrResult> results;  ///< One per query, input order.
  double wall_seconds = 0;          ///< End-to-end batch wall time.
  QueryStats aggregate;             ///< Element-wise sum over all queries.

  double AvgQueryMillis() const {
    return results.empty() ? 0
                           : aggregate.total_time_s * 1e3 / results.size();
  }
};

/// Answers a batch of KOSR queries, optionally in parallel.
///
/// KosrEngine::Query is const and each query builds its own provider state,
/// so concurrent queries share only the immutable graph and indexes; this
/// executor simply shards the batch over `num_threads` workers.
/// `num_threads` = 0 picks the hardware concurrency; 1 runs inline.
BatchResult RunQueryBatch(const KosrEngine& engine,
                          const std::vector<KosrQuery>& queries,
                          const KosrOptions& options = {},
                          uint32_t num_threads = 0);

}  // namespace kosr

#endif  // KOSR_CORE_BATCH_H_
