#ifndef KOSR_CORE_BATCH_H_
#define KOSR_CORE_BATCH_H_

#include <cstdint>
#include <vector>

#include "src/core/engine.h"
#include "src/core/query.h"

namespace kosr {

/// Aggregate outcome of a query batch (the unit the paper's evaluation
/// reports: 50 random query instances, average query time).
struct BatchResult {
  std::vector<KosrResult> results;  ///< One per query, input order.
  double wall_seconds = 0;          ///< End-to-end batch wall time.
  QueryStats aggregate;             ///< Element-wise sum over all queries.
  /// Per-query total-time distribution, so callers can report p50/p95/p99
  /// and not just the mean (tail latency is what a serving layer cares
  /// about; the mean hides stragglers).
  LatencyHistogram latencies;

  double AvgQueryMillis() const {
    return results.empty() ? 0
                           : aggregate.total_time_s * 1e3 / results.size();
  }
  double P50QueryMillis() const { return latencies.P50Millis(); }
  double P95QueryMillis() const { return latencies.P95Millis(); }
  double P99QueryMillis() const { return latencies.P99Millis(); }
};

/// Answers a batch of KOSR queries, optionally in parallel.
///
/// KosrEngine::Query is const and each query builds its own provider state,
/// so concurrent queries share only the immutable graph and indexes; this
/// executor simply shards the batch over `num_threads` workers.
/// `num_threads` = 0 picks the hardware concurrency; 1 runs inline.
///
/// If any query throws, the first exception is rethrown after all workers
/// stop; a shared stop flag makes the remaining workers abandon the batch
/// promptly instead of draining it. Slots the workers never reached are
/// left default-constructed (empty routes, zeroed stats).
BatchResult RunQueryBatch(const KosrEngine& engine,
                          const std::vector<KosrQuery>& queries,
                          const KosrOptions& options = {},
                          uint32_t num_threads = 0);

}  // namespace kosr

#endif  // KOSR_CORE_BATCH_H_
