#ifndef KOSR_CORE_ENGINE_H_
#define KOSR_CORE_ENGINE_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/query.h"
#include "src/core/query_context.h"
#include "src/graph/categories.h"
#include "src/graph/graph.h"
#include "src/labeling/disk_store.h"
#include "src/labeling/hub_labeling.h"
#include "src/nn/inverted_label_index.h"

namespace kosr {

class EngineSnapshot;

/// Outcome of a dynamic edge update: whether the graph mutated at all, and
/// how much incremental label repair it triggered. `labels_changed == false`
/// with `graph_changed == true` is common and useful — a weight increase on
/// an arc that lay on no shortest path repairs nothing, and (because the hub
/// order covers every vertex) certifies that no distance, unpacked path, or
/// KOSR answer changed, so callers such as the service's result cache can
/// skip invalidation entirely.
struct EdgeUpdateSummary {
  bool graph_changed = false;
  bool labels_changed = false;
  /// Vertices whose Lin / Lout label vectors the repair changed.
  uint32_t changed_in_labels = 0;
  uint32_t changed_out_labels = 0;
  /// Vertices with a changed Lin (respectively Lout) vector, sorted — the
  /// repair delta's changed lists, forwarded so callers can invalidate
  /// per-vertex state (the service's result cache) without a full flush.
  std::vector<VertexId> changed_in_vertices;
  std::vector<VertexId> changed_out_vertices;
};

/// One buffered edge mutation for KosrEngine::ApplyEdgeUpdates — the three
/// protocol verbs ADD_EDGE / SET_EDGE / REMOVE_EDGE as data.
struct EdgeUpdate {
  enum class Kind { kAddOrDecrease, kSet, kRemove };
  Kind kind = Kind::kSet;
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 0;  ///< Ignored for kRemove.
};

/// Facade that owns a graph, its category assignment, and the query indexes
/// (hub labeling + one inverted label index per category), and answers KOSR
/// queries with any of the paper's methods.
///
/// Typical use:
///
///   KosrEngine engine(std::move(graph), std::move(categories));
///   engine.BuildIndexes();
///   KosrResult r = engine.Query({s, t, {MA, RE, CI}, 3});
///
class KosrEngine {
 public:
  KosrEngine(Graph graph, CategoryTable categories);

  /// Builds the hub labeling (degree order) and all inverted label indexes.
  /// `num_threads` parallelizes the whole pipeline — the degree-order sort,
  /// the rank-batched hub-label construction, and the per-category inverted
  /// index builds (0 = hardware concurrency). The resulting indexes are
  /// byte-identical for every thread count.
  void BuildIndexes(uint32_t num_threads = 1);
  /// Same with an explicit hub order (e.g. a grid dissection order or a CH
  /// importance order — see DESIGN.md on ordering quality).
  void BuildIndexes(const std::vector<VertexId>& order,
                    uint32_t num_threads = 1);

  /// Answers a KOSR query. Categories referenced by the sequence must be
  /// non-empty; an unreachable query yields fewer than k (possibly zero)
  /// routes. Requires BuildIndexes() unless options.nn_mode == kDijkstra.
  ///
  /// `ctx` (optional) supplies reusable per-thread query scratch — callers
  /// answering many queries (service workers, benches) keep one per thread
  /// so the search hot path stops allocating. Results do not depend on it.
  KosrResult Query(const KosrQuery& query, const KosrOptions& options = {},
                   QueryContext* ctx = nullptr) const;

  /// Answers an OSR (k = 1) query with the GSP comparator.
  std::optional<SequencedRoute> QueryGsp(VertexId source, VertexId target,
                                         const CategorySequence& sequence,
                                         QueryStats* stats = nullptr) const;

  /// Expands a witness into a full vertex path using label parent pointers.
  std::vector<VertexId> ReconstructPath(
      const std::vector<VertexId>& witness) const;

  // --- Dynamic updates (Sec. IV-C) ----------------------------------------

  /// Category update: vertex gains a category; label + inverted indexes stay
  /// consistent. O(|Lin(v)| log |Ci|).
  void AddVertexCategory(VertexId v, CategoryId c);
  /// Category update: vertex loses a category.
  void RemoveVertexCategory(VertexId v, CategoryId c);
  /// Graph update: inserts arc (u, v, w) or lowers an existing arc's weight
  /// in place (Graph::AddOrDecreaseArc — repeated updates to the same edge
  /// do not grow the arc lists), incrementally repairs the labeling
  /// (resumed pruned searches), and patches only the inverted lists of hubs
  /// whose labels actually changed. A no-op update (w >= the current
  /// weight) touches nothing (`graph_changed == false`), so callers (the
  /// service's cache invalidation) can skip their own reactions too.
  EdgeUpdateSummary AddOrDecreaseEdge(VertexId u, VertexId v, Weight w);

  /// Graph update: sets the u->v weight to exactly `w` — decrease, insert,
  /// or *increase* — and incrementally repairs the labeling either way
  /// (resumed searches for a decrease; affected-hub re-searches for an
  /// increase, byte-identical to a from-scratch rebuild with the same hub
  /// order — see DESIGN.md, "Dynamic updates"). Inverted indexes are
  /// patched incrementally from the repair delta. Setting the current
  /// weight again is a no-op. Throws std::invalid_argument for
  /// out-of-range endpoints; self loops are dropped.
  EdgeUpdateSummary SetEdgeWeight(VertexId u, VertexId v, Weight w);

  /// Graph update: deletes arc (u, v) (all parallels) and incrementally
  /// repairs the labeling and inverted indexes the same way. Removing an
  /// absent arc is a no-op.
  EdgeUpdateSummary RemoveEdge(VertexId u, VertexId v);

  /// Applies a whole batch of edge updates with ONE canonical repair
  /// (ISSUE 8): every graph mutation is applied first (recording each
  /// arc's pre-batch weight on first touch), per-arc updates coalesce to
  /// their net effect (arcs that end where they started repair nothing),
  /// and the surviving net changes run one batched affected-hub repair —
  /// the union of the per-update affected sets, each hub re-searched once.
  /// The resulting labels are byte-identical to applying the updates one
  /// at a time (and to a from-scratch rebuild). The summary's
  /// graph_changed reports whether any mutation touched the graph object;
  /// the label fields describe the single batched repair.
  EdgeUpdateSummary ApplyEdgeUpdates(std::span<const EdgeUpdate> updates);

  // --- Index persistence ----------------------------------------------------

  /// Saves the built indexes (hub labeling + all inverted label indexes) so
  /// a later process can LoadIndexes() instead of rebuilding. Orthogonal to
  /// the per-query disk store: this is a bulk snapshot for in-memory use.
  void SaveIndexes(std::ostream& out) const;
  /// Restores indexes saved by SaveIndexes. The graph and category table
  /// must be the ones the snapshot was built from.
  void LoadIndexes(std::istream& in);

  // --- Disk-resident mode (SK-DB) -----------------------------------------

  /// Persists indexes to a directory for SK-DB queries.
  void WriteDiskStore(const std::string& dir) const;
  /// Answers a StarKOSR query loading the working set from a disk store
  /// written by WriteDiskStore. The load time is added to stats.total_time_s
  /// (and reported in stats.estimation_time_s = 0; see QueryStats).
  static KosrResult QueryFromDisk(const DiskLabelStore& store,
                                  const KosrQuery& query,
                                  const KosrOptions& options = {});

  // --- Snapshot publication (ISSUE 8) --------------------------------------

  /// Seals the engine's current query-facing state into an immutable
  /// EngineSnapshot tagged with `version`. O(num_categories) — the parts
  /// are shared, not copied; a later mutation of this engine copies the
  /// affected part first (copy-on-write), so the snapshot stays frozen.
  std::shared_ptr<const EngineSnapshot> SealSnapshot(uint64_t version) const;

  // --- Accessors -----------------------------------------------------------

  const Graph& graph() const { return *graph_; }
  const CategoryTable& categories() const { return *categories_; }
  const HubLabeling& labeling() const { return *labeling_; }
  const InvertedLabelIndex& inverted(CategoryId c) const {
    return *inverted_[c];
  }
  bool indexes_built() const { return indexes_built_; }
  double label_build_seconds() const { return label_build_seconds_; }
  double inverted_build_seconds() const { return inverted_build_seconds_; }

 private:
  /// Applies a label-repair delta to the per-category inverted indexes
  /// (patching only the lists of hubs whose member labels changed) and
  /// folds it into `summary`.
  void AbsorbLabelRepair(LabelRepairDelta delta, EdgeUpdateSummary& summary);

  // Copy-on-write accessors for the mutating entry points: each clones its
  // part iff a sealed snapshot still shares it (use_count > 1), so frozen
  // snapshots never observe a mutation. Safe without the snapshot domain's
  // locks: new references to these parts are only ever created on the
  // owning (publisher) thread via SealSnapshot / engine copies, so a
  // use_count of 1 cannot concurrently grow — it can only shrink when a
  // retired snapshot is destroyed, which at worst forces a harmless extra
  // clone.
  Graph& MutableGraph();
  CategoryTable& MutableCategories();
  HubLabeling& MutableLabeling();
  InvertedLabelIndex& MutableInverted(CategoryId c);

  std::shared_ptr<Graph> graph_;
  std::shared_ptr<CategoryTable> categories_;
  std::shared_ptr<HubLabeling> labeling_;
  std::vector<std::shared_ptr<InvertedLabelIndex>> inverted_;
  bool indexes_built_ = false;
  double label_build_seconds_ = 0;
  double inverted_build_seconds_ = 0;
};

/// Dispatches one KOSR query against explicit index parts (shared by the
/// in-memory engine, sealed snapshots, and the disk-resident path).
/// `slot_indexes` holds one inverted index per sequence slot (empty for
/// Dijkstra-mode queries, which never read it).
KosrResult RunQueryWithIndexes(
    const Graph& graph, const CategoryTable& categories,
    const HubLabeling& labeling,
    const std::vector<const InvertedLabelIndex*>& slot_indexes,
    const KosrQuery& query, const KosrOptions& options, KosrScratch* scratch);

/// Validates a query against the category table (range checks on source,
/// target, k, and every sequence entry; throws std::invalid_argument).
/// Exposed so EngineSnapshot::Query applies exactly the engine's rules.
void ValidateKosrQuery(const KosrQuery& query, const CategoryTable& categories);

/// Expands a witness into a full vertex path using label parent pointers
/// (or Dijkstra when no labeling is built). Shared by KosrEngine and
/// EngineSnapshot.
std::vector<VertexId> ReconstructWitnessPath(const Graph& graph,
                                             const HubLabeling& labeling,
                                             bool indexes_built,
                                             const std::vector<VertexId>& witness);

}  // namespace kosr

#endif  // KOSR_CORE_ENGINE_H_
