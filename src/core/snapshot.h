#ifndef KOSR_CORE_SNAPSHOT_H_
#define KOSR_CORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/query.h"
#include "src/core/query_context.h"
#include "src/graph/categories.h"
#include "src/graph/graph.h"
#include "src/labeling/hub_labeling.h"
#include "src/nn/inverted_label_index.h"

namespace kosr {

/// Immutable, versioned view of an engine's query-facing state (ISSUE 8):
/// graph weights, category table, sealed hub labeling, and the per-category
/// inverted indexes — everything a KOSR query reads. Snapshots are sealed
/// by KosrEngine::SealSnapshot and published by the service's
/// SnapshotDomain via one atomic pointer swap; readers run whole queries
/// against a pinned snapshot with no locks and no per-query reference
/// counting (reclamation is epoch-based, see DESIGN.md, "Snapshot
/// publication").
///
/// The parts are shared with the engine that sealed them; the engine's
/// copy-on-write mutators clone any part a live snapshot still references
/// before mutating it, so everything reachable from here is frozen for the
/// snapshot's whole lifetime. Every member function is const and
/// thread-safe by immutability.
class EngineSnapshot {
 public:
  EngineSnapshot(
      uint64_t version, bool indexes_built,
      std::shared_ptr<const Graph> graph,
      std::shared_ptr<const CategoryTable> categories,
      std::shared_ptr<const HubLabeling> labeling,
      std::vector<std::shared_ptr<const InvertedLabelIndex>> inverted)
      : version_(version),
        indexes_built_(indexes_built),
        graph_(std::move(graph)),
        categories_(std::move(categories)),
        labeling_(std::move(labeling)),
        inverted_(std::move(inverted)) {}

  /// Monotonically increasing publication version (1 = the initial seal).
  uint64_t version() const { return version_; }
  bool indexes_built() const { return indexes_built_; }

  const Graph& graph() const { return *graph_; }
  const CategoryTable& categories() const { return *categories_; }
  const HubLabeling& labeling() const { return *labeling_; }
  const InvertedLabelIndex& inverted(CategoryId c) const {
    return *inverted_[c];
  }
  uint32_t num_categories() const { return categories_->num_categories(); }

  /// Answers a KOSR query against this frozen state — identical semantics
  /// (validation, dispatch, path reconstruction) to KosrEngine::Query on
  /// the engine state this snapshot was sealed from.
  KosrResult Query(const KosrQuery& query, const KosrOptions& options = {},
                   QueryContext* ctx = nullptr) const;

 private:
  uint64_t version_;
  bool indexes_built_;
  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const CategoryTable> categories_;
  std::shared_ptr<const HubLabeling> labeling_;
  std::vector<std::shared_ptr<const InvertedLabelIndex>> inverted_;
};

}  // namespace kosr

#endif  // KOSR_CORE_SNAPSHOT_H_
