#ifndef KOSR_DURABILITY_CHECKPOINT_H_
#define KOSR_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/core/engine.h"

namespace kosr::durability {

/// Failpoint inside the checkpoint temp-dir write, after the graph file but
/// before the manifest — a crash here must leave the previous checkpoint
/// (and the journal) intact.
inline constexpr char kFailpointMidCheckpoint[] = "checkpoint-mid-write";
/// Failpoint after the checkpoint directory swap but before the journal
/// truncation — a crash here must recover from the NEW checkpoint plus an
/// un-truncated journal (replay is idempotent past the checkpoint seq).
inline constexpr char kFailpointBeforeTruncate[] = "checkpoint-before-truncate";

/// On-disk engine snapshot (ISSUE 9): `dir`/checkpoint/ holding the graph
/// (DIMACS), the category table, the built indexes (SaveIndexes bytes), and
/// a MANIFEST recording the last applied journal sequence plus the size and
/// CRC-32C of every file. Publication is atomic: everything is written to
/// `dir`/checkpoint.tmp/, fsynced, and renamed into place (any previous
/// checkpoint is parked at checkpoint.old until the swap completes, so a
/// crash at any instant leaves at least one complete checkpoint visible).

/// Writes a checkpoint of `engine` whose manifest claims every journal
/// record with sequence <= `seq` is folded in. `engine` must not mutate
/// during the call (the service holds its publish lock). Throws
/// std::runtime_error on I/O failure — the previous checkpoint survives.
void WriteCheckpoint(const std::string& dir, const KosrEngine& engine,
                     uint64_t seq);

struct LoadedCheckpoint {
  std::unique_ptr<KosrEngine> engine;  ///< Indexes already loaded.
  uint64_t seq = 0;  ///< Journal records <= seq are already applied.
};

/// Loads the newest complete checkpoint under `dir`: checkpoint/ if its
/// manifest validates, else checkpoint.old/ (a crash between the park and
/// the swap). Returns nullopt when neither directory exists — a cold
/// start. A checkpoint that is present but fails validation (bad manifest,
/// size or CRC mismatch, unreadable file) throws std::runtime_error:
/// serving stale or damaged state silently is worse than refusing to start.
std::optional<LoadedCheckpoint> LoadCheckpoint(const std::string& dir);

}  // namespace kosr::durability

#endif  // KOSR_DURABILITY_CHECKPOINT_H_
