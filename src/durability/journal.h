#ifndef KOSR_DURABILITY_JOURNAL_H_
#define KOSR_DURABILITY_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace kosr::durability {

/// When journal appends reach the disk (ISSUE 9). The append itself always
/// issues the write(2) before the caller proceeds, so a surviving kernel
/// (process kill, OOM) loses nothing acked; the policy decides when
/// fsync(2) makes records survive power loss too.
enum class FsyncPolicy : uint8_t {
  kAlways,    ///< fsync before any record's effects are acknowledged applied
              ///< (per record when applied synchronously; one fsync per
              ///< batch when updates ride a batch window).
  kInterval,  ///< group commit: a background thread fsyncs every interval.
  kNever,     ///< no fsync; the OS flushes at its leisure.
};

std::optional<FsyncPolicy> ParseFsyncPolicy(const std::string& text);
const char* FsyncPolicyName(FsyncPolicy policy);

/// Failpoint on the append path, between write(2) and the policy fsync.
inline constexpr char kFailpointAfterAppend[] = "journal-after-append";

/// One logged mutation — the five update protocol verbs as data.
/// `a`/`b`/`w` are (tail, head, weight) for edge records and
/// (vertex, category, unused) for category records.
struct JournalRecord {
  enum class Type : uint8_t {
    kAddOrDecreaseEdge = 1,  // ADD_EDGE
    kSetEdge = 2,            // SET_EDGE
    kRemoveEdge = 3,         // REMOVE_EDGE
    kAddCategory = 4,        // ADD_CAT
    kRemoveCategory = 5,     // REMOVE_CAT
  };
  uint64_t seq = 0;  ///< Assigned by Append; contiguous within the journal.
  Type type = Type::kSetEdge;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t w = 0;
};

/// Result of scanning a journal file.
struct JournalScan {
  std::vector<JournalRecord> records;
  /// Bytes covering the header and every valid record; a torn tail (if
  /// any) starts here.
  uint64_t valid_bytes = 0;
  /// True when an incomplete/corrupt FINAL record was dropped (crash mid
  /// append). Interior corruption — a bad record with valid-looking data
  /// after it — is never tolerated and throws instead.
  bool tail_truncated = false;
};

/// Append-only write-ahead log of update records (ISSUE 9 tentpole).
///
/// File format (`journal.log`, little-endian):
///
///   header:  8-byte magic "KOSRWAL1"
///   record:  u32 body_len | u32 crc32c(body) | body
///   body:    u64 seq | u8 type | u32 a | u32 b | u32 w
///
/// Records carry contiguous sequence numbers; a checkpoint stores the last
/// applied seq and TruncateThrough drops everything at or below it
/// (atomically, via rewrite + rename, preserving any records a concurrent
/// writer appended past the checkpoint). Torn tails are truncated on open;
/// interior corruption refuses to open.
///
/// Thread-safe: appends, syncs, and truncation serialize on an internal
/// leaf mutex (callers hold service locks above it, never the reverse).
class UpdateJournal {
 public:
  /// Opens (creating if needed) `dir`/journal.log. Existing records are
  /// validated — torn tail truncated in place, interior corruption throws
  /// std::runtime_error. Sequence numbers continue from
  /// max(last record in file, `base_seq`). With kInterval, `interval_s`
  /// bounds how long an unsynced record may linger.
  UpdateJournal(const std::string& dir, FsyncPolicy policy,
                double interval_s, uint64_t base_seq);
  ~UpdateJournal();

  UpdateJournal(const UpdateJournal&) = delete;
  UpdateJournal& operator=(const UpdateJournal&) = delete;

  static std::string PathFor(const std::string& dir);
  /// Validates and decodes `path`. Returns all valid records; throws
  /// std::runtime_error on interior corruption or a bad header. A missing
  /// file scans as empty.
  static JournalScan Scan(const std::string& path);

  /// Assigns the next sequence number, frames the record, and write(2)s it
  /// (flushed to the kernel, not fsynced). Returns the assigned seq.
  uint64_t Append(JournalRecord record) KOSR_EXCLUDES(mutex_);
  /// fsyncs now, regardless of policy.
  void Sync() KOSR_EXCLUDES(mutex_);
  /// fsyncs iff the policy is kAlways — the ApplyBatch hook ("one fsync
  /// covers a whole batch").
  void SyncIfAlways() {
    if (policy_ == FsyncPolicy::kAlways) Sync();
  }
  /// Atomically drops every record with seq <= `seq` (checkpoint
  /// truncation): survivors are rewritten to a temp file which replaces
  /// the journal by rename, so a crash leaves either the old or the new
  /// journal, never a partial one.
  void TruncateThrough(uint64_t seq) KOSR_EXCLUDES(mutex_);

  FsyncPolicy policy() const { return policy_; }
  const std::string& path() const { return path_; }
  uint64_t last_sequence() const {
    return last_seq_hint_.load(std::memory_order_relaxed);
  }
  // Lock-free gauges for METRICS.
  uint64_t size_bytes() const {
    return size_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t appends() const { return appends_.load(std::memory_order_relaxed); }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  uint64_t truncations() const {
    return truncations_.load(std::memory_order_relaxed);
  }

 private:
  void SyncLocked() KOSR_REQUIRES(mutex_);
  void IntervalLoop() KOSR_EXCLUDES(mutex_);

  const std::string path_;
  const FsyncPolicy policy_;
  const double interval_s_;

  Mutex mutex_;
  int fd_ KOSR_GUARDED_BY(mutex_) = -1;
  uint64_t last_seq_ KOSR_GUARDED_BY(mutex_) = 0;
  bool dirty_ KOSR_GUARDED_BY(mutex_) = false;
  bool stopping_ KOSR_GUARDED_BY(mutex_) = false;
  CondVar interval_cv_;
  std::thread interval_thread_;

  // Mirrors of guarded state for lock-free gauge reads.
  std::atomic<uint64_t> last_seq_hint_{0};
  std::atomic<uint64_t> size_bytes_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> truncations_{0};
};

}  // namespace kosr::durability

#endif  // KOSR_DURABILITY_JOURNAL_H_
