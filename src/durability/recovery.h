#ifndef KOSR_DURABILITY_RECOVERY_H_
#define KOSR_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/core/engine.h"
#include "src/durability/journal.h"

namespace kosr::durability {

struct RecoveryOptions {
  std::string dir;  ///< The --journal directory.
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  /// Group-commit interval for FsyncPolicy::kInterval.
  double fsync_interval_s = 0.05;
};

struct RecoveryStats {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_seq = 0;
  uint64_t replayed_records = 0;
  /// Records skipped because the checkpoint already contained them (a
  /// crash between checkpoint publication and journal truncation).
  uint64_t skipped_records = 0;
  bool tail_truncated = false;
  double checkpoint_load_s = 0;
  double replay_s = 0;
};

struct RecoveredState {
  std::unique_ptr<KosrEngine> engine;  ///< Caught up through the journal.
  std::unique_ptr<UpdateJournal> journal;  ///< Open; sequences continue.
  RecoveryStats stats;
};

/// Brings a serving engine back after a crash or restart (ISSUE 9):
///
///   1. Load the newest complete checkpoint under `options.dir`, if any
///      (a corrupt one throws — see LoadCheckpoint). Without one,
///      `seed_engine` supplies the starting engine (the CLI's normal
///      build-or-load path) at sequence 0.
///   2. Scan the journal, drop a torn tail, and replay every record past
///      the checkpoint sequence through the engine's normal repair entry
///      points (consecutive edge records replay as one batched canonical
///      repair), so recovered labels are byte-identical to having applied
///      the updates live. Interior journal corruption or a sequence gap
///      between checkpoint and journal throws std::runtime_error.
///   3. Open the journal for appending, sequences continuing after the
///      last replayed record.
///
/// `seed_engine` is only invoked when no checkpoint exists, so steady-state
/// restarts skip the expensive index build entirely.
RecoveredState Recover(
    const RecoveryOptions& options,
    const std::function<std::unique_ptr<KosrEngine>()>& seed_engine);

}  // namespace kosr::durability

#endif  // KOSR_DURABILITY_RECOVERY_H_
