#ifndef KOSR_DURABILITY_CRC32C_H_
#define KOSR_DURABILITY_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace kosr::durability {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum
/// ext4/iSCSI/leveldb use for record framing. Software table
/// implementation — journal records are tens of bytes, so fsync, not
/// checksumming, dominates the append path. `seed` chains partial
/// computations: Crc32c(b, n1+n2) == Crc32c(b + n1, n2, Crc32c(b, n1)).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace kosr::durability

#endif  // KOSR_DURABILITY_CRC32C_H_
