#include "src/durability/crc32c.h"

#include <array>

namespace kosr::durability {
namespace {

// Byte-wise table for the reflected Castagnoli polynomial.
constexpr uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPolyReflected : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace kosr::durability
