#include "src/durability/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "src/durability/crc32c.h"
#include "src/util/durable_file.h"
#include "src/util/failpoint.h"

namespace kosr::durability {
namespace {

constexpr char kMagic[8] = {'K', 'O', 'S', 'R', 'W', 'A', 'L', '1'};
constexpr size_t kFrameHeaderBytes = 8;  // u32 body_len + u32 crc
constexpr size_t kBodyBytes = 21;        // u64 seq + u8 type + 3 * u32
// Upper bound a scanner trusts before checksumming. Far above kBodyBytes so
// future record kinds fit, far below anything a bit flip in the length
// field would likely produce.
constexpr uint32_t kMaxBodyBytes = 4096;

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const unsigned char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

std::string EncodeBody(const JournalRecord& record) {
  std::string body;
  body.reserve(kBodyBytes);
  PutU64(body, record.seq);
  body.push_back(static_cast<char>(record.type));
  PutU32(body, record.a);
  PutU32(body, record.b);
  PutU32(body, record.w);
  return body;
}

std::string EncodeFrame(const JournalRecord& record) {
  std::string body = EncodeBody(record);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  PutU32(frame, static_cast<uint32_t>(body.size()));
  PutU32(frame, Crc32c(body.data(), body.size()));
  frame += body;
  return frame;
}

[[noreturn]] void ThrowCorrupt(const std::string& path, uint64_t offset,
                               const std::string& what) {
  throw std::runtime_error("journal " + path + " corrupt at offset " +
                           std::to_string(offset) + ": " + what);
}

void WriteFull(int fd, const char* data, size_t size,
               const std::string& path) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("journal append failed for " + path + ": " +
                               std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
}

}  // namespace

std::optional<FsyncPolicy> ParseFsyncPolicy(const std::string& text) {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "interval") return FsyncPolicy::kInterval;
  if (text == "never") return FsyncPolicy::kNever;
  return std::nullopt;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

std::string UpdateJournal::PathFor(const std::string& dir) {
  return (std::filesystem::path(dir) / "journal.log").string();
}

JournalScan UpdateJournal::Scan(const std::string& path) {
  JournalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) return scan;  // missing journal == empty journal
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.empty()) return scan;

  if (data.size() < sizeof(kMagic)) {
    // A crash during the very first header write: nothing usable follows,
    // so this is a torn tail of an empty journal.
    scan.tail_truncated = true;
    return scan;
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    ThrowCorrupt(path, 0, "bad magic (not a KOSR journal)");
  }

  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  uint64_t offset = sizeof(kMagic);
  while (offset < data.size()) {
    const uint64_t remaining = data.size() - offset;
    if (remaining < kFrameHeaderBytes) {
      scan.tail_truncated = true;  // torn mid frame header
      break;
    }
    const uint32_t body_len = GetU32(bytes + offset);
    const uint32_t crc = GetU32(bytes + offset + 4);
    if (body_len > kMaxBodyBytes) {
      // A length this large was never written; the length field itself is
      // damaged. No way to resynchronise — refuse.
      ThrowCorrupt(path, offset, "record length " + std::to_string(body_len) +
                                     " exceeds cap");
    }
    if (remaining < kFrameHeaderBytes + body_len) {
      scan.tail_truncated = true;  // torn mid body
      break;
    }
    const unsigned char* body = bytes + offset + kFrameHeaderBytes;
    const uint64_t frame_end = offset + kFrameHeaderBytes + body_len;
    if (Crc32c(body, body_len) != crc) {
      if (frame_end == data.size()) {
        // Final frame, bad checksum: a crash can persist the length page
        // but not the body page, so a complete-looking last frame with a
        // CRC mismatch is still a torn tail.
        scan.tail_truncated = true;
        break;
      }
      ThrowCorrupt(path, offset, "checksum mismatch with records following");
    }
    if (body_len != kBodyBytes) {
      ThrowCorrupt(path, offset, "unexpected body length " +
                                     std::to_string(body_len));
    }
    JournalRecord record;
    record.seq = GetU64(body);
    const uint8_t type = body[8];
    if (type < 1 || type > 5) {
      ThrowCorrupt(path, offset, "unknown record type " +
                                     std::to_string(type));
    }
    record.type = static_cast<JournalRecord::Type>(type);
    record.a = GetU32(body + 9);
    record.b = GetU32(body + 13);
    record.w = GetU32(body + 17);
    if (!scan.records.empty() &&
        record.seq != scan.records.back().seq + 1) {
      ThrowCorrupt(path, offset, "sequence " + std::to_string(record.seq) +
                                     " after " +
                                     std::to_string(scan.records.back().seq));
    }
    scan.records.push_back(record);
    offset = frame_end;
  }
  scan.valid_bytes = offset;
  return scan;
}

UpdateJournal::UpdateJournal(const std::string& dir, FsyncPolicy policy,
                             double interval_s, uint64_t base_seq)
    : path_(PathFor(dir)), policy_(policy), interval_s_(interval_s) {
  std::filesystem::create_directories(dir);
  JournalScan scan = Scan(path_);  // throws on interior corruption
  uint64_t size = scan.valid_bytes;
  if (scan.valid_bytes < sizeof(kMagic)) {
    // Fresh (or torn-before-header) journal: write the header from scratch.
    std::ofstream header(path_, std::ios::binary | std::ios::trunc);
    header.write(kMagic, sizeof(kMagic));
    header.flush();
    if (!header) {
      throw std::runtime_error("cannot create journal " + path_);
    }
    header.close();
    FsyncPath(path_);
    FsyncParentDir(path_);
    size = sizeof(kMagic);
  } else if (scan.tail_truncated) {
    if (::truncate(path_.c_str(), static_cast<off_t>(scan.valid_bytes)) !=
        0) {
      throw std::runtime_error("cannot truncate torn journal tail of " +
                               path_ + ": " + std::strerror(errno));
    }
    FsyncPath(path_);
  }

  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open journal " + path_ + ": " +
                             std::strerror(errno));
  }
  last_seq_ = scan.records.empty() ? base_seq
                                   : std::max(base_seq,
                                              scan.records.back().seq);
  last_seq_hint_.store(last_seq_, std::memory_order_relaxed);
  size_bytes_.store(size, std::memory_order_relaxed);

  if (policy_ == FsyncPolicy::kInterval && interval_s_ > 0) {
    interval_thread_ = std::thread([this] { IntervalLoop(); });
  }
}

UpdateJournal::~UpdateJournal() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  interval_cv_.NotifyAll();
  if (interval_thread_.joinable()) interval_thread_.join();
  MutexLock lock(mutex_);
  // Clean shutdown persists whatever the policy left unsynced — kNever
  // opted out of durability entirely, so it alone skips the final fsync.
  if (dirty_ && policy_ != FsyncPolicy::kNever) SyncLocked();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

uint64_t UpdateJournal::Append(JournalRecord record) {
  MutexLock lock(mutex_);
  record.seq = last_seq_ + 1;
  const std::string frame = EncodeFrame(record);
  WriteFull(fd_, frame.data(), frame.size(), path_);
  last_seq_ = record.seq;
  last_seq_hint_.store(last_seq_, std::memory_order_relaxed);
  size_bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  appends_.fetch_add(1, std::memory_order_relaxed);
  dirty_ = true;
  KOSR_FAILPOINT(kFailpointAfterAppend);
  return record.seq;
}

void UpdateJournal::Sync() {
  MutexLock lock(mutex_);
  SyncLocked();
}

void UpdateJournal::SyncLocked() {
  if (!dirty_) return;
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("journal fsync failed for " + path_ + ": " +
                             std::strerror(errno));
  }
  dirty_ = false;
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
}

void UpdateJournal::TruncateThrough(uint64_t seq) {
  MutexLock lock(mutex_);
  // All appends went through write(2) under this mutex, so a read sees
  // every record regardless of fsync state (page cache coherence).
  JournalScan scan = Scan(path_);
  std::string rewritten(kMagic, sizeof(kMagic));
  for (const JournalRecord& record : scan.records) {
    // Keep records a concurrent buffered append slipped in after the
    // checkpoint captured `seq`; dropping them would lose acked updates.
    if (record.seq > seq) rewritten += EncodeFrame(record);
  }
  const std::string tmp = path_ + ".new";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(rewritten.data(),
              static_cast<std::streamsize>(rewritten.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("cannot rewrite journal " + tmp);
    }
  }
  FsyncPath(tmp);
  if (::close(fd_) != 0) {
    fd_ = -1;
    throw std::runtime_error("journal close failed for " + path_ + ": " +
                             std::strerror(errno));
  }
  fd_ = -1;
  AtomicRename(tmp, path_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw std::runtime_error("cannot reopen journal " + path_ + ": " +
                             std::strerror(errno));
  }
  size_bytes_.store(rewritten.size(), std::memory_order_relaxed);
  truncations_.fetch_add(1, std::memory_order_relaxed);
  dirty_ = false;  // the rewrite was fsynced before the rename
}

void UpdateJournal::IntervalLoop() {
  MutexLock lock(mutex_);
  while (!stopping_) {
    interval_cv_.WaitFor(mutex_, interval_s_);
    if (stopping_) break;
    if (dirty_) SyncLocked();
  }
}

}  // namespace kosr::durability
