#include "src/durability/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/durability/crc32c.h"
#include "src/graph/io.h"
#include "src/util/durable_file.h"
#include "src/util/failpoint.h"

namespace kosr::durability {
namespace {

namespace fs = std::filesystem;

constexpr char kManifestMagic[] = "KOSRCKPT1";
constexpr const char* kFiles[] = {"graph.gr", "cats.txt", "indexes.bin"};

struct FileDigest {
  uint64_t size = 0;
  uint32_t crc = 0;
};

FileDigest DigestFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot read " + path.string());
  }
  FileDigest digest;
  std::vector<char> buffer(1 << 16);
  while (in) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const auto got = static_cast<size_t>(in.gcount());
    digest.crc = Crc32c(buffer.data(), got, digest.crc);
    digest.size += got;
  }
  return digest;
}

struct Manifest {
  uint64_t seq = 0;
  uint32_t num_vertices = 0;
  uint32_t num_categories = 0;
  std::vector<std::pair<std::string, FileDigest>> files;
};

void WriteManifest(const fs::path& dir, const Manifest& manifest) {
  AtomicFileWriter writer((dir / "MANIFEST").string());
  std::ostream& out = writer.stream();
  out << kManifestMagic << "\n";
  out << "seq " << manifest.seq << "\n";
  out << "vertices " << manifest.num_vertices << "\n";
  out << "categories " << manifest.num_categories << "\n";
  for (const auto& [name, digest] : manifest.files) {
    out << "file " << name << " " << digest.size << " " << digest.crc
        << "\n";
  }
  writer.Commit();
}

Manifest ReadManifest(const fs::path& dir) {
  const fs::path path = dir / "MANIFEST";
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("checkpoint " + dir.string() +
                             ": missing MANIFEST");
  }
  std::string magic;
  if (!std::getline(in, magic) || magic != kManifestMagic) {
    throw std::runtime_error("checkpoint " + dir.string() +
                             ": bad MANIFEST magic");
  }
  Manifest manifest;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "seq") {
      fields >> manifest.seq;
    } else if (key == "vertices") {
      fields >> manifest.num_vertices;
    } else if (key == "categories") {
      fields >> manifest.num_categories;
    } else if (key == "file") {
      std::string name;
      FileDigest digest;
      fields >> name >> digest.size >> digest.crc;
      manifest.files.emplace_back(name, digest);
    } else {
      throw std::runtime_error("checkpoint " + dir.string() +
                               ": unknown MANIFEST key '" + key + "'");
    }
    if (!fields) {
      throw std::runtime_error("checkpoint " + dir.string() +
                               ": malformed MANIFEST line '" + line + "'");
    }
  }
  return manifest;
}

LoadedCheckpoint LoadFrom(const fs::path& dir) {
  const Manifest manifest = ReadManifest(dir);
  if (manifest.files.size() != std::size(kFiles)) {
    throw std::runtime_error("checkpoint " + dir.string() +
                             ": MANIFEST lists " +
                             std::to_string(manifest.files.size()) +
                             " files, expected " +
                             std::to_string(std::size(kFiles)));
  }
  for (const auto& [name, expected] : manifest.files) {
    const FileDigest actual = DigestFile(dir / name);
    if (actual.size != expected.size || actual.crc != expected.crc) {
      throw std::runtime_error(
          "checkpoint " + dir.string() + ": " + name +
          " fails validation (size " + std::to_string(actual.size) + "/" +
          std::to_string(expected.size) + ", crc " +
          std::to_string(actual.crc) + "/" + std::to_string(expected.crc) +
          ")");
    }
  }

  Graph graph = LoadDimacsGraph((dir / "graph.gr").string());
  CategoryTable categories =
      LoadCategories((dir / "cats.txt").string(), manifest.num_vertices,
                     manifest.num_categories);
  LoadedCheckpoint loaded;
  loaded.engine =
      std::make_unique<KosrEngine>(std::move(graph), std::move(categories));
  std::ifstream indexes(dir / "indexes.bin", std::ios::binary);
  if (!indexes) {
    throw std::runtime_error("checkpoint " + dir.string() +
                             ": cannot read indexes.bin");
  }
  loaded.engine->LoadIndexes(indexes);
  loaded.seq = manifest.seq;
  return loaded;
}

}  // namespace

void WriteCheckpoint(const std::string& dir, const KosrEngine& engine,
                     uint64_t seq) {
  const fs::path base(dir);
  fs::create_directories(base);
  const fs::path tmp = base / "checkpoint.tmp";
  const fs::path final_dir = base / "checkpoint";
  const fs::path old_dir = base / "checkpoint.old";

  fs::remove_all(tmp);  // stale leftover from an interrupted attempt
  fs::create_directories(tmp);

  SaveDimacsGraph(engine.graph(), (tmp / "graph.gr").string());
  KOSR_FAILPOINT(kFailpointMidCheckpoint);
  SaveCategories(engine.categories(), (tmp / "cats.txt").string());
  {
    std::ofstream indexes(tmp / "indexes.bin", std::ios::binary);
    engine.SaveIndexes(indexes);
    indexes.flush();
    if (!indexes) {
      throw std::runtime_error("checkpoint: cannot write " +
                               (tmp / "indexes.bin").string());
    }
  }

  Manifest manifest;
  manifest.seq = seq;
  manifest.num_vertices = engine.categories().num_vertices();
  manifest.num_categories = engine.categories().num_categories();
  for (const char* name : kFiles) {
    manifest.files.emplace_back(name, DigestFile(tmp / name));
  }
  WriteManifest(tmp, manifest);  // atomic; written last, so its presence
                                 // implies the data files are complete
  for (const char* name : kFiles) FsyncPath((tmp / name).string());
  FsyncPath(tmp.string());

  // Swap into place. Window analysis: after the park below there may be no
  // `checkpoint` until the second rename lands — LoadCheckpoint falls back
  // to `checkpoint.old` across that window.
  fs::remove_all(old_dir);
  if (fs::exists(final_dir)) {
    AtomicRename(final_dir.string(), old_dir.string());
  }
  AtomicRename(tmp.string(), final_dir.string());
  fs::remove_all(old_dir);
  FsyncPath(base.string());
}

std::optional<LoadedCheckpoint> LoadCheckpoint(const std::string& dir) {
  const fs::path base(dir);
  const fs::path final_dir = base / "checkpoint";
  const fs::path old_dir = base / "checkpoint.old";
  if (fs::exists(final_dir)) return LoadFrom(final_dir);
  if (fs::exists(old_dir)) return LoadFrom(old_dir);
  return std::nullopt;
}

}  // namespace kosr::durability
