#include "src/durability/recovery.h"

#include <chrono>
#include <stdexcept>
#include <vector>

#include "src/durability/checkpoint.h"

namespace kosr::durability {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

EdgeUpdate::Kind EdgeKindFor(JournalRecord::Type type) {
  switch (type) {
    case JournalRecord::Type::kAddOrDecreaseEdge:
      return EdgeUpdate::Kind::kAddOrDecrease;
    case JournalRecord::Type::kSetEdge:
      return EdgeUpdate::Kind::kSet;
    case JournalRecord::Type::kRemoveEdge:
      return EdgeUpdate::Kind::kRemove;
    default:
      throw std::logic_error("not an edge record");
  }
}

}  // namespace

RecoveredState Recover(
    const RecoveryOptions& options,
    const std::function<std::unique_ptr<KosrEngine>()>& seed_engine) {
  RecoveredState state;

  auto start = std::chrono::steady_clock::now();
  std::optional<LoadedCheckpoint> checkpoint = LoadCheckpoint(options.dir);
  uint64_t base_seq = 0;
  if (checkpoint) {
    state.engine = std::move(checkpoint->engine);
    base_seq = checkpoint->seq;
    state.stats.checkpoint_loaded = true;
    state.stats.checkpoint_seq = base_seq;
  } else {
    state.engine = seed_engine();
  }
  state.stats.checkpoint_load_s = SecondsSince(start);

  start = std::chrono::steady_clock::now();
  const std::string journal_path = UpdateJournal::PathFor(options.dir);
  JournalScan scan = UpdateJournal::Scan(journal_path);  // throws on
                                                         // corruption
  state.stats.tail_truncated = scan.tail_truncated;

  // Replay in sequence order through the normal repair entry points.
  // Consecutive edge records coalesce into one ApplyEdgeUpdates call (the
  // batched canonical repair — byte-identical to one-at-a-time); category
  // records flush the pending batch first so relative order is preserved.
  std::vector<EdgeUpdate> pending;
  auto flush_pending = [&] {
    if (pending.empty()) return;
    state.engine->ApplyEdgeUpdates(pending);
    pending.clear();
  };
  uint64_t last_seq = base_seq;
  for (const JournalRecord& record : scan.records) {
    if (record.seq <= base_seq) {
      // Checkpointed before the journal was truncated; replay would be
      // redundant (and for SET/REMOVE, harmlessly idempotent anyway).
      ++state.stats.skipped_records;
      continue;
    }
    if (record.seq != last_seq + 1) {
      throw std::runtime_error(
          "journal " + journal_path + ": sequence gap after checkpoint (" +
          std::to_string(last_seq) + " -> " + std::to_string(record.seq) +
          "); updates are missing, refusing to recover");
    }
    last_seq = record.seq;
    switch (record.type) {
      case JournalRecord::Type::kAddOrDecreaseEdge:
      case JournalRecord::Type::kSetEdge:
      case JournalRecord::Type::kRemoveEdge:
        pending.push_back(EdgeUpdate{EdgeKindFor(record.type), record.a,
                                     record.b, record.w});
        break;
      case JournalRecord::Type::kAddCategory:
        flush_pending();
        state.engine->AddVertexCategory(record.a, record.b);
        break;
      case JournalRecord::Type::kRemoveCategory:
        flush_pending();
        state.engine->RemoveVertexCategory(record.a, record.b);
        break;
    }
    ++state.stats.replayed_records;
  }
  flush_pending();
  state.stats.replay_s = SecondsSince(start);

  // Opening the journal truncates the torn tail (if any) on disk and
  // continues sequence numbers after everything replayed.
  state.journal = std::make_unique<UpdateJournal>(
      options.dir, options.fsync_policy, options.fsync_interval_s, last_seq);
  return state;
}

}  // namespace kosr::durability
