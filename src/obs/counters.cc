#include "src/obs/counters.h"

#include <cstdlib>
#include <cstring>

namespace kosr::obs {

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kLabelQueries:
      return "label_queries";
    case Counter::kLabelEntriesScanned:
      return "label_entries_scanned";
    case Counter::kMergeJoinCompares:
      return "merge_join_compares";
    case Counter::kGallopProbes:
      return "gallop_probes";
    case Counter::kNnCursorPops:
      return "nn_cursor_pops";
    case Counter::kPrunedRelaxations:
      return "pruned_relaxations";
    case Counter::kRepairTightnessTests:
      return "repair_tightness_tests";
    case Counter::kRepairResearches:
      return "repair_researches";
    case Counter::kScratchPeakWitnesses:
      return "scratch_peak_witnesses";
  }
  return "?";
}

namespace internal {
namespace {
bool ReadEnabledFromEnv() {
  const char* v = std::getenv("KOSR_OBS_OFF");
  // Any non-empty value other than "0" disables instrumentation.
  return v == nullptr || v[0] == '\0' || std::strcmp(v, "0") == 0;
}
}  // namespace

const bool g_enabled = ReadEnabledFromEnv();
}  // namespace internal

EngineCounters Diff(const EngineCounters& after, const EngineCounters& before) {
  EngineCounters delta;
  for (size_t i = 0; i < kNumCounters; ++i) {
    delta.slots[i] = IsMaxCounter(static_cast<Counter>(i))
                         ? after.slots[i]
                         : after.slots[i] - before.slots[i];
  }
  return delta;
}

}  // namespace kosr::obs
