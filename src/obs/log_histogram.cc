#include "src/obs/log_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace kosr::obs {

size_t LogHistogram::BucketIndex(uint64_t ns) {
  if (ns > kMaxTrackableNs) ns = kMaxTrackableNs;
  if (ns < 2 * kSubBuckets) return static_cast<size_t>(ns);  // exact range
  // Shift so the value lands in [kSubBuckets, 2*kSubBuckets): the exponent
  // group, with the surviving low bits as the sub-bucket.
  uint32_t exp = static_cast<uint32_t>(std::bit_width(ns)) -
                 (kSubBucketBits + 1);
  uint64_t sub = (ns >> exp) - kSubBuckets;
  return static_cast<size_t>(kSubBuckets + exp * kSubBuckets + sub);
}

uint64_t LogHistogram::BucketLowerBoundNs(size_t index) {
  if (index < 2 * kSubBuckets) return index;
  uint32_t exp = static_cast<uint32_t>(index / kSubBuckets) - 1;
  uint64_t sub = index % kSubBuckets;
  return (kSubBuckets + sub) << exp;
}

uint64_t LogHistogram::BucketWidthNs(size_t index) {
  if (index < 2 * kSubBuckets) return 1;
  return 1ull << (static_cast<uint32_t>(index / kSubBuckets) - 1);
}

void LogHistogram::RecordNs(uint64_t ns) {
  if (ns > kMaxTrackableNs) ns = kMaxTrackableNs;
  if (buckets_.empty()) buckets_.resize(kNumBuckets, 0);
  ++buckets_[BucketIndex(ns)];
  min_ns_ = count_ == 0 ? ns : std::min(min_ns_, ns);
  max_ns_ = count_ == 0 ? ns : std::max(max_ns_, ns);
  ++count_;
  sum_ns_ += static_cast<double>(ns);
}

void LogHistogram::Record(double seconds) {
  if (!(seconds > 0)) {  // negatives and NaN clamp to zero
    RecordNs(0);
    return;
  }
  double ns = seconds * 1e9;
  RecordNs(ns >= static_cast<double>(kMaxTrackableNs)
               ? kMaxTrackableNs
               : static_cast<uint64_t>(std::llround(ns)));
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.resize(kNumBuckets, 0);
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  min_ns_ = count_ == 0 ? other.min_ns_ : std::min(min_ns_, other.min_ns_);
  max_ns_ = count_ == 0 ? other.max_ns_ : std::max(max_ns_, other.max_ns_);
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
}

void LogHistogram::Clear() {
  buckets_.clear();
  count_ = 0;
  sum_ns_ = 0;
  min_ns_ = 0;
  max_ns_ = 0;
}

double LogHistogram::MeanSeconds() const {
  return count_ == 0 ? 0 : sum_ns_ / static_cast<double>(count_) * 1e-9;
}

double LogHistogram::MinSeconds() const {
  return static_cast<double>(min_ns_) * 1e-9;
}

double LogHistogram::MaxSeconds() const {
  return static_cast<double>(max_ns_) * 1e-9;
}

uint64_t LogHistogram::PercentileNs(double pct) const {
  if (count_ == 0) return 0;
  pct = std::clamp(pct, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(pct / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);  // nearest-rank, 1-based
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      uint64_t mid = BucketLowerBoundNs(i) + (BucketWidthNs(i) - 1) / 2;
      return std::clamp(mid, min_ns_, max_ns_);
    }
  }
  return max_ns_;  // unreachable while count_ matches the buckets
}

std::string LogHistogram::SummaryJson() const {
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"mean_ms\":" << MeanSeconds() * 1e3
     << ",\"p50_ms\":" << P50Millis() << ",\"p95_ms\":" << P95Millis()
     << ",\"p99_ms\":" << P99Millis() << "}";
  return os.str();
}

}  // namespace kosr::obs
