#include "src/obs/trace.h"

#include <sstream>

namespace kosr::obs {

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kNn:
      return "nn";
    case Stage::kEnumerate:
      return "enumerate";
    case Stage::kSerialize:
      return "serialize";
  }
  return "?";
}

std::string SlowQueryEntry::ToJson() const {
  std::ostringstream os;
  os << "{\"method\":\"" << method << "\",\"source\":" << source
     << ",\"target\":" << target << ",\"k\":" << k
     << ",\"sequence_length\":" << sequence_length
     << ",\"latency_ms\":" << latency_s * 1e3
     << ",\"cache_hit\":" << (cache_hit ? "true" : "false")
     << ",\"timed_out\":" << (timed_out ? "true" : "false")
     << ",\"stages\":{";
  bool first = true;
  for (size_t i = 0; i < kNumStages; ++i) {
    Stage stage = static_cast<Stage>(i);
    if (!stages.Recorded(stage)) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << StageName(stage) << "_ms\":" << stages.Get(stage) * 1e3;
  }
  os << "}}";
  return os.str();
}

}  // namespace kosr::obs
