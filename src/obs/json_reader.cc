#include "src/obs/json_reader.h"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace kosr::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void Fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at offset " +
                             std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail("unexpected character");
    ++pos_;
  }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = ParseString();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (Consume("true")) {
          v.bool_value = true;
        } else if (Consume("false")) {
          v.bool_value = false;
        } else {
          Fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!Consume("null")) Fail("bad literal");
        return JsonValue{};
      }
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    Expect('{');
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      v.members.emplace_back(std::move(key), ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    Expect('[');
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape");
            }
          }
          // ASCII passes through; anything wider becomes '?' — the metrics
          // surfaces emit only ASCII, the reader just must not choke.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_,
                                     v.number);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      Fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::At(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

JsonValue ParseJson(std::string_view text) { return Parser(text).Parse(); }

}  // namespace kosr::obs
