#ifndef KOSR_OBS_TRACE_H_
#define KOSR_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace kosr::obs {

/// Stages of one request's life through the service, recorded as per-query
/// spans and aggregated into per-stage LogHistograms in the registry.
/// kQueueWait and kSerialize cost two clock reads each and are recorded
/// for every request; kNn and kEnumerate require the engine's per-phase
/// timers and are recorded only for sampled queries
/// (ServiceConfig::stage_sample_every). There is no lock-wait stage:
/// queries resolve an immutable snapshot through an epoch pin and never
/// block on updates (DESIGN.md, "Snapshot publication").
enum class Stage : uint32_t {
  kQueueWait = 0,  ///< Enqueue -> dequeue by a worker.
  kNn,             ///< NN/NEN probing inside the engine (sampled).
  kEnumerate,      ///< Route enumeration = engine time minus NN (sampled).
  kSerialize,      ///< Formatting the protocol response line.
};
inline constexpr size_t kNumStages = 4;

/// Stable snake_case name for the JSON/METRICS surface.
const char* StageName(Stage s);

/// Fixed-capacity per-query span buffer: one duration slot per stage, no
/// allocation, reused across queries (it lives in QueryContext beside the
/// search scratch). A negative slot means the stage was not recorded for
/// this query (e.g. unsampled engine phases, cache hits).
struct StageTimes {
  double seconds[kNumStages] = {-1, -1, -1, -1};

  void Clear() {
    for (double& s : seconds) s = -1;
  }
  void Set(Stage stage, double value) {
    seconds[static_cast<size_t>(stage)] = value;
  }
  double Get(Stage stage) const {
    return seconds[static_cast<size_t>(stage)];
  }
  bool Recorded(Stage stage) const { return Get(stage) >= 0; }
};

/// One retained slow-query trace: the query descriptor plus its verbatim
/// stage spans, kept in the registry's ring buffer when a completed
/// request's end-to-end latency crosses the configured threshold.
struct SlowQueryEntry {
  std::string method;  ///< MethodName(algorithm, nn_mode).
  uint32_t source = 0;
  uint32_t target = 0;
  uint32_t k = 0;
  uint32_t sequence_length = 0;
  double latency_s = 0;
  bool cache_hit = false;
  bool timed_out = false;
  StageTimes stages;

  std::string ToJson() const;
};

}  // namespace kosr::obs

#endif  // KOSR_OBS_TRACE_H_
