#ifndef KOSR_OBS_LOG_HISTOGRAM_H_
#define KOSR_OBS_LOG_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kosr::obs {

/// Exact mergeable latency histogram with fixed log-scale buckets
/// (HdrHistogram-style), replacing the reservoir LatencyHistogram inside
/// the service metrics registry: percentiles stay within a fixed relative
/// error bound for *any* uptime instead of degrading into estimates once a
/// reservoir fills.
///
/// Values are nanoseconds. Bucket layout:
///   - ns < 256: one bucket per value (exact);
///   - ns >= 256: each power-of-two range [2^(e+7), 2^(e+8)) splits into
///     128 sub-buckets of width 2^e, so a bucket's width is at most 1/128
///     of its lower bound. Percentiles report the bucket midpoint, bounding
///     the relative error by 1/256 (~0.4%, comfortably under the 1% target).
/// Values above kMaxTrackableNs (~73 minutes) clamp to the top bucket.
///
/// Record is O(1) (a bit-width and two shifts), Merge is an element-wise
/// add of count arrays — per-thread or per-phase histograms fold together
/// losslessly. count/min/max are exact; mean is exact up to double
/// rounding. Not thread-safe: writers synchronize externally (the registry
/// guards its instances with a mutex).
class LogHistogram {
 public:
  static constexpr uint32_t kSubBucketBits = 7;           // 128 sub-buckets
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;
  /// Exponent groups beyond the exact range; 2^42 ns ~ 73 minutes, far past
  /// any per-request latency this service can produce (time budgets cap
  /// queries at seconds).
  static constexpr uint32_t kMaxExponent = 34;
  static constexpr uint64_t kMaxTrackableNs =
      (1ull << (kSubBucketBits + 1 + kMaxExponent)) - 1;
  static constexpr size_t kNumBuckets =
      2 * kSubBuckets + kMaxExponent * kSubBuckets;

  /// Bucket index of a nanosecond value (clamped to kMaxTrackableNs).
  static size_t BucketIndex(uint64_t ns);
  /// Smallest nanosecond value mapping to `index`.
  static uint64_t BucketLowerBoundNs(size_t index);
  /// Width of bucket `index` in nanoseconds.
  static uint64_t BucketWidthNs(size_t index);

  void RecordNs(uint64_t ns);
  /// Records a duration in seconds (negative values clamp to zero).
  void Record(double seconds);
  void Merge(const LogHistogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double MeanSeconds() const;
  double MinSeconds() const;
  double MaxSeconds() const;
  /// Nearest-rank percentile, `pct` in [0, 100]; 0 when empty. Reports the
  /// bucket midpoint clamped into [min, max] — exact for sub-256 ns values
  /// and within 1/256 relative error beyond.
  uint64_t PercentileNs(double pct) const;
  double PercentileSeconds(double pct) const {
    return static_cast<double>(PercentileNs(pct)) * 1e-9;
  }

  double P50Millis() const { return PercentileSeconds(50) * 1e3; }
  double P95Millis() const { return PercentileSeconds(95) * 1e3; }
  double P99Millis() const { return PercentileSeconds(99) * 1e3; }

  /// Same shape as LatencyHistogram::SummaryJson, so every consumer of the
  /// METRICS per-method objects keeps parsing:
  /// {"count":8,"mean_ms":1.2,"p50_ms":1.0,"p95_ms":3.1,"p99_ms":3.4}
  std::string SummaryJson() const;

 private:
  /// Lazily sized to kNumBuckets on first record: the registry holds one
  /// histogram per method and stage, and idle ones stay empty.
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ns_ = 0;  ///< double: exact counts would overflow u64 sums.
  uint64_t min_ns_ = 0;
  uint64_t max_ns_ = 0;
};

}  // namespace kosr::obs

#endif  // KOSR_OBS_LOG_HISTOGRAM_H_
