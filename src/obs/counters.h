#ifndef KOSR_OBS_COUNTERS_H_
#define KOSR_OBS_COUNTERS_H_

#include <cstddef>
#include <cstdint>

namespace kosr::obs {

/// Engine work counters (ISSUE 7): what the query/repair machinery actually
/// did, as opposed to how long it took. Each enumerator is one slot in
/// EngineCounters; CounterName() gives the stable JSON key. The catalogue
/// lives in DESIGN.md ("Observability").
enum class Counter : uint32_t {
  kLabelQueries = 0,       ///< HubLabeling::Query / QueryWithHub calls.
  kLabelEntriesScanned,    ///< Packed label entries advanced by merge-joins.
  kMergeJoinCompares,      ///< Merge-join loop iterations (key comparisons).
  kGallopProbes,           ///< lower_bound probes on the galloping path.
  kNnCursorPops,           ///< FindNN/FindNEN frontier heap pops.
  kPrunedRelaxations,      ///< Arc relaxations inside pruned searches.
  kRepairTightnessTests,   ///< Repair phase 1: per-rank tightness tests.
  kRepairResearches,       ///< Repair phase 3: re-run pruned searches.
  kScratchPeakWitnesses,   ///< High-water witness-pool size (max, not sum).
};
inline constexpr size_t kNumCounters = 9;

/// Stable snake_case name for the JSON/METRICS surface.
const char* CounterName(Counter c);

/// Counters aggregated by max instead of sum (arena high-water marks).
constexpr bool IsMaxCounter(Counter c) {
  return c == Counter::kScratchPeakWitnesses;
}

/// Plain per-thread counter slots. The hot path bumps these with ordinary
/// (non-atomic) adds — each thread owns its own instance (see TlsCounters),
/// so there is no sharing to synchronize and no cache-line ping-pong.
/// Aggregation into the shared MetricsRegistry happens once per completed
/// request (service workers) or per bench phase, via Diff().
struct EngineCounters {
  uint64_t slots[kNumCounters] = {};

  void Add(Counter c, uint64_t n) { slots[static_cast<size_t>(c)] += n; }
  void Max(Counter c, uint64_t v) {
    uint64_t& slot = slots[static_cast<size_t>(c)];
    if (v > slot) slot = v;
  }
  uint64_t Get(Counter c) const { return slots[static_cast<size_t>(c)]; }
};

namespace internal {
/// Initialized once (before main) from the KOSR_OBS_OFF environment knob;
/// read-only afterwards, so unsynchronized reads from every thread are safe.
extern const bool g_enabled;
/// One slot array per thread; zero-initialized, so thread-local access has
/// no construction guard.
inline thread_local EngineCounters tls_counters;
}  // namespace internal

/// False when the process started with KOSR_OBS_OFF=1 (the overhead smoke's
/// baseline mode): counter flushes and stage recording are skipped.
inline bool Enabled() { return internal::g_enabled; }

/// The calling thread's counter slots.
inline EngineCounters& TlsCounters() { return internal::tls_counters; }

/// Per-interval delta between two snapshots of the *same thread's* slots:
/// subtraction for sum counters, the current running value for max counters
/// (a high-water mark has no meaningful difference).
EngineCounters Diff(const EngineCounters& after, const EngineCounters& before);

}  // namespace kosr::obs

/// Hot-path counter bump: one thread-local add behind a single predictable
/// branch — no locks, no atomics, no allocation (hotpath_lint covers the
/// instrumented functions). Callers accumulate loop-local counts into a
/// register and flush once per call, so the macro does not sit inside the
/// innermost loops.
#define KOSR_COUNT(counter, n)                                       \
  do {                                                               \
    if (::kosr::obs::Enabled()) {                                    \
      ::kosr::obs::TlsCounters().Add(::kosr::obs::Counter::counter,  \
                                     static_cast<uint64_t>(n));      \
    }                                                                \
  } while (0)

/// Max-merge variant for high-water counters.
#define KOSR_COUNT_MAX(counter, v)                                   \
  do {                                                               \
    if (::kosr::obs::Enabled()) {                                    \
      ::kosr::obs::TlsCounters().Max(::kosr::obs::Counter::counter,  \
                                     static_cast<uint64_t>(v));      \
    }                                                                \
  } while (0)

#endif  // KOSR_OBS_COUNTERS_H_
