#ifndef KOSR_OBS_JSON_READER_H_
#define KOSR_OBS_JSON_READER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kosr::obs {

/// Minimal JSON document model for the observability surfaces: the
/// `kosr_cli metrics` pretty-printer reads a METRICS snapshot through it,
/// and the tests round-trip MetricsSnapshot::ToJson to prove the emitted
/// JSON stays parseable. Deliberately tiny — strict RFC-8259 syntax, object
/// keys kept in document order, no writer (emission stays with the
/// hand-built ToJson methods, which this reader validates).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject
  std::vector<JsonValue> items;                            ///< kArray

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }

  /// First member with the given key, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;
  /// Find() that throws std::runtime_error when the key is absent.
  const JsonValue& At(std::string_view key) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Throws std::runtime_error with an offset on malformed input.
JsonValue ParseJson(std::string_view text);

}  // namespace kosr::obs

#endif  // KOSR_OBS_JSON_READER_H_
