#include "src/algo/kpne.h"

#include "src/algo/witness_pool.h"
#include "src/util/timer.h"

namespace kosr {

KosrResult RunKpne(const AlgoConfig& config, NnProvider& nn,
                   KosrScratch* scratch) {
  KosrResult result;
  QueryStats& stats = result.stats;
  stats.timing_enabled = config.collect_phase_times;
  WallTimer total_timer;

  KosrScratch local;
  KosrScratch& scr = scratch != nullptr ? *scratch : local;
  scr.Reset();
  WitnessPool& pool = scr.pool;
  auto& queue = scr.queue;  // (cost, node id)

  auto timed_nn = [&](VertexId v, uint32_t slot, uint32_t x) {
    if (!stats.timing_enabled) return nn.FindNN(v, slot, x, &stats);
    double est_before = stats.estimation_time_s;
    WallTimer t;
    auto r = nn.FindNN(v, slot, x, &stats);
    stats.nn_time_s +=
        t.ElapsedSeconds() - (stats.estimation_time_s - est_before);
    return r;
  };
  auto push = [&](Cost priority, uint32_t id) {
    if (stats.timing_enabled) {
      WallTimer t;
      queue.Push({priority, id});
      stats.queue_time_s += t.ElapsedSeconds();
    } else {
      queue.Push({priority, id});
    }
  };

  if (config.seeds.empty()) {
    push(0, pool.Add(config.source, 0, 0, kNoWitness, 1));
  } else {
    for (const Seed& s : config.seeds) {
      push(s.cost, pool.Add(s.vertex, s.depth, s.cost, kNoWitness, kNoX));
    }
  }

  const uint32_t complete_depth = config.CompleteDepth();
  std::vector<uint32_t>& found = scr.found;

  while (!queue.Empty() && found.size() < config.k) {
    if ((config.max_examined != 0 &&
         stats.examined_routes >= config.max_examined) ||
        ((stats.examined_routes & 1023) == 0 && config.time_budget_s != 0 &&
         total_timer.ElapsedSeconds() > config.time_budget_s)) {
      stats.timed_out = true;
      break;
    }
    auto [cost, id] = queue.Top();
    queue.Pop();
    const WitnessNode node = pool[id];
    stats.RecordExamined(node.depth);

    // Sibling candidate: parent's next nearest neighbor at this depth. Also
    // runs for complete routes — a no-op when a destination slot exists (the
    // dummy category {t} has no 2nd neighbor) but required in the
    // no-destination variant, where complete routes still have siblings.
    if (node.depth > 0 && node.x != kNoX) {
      const WitnessNode& parent = pool[node.parent];
      if (auto r = timed_nn(parent.vertex, node.depth, node.x + 1)) {
        uint32_t sibling = pool.Add(r->vertex, node.depth,
                                    parent.cost + r->dist, node.parent,
                                    node.x + 1);
        push(pool[sibling].cost, sibling);
      }
    }

    if (node.depth == complete_depth) {
      found.push_back(id);
      continue;
    }

    // Extend via the nearest neighbor in the next slot.
    if (auto r = timed_nn(node.vertex, node.depth + 1, 1)) {
      uint32_t child =
          pool.Add(r->vertex, node.depth + 1, node.cost + r->dist, id, 1);
      push(pool[child].cost, child);
    }
  }

  for (uint32_t id : found) {
    SequencedRoute route;
    route.cost = pool[id].cost;
    route.witness = pool.Vertices(id);
    result.routes.push_back(std::move(route));
  }
  stats.total_time_s = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace kosr
