#ifndef KOSR_ALGO_QUERY_SCRATCH_H_
#define KOSR_ALGO_QUERY_SCRATCH_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/algo/witness_pool.h"
#include "src/util/min_heap.h"
#include "src/util/types.h"

namespace kosr {

/// Reusable search-state arena shared by the KOSR algorithms (KPNE,
/// PruningKOSR, StarKOSR). Every container a query grows — the witness
/// pool, the frontier heap, the dominance tables, StarKOSR's per-node
/// estimates — lives here, so a caller that keeps one KosrScratch per
/// thread and hands it to successive queries pays the allocations once and
/// then runs the hot path allocation-free (Reset() clears contents but
/// keeps vector capacity and hash-table buckets).
///
/// Passing nullptr everywhere a scratch is accepted falls back to a local
/// arena with identical behavior; results never depend on reuse.
struct KosrScratch {
  /// (priority, witness-node id) frontier entry.
  using QueueEntry = std::pair<Cost, uint32_t>;

  WitnessPool pool;
  MinQueue<QueueEntry> queue;
  /// (vertex, depth) -> dominating witness id (Algorithm 2's D table).
  std::unordered_map<uint64_t, uint32_t> dominator;
  /// (vertex, depth) -> parked dominated witnesses, by priority.
  std::unordered_map<uint64_t, MinQueue<QueueEntry>> dominated;
  /// StarKOSR: estimated total cost per pool node.
  std::vector<Cost> priority;
  /// Completed witness ids of the current query.
  std::vector<uint32_t> found;

  /// Prepares the scratch for a fresh query. O(contents), keeps capacity.
  void Reset() {
    pool.Clear();
    queue.Clear();
    dominator.clear();
    dominated.clear();
    priority.clear();
    found.clear();
  }
};

}  // namespace kosr

#endif  // KOSR_ALGO_QUERY_SCRATCH_H_
