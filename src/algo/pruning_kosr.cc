#include "src/algo/pruning_kosr.h"

#include "src/algo/enumerator.h"

namespace kosr {

KosrResult RunPruningKosr(const AlgoConfig& config, NnProvider& nn,
                          KosrScratch* scratch) {
  PruningKosrEnumerator enumerator(config, &nn, scratch);
  KosrResult result;
  while (enumerator.emitted() < config.k) {
    auto route = enumerator.Next();
    if (!route.has_value()) break;
    result.routes.push_back(std::move(*route));
  }
  result.stats = enumerator.stats();
  return result;
}

}  // namespace kosr
