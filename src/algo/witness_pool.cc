#include "src/algo/witness_pool.h"

#include <algorithm>
#include <cassert>

namespace kosr {

std::vector<VertexId> WitnessPool::Vertices(uint32_t id) const {
  std::vector<VertexId> out;
  for (uint32_t cur = id; cur != kNoWitness; cur = nodes_[cur].parent) {
    out.push_back(nodes_[cur].vertex);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

uint32_t WitnessPool::AncestorAt(uint32_t id, uint32_t depth) const {
  uint32_t cur = id;
  while (nodes_[cur].depth > depth) {
    cur = nodes_[cur].parent;
    assert(cur != kNoWitness);
  }
  assert(nodes_[cur].depth == depth);
  return cur;
}

}  // namespace kosr
