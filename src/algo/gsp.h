#ifndef KOSR_ALGO_GSP_H_
#define KOSR_ALGO_GSP_H_

#include <optional>

#include "src/core/query.h"
#include "src/graph/categories.h"
#include "src/graph/graph.h"

namespace kosr {

/// GSP — the state-of-the-art *optimal sequenced route* (k = 1) method of
/// Rice & Tsotras [29], reproduced as the Figure-7 comparator.
///
/// Dynamic program over category layers:
///   X[i][v] = min over u in C_{i-1} of X[i-1][u] + dis(u, v),  v in C_i,
/// with X[0][s] = 0 and the answer X[|C|+1][t]. Each transition is computed
/// with one multi-source Dijkstra seeded by the previous layer's costs —
/// O(|C|) graph searches in total, the property the paper's analysis of GSP
/// relies on (the original uses contraction-hierarchy searches; see
/// DESIGN.md for the substitution note). The recurrence only carries least
/// costs, which is exactly why GSP cannot be extended to k > 1 (Sec. III-B).
///
/// Returns nullopt if no feasible route exists. `stats` (optional) receives
/// settled-vertex counts in examined_routes and the wall time.
std::optional<SequencedRoute> RunGsp(const Graph& graph,
                                     const CategoryTable& categories,
                                     const CategorySequence& sequence,
                                     VertexId source, VertexId target,
                                     QueryStats* stats = nullptr);

}  // namespace kosr

#endif  // KOSR_ALGO_GSP_H_
