#ifndef KOSR_ALGO_KPNE_H_
#define KOSR_ALGO_KPNE_H_

#include "src/algo/run_config.h"
#include "src/core/query.h"
#include "src/nn/nn_provider.h"

namespace kosr {

/// KPNE — the baseline: progressive neighbor exploration (PNE [32],
/// Algorithm 1 of the paper) extended to top-k (Sec. III-B). Examines every
/// partially explored candidate whose cost is below the k-th optimal route;
/// worst-case route count is exponential in |C|.
KosrResult RunKpne(const AlgoConfig& config, NnProvider& nn);

}  // namespace kosr

#endif  // KOSR_ALGO_KPNE_H_
