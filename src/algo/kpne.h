#ifndef KOSR_ALGO_KPNE_H_
#define KOSR_ALGO_KPNE_H_

#include "src/algo/query_scratch.h"
#include "src/algo/run_config.h"
#include "src/core/query.h"
#include "src/nn/nn_provider.h"

namespace kosr {

/// KPNE — the baseline: progressive neighbor exploration (PNE [32],
/// Algorithm 1 of the paper) extended to top-k (Sec. III-B). Examines every
/// partially explored candidate whose cost is below the k-th optimal route;
/// worst-case route count is exponential in |C|.
///
/// `scratch` (optional) supplies reusable search-state containers; results
/// are identical with or without it.
KosrResult RunKpne(const AlgoConfig& config, NnProvider& nn,
                   KosrScratch* scratch = nullptr);

}  // namespace kosr

#endif  // KOSR_ALGO_KPNE_H_
