#ifndef KOSR_ALGO_RUN_CONFIG_H_
#define KOSR_ALGO_RUN_CONFIG_H_

#include <cstdint>
#include <vector>

#include "src/util/types.h"

namespace kosr {

/// A search root. The standard query has a single seed (source, depth 0,
/// cost 0); the no-source variant of Sec. IV-C seeds every member of the
/// first category at depth 1.
struct Seed {
  VertexId vertex;
  uint32_t depth;
  Cost cost;
};

/// Execution parameters shared by the KOSR search algorithms. This is a
/// lower-level mirror of KosrQuery/KosrOptions that the engine assembles;
/// it exists so the algorithms stay independent of index choices.
struct AlgoConfig {
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  uint32_t num_categories = 0;  ///< |C|.
  uint32_t k = 1;

  /// False for the no-destination variant: routes complete at the last
  /// category instead of the destination slot.
  bool has_destination = true;

  uint64_t max_examined = 0;  ///< 0 = unlimited.
  double time_budget_s = 0;   ///< 0 = unlimited.
  bool collect_phase_times = false;

  /// Search roots; empty means {(source, 0, 0)}.
  std::vector<Seed> seeds;

  /// Depth at which a witness is complete.
  uint32_t CompleteDepth() const {
    return has_destination ? num_categories + 1 : num_categories;
  }
};

}  // namespace kosr

#endif  // KOSR_ALGO_RUN_CONFIG_H_
