#ifndef KOSR_ALGO_PRUNING_KOSR_H_
#define KOSR_ALGO_PRUNING_KOSR_H_

#include "src/algo/query_scratch.h"
#include "src/algo/run_config.h"
#include "src/core/query.h"
#include "src/nn/nn_provider.h"

namespace kosr {

/// PruningKOSR (Algorithm 2 of the paper).
///
/// A partially explored witness P2 is *dominated* by P1 (P1 ≺C P2,
/// Definition 6) when both end at the same vertex with the same size and
/// w(P1) <= w(P2). Dominated witnesses are parked in per-(vertex, depth)
/// queues (HT≻C) instead of being extended, and are reconsidered only when
/// the route extended from their dominator enters the result set — at which
/// point the cheapest parked route is released with x = '-'. This reduces
/// the examined-route bound from exponential (KPNE) to
/// sum |Ci|*|Ci+1| + (k-1) * sum |Ci|.
KosrResult RunPruningKosr(const AlgoConfig& config, NnProvider& nn,
                          KosrScratch* scratch = nullptr);

}  // namespace kosr

#endif  // KOSR_ALGO_PRUNING_KOSR_H_
