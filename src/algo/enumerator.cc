#include "src/algo/enumerator.h"

#include "src/util/timer.h"

namespace kosr {

PruningKosrEnumerator::PruningKosrEnumerator(const AlgoConfig& config,
                                             NnProvider* nn,
                                             KosrScratch* scratch)
    : config_(config), nn_(nn), complete_depth_(config.CompleteDepth()) {
  if (scratch != nullptr) {
    scr_ = scratch;
  } else {
    owned_scratch_ = std::make_unique<KosrScratch>();
    scr_ = owned_scratch_.get();
  }
  scr_->Reset();
  stats_.timing_enabled = config.collect_phase_times;
  if (config_.seeds.empty()) {
    Push(0, scr_->pool.Add(config_.source, 0, 0, kNoWitness, 1));
  } else {
    for (const Seed& s : config_.seeds) {
      Push(s.cost, scr_->pool.Add(s.vertex, s.depth, s.cost, kNoWitness,
                                  kNoX));
    }
  }
}

std::optional<NnResult> PruningKosrEnumerator::TimedNn(VertexId v,
                                                       uint32_t slot,
                                                       uint32_t x) {
  if (!stats_.timing_enabled) return nn_->FindNN(v, slot, x, &stats_);
  double est_before = stats_.estimation_time_s;
  WallTimer t;
  auto r = nn_->FindNN(v, slot, x, &stats_);
  stats_.nn_time_s +=
      t.ElapsedSeconds() - (stats_.estimation_time_s - est_before);
  return r;
}

void PruningKosrEnumerator::Push(Cost priority, uint32_t id) {
  if (stats_.timing_enabled) {
    WallTimer t;
    scr_->queue.Push({priority, id});
    stats_.queue_time_s += t.ElapsedSeconds();
  } else {
    scr_->queue.Push({priority, id});
  }
}

bool PruningKosrEnumerator::BudgetExceeded() {
  if (config_.max_examined != 0 &&
      stats_.examined_routes >= config_.max_examined) {
    return true;
  }
  // The clock is only consulted periodically; it is the expensive check.
  if ((stats_.examined_routes & 1023) != 0) return false;
  return config_.time_budget_s != 0 && stats_.total_time_s > config_.time_budget_s;
}

std::optional<SequencedRoute> PruningKosrEnumerator::Next() {
  WallTimer timer;
  auto charge_time = [&] { stats_.total_time_s += timer.ElapsedSeconds(); };
  WitnessPool& pool = scr_->pool;

  while (!scr_->queue.Empty()) {
    stats_.total_time_s += timer.ElapsedSeconds();
    timer.Reset();
    if (BudgetExceeded()) {
      stats_.timed_out = true;
      return std::nullopt;
    }
    auto [cost, id] = scr_->queue.Top();
    scr_->queue.Pop();
    const WitnessNode node = pool[id];
    stats_.RecordExamined(node.depth);

    // Sibling candidate (Algorithm 2 lines 20-22); also runs for complete
    // and dominated witnesses — a no-op with a destination slot, required
    // in the no-destination variant.
    if (node.depth > 0 && node.x != kNoX) {
      const WitnessNode& parent = pool[node.parent];
      if (auto r = TimedNn(parent.vertex, node.depth, node.x + 1)) {
        uint32_t sibling = pool.Add(r->vertex, node.depth,
                                    parent.cost + r->dist, node.parent,
                                    node.x + 1);
        Push(pool[sibling].cost, sibling);
      }
    }

    if (node.depth == complete_depth_) {
      // Reconsider dominated routes along this result's prefix.
      uint32_t ancestor = node.parent;
      while (ancestor != kNoWitness && pool[ancestor].depth >= 1) {
        const WitnessNode& anc = pool[ancestor];
        uint64_t key = KeyOf(anc.vertex, anc.depth);
        auto it = scr_->dominator.find(key);
        if (it != scr_->dominator.end() && it->second == ancestor) {
          auto sub = scr_->dominated.find(key);
          if (sub != scr_->dominated.end() && !sub->second.Empty()) {
            auto [rcost, rid] = sub->second.Top();
            sub->second.Pop();
            pool[rid].x = kNoX;
            Push(rcost, rid);
            ++stats_.reconsidered_routes;
          }
          scr_->dominator.erase(it);
        }
        ancestor = anc.parent;
      }
      ++emitted_;
      SequencedRoute route;
      route.cost = node.cost;
      route.witness = pool.Vertices(id);
      charge_time();
      return route;
    }

    uint64_t key = KeyOf(node.vertex, node.depth);
    auto [it, inserted] = scr_->dominator.try_emplace(key, id);
    if (inserted) {
      if (auto r = TimedNn(node.vertex, node.depth + 1, 1)) {
        uint32_t child = pool.Add(r->vertex, node.depth + 1,
                                  node.cost + r->dist, id, 1);
        Push(pool[child].cost, child);
      }
    } else {
      scr_->dominated[key].Push({cost, id});
      ++stats_.dominated_routes;
    }
  }
  charge_time();
  return std::nullopt;
}

}  // namespace kosr
