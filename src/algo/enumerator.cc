#include "src/algo/enumerator.h"

#include "src/util/timer.h"

namespace kosr {

PruningKosrEnumerator::PruningKosrEnumerator(const AlgoConfig& config,
                                             NnProvider* nn)
    : config_(config), nn_(nn), complete_depth_(config.CompleteDepth()) {
  stats_.timing_enabled = config.collect_phase_times;
  if (config_.seeds.empty()) {
    Push(0, pool_.Add(config_.source, 0, 0, kNoWitness, 1));
  } else {
    for (const Seed& s : config_.seeds) {
      Push(s.cost, pool_.Add(s.vertex, s.depth, s.cost, kNoWitness, kNoX));
    }
  }
}

std::optional<NnResult> PruningKosrEnumerator::TimedNn(VertexId v,
                                                       uint32_t slot,
                                                       uint32_t x) {
  if (!stats_.timing_enabled) return nn_->FindNN(v, slot, x, &stats_);
  double est_before = stats_.estimation_time_s;
  WallTimer t;
  auto r = nn_->FindNN(v, slot, x, &stats_);
  stats_.nn_time_s +=
      t.ElapsedSeconds() - (stats_.estimation_time_s - est_before);
  return r;
}

void PruningKosrEnumerator::Push(Cost priority, uint32_t id) {
  if (stats_.timing_enabled) {
    WallTimer t;
    queue_.emplace(priority, id);
    stats_.queue_time_s += t.ElapsedSeconds();
  } else {
    queue_.emplace(priority, id);
  }
}

bool PruningKosrEnumerator::BudgetExceeded() {
  if (config_.max_examined != 0 &&
      stats_.examined_routes >= config_.max_examined) {
    return true;
  }
  // The clock is only consulted periodically; it is the expensive check.
  if ((stats_.examined_routes & 1023) != 0) return false;
  return config_.time_budget_s != 0 && stats_.total_time_s > config_.time_budget_s;
}

std::optional<SequencedRoute> PruningKosrEnumerator::Next() {
  WallTimer timer;
  auto charge_time = [&] { stats_.total_time_s += timer.ElapsedSeconds(); };

  while (!queue_.empty()) {
    stats_.total_time_s += timer.ElapsedSeconds();
    timer.Reset();
    if (BudgetExceeded()) {
      stats_.timed_out = true;
      return std::nullopt;
    }
    auto [cost, id] = queue_.top();
    queue_.pop();
    const WitnessNode node = pool_[id];
    stats_.RecordExamined(node.depth);

    // Sibling candidate (Algorithm 2 lines 20-22); also runs for complete
    // and dominated witnesses — a no-op with a destination slot, required
    // in the no-destination variant.
    if (node.depth > 0 && node.x != kNoX) {
      const WitnessNode& parent = pool_[node.parent];
      if (auto r = TimedNn(parent.vertex, node.depth, node.x + 1)) {
        uint32_t sibling = pool_.Add(r->vertex, node.depth,
                                     parent.cost + r->dist, node.parent,
                                     node.x + 1);
        Push(pool_[sibling].cost, sibling);
      }
    }

    if (node.depth == complete_depth_) {
      // Reconsider dominated routes along this result's prefix.
      uint32_t ancestor = node.parent;
      while (ancestor != kNoWitness && pool_[ancestor].depth >= 1) {
        const WitnessNode& anc = pool_[ancestor];
        uint64_t key = KeyOf(anc.vertex, anc.depth);
        auto it = dominator_.find(key);
        if (it != dominator_.end() && it->second == ancestor) {
          auto sub = dominated_.find(key);
          if (sub != dominated_.end() && !sub->second.empty()) {
            auto [rcost, rid] = sub->second.top();
            sub->second.pop();
            pool_[rid].x = kNoX;
            Push(rcost, rid);
            ++stats_.reconsidered_routes;
          }
          dominator_.erase(it);
        }
        ancestor = anc.parent;
      }
      ++emitted_;
      SequencedRoute route;
      route.cost = node.cost;
      route.witness = pool_.Vertices(id);
      charge_time();
      return route;
    }

    uint64_t key = KeyOf(node.vertex, node.depth);
    auto [it, inserted] = dominator_.try_emplace(key, id);
    if (inserted) {
      if (auto r = TimedNn(node.vertex, node.depth + 1, 1)) {
        uint32_t child = pool_.Add(r->vertex, node.depth + 1,
                                   node.cost + r->dist, id, 1);
        Push(pool_[child].cost, child);
      }
    } else {
      dominated_[key].emplace(cost, id);
      ++stats_.dominated_routes;
    }
  }
  charge_time();
  return std::nullopt;
}

}  // namespace kosr
