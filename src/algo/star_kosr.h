#ifndef KOSR_ALGO_STAR_KOSR_H_
#define KOSR_ALGO_STAR_KOSR_H_

#include "src/algo/query_scratch.h"
#include "src/algo/run_config.h"
#include "src/core/query.h"
#include "src/nn/nn_provider.h"

namespace kosr {

/// StarKOSR (Sec. IV-B of the paper).
///
/// PruningKOSR's skeleton driven A*-style: witnesses are ordered by the
/// admissible estimate w(p) + dis(last(p), t) instead of the real cost, and
/// extension uses the x-th nearest *estimated* neighbor (FindNEN,
/// Algorithm 4) so candidates that are cheap to reach but far from the
/// destination are postponed. Requires a destination
/// (config.has_destination) — the no-destination variant must use
/// PruningKOSR.
KosrResult RunStarKosr(const AlgoConfig& config, NenProvider& nen,
                       KosrScratch* scratch = nullptr);

}  // namespace kosr

#endif  // KOSR_ALGO_STAR_KOSR_H_
