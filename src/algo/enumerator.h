#ifndef KOSR_ALGO_ENUMERATOR_H_
#define KOSR_ALGO_ENUMERATOR_H_

#include <memory>
#include <optional>

#include "src/algo/query_scratch.h"
#include "src/algo/run_config.h"
#include "src/algo/witness_pool.h"
#include "src/core/query.h"
#include "src/nn/nn_provider.h"

namespace kosr {

/// Resumable PruningKOSR search (Algorithm 2) exposed as a route stream.
///
/// KOSR's search is inherently progressive — the k-th route is found by
/// continuing exactly where the (k-1)-th stopped (this is what lets the
/// paper bound the marginal cost of each additional route by (k-1)·Σ|Ci|).
/// The enumerator makes that a public API: call Next() until nullopt; asking
/// for one more route never repeats work. RunPruningKosr() is a thin loop
/// over this class.
///
/// The `k` in the config is ignored here; budgets (max examined routes /
/// time) still apply across the whole enumeration.
class PruningKosrEnumerator {
 public:
  /// `nn` must outlive the enumerator. `scratch` (optional) supplies the
  /// search-state containers; it must outlive the enumerator and not be
  /// shared with a concurrently running search. Without one, the enumerator
  /// owns a private scratch.
  PruningKosrEnumerator(const AlgoConfig& config, NnProvider* nn,
                        KosrScratch* scratch = nullptr);

  /// Returns the next-cheapest feasible route, or nullopt when the search
  /// space is exhausted or a budget was hit (stats().timed_out tells which).
  std::optional<SequencedRoute> Next();

  /// Counters accumulated so far.
  const QueryStats& stats() const { return stats_; }
  QueryStats& stats() { return stats_; }

  /// Number of routes emitted so far.
  uint32_t emitted() const { return emitted_; }

 private:
  using QueueEntry = KosrScratch::QueueEntry;

  uint64_t KeyOf(VertexId v, uint32_t depth) const {
    return static_cast<uint64_t>(v) * (complete_depth_ + 1) + depth;
  }
  std::optional<NnResult> TimedNn(VertexId v, uint32_t slot, uint32_t x);
  void Push(Cost priority, uint32_t id);
  bool BudgetExceeded();

  AlgoConfig config_;
  NnProvider* nn_;
  uint32_t complete_depth_;

  /// Search state (witness pool, frontier, dominance tables) — borrowed
  /// from the caller for cross-query reuse, or privately owned.
  std::unique_ptr<KosrScratch> owned_scratch_;
  KosrScratch* scr_;
  QueryStats stats_;
  uint32_t emitted_ = 0;
  double start_seconds_ = 0;  // wall time consumed by earlier Next() calls
};

}  // namespace kosr

#endif  // KOSR_ALGO_ENUMERATOR_H_
