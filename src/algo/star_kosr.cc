#include "src/algo/star_kosr.h"

#include <cassert>

#include "src/algo/witness_pool.h"
#include "src/util/timer.h"

namespace kosr {

KosrResult RunStarKosr(const AlgoConfig& config, NenProvider& nen,
                       KosrScratch* scratch) {
  assert(config.has_destination && "StarKOSR requires a destination");
  KosrResult result;
  QueryStats& stats = result.stats;
  stats.timing_enabled = config.collect_phase_times;
  WallTimer total_timer;

  // All search state lives in the scratch (caller-provided and reused
  // across queries, or a local one) — see KosrScratch.
  KosrScratch local;
  KosrScratch& scr = scratch != nullptr ? *scratch : local;
  scr.Reset();
  WitnessPool& pool = scr.pool;
  // Estimated total cost per pool node (w(p) + dis(last, t)); complete
  // witnesses carry their real cost.
  std::vector<Cost>& priority = scr.priority;
  auto& queue = scr.queue;

  const uint32_t complete_depth = config.CompleteDepth();
  auto key_of = [complete_depth](VertexId v, uint32_t depth) {
    return static_cast<uint64_t>(v) * (complete_depth + 1) + depth;
  };
  auto& dominator = scr.dominator;
  auto& dominated = scr.dominated;  // parked, by estimate

  auto timed_nen = [&](VertexId v, uint32_t slot, uint32_t x) {
    if (!stats.timing_enabled) return nen.FindNEN(v, slot, x, &stats);
    double est_before = stats.estimation_time_s;
    WallTimer t;
    auto r = nen.FindNEN(v, slot, x, &stats);
    stats.nn_time_s +=
        t.ElapsedSeconds() - (stats.estimation_time_s - est_before);
    return r;
  };
  auto push = [&](uint32_t id) {
    if (stats.timing_enabled) {
      WallTimer t;
      queue.Push({priority[id], id});
      stats.queue_time_s += t.ElapsedSeconds();
    } else {
      queue.Push({priority[id], id});
    }
  };
  auto add_node = [&](VertexId v, uint32_t depth, Cost cost, uint32_t parent,
                      uint32_t x, Cost prio) {
    uint32_t id = pool.Add(v, depth, cost, parent, x);
    priority.push_back(prio);
    return id;
  };

  if (config.seeds.empty()) {
    Cost h = nen.EstimateToTarget(config.source, &stats);
    if (h < kInfCost) {
      push(add_node(config.source, 0, 0, kNoWitness, 1, h));
    }
  } else {
    for (const Seed& s : config.seeds) {
      Cost h = nen.EstimateToTarget(s.vertex, &stats);
      if (h < kInfCost) {
        push(add_node(s.vertex, s.depth, s.cost, kNoWitness, kNoX,
                      s.cost + h));
      }
    }
  }

  std::vector<uint32_t>& found = scr.found;

  while (!queue.Empty() && found.size() < config.k) {
    if ((config.max_examined != 0 &&
         stats.examined_routes >= config.max_examined) ||
        ((stats.examined_routes & 1023) == 0 && config.time_budget_s != 0 &&
         total_timer.ElapsedSeconds() > config.time_budget_s)) {
      stats.timed_out = true;
      break;
    }
    auto [est, id] = queue.Top();
    queue.Pop();
    const WitnessNode node = pool[id];
    stats.RecordExamined(node.depth);

    // Sibling candidate; see PruningKOSR for why this also runs for
    // complete and dominated witnesses.
    if (node.depth > 0 && node.x != kNoX) {
      const WitnessNode& parent = pool[node.parent];
      if (auto r = timed_nen(parent.vertex, node.depth, node.x + 1)) {
        uint32_t sibling = add_node(r->vertex, node.depth,
                                    parent.cost + r->dist, node.parent,
                                    node.x + 1, parent.cost + r->est);
        push(sibling);
      }
    }

    if (node.depth == complete_depth) {
      found.push_back(id);
      uint32_t ancestor = node.parent;
      while (ancestor != kNoWitness && pool[ancestor].depth >= 1) {
        const WitnessNode& anc = pool[ancestor];
        uint64_t k2 = key_of(anc.vertex, anc.depth);
        auto it = dominator.find(k2);
        if (it != dominator.end() && it->second == ancestor) {
          auto sub = dominated.find(k2);
          if (sub != dominated.end() && !sub->second.Empty()) {
            auto [rest, rid] = sub->second.Top();
            sub->second.Pop();
            pool[rid].x = kNoX;
            push(rid);
            ++stats.reconsidered_routes;
          }
          dominator.erase(it);
        }
        ancestor = anc.parent;
      }
      continue;
    }

    uint64_t k2 = key_of(node.vertex, node.depth);
    auto [it, inserted] = dominator.try_emplace(k2, id);
    if (inserted) {
      if (auto r = timed_nen(node.vertex, node.depth + 1, 1)) {
        uint32_t child = add_node(r->vertex, node.depth + 1,
                                  node.cost + r->dist, id, 1,
                                  node.cost + r->est);
        push(child);
      }
    } else {
      dominated[k2].Push({priority[id], id});
      ++stats.dominated_routes;
    }
  }

  for (uint32_t id : found) {
    SequencedRoute route;
    route.cost = pool[id].cost;
    route.witness = pool.Vertices(id);
    result.routes.push_back(std::move(route));
  }
  stats.total_time_s = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace kosr
