#include "src/algo/gsp.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/min_heap.h"
#include "src/util/timer.h"

namespace kosr {

std::optional<SequencedRoute> RunGsp(const Graph& graph,
                                     const CategoryTable& categories,
                                     const CategorySequence& sequence,
                                     VertexId source, VertexId target,
                                     QueryStats* stats) {
  WallTimer timer;
  const uint32_t n = graph.num_vertices();
  uint64_t settled_total = 0;

  // Per-layer results: cost of the best partial route ending at each layer
  // vertex, and the previous-layer vertex it came through (for witness
  // reconstruction).
  struct LayerEntry {
    Cost cost;
    VertexId via;
  };
  std::vector<std::unordered_map<VertexId, LayerEntry>> layers;
  layers.push_back({{source, {0, kInvalidVertex}}});

  // Scratch for the multi-source Dijkstra.
  std::vector<Cost> dist(n, kInfCost);
  std::vector<VertexId> origin(n, kInvalidVertex);
  std::vector<VertexId> touched;
  IndexedMinHeap heap(n);

  auto run_layer =
      [&](const std::unordered_map<VertexId, LayerEntry>& seeds,
          const std::vector<VertexId>& goals, bool stop_at_single_goal)
      -> std::unordered_map<VertexId, LayerEntry> {
    for (const auto& [v, entry] : seeds) {
      dist[v] = entry.cost;
      origin[v] = v;
      touched.push_back(v);
      heap.InsertOrDecrease(v, entry.cost);
    }
    std::unordered_map<VertexId, LayerEntry> out;
    while (!heap.Empty()) {
      auto [d, u] = heap.ExtractMin();
      ++settled_total;
      if (stop_at_single_goal && u == goals.front()) break;
      for (const Arc& a : graph.OutArcs(u)) {
        Cost nd = d + a.weight;
        if (nd < dist[a.head]) {
          if (dist[a.head] == kInfCost) touched.push_back(a.head);
          dist[a.head] = nd;
          origin[a.head] = origin[u];
          heap.InsertOrDecrease(a.head, nd);
        }
      }
    }
    for (VertexId g : goals) {
      if (dist[g] != kInfCost) out[g] = {dist[g], origin[g]};
    }
    for (VertexId v : touched) {
      dist[v] = kInfCost;
      origin[v] = kInvalidVertex;
    }
    touched.clear();
    heap.Clear();
    return out;
  };

  for (size_t i = 0; i < sequence.size(); ++i) {
    auto members = categories.Members(sequence[i]);
    std::vector<VertexId> goals(members.begin(), members.end());
    layers.push_back(run_layer(layers.back(), goals, false));
    if (layers.back().empty()) return std::nullopt;  // layer unreachable
  }
  layers.push_back(run_layer(layers.back(), {target}, true));

  if (stats != nullptr) {
    stats->examined_routes += settled_total;
    stats->total_time_s += timer.ElapsedSeconds();
  }

  auto final_it = layers.back().find(target);
  if (final_it == layers.back().end()) return std::nullopt;

  SequencedRoute route;
  route.cost = final_it->second.cost;
  // Walk the via-chain backward through the layers.
  std::vector<VertexId> witness;
  VertexId cur = target;
  for (size_t layer = layers.size() - 1; layer > 0; --layer) {
    witness.push_back(cur);
    cur = layers[layer].at(cur).via;
  }
  witness.push_back(cur);  // the source
  std::reverse(witness.begin(), witness.end());
  route.witness = std::move(witness);
  return route;
}

}  // namespace kosr
