#ifndef KOSR_ALGO_WITNESS_POOL_H_
#define KOSR_ALGO_WITNESS_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/types.h"

namespace kosr {

/// Sentinel witness-node index.
inline constexpr uint32_t kNoWitness = UINT32_MAX;

/// Sentinel for the paper's x = '-' marker: a reconsidered route must not
/// spawn further sibling candidates.
inline constexpr uint32_t kNoX = UINT32_MAX;

/// One partially explored witness <v0, ..., v_depth>, stored as a node in a
/// persistent tree: extending a route is an O(1) append, and popped routes
/// share their prefixes. `depth` indexes the extended category sequence:
/// 0 = source (or a first-category seed in the no-source variant), i in
/// [1, |C|] = i-th category, |C|+1 = destination.
struct WitnessNode {
  VertexId vertex;
  uint32_t depth;
  Cost cost;        ///< Real accumulated witness cost w(p).
  uint32_t parent;  ///< Pool index of the prefix, kNoWitness for roots.
  uint32_t x;       ///< vertex is the x-th NN of the parent's vertex, or kNoX.
};

/// Arena of witness nodes for one query.
class WitnessPool {
 public:
  uint32_t Add(VertexId vertex, uint32_t depth, Cost cost, uint32_t parent,
               uint32_t x) {
    nodes_.push_back({vertex, depth, cost, parent, x});
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  const WitnessNode& operator[](uint32_t id) const { return nodes_[id]; }
  WitnessNode& operator[](uint32_t id) { return nodes_[id]; }
  size_t size() const { return nodes_.size(); }

  /// Empties the pool, retaining its arena capacity for the next query.
  void Clear() { nodes_.clear(); }

  /// Materializes the vertex sequence <v0, ..., v_depth> of a node.
  std::vector<VertexId> Vertices(uint32_t id) const;

  /// Pool index of the ancestor of `id` at the given depth (id itself if
  /// depths match). Requires depth <= node.depth.
  uint32_t AncestorAt(uint32_t id, uint32_t depth) const;

 private:
  std::vector<WitnessNode> nodes_;
};

}  // namespace kosr

#endif  // KOSR_ALGO_WITNESS_POOL_H_
