#include "src/labeling/compressed_io.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace kosr {
namespace {

constexpr uint64_t kMagic = 0x4b4f53525a4c4231ull;  // "KOSRZLB1"

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("truncated compressed labeling");
  return value;
}

}  // namespace

void AppendVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

uint64_t ReadVarint(const std::vector<uint8_t>& data, size_t& pos) {
  uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos >= data.size()) throw std::runtime_error("truncated varint");
    uint8_t byte = data[pos++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  throw std::runtime_error("overlong varint");
}

std::vector<uint8_t> EncodeLabelVector(std::span<const LabelEntry> labels) {
  std::vector<uint8_t> out;
  AppendVarint(out, labels.size());
  uint32_t prev_rank = 0;
  for (const LabelEntry& e : labels) {
    AppendVarint(out, e.hub_rank - prev_rank);
    prev_rank = e.hub_rank;
    AppendVarint(out, e.dist);
    // Shift parents so the kInvalidVertex sentinel encodes as a single 0.
    AppendVarint(out, e.parent == kInvalidVertex
                          ? 0
                          : static_cast<uint64_t>(e.parent) + 1);
  }
  return out;
}

std::vector<LabelEntry> DecodeLabelVector(const std::vector<uint8_t>& data) {
  size_t pos = 0;
  uint64_t count = ReadVarint(data, pos);
  std::vector<LabelEntry> labels;
  labels.reserve(count);
  uint32_t rank = 0;
  for (uint64_t i = 0; i < count; ++i) {
    rank += static_cast<uint32_t>(ReadVarint(data, pos));
    uint32_t dist = static_cast<uint32_t>(ReadVarint(data, pos));
    uint64_t parent_raw = ReadVarint(data, pos);
    VertexId parent = parent_raw == 0
                          ? kInvalidVertex
                          : static_cast<VertexId>(parent_raw - 1);
    labels.push_back({rank, dist, parent});
  }
  if (pos != data.size()) throw std::runtime_error("trailing label bytes");
  return labels;
}

void SerializeCompressed(const HubLabeling& labeling, std::ostream& out) {
  WritePod(out, kMagic);
  uint32_t n = labeling.num_vertices();
  WritePod(out, n);
  for (uint32_t r = 0; r < n; ++r) WritePod(out, labeling.HubVertex(r));
  for (uint32_t side = 0; side < 2; ++side) {
    for (VertexId v = 0; v < n; ++v) {
      auto labels = side == 0 ? labeling.Lin(v) : labeling.Lout(v);
      std::vector<uint8_t> encoded = EncodeLabelVector(labels);
      WritePod<uint64_t>(out, encoded.size());
      out.write(reinterpret_cast<const char*>(encoded.data()),
                static_cast<std::streamsize>(encoded.size()));
    }
  }
}

HubLabeling DeserializeCompressed(std::istream& in) {
  if (ReadPod<uint64_t>(in) != kMagic) {
    throw std::runtime_error("bad compressed labeling magic");
  }
  uint32_t n = ReadPod<uint32_t>(in);
  std::vector<VertexId> order(n);
  for (uint32_t r = 0; r < n; ++r) order[r] = ReadPod<VertexId>(in);
  std::vector<std::vector<LabelEntry>> in_labels(n), out_labels(n);
  for (uint32_t side = 0; side < 2; ++side) {
    for (VertexId v = 0; v < n; ++v) {
      uint64_t size = ReadPod<uint64_t>(in);
      std::vector<uint8_t> encoded(size);
      in.read(reinterpret_cast<char*>(encoded.data()),
              static_cast<std::streamsize>(size));
      if (!in) throw std::runtime_error("truncated compressed labeling");
      auto labels = DecodeLabelVector(encoded);
      (side == 0 ? in_labels : out_labels)[v] = std::move(labels);
    }
  }
  return HubLabeling::FromParts(std::move(order), std::move(in_labels),
                                std::move(out_labels));
}

uint64_t CompressedSizeBytes(const HubLabeling& labeling) {
  uint64_t total = sizeof(kMagic) + sizeof(uint32_t) +
                   static_cast<uint64_t>(labeling.num_vertices()) *
                       sizeof(VertexId);
  for (VertexId v = 0; v < labeling.num_vertices(); ++v) {
    total += sizeof(uint64_t) + EncodeLabelVector(labeling.Lin(v)).size();
    total += sizeof(uint64_t) + EncodeLabelVector(labeling.Lout(v)).size();
  }
  return total;
}

}  // namespace kosr
