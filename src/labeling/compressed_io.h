#ifndef KOSR_LABELING_COMPRESSED_IO_H_
#define KOSR_LABELING_COMPRESSED_IO_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/labeling/hub_labeling.h"

namespace kosr {

/// Compressed (de)serialization for hub labelings.
///
/// The paper notes its plain label indexes outgrow memory on large graphs
/// (Table IX: 18.25 GB on FLA) and points at hub-label compression [12] as
/// the remedy. This implements the standard lightweight scheme: per label
/// vector, hub ranks are delta-encoded (they are strictly increasing) and
/// all fields are LEB128 varint-coded. Typical reduction on road-network
/// labelings is 2-3x; exact round-trip is guaranteed.
///
/// Format per vertex label vector:
///   varint count
///   count * (varint rank_delta, varint dist, varint parent+1)
/// where parent+1 maps kInvalidVertex to 0.

/// Appends a varint; exposed for tests.
void AppendVarint(std::vector<uint8_t>& out, uint64_t value);

/// Reads a varint at `pos`, advancing it. Throws std::runtime_error on
/// truncation or overlong encoding (> 10 bytes).
uint64_t ReadVarint(const std::vector<uint8_t>& data, size_t& pos);

/// Encodes one rank-sorted label vector.
std::vector<uint8_t> EncodeLabelVector(std::span<const LabelEntry> labels);

/// Decodes a label vector produced by EncodeLabelVector.
std::vector<LabelEntry> DecodeLabelVector(const std::vector<uint8_t>& data);

/// Serializes a full labeling in compressed form.
void SerializeCompressed(const HubLabeling& labeling, std::ostream& out);

/// Deserializes a labeling written by SerializeCompressed.
HubLabeling DeserializeCompressed(std::istream& in);

/// Size in bytes the compressed form of `labeling` would occupy.
uint64_t CompressedSizeBytes(const HubLabeling& labeling);

}  // namespace kosr

#endif  // KOSR_LABELING_COMPRESSED_IO_H_
