#include "src/labeling/disk_store.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/durable_file.h"
#include "src/util/timer.h"

namespace kosr {
namespace {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("truncated disk store stream");
  return value;
}

// Re-interleaves one sealed SoA run into the AoS on-disk record. The flat
// store is the read view the rest of the system consumes, and the disk
// format (count + LabelEntry array) predates it — snapshots stay
// byte-identical to pre-flat-store writers.
void WriteLabels(std::ostream& out, const LabelRun& run,
                 std::vector<LabelEntry>& scratch) {
  WritePod<uint64_t>(out, run.size);
  scratch.clear();
  scratch.reserve(run.size);
  for (uint32_t i = 0; i < run.size; ++i) {
    scratch.push_back({run.RankAt(i), run.DistAt(i), run.parent[i]});
  }
  out.write(reinterpret_cast<const char*>(scratch.data()),
            static_cast<std::streamsize>(scratch.size() * sizeof(LabelEntry)));
}

std::vector<LabelEntry> ReadLabels(std::istream& in) {
  uint64_t size = ReadPod<uint64_t>(in);
  std::vector<LabelEntry> labels(size);
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(size * sizeof(LabelEntry)));
  if (!in) throw std::runtime_error("truncated disk store stream");
  return labels;
}

}  // namespace

void DiskLabelStore::Write(const std::string& dir, const HubLabeling& labeling,
                           const CategoryTable& categories) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  uint32_t n = labeling.num_vertices();

  // Each file is written to a temp sibling and atomically renamed into
  // place, meta.bin last: meta holds the offset tables, so a reader that
  // sees the new meta also sees the matching data files, and a crash
  // mid-write leaves the previous store intact.

  // labels.bin + offset table.
  std::vector<uint64_t> label_offsets(2 * static_cast<size_t>(n));
  std::vector<LabelEntry> scratch;
  {
    AtomicFileWriter writer(dir + "/labels.bin");
    std::ostream& out = writer.stream();
    for (VertexId v = 0; v < n; ++v) {
      label_offsets[2 * v] = static_cast<uint64_t>(out.tellp());
      WriteLabels(out, labeling.InRun(v), scratch);
      label_offsets[2 * v + 1] = static_cast<uint64_t>(out.tellp());
      WriteLabels(out, labeling.OutRun(v), scratch);
    }
    writer.Commit();
  }

  // categories.bin: per category, members' Lout labels + inverted index.
  std::vector<uint64_t> category_offsets(categories.num_categories());
  {
    AtomicFileWriter writer(dir + "/categories.bin");
    std::ostream& out = writer.stream();
    for (CategoryId c = 0; c < categories.num_categories(); ++c) {
      category_offsets[c] = static_cast<uint64_t>(out.tellp());
      auto members = categories.Members(c);
      WritePod<uint64_t>(out, members.size());
      for (VertexId m : members) {
        WritePod<VertexId>(out, m);
        WriteLabels(out, labeling.OutRun(m), scratch);
      }
      InvertedLabelIndex index = InvertedLabelIndex::Build(labeling, members);
      index.Serialize(out);
    }
    writer.Commit();
  }

  // meta.bin: universe, hub order, offset tables.
  AtomicFileWriter writer(dir + "/meta.bin");
  std::ostream& out = writer.stream();
  WritePod<uint32_t>(out, n);
  WritePod<uint32_t>(out, categories.num_categories());
  for (uint32_t r = 0; r < n; ++r) {
    WritePod<VertexId>(out, labeling.HubVertex(r));
  }
  for (uint64_t off : label_offsets) WritePod<uint64_t>(out, off);
  for (uint64_t off : category_offsets) WritePod<uint64_t>(out, off);
  writer.Commit();
}

DiskLabelStore::DiskLabelStore(const std::string& dir) : dir_(dir) {
  std::ifstream in(dir + "/meta.bin", std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + dir + "/meta.bin");
  num_vertices_ = ReadPod<uint32_t>(in);
  uint32_t num_categories = ReadPod<uint32_t>(in);
  order_.resize(num_vertices_);
  for (uint32_t r = 0; r < num_vertices_; ++r) {
    order_[r] = ReadPod<VertexId>(in);
  }
  label_offsets_.resize(2 * static_cast<size_t>(num_vertices_));
  for (uint64_t& off : label_offsets_) off = ReadPod<uint64_t>(in);
  category_offsets_.resize(num_categories);
  for (uint64_t& off : category_offsets_) off = ReadPod<uint64_t>(in);
}

DiskLabelStore::QueryContext DiskLabelStore::Load(
    VertexId s, VertexId t, const CategorySequence& sequence) const {
  WallTimer timer;
  QueryContext ctx;
  std::vector<std::vector<LabelEntry>> in_labels(num_vertices_);
  std::vector<std::vector<LabelEntry>> out_labels(num_vertices_);

  std::ifstream cats(dir_ + "/categories.bin", std::ios::binary);
  if (!cats) throw std::runtime_error("cannot open categories.bin");
  for (CategoryId c : sequence) {
    cats.seekg(static_cast<std::streamoff>(category_offsets_.at(c)));
    ++ctx.disk_seeks;
    uint64_t member_count = ReadPod<uint64_t>(cats);
    for (uint64_t i = 0; i < member_count; ++i) {
      VertexId m = ReadPod<VertexId>(cats);
      out_labels[m] = ReadLabels(cats);
    }
    ctx.slot_indexes.push_back(
        InvertedLabelIndex::Deserialize(cats, num_vertices_));
  }

  std::ifstream labels(dir_ + "/labels.bin", std::ios::binary);
  if (!labels) throw std::runtime_error("cannot open labels.bin");
  // Source: Lout(s).
  labels.seekg(static_cast<std::streamoff>(label_offsets_[2 * s + 1]));
  ++ctx.disk_seeks;
  out_labels[s] = ReadLabels(labels);
  // Destination: Lin(t).
  labels.seekg(static_cast<std::streamoff>(label_offsets_[2 * t]));
  ++ctx.disk_seeks;
  in_labels[t] = ReadLabels(labels);

  ctx.labeling = HubLabeling::FromParts(order_, std::move(in_labels),
                                        std::move(out_labels));
  ctx.load_seconds = timer.ElapsedSeconds();
  return ctx;
}

}  // namespace kosr
