#ifndef KOSR_LABELING_DISK_STORE_H_
#define KOSR_LABELING_DISK_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/categories.h"
#include "src/labeling/hub_labeling.h"
#include "src/nn/inverted_label_index.h"

namespace kosr {

/// Disk-resident label storage (Sec. IV-C "Disk-based query answering" — the
/// SK-DB method of the evaluation).
///
/// Indexes are laid out by category: each category file bundles the member
/// vertices' Lout labels together with the category's inverted label index,
/// so a KOSR query touches one contiguous region per sequence category plus
/// the source's Lout and the destination's Lin — |C| + 2 seeks here (the
/// paper counts |C| + 4 including its B+-tree locator lookups; our offset
/// table is held in memory, playing the B+ tree's role).
class DiskLabelStore {
 public:
  /// Writes the store under `dir` (created if absent).
  static void Write(const std::string& dir, const HubLabeling& labeling,
                    const CategoryTable& categories);

  /// Opens a store and reads its offset tables.
  explicit DiskLabelStore(const std::string& dir);

  /// Everything needed to answer one query from the loaded working set.
  struct QueryContext {
    HubLabeling labeling;  ///< Partial: only loaded vertices are populated.
    std::vector<InvertedLabelIndex> slot_indexes;  ///< One per category.
    double load_seconds = 0;
    uint32_t disk_seeks = 0;
  };

  /// Loads the working set of the query (s, t, sequence).
  QueryContext Load(VertexId s, VertexId t,
                    const CategorySequence& sequence) const;

  uint32_t num_vertices() const { return num_vertices_; }
  uint32_t num_categories() const { return static_cast<uint32_t>(category_offsets_.size()); }

 private:
  std::string dir_;
  uint32_t num_vertices_ = 0;
  std::vector<VertexId> order_;
  // Byte offsets into labels.bin: [2v] = Lin(v), [2v+1] = Lout(v).
  std::vector<uint64_t> label_offsets_;
  // Byte offsets into categories.bin, one per category.
  std::vector<uint64_t> category_offsets_;
};

}  // namespace kosr

#endif  // KOSR_LABELING_DISK_STORE_H_
