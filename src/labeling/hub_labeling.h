#ifndef KOSR_LABELING_HUB_LABELING_H_
#define KOSR_LABELING_HUB_LABELING_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/types.h"

namespace kosr {

/// One 2-hop label entry. Hubs are identified by their *rank* in the
/// construction order (rank 0 = most important); both label sets of a vertex
/// are sorted by rank, so distance queries are a linear merge-join, exactly
/// as in Sec. IV-A of the paper.
///
/// `parent` is the Dijkstra-tree neighbor of the labeled vertex on the
/// shortest path between hub and vertex. It allows reconstructing actual
/// routes from witnesses ("by adding a parent vertex in each label entry of
/// the hop labeling, it is easy to construct the actual route" — Sec. IV-A).
struct LabelEntry {
  uint32_t hub_rank;
  uint32_t dist;
  VertexId parent;  ///< kInvalidVertex for the hub's own self-entry.

  friend bool operator==(const LabelEntry&, const LabelEntry&) = default;
};

/// Sentinel for unreachable in 32-bit label distances.
inline constexpr uint32_t kInfLabelDist = UINT32_MAX;

/// 2-hop labeling (a.k.a. hub labeling) for directed weighted graphs, built
/// with Pruned Landmark Labeling [Akiba et al., SIGMOD 2013] generalized to
/// weighted graphs (pruned Dijkstra instead of pruned BFS).
///
/// For every vertex v the index keeps:
///   Lin(v)  — hubs that reach v, with dis(hub, v);
///   Lout(v) — hubs reachable from v, with dis(v, hub);
/// satisfying the cover property: for any s, t some hub on a shortest s-t
/// path appears in both Lout(s) and Lin(t).
class HubLabeling {
 public:
  HubLabeling() = default;

  /// Builds the index. `order[r]` is the vertex with rank r; it must be a
  /// permutation of [0, n). Higher-ranked (smaller r) vertices become hubs
  /// of more label entries; a good order is crucial for index size.
  ///
  /// `num_threads` parallelizes construction with rank-batched pruned
  /// searches (0 = hardware concurrency). The output is byte-identical for
  /// every thread count: search threads only read labels committed by
  /// earlier batches, and a sequential commit phase re-checks the prune
  /// condition in rank order before merging, so exactly the canonical label
  /// set survives (see DESIGN.md, "Parallel index construction").
  void Build(const Graph& graph, const std::vector<VertexId>& order,
             uint32_t num_threads = 1);

  /// Convenience: Build with the degree-product order.
  void Build(const Graph& graph, uint32_t num_threads = 1);

  /// Vertices sorted by (in+1)*(out+1) degree product, descending. A decent
  /// general-purpose PLL order. `num_threads` parallelizes the key
  /// computation and sort (deterministic: ties broken by vertex id).
  static std::vector<VertexId> DegreeOrder(const Graph& graph,
                                           uint32_t num_threads = 1);

  /// dis(s, t), or kInfCost if t is unreachable from s.
  Cost Query(VertexId s, VertexId t) const;

  /// dis(s, t) together with the witnessing hub rank.
  std::optional<std::pair<Cost, uint32_t>> QueryWithHub(VertexId s,
                                                        VertexId t) const;

  /// Shortest s-t path as a full vertex sequence (empty if unreachable,
  /// {s} if s == t). Cost of the returned path equals Query(s, t).
  std::vector<VertexId> UnpackPath(VertexId s, VertexId t) const;

  std::span<const LabelEntry> Lin(VertexId v) const { return in_labels_[v]; }
  std::span<const LabelEntry> Lout(VertexId v) const { return out_labels_[v]; }

  uint32_t num_vertices() const { return static_cast<uint32_t>(in_labels_.size()); }
  VertexId HubVertex(uint32_t rank) const { return order_[rank]; }
  uint32_t RankOf(VertexId v) const { return rank_[v]; }

  /// Incremental maintenance for an edge insertion or weight decrease
  /// (u, v, w), following the resumed-search strategy of dynamic PLL
  /// [Akiba et al., WWW 2014]. Distances can only decrease, so it suffices
  /// to resume the pruned searches of the hubs that cover u (backward side)
  /// and v (forward side). Edge deletions / weight increases require a
  /// rebuild (see DESIGN.md).
  ///
  /// The underlying graph object must already contain the new edge when the
  /// index is used for path unpacking afterwards.
  void OnEdgeDecreased(const Graph& graph, VertexId u, VertexId v, Weight w);

  // --- Introspection (Table IX) -------------------------------------------

  double AvgInLabelSize() const;
  double AvgOutLabelSize() const;
  uint64_t IndexBytes() const;
  double BuildSeconds() const { return build_seconds_; }

  // --- Serialization (disk-resident variant, Sec. IV-C) -------------------

  void Serialize(std::ostream& out) const;
  /// Reads a snapshot, rejecting malformed input with std::runtime_error:
  /// the order must be a permutation of [0, n), label vectors are bounded by
  /// n entries and must be strictly rank-sorted with hub_rank < n and parent
  /// < n (or kInvalidVertex). serve --indexes feeds this untrusted files, so
  /// no field is trusted before it is range-checked. Callers that know the
  /// graph (LoadIndexes) pass `expected_vertices` so an absurd claimed
  /// vertex count is rejected before the O(n) allocations, not after
  /// (0 = accept any count).
  static HubLabeling Deserialize(std::istream& in,
                                 uint32_t expected_vertices = 0);

  /// Assembles a (possibly partial) labeling from raw parts. Vertices whose
  /// label vectors are empty simply answer "unreachable"; the disk-resident
  /// store uses this to materialize exactly the per-query working set.
  /// Applies the same validation as Deserialize (std::runtime_error).
  static HubLabeling FromParts(std::vector<VertexId> order,
                               std::vector<std::vector<LabelEntry>> in_labels,
                               std::vector<std::vector<LabelEntry>> out_labels);

 private:
  struct SearchContext;    // Per-thread pruned-Dijkstra scratch.
  struct CandidateLabel;   // (vertex, dist, parent) produced by a search.

  // Runs one pruned Dijkstra from hub of rank `rank` in the given direction.
  // `seeds` is {(hub, 0)} during construction, or resumed frontiers during
  // incremental updates. With `candidates` null the surviving labels are
  // committed directly (sequential/update mode, mutates labels); otherwise
  // the search is read-only and appends candidates for a later commit.
  void PrunedSearch(const Graph& graph, uint32_t rank, bool forward,
                    const std::vector<std::pair<VertexId, Cost>>& seeds,
                    SearchContext& ctx,
                    std::vector<CandidateLabel>* candidates);

  // Commit phase of the rank-batched parallel build: re-checks every
  // candidate of `rank` against the labels committed so far (which now
  // include same-batch ranks < rank) and merges the survivors.
  void CommitCandidates(uint32_t rank, bool forward,
                        const std::vector<CandidateLabel>& candidates,
                        SearchContext& ctx);

  std::vector<std::vector<LabelEntry>> in_labels_;
  std::vector<std::vector<LabelEntry>> out_labels_;
  std::vector<VertexId> order_;
  std::vector<uint32_t> rank_;
  double build_seconds_ = 0;
};

}  // namespace kosr

#endif  // KOSR_LABELING_HUB_LABELING_H_
