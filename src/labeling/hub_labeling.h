#ifndef KOSR_LABELING_HUB_LABELING_H_
#define KOSR_LABELING_HUB_LABELING_H_

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/obs/counters.h"
#include "src/util/types.h"

namespace kosr {

/// One 2-hop label entry. Hubs are identified by their *rank* in the
/// construction order (rank 0 = most important); both label sets of a vertex
/// are sorted by rank, so distance queries are a linear merge-join, exactly
/// as in Sec. IV-A of the paper.
///
/// `parent` is the Dijkstra-tree neighbor of the labeled vertex on the
/// shortest path between hub and vertex. It allows reconstructing actual
/// routes from witnesses ("by adding a parent vertex in each label entry of
/// the hop labeling, it is easy to construct the actual route" — Sec. IV-A).
struct LabelEntry {
  uint32_t hub_rank;
  uint32_t dist;
  VertexId parent;  ///< kInvalidVertex for the hub's own self-entry.

  friend bool operator==(const LabelEntry&, const LabelEntry&) = default;
};

/// Sentinel for unreachable in 32-bit label distances.
inline constexpr uint32_t kInfLabelDist = UINT32_MAX;

/// Rank value terminating every sealed label run. Real ranks are < n <=
/// UINT32_MAX, so the sentinel compares greater than any of them and a
/// merge-join over two sealed runs needs no end-of-run checks at all.
inline constexpr uint32_t kSentinelRank = UINT32_MAX;

/// Packed hot entry of the sealed store: rank in the high 32 bits, dist in
/// the low 32. Runs stay sorted ascending by the packed value (ranks are
/// unique within a run, so rank-major packing preserves rank order), one
/// 8-byte load serves both the merge comparison and the distance sum, and
/// the sentinel packs to UINT64_MAX.
inline constexpr uint64_t PackLabelKey(uint32_t rank, uint32_t dist) {
  return (static_cast<uint64_t>(rank) << 32) | dist;
}
inline constexpr uint64_t kSentinelKey =
    PackLabelKey(kSentinelRank, kInfLabelDist);

/// Sentinel slots trailing every sealed run. The first one terminates the
/// scalar merge; the extra slots license a merge variant that peeks up to
/// `kRunPadding - 1` entries ahead (block skips, SIMD loads — see the
/// ROADMAP item) to do so without bounds checks: a peek from inside a run
/// can only land on that run's entries or its sentinels, never on the next
/// run packed behind it.
inline constexpr uint32_t kRunPadding = 4;

/// View of one sealed label run: a hot array of packed (rank, dist) keys
/// (terminated one slot past `size` by kSentinelKey, so consumers may
/// iterate by `size` or until the sentinel) and a cold parallel `parent`
/// array that only path unpacking touches.
struct LabelRun {
  const uint64_t* key;
  const VertexId* parent;
  uint32_t size;

  uint32_t RankAt(uint32_t i) const {
    return static_cast<uint32_t>(key[i] >> 32);
  }
  uint32_t DistAt(uint32_t i) const { return static_cast<uint32_t>(key[i]); }
};

/// Summary of an incremental label repair: exactly the vertices whose label
/// vectors actually changed (vertices a repair search merely revisited with
/// identical entries are filtered out). `old_in[i]` holds the pre-repair
/// Lin(changed_in[i]) so consumers that mirror per-vertex Lin state — the
/// per-category inverted label indexes — can diff old against current
/// entries and patch only the affected lists instead of rebuilding. Lout has
/// no such consumer, so only the changed-vertex list is reported for it.
struct LabelRepairDelta {
  std::vector<VertexId> changed_in;                 ///< Sorted, unique.
  std::vector<std::vector<LabelEntry>> old_in;      ///< Parallel to changed_in.
  std::vector<VertexId> changed_out;                ///< Sorted, unique.

  bool Empty() const { return changed_in.empty() && changed_out.empty(); }
  uint64_t ChangedVertices() const {
    return changed_in.size() + changed_out.size();
  }
};

/// Index of rank `r` within the run, or `run.size` if absent.
inline uint32_t FindRankInRun(const LabelRun& run, uint32_t r) {
  const uint64_t* end = run.key + run.size;
  // The first key with rank >= r is the first key >= (r << 32).
  const uint64_t* it = std::lower_bound(run.key, end, PackLabelKey(r, 0));
  if (it == end || (*it >> 32) != r) return run.size;
  return static_cast<uint32_t>(it - run.key);
}

/// 2-hop labeling (a.k.a. hub labeling) for directed weighted graphs, built
/// with Pruned Landmark Labeling [Akiba et al., SIGMOD 2013] generalized to
/// weighted graphs (pruned Dijkstra instead of pruned BFS).
///
/// For every vertex v the index keeps:
///   Lin(v)  — hubs that reach v, with dis(hub, v);
///   Lout(v) — hubs reachable from v, with dis(v, hub);
/// satisfying the cover property: for any s, t some hub on a shortest s-t
/// path appears in both Lout(s) and Lin(t).
class HubLabeling {
 public:
  HubLabeling() = default;

  /// Builds the index. `order[r]` is the vertex with rank r; it must be a
  /// permutation of [0, n). Higher-ranked (smaller r) vertices become hubs
  /// of more label entries; a good order is crucial for index size.
  ///
  /// `num_threads` parallelizes construction with rank-batched pruned
  /// searches (0 = hardware concurrency). The output is byte-identical for
  /// every thread count: search threads only read labels committed by
  /// earlier batches, and a sequential commit phase re-checks the prune
  /// condition in rank order before merging, so exactly the canonical label
  /// set survives (see DESIGN.md, "Parallel index construction").
  void Build(const Graph& graph, const std::vector<VertexId>& order,
             uint32_t num_threads = 1);

  /// Convenience: Build with the degree-product order.
  void Build(const Graph& graph, uint32_t num_threads = 1);

  /// Vertices sorted by (in+1)*(out+1) degree product, descending. A decent
  /// general-purpose PLL order. `num_threads` parallelizes the key
  /// computation and sort (deterministic: ties broken by vertex id).
  static std::vector<VertexId> DegreeOrder(const Graph& graph,
                                           uint32_t num_threads = 1);

  /// dis(s, t), or kInfCost if t is unreachable from s. Runs on the sealed
  /// flat store: a sentinel-terminated merge-join over contiguous packed
  /// runs (with a galloping path when one run dwarfs the other). Defined
  /// inline below — this is the hottest entry point in the system (every
  /// FindNEN heuristic probe lands here), and inlining the merge into the
  /// caller's loop is measurably faster than a call into another TU.
  Cost Query(VertexId s, VertexId t) const;

  /// dis(s, t) together with the witnessing hub rank.
  std::optional<std::pair<Cost, uint32_t>> QueryWithHub(VertexId s,
                                                        VertexId t) const;

  /// Reference implementation of QueryWithHub over the nested label
  /// vectors, bypassing the flat store. Kept for the flat-vs-nested
  /// equivalence property test and the bench_label_query before/after
  /// comparison; not a production path.
  std::optional<std::pair<Cost, uint32_t>> QueryWithHubReference(
      VertexId s, VertexId t) const;

  /// Shortest s-t path as a full vertex sequence (empty if unreachable,
  /// {s} if s == t). Cost of the returned path equals Query(s, t).
  std::vector<VertexId> UnpackPath(VertexId s, VertexId t) const;

  std::span<const LabelEntry> Lin(VertexId v) const { return in_labels_[v]; }
  std::span<const LabelEntry> Lout(VertexId v) const { return out_labels_[v]; }

  // --- Sealed flat store ----------------------------------------------------
  // Build/Deserialize/FromParts construct into the nested vectors above (the
  // mutable source of truth, which serialization also reads) and then seal a
  // flat CSR/SoA read view; the incremental repairs (OnEdgeDecreased /
  // OnEdgeIncreased / OnEdgeRemoved) re-seal only the runs of vertices whose
  // labels they changed. Queries and the NN machinery read the flat view
  // exclusively. See DESIGN.md, "Label memory layout".

  /// Flat run of Lin(v) / Lout(v). Valid while the labeling is unchanged.
  LabelRun InRun(VertexId v) const { return flat_in_.Run(v); }
  LabelRun OutRun(VertexId v) const { return flat_out_.Run(v); }

  /// Bytes held by the sealed flat arrays (entries + sentinels + run table).
  uint64_t FlatBytes() const;

  uint32_t num_vertices() const { return static_cast<uint32_t>(in_labels_.size()); }
  VertexId HubVertex(uint32_t rank) const { return order_[rank]; }
  uint32_t RankOf(VertexId v) const { return rank_[v]; }

  // --- Incremental maintenance (Sec. IV-C) ----------------------------------
  // All three edge-update repairs share one canonical algorithm (DESIGN.md,
  // "Dynamic updates"): identify the *affected hubs* — exactly those with a
  // shortest path through the updated arc in the old or new graph, found by
  // tightness tests on the pre-update labels — drop their label entries,
  // and re-run their full pruned searches in rank order. Because the hub
  // order covers every vertex, unaffected hubs' entries are provably
  // already canonical for the new graph, so the result is byte-identical
  // to a from-scratch Build on the updated graph with the same hub order
  // (asserted in dynamic_update_test), after any mix of updates. An empty
  // delta therefore certifies that *no* distance, parent chain, or label
  // changed at all — callers use that to skip downstream invalidation.

  /// Repair after an edge insertion or weight decrease of arc (u, v) to
  /// `w`; `graph` must already contain the new weight. Affected hubs are
  /// those with dis(h, u) + w <= dis(h, v) on the old labels (ties
  /// included: a new equal-cost path can re-cover entries and re-tie
  /// canonical parents); a strictly cheaper existing route short-circuits
  /// the whole repair with one label query.
  LabelRepairDelta OnEdgeDecreased(const Graph& graph, VertexId u, VertexId v,
                                   Weight w);

  /// Repair after a weight *increase* of arc (u, v): `old_weight` is the
  /// minimum u->v weight before the update, `graph` already carries the
  /// raised weight. Affected hubs are those with dis(h, u) + old_weight ==
  /// dis(h, v) on the pre-update labels — an old shortest path used (or
  /// tied with) the arc.
  LabelRepairDelta OnEdgeIncreased(const Graph& graph, VertexId u, VertexId v,
                                   Weight old_weight);

  /// Repair after the deletion of arc (u, v); `old_weight` is the minimum
  /// u->v weight before removal and `graph` must no longer contain the
  /// arc. A deletion is a weight increase to infinity: same test.
  LabelRepairDelta OnEdgeRemoved(const Graph& graph, VertexId u, VertexId v,
                                 Weight old_weight);

  /// One coalesced arc change inside a batched repair: the net effect of
  /// every update to arc (u, v) within the batch. `tight_old` is the
  /// pre-batch minimum u->v weight (absent when the net effect is an
  /// insertion or pure decrease), `tight_new` the post-batch one (absent
  /// when the net effect is a deletion or pure increase) — exactly the
  /// tights the single-update entry points pass to the canonical repair.
  struct EdgeRepairRequest {
    VertexId u = 0;
    VertexId v = 0;
    std::optional<Cost> tight_old;
    std::optional<Cost> tight_new;
  };

  /// Batched canonical repair (ISSUE 8): unions the affected-hub sets of
  /// all requests — each identified by the same tightness tests on the
  /// shared pre-batch labels — scrubs the union once, and re-runs each
  /// affected hub's pruned search once, in the canonical rank order.
  /// `graph` must already carry every post-batch weight. Requests whose
  /// short-circuit fires (an existing route strictly beats every engaged
  /// tight, so neither test can fire for any hub) are skipped
  /// individually. Equivalent to applying the requests one at a time —
  /// and byte-identical to a from-scratch rebuild — at the cost of one
  /// affected-hub sweep and one re-search per hub instead of one per
  /// update (the batched direction of dynamic pruned landmark labeling,
  /// Akiba et al., WWW'14).
  LabelRepairDelta RepairEdgeUpdates(const Graph& graph,
                                     std::span<const EdgeRepairRequest> requests);

  // --- Introspection (Table IX) -------------------------------------------

  double AvgInLabelSize() const;
  double AvgOutLabelSize() const;
  uint64_t IndexBytes() const;
  double BuildSeconds() const { return build_seconds_; }

  // --- Serialization (disk-resident variant, Sec. IV-C) -------------------

  void Serialize(std::ostream& out) const;
  /// Reads a snapshot, rejecting malformed input with std::runtime_error:
  /// the order must be a permutation of [0, n), label vectors are bounded by
  /// n entries and must be strictly rank-sorted with hub_rank < n and parent
  /// < n (or kInvalidVertex). serve --indexes feeds this untrusted files, so
  /// no field is trusted before it is range-checked. Callers that know the
  /// graph (LoadIndexes) pass `expected_vertices` so an absurd claimed
  /// vertex count is rejected before the O(n) allocations, not after
  /// (0 = accept any count).
  static HubLabeling Deserialize(std::istream& in,
                                 uint32_t expected_vertices = 0);

  /// Assembles a (possibly partial) labeling from raw parts. Vertices whose
  /// label vectors are empty simply answer "unreachable"; the disk-resident
  /// store uses this to materialize exactly the per-query working set.
  /// Applies the same validation as Deserialize (std::runtime_error).
  static HubLabeling FromParts(std::vector<VertexId> order,
                               std::vector<std::vector<LabelEntry>> in_labels,
                               std::vector<std::vector<LabelEntry>> out_labels);

 private:
  struct SearchContext;    // Per-thread pruned-Dijkstra scratch.
  struct CandidateLabel;   // (vertex, dist, parent) produced by a search.
  struct RepairTracker;    // First-touch pre-repair label snapshots.

  /// One direction of the sealed flat store. Runs live back to back in the
  /// hot `key` array (packed rank|dist, each run terminated by a
  /// kSentinelKey slot) with parents in a cold parallel array; `start[v]`
  /// points at v's run (not necessarily in vertex order after re-seals),
  /// `len[v]` is its entry count. Slot 0 holds one shared sentinel block
  /// that every empty run points at — a disk-store working set is almost
  /// entirely empty runs. A re-sealed run that outgrew its slot is
  /// appended at the tail and the old slots become garbage until the next
  /// full seal.
  struct FlatSide {
    /// Per-vertex run locator, fused so one cache-line touch yields both
    /// fields (start and len in separate arrays cost a second scattered
    /// load on every probe).
    struct RunRef {
      uint64_t start;
      uint32_t len;
    };
    std::vector<RunRef> runs;
    std::vector<uint64_t> key;
    std::vector<VertexId> parent;
    uint64_t garbage = 0;  ///< Abandoned slots (entries + sentinels).

    void Seal(const std::vector<std::vector<LabelEntry>>& labels);
    void ResealRun(VertexId v, const std::vector<LabelEntry>& labels);
    LabelRun Run(VertexId v) const {
      const RunRef& r = runs[v];
      return {key.data() + r.start, parent.data() + r.start, r.len};
    }
    uint64_t Bytes() const;
  };

  /// (Re)builds both flat sides from the nested vectors.
  void Seal();
  /// Query fallback for lopsided run sizes (binary-search intersection of
  /// the shorter run in the longer). Records the witnessing hub rank of
  /// the best match in `best_rank` (untouched if unreachable).
  Cost QueryGallop(const LabelRun& a, const LabelRun& b,
                   uint32_t& best_rank) const;
  /// Re-seals the runs of the given vertices (duplicates fine); falls back
  /// to a full seal of that side once garbage crosses the compaction bound.
  static void ResealTouched(FlatSide& side,
                            const std::vector<std::vector<LabelEntry>>& labels,
                            std::vector<VertexId>& touched);

  // Runs one pruned Dijkstra from hub of rank `rank` in the given direction.
  // `seeds` is {(hub, 0)} during construction and re-searches, or resumed
  // frontiers during incremental decrease updates. With `candidates` null
  // the surviving labels are committed directly (sequential/update mode,
  // mutates labels; `tracker`, if given, snapshots every label vector just
  // before its first mutation so the repair can report exactly what
  // changed); otherwise the search is read-only and appends candidates for
  // a later commit.
  void PrunedSearch(const Graph& graph, uint32_t rank, bool forward,
                    const std::vector<std::pair<VertexId, Cost>>& seeds,
                    SearchContext& ctx,
                    std::vector<CandidateLabel>* candidates,
                    RepairTracker* tracker = nullptr);

  // Shared canonical repair for every edge-update kind. `tight_old` is the
  // pre-update minimum u->v weight (absent for an insertion), `tight_new`
  // the post-update one (absent for a deletion); a hub is affected when
  // either tightness test fires. `graph` is the post-update graph, labels
  // still pre-update.
  LabelRepairDelta RepairEdgeUpdate(const Graph& graph, VertexId u, VertexId v,
                                    std::optional<Cost> tight_old,
                                    std::optional<Cost> tight_new);

  // Diffs the tracker's pre-repair snapshots against the current vectors,
  // re-seals exactly the changed flat runs, and assembles the delta.
  LabelRepairDelta FinishRepair(RepairTracker& tracker);

  // Commit phase of the rank-batched parallel build: re-checks every
  // candidate of `rank` against the labels committed so far (which now
  // include same-batch ranks < rank) and merges the survivors.
  void CommitCandidates(uint32_t rank, bool forward,
                        const std::vector<CandidateLabel>& candidates,
                        SearchContext& ctx);

  std::vector<std::vector<LabelEntry>> in_labels_;
  std::vector<std::vector<LabelEntry>> out_labels_;
  FlatSide flat_in_;
  FlatSide flat_out_;
  std::vector<VertexId> order_;
  std::vector<uint32_t> rank_;
  double build_seconds_ = 0;
};

/// Runs dwarfed past this size ratio take the galloping path; below it the
/// linear sentinel merge wins (no mispredicted lower_bound branches,
/// contiguous streaming reads).
inline constexpr uint32_t kGallopRatio = 16;

/// True when one run dwarfs the other enough for galloping to pay off.
inline bool RunsLopsided(const LabelRun& a, const LabelRun& b) {
  return a.size > kGallopRatio * b.size || b.size > kGallopRatio * a.size;
}

/// The sentinel-terminated merge-join over the packed (rank << 32 | dist)
/// keys, shared by Query (TrackHub = false) and QueryWithHub (TrackHub =
/// true, records the witnessing hub rank in `best_rank`): one 8-byte load
/// per entry serves both the rank comparison and the distance sum, and
/// because every run ends in kSentinelKey slots the loop needs no bounds
/// checks — both cursors stop on their sentinels. The skip comparisons run
/// on the full packed keys (ranks in the high half order them whenever the
/// ranks differ, with no per-load shift); equal ranks are detected by the
/// high halves matching, i.e. the keys xor-ing to less than 2^32.
template <bool TrackHub>
inline Cost MergeLabelRuns(const LabelRun& a, const LabelRun& b,
                           uint32_t& best_rank) {
  const uint64_t* ak = a.key;
  const uint64_t* bk = b.key;
  uint64_t ka = *ak;
  uint64_t kb = *bk;
  Cost best = kInfCost;
  // Work accounting (ISSUE 7): iterations counted in a register, scanned
  // entries recovered from the cursor positions — the thread-local flush
  // happens once per merge, after the loop, never inside it.
  uint64_t compares = 0;
  for (;;) {
    ++compares;
    if ((ka ^ kb) < (uint64_t{1} << 32)) {  // same rank
      if (ka == kSentinelKey) break;
      Cost d = static_cast<Cost>(static_cast<uint32_t>(ka)) +
               static_cast<uint32_t>(kb);
      if (d < best) {
        best = d;
        if constexpr (TrackHub) best_rank = static_cast<uint32_t>(ka >> 32);
      }
      ka = *++ak;
      kb = *++bk;
    } else if (ka < kb) {
      ka = *++ak;
    } else {
      kb = *++bk;
    }
  }
  KOSR_COUNT(kMergeJoinCompares, compares);
  KOSR_COUNT(kLabelEntriesScanned,
             static_cast<uint64_t>(ak - a.key) +
                 static_cast<uint64_t>(bk - b.key));
  return best;
}

inline Cost HubLabeling::Query(VertexId s, VertexId t) const {
  KOSR_COUNT(kLabelQueries, 1);
  LabelRun a = flat_out_.Run(s);
  LabelRun b = flat_in_.Run(t);
  uint32_t unused_rank = 0;
  if (RunsLopsided(a, b)) return QueryGallop(a, b, unused_rank);
  return MergeLabelRuns<false>(a, b, unused_rank);
}

}  // namespace kosr

#endif  // KOSR_LABELING_HUB_LABELING_H_
