#include "src/labeling/hub_labeling.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/obs/counters.h"
#include "src/util/min_heap.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace kosr {
namespace {

// Binary search for a rank in a rank-sorted label vector. Returns nullptr if
// absent.
const LabelEntry* FindRank(std::span<const LabelEntry> labels, uint32_t rank) {
  auto it = std::lower_bound(
      labels.begin(), labels.end(), rank,
      [](const LabelEntry& e, uint32_t r) { return e.hub_rank < r; });
  if (it == labels.end() || it->hub_rank != rank) return nullptr;
  return &*it;
}

// Inserts or updates an entry, keeping the vector sorted by rank. Returns
// whether the vector changed (callers re-seal the flat runs of changed
// vertices only).
bool InsertOrUpdate(std::vector<LabelEntry>& labels, const LabelEntry& entry) {
  if (labels.empty() || labels.back().hub_rank < entry.hub_rank) {
    labels.push_back(entry);
    return true;
  }
  auto it = std::lower_bound(labels.begin(), labels.end(), entry.hub_rank,
                             [](const LabelEntry& e, uint32_t r) {
                               return e.hub_rank < r;
                             });
  if (it != labels.end() && it->hub_rank == entry.hub_rank) {
    if (entry.dist < it->dist) {
      *it = entry;
      return true;
    }
    return false;
  }
  labels.insert(it, entry);
  return true;
}

bool IsPermutation(const std::vector<VertexId>& order, uint32_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (VertexId v : order) {
    if (v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

// Snapshot validation shared by Deserialize and FromParts: every field of a
// label entry is attacker-controlled until proven otherwise.
void ValidateLabelVector(const std::vector<LabelEntry>& labels, uint32_t n,
                         const char* what) {
  uint32_t prev_rank = 0;
  bool first = true;
  for (const LabelEntry& e : labels) {
    if (e.hub_rank >= n) {
      throw std::runtime_error(std::string(what) + ": hub rank out of range");
    }
    if (!first && e.hub_rank <= prev_rank) {
      throw std::runtime_error(std::string(what) +
                               ": label vector not strictly rank-sorted");
    }
    if (e.parent != kInvalidVertex && e.parent >= n) {
      throw std::runtime_error(std::string(what) + ": parent out of range");
    }
    prev_rank = e.hub_rank;
    first = false;
  }
}

}  // namespace

// One (vertex, dist, parent) produced by a batched search, pending the
// commit-phase prune re-check.
struct HubLabeling::CandidateLabel {
  VertexId vertex;
  uint32_t dist;
  VertexId parent;
};

// First-touch pre-repair snapshots of label vectors, captured immediately
// before their first mutation. FinishRepair diffs them against the final
// vectors, so the reported delta lists exactly the vertices whose labels
// actually changed — a repair search that removes and re-inserts identical
// entries (tight-but-unchanged hubs) contributes nothing.
struct HubLabeling::RepairTracker {
  std::unordered_map<VertexId, std::vector<LabelEntry>> old_in;
  std::unordered_map<VertexId, std::vector<LabelEntry>> old_out;

  void Capture(bool in_side, VertexId v, const std::vector<LabelEntry>& cur) {
    (in_side ? old_in : old_out).try_emplace(v, cur);
  }
};

// Per-thread pruned-Dijkstra scratch. dist/parent are dense arrays reset via
// the touched list (cheap for small search spaces); scratch is the dense
// distance table keyed by hub rank holding the current hub's opposite-side
// labels during prune checks.
struct HubLabeling::SearchContext {
  std::vector<Cost> dist;
  std::vector<VertexId> parent;
  std::vector<VertexId> touched;
  IndexedMinHeap heap;
  std::vector<Cost> scratch;
  std::vector<uint32_t> scratch_touched;

  explicit SearchContext(uint32_t n)
      : dist(n, kInfCost),
        parent(n, kInvalidVertex),
        heap(n),
        scratch(n, kInfCost) {}
};

void HubLabeling::FlatSide::Seal(
    const std::vector<std::vector<LabelEntry>>& labels) {
  size_t n = labels.size();
  runs.resize(n);
  uint64_t total = kRunPadding;  // the shared empty run at slot 0
  for (const auto& l : labels) {
    if (!l.empty()) total += l.size() + kRunPadding;
  }
  key.clear();
  parent.clear();
  key.reserve(total);
  parent.reserve(total);
  // Slot 0 is one shared sentinel block that every empty run points at —
  // a disk-store working set (FromParts) is almost entirely empty runs,
  // and paying kRunPadding slots for each of those would triple its
  // footprint for no information.
  for (uint32_t p = 0; p < kRunPadding; ++p) {
    key.push_back(kSentinelKey);
    parent.push_back(kInvalidVertex);
  }
  for (size_t v = 0; v < n; ++v) {
    runs[v].len = static_cast<uint32_t>(labels[v].size());
    if (labels[v].empty()) {
      runs[v].start = 0;
      continue;
    }
    runs[v].start = key.size();
    for (const LabelEntry& e : labels[v]) {
      key.push_back(PackLabelKey(e.hub_rank, e.dist));
      parent.push_back(e.parent);
    }
    for (uint32_t p = 0; p < kRunPadding; ++p) {
      key.push_back(kSentinelKey);
      parent.push_back(kInvalidVertex);
    }
  }
  garbage = 0;
}

void HubLabeling::FlatSide::ResealRun(VertexId v,
                                      const std::vector<LabelEntry>& labels) {
  uint32_t old_len = runs[v].len;
  uint32_t new_len = static_cast<uint32_t>(labels.size());
  // Runs at slot 0 are views of the shared empty block (never owned), so
  // they have nothing to overwrite and nothing to turn into garbage.
  const bool shared_empty = runs[v].start == 0;
  if (new_len == 0) {
    // An emptied run (a deletion disconnected the vertex from every hub
    // that labeled it): repoint at the shared block, abandoning any owned
    // slot.
    if (!shared_empty) {
      garbage += old_len + kRunPadding;
      runs[v].start = 0;
    }
    runs[v].len = 0;
    return;
  }
  uint64_t s;
  if (!shared_empty && new_len <= old_len) {
    // Overwrite in place; the sentinel padding moves up and any slack
    // between the new padding and the old slot end becomes garbage
    // (increase/deletion repairs shrink runs whose hubs lost coverage).
    s = runs[v].start;
    garbage += old_len - new_len;
  } else {
    // The run grew past its slot (or out of the shared empty block):
    // append a fresh run at the tail and abandon any owned old slot.
    if (!shared_empty) garbage += old_len + kRunPadding;
    s = key.size();
    runs[v].start = s;
    key.resize(s + new_len + kRunPadding);
    parent.resize(s + new_len + kRunPadding);
  }
  for (uint32_t i = 0; i < new_len; ++i) {
    key[s + i] = PackLabelKey(labels[i].hub_rank, labels[i].dist);
    parent[s + i] = labels[i].parent;
  }
  for (uint32_t p = 0; p < kRunPadding; ++p) {
    key[s + new_len + p] = kSentinelKey;
    parent[s + new_len + p] = kInvalidVertex;
  }
  runs[v].len = new_len;
}

uint64_t HubLabeling::FlatSide::Bytes() const {
  return key.size() * (sizeof(uint64_t) + sizeof(VertexId)) +
         runs.size() * sizeof(RunRef);
}

void HubLabeling::Seal() {
  flat_in_.Seal(in_labels_);
  flat_out_.Seal(out_labels_);
}

void HubLabeling::ResealTouched(
    FlatSide& side, const std::vector<std::vector<LabelEntry>>& labels,
    std::vector<VertexId>& touched) {
  if (touched.empty()) return;
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (VertexId v : touched) side.ResealRun(v, labels[v]);
  // Compact once a quarter of the slots are dead — keeps the arrays within
  // a constant factor of the live size under sustained update streams.
  if (side.garbage * 4 > side.key.size()) side.Seal(labels);
}

uint64_t HubLabeling::FlatBytes() const {
  return flat_in_.Bytes() + flat_out_.Bytes();
}

std::vector<VertexId> HubLabeling::DegreeOrder(const Graph& graph,
                                               uint32_t num_threads) {
  uint32_t n = graph.num_vertices();
  // Precompute the keys once: the comparator runs O(n log n) times and the
  // degree lookups are two indirections each.
  std::vector<uint64_t> key(n);
  constexpr uint32_t kChunk = 4096;
  uint64_t chunks = (static_cast<uint64_t>(n) + kChunk - 1) / kChunk;
  ParallelForEachIndex(num_threads, chunks, [&](uint64_t c) {
    uint32_t lo = static_cast<uint32_t>(c * kChunk);
    uint32_t hi = std::min(n, lo + kChunk);
    for (VertexId v = lo; v < hi; ++v) {
      key[v] = static_cast<uint64_t>(graph.InDegree(v) + 1) *
               (graph.OutDegree(v) + 1);
    }
  });
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  ParallelSort(
      order,
      [&](VertexId a, VertexId b) {
        return key[a] != key[b] ? key[a] > key[b] : a < b;
      },
      num_threads);
  return order;
}

void HubLabeling::Build(const Graph& graph, uint32_t num_threads) {
  Build(graph, DegreeOrder(graph, num_threads), num_threads);
}

void HubLabeling::Build(const Graph& graph, const std::vector<VertexId>& order,
                        uint32_t num_threads) {
  uint32_t n = graph.num_vertices();
  if (!IsPermutation(order, n)) {
    throw std::invalid_argument("order must be a permutation of the vertices");
  }
  WallTimer timer;
  in_labels_.assign(n, {});
  out_labels_.assign(n, {});
  order_ = order;
  rank_.assign(n, 0);
  for (uint32_t r = 0; r < n; ++r) rank_[order_[r]] = r;

  num_threads = ResolveThreadCount(num_threads);
  if (num_threads == 1) {
    // Sequential fast path: labels commit directly during the search (the
    // prune there already runs against the fully committed prefix), so the
    // batched commit re-check would be pure duplicated work.
    SearchContext ctx(n);
    for (uint32_t r = 0; r < n; ++r) {
      PrunedSearch(graph, r, /*forward=*/true, {{order_[r], 0}}, ctx, nullptr);
      PrunedSearch(graph, r, /*forward=*/false, {{order_[r], 0}}, ctx,
                   nullptr);
    }
    Seal();
    build_seconds_ = timer.ElapsedSeconds();
    return;
  }

  // One persistent pool for the whole build: the batch loop below issues
  // one parallel-for per batch (hundreds per index), and respawning threads
  // each time dominated small-batch wall time.
  ThreadPool pool(num_threads);
  num_threads = pool.num_threads();
  std::vector<std::unique_ptr<SearchContext>> contexts;
  contexts.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    contexts.push_back(std::make_unique<SearchContext>(n));
  }

  // Rank-batched construction. Threads run pruned searches for every hub of
  // the batch against the labels committed by *earlier* batches only (the
  // label vectors are never written while searches run, so sharing them is
  // race-free); the weaker prune admits extra candidates, and the sequential
  // commit phase below re-checks each one in rank order against the labels
  // committed so far — including same-batch smaller ranks — so exactly the
  // canonical (sequential) label set survives. Batches start at size 1
  // because the top hubs have the largest searches and their labels prune
  // everything after them; the cap keeps all threads busy on the long tail
  // of small searches.
  //
  // Concurrency contract (DESIGN.md, "Concurrency contract"): this build
  // deliberately owns no lock. Each task writes only its own disjoint
  // candidates[task] slot, the shared label vectors are read-only while
  // searches run, and ParallelFor's internal mutex is the barrier whose
  // release/acquire ordering publishes each batch's committed labels to
  // the next batch's searches. Adding shared mutable state here means
  // adding a capability-annotated Mutex, not an atomic sprinkled in.
  const uint32_t batch_cap = std::max<uint32_t>(8 * num_threads, 64);
  std::vector<std::vector<CandidateLabel>> candidates;
  uint32_t batch_size = 1;
  for (uint32_t begin = 0; begin < n; begin += batch_size,
                batch_size = std::min(batch_size * 2, batch_cap)) {
    batch_size = std::min(batch_size, n - begin);
    const uint32_t tasks = 2 * batch_size;  // (rank, direction) pairs
    candidates.assign(tasks, {});
    pool.ParallelFor(tasks, [&](uint64_t task, uint32_t thread) {
      uint32_t rank = begin + static_cast<uint32_t>(task) / 2;
      bool forward = task % 2 == 0;
      PrunedSearch(graph, rank, forward, {{order_[rank], 0}},
                   *contexts[thread], &candidates[task]);
    });
    // Commit in rank order, forward before backward — the same order the
    // sequential build writes labels in.
    for (uint32_t i = 0; i < batch_size; ++i) {
      CommitCandidates(begin + i, /*forward=*/true, candidates[2 * i],
                       *contexts[0]);
      CommitCandidates(begin + i, /*forward=*/false, candidates[2 * i + 1],
                       *contexts[0]);
    }
  }
  Seal();
  build_seconds_ = timer.ElapsedSeconds();
}

void HubLabeling::PrunedSearch(
    const Graph& graph, uint32_t rank, bool forward,
    const std::vector<std::pair<VertexId, Cost>>& seeds, SearchContext& ctx,
    std::vector<CandidateLabel>* candidates, RepairTracker* tracker) {
  VertexId hub = order_[rank];

  // Load the hub's own opposite-side labels (ranks < `rank`) into the dense
  // scratch table: query(hub, x) (forward) is then a scan of Lin(x).
  const auto& hub_labels = forward ? out_labels_[hub] : in_labels_[hub];
  for (const LabelEntry& e : hub_labels) {
    if (e.hub_rank >= rank) break;
    ctx.scratch[e.hub_rank] = e.dist;
    ctx.scratch_touched.push_back(e.hub_rank);
  }

  auto& dist = ctx.dist;
  auto& parent = ctx.parent;
  auto& touched = ctx.touched;
  auto& heap = ctx.heap;

  for (const auto& [v, d] : seeds) {
    if (d < dist[v]) {
      if (dist[v] == kInfCost) touched.push_back(v);
      dist[v] = d;
      // Seed parents for resumed searches are patched by the caller via the
      // existing labels; for construction the seed is the hub itself.
      parent[v] = kInvalidVertex;
      heap.InsertOrDecrease(v, d);
    }
  }

  // Relaxations accumulate in a register and hit the thread-local slot once
  // per search, after the heap drains.
  uint64_t relaxations = 0;
  while (!heap.Empty()) {
    auto [d, x] = heap.ExtractMin();
    // Prune if hubs of strictly smaller rank already certify dis <= d.
    const auto& x_labels = forward ? in_labels_[x] : out_labels_[x];
    Cost covered = kInfCost;
    for (const LabelEntry& e : x_labels) {
      if (e.hub_rank >= rank) break;
      Cost via = ctx.scratch[e.hub_rank];
      if (via != kInfCost) covered = std::min(covered, via + e.dist);
    }
    if (covered <= d) continue;

    if (candidates != nullptr) {
      candidates->push_back({x, static_cast<uint32_t>(d), parent[x]});
    } else {
      auto& target_labels = forward ? in_labels_[x] : out_labels_[x];
      if (tracker != nullptr) tracker->Capture(forward, x, target_labels);
      InsertOrUpdate(target_labels, {rank, static_cast<uint32_t>(d), parent[x]});
    }

    auto arcs = forward ? graph.OutArcs(x) : graph.InArcs(x);
    for (const Arc& a : arcs) {
      ++relaxations;
      Cost nd = d + a.weight;
      if (nd < dist[a.head]) {
        if (dist[a.head] == kInfCost) touched.push_back(a.head);
        dist[a.head] = nd;
        parent[a.head] = x;
        heap.InsertOrDecrease(a.head, nd);
      } else if (nd == dist[a.head] && x < parent[a.head]) {
        // Canonical tie-break: among equal-cost predecessors keep the
        // smallest id. This makes the Dijkstra tree — and thus the stored
        // parent pointers — independent of exploration order, which is what
        // lets the batched parallel build reproduce the sequential labels
        // byte for byte (batched searches explore more than sequential ones
        // and would otherwise pick different shortest-path ties).
        parent[a.head] = x;
      }
    }
  }

  KOSR_COUNT(kPrunedRelaxations, relaxations);

  for (VertexId v : touched) {
    dist[v] = kInfCost;
    parent[v] = kInvalidVertex;
  }
  touched.clear();
  heap.Clear();
  for (uint32_t r : ctx.scratch_touched) ctx.scratch[r] = kInfCost;
  ctx.scratch_touched.clear();
}

void HubLabeling::CommitCandidates(
    uint32_t rank, bool forward, const std::vector<CandidateLabel>& candidates,
    SearchContext& ctx) {
  VertexId hub = order_[rank];
  // Same scratch layout as the search-time prune, but now over the fully
  // committed prefix: same-batch hubs of smaller rank are in by now.
  const auto& hub_labels = forward ? out_labels_[hub] : in_labels_[hub];
  for (const LabelEntry& e : hub_labels) {
    if (e.hub_rank >= rank) break;
    ctx.scratch[e.hub_rank] = e.dist;
    ctx.scratch_touched.push_back(e.hub_rank);
  }
  for (const CandidateLabel& c : candidates) {
    const auto& labels = forward ? in_labels_[c.vertex] : out_labels_[c.vertex];
    Cost covered = kInfCost;
    for (const LabelEntry& e : labels) {
      if (e.hub_rank >= rank) break;
      Cost via = ctx.scratch[e.hub_rank];
      if (via != kInfCost) covered = std::min(covered, via + e.dist);
    }
    if (covered <= static_cast<Cost>(c.dist)) continue;
    auto& target = forward ? in_labels_[c.vertex] : out_labels_[c.vertex];
    InsertOrUpdate(target, {rank, c.dist, c.parent});
  }
  for (uint32_t r : ctx.scratch_touched) ctx.scratch[r] = kInfCost;
  ctx.scratch_touched.clear();
}

namespace {

// Intersects a much shorter run against a much longer one by binary search
// instead of stepping the long run entry by entry. Matches are visited in
// increasing rank order with a strict improvement test, so the witnessing
// hub is identical to the merge-join's. The `lo` cursor only moves forward:
// both runs are rank-sorted, so earlier positions can never match again.
inline void GallopIntersect(const LabelRun& small, const LabelRun& big,
                            Cost& best, uint32_t& best_rank) {
  const uint64_t* lo = big.key;
  const uint64_t* end = big.key + big.size;
  // Probes accumulate in a register and hit the thread-local slot once per
  // intersection, never inside the loop.
  uint64_t probes = 0;
  for (uint32_t i = 0; i < small.size; ++i) {
    uint32_t r = small.RankAt(i);
    // First key with rank >= r (keys are rank-major packed).
    lo = std::lower_bound(lo, end, PackLabelKey(r, 0));
    ++probes;
    if (lo == end) break;
    if (static_cast<uint32_t>(*lo >> 32) == r) {
      Cost d = static_cast<Cost>(small.DistAt(i)) +
               static_cast<uint32_t>(*lo);
      if (d < best) {
        best = d;
        best_rank = r;
      }
    }
  }
  KOSR_COUNT(kGallopProbes, probes);
}

}  // namespace

Cost HubLabeling::QueryGallop(const LabelRun& a, const LabelRun& b,
                              uint32_t& best_rank) const {
  Cost best = kInfCost;
  if (a.size < b.size) {
    GallopIntersect(a, b, best, best_rank);
  } else {
    GallopIntersect(b, a, best, best_rank);
  }
  return best;
}

std::optional<std::pair<Cost, uint32_t>> HubLabeling::QueryWithHub(
    VertexId s, VertexId t) const {
  KOSR_COUNT(kLabelQueries, 1);
  LabelRun a = flat_out_.Run(s);
  LabelRun b = flat_in_.Run(t);
  Cost best = kInfCost;
  uint32_t best_rank = 0;
  if (RunsLopsided(a, b)) {
    best = QueryGallop(a, b, best_rank);
  } else {
    best = MergeLabelRuns<true>(a, b, best_rank);
  }
  if (best == kInfCost) return std::nullopt;
  return std::make_pair(best, best_rank);
}

std::optional<std::pair<Cost, uint32_t>> HubLabeling::QueryWithHubReference(
    VertexId s, VertexId t) const {
  const auto& a = out_labels_[s];
  const auto& b = in_labels_[t];
  Cost best = kInfCost;
  uint32_t best_rank = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].hub_rank == b[j].hub_rank) {
      Cost d = static_cast<Cost>(a[i].dist) + b[j].dist;
      if (d < best) {
        best = d;
        best_rank = a[i].hub_rank;
      }
      ++i;
      ++j;
    } else if (a[i].hub_rank < b[j].hub_rank) {
      ++i;
    } else {
      ++j;
    }
  }
  if (best == kInfCost) return std::nullopt;
  return std::make_pair(best, best_rank);
}

std::vector<VertexId> HubLabeling::UnpackPath(VertexId s, VertexId t) const {
  if (s == t) return {s};
  auto q = QueryWithHub(s, t);
  if (!q) return {};
  uint32_t rank = q->second;
  VertexId hub = order_[rank];

  // Every labeling this code builds has intact parent chains (asserted),
  // but a labeling assembled from parts — or a hostile snapshot that slips
  // past validation — might not: walk defensively (missing link -> empty
  // path, like an unreachable pair) and bound each chain by n (a shortest
  // path is simple), so malformed parents can never dereference null or
  // spin a serve worker forever.
  auto walk = [&](VertexId from, const FlatSide& side) -> std::vector<VertexId> {
    std::vector<VertexId> chain;
    VertexId cur = from;
    while (cur != hub) {
      if (chain.size() >= num_vertices()) return {};
      chain.push_back(cur);
      LabelRun run = side.Run(cur);
      uint32_t i = FindRankInRun(run, rank);
      assert(i < run.size && run.parent[i] != kInvalidVertex);
      if (i >= run.size || run.parent[i] == kInvalidVertex) return {};
      cur = run.parent[i];
    }
    chain.push_back(hub);
    return chain;
  };

  // s -> hub along the Lout parent chain, then hub -> t along the Lin chain
  // (walked from t, so reversed).
  std::vector<VertexId> path = walk(s, flat_out_);
  std::vector<VertexId> tail = walk(t, flat_in_);
  if (path.empty() || tail.empty()) return {};
  // tail is [t, ..., hub]; reversed it is [hub, ..., t] — skip the hub,
  // path already ends with it.
  path.insert(path.end(), tail.rbegin() + 1, tail.rend());
  return path;
}

LabelRepairDelta HubLabeling::OnEdgeDecreased(const Graph& graph, VertexId u,
                                              VertexId v, Weight w) {
  // Short-circuit: if some existing route already beats the new weight
  // strictly, the arc lies on no shortest path (old or new) and no label
  // can change — one label query instead of the affected-hub sweep. An
  // equal-cost route does NOT qualify: the new arc then ties onto shortest
  // paths and can re-tie canonical parents and cover paths.
  if (Query(u, v) < static_cast<Cost>(w)) return {};
  return RepairEdgeUpdate(graph, u, v, std::nullopt, static_cast<Cost>(w));
}

LabelRepairDelta HubLabeling::OnEdgeIncreased(const Graph& graph, VertexId u,
                                              VertexId v, Weight old_weight) {
  // Mirror short-circuit: if another route already beat the *old* weight
  // strictly, the arc was on no shortest path and raising it further
  // changes nothing. Only the old-graph tightness test applies — the
  // raised arc cannot join a shortest path it was not already on.
  if (Query(u, v) < static_cast<Cost>(old_weight)) return {};
  return RepairEdgeUpdate(graph, u, v, static_cast<Cost>(old_weight),
                          std::nullopt);
}

LabelRepairDelta HubLabeling::OnEdgeRemoved(const Graph& graph, VertexId u,
                                            VertexId v, Weight old_weight) {
  // A deletion is a weight increase to infinity: only the old-graph
  // tightness test applies, and the re-run searches simply no longer see
  // the arc.
  if (Query(u, v) < static_cast<Cost>(old_weight)) return {};
  return RepairEdgeUpdate(graph, u, v, static_cast<Cost>(old_weight),
                          std::nullopt);
}

LabelRepairDelta HubLabeling::RepairEdgeUpdate(const Graph& graph, VertexId u,
                                               VertexId v,
                                               std::optional<Cost> tight_old,
                                               std::optional<Cost> tight_new) {
  EdgeRepairRequest request{u, v, tight_old, tight_new};
  return RepairEdgeUpdates(graph, {&request, 1});
}

LabelRepairDelta HubLabeling::RepairEdgeUpdates(
    const Graph& graph, std::span<const EdgeRepairRequest> requests) {
  const uint32_t n = num_vertices();

  // Per-request short-circuit on the shared pre-batch labels: when an
  // existing route strictly beats every engaged tight of a request,
  // neither of its tightness tests can fire for any hub (dis(h, v) <=
  // dis(h, u) + dis(u, v) < dis(h, u) + tight, so neither the equality
  // nor the <= test is satisfiable) — skip the request without the
  // affected-hub sweep. This is the batched form of the one-label-query
  // short-circuit in OnEdgeDecreased / OnEdgeIncreased.
  std::vector<const EdgeRepairRequest*> active;
  active.reserve(requests.size());
  for (const EdgeRepairRequest& request : requests) {
    Cost existing = Query(request.u, request.v);
    bool old_dead = !request.tight_old || existing < *request.tight_old;
    bool new_dead = !request.tight_new || existing < *request.tight_new;
    if (old_dead && new_dead) continue;
    active.push_back(&request);
  }
  if (active.empty()) return {};

  // Phase 1 — affected hubs, read off the *pre-batch* labels (nothing has
  // been mutated yet, so Query still answers pre-batch distances exactly).
  //
  // A hub's forward label set can change only if some batched arc lies on
  // a shortest path from it in the old graph (dis(h, u) + w_old ==
  // dis(h, v); its loss can change distances, uncover entries of
  // larger-ranked hubs whose cover path crossed the arc, or untie
  // canonical parents) or in the new graph (dis(h, u) + w_new <=
  // dis(h, v); a strict improvement changes distances, an exact tie can
  // newly cover entries away or re-tie parents). Backward mirror: the arc
  // on a shortest path *to* the hub. The affected set of a batch is the
  // union over its requests: any hub whose labels differ between the
  // pre-batch and post-batch graphs owes that difference to at least one
  // net-changed arc on an old or new shortest path, and that arc's test
  // fires for it. DESIGN.md ("Dynamic updates" and "Snapshot
  // publication") gives the exactness argument. Because the hub order is
  // a permutation of all vertices, empty tight sets certify that no
  // pair's distance (and no label entry) changed at all.
  std::vector<uint32_t> fwd_ranks, bwd_ranks;
  std::vector<bool> fwd_affected(n, false), bwd_affected(n, false);
  for (uint32_t r = 0; r < n; ++r) {
    VertexId h = order_[r];
    for (const EdgeRepairRequest* request : active) {
      if (!fwd_affected[r]) {
        Cost hu = Query(h, request->u);
        if (hu != kInfCost) {
          Cost hv = Query(h, request->v);
          if ((request->tight_old && hu + *request->tight_old == hv) ||
              (request->tight_new && hu + *request->tight_new <= hv)) {
            fwd_ranks.push_back(r);
            fwd_affected[r] = true;
          }
        }
      }
      if (!bwd_affected[r]) {
        Cost vh = Query(request->v, h);
        if (vh != kInfCost) {
          Cost uh = Query(request->u, h);
          if ((request->tight_old && *request->tight_old + vh == uh) ||
              (request->tight_new && *request->tight_new + vh <= uh)) {
            bwd_ranks.push_back(r);
            bwd_affected[r] = true;
          }
        }
      }
      if (fwd_affected[r] && bwd_affected[r]) break;
    }
  }
  KOSR_COUNT(kRepairTightnessTests, static_cast<uint64_t>(n) * active.size());
  if (fwd_ranks.empty() && bwd_ranks.empty()) return {};

  // Phase 2 — drop every label entry owned by an affected hub. Entries can
  // move to new vertices after the update (weaker coverage), so a full
  // re-search replaces a per-entry patch; stale entries must go first or
  // InsertOrUpdate would keep their smaller, now-wrong distances.
  RepairTracker tracker;
  for (VertexId x = 0; x < n; ++x) {
    auto scrub = [&](bool in_side, std::vector<LabelEntry>& labels,
                     const std::vector<bool>& affected) {
      bool any = false;
      for (const LabelEntry& e : labels) {
        if (affected[e.hub_rank]) {
          any = true;
          break;
        }
      }
      if (!any) return;
      tracker.Capture(in_side, x, labels);
      std::erase_if(labels, [&](const LabelEntry& e) {
        return affected[e.hub_rank];
      });
    };
    scrub(/*in_side=*/true, in_labels_[x], fwd_affected);
    scrub(/*in_side=*/false, out_labels_[x], bwd_affected);
  }

  // Phase 3 — re-run the affected hubs' pruned searches against the updated
  // graph, interleaved in ascending rank order with forward before backward
  // at equal rank: exactly the order the sequential build commits in, so
  // every prune runs against the canonical label prefix (smaller affected
  // ranks already repaired, unaffected ranks provably unchanged) and the
  // committed entries are byte-identical to a from-scratch build's.
  KOSR_COUNT(kRepairResearches, fwd_ranks.size() + bwd_ranks.size());
  SearchContext ctx(n);
  size_t fi = 0, bi = 0;
  while (fi < fwd_ranks.size() || bi < bwd_ranks.size()) {
    bool take_fwd = bi >= bwd_ranks.size() ||
                    (fi < fwd_ranks.size() && fwd_ranks[fi] <= bwd_ranks[bi]);
    uint32_t r = take_fwd ? fwd_ranks[fi++] : bwd_ranks[bi++];
    PrunedSearch(graph, r, /*forward=*/take_fwd, {{order_[r], 0}}, ctx,
                 nullptr, &tracker);
  }
  return FinishRepair(tracker);
}

LabelRepairDelta HubLabeling::FinishRepair(RepairTracker& tracker) {
  LabelRepairDelta delta;
  for (auto& [x, old] : tracker.old_in) {
    if (old != in_labels_[x]) delta.changed_in.push_back(x);
  }
  std::sort(delta.changed_in.begin(), delta.changed_in.end());
  delta.old_in.reserve(delta.changed_in.size());
  for (VertexId x : delta.changed_in) {
    delta.old_in.push_back(std::move(tracker.old_in[x]));
  }
  for (auto& [x, old] : tracker.old_out) {
    if (old != out_labels_[x]) delta.changed_out.push_back(x);
  }
  std::sort(delta.changed_out.begin(), delta.changed_out.end());
  // Re-seal exactly the runs that changed (ResealTouched tolerates — and
  // here receives — an already sorted, unique list).
  std::vector<VertexId> in_touched = delta.changed_in;
  std::vector<VertexId> out_touched = delta.changed_out;
  ResealTouched(flat_in_, in_labels_, in_touched);
  ResealTouched(flat_out_, out_labels_, out_touched);
  return delta;
}

double HubLabeling::AvgInLabelSize() const {
  uint64_t total = 0;
  for (const auto& l : in_labels_) total += l.size();
  return in_labels_.empty() ? 0 : static_cast<double>(total) / in_labels_.size();
}

double HubLabeling::AvgOutLabelSize() const {
  uint64_t total = 0;
  for (const auto& l : out_labels_) total += l.size();
  return out_labels_.empty() ? 0
                             : static_cast<double>(total) / out_labels_.size();
}

uint64_t HubLabeling::IndexBytes() const {
  uint64_t entries = 0;
  for (const auto& l : in_labels_) entries += l.size();
  for (const auto& l : out_labels_) entries += l.size();
  return entries * sizeof(LabelEntry);
}

namespace {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("truncated hub labeling stream");
  return value;
}

void WriteLabelVector(std::ostream& out, const std::vector<LabelEntry>& l) {
  WritePod<uint64_t>(out, l.size());
  out.write(reinterpret_cast<const char*>(l.data()),
            static_cast<std::streamsize>(l.size() * sizeof(LabelEntry)));
}

// `max_size` bounds the allocation before it happens: a vertex has at most
// one entry per hub, so any claimed size beyond the vertex count is
// malformed, not merely big.
std::vector<LabelEntry> ReadLabelVector(std::istream& in, uint64_t max_size) {
  uint64_t size = ReadPod<uint64_t>(in);
  if (size > max_size) {
    throw std::runtime_error("label vector size exceeds vertex count");
  }
  std::vector<LabelEntry> l(size);
  in.read(reinterpret_cast<char*>(l.data()),
          static_cast<std::streamsize>(size * sizeof(LabelEntry)));
  if (!in) throw std::runtime_error("truncated hub labeling stream");
  return l;
}

}  // namespace

void HubLabeling::Serialize(std::ostream& out) const {
  WritePod<uint64_t>(out, 0x4b4f53524c424c31ull);  // "KOSRLBL1"
  WritePod<uint32_t>(out, num_vertices());
  out.write(reinterpret_cast<const char*>(order_.data()),
            static_cast<std::streamsize>(order_.size() * sizeof(VertexId)));
  for (const auto& l : in_labels_) WriteLabelVector(out, l);
  for (const auto& l : out_labels_) WriteLabelVector(out, l);
}

HubLabeling HubLabeling::Deserialize(std::istream& in,
                                     uint32_t expected_vertices) {
  if (ReadPod<uint64_t>(in) != 0x4b4f53524c424c31ull) {
    throw std::runtime_error("bad hub labeling magic");
  }
  uint32_t n = ReadPod<uint32_t>(in);
  if (expected_vertices != 0 && n != expected_vertices) {
    throw std::runtime_error("index snapshot is for a different graph");
  }
  HubLabeling hl;
  hl.order_.resize(n);
  in.read(reinterpret_cast<char*>(hl.order_.data()),
          static_cast<std::streamsize>(n * sizeof(VertexId)));
  if (!in) throw std::runtime_error("truncated hub labeling stream");
  if (!IsPermutation(hl.order_, n)) {
    // Without this check the rank_[order_[r]] scatter below would write out
    // of bounds for order values >= n.
    throw std::runtime_error("hub order is not a permutation of the vertices");
  }
  hl.rank_.assign(n, 0);
  for (uint32_t r = 0; r < n; ++r) hl.rank_[hl.order_[r]] = r;
  hl.in_labels_.resize(n);
  hl.out_labels_.resize(n);
  for (uint32_t v = 0; v < n; ++v) {
    hl.in_labels_[v] = ReadLabelVector(in, n);
    ValidateLabelVector(hl.in_labels_[v], n, "hub labeling Lin");
  }
  for (uint32_t v = 0; v < n; ++v) {
    hl.out_labels_[v] = ReadLabelVector(in, n);
    ValidateLabelVector(hl.out_labels_[v], n, "hub labeling Lout");
  }
  // Structural pass: parent chains must be walkable, or UnpackPath on a
  // hostile snapshot could chase dangling or circular parents. In any real
  // labeling a non-hub entry's parent is the next vertex on the path toward
  // the hub, one positive-weight arc closer — so the parent carries a
  // same-side entry for the same hub with strictly smaller distance, and a
  // parentless entry is exactly the hub's self-entry. Full snapshots (unlike
  // FromParts working sets) contain every chain link, so both invariants are
  // checkable here.
  for (uint32_t side = 0; side < 2; ++side) {
    const auto& labels = side == 0 ? hl.in_labels_ : hl.out_labels_;
    for (uint32_t v = 0; v < n; ++v) {
      for (const LabelEntry& e : labels[v]) {
        if (e.parent == kInvalidVertex) {
          if (hl.order_[e.hub_rank] != v) {
            throw std::runtime_error(
                "hub labeling entry without a parent is not a hub self-entry");
          }
          continue;
        }
        const LabelEntry* p = FindRank(labels[e.parent], e.hub_rank);
        if (p == nullptr || p->dist >= e.dist) {
          throw std::runtime_error(
              "hub labeling parent chain is broken or not decreasing");
        }
      }
    }
  }
  hl.Seal();
  return hl;
}

HubLabeling HubLabeling::FromParts(
    std::vector<VertexId> order,
    std::vector<std::vector<LabelEntry>> in_labels,
    std::vector<std::vector<LabelEntry>> out_labels) {
  uint32_t n = static_cast<uint32_t>(order.size());
  if (!IsPermutation(order, n)) {
    throw std::runtime_error("hub order is not a permutation of the vertices");
  }
  if (in_labels.size() != n || out_labels.size() != n) {
    throw std::runtime_error("label table size disagrees with hub order");
  }
  for (const auto& l : in_labels) ValidateLabelVector(l, n, "Lin part");
  for (const auto& l : out_labels) ValidateLabelVector(l, n, "Lout part");
  HubLabeling hl;
  hl.order_ = std::move(order);
  hl.in_labels_ = std::move(in_labels);
  hl.out_labels_ = std::move(out_labels);
  hl.rank_.assign(n, 0);
  for (uint32_t r = 0; r < n; ++r) hl.rank_[hl.order_[r]] = r;
  hl.Seal();
  return hl;
}

}  // namespace kosr
