#include "src/labeling/hub_labeling.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/util/min_heap.h"
#include "src/util/timer.h"

namespace kosr {
namespace {

// Binary search for a rank in a rank-sorted label vector. Returns nullptr if
// absent.
const LabelEntry* FindRank(std::span<const LabelEntry> labels, uint32_t rank) {
  auto it = std::lower_bound(
      labels.begin(), labels.end(), rank,
      [](const LabelEntry& e, uint32_t r) { return e.hub_rank < r; });
  if (it == labels.end() || it->hub_rank != rank) return nullptr;
  return &*it;
}

// Inserts or updates an entry, keeping the vector sorted by rank.
void InsertOrUpdate(std::vector<LabelEntry>& labels, const LabelEntry& entry) {
  if (labels.empty() || labels.back().hub_rank < entry.hub_rank) {
    labels.push_back(entry);
    return;
  }
  auto it = std::lower_bound(labels.begin(), labels.end(), entry.hub_rank,
                             [](const LabelEntry& e, uint32_t r) {
                               return e.hub_rank < r;
                             });
  if (it != labels.end() && it->hub_rank == entry.hub_rank) {
    if (entry.dist < it->dist) *it = entry;
  } else {
    labels.insert(it, entry);
  }
}

}  // namespace

std::vector<VertexId> HubLabeling::DegreeOrder(const Graph& graph) {
  std::vector<VertexId> order(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    uint64_t pa = static_cast<uint64_t>(graph.InDegree(a) + 1) *
                  (graph.OutDegree(a) + 1);
    uint64_t pb = static_cast<uint64_t>(graph.InDegree(b) + 1) *
                  (graph.OutDegree(b) + 1);
    return pa != pb ? pa > pb : a < b;
  });
  return order;
}

void HubLabeling::Build(const Graph& graph) { Build(graph, DegreeOrder(graph)); }

void HubLabeling::Build(const Graph& graph, const std::vector<VertexId>& order) {
  if (order.size() != graph.num_vertices()) {
    throw std::invalid_argument("order must be a permutation of the vertices");
  }
  WallTimer timer;
  uint32_t n = graph.num_vertices();
  in_labels_.assign(n, {});
  out_labels_.assign(n, {});
  order_ = order;
  rank_.assign(n, 0);
  for (uint32_t r = 0; r < n; ++r) rank_[order_[r]] = r;
  scratch_.assign(n, kInfCost);
  scratch_touched_.clear();

  for (uint32_t r = 0; r < n; ++r) {
    VertexId hub = order_[r];
    PrunedSearch(graph, r, /*forward=*/true, {{hub, 0}});
    PrunedSearch(graph, r, /*forward=*/false, {{hub, 0}});
  }
  build_seconds_ = timer.ElapsedSeconds();
}

void HubLabeling::PrunedSearch(
    const Graph& graph, uint32_t rank, bool forward,
    const std::vector<std::pair<VertexId, Cost>>& seeds) {
  VertexId hub = order_[rank];

  // Load the hub's own opposite-side labels (ranks < `rank`) into the dense
  // scratch table: query(hub, x) (forward) is then a scan of Lin(x).
  const auto& hub_labels = forward ? out_labels_[hub] : in_labels_[hub];
  for (const LabelEntry& e : hub_labels) {
    if (e.hub_rank >= rank) break;
    scratch_[e.hub_rank] = e.dist;
    scratch_touched_.push_back(e.hub_rank);
  }

  // Local Dijkstra state. dist/parent are kept in hash-free dense arrays that
  // are reset via the touched list (cheap for small search spaces).
  static thread_local std::vector<Cost> dist;
  static thread_local std::vector<VertexId> parent;
  static thread_local std::vector<VertexId> touched;
  static thread_local IndexedMinHeap heap;
  if (dist.size() < graph.num_vertices()) {
    dist.assign(graph.num_vertices(), kInfCost);
    parent.assign(graph.num_vertices(), kInvalidVertex);
    heap.Resize(graph.num_vertices());
  }

  for (const auto& [v, d] : seeds) {
    if (d < dist[v]) {
      if (dist[v] == kInfCost) touched.push_back(v);
      dist[v] = d;
      // Seed parents for resumed searches are patched by the caller via the
      // existing labels; for construction the seed is the hub itself.
      parent[v] = (v == hub) ? kInvalidVertex : kInvalidVertex;
      heap.InsertOrDecrease(v, d);
    }
  }

  while (!heap.Empty()) {
    auto [d, x] = heap.ExtractMin();
    // Prune if hubs of strictly smaller rank already certify dis <= d.
    const auto& x_labels = forward ? in_labels_[x] : out_labels_[x];
    Cost covered = kInfCost;
    for (const LabelEntry& e : x_labels) {
      if (e.hub_rank >= rank) break;
      Cost via = scratch_[e.hub_rank];
      if (via != kInfCost) covered = std::min(covered, via + e.dist);
    }
    if (covered <= d) continue;

    auto& target_labels = forward ? in_labels_[x] : out_labels_[x];
    InsertOrUpdate(target_labels,
                   {rank, static_cast<uint32_t>(d), parent[x]});

    auto arcs = forward ? graph.OutArcs(x) : graph.InArcs(x);
    for (const Arc& a : arcs) {
      Cost nd = d + a.weight;
      if (nd < dist[a.head]) {
        if (dist[a.head] == kInfCost) touched.push_back(a.head);
        dist[a.head] = nd;
        parent[a.head] = x;
        heap.InsertOrDecrease(a.head, nd);
      }
    }
  }

  for (VertexId v : touched) {
    dist[v] = kInfCost;
    parent[v] = kInvalidVertex;
  }
  touched.clear();
  heap.Clear();
  for (uint32_t r : scratch_touched_) scratch_[r] = kInfCost;
  scratch_touched_.clear();
}

Cost HubLabeling::Query(VertexId s, VertexId t) const {
  auto r = QueryWithHub(s, t);
  return r ? r->first : kInfCost;
}

std::optional<std::pair<Cost, uint32_t>> HubLabeling::QueryWithHub(
    VertexId s, VertexId t) const {
  const auto& a = out_labels_[s];
  const auto& b = in_labels_[t];
  Cost best = kInfCost;
  uint32_t best_rank = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].hub_rank == b[j].hub_rank) {
      Cost d = static_cast<Cost>(a[i].dist) + b[j].dist;
      if (d < best) {
        best = d;
        best_rank = a[i].hub_rank;
      }
      ++i;
      ++j;
    } else if (a[i].hub_rank < b[j].hub_rank) {
      ++i;
    } else {
      ++j;
    }
  }
  if (best == kInfCost) return std::nullopt;
  return std::make_pair(best, best_rank);
}

std::vector<VertexId> HubLabeling::UnpackPath(VertexId s, VertexId t) const {
  if (s == t) return {s};
  auto q = QueryWithHub(s, t);
  if (!q) return {};
  uint32_t rank = q->second;
  VertexId hub = order_[rank];

  // s -> hub along Lout parent chain (each step moves to the next vertex on
  // the path toward the hub).
  std::vector<VertexId> path;
  VertexId cur = s;
  while (cur != hub) {
    path.push_back(cur);
    const LabelEntry* e = FindRank(out_labels_[cur], rank);
    assert(e != nullptr && e->parent != kInvalidVertex);
    cur = e->parent;
  }
  path.push_back(hub);

  // hub -> t along Lin parent chain, collected backward.
  std::vector<VertexId> tail;
  cur = t;
  while (cur != hub) {
    tail.push_back(cur);
    const LabelEntry* e = FindRank(in_labels_[cur], rank);
    assert(e != nullptr && e->parent != kInvalidVertex);
    cur = e->parent;
  }
  path.insert(path.end(), tail.rbegin(), tail.rend());
  return path;
}

void HubLabeling::OnEdgeDecreased(const Graph& graph, VertexId u, VertexId v,
                                  Weight w) {
  // Forward side: every hub h that reaches u may now reach v (and beyond)
  // more cheaply through the new edge. Resume h's forward search from v.
  // Iterating in rank order keeps pruning effective.
  auto lin_u = in_labels_[u];  // copy: PrunedSearch mutates labels
  std::vector<LabelEntry> lin_copy(lin_u.begin(), lin_u.end());
  for (const LabelEntry& e : lin_copy) {
    Cost seed = static_cast<Cost>(e.dist) + w;
    PrunedSearch(graph, e.hub_rank, /*forward=*/true, {{v, seed}});
    // Patch the parent of the seed entry: it came through u.
    auto& labels = in_labels_[v];
    auto it = std::lower_bound(labels.begin(), labels.end(), e.hub_rank,
                               [](const LabelEntry& le, uint32_t r) {
                                 return le.hub_rank < r;
                               });
    if (it != labels.end() && it->hub_rank == e.hub_rank &&
        it->dist == seed && it->parent == kInvalidVertex) {
      it->parent = u;
    }
  }
  // Backward side symmetric.
  auto lout_v = out_labels_[v];
  std::vector<LabelEntry> lout_copy(lout_v.begin(), lout_v.end());
  for (const LabelEntry& e : lout_copy) {
    Cost seed = static_cast<Cost>(e.dist) + w;
    PrunedSearch(graph, e.hub_rank, /*forward=*/false, {{u, seed}});
    auto& labels = out_labels_[u];
    auto it = std::lower_bound(labels.begin(), labels.end(), e.hub_rank,
                               [](const LabelEntry& le, uint32_t r) {
                                 return le.hub_rank < r;
                               });
    if (it != labels.end() && it->hub_rank == e.hub_rank &&
        it->dist == seed && it->parent == kInvalidVertex) {
      it->parent = v;
    }
  }
}

double HubLabeling::AvgInLabelSize() const {
  uint64_t total = 0;
  for (const auto& l : in_labels_) total += l.size();
  return in_labels_.empty() ? 0 : static_cast<double>(total) / in_labels_.size();
}

double HubLabeling::AvgOutLabelSize() const {
  uint64_t total = 0;
  for (const auto& l : out_labels_) total += l.size();
  return out_labels_.empty() ? 0
                             : static_cast<double>(total) / out_labels_.size();
}

uint64_t HubLabeling::IndexBytes() const {
  uint64_t entries = 0;
  for (const auto& l : in_labels_) entries += l.size();
  for (const auto& l : out_labels_) entries += l.size();
  return entries * sizeof(LabelEntry);
}

namespace {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("truncated hub labeling stream");
  return value;
}

void WriteLabelVector(std::ostream& out, const std::vector<LabelEntry>& l) {
  WritePod<uint64_t>(out, l.size());
  out.write(reinterpret_cast<const char*>(l.data()),
            static_cast<std::streamsize>(l.size() * sizeof(LabelEntry)));
}

std::vector<LabelEntry> ReadLabelVector(std::istream& in) {
  uint64_t size = ReadPod<uint64_t>(in);
  std::vector<LabelEntry> l(size);
  in.read(reinterpret_cast<char*>(l.data()),
          static_cast<std::streamsize>(size * sizeof(LabelEntry)));
  if (!in) throw std::runtime_error("truncated hub labeling stream");
  return l;
}

}  // namespace

void HubLabeling::Serialize(std::ostream& out) const {
  WritePod<uint64_t>(out, 0x4b4f53524c424c31ull);  // "KOSRLBL1"
  WritePod<uint32_t>(out, num_vertices());
  out.write(reinterpret_cast<const char*>(order_.data()),
            static_cast<std::streamsize>(order_.size() * sizeof(VertexId)));
  for (const auto& l : in_labels_) WriteLabelVector(out, l);
  for (const auto& l : out_labels_) WriteLabelVector(out, l);
}

HubLabeling HubLabeling::Deserialize(std::istream& in) {
  if (ReadPod<uint64_t>(in) != 0x4b4f53524c424c31ull) {
    throw std::runtime_error("bad hub labeling magic");
  }
  uint32_t n = ReadPod<uint32_t>(in);
  HubLabeling hl;
  hl.order_.resize(n);
  in.read(reinterpret_cast<char*>(hl.order_.data()),
          static_cast<std::streamsize>(n * sizeof(VertexId)));
  if (!in) throw std::runtime_error("truncated hub labeling stream");
  hl.rank_.assign(n, 0);
  for (uint32_t r = 0; r < n; ++r) hl.rank_[hl.order_[r]] = r;
  hl.in_labels_.resize(n);
  hl.out_labels_.resize(n);
  for (uint32_t v = 0; v < n; ++v) hl.in_labels_[v] = ReadLabelVector(in);
  for (uint32_t v = 0; v < n; ++v) hl.out_labels_[v] = ReadLabelVector(in);
  hl.scratch_.assign(n, kInfCost);
  return hl;
}

HubLabeling HubLabeling::FromParts(
    std::vector<VertexId> order,
    std::vector<std::vector<LabelEntry>> in_labels,
    std::vector<std::vector<LabelEntry>> out_labels) {
  HubLabeling hl;
  hl.order_ = std::move(order);
  hl.in_labels_ = std::move(in_labels);
  hl.out_labels_ = std::move(out_labels);
  uint32_t n = static_cast<uint32_t>(hl.order_.size());
  hl.rank_.assign(n, 0);
  for (uint32_t r = 0; r < n; ++r) hl.rank_[hl.order_[r]] = r;
  hl.scratch_.assign(n, kInfCost);
  return hl;
}

Cost HubLabeling::QueryUpTo(VertexId t, uint32_t max_rank) const {
  Cost best = kInfCost;
  for (const LabelEntry& e : in_labels_[t]) {
    if (e.hub_rank >= max_rank) break;
    if (scratch_[e.hub_rank] != kInfCost) {
      best = std::min(best, scratch_[e.hub_rank] + e.dist);
    }
  }
  return best;
}

}  // namespace kosr
