// Logistics dispatch: the paper's supply-chain / logistics motivation.
//
// A shipment must leave the depot, be picked up by a bonded carrier, clear a
// customs office, pass a regional warehouse, and reach the customer. The
// dispatcher wants k alternatives ranked by travel time to negotiate pickup
// slots. We then exercise two production scenarios:
//   * a new expressway segment opens (edge-weight decrease -> incremental
//     index repair, Sec. IV-C "graph structure updates");
//   * a customs office is temporarily closed and later reopened (category
//     update, Sec. IV-C "category updates");
// and the "end anywhere" variant: the shipment may terminate at any
// warehouse (no-destination query).
//
// Build & run:  ./build/examples/logistics_dispatch

#include <cstdio>
#include <random>

#include "src/core/engine.h"
#include "src/core/variants.h"
#include "src/graph/generators.h"

namespace {

constexpr kosr::CategoryId kCarrier = 0;
constexpr kosr::CategoryId kCustoms = 1;
constexpr kosr::CategoryId kWarehouse = 2;

void PrintRoutes(const kosr::KosrResult& result, const char* what) {
  std::printf("%s\n", what);
  for (size_t i = 0; i < result.routes.size(); ++i) {
    std::printf("  plan %zu: cost %lld, stops:", i + 1,
                static_cast<long long>(result.routes[i].cost));
    for (kosr::VertexId v : result.routes[i].witness) std::printf(" %u", v);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace kosr;

  constexpr uint32_t kSide = 96;
  Graph graph = MakeGridRoadNetwork(kSide, kSide, /*seed=*/99);
  CategoryTable categories(graph.num_vertices(), 3);
  std::mt19937_64 rng(31);
  std::uniform_int_distribution<VertexId> pick(0, graph.num_vertices() - 1);
  for (int i = 0; i < 60; ++i) categories.Add(pick(rng), kCarrier);
  for (int i = 0; i < 12; ++i) categories.Add(pick(rng), kCustoms);
  for (int i = 0; i < 25; ++i) categories.Add(pick(rng), kWarehouse);

  KosrEngine engine(std::move(graph), std::move(categories));
  engine.BuildIndexes(GridDissectionOrder(kSide, kSide));

  VertexId depot = 50;
  VertexId customer = kSide * kSide - 77;
  KosrQuery query{depot, customer, {kCarrier, kCustoms, kWarehouse}, 4};

  PrintRoutes(engine.Query(query),
              "Dispatch depot -> carrier -> customs -> warehouse -> customer:");

  // Scenario 1: a new expressway halves one long leg. The labeling is
  // repaired incrementally; no rebuild.
  VertexId a = engine.Query(query).routes[0].witness[1];
  VertexId b = engine.Query(query).routes[0].witness[2];
  std::printf("\nExpressway opens between %u and %u (weight 1)...\n", a, b);
  engine.AddOrDecreaseEdge(a, b, 1);
  PrintRoutes(engine.Query(query), "Re-dispatched plans:");

  // Scenario 2: the customs office used by the best plan closes.
  VertexId closed = engine.Query(query).routes[0].witness[2];
  std::printf("\nCustoms office %u temporarily closed...\n", closed);
  engine.RemoveVertexCategory(closed, kCustoms);
  PrintRoutes(engine.Query(query), "Plans avoiding the closed office:");
  engine.AddVertexCategory(closed, kCustoms);  // reopens

  // Scenario 3: terminate at any warehouse (no fixed destination).
  KosrOptions options;
  options.algorithm = Algorithm::kPruning;  // StarKOSR needs a destination
  KosrResult open_ended = QueryNoDestination(
      engine, depot, {kCarrier, kCustoms, kWarehouse}, 3, options);
  PrintRoutes(open_ended, "\nEnd-at-any-warehouse plans (no destination):");

  return 0;
}
