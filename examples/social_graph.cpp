// Sequenced reachability on a social graph — the paper's G+ setting
// (unweighted, directed, tiny diameter).
//
// Find the k cheapest "introduction chains": starting anywhere among the
// engineers, pass through a manager and then a director, and reach the CEO,
// minimizing the number of hops (every edge costs 1 — the unweighted
// variant of Sec. IV-C). The no-source variant seeds the whole first
// category, so the chain may begin at any engineer.
//
// Build & run:  ./build/examples/social_graph

#include <cstdio>
#include <random>

#include "src/core/engine.h"
#include "src/core/variants.h"
#include "src/graph/generators.h"

namespace {

constexpr kosr::CategoryId kEngineer = 0;
constexpr kosr::CategoryId kManager = 1;
constexpr kosr::CategoryId kDirector = 2;

}  // namespace

int main() {
  using namespace kosr;

  // Small-world network: 2000 members, unit-weight directed edges.
  Graph graph = MakeSmallWorld(2000, 2, 5.0, /*seed=*/17);
  CategoryTable categories(graph.num_vertices(), 3);
  std::mt19937_64 rng(23);
  std::uniform_int_distribution<VertexId> pick(0, graph.num_vertices() - 1);
  for (int i = 0; i < 80; ++i) categories.Add(pick(rng), kEngineer);
  for (int i = 0; i < 40; ++i) categories.Add(pick(rng), kManager);
  for (int i = 0; i < 15; ++i) categories.Add(pick(rng), kDirector);

  KosrEngine engine(std::move(graph), std::move(categories));
  engine.BuildIndexes();

  VertexId ceo = 1234;
  VertexId me = 7;

  // Standard query: me -> engineer -> manager -> director -> CEO.
  KosrQuery query{me, ceo, {kEngineer, kManager, kDirector}, 5};
  KosrResult chains = engine.Query(query);
  std::printf("Introduction chains from member %u to member %u:\n", me, ceo);
  for (size_t i = 0; i < chains.routes.size(); ++i) {
    std::printf("  chain %zu: %lld hops, via:", i + 1,
                static_cast<long long>(chains.routes[i].cost));
    for (VertexId v : chains.routes[i].witness) std::printf(" %u", v);
    std::printf("\n");
  }

  // No-source variant: start at any engineer.
  KosrResult anywhere =
      QueryNoSource(engine, ceo, {kEngineer, kManager, kDirector}, 5);
  std::printf("\nBest chains starting at ANY engineer:\n");
  for (size_t i = 0; i < anywhere.routes.size(); ++i) {
    std::printf("  chain %zu: %lld hops, starts at engineer %u\n", i + 1,
                static_cast<long long>(anywhere.routes[i].cost),
                anywhere.routes[i].witness.front());
  }

  // The paper's observation on G+-like graphs: unit weights and a tiny
  // diameter inflate the search space; compare PK and SK here.
  std::printf("\nSearch-space comparison on this unweighted graph:\n");
  for (auto [algo, name] :
       {std::pair{Algorithm::kPruning, "PruningKOSR"},
        std::pair{Algorithm::kStar, "StarKOSR"}}) {
    KosrOptions options;
    options.algorithm = algo;
    KosrResult r = engine.Query(query, options);
    std::printf("  %-12s %8.3f ms, %6llu examined, %5llu NN queries\n", name,
                r.stats.total_time_s * 1e3,
                static_cast<unsigned long long>(r.stats.examined_routes),
                static_cast<unsigned long long>(r.stats.nn_queries));
  }
  return 0;
}
