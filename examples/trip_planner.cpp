// Trip planner: the paper's motivating mobility scenario on a synthetic
// city road network.
//
// A commuter wants to leave work, stop at a gas station, then a supermarket,
// then a pharmacy, and get home — and wants alternatives, because the single
// optimal route may pass a supermarket they dislike. We ask for the top-5
// routes, then re-plan with a personal-preference filter ("only the organic
// supermarkets"), the Sec. IV-C extension.
//
// Build & run:  ./build/examples/trip_planner

#include <cstdio>
#include <random>

#include "src/core/engine.h"
#include "src/graph/categories.h"
#include "src/graph/generators.h"

namespace {

constexpr kosr::CategoryId kGasStation = 0;
constexpr kosr::CategoryId kSupermarket = 1;
constexpr kosr::CategoryId kPharmacy = 2;
const char* kCategoryNames[] = {"gas", "supermarket", "pharmacy"};

}  // namespace

int main() {
  using namespace kosr;

  // A 64x64 city grid: ~4k intersections, asymmetric travel times.
  constexpr uint32_t kSide = 64;
  Graph graph = MakeGridRoadNetwork(kSide, kSide, /*seed=*/2024);

  // Sprinkle POIs: 40 of each kind at random intersections.
  CategoryTable categories(graph.num_vertices(), 3);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<VertexId> pick(0, graph.num_vertices() - 1);
  for (CategoryId c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) categories.Add(pick(rng), c);
  }

  KosrEngine engine(std::move(graph), std::move(categories));
  engine.BuildIndexes(GridDissectionOrder(kSide, kSide));

  VertexId work = 0;                                // top-left corner
  VertexId home = kSide * kSide - 1;                // bottom-right corner
  KosrQuery query{work, home, {kGasStation, kSupermarket, kPharmacy}, 5};

  std::printf("Errand plan work -> gas -> supermarket -> pharmacy -> home\n");
  KosrResult result = engine.Query(query);
  for (size_t i = 0; i < result.routes.size(); ++i) {
    const auto& route = result.routes[i];
    std::printf("  option %zu: travel cost %lld, stops:", i + 1,
                static_cast<long long>(route.cost));
    for (size_t j = 1; j + 1 < route.witness.size(); ++j) {
      std::printf(" %s@%u", kCategoryNames[query.sequence[j - 1]],
                  route.witness[j]);
    }
    std::printf("\n");
  }

  // Re-plan with a preference: only supermarkets with an even vertex id are
  // "organic" (a stand-in for any user predicate — opening hours, brand,
  // rating, ...).
  std::printf("\nWith preference filter (organic supermarkets only):\n");
  KosrOptions prefer;
  prefer.filter = [&query](uint32_t slot, VertexId v) {
    return query.sequence[slot - 1] != kSupermarket || v % 2 == 0;
  };
  KosrResult filtered = engine.Query(query, prefer);
  for (size_t i = 0; i < filtered.routes.size(); ++i) {
    const auto& route = filtered.routes[i];
    std::printf("  option %zu: travel cost %lld (supermarket %u)\n", i + 1,
                static_cast<long long>(route.cost), route.witness[2]);
  }

  // Compare the three algorithms on this query — the paper's headline.
  std::printf("\nAlgorithm comparison on this query:\n");
  for (auto [algo, name] : {std::pair{Algorithm::kKpne, "KPNE (baseline)"},
                            std::pair{Algorithm::kPruning, "PruningKOSR"},
                            std::pair{Algorithm::kStar, "StarKOSR"}}) {
    KosrOptions options;
    options.algorithm = algo;
    KosrResult r = engine.Query(query, options);
    std::printf("  %-16s %8.3f ms, %6llu examined routes, %5llu NN queries\n",
                name, r.stats.total_time_s * 1e3,
                static_cast<unsigned long long>(r.stats.examined_routes),
                static_cast<unsigned long long>(r.stats.nn_queries));
  }
  return 0;
}
