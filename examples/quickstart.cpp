// Quickstart: the paper's running example (Figure 1).
//
// Alice starts at s, wants to pass a shopping mall (MA), then a restaurant
// (RE), then a cinema (CI), and finally reach t. This asks the KOSR query
// (s, t, <MA, RE, CI>, 3) and prints the top-3 optimal sequenced routes —
// costs 20, 21 and 22, exactly Example 1 of the paper.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/core/engine.h"
#include "src/graph/generators.h"

int main() {
  using namespace kosr;

  // 1. Build (or load) a graph and its category table.
  Figure1 fig = MakeFigure1();

  // 2. Hand them to the engine and build the hub-label + inverted indexes.
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();

  // 3. Ask for the top-3 optimal sequenced routes.
  KosrQuery query;
  query.source = Figure1::s;
  query.target = Figure1::t;
  query.sequence = {Figure1::MA, Figure1::RE, Figure1::CI};
  query.k = 3;

  KosrOptions options;
  options.algorithm = Algorithm::kStar;  // StarKOSR (default, fastest)
  options.reconstruct_paths = true;      // expand witnesses to real paths

  KosrResult result = engine.Query(query, options);

  std::printf("Top-%u optimal sequenced routes for <MA, RE, CI>:\n\n",
              query.k);
  for (size_t i = 0; i < result.routes.size(); ++i) {
    const SequencedRoute& route = result.routes[i];
    std::printf("#%zu  cost=%lld  witness:", i + 1,
                static_cast<long long>(route.cost));
    for (VertexId v : route.witness) {
      std::printf(" %s", Figure1::VertexName(v).c_str());
    }
    std::printf("\n     full path:");
    for (VertexId v : route.path) {
      std::printf(" %s", Figure1::VertexName(v).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nSearch statistics: %s\n", result.stats.ToString().c_str());
  return 0;
}
