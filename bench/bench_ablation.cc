// Ablations for the design choices DESIGN.md calls out (not in the paper,
// but justifying its architecture on our substrate):
//
//  (1) Distance-oracle microbenchmarks: hub-label query vs contraction-
//      hierarchy query vs point-to-point Dijkstra. The paper builds its NN
//      machinery on hub labels because the core query must be microsecond-
//      scale; this quantifies the gap.
//  (2) Hub-order ablation: degree order vs grid dissection order — label
//      size, construction time, and SK query time.
//  (3) Search-strategy ablation: examined routes for KPNE (no pruning, no
//      A*), PK (dominance only), SK (dominance + A*) on one workload, i.e.
//      the incremental value of each idea of the paper.

#include <benchmark/benchmark.h>

#include <random>

#include "bench/bench_common.h"
#include "src/ch/contraction_hierarchy.h"

namespace kosr::bench {
namespace {

struct OracleContext {
  Graph graph;
  HubLabeling labels_dissection;
  HubLabeling labels_degree;
  ContractionHierarchy ch;
  double build_dissection_s, build_degree_s, build_ch_s;
  std::vector<std::pair<VertexId, VertexId>> pairs;
};

OracleContext& Context() {
  static OracleContext* ctx = [] {
    auto* c = new OracleContext();
    uint32_t side = 64;
    c->graph = MakeGridRoadNetwork(side, side, 11, 10, 100, 0);
    WallTimer t1;
    c->labels_dissection.Build(c->graph, GridDissectionOrder(side, side));
    c->build_dissection_s = t1.ElapsedSeconds();
    WallTimer t2;
    c->labels_degree.Build(c->graph);
    c->build_degree_s = t2.ElapsedSeconds();
    WallTimer t3;
    c->ch = ContractionHierarchy::Build(c->graph);
    c->build_ch_s = t3.ElapsedSeconds();
    std::mt19937_64 rng(5);
    std::uniform_int_distribution<VertexId> pick(0, c->graph.num_vertices() - 1);
    for (int i = 0; i < 1024; ++i) c->pairs.emplace_back(pick(rng), pick(rng));
    return c;
  }();
  return *ctx;
}

void BM_OracleHubLabel(benchmark::State& state) {
  auto& ctx = Context();
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = ctx.pairs[i++ & 1023];
    benchmark::DoNotOptimize(ctx.labels_dissection.Query(s, t));
  }
}
BENCHMARK(BM_OracleHubLabel);

void BM_OracleHubLabelDegreeOrder(benchmark::State& state) {
  auto& ctx = Context();
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = ctx.pairs[i++ & 1023];
    benchmark::DoNotOptimize(ctx.labels_degree.Query(s, t));
  }
}
BENCHMARK(BM_OracleHubLabelDegreeOrder);

void BM_OracleContractionHierarchy(benchmark::State& state) {
  auto& ctx = Context();
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = ctx.pairs[i++ & 1023];
    benchmark::DoNotOptimize(ctx.ch.Query(s, t));
  }
}
BENCHMARK(BM_OracleContractionHierarchy);

void BM_OracleDijkstra(benchmark::State& state) {
  auto& ctx = Context();
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = ctx.pairs[i++ & 1023];
    benchmark::DoNotOptimize(DijkstraDistance(ctx.graph, s, t));
  }
}
BENCHMARK(BM_OracleDijkstra);

void PrintOrderAblation() {
  auto& ctx = Context();
  PrintHeader("Ablation: hub-label vertex order (64x64 grid)",
              "construction cost and label size per order");
  PrintRowHeader("order", {"build(s)", "avg|Lin|", "size(MB)"});
  char b1[32], b2[32], b3[32];
  std::snprintf(b1, 32, "%.2f", ctx.build_dissection_s);
  std::snprintf(b2, 32, "%.1f", ctx.labels_dissection.AvgInLabelSize());
  std::snprintf(b3, 32, "%.1f", ctx.labels_dissection.IndexBytes() / 1048576.0);
  PrintRow("dissection", {b1, b2, b3});
  std::snprintf(b1, 32, "%.2f", ctx.build_degree_s);
  std::snprintf(b2, 32, "%.1f", ctx.labels_degree.AvgInLabelSize());
  std::snprintf(b3, 32, "%.1f", ctx.labels_degree.IndexBytes() / 1048576.0);
  PrintRow("degree", {b1, b2, b3});
  std::snprintf(b1, 32, "%.2f", ctx.build_ch_s);
  std::snprintf(b2, 32, "%lu", (unsigned long)ctx.ch.num_shortcuts());
  PrintRow("(CH)", {b1, std::string("shortcuts=") + b2, "-"});
}

void PrintStrategyAblation() {
  Workload w = MakeGridWorkload("COL", 128, 160, 103);
  auto queries = MakeQueries(w, 6, 30, QueriesPerPoint(), w.seed + 3);
  PrintHeader("Ablation: incremental value of dominance and A*",
              "COL analog, |C|=6, k=30; KPNE = neither, PK = dominance, "
              "SK = dominance + target-directed estimates");
  PrintRowHeader("method", {"time(ms)", "examined", "nn_queries"});
  const MethodSpec methods[] = {
      {"KPNE", Algorithm::kKpne, NnMode::kHopLabel},
      {"PK", Algorithm::kPruning, NnMode::kHopLabel},
      {"SK", Algorithm::kStar, NnMode::kHopLabel},
  };
  for (const MethodSpec& m : methods) {
    CellResult cell = RunMethodCell(w, queries, m);
    PrintRow(m.name, {cell.TimeString(), cell.CountString(cell.avg_examined),
                      cell.CountString(cell.avg_nn_queries)});
  }
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("ablation");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  kosr::bench::PrintOrderAblation();
  kosr::bench::PrintStrategyAblation();
  return 0;
}
