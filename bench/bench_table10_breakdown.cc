// Table X: distribution of query run-time on the FLA analog for PK and SK —
// NN query time, priority-queue maintenance time, estimation time, and the
// unattributed remainder. Expected shape: NN queries dominate both methods;
// PK spends far more total time (and more queue time) than SK; only SK pays
// an estimation cost and it is a small share of its total.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

struct BreakdownRow {
  std::string method;
  double overall_ms = 0;
  double nn_ms = 0;
  double queue_ms = 0;
  double estimation_ms = 0;
  double other_ms = 0;
};

std::vector<BreakdownRow>& Rows() {
  static std::vector<BreakdownRow> rows;
  return rows;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  Workload w = MakeFlaWorkload();
  auto queries = MakeQueries(w, 6, 30, QueriesPerPoint(), w.seed + 10);
  const MethodSpec methods[] = {
      {"PK", Algorithm::kPruning, NnMode::kHopLabel},
      {"SK", Algorithm::kStar, NnMode::kHopLabel},
  };
  for (const MethodSpec& m : methods) {
    CellResult cell =
        RunMethodCell(w, queries, m, /*collect_phase_times=*/true);
    BreakdownRow row;
    row.method = m.name;
    uint32_t n = std::max(1u, cell.queries_run);
    row.overall_ms = cell.accumulated.total_time_s * 1e3 / n;
    row.nn_ms = cell.accumulated.nn_time_s * 1e3 / n;
    row.queue_ms = cell.accumulated.queue_time_s * 1e3 / n;
    row.estimation_ms = cell.accumulated.estimation_time_s * 1e3 / n;
    row.other_ms = cell.accumulated.OtherTimeSeconds() * 1e3 / n;
    Rows().push_back(row);
  }
}

void BM_Breakdown(benchmark::State& state, std::string method) {
  RunAll();
  for (auto _ : state) {
  }
  for (const BreakdownRow& row : Rows()) {
    if (row.method != method) continue;
    state.SetIterationTime(row.overall_ms / 1e3);
    state.counters["nn_ms"] = row.nn_ms;
    state.counters["queue_ms"] = row.queue_ms;
    state.counters["estimation_ms"] = row.estimation_ms;
    state.counters["other_ms"] = row.other_ms;
  }
}

std::string Fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("table10_breakdown");
  benchmark::Initialize(&argc, argv);
  for (const char* m : {"PK", "SK"}) {
    benchmark::RegisterBenchmark((std::string("table10/") + m).c_str(),
                                 kosr::bench::BM_Breakdown, m)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();

  using kosr::bench::Fmt;
  kosr::bench::PrintHeader(
      "Table X: distribution of the query time (ms) on FLA",
      "per-query averages; |C|=6, k=30");
  kosr::bench::PrintRowHeader("phase", {"PK", "SK"});
  auto& rows = kosr::bench::Rows();
  if (rows.size() == 2) {
    kosr::bench::PrintRow("Overall", {Fmt(rows[0].overall_ms),
                                      Fmt(rows[1].overall_ms)});
    kosr::bench::PrintRow("NN query", {Fmt(rows[0].nn_ms), Fmt(rows[1].nn_ms)});
    kosr::bench::PrintRow("PQ maint.",
                          {Fmt(rows[0].queue_ms), Fmt(rows[1].queue_ms)});
    kosr::bench::PrintRow("Estimation", {Fmt(rows[0].estimation_ms),
                                         Fmt(rows[1].estimation_ms)});
    kosr::bench::PrintRow("Others",
                          {Fmt(rows[0].other_ms), Fmt(rows[1].other_ms)});
  }
  return 0;
}
