// Figure 6: Zipfian category-size distributions on the FLA analog, skew
// factor f in {1.2, 1.4, 1.6, 1.8} with |C| = 6, k = 30 (the paper's exact
// configuration, 100 categories). Expected shape: PK's time grows with f
// (less skew = more similar |Ci|*|Ci+1| products = more candidates), KPNE
// hits INF once distributions flatten, SK stays fastest throughout.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

const double kFactors[] = {1.2, 1.4, 1.6, 1.8};
constexpr uint32_t kNumCategories = 100;

CellTable& Table() {
  static CellTable t("Figure 6: Zipfian category distribution on FLA",
                     "|C|=6, k=30, 100 categories; rows are skew factor f");
  return t;
}

std::string RowName(double f) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "f=%.1f", f);
  return buffer;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  const MethodSpec methods[] = {
      {"KPNE", Algorithm::kKpne, NnMode::kHopLabel},
      {"PK", Algorithm::kPruning, NnMode::kHopLabel},
      {"SK", Algorithm::kStar, NnMode::kHopLabel},
  };
  for (double f : kFactors) {
    Workload w = MakeZipfGridWorkload("FLA-zipf", 160, kNumCategories, f,
                                      104 + static_cast<uint64_t>(f * 10));
    auto queries = MakeQueries(w, 6, 30, QueriesPerPoint(), w.seed + 77);
    for (const MethodSpec& m : methods) {
      Table().Record(RowName(f), m.name, RunMethodCell(w, queries, m));
    }
  }
}

void BM_Cell(benchmark::State& state, double f, std::string method) {
  RunAll();
  const CellResult* cell = Table().Find(RowName(f), method);
  for (auto _ : state) {
  }
  if (cell != nullptr && !cell->inf) {
    state.SetIterationTime(cell->avg_ms / 1e3);
    state.counters["examined"] = cell->avg_examined;
  } else {
    state.SetIterationTime(PerQueryBudgetSeconds());
    state.counters["INF"] = 1;
  }
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("fig6_zipf");
  benchmark::Initialize(&argc, argv);
  for (double f : kosr::bench::kFactors) {
    for (const char* m : {"KPNE", "PK", "SK"}) {
      benchmark::RegisterBenchmark(
          (std::string("fig6/") + kosr::bench::RowName(f) + "/" + m).c_str(),
          kosr::bench::BM_Cell, f, m)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  using CT = kosr::bench::CellTable;
  kosr::bench::Table().Print(CT::Metric::kTimeMs, "query time (ms)");
  kosr::bench::Table().Print(CT::Metric::kExamined, "# examined routes");
  return 0;
}
