// Table IX: preprocessing results on all graphs — hub-label construction
// time, average Lin/Lout label sizes, and index size, plus the same for the
// inverted label indexes (build time, avg |IL(Ci)| entries per category,
// avg |IL(v)| entries per inverted list, index size).
//
// Thread-sweep mode: setting KOSR_BENCH_THREADS to a comma list of thread
// counts (e.g. "1,2,4") switches the binary to measuring the parallel index
// build instead — each (graph, threads) pair becomes one benchmark whose
// counters report build seconds and speedup over the single-thread build,
// so the JSON (--benchmark_out) carries the whole sweep. A count of 1 is
// always included as the speedup baseline. BENCH_parallel_build.json is
// recorded this way.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

struct PreprocRow {
  std::string graph;
  uint32_t vertices;
  uint64_t edges;
  double label_seconds;
  double avg_in, avg_out;
  double label_mb;
  double inverted_seconds;
  double avg_il_per_category;
  double avg_il_per_list;
  double inverted_mb;
};

std::vector<PreprocRow>& Rows() {
  static std::vector<PreprocRow> rows;
  return rows;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  auto workloads = MakeAllGraphWorkloads();
  for (const Workload& w : workloads) {
    const KosrEngine& engine = *w.engine;
    PreprocRow row;
    row.graph = w.name;
    row.vertices = engine.graph().num_vertices();
    row.edges = engine.graph().num_edges();
    row.label_seconds = engine.label_build_seconds();
    row.avg_in = engine.labeling().AvgInLabelSize();
    row.avg_out = engine.labeling().AvgOutLabelSize();
    row.label_mb = engine.labeling().IndexBytes() / 1048576.0;
    row.inverted_seconds = engine.inverted_build_seconds();
    uint64_t total_entries = 0, total_lists = 0, bytes = 0;
    uint32_t num_categories = engine.categories().num_categories();
    for (CategoryId c = 0; c < num_categories; ++c) {
      total_entries += engine.inverted(c).total_entries();
      total_lists += engine.inverted(c).num_lists();
      bytes += engine.inverted(c).IndexBytes();
    }
    row.avg_il_per_category =
        num_categories > 0 ? static_cast<double>(total_entries) / num_categories
                           : 0;
    row.avg_il_per_list =
        total_lists > 0 ? static_cast<double>(total_entries) / total_lists : 0;
    row.inverted_mb = bytes / 1048576.0;
    Rows().push_back(row);
  }
}

void BM_Preprocessing(benchmark::State& state, std::string graph) {
  RunAll();
  for (auto _ : state) {
  }
  for (const PreprocRow& row : Rows()) {
    if (row.graph != graph) continue;
    state.SetIterationTime(row.label_seconds + row.inverted_seconds);
    state.counters["avg_Lin"] = row.avg_in;
    state.counters["avg_Lout"] = row.avg_out;
    state.counters["label_MB"] = row.label_mb;
    state.counters["inv_MB"] = row.inverted_mb;
  }
}

std::string Fmt(double v, const char* format = "%.2f") {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), format, v);
  return buffer;
}

// --- Thread-sweep mode (KOSR_BENCH_THREADS) --------------------------------

std::vector<uint32_t> SweepThreadCounts() {
  const char* env = std::getenv("KOSR_BENCH_THREADS");
  if (env == nullptr) return {};
  std::vector<uint32_t> counts{1};  // speedup baseline always measured
  uint32_t current = 0;
  bool any_digit = false;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<uint32_t>(*p - '0');
      any_digit = true;
    } else if (*p == ',' || *p == '\0') {
      if (any_digit && current > 0 &&
          std::find(counts.begin(), counts.end(), current) == counts.end()) {
        counts.push_back(current);
      }
      current = 0;
      any_digit = false;
      if (*p == '\0') break;
    } else {
      std::fprintf(stderr, "ignoring malformed KOSR_BENCH_THREADS: %s\n", env);
      return {};
    }
  }
  return counts;
}

struct SweepRow {
  std::string graph;
  uint32_t threads;
  double label_seconds;
  double inverted_seconds;
  double speedup;  ///< single-thread total / this total
};

std::vector<SweepRow>& SweepRows() {
  static std::vector<SweepRow> rows;
  return rows;
}

void RunSweep() {
  static bool done = false;
  if (done) return;
  done = true;
  std::vector<Workload> workloads;
  workloads.push_back(MakeGridWorkload("CAL", 64, 48, 101, false));
  workloads.push_back(MakeGridWorkload("FLA", 160, 256, 104, false));
  workloads.push_back(MakeSmallWorldWorkload("G+", 3000, 6.0, 48, 105, false));
  for (const Workload& w : workloads) {
    double base_seconds = 0;
    for (uint32_t threads : SweepThreadCounts()) {
      w.BuildIndexes(threads);
      SweepRow row;
      row.graph = w.name;
      row.threads = threads;
      row.label_seconds = w.engine->label_build_seconds();
      row.inverted_seconds = w.engine->inverted_build_seconds();
      double total = row.label_seconds + row.inverted_seconds;
      if (threads == 1) base_seconds = total;
      row.speedup = total > 0 ? base_seconds / total : 0;
      SweepRows().push_back(row);
    }
  }
}

void BM_ParallelBuild(benchmark::State& state, std::string graph,
                      uint32_t threads) {
  RunSweep();
  for (auto _ : state) {
  }
  for (const SweepRow& row : SweepRows()) {
    if (row.graph != graph || row.threads != threads) continue;
    state.SetIterationTime(row.label_seconds + row.inverted_seconds);
    state.counters["threads"] = threads;
    state.counters["label_s"] = row.label_seconds;
    state.counters["inverted_s"] = row.inverted_seconds;
    state.counters["speedup"] = row.speedup;
  }
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("table9_preprocessing");
  benchmark::Initialize(&argc, argv);
  using kosr::bench::Fmt;

  std::vector<uint32_t> sweep = kosr::bench::SweepThreadCounts();
  if (!sweep.empty()) {
    for (const char* g : {"CAL", "FLA", "G+"}) {
      for (uint32_t threads : sweep) {
        std::string name = std::string("table9/parallel_build/") + g +
                           "/threads:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(), kosr::bench::BM_ParallelBuild, g, threads)
            ->Iterations(1)
            ->UseManualTime()
            ->Unit(benchmark::kSecond);
      }
    }
    benchmark::RunSpecifiedBenchmarks();
    kosr::bench::PrintHeader(
        "Parallel index build thread sweep",
        "hub labels + inverted indexes, speedup vs 1 thread");
    kosr::bench::PrintRowHeader(
        "graph", {"threads", "label(s)", "inverted(s)", "speedup"});
    for (const auto& row : kosr::bench::SweepRows()) {
      kosr::bench::PrintRow(
          row.graph,
          {std::to_string(row.threads), Fmt(row.label_seconds),
           Fmt(row.inverted_seconds), Fmt(row.speedup)});
    }
    return 0;
  }

  for (const char* g : {"CAL", "NYC", "COL", "FLA", "G+"}) {
    benchmark::RegisterBenchmark((std::string("table9/") + g).c_str(),
                                 kosr::bench::BM_Preprocessing, g)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();

  kosr::bench::PrintHeader("Table IX: preprocessing results",
                           "hub label indexes (top) and inverted label "
                           "indexes (bottom)");
  kosr::bench::PrintRowHeader(
      "graph", {"|V|", "|E|", "time(s)", "avg|Lin|", "avg|Lout|", "size(MB)"});
  for (const auto& row : kosr::bench::Rows()) {
    kosr::bench::PrintRow(
        row.graph,
        {std::to_string(row.vertices), std::to_string(row.edges),
         Fmt(row.label_seconds), Fmt(row.avg_in, "%.1f"),
         Fmt(row.avg_out, "%.1f"), Fmt(row.label_mb)});
  }
  std::printf("\n");
  kosr::bench::PrintRowHeader(
      "graph", {"time(s)", "avg|IL(Ci)|", "avg|IL(v)|", "size(MB)"});
  for (const auto& row : kosr::bench::Rows()) {
    kosr::bench::PrintRow(row.graph, {Fmt(row.inverted_seconds),
                                      Fmt(row.avg_il_per_category, "%.1f"),
                                      Fmt(row.avg_il_per_list, "%.1f"),
                                      Fmt(row.inverted_mb)});
  }
  return 0;
}
