// Table IX: preprocessing results on all graphs — hub-label construction
// time, average Lin/Lout label sizes, and index size, plus the same for the
// inverted label indexes (build time, avg |IL(Ci)| entries per category,
// avg |IL(v)| entries per inverted list, index size).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

struct PreprocRow {
  std::string graph;
  uint32_t vertices;
  uint64_t edges;
  double label_seconds;
  double avg_in, avg_out;
  double label_mb;
  double inverted_seconds;
  double avg_il_per_category;
  double avg_il_per_list;
  double inverted_mb;
};

std::vector<PreprocRow>& Rows() {
  static std::vector<PreprocRow> rows;
  return rows;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  auto workloads = MakeAllGraphWorkloads();
  for (const Workload& w : workloads) {
    const KosrEngine& engine = *w.engine;
    PreprocRow row;
    row.graph = w.name;
    row.vertices = engine.graph().num_vertices();
    row.edges = engine.graph().num_edges();
    row.label_seconds = engine.label_build_seconds();
    row.avg_in = engine.labeling().AvgInLabelSize();
    row.avg_out = engine.labeling().AvgOutLabelSize();
    row.label_mb = engine.labeling().IndexBytes() / 1048576.0;
    row.inverted_seconds = engine.inverted_build_seconds();
    uint64_t total_entries = 0, total_lists = 0, bytes = 0;
    uint32_t num_categories = engine.categories().num_categories();
    for (CategoryId c = 0; c < num_categories; ++c) {
      total_entries += engine.inverted(c).total_entries();
      total_lists += engine.inverted(c).num_lists();
      bytes += engine.inverted(c).IndexBytes();
    }
    row.avg_il_per_category =
        num_categories > 0 ? static_cast<double>(total_entries) / num_categories
                           : 0;
    row.avg_il_per_list =
        total_lists > 0 ? static_cast<double>(total_entries) / total_lists : 0;
    row.inverted_mb = bytes / 1048576.0;
    Rows().push_back(row);
  }
}

void BM_Preprocessing(benchmark::State& state, std::string graph) {
  RunAll();
  for (auto _ : state) {
  }
  for (const PreprocRow& row : Rows()) {
    if (row.graph != graph) continue;
    state.SetIterationTime(row.label_seconds + row.inverted_seconds);
    state.counters["avg_Lin"] = row.avg_in;
    state.counters["avg_Lout"] = row.avg_out;
    state.counters["label_MB"] = row.label_mb;
    state.counters["inv_MB"] = row.inverted_mb;
  }
}

std::string Fmt(double v, const char* format = "%.2f") {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), format, v);
  return buffer;
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const char* g : {"CAL", "NYC", "COL", "FLA", "G+"}) {
    benchmark::RegisterBenchmark((std::string("table9/") + g).c_str(),
                                 kosr::bench::BM_Preprocessing, g)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();

  using kosr::bench::Fmt;
  kosr::bench::PrintHeader("Table IX: preprocessing results",
                           "hub label indexes (top) and inverted label "
                           "indexes (bottom)");
  kosr::bench::PrintRowHeader(
      "graph", {"|V|", "|E|", "time(s)", "avg|Lin|", "avg|Lout|", "size(MB)"});
  for (const auto& row : kosr::bench::Rows()) {
    kosr::bench::PrintRow(
        row.graph,
        {std::to_string(row.vertices), std::to_string(row.edges),
         Fmt(row.label_seconds), Fmt(row.avg_in, "%.1f"),
         Fmt(row.avg_out, "%.1f"), Fmt(row.label_mb)});
  }
  std::printf("\n");
  kosr::bench::PrintRowHeader(
      "graph", {"time(s)", "avg|IL(Ci)|", "avg|IL(v)|", "size(MB)"});
  for (const auto& row : kosr::bench::Rows()) {
    kosr::bench::PrintRow(row.graph, {Fmt(row.inverted_seconds),
                                      Fmt(row.avg_il_per_category, "%.1f"),
                                      Fmt(row.avg_il_per_list, "%.1f"),
                                      Fmt(row.inverted_mb)});
  }
  return 0;
}
