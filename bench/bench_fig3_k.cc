// Figure 3(d) and 3(e): effect of k in {10, 20, 30, 40, 50} on the FLA and
// CAL analogs (|C| = 6). The paper's observation to reproduce: all methods
// are nearly flat in k — once the first optimal route is found, the
// remaining ones are largely covered by its search space.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

const uint32_t kKs[] = {10, 20, 30, 40, 50};

CellTable& FlaTable() {
  static CellTable t("Figure 3(d): effect of k on FLA",
                     "|C|=6; rows are k values, columns are methods");
  return t;
}
CellTable& CalTable() {
  static CellTable t("Figure 3(e): effect of k on CAL",
                     "|C|=6; rows are k values, columns are methods");
  return t;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  struct Target {
    Workload workload;
    CellTable* table;
  };
  std::vector<Target> targets;
  targets.push_back({MakeFlaWorkload(), &FlaTable()});
  targets.push_back({MakeCalWorkload(), &CalTable()});
  for (const Target& target : targets) {
    std::optional<ScopedDiskStore> store;
    for (uint32_t k : kKs) {
      auto queries = MakeQueries(target.workload, 6, k, QueriesPerPoint(),
                                 target.workload.seed + k);
      for (const MethodSpec& m : PaperMethods()) {
        const DiskLabelStore* disk = nullptr;
        if (m.disk) {
          if (!store.has_value()) store.emplace(target.workload);
          disk = &store->get();
        }
        target.table->Record("k=" + std::to_string(k), m.name,
                             RunMethodCell(target.workload, queries, m, false,
                                           disk));
      }
    }
  }
}

void BM_Cell(benchmark::State& state, std::string graph, uint32_t k,
             std::string method) {
  RunAll();
  CellTable& table = graph == "FLA" ? FlaTable() : CalTable();
  const CellResult* cell = table.Find("k=" + std::to_string(k), method);
  for (auto _ : state) {
  }
  if (cell != nullptr && !cell->inf) {
    state.SetIterationTime(cell->avg_ms / 1e3);
    state.counters["examined"] = cell->avg_examined;
    state.counters["nn_queries"] = cell->avg_nn_queries;
  } else {
    state.SetIterationTime(PerQueryBudgetSeconds());
    state.counters["INF"] = 1;
  }
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("fig3_k");
  benchmark::Initialize(&argc, argv);
  for (const char* g : {"FLA", "CAL"}) {
    for (uint32_t k : kosr::bench::kKs) {
      for (const auto& m : kosr::bench::PaperMethods()) {
        benchmark::RegisterBenchmark(
            (std::string("fig3_k/") + g + "/k=" + std::to_string(k) + "/" +
             m.name)
                .c_str(),
            kosr::bench::BM_Cell, g, k, m.name)
            ->Iterations(1)
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  using CT = kosr::bench::CellTable;
  kosr::bench::FlaTable().Print(CT::Metric::kTimeMs, "query time (ms)");
  kosr::bench::CalTable().Print(CT::Metric::kTimeMs, "query time (ms)");
  return 0;
}
