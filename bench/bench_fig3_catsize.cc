// Figure 3(h): effect of category size |Ci| on the FLA analog (|C| = 6,
// k = 30). The paper sweeps {5000, 10000, 15000, 20000} on the 1.07M-vertex
// FLA; we sweep the proportionally scaled {128, 256, 384, 512} on the 25.6k
// analog. Expected shape: both PK and SK degrade as |Ci| grows (Lemma 3's
// |Ci|*|Ci+1| term), SK more slowly.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

const uint32_t kSizes[] = {128, 256, 384, 512};

CellTable& Table() {
  static CellTable t("Figure 3(h): effect of |Ci| on FLA",
                     "|C|=6, k=30; rows are |Ci| (scaled from the paper's "
                     "5k/10k/15k/20k), columns are methods");
  return t;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  for (uint32_t size : kSizes) {
    Workload w = MakeFlaWorkload(size);
    auto queries = MakeQueries(w, 6, 30, QueriesPerPoint(), w.seed + size);
    std::optional<ScopedDiskStore> store;
    for (const MethodSpec& m : PaperMethods()) {
      const DiskLabelStore* disk = nullptr;
      if (m.disk) {
        if (!store.has_value()) store.emplace(w);
        disk = &store->get();
      }
      Table().Record("|Ci|=" + std::to_string(size), m.name,
                     RunMethodCell(w, queries, m, false, disk));
    }
  }
}

void BM_Cell(benchmark::State& state, uint32_t size, std::string method) {
  RunAll();
  const CellResult* cell = Table().Find("|Ci|=" + std::to_string(size), method);
  for (auto _ : state) {
  }
  if (cell != nullptr && !cell->inf) {
    state.SetIterationTime(cell->avg_ms / 1e3);
    state.counters["examined"] = cell->avg_examined;
    state.counters["nn_queries"] = cell->avg_nn_queries;
  } else {
    state.SetIterationTime(PerQueryBudgetSeconds());
    state.counters["INF"] = 1;
  }
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("fig3_catsize");
  benchmark::Initialize(&argc, argv);
  for (uint32_t size : kosr::bench::kSizes) {
    for (const auto& m : kosr::bench::PaperMethods()) {
      benchmark::RegisterBenchmark(
          (std::string("fig3_catsize/Ci=") + std::to_string(size) + "/" +
           m.name)
              .c_str(),
          kosr::bench::BM_Cell, size, m.name)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  using CT = kosr::bench::CellTable;
  kosr::bench::Table().Print(CT::Metric::kTimeMs, "query time (ms)");
  kosr::bench::Table().Print(CT::Metric::kExamined, "# examined routes");
  return 0;
}
