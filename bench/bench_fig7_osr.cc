// Figure 7: OSR queries (k = 1) — the proposed methods against GSP, the
// state-of-the-art optimal-sequenced-route algorithm [29]. Expected shape:
// GSP beats KPNE and the Dijkstra-backed variants everywhere and beats PK on
// the large-category graphs (COL, FLA), but SK and SK-DB beat GSP on every
// graph; GSP's time grows with graph size while SK's does not.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

constexpr uint32_t kSeqLen = 6;

CellTable& Table() {
  static CellTable t("Figure 7: OSR (k=1) — proposed methods vs GSP",
                     "|C|=6, k=1; columns are methods, rows are graphs");
  return t;
}

CellResult RunGspCell(const Workload& w, const std::vector<KosrQuery>& qs) {
  CellResult cell;
  double total_ms = 0;
  WallTimer budget_timer;
  for (const KosrQuery& q : qs) {
    QueryStats stats;
    WallTimer t;
    w.engine->QueryGsp(q.source, q.target, q.sequence, &stats);
    double ms = t.ElapsedMillis();
    total_ms += ms;
    cell.accumulated.Accumulate(stats);
    ++cell.queries_run;
    if (ms / 1e3 > PerQueryBudgetSeconds()) {
      cell.inf = true;
      break;
    }
  }
  if (!cell.inf && cell.queries_run > 0) {
    cell.avg_ms = total_ms / cell.queries_run;
  }
  return cell;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  auto workloads = MakeAllGraphWorkloads();
  for (const Workload& w : workloads) {
    auto queries = MakeQueries(w, kSeqLen, 1, QueriesPerPoint(), w.seed + 9);
    std::optional<ScopedDiskStore> store;
    for (const MethodSpec& m : PaperMethods()) {
      const DiskLabelStore* disk = nullptr;
      if (m.disk) {
        if (!store.has_value()) store.emplace(w);
        disk = &store->get();
      }
      Table().Record(w.name, m.name, RunMethodCell(w, queries, m, false, disk));
    }
    Table().Record(w.name, "GSP", RunGspCell(w, queries));
  }
}

void BM_Cell(benchmark::State& state, std::string graph, std::string method) {
  RunAll();
  const CellResult* cell = Table().Find(graph, method);
  for (auto _ : state) {
  }
  if (cell != nullptr && !cell->inf) {
    state.SetIterationTime(cell->avg_ms / 1e3);
  } else {
    state.SetIterationTime(PerQueryBudgetSeconds());
    state.counters["INF"] = 1;
  }
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("fig7_osr");
  benchmark::Initialize(&argc, argv);
  for (const char* g : {"CAL", "NYC", "COL", "FLA", "G+"}) {
    for (const auto& m : kosr::bench::PaperMethods()) {
      benchmark::RegisterBenchmark(
          (std::string("fig7/") + g + "/" + m.name).c_str(),
          kosr::bench::BM_Cell, g, m.name)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark((std::string("fig7/") + g + "/GSP").c_str(),
                                 kosr::bench::BM_Cell, g, "GSP")
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  using CT = kosr::bench::CellTable;
  kosr::bench::Table().Print(CT::Metric::kTimeMs, "query time (ms)");
  return 0;
}
