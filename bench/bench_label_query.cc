// Raw 2-hop distance-query throughput over the hub labeling: the sealed
// flat SoA store (the production path) against the nested-vector reference
// merge-join it replaced. This is the microbench behind
// BENCH_flat_labels.json — the KOSR algorithms issue thousands of these
// probes per query, so ns-per-probe here is the system's hot-path budget.
//
// Two pair distributions per graph:
//   random — uniform (s, t): long label runs, few shared hubs, the
//            merge-join is dominated by skipping.
//   local  — t drawn from a small Dijkstra ball around s: the common case
//            inside FindNN/FindNEN frontiers, many shared hubs.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/min_heap.h"

namespace kosr::bench {
namespace {

struct PairSet {
  std::string name;
  std::vector<std::pair<VertexId, VertexId>> pairs;
};

std::vector<std::pair<VertexId, VertexId>> RandomPairs(const Graph& graph,
                                                       uint32_t count,
                                                       uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> pick(0, graph.num_vertices() - 1);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) pairs.emplace_back(pick(rng), pick(rng));
  return pairs;
}

// Pairs (s, t) with t among the `ball` nearest vertices of s.
std::vector<std::pair<VertexId, VertexId>> LocalPairs(const Graph& graph,
                                                      uint32_t count,
                                                      uint32_t ball,
                                                      uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> pick(0, graph.num_vertices() - 1);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(count);
  IndexedMinHeap heap(graph.num_vertices());
  std::vector<VertexId> settled;
  while (pairs.size() < count) {
    VertexId s = pick(rng);
    settled.clear();
    heap.Clear();
    heap.InsertOrDecrease(s, 0);
    // Truncated Dijkstra: settle up to `ball` vertices around s. Revisits
    // are fine for workload construction — the heap dedups live entries and
    // a settled vertex re-inserted later only pads the ball slightly.
    while (!heap.Empty() && settled.size() < ball) {
      auto [d, x] = heap.ExtractMin();
      settled.push_back(x);
      for (const Arc& a : graph.OutArcs(x)) {
        heap.InsertOrDecrease(a.head, d + a.weight);
      }
    }
    if (settled.size() < 2) continue;
    std::uniform_int_distribution<size_t> in_ball(1, settled.size() - 1);
    pairs.emplace_back(s, settled[in_ball(rng)]);
  }
  return pairs;
}

// One workload per paper-graph family: FLA-analog grid + G+ small world.
std::vector<Workload>& Workloads() {
  static std::vector<Workload> w = [] {
    std::vector<Workload> v;
    v.push_back(MakeGridWorkload("FLA", 160, 256, 104));
    v.push_back(MakeSmallWorldWorkload("G+", 3000, 6.0, 48, 105));
    return v;
  }();
  return w;
}

constexpr uint32_t kPairs = 4096;

const PairSet& Pairs(const Workload& w, bool local) {
  static std::vector<std::pair<std::string, PairSet>> cache;
  std::string key = w.name + (local ? "/local" : "/random");
  for (const auto& [k, set] : cache) {
    if (k == key) return set;
  }
  PairSet set;
  set.name = key;
  set.pairs = local ? LocalPairs(w.engine->graph(), kPairs, 64, w.seed + 11)
                    : RandomPairs(w.engine->graph(), kPairs, w.seed + 12);
  cache.emplace_back(key, std::move(set));
  return cache.back().second;
}

void BM_QueryFlat(benchmark::State& state, const Workload* w, bool local) {
  const HubLabeling& hl = w->engine->labeling();
  const auto& pairs = Pairs(*w, local).pairs;
  for (auto _ : state) {
    Cost sum = 0;
    for (const auto& [s, t] : pairs) sum += hl.Query(s, t);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          pairs.size());
}

void BM_QueryNested(benchmark::State& state, const Workload* w, bool local) {
  const HubLabeling& hl = w->engine->labeling();
  const auto& pairs = Pairs(*w, local).pairs;
  for (auto _ : state) {
    Cost sum = 0;
    for (const auto& [s, t] : pairs) {
      auto r = hl.QueryWithHubReference(s, t);
      sum += r ? r->first : kInfCost;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          pairs.size());
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("label_query");
  benchmark::Initialize(&argc, argv);
  for (const auto& w : kosr::bench::Workloads()) {
    for (bool local : {false, true}) {
      const char* dist = local ? "local" : "random";
      benchmark::RegisterBenchmark(
          ("label_query/" + w.name + "/" + dist + "/flat").c_str(),
          kosr::bench::BM_QueryFlat, &w, local);
      benchmark::RegisterBenchmark(
          ("label_query/" + w.name + "/" + dist + "/nested").c_str(),
          kosr::bench::BM_QueryNested, &w, local);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
