// Figure 4: performance with small k in {1, 2, 3, 4, 5, 10} on the CAL and
// FLA analogs (|C| = 6). The paper's shape: query time changes only slightly
// as k grows, and the proposed methods dominate at every k.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

const uint32_t kKs[] = {1, 2, 3, 4, 5, 10};

CellTable& CalTable() {
  static CellTable t("Figure 4(a): small k on CAL",
                     "|C|=6; rows are k values, columns are methods");
  return t;
}
CellTable& FlaTable() {
  static CellTable t("Figure 4(b): small k on FLA",
                     "|C|=6; rows are k values, columns are methods");
  return t;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  struct Target {
    Workload workload;
    CellTable* table;
  };
  std::vector<Target> targets;
  targets.push_back({MakeCalWorkload(), &CalTable()});
  targets.push_back({MakeFlaWorkload(), &FlaTable()});
  for (const Target& target : targets) {
    std::optional<ScopedDiskStore> store;
    for (uint32_t k : kKs) {
      auto queries = MakeQueries(target.workload, 6, k, QueriesPerPoint(),
                                 target.workload.seed + 1000 + k);
      for (const MethodSpec& m : PaperMethods()) {
        const DiskLabelStore* disk = nullptr;
        if (m.disk) {
          if (!store.has_value()) store.emplace(target.workload);
          disk = &store->get();
        }
        target.table->Record("k=" + std::to_string(k), m.name,
                             RunMethodCell(target.workload, queries, m, false,
                                           disk));
      }
    }
  }
}

void BM_Cell(benchmark::State& state, std::string graph, uint32_t k,
             std::string method) {
  RunAll();
  CellTable& table = graph == "CAL" ? CalTable() : FlaTable();
  const CellResult* cell = table.Find("k=" + std::to_string(k), method);
  for (auto _ : state) {
  }
  if (cell != nullptr && !cell->inf) {
    state.SetIterationTime(cell->avg_ms / 1e3);
    state.counters["examined"] = cell->avg_examined;
  } else {
    state.SetIterationTime(PerQueryBudgetSeconds());
    state.counters["INF"] = 1;
  }
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("fig4_smallk");
  benchmark::Initialize(&argc, argv);
  for (const char* g : {"CAL", "FLA"}) {
    for (uint32_t k : kosr::bench::kKs) {
      for (const auto& m : kosr::bench::PaperMethods()) {
        benchmark::RegisterBenchmark(
            (std::string("fig4/") + g + "/k=" + std::to_string(k) + "/" +
             m.name)
                .c_str(),
            kosr::bench::BM_Cell, g, k, m.name)
            ->Iterations(1)
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  using CT = kosr::bench::CellTable;
  kosr::bench::CalTable().Print(CT::Metric::kTimeMs, "query time (ms)");
  kosr::bench::FlaTable().Print(CT::Metric::kTimeMs, "query time (ms)");
  return 0;
}
