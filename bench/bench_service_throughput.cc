// Open-loop throughput benchmark for the serving layer (ISSUE 2).
//
// Replays a Zipf-skewed mix of KOSR queries against a KosrService at a
// fixed offered rate (open loop: arrivals do not wait for completions, so
// queue growth and backpressure are visible), three times over the same
// request stream — a cold-cache phase, a warm-cache phase, and a mixed
// phase with a concurrent writer applying randomized SET_EDGE updates at a
// fixed rate (ISSUE 8: query latency under a continuous update stream) —
// and emits a JSON report with achieved QPS, per-method p50/p95/p99, and
// cache hit rates.
//
// With --journal-dir a fourth, journal-overhead phase runs (ISSUE 9): the
// mixed workload replays against a second, write-ahead-journaled service
// built from an identical engine, so the report's "durability" section
// puts journaled and in-memory update latency side by side, plus the
// journal counters and the cost of a full CHECKPOINT. BENCH_durability.json
// is a recorded run.
//
// Standalone binary (no google-benchmark dependency): the open-loop clock
// is the experiment, not iteration timing.
//
// Flags (all optional):
//   --requests N      requests per phase   (default 600 * KOSR_BENCH_SCALE)
//   --rate QPS        offered arrival rate (default 200)
//   --pool P          distinct queries     (default = --requests, so the
//                     cold phase has a real miss stream to measure against)
//   --zipf S          Zipf exponent over the pool (default 0.8)
//   --workers W       service worker threads  (default 4)
//   --queue Q         queue capacity          (default 512)
//   --cache C         cache capacity          (default 1024; 0 disables)
//   --update-rate U   writer rate in the mixed phase, updates/s
//                     (default 50; 0 skips the mixed phase)
//   --update-batch-window S  update batching window forwarded to the
//                     service (seconds; default 0 = apply immediately)
//   --journal-dir D   run the journal-overhead phase against a write-ahead
//                     journal in D (recreated; default "" skips the phase)
//   --fsync-policy P  journal fsync policy: always|interval|never
//                     (default always)
//   --checkpoint-bytes B  journal size that triggers an automatic
//                     checkpoint during the phase (default 0 = only the
//                     final explicit one)
//   --seed X          workload/mix seed       (default 7)
//
// Network mode (ISSUE 10): `--net 1` measures the framed TCP transport
// instead of the in-process API — a connections x pipeline-depth sweep of
// open-loop pipelined clients against a real socket server (self-hosted on
// an ephemeral port, or an external `kosr_cli serve --listen` process via
// --connect), producing the BENCH_network_serving.json report. Latency is
// measured from each request's *scheduled* send time, so schedule slip
// under a full pipeline window shows up in the tail instead of vanishing.
//
//   --net 1               run the network sweep (skips the in-process phases)
//   --connect host:port   drive an external server (default: self-host)
//   --connections LIST    comma list of connection counts  (default 1,4,8)
//   --pipeline LIST       comma list of pipeline depths    (default 1,8,32)
// --requests is the per-cell total across connections and --rate the
// per-cell total offered QPS; both split evenly across the connections.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/durability/journal.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/service/metrics.h"
#include "src/service/service.h"
#include "src/util/stats.h"
#include "src/util/zipf.h"

namespace kosr::bench {
namespace {

using service::KosrService;
using service::ServiceConfig;
using service::ServiceRequest;
using service::ServiceResponse;
using service::ResponseStatus;

struct Options {
  uint32_t requests = 0;
  double rate = 200;
  uint32_t pool = 0;  ///< 0 = match `requests`.
  double zipf_s = 0.8;
  uint32_t workers = 4;
  size_t queue_capacity = 512;
  size_t cache_capacity = 1024;
  double update_rate = 50;
  double update_batch_window_s = 0;
  std::string journal_dir;  ///< Empty = skip the journal-overhead phase.
  std::string fsync_policy = "always";
  uint64_t checkpoint_bytes = 0;
  uint64_t seed = 7;
  bool net = false;              ///< Run the TCP sweep instead.
  std::string connect;           ///< Empty = self-host on an ephemeral port.
  std::vector<uint32_t> connections = {1, 4, 8};
  std::vector<uint32_t> pipeline_depths = {1, 8, 32};
};

// std::stoul would silently wrap "-1" to a huge count (and --workers -1
// would then try to spawn ~4 billion threads); parse signed and reject.
uint64_t ParseCount(const std::string& value, const std::string& flag) {
  long long parsed = 0;
  try {
    parsed = std::stoll(value);
  } catch (const std::exception&) {
    parsed = -1;
  }
  if (parsed < 0) {
    std::fprintf(stderr, "%s wants a non-negative integer, got %s\n",
                 flag.c_str(), value.c_str());
    std::exit(1);
  }
  return static_cast<uint64_t>(parsed);
}

std::vector<uint32_t> ParseCountList(const std::string& value,
                                     const std::string& flag) {
  std::vector<uint32_t> list;
  std::stringstream ss(value);
  std::string part;
  while (std::getline(ss, part, ',')) {
    uint64_t parsed = ParseCount(part, flag);
    if (parsed == 0) {
      std::fprintf(stderr, "%s wants positive integers, got %s\n",
                   flag.c_str(), value.c_str());
      std::exit(1);
    }
    list.push_back(static_cast<uint32_t>(parsed));
  }
  if (list.empty()) {
    std::fprintf(stderr, "%s wants a comma list of integers\n", flag.c_str());
    std::exit(1);
  }
  return list;
}

Options ParseOptions(int argc, char** argv) {
  Options opt;
  double scale = WorkloadScale();
  opt.requests = std::max(50u, static_cast<uint32_t>(600 * scale));
  opt.pool = 0;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--requests") {
      opt.requests = static_cast<uint32_t>(ParseCount(value, flag));
    } else if (flag == "--rate") {
      opt.rate = std::stod(value);
    } else if (flag == "--pool") {
      opt.pool = static_cast<uint32_t>(ParseCount(value, flag));
    } else if (flag == "--zipf") {
      opt.zipf_s = std::stod(value);
    } else if (flag == "--workers") {
      opt.workers = static_cast<uint32_t>(ParseCount(value, flag));
    } else if (flag == "--queue") {
      opt.queue_capacity = ParseCount(value, flag);
    } else if (flag == "--cache") {
      opt.cache_capacity = ParseCount(value, flag);
    } else if (flag == "--update-rate") {
      opt.update_rate = std::stod(value);
    } else if (flag == "--update-batch-window") {
      opt.update_batch_window_s = std::stod(value);
    } else if (flag == "--journal-dir") {
      opt.journal_dir = value;
    } else if (flag == "--fsync-policy") {
      opt.fsync_policy = value;
    } else if (flag == "--checkpoint-bytes") {
      opt.checkpoint_bytes = ParseCount(value, flag);
    } else if (flag == "--seed") {
      opt.seed = ParseCount(value, flag);
    } else if (flag == "--net") {
      opt.net = ParseCount(value, flag) != 0;
    } else if (flag == "--connect") {
      opt.connect = value;
    } else if (flag == "--connections") {
      opt.connections = ParseCountList(value, flag);
    } else if (flag == "--pipeline") {
      opt.pipeline_depths = ParseCountList(value, flag);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(1);
    }
  }
  if (opt.requests == 0 || opt.rate <= 0) {
    std::fprintf(stderr, "--requests and --rate must be positive\n");
    std::exit(1);
  }
  if (opt.update_rate < 0 || opt.update_batch_window_s < 0) {
    std::fprintf(stderr,
                 "--update-rate and --update-batch-window must be "
                 "non-negative\n");
    std::exit(1);
  }
  if (!opt.journal_dir.empty() &&
      !durability::ParseFsyncPolicy(opt.fsync_policy).has_value()) {
    std::fprintf(stderr, "--fsync-policy wants always|interval|never, got %s\n",
                 opt.fsync_policy.c_str());
    std::exit(1);
  }
  if (opt.pool == 0) opt.pool = opt.requests;
  return opt;
}

struct PhaseReport {
  double wall_s = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  /// Deepest queue observed by the submitter (sampled at every submit, so
  /// bursts between submissions can still slip past it).
  size_t peak_queue_depth = 0;
  std::map<std::string, LatencyHistogram> per_method;

  std::string ToJson() const {
    std::ostringstream os;
    double qps = wall_s > 0 ? completed / wall_s : 0;
    double hit_rate =
        completed > 0 ? static_cast<double>(cache_hits) / completed : 0;
    os << "{\"wall_s\":" << wall_s << ",\"achieved_qps\":" << qps
       << ",\"completed\":" << completed << ",\"rejected\":" << rejected
       << ",\"errors\":" << errors << ",\"cache_hits\":" << cache_hits
       << ",\"cache_hit_rate\":" << hit_rate
       << ",\"peak_queue_depth\":" << peak_queue_depth << ",\"methods\":{";
    bool first = true;
    for (const auto& [name, histogram] : per_method) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << histogram.SummaryJson();
    }
    os << "}}";
    return os.str();
  }
};

/// Outcome of the concurrent writer in the mixed phase.
struct UpdaterReport {
  uint64_t updates_applied = 0;
  LatencyHistogram latency;  ///< Per-SET_EDGE submit-to-return latency.

  std::string ToJson() const {
    std::ostringstream os;
    os << "{\"updates_applied\":" << updates_applied
       << ",\"update_latency\":" << latency.SummaryJson() << "}";
    return os.str();
  }
};

/// Open-loop writer: picks a random existing arc and re-randomizes its
/// weight within the workload's weight range at a fixed offered rate until
/// stopped. SET_EDGE keeps the arc present, so connectivity (and therefore
/// the query result shape) never collapses mid-phase.
UpdaterReport RunUpdater(
    KosrService& service,
    const std::vector<std::tuple<VertexId, VertexId, Weight>>& edges,
    double rate, uint64_t seed, const std::atomic<bool>& stop) {
  using Clock = std::chrono::steady_clock;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<size_t> pick_edge(0, edges.size() - 1);
  std::uniform_int_distribution<Weight> pick_weight(10, 100);
  auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate));
  Clock::time_point start = Clock::now();
  UpdaterReport report;
  for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
    std::this_thread::sleep_until(start + period * i);
    if (stop.load(std::memory_order_relaxed)) break;
    const auto& [u, v, w] = edges[pick_edge(rng)];
    (void)w;
    WallTimer timer;
    service.SetEdgeWeight(u, v, pick_weight(rng));
    report.latency.Record(timer.ElapsedSeconds());
    ++report.updates_applied;
  }
  return report;
}

/// Replays the request stream open-loop: request i is submitted at
/// start + i/rate regardless of earlier completions.
PhaseReport RunPhase(KosrService& service,
                     const std::vector<ServiceRequest>& stream, double rate) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(stream.size());
  auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate));
  WallTimer wall;
  Clock::time_point start = Clock::now();
  PhaseReport report;
  for (size_t i = 0; i < stream.size(); ++i) {
    std::this_thread::sleep_until(start + period * i);
    futures.push_back(service.SubmitAsync(stream[i]));
    report.peak_queue_depth =
        std::max(report.peak_queue_depth, service.queue_depth());
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ServiceResponse response = futures[i].get();
    switch (response.status) {
      case ResponseStatus::kOk: {
        ++report.completed;
        if (response.cache_hit) ++report.cache_hits;
        const KosrOptions& options = stream[i].options;
        report.per_method[service::MethodName(options.algorithm,
                                              options.nn_mode)]
            .Record(response.latency_s);
        break;
      }
      case ResponseStatus::kRejected:
        ++report.rejected;
        break;
      default:
        ++report.errors;
        break;
    }
  }
  report.wall_s = wall.ElapsedSeconds();
  return report;
}

// --- Network mode (ISSUE 10) ----------------------------------------------

/// Renders a pool query as a protocol line with an explicit method token
/// (the same 80/20 SK/PK mix the in-process phases use).
std::string QueryLine(const KosrQuery& query, bool star) {
  std::ostringstream os;
  os << "QUERY " << query.source << ' ' << query.target << ' ';
  for (size_t i = 0; i < query.sequence.size(); ++i) {
    if (i > 0) os << ',';
    os << query.sequence[i];
  }
  os << ' ' << query.k << ' ' << (star ? "sk" : "pk");
  return os.str();
}

/// One connection's share of a sweep cell.
struct ConnOutcome {
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  LatencyHistogram latency;  ///< Scheduled send -> response received.
  std::string failure;       ///< Non-empty: the connection died; cell is bad.
};

/// Open-loop pipelined client: request i is *due* at start + i/rate; it is
/// sent as soon as the pipeline window has room at or after that time, and
/// its latency is measured from the due time, so window stalls surface as
/// tail latency (the schedule does not politely wait for the server).
void RunNetConnection(const std::string& host, uint16_t port,
                      const std::vector<std::string>& lines, double rate,
                      uint32_t depth, ConnOutcome* outcome) {
  using Clock = std::chrono::steady_clock;
  try {
    net::FramedClient client(host, port);
    std::map<uint64_t, Clock::time_point> in_flight;  // id -> due time
    auto settle = [&](const net::ClientResponse& response) {
      auto it = in_flight.find(response.request_id);
      if (it == in_flight.end()) {
        throw std::runtime_error("response for unknown request id");
      }
      outcome->latency.Record(
          std::chrono::duration<double>(Clock::now() - it->second).count());
      in_flight.erase(it);
      if (response.status == net::kStatusOk) {
        if (response.payload.rfind("OK ", 0) == 0) {
          ++outcome->ok;
        } else {
          ++outcome->errors;  // protocol-level "ERR ..."
        }
      } else if (response.status == net::kStatusRejected) {
        ++outcome->rejected;
      } else {
        ++outcome->errors;
      }
    };
    auto recv_one = [&] {
      auto response = client.Recv();
      if (!response.has_value()) {
        throw std::runtime_error("server closed the connection mid-cell");
      }
      settle(*response);
    };
    auto period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / rate));
    Clock::time_point start = Clock::now();
    for (size_t i = 0; i < lines.size(); ++i) {
      Clock::time_point due = start + period * static_cast<int64_t>(i);
      std::this_thread::sleep_until(due);
      while (client.Poll(0)) recv_one();     // opportunistic drain
      while (in_flight.size() >= depth) recv_one();  // window full: block
      in_flight.emplace(client.SendLine(lines[i]), due);
    }
    while (!in_flight.empty()) recv_one();
  } catch (const std::exception& e) {
    outcome->failure = e.what();
  }
}

int NetMain(const Options& opt) {
  // Same CAL-analog workload and Zipf-skewed stream shape as the
  // in-process phases, rendered as protocol lines.
  Workload workload = MakeGridWorkload("CAL", 64, 48, opt.seed + 100);
  std::vector<KosrQuery> pool =
      MakeQueries(workload, /*seq_len=*/3, /*k=*/4, opt.pool, opt.seed + 1);

  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::unique_ptr<KosrService> service;
  std::unique_ptr<net::NetServer> server;
  if (opt.connect.empty()) {
    ServiceConfig config;
    config.num_workers = opt.workers;
    config.queue_capacity = opt.queue_capacity;
    config.cache_capacity = opt.cache_capacity;
    service =
        std::make_unique<KosrService>(std::move(*workload.engine), config);
    net::ServerOptions server_options;
    server_options.max_pipeline = 4096;  // the client window is the cap
    server = std::make_unique<net::NetServer>(*service, server_options);
    server->Start();
    port = server->port();
  } else {
    auto [parsed_host, parsed_port] = net::ParseHostPort(opt.connect);
    host = parsed_host;
    port = parsed_port;
  }

  std::ostringstream cells;
  cells << "[";
  bool first_cell = true;
  for (uint32_t connections : opt.connections) {
    for (uint32_t depth : opt.pipeline_depths) {
      const uint32_t per_conn =
          std::max(1u, opt.requests / std::max(1u, connections));
      const double rate_per_conn = opt.rate / connections;
      // Distinct streams per connection (distinct seeds) over the shared
      // Zipf pool, so connections contend on the cache realistically.
      std::vector<std::vector<std::string>> streams(connections);
      for (uint32_t c = 0; c < connections; ++c) {
        std::mt19937_64 rng(opt.seed + 17 * c + depth);
        ZipfSampler sampler(opt.pool, opt.zipf_s);
        std::uniform_real_distribution<double> method_pick(0.0, 1.0);
        streams[c].reserve(per_conn);
        for (uint32_t i = 0; i < per_conn; ++i) {
          streams[c].push_back(
              QueryLine(pool[sampler.Sample(rng)], method_pick(rng) < 0.8));
        }
      }
      std::vector<ConnOutcome> outcomes(connections);
      WallTimer wall;
      std::vector<std::thread> threads;
      threads.reserve(connections);
      for (uint32_t c = 0; c < connections; ++c) {
        threads.emplace_back(RunNetConnection, host, port,
                             std::cref(streams[c]), rate_per_conn, depth,
                             &outcomes[c]);
      }
      for (std::thread& t : threads) t.join();
      const double wall_s = wall.ElapsedSeconds();

      uint64_t ok = 0, rejected = 0, errors = 0;
      LatencyHistogram latency;
      std::string failure;
      for (const ConnOutcome& outcome : outcomes) {
        ok += outcome.ok;
        rejected += outcome.rejected;
        errors += outcome.errors;
        latency.Merge(outcome.latency);
        if (failure.empty()) failure = outcome.failure;
      }
      if (!first_cell) cells << ",";
      first_cell = false;
      const uint64_t answered = ok + rejected + errors;
      cells << "{\"connections\":" << connections << ",\"pipeline\":" << depth
            << ",\"requests\":" << uint64_t{per_conn} * connections
            << ",\"offered_qps\":" << opt.rate << ",\"wall_s\":" << wall_s
            << ",\"achieved_qps\":" << (wall_s > 0 ? answered / wall_s : 0)
            << ",\"ok\":" << ok << ",\"rejected\":" << rejected
            << ",\"errors\":" << errors
            << ",\"latency\":" << latency.SummaryJson() << ",\"failure\":\""
            << failure << "\"}";
    }
  }
  cells << "]";

  std::ostringstream os;
  os << "{\"machine\":" << MachineMetaJson("network_serving")
     << ",\"bench\":\"network_serving\",\"transport\":\""
     << (opt.connect.empty() ? "self-hosted" : opt.connect)
     << "\",\"workload\":{\"graph\":\"" << workload.name
     << "\",\"pool\":" << opt.pool << ",\"zipf_s\":" << opt.zipf_s
     << ",\"seq_len\":3,\"k\":4,\"requests_per_cell\":" << opt.requests
     << ",\"offered_qps_per_cell\":" << opt.rate << "},\"cells\":" << cells.str();
  if (server != nullptr) {
    // Server-side totals across the sweep (frames, bytes, rejects) — read
    // before Shutdown(), which detaches the net-gauge provider.
    os << ",\"service_metrics\":" << service->MetricsJson();
    server->Shutdown();
  }
  os << "}";
  std::printf("%s\n", os.str().c_str());
  return 0;
}

int Main(int argc, char** argv) {
  Options opt = ParseOptions(argc, argv);
  if (opt.net) return NetMain(opt);

  // CAL-analog grid workload; pool of distinct queries replayed with
  // Zipf-skewed popularity (popular queries repeat -> cacheable traffic).
  Workload workload = MakeGridWorkload("CAL", 64, 48, opt.seed + 100);
  std::vector<KosrQuery> pool =
      MakeQueries(workload, /*seq_len=*/3, /*k=*/4, opt.pool, opt.seed + 1);

  std::mt19937_64 rng(opt.seed);
  ZipfSampler sampler(opt.pool, opt.zipf_s);
  std::uniform_real_distribution<double> method_pick(0.0, 1.0);
  std::vector<ServiceRequest> stream;
  stream.reserve(opt.requests);
  for (uint32_t i = 0; i < opt.requests; ++i) {
    ServiceRequest request;
    request.query = pool[sampler.Sample(rng)];
    // 80/20 StarKOSR/PruningKOSR mix, both over hop labels.
    request.options.algorithm = method_pick(rng) < 0.8 ? Algorithm::kStar
                                                       : Algorithm::kPruning;
    stream.push_back(std::move(request));
  }

  // Edge pool for the mixed-phase writer, captured before the engine moves
  // into the service.
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges =
      workload.engine->graph().ToEdges();

  ServiceConfig config;
  config.num_workers = opt.workers;
  config.queue_capacity = opt.queue_capacity;
  config.cache_capacity = opt.cache_capacity;
  config.update_batch_window_s = opt.update_batch_window_s;

  PhaseReport cold;
  PhaseReport warm;
  PhaseReport mixed;
  UpdaterReport updater;
  std::string cold_metrics;
  std::string warm_metrics;
  std::string mixed_metrics = "{}";
  uint32_t resolved_workers = 0;
  {
    KosrService service(std::move(*workload.engine), config);
    resolved_workers = service.num_workers();

    cold = RunPhase(service, stream, opt.rate);
    cold_metrics = service.MetricsJson();
    service.ResetMetrics();  // Phase boundary: keep the warm snapshot pure.
    warm = RunPhase(service, stream, opt.rate);
    warm_metrics = service.MetricsJson();

    // Mixed phase: the same query stream replays while one writer thread
    // re-randomizes edge weights at --update-rate. Query tail latency here
    // is the ISSUE 8 acceptance metric (p99 under a continuous update
    // stream).
    if (opt.update_rate > 0 && !edges.empty()) {
      service.ResetMetrics();
      std::atomic<bool> stop_updater{false};
      std::thread writer([&] {
        updater = RunUpdater(service, edges, opt.update_rate, opt.seed + 9,
                             stop_updater);
      });
      mixed = RunPhase(service, stream, opt.rate);
      stop_updater.store(true, std::memory_order_relaxed);
      writer.join();
      mixed_metrics = service.MetricsJson();
    }
  }  // Baseline service torn down before the journaled one starts.

  // Journal-overhead phase (ISSUE 9): the same mixed workload against a
  // fresh, write-ahead-journaled service over an identically rebuilt
  // engine. Every accepted update now pays append (+ fsync under
  // --fsync-policy always) before it applies, so the delta between this
  // phase's update latency and the in-memory mixed phase above IS the
  // durability cost. Ends with one explicitly timed full checkpoint.
  std::string durability_json = "null";
  if (!opt.journal_dir.empty()) {
    Workload durable_workload =
        MakeGridWorkload("CAL", 64, 48, opt.seed + 100);
    std::filesystem::remove_all(opt.journal_dir);
    std::filesystem::create_directories(opt.journal_dir);
    service::DurabilityAttachment attachment;
    attachment.journal = std::make_unique<durability::UpdateJournal>(
        opt.journal_dir, *durability::ParseFsyncPolicy(opt.fsync_policy),
        /*interval_s=*/0.05, /*base_seq=*/0);
    attachment.dir = opt.journal_dir;
    attachment.checkpoint_bytes = opt.checkpoint_bytes;
    KosrService durable(std::move(*durable_workload.engine), config,
                        std::move(attachment));

    PhaseReport durable_phase;
    UpdaterReport durable_updater;
    if (opt.update_rate > 0 && !edges.empty()) {
      std::atomic<bool> stop_updater{false};
      std::thread writer([&] {
        durable_updater = RunUpdater(durable, edges, opt.update_rate,
                                     opt.seed + 9, stop_updater);
      });
      durable_phase = RunPhase(durable, stream, opt.rate);
      stop_updater.store(true, std::memory_order_relaxed);
      writer.join();
    } else {
      durable_phase = RunPhase(durable, stream, opt.rate);
    }
    WallTimer checkpoint_timer;
    service::CheckpointAck ack = durable.Checkpoint();
    double checkpoint_s = checkpoint_timer.ElapsedSeconds();

    // Journaled-over-in-memory update latency ratio; only meaningful when
    // both phases actually ran the writer.
    double overhead_p50 = 0;
    if (updater.updates_applied > 0 && durable_updater.updates_applied > 0 &&
        updater.latency.P50Millis() > 0) {
      overhead_p50 =
          durable_updater.latency.P50Millis() / updater.latency.P50Millis();
    }

    std::ostringstream ds;
    ds << "{\"journal_dir\":\"" << opt.journal_dir << "\",\"fsync_policy\":\""
       << opt.fsync_policy << "\",\"checkpoint_bytes\":" << opt.checkpoint_bytes
       << ",\"phase\":" << durable_phase.ToJson()
       << ",\"updater\":" << durable_updater.ToJson()
       << ",\"update_latency_p50_ratio_vs_memory\":" << overhead_p50
       << ",\"final_checkpoint\":{\"written\":"
       << (ack.written ? "true" : "false") << ",\"seq\":" << ack.seq
       << ",\"wall_s\":" << checkpoint_s
       // Journal counters (appends/fsyncs/bytes/truncations) ride in the
       // service metrics' "durability" block.
       << "},\"service_metrics\":" << durable.MetricsJson() << "}";
    durability_json = ds.str();
  }

  std::ostringstream os;
  os << "{\"machine\":" << MachineMetaJson("service_throughput")
     << ",\"bench\":\"service_throughput\",\"workload\":{\"graph\":\""
     << workload.name << "\",\"pool\":" << opt.pool
     << ",\"zipf_s\":" << opt.zipf_s << ",\"seq_len\":3,\"k\":4"
     << ",\"requests_per_phase\":" << opt.requests
     << ",\"offered_qps\":" << opt.rate
     << ",\"update_rate\":" << opt.update_rate
     << ",\"update_batch_window_s\":" << opt.update_batch_window_s
     << "},\"service\":{\"workers\":"
     << resolved_workers << ",\"queue_capacity\":" << opt.queue_capacity
     << ",\"cache_capacity\":" << opt.cache_capacity
     << "},\"phases\":{\"cold\":" << cold.ToJson()
     << ",\"warm\":" << warm.ToJson() << ",\"mixed\":" << mixed.ToJson()
     << ",\"mixed_updater\":" << updater.ToJson()
     // Server-side view per phase (cache counters are cumulative — the
     // cache itself is deliberately not reset at the boundary).
     << "},\"service_metrics\":{\"cold\":" << cold_metrics
     << ",\"warm\":" << warm_metrics << ",\"mixed\":" << mixed_metrics
     << "},\"durability\":" << durability_json << "}";
  std::printf("%s\n", os.str().c_str());
  return 0;
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) { return kosr::bench::Main(argc, argv); }
