// Figure 3(f) and 3(g): effect of the category-sequence length |C| in
// {2, 4, 6, 8, 10} on the FLA and CAL analogs (k = 30). The paper's shape:
// KPNE's search space grows exponentially with |C| and hits INF early; PK
// and SK grow polynomially, with SK growing the slowest.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

const uint32_t kLens[] = {2, 4, 6, 8, 10};

CellTable& FlaTable() {
  static CellTable t("Figure 3(f): effect of |C| on FLA",
                     "k=30; rows are |C| values, columns are methods");
  return t;
}
CellTable& CalTable() {
  static CellTable t("Figure 3(g): effect of |C| on CAL",
                     "k=30; rows are |C| values, columns are methods");
  return t;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  struct Target {
    Workload workload;
    CellTable* table;
  };
  std::vector<Target> targets;
  targets.push_back({MakeFlaWorkload(), &FlaTable()});
  targets.push_back({MakeCalWorkload(), &CalTable()});
  for (const Target& target : targets) {
    std::optional<ScopedDiskStore> store;
    for (uint32_t len : kLens) {
      auto queries = MakeQueries(target.workload, len, 30, QueriesPerPoint(),
                                 target.workload.seed + len * 31);
      for (const MethodSpec& m : PaperMethods()) {
        const DiskLabelStore* disk = nullptr;
        if (m.disk) {
          if (!store.has_value()) store.emplace(target.workload);
          disk = &store->get();
        }
        target.table->Record("|C|=" + std::to_string(len), m.name,
                             RunMethodCell(target.workload, queries, m, false,
                                           disk));
      }
    }
  }
}

void BM_Cell(benchmark::State& state, std::string graph, uint32_t len,
             std::string method) {
  RunAll();
  CellTable& table = graph == "FLA" ? FlaTable() : CalTable();
  const CellResult* cell = table.Find("|C|=" + std::to_string(len), method);
  for (auto _ : state) {
  }
  if (cell != nullptr && !cell->inf) {
    state.SetIterationTime(cell->avg_ms / 1e3);
    state.counters["examined"] = cell->avg_examined;
    state.counters["nn_queries"] = cell->avg_nn_queries;
  } else {
    state.SetIterationTime(PerQueryBudgetSeconds());
    state.counters["INF"] = 1;
  }
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("fig3_seqlen");
  benchmark::Initialize(&argc, argv);
  for (const char* g : {"FLA", "CAL"}) {
    for (uint32_t len : kosr::bench::kLens) {
      for (const auto& m : kosr::bench::PaperMethods()) {
        benchmark::RegisterBenchmark(
            (std::string("fig3_seqlen/") + g + "/C=" + std::to_string(len) +
             "/" + m.name)
                .c_str(),
            kosr::bench::BM_Cell, g, len, m.name)
            ->Iterations(1)
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  using CT = kosr::bench::CellTable;
  kosr::bench::FlaTable().Print(CT::Metric::kTimeMs, "query time (ms)");
  kosr::bench::CalTable().Print(CT::Metric::kTimeMs, "query time (ms)");
  return 0;
}
