#ifndef KOSR_BENCH_BENCH_COMMON_H_
#define KOSR_BENCH_BENCH_COMMON_H_

// Shared workload construction and measurement harness for the per-figure /
// per-table bench binaries. Scaled-down analogs of the paper's five graphs
// (see DESIGN.md, "Substitutions"): grid road networks with asymmetric
// perturbed weights stand in for CAL/NYC/COL/FLA, a unit-weight small-world
// graph stands in for G+.
//
// Environment knobs:
//   KOSR_BENCH_QUERIES   queries per sweep point (default 20; paper uses 50)
//   KOSR_BENCH_BUDGET_S  per-query time budget in seconds (default 3;
//                        exceeding it marks the configuration INF, the
//                        paper's convention for >3600 s)
//   KOSR_BENCH_SCALE     workload scale multiplier (default 1.0; 0.5 for a
//                        quick smoke run)

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include <sstream>
#include <thread>

#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/graph/generators.h"
#include "src/labeling/disk_store.h"
#include "src/util/parallel.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace kosr::bench {

// Env knobs parse with strtoul/strtod rather than atoi/atof (cert-err34-c:
// the ato* family has no error reporting and undefined behavior on
// out-of-range input); a value that does not parse falls back to the
// default instead of silently becoming 0.

inline uint32_t EnvOrDefault(const char* name, uint32_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  unsigned long value = std::strtoul(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' ||
      value > std::numeric_limits<uint32_t>::max()) {
    return fallback;
  }
  return static_cast<uint32_t>(value);
}

inline double EnvOrDefault(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(env, &end);
  if (errno != 0 || end == env || *end != '\0') return fallback;
  return value;
}

inline uint32_t QueriesPerPoint() {
  return EnvOrDefault("KOSR_BENCH_QUERIES", uint32_t{20});
}

inline double PerQueryBudgetSeconds() {
  return EnvOrDefault("KOSR_BENCH_BUDGET_S", 3.0);
}

inline double WorkloadScale() {
  return EnvOrDefault("KOSR_BENCH_SCALE", 1.0);
}

/// Machine + knob block for BENCH_*.json `meta` sections. Every bench
/// prints this so a recording is self-identifying — in particular the
/// detected core count: BENCH_parallel_build.json was recorded on a
/// single-core container and only a caveat note said so after the fact.
inline std::string MachineMetaJson(const char* bench_name) {
  std::ostringstream os;
  os << "{\"bench\":\"" << bench_name
     << "\",\"hardware_concurrency\":" << std::thread::hardware_concurrency()
     << ",\"resolved_default_threads\":" << ResolveThreadCount(0)
     << ",\"scale\":" << WorkloadScale()
     << ",\"queries_per_point\":" << QueriesPerPoint()
     << ",\"budget_s\":" << PerQueryBudgetSeconds() << "}";
  return os.str();
}

/// Prints the machine meta as the first output line (benches that emit
/// their own JSON document embed MachineMetaJson() instead).
inline void PrintMachineMeta(const char* bench_name) {
  std::printf("machine_meta %s\n", MachineMetaJson(bench_name).c_str());
}

/// One benchmark graph with built indexes (unless constructed with
/// build_indexes = false — the preprocessing thread-sweep rebuilds the same
/// workload at several thread counts and wants the raw materials only).
struct Workload {
  std::string name;
  std::unique_ptr<KosrEngine> engine;
  uint64_t seed = 0;
  /// Hub order the workload indexes with (empty = degree order).
  std::vector<VertexId> order;

  void BuildIndexes(uint32_t num_threads = 1) const {
    if (order.empty()) {
      engine->BuildIndexes(num_threads);
    } else {
      engine->BuildIndexes(order, num_threads);
    }
  }
};

/// Grid road-network workload with uniform categories of size
/// `category_size` (the paper's |Ci|), indexed with the dissection order.
inline Workload MakeGridWorkload(const std::string& name, uint32_t side,
                                 uint32_t category_size, uint64_t seed,
                                 bool build_indexes = true) {
  double scale = std::sqrt(WorkloadScale());
  side = std::max<uint32_t>(16, static_cast<uint32_t>(side * scale));
  category_size = std::max<uint32_t>(
      4, static_cast<uint32_t>(category_size * WorkloadScale()));
  Workload w;
  w.name = name;
  w.seed = seed;
  Graph graph =
      MakeGridRoadNetwork(side, side, seed, 10, 100, /*highway_fraction=*/0);
  CategoryTable cats =
      CategoryTable::Uniform(graph.num_vertices(), category_size, seed + 1);
  w.engine = std::make_unique<KosrEngine>(std::move(graph), std::move(cats));
  w.order = GridDissectionOrder(side, side);
  if (build_indexes) w.BuildIndexes();
  return w;
}

/// Same, but with a Zipfian category-size distribution (Figure 6).
inline Workload MakeZipfGridWorkload(const std::string& name, uint32_t side,
                                     uint32_t num_categories, double f,
                                     uint64_t seed) {
  double scale = std::sqrt(WorkloadScale());
  side = std::max<uint32_t>(16, static_cast<uint32_t>(side * scale));
  Workload w;
  w.name = name;
  w.seed = seed;
  Graph graph =
      MakeGridRoadNetwork(side, side, seed, 10, 100, /*highway_fraction=*/0);
  CategoryTable cats = CategoryTable::Zipfian(graph.num_vertices(),
                                              num_categories, f, seed + 1);
  w.engine = std::make_unique<KosrEngine>(std::move(graph), std::move(cats));
  w.order = GridDissectionOrder(side, side);
  w.BuildIndexes();
  return w;
}

/// Small-world workload (G+ analog): unit weights, tiny diameter.
inline Workload MakeSmallWorldWorkload(const std::string& name, uint32_t n,
                                       double chords_per_vertex,
                                       uint32_t category_size, uint64_t seed,
                                       bool build_indexes = true) {
  n = std::max<uint32_t>(200, static_cast<uint32_t>(n * WorkloadScale()));
  category_size = std::max<uint32_t>(
      4, static_cast<uint32_t>(category_size * WorkloadScale()));
  Workload w;
  w.name = name;
  w.seed = seed;
  Graph graph = MakeSmallWorld(n, 2, chords_per_vertex, seed);
  CategoryTable cats =
      CategoryTable::Uniform(graph.num_vertices(), category_size, seed + 1);
  w.engine = std::make_unique<KosrEngine>(std::move(graph), std::move(cats));
  if (build_indexes) w.BuildIndexes();
  return w;
}

/// The paper's five graphs, scaled (Table VII analogs). |Ci| is ~1% of |V|,
/// mirroring the relative category density of the paper's defaults.
inline std::vector<Workload> MakeAllGraphWorkloads() {
  std::vector<Workload> w;
  w.push_back(MakeGridWorkload("CAL", 64, 48, 101));
  w.push_back(MakeGridWorkload("NYC", 96, 92, 102));
  w.push_back(MakeGridWorkload("COL", 128, 160, 103));
  w.push_back(MakeGridWorkload("FLA", 160, 256, 104));
  w.push_back(MakeSmallWorldWorkload("G+", 3000, 6.0, 48, 105));
  return w;
}

/// FLA / CAL analogs only (parameter-sweep figures).
inline Workload MakeFlaWorkload(uint32_t category_size = 256) {
  return MakeGridWorkload("FLA", 160, category_size, 104);
}
inline Workload MakeCalWorkload() { return MakeGridWorkload("CAL", 64, 48, 101); }

/// Deterministic random query batch.
inline std::vector<KosrQuery> MakeQueries(const Workload& w, uint32_t seq_len,
                                          uint32_t k, uint32_t count,
                                          uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto& cats = w.engine->categories();
  std::uniform_int_distribution<VertexId> pick(
      0, w.engine->graph().num_vertices() - 1);
  std::vector<KosrQuery> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    KosrQuery q;
    q.source = pick(rng);
    q.target = pick(rng);
    q.sequence = RandomCategorySequence(cats, seq_len, rng);
    q.k = k;
    queries.push_back(std::move(q));
  }
  return queries;
}

/// One evaluated method (the paper's seven, Sec. V-A "Methods").
struct MethodSpec {
  const char* name;
  Algorithm algorithm;
  NnMode nn_mode;
  bool disk = false;
};

inline const std::vector<MethodSpec>& PaperMethods() {
  static const std::vector<MethodSpec> methods = {
      {"KPNE-Dij", Algorithm::kKpne, NnMode::kDijkstra},
      {"PK-Dij", Algorithm::kPruning, NnMode::kDijkstra},
      {"SK-Dij", Algorithm::kStar, NnMode::kDijkstra},
      {"KPNE", Algorithm::kKpne, NnMode::kHopLabel},
      {"PK", Algorithm::kPruning, NnMode::kHopLabel},
      {"SK", Algorithm::kStar, NnMode::kHopLabel},
      {"SK-DB", Algorithm::kStar, NnMode::kHopLabel, /*disk=*/true},
  };
  return methods;
}

/// Aggregated outcome of one (workload, method, query batch) cell.
struct CellResult {
  double avg_ms = 0;
  double avg_examined = 0;
  double avg_nn_queries = 0;
  QueryStats accumulated;
  /// Per-query latency distribution — tail percentiles, not just the mean
  /// (see LatencyHistogram; the serving-layer metrics use the same type).
  LatencyHistogram latency;
  uint32_t queries_run = 0;
  bool inf = false;  ///< Budget exceeded — the paper prints INF.

  std::string TimeString() const {
    if (inf) return "INF";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f", avg_ms);
    return buffer;
  }
  /// "p50/p95/p99 ms" cell, e.g. "1.21/3.02/3.44".
  std::string PercentileString() const {
    if (inf) return "INF";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.2f/%.2f/%.2f",
                  latency.P50Millis(), latency.P95Millis(),
                  latency.P99Millis());
    return buffer;
  }
  std::string CountString(double value) const {
    if (inf) return "INF";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
};

/// Runs a method over a query batch. Marks the cell INF and stops early as
/// soon as one query exceeds the per-query budget (the paper's 3600 s rule,
/// scaled down).
inline CellResult RunMethodCell(const Workload& w,
                                const std::vector<KosrQuery>& queries,
                                const MethodSpec& method,
                                bool collect_phase_times = false,
                                const DiskLabelStore* store = nullptr) {
  CellResult cell;
  KosrOptions options;
  options.algorithm = method.algorithm;
  options.nn_mode = method.nn_mode;
  options.time_budget_s = PerQueryBudgetSeconds();
  options.collect_phase_times = collect_phase_times;
  double total_ms = 0;
  QueryContext ctx;  // reused across the batch, like a service worker
  for (const KosrQuery& q : queries) {
    KosrResult result;
    if (method.disk) {
      if (store == nullptr) {
        cell.inf = true;  // no store provided: cannot run
        break;
      }
      result = KosrEngine::QueryFromDisk(*store, q, options);
    } else {
      result = w.engine->Query(q, options, &ctx);
    }
    if (result.stats.timed_out) {
      cell.inf = true;
      break;
    }
    total_ms += result.stats.total_time_s * 1e3;
    cell.accumulated.Accumulate(result.stats);
    cell.latency.Record(result.stats.total_time_s);
    ++cell.queries_run;
  }
  if (!cell.inf && cell.queries_run > 0) {
    cell.avg_ms = total_ms / cell.queries_run;
    cell.avg_examined =
        static_cast<double>(cell.accumulated.examined_routes) / cell.queries_run;
    cell.avg_nn_queries =
        static_cast<double>(cell.accumulated.nn_queries) / cell.queries_run;
  }
  return cell;
}

/// Writes the workload's disk store into a temp directory (SK-DB) and opens
/// it. Returns nullopt on failure.
class ScopedDiskStore {
 public:
  explicit ScopedDiskStore(const Workload& w) {
    dir_ = std::filesystem::temp_directory_path() /
           ("kosr_bench_store_" + w.name + "_" + std::to_string(::getpid()));
    w.engine->WriteDiskStore(dir_.string());
    store_ = std::make_unique<DiskLabelStore>(dir_.string());
  }
  ~ScopedDiskStore() { std::filesystem::remove_all(dir_); }
  const DiskLabelStore& get() const { return *store_; }

 private:
  std::filesystem::path dir_;
  std::unique_ptr<DiskLabelStore> store_;
};

// ---------------------------------------------------------------------------
// Paper-style table printing.
// ---------------------------------------------------------------------------

inline void PrintHeader(const char* title, const char* detail) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", title, detail);
  std::printf("================================================================\n");
}

inline void PrintRowHeader(const char* axis,
                           const std::vector<std::string>& columns) {
  std::printf("%-12s", axis);
  for (const auto& c : columns) std::printf(" %12s", c.c_str());
  std::printf("\n");
}

inline void PrintRow(const std::string& label,
                     const std::vector<std::string>& cells) {
  std::printf("%-12s", label.c_str());
  for (const auto& c : cells) std::printf(" %12s", c.c_str());
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// google-benchmark integration: each (row, column) cell of a paper artifact
// runs as one registered benchmark (single iteration, manual time = average
// query latency, counters = the paper's other evaluation criteria), and the
// collected cells are printed as a paper-shaped table at exit.
// ---------------------------------------------------------------------------

struct TableCell {
  std::string row;
  std::string column;
  CellResult result;
};

class CellTable {
 public:
  explicit CellTable(std::string title, std::string detail)
      : title_(std::move(title)), detail_(std::move(detail)) {}

  void Record(const std::string& row, const std::string& column,
              CellResult result) {
    cells_.push_back({row, column, std::move(result)});
    if (std::find(rows_.begin(), rows_.end(), row) == rows_.end()) {
      rows_.push_back(row);
    }
    if (std::find(columns_.begin(), columns_.end(), column) ==
        columns_.end()) {
      columns_.push_back(column);
    }
  }

  const CellResult* Find(const std::string& row,
                         const std::string& column) const {
    for (const auto& c : cells_) {
      if (c.row == row && c.column == column) return &c.result;
    }
    return nullptr;
  }

  enum class Metric { kTimeMs, kExamined, kNnQueries, kPercentiles };

  void Print(Metric metric, const char* metric_name) const {
    PrintHeader(title_.c_str(),
                (detail_ + std::string(" — ") + metric_name).c_str());
    PrintRowHeader("", columns_);
    for (const auto& row : rows_) {
      std::vector<std::string> cells;
      for (const auto& column : columns_) {
        const CellResult* r = Find(row, column);
        if (r == nullptr) {
          cells.push_back("-");
        } else if (metric == Metric::kTimeMs) {
          cells.push_back(r->TimeString());
        } else if (metric == Metric::kExamined) {
          cells.push_back(r->CountString(r->avg_examined));
        } else if (metric == Metric::kNnQueries) {
          cells.push_back(r->CountString(r->avg_nn_queries));
        } else {
          cells.push_back(r->PercentileString());
        }
      }
      PrintRow(row, cells);
    }
  }

 private:
  std::string title_;
  std::string detail_;
  std::vector<TableCell> cells_;
  std::vector<std::string> rows_;
  std::vector<std::string> columns_;
};

}  // namespace kosr::bench

#endif  // KOSR_BENCH_BENCH_COMMON_H_
