// Dynamic-update repair benchmark (ISSUE 5): measures the per-update
// latency of the canonical incremental label repair — weight decreases,
// weight increases, and edge deletions/re-insertions, at small and large
// magnitudes — against the only alternative a pre-ISSUE-5 engine had for
// increases and deletions: a full index rebuild. Updates run through the
// engine entry points (SetEdgeWeight / RemoveEdge / AddOrDecreaseEdge), so
// the timings include the incremental inverted-index patching and the
// flat-store re-seals, exactly what a serving process pays per update.
//
// Standalone binary (no google-benchmark dependency): each update is one
// timed event, not an iterated steady-state measurement — repairing the
// same arc twice is a no-op, so updates cannot be re-run for averaging.
//
// Emits a JSON report (stdout) with the standard machine_meta block, the
// full-rebuild baseline, and per-scenario mean/p50/p95/p99 repair times,
// average repaired-label counts, the fraction of updates whose repair was
// certified empty, and the speedup over a rebuild.
//
// Flags (all optional):
//   --side N      grid side length        (default 48, scaled by
//                 KOSR_BENCH_SCALE like every other bench)
//   --updates N   updates per scenario    (default 60 * KOSR_BENCH_SCALE)
//   --seed X      workload + pick seed    (default 9)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/counters.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace kosr::bench {
namespace {

struct Options {
  uint32_t side = 48;
  uint32_t updates = 0;
  uint64_t seed = 9;
};

Options ParseOptions(int argc, char** argv) {
  Options opt;
  opt.updates = std::max(10u, static_cast<uint32_t>(60 * WorkloadScale()));
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    long long value = std::atoll(argv[i + 1]);
    if (value <= 0) {
      std::fprintf(stderr, "%s wants a positive integer\n", flag.c_str());
      std::exit(1);
    }
    if (flag == "--side") {
      opt.side = static_cast<uint32_t>(value);
    } else if (flag == "--updates") {
      opt.updates = static_cast<uint32_t>(value);
    } else if (flag == "--seed") {
      opt.seed = static_cast<uint64_t>(value);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(1);
    }
  }
  return opt;
}

struct ScenarioResult {
  std::string name;
  LatencyHistogram latency;
  uint64_t label_vectors_changed = 0;
  uint32_t empty_repairs = 0;  ///< Updates whose repair was certified empty.
  uint32_t applied = 0;
  /// Engine counter delta across the scenario (repair tightness tests,
  /// phase-3 re-searches, relaxations) — the work behind the latencies.
  obs::EngineCounters counters;
};

ScenarioResult RunScenario(KosrEngine& engine, const char* name,
                           uint32_t updates, std::mt19937_64& rng,
                           const std::function<EdgeUpdateSummary(
                               KosrEngine&, VertexId, VertexId, Weight)>& op) {
  ScenarioResult result;
  result.name = name;
  const obs::EngineCounters before = obs::TlsCounters();
  // One edge-list materialization per scenario; picks are consumed (and
  // entries the scenario itself staled are discarded on contact), so each
  // scenario updates distinct arcs and the pool drains instead of looping.
  auto pool = engine.graph().ToEdges();
  while (result.applied < updates) {
    if (pool.empty()) {
      std::fprintf(stderr,
                   "%s: ran out of distinct arcs after %u updates (asked "
                   "%u)\n",
                   name, result.applied, updates);
      break;
    }
    size_t pick = rng() % pool.size();
    auto [u, v, w] = pool[pick];
    pool[pick] = pool.back();
    pool.pop_back();
    // Skip entries no longer at their effective minimum weight (heavier
    // parallels, or arcs an earlier update of this scenario changed).
    if (static_cast<Cost>(w) != engine.graph().ArcWeight(u, v)) continue;
    WallTimer timer;
    EdgeUpdateSummary summary = op(engine, u, v, w);
    result.latency.Record(timer.ElapsedSeconds());
    result.label_vectors_changed +=
        summary.changed_in_labels + summary.changed_out_labels;
    if (!summary.labels_changed) ++result.empty_repairs;
    ++result.applied;
  }
  result.counters = obs::Diff(obs::TlsCounters(), before);
  return result;
}

int Run(int argc, char** argv) {
  Options opt = ParseOptions(argc, argv);
  Workload workload = MakeGridWorkload("GRID", opt.side, 32, opt.seed);
  KosrEngine& engine = *workload.engine;
  const double rebuild_s =
      engine.label_build_seconds() + engine.inverted_build_seconds();

  std::mt19937_64 rng(opt.seed * 0x9e3779b97f4a7c15ull);
  std::vector<ScenarioResult> results;

  // Decreases: shave 10% (small) and 75% (large) off an existing arc.
  results.push_back(RunScenario(
      engine, "decrease_small", opt.updates, rng,
      [](KosrEngine& e, VertexId u, VertexId v, Weight w) {
        return e.AddOrDecreaseEdge(u, v, std::max<Weight>(1, w - w / 10 - 1));
      }));
  results.push_back(RunScenario(
      engine, "decrease_large", opt.updates, rng,
      [](KosrEngine& e, VertexId u, VertexId v, Weight w) {
        return e.AddOrDecreaseEdge(u, v, std::max<Weight>(1, w / 4));
      }));
  // Increases: +10% (small) and x4 (large).
  results.push_back(RunScenario(
      engine, "increase_small", opt.updates, rng,
      [](KosrEngine& e, VertexId u, VertexId v, Weight w) {
        return e.SetEdgeWeight(u, v, w + w / 10 + 1);
      }));
  results.push_back(RunScenario(
      engine, "increase_large", opt.updates, rng,
      [](KosrEngine& e, VertexId u, VertexId v, Weight w) {
        return e.SetEdgeWeight(u, v, w * 4);
      }));
  // Deletions, then re-insertions of the deleted arcs at their old weight
  // (the insert path of the decrease repair).
  std::vector<std::tuple<VertexId, VertexId, Weight>> removed;
  results.push_back(RunScenario(
      engine, "remove", opt.updates, rng,
      [&removed](KosrEngine& e, VertexId u, VertexId v, Weight w) {
        removed.emplace_back(u, v, w);
        return e.RemoveEdge(u, v);
      }));
  {
    ScenarioResult reinsert;
    reinsert.name = "reinsert";
    const obs::EngineCounters before = obs::TlsCounters();
    for (auto [u, v, w] : removed) {
      WallTimer timer;
      EdgeUpdateSummary summary = engine.AddOrDecreaseEdge(u, v, w);
      reinsert.latency.Record(timer.ElapsedSeconds());
      reinsert.label_vectors_changed +=
          summary.changed_in_labels + summary.changed_out_labels;
      if (!summary.labels_changed) ++reinsert.empty_repairs;
      ++reinsert.applied;
    }
    reinsert.counters = obs::Diff(obs::TlsCounters(), before);
    results.push_back(std::move(reinsert));
  }

  std::printf("{\n  \"meta\": %s,\n", MachineMetaJson("dynamic_updates").c_str());
  std::printf("  \"graph\": {\"vertices\": %u, \"arcs\": %llu},\n",
              engine.graph().num_vertices(),
              static_cast<unsigned long long>(engine.graph().num_edges()));
  std::printf("  \"full_rebuild_ms\": %.3f,\n", rebuild_s * 1e3);
  std::printf("  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    double mean_ms = r.latency.MeanSeconds() * 1e3;
    std::printf(
        "    {\"update\": \"%s\", \"updates\": %u, \"mean_ms\": %.4f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"avg_label_vectors_repaired\": %.2f, \"empty_repair_fraction\": "
        "%.3f, \"speedup_vs_rebuild\": %.1f, "
        "\"repair_tightness_tests\": %llu, \"repair_researches\": %llu, "
        "\"pruned_relaxations\": %llu}%s\n",
        r.name.c_str(), r.applied, mean_ms, r.latency.P50Millis(),
        r.latency.P95Millis(), r.latency.P99Millis(),
        r.applied == 0
            ? 0.0
            : static_cast<double>(r.label_vectors_changed) / r.applied,
        r.applied == 0 ? 0.0
                       : static_cast<double>(r.empty_repairs) / r.applied,
        mean_ms == 0 ? 0.0 : rebuild_s * 1e3 / mean_ms,
        static_cast<unsigned long long>(
            r.counters.Get(obs::Counter::kRepairTightnessTests)),
        static_cast<unsigned long long>(
            r.counters.Get(obs::Counter::kRepairResearches)),
        static_cast<unsigned long long>(
            r.counters.Get(obs::Counter::kPrunedRelaxations)),
        i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) { return kosr::bench::Run(argc, argv); }
