// Figure 5: the searching space of SK (StarKOSR) along the category
// sequence — average number of examined witnesses per category depth on each
// graph (defaults |C| = 6, k = 30). The paper's shape: one route at depth 0,
// a rise while the A* estimates are loose, then a sharp shrink as estimates
// tighten, ending with ~k routes at the destination depth.

#include <benchmark/benchmark.h>

#include <array>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

constexpr uint32_t kSeqLen = 6;
constexpr uint32_t kK = 30;

struct Series {
  std::string graph;
  std::vector<double> per_depth;  // avg examined per category index
};

std::vector<Series>& AllSeries() {
  static std::vector<Series> series;
  return series;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  auto workloads = MakeAllGraphWorkloads();
  MethodSpec sk{"SK", Algorithm::kStar, NnMode::kHopLabel};
  for (const Workload& w : workloads) {
    auto queries = MakeQueries(w, kSeqLen, kK, QueriesPerPoint(), w.seed + 5);
    CellResult cell = RunMethodCell(w, queries, sk);
    Series s;
    s.graph = w.name;
    for (size_t depth = 0; depth < cell.accumulated.examined_per_depth.size();
         ++depth) {
      s.per_depth.push_back(
          static_cast<double>(cell.accumulated.examined_per_depth[depth]) /
          std::max(1u, cell.queries_run));
    }
    AllSeries().push_back(std::move(s));
  }
}

void BM_Series(benchmark::State& state, std::string graph) {
  RunAll();
  for (auto _ : state) {
  }
  for (const Series& s : AllSeries()) {
    if (s.graph != graph) continue;
    for (size_t d = 0; d < s.per_depth.size(); ++d) {
      state.counters["depth_" + std::to_string(d)] = s.per_depth[d];
    }
  }
  state.SetIterationTime(1e-9);
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("fig5_searchspace");
  benchmark::Initialize(&argc, argv);
  for (const char* g : {"CAL", "NYC", "COL", "FLA", "G+"}) {
    benchmark::RegisterBenchmark((std::string("fig5/") + g).c_str(),
                                 kosr::bench::BM_Series, g)
        ->Iterations(1)
        ->UseManualTime();
  }
  benchmark::RunSpecifiedBenchmarks();

  kosr::bench::PrintHeader(
      "Figure 5: searching space of SK at each category depth",
      "avg # examined witnesses per depth (0 = source, 7 = destination); "
      "|C|=6, k=30");
  std::vector<std::string> columns;
  for (uint32_t d = 0; d <= kosr::bench::kSeqLen + 1; ++d) {
    columns.push_back("d=" + std::to_string(d));
  }
  kosr::bench::PrintRowHeader("graph", columns);
  for (const auto& s : kosr::bench::AllSeries()) {
    std::vector<std::string> cells;
    for (uint32_t d = 0; d <= kosr::bench::kSeqLen + 1; ++d) {
      char buffer[32];
      double v = d < s.per_depth.size() ? s.per_depth[d] : 0;
      std::snprintf(buffer, sizeof(buffer), "%.1f", v);
      cells.push_back(buffer);
    }
    kosr::bench::PrintRow(s.graph, cells);
  }
  return 0;
}
