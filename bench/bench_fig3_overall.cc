// Figure 3(a-c) of the paper: overall performance of all methods on all five
// graphs under default parameters (|C| = 6, k = 30, |Ci| ~ 1% of |V|).
// Reports the three evaluation criteria: average query time, number of
// examined routes, and number of NN queries. Budget-exceeded cells print as
// INF, matching the paper's 3600 s convention.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace kosr::bench {
namespace {

constexpr uint32_t kSeqLen = 6;
constexpr uint32_t kK = 30;

CellTable& Table() {
  static CellTable table(
      "Figure 3(a-c): overall performance on all graphs",
      "defaults |C|=6, k=30; columns are methods, rows are graphs");
  return table;
}

void RunAll() {
  static bool done = false;
  if (done) return;
  done = true;
  auto workloads = MakeAllGraphWorkloads();
  for (const Workload& w : workloads) {
    auto queries = MakeQueries(w, kSeqLen, kK, QueriesPerPoint(), w.seed + 7);
    std::optional<ScopedDiskStore> store;
    for (const MethodSpec& m : PaperMethods()) {
      const DiskLabelStore* disk = nullptr;
      if (m.disk) {
        if (!store.has_value()) store.emplace(w);
        disk = &store->get();
      }
      CellResult cell = RunMethodCell(w, queries, m, false, disk);
      Table().Record(w.name, m.name, cell);
    }
  }
}

void BM_Cell(benchmark::State& state, std::string graph, std::string method) {
  RunAll();
  const CellResult* cell = Table().Find(graph, method);
  for (auto _ : state) {
    // Work happened in RunAll; report its per-query average as manual time.
  }
  if (cell != nullptr && !cell->inf) {
    state.SetIterationTime(cell->avg_ms / 1e3);
    state.counters["examined"] = cell->avg_examined;
    state.counters["nn_queries"] = cell->avg_nn_queries;
  } else {
    state.SetIterationTime(PerQueryBudgetSeconds());
    state.counters["INF"] = 1;
  }
}

}  // namespace
}  // namespace kosr::bench

int main(int argc, char** argv) {
  kosr::bench::PrintMachineMeta("fig3_overall");
  benchmark::Initialize(&argc, argv);
  const char* graphs[] = {"CAL", "NYC", "COL", "FLA", "G+"};
  for (const char* g : graphs) {
    for (const auto& m : kosr::bench::PaperMethods()) {
      benchmark::RegisterBenchmark(
          (std::string("fig3/") + g + "/" + m.name).c_str(),
          kosr::bench::BM_Cell, g, m.name)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  using CT = kosr::bench::CellTable;
  kosr::bench::Table().Print(CT::Metric::kTimeMs, "Fig 3(a) query time (ms)");
  kosr::bench::Table().Print(CT::Metric::kExamined,
                             "Fig 3(b) # examined routes");
  kosr::bench::Table().Print(CT::Metric::kNnQueries,
                             "Fig 3(c) # NN queries");
  // Tail behavior per cell (not a paper artifact — the mean in Fig 3(a)
  // hides stragglers; the serving layer cares about the tail).
  kosr::bench::Table().Print(CT::Metric::kPercentiles,
                             "query time p50/p95/p99 (ms)");
  return 0;
}
