#include "src/labeling/compressed_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

TEST(VarintTest, RoundTripsBoundaryValues) {
  for (uint64_t value :
       {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
        uint64_t{16383}, uint64_t{16384}, uint64_t{UINT64_MAX / 2},
        uint64_t{UINT64_MAX}}) {
    std::vector<uint8_t> buffer;
    AppendVarint(buffer, value);
    size_t pos = 0;
    EXPECT_EQ(ReadVarint(buffer, pos), value);
    EXPECT_EQ(pos, buffer.size());
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<uint8_t> buffer;
  AppendVarint(buffer, 100);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(VarintTest, TruncationThrows) {
  std::vector<uint8_t> buffer;
  AppendVarint(buffer, 1u << 20);
  buffer.pop_back();
  size_t pos = 0;
  EXPECT_THROW(ReadVarint(buffer, pos), std::runtime_error);
}

TEST(LabelVectorCodecTest, RoundTrip) {
  std::vector<LabelEntry> labels = {
      {0, 0, kInvalidVertex}, {3, 17, 4}, {10, 250000, 0}, {4000000, 1, 99}};
  auto encoded = EncodeLabelVector(labels);
  auto decoded = DecodeLabelVector(encoded);
  ASSERT_EQ(decoded.size(), labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(decoded[i].hub_rank, labels[i].hub_rank);
    EXPECT_EQ(decoded[i].dist, labels[i].dist);
    EXPECT_EQ(decoded[i].parent, labels[i].parent);
  }
}

TEST(LabelVectorCodecTest, EmptyVector) {
  auto encoded = EncodeLabelVector({});
  EXPECT_EQ(DecodeLabelVector(encoded).size(), 0u);
}

TEST(LabelVectorCodecTest, TrailingBytesRejected) {
  std::vector<LabelEntry> labels = {{1, 2, 3}};
  auto encoded = EncodeLabelVector(labels);
  encoded.push_back(0);
  EXPECT_THROW(DecodeLabelVector(encoded), std::runtime_error);
}

TEST(CompressedLabelingTest, RoundTripPreservesAllQueries) {
  Graph g = MakeGridRoadNetwork(10, 10, /*seed=*/31);
  HubLabeling hl;
  hl.Build(g, GridDissectionOrder(10, 10));
  std::stringstream buffer;
  SerializeCompressed(hl, buffer);
  HubLabeling copy = DeserializeCompressed(buffer);
  for (VertexId s = 0; s < g.num_vertices(); s += 3) {
    for (VertexId t = 0; t < g.num_vertices(); t += 7) {
      EXPECT_EQ(copy.Query(s, t), hl.Query(s, t));
    }
  }
  // Path unpacking survives too (parents are preserved).
  auto path = copy.UnpackPath(0, 99);
  EXPECT_EQ(path, hl.UnpackPath(0, 99));
}

TEST(CompressedLabelingTest, CompressesMeaningfully) {
  Graph g = MakeGridRoadNetwork(24, 24, /*seed=*/32);
  HubLabeling hl;
  hl.Build(g, GridDissectionOrder(24, 24));
  uint64_t plain = hl.IndexBytes();
  uint64_t compressed = CompressedSizeBytes(hl);
  // Delta + varint coding must at least halve road-network labelings.
  EXPECT_LT(compressed, plain / 2);
}

TEST(CompressedLabelingTest, RejectsBadMagic) {
  std::stringstream buffer("definitely not a labeling blob");
  EXPECT_THROW(DeserializeCompressed(buffer), std::runtime_error);
}

TEST(CompressedLabelingTest, SizeAccountingMatchesStream) {
  auto inst = testing::MakeRandomInstance(40, 200, 3, 33);
  HubLabeling hl;
  hl.Build(inst.graph);
  std::stringstream buffer;
  SerializeCompressed(hl, buffer);
  EXPECT_EQ(static_cast<uint64_t>(buffer.str().size()),
            CompressedSizeBytes(hl));
}

}  // namespace
}  // namespace kosr
