// Epoch-based snapshot publication (ISSUE 8): readers never block on
// updates, every answer is consistent with the snapshot version it reports,
// batched updates coalesce into one repair + one publication, and the
// coalesced repair leaves labels byte-identical to a from-scratch rebuild.
// The build-tsan and build-asan CI jobs run this binary with real threads.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "src/service/protocol.h"
#include "src/service/service.h"
#include "tests/test_util.h"

namespace kosr::service {
namespace {

ServiceRequest MakeRequest(VertexId source, VertexId target,
                           CategorySequence sequence, uint32_t k = 1) {
  ServiceRequest request;
  request.query.source = source;
  request.query.target = target;
  request.query.sequence = std::move(sequence);
  request.query.k = k;
  return request;
}

/// Line graph 0 - 1 - 2 - 3 (unit weights, both directions), category 0 =
/// {3}, category 1 = {2}: hand-computable routes for the batching tests.
KosrEngine MakeLineEngine() {
  Graph graph = Graph::FromEdges(
      4, {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}, {2, 3, 1}, {3, 2, 1}});
  CategoryTable categories(4, 3);
  categories.Add(3, 0);
  categories.Add(2, 1);
  KosrEngine engine(std::move(graph), std::move(categories));
  engine.BuildIndexes();
  return engine;
}

// --- Satellite (c): writer vs readers under the sanitizers -----------------

// One writer swaps a snapshot mid-stream while reader threads hammer the
// service. Every response names the snapshot version it was computed
// against, and its routes must match an oracle engine frozen at exactly
// that version — a reader that observed half an update, or a cache entry
// that leaked across the invalidation, would mismatch. At quiescence every
// retired snapshot must have been reclaimed.
TEST(SnapshotStressTest, ConcurrentReadersMatchTheOracleOfTheirVersion) {
  auto inst = testing::MakeRandomInstance(60, 320, 4, 4242);
  KosrEngine pre(inst.graph, inst.categories);
  pre.BuildIndexes();
  KosrEngine post(inst.graph, inst.categories);
  post.BuildIndexes();
  // The update the writer will apply: a brand-new weight-1 shortcut.
  EdgeUpdateSummary summary = post.SetEdgeWeight(0, 59, 1);
  ASSERT_TRUE(summary.graph_changed);

  ServiceConfig config;
  config.num_workers = 4;
  KosrEngine served(inst.graph, inst.categories);
  served.BuildIndexes();
  KosrService service(std::move(served), config);

  std::map<uint64_t, const KosrEngine*> oracle = {{1, &pre}, {2, &post}};

  // Fixed request pool, generated up front so reader threads share no RNG.
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<VertexId> pick(0, 59);
  std::vector<ServiceRequest> pool;
  for (int i = 0; i < 24; ++i) {
    pool.push_back(MakeRequest(pick(rng), pick(rng),
                               RandomCategorySequence(pre.categories(), 2, rng),
                               2));
  }

  std::atomic<bool> failed{false};
  auto reader = [&](uint32_t offset) {
    for (int i = 0; i < 40 && !failed.load(); ++i) {
      const ServiceRequest& request = pool[(offset + i) % pool.size()];
      ServiceResponse response = service.Submit(request);
      if (!response.ok()) {
        failed.store(true);
        ADD_FAILURE() << response.error;
        return;
      }
      auto it = oracle.find(response.snapshot_version);
      if (it == oracle.end()) {
        failed.store(true);
        ADD_FAILURE() << "unknown snapshot version "
                      << response.snapshot_version;
        return;
      }
      KosrResult expected = it->second->Query(request.query, request.options);
      if (response.result.routes.size() != expected.routes.size()) {
        failed.store(true);
        ADD_FAILURE() << "route count diverged at version "
                      << response.snapshot_version;
        return;
      }
      for (size_t j = 0; j < expected.routes.size(); ++j) {
        if (response.result.routes[j].cost != expected.routes[j].cost) {
          failed.store(true);
          ADD_FAILURE() << "cost diverged at version "
                        << response.snapshot_version;
          return;
        }
      }
    }
  };

  std::vector<std::thread> readers;
  for (uint32_t t = 0; t < 3; ++t) readers.emplace_back(reader, t * 7);
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    UpdateAck ack = service.SetEdgeWeight(0, 59, 1);
    EXPECT_TRUE(ack.applied);
    EXPECT_EQ(ack.snapshot_version, 2u);
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  ASSERT_FALSE(failed.load());

  // Quiescence: queries landed on the new snapshot, readers unpinned, so
  // the metrics reclaim pass must bring the live-snapshot gauge back to 1.
  MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.snapshots.version, 2u);
  EXPECT_EQ(metrics.snapshots.live_snapshots, 1u);
  EXPECT_EQ(metrics.snapshots.updates_applied, 1u);
  EXPECT_EQ(metrics.snapshots.batches_applied, 1u);
  EXPECT_EQ(metrics.snapshots.pending_updates, 0u);
}

// --- Tentpole layer 3: the batch window ------------------------------------

TEST(SnapshotBatchTest, WindowBuffersUpdatesUntilFlush) {
  ServiceConfig config;
  config.num_workers = 1;
  config.update_batch_window_s = 3600;  // Nothing flushes by itself.
  KosrService service(MakeLineEngine(), config);

  ServiceRequest request = MakeRequest(0, 0, {0});
  EXPECT_EQ(service.Submit(request).result.routes[0].cost, 6);

  // Both updates buffer: acks report BUFFERED semantics and the snapshot
  // version stays at the initial seal.
  UpdateAck first = service.SetEdgeWeight(0, 3, 2);
  EXPECT_FALSE(first.applied);
  EXPECT_EQ(first.pending, 1u);
  EXPECT_EQ(first.snapshot_version, 1u);
  UpdateAck second = service.SetEdgeWeight(0, 3, 1);
  EXPECT_FALSE(second.applied);
  EXPECT_EQ(second.pending, 2u);
  EXPECT_EQ(second.snapshot_version, 1u);

  // Queries keep answering from the pre-update snapshot.
  ServiceResponse stale = service.Submit(request);
  EXPECT_EQ(stale.result.routes[0].cost, 6);
  EXPECT_EQ(stale.snapshot_version, 1u);
  MetricsSnapshot buffered = service.Metrics();
  EXPECT_EQ(buffered.snapshots.pending_updates, 2u);
  EXPECT_EQ(buffered.snapshots.batches_applied, 0u);

  // One flush applies both updates as one batch behind one publication.
  UpdateAck flushed = service.FlushUpdates();
  EXPECT_TRUE(flushed.applied);
  EXPECT_TRUE(flushed.summary.graph_changed);
  EXPECT_EQ(flushed.snapshot_version, 2u);
  ServiceResponse fresh = service.Submit(request);
  EXPECT_EQ(fresh.result.routes[0].cost, 4);  // 0 -> 3 -> 0 = 1 + 3.
  EXPECT_EQ(fresh.snapshot_version, 2u);
  MetricsSnapshot applied = service.Metrics();
  EXPECT_EQ(applied.snapshots.pending_updates, 0u);
  EXPECT_EQ(applied.snapshots.updates_applied, 2u);
  EXPECT_EQ(applied.snapshots.batches_applied, 1u);

  // Flushing with nothing buffered is a published no-op.
  UpdateAck noop = service.FlushUpdates();
  EXPECT_TRUE(noop.applied);
  EXPECT_FALSE(noop.summary.graph_changed);
  EXPECT_EQ(noop.snapshot_version, 2u);
}

TEST(SnapshotBatchTest, FlusherAppliesTheBatchAfterTheWindowCloses) {
  ServiceConfig config;
  config.num_workers = 1;
  config.update_batch_window_s = 0.02;
  KosrService service(MakeLineEngine(), config);

  UpdateAck ack = service.SetEdgeWeight(0, 3, 1);
  EXPECT_FALSE(ack.applied);

  // The flusher thread owns the apply; poll until it publishes.
  for (int i = 0; i < 500 && service.snapshot_version() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(service.snapshot_version(), 2u);
  EXPECT_EQ(service.Submit(MakeRequest(0, 0, {0})).result.routes[0].cost, 4);
  MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.snapshots.batches_applied, 1u);
  EXPECT_EQ(metrics.snapshots.pending_updates, 0u);
}

TEST(SnapshotBatchTest, StopFlushesBufferedUpdatesInsteadOfDroppingThem) {
  ServiceConfig config;
  config.num_workers = 1;
  config.update_batch_window_s = 3600;
  KosrService service(MakeLineEngine(), config);
  EXPECT_FALSE(service.SetEdgeWeight(0, 3, 1).applied);
  service.Stop();
  // The update went live on shutdown; a restarted service (same object)
  // answers from the post-update snapshot.
  EXPECT_EQ(service.snapshot_version(), 2u);
  service.Start();
  EXPECT_EQ(service.Submit(MakeRequest(0, 0, {0})).result.routes[0].cost, 4);
}

TEST(SnapshotBatchTest, ProtocolReportsBufferedAndFlushed) {
  ServiceConfig config;
  config.num_workers = 1;
  config.update_batch_window_s = 3600;
  KosrService service(MakeLineEngine(), config);

  EXPECT_EQ(HandleRequestLine(service, "SET_EDGE 0 3 1"),
            "OK BUFFERED pending=1 version=1");
  EXPECT_EQ(HandleRequestLine(service, "ADD_EDGE 1 3 1"),
            "OK BUFFERED pending=2 version=1");
  std::string flushed = HandleRequestLine(service, "FLUSH_UPDATES");
  EXPECT_EQ(flushed.rfind("OK FLUSHED changed=1 labels=", 0), 0u) << flushed;
  EXPECT_NE(flushed.find(" version=2"), std::string::npos) << flushed;
}

// Category updates cannot buffer (they restructure the inverted indexes),
// so they first flush pending edge updates — the combined stream applies
// in submission order.
TEST(SnapshotBatchTest, CategoryUpdateFlushesPendingEdgeUpdatesFirst) {
  ServiceConfig config;
  config.num_workers = 1;
  config.update_batch_window_s = 3600;
  KosrService service(MakeLineEngine(), config);

  EXPECT_FALSE(service.SetEdgeWeight(0, 3, 1).applied);
  UpdateAck ack = service.AddVertexCategory(1, 0);
  EXPECT_TRUE(ack.applied);
  // Version 2 = the flushed edge batch, version 3 = the category update.
  EXPECT_EQ(ack.snapshot_version, 3u);
  // Both effects are live: cat 0 = {1, 3}, so 0 -> 1 -> 0 = 2 beats the
  // shortcut route 0 -> 3 -> 0 = 4.
  EXPECT_EQ(service.Submit(MakeRequest(0, 0, {0})).result.routes[0].cost, 2);
  MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.snapshots.pending_updates, 0u);
}

// --- Acceptance: coalesced repair == from-scratch rebuild, byte for byte ---

TEST(SnapshotBatchTest, BatchedStreamLeavesLabelsByteIdenticalToRebuild) {
  auto inst = testing::MakeRandomInstance(28, 100, 3, 21);

  auto apply = [](KosrService& service) {
    service.SetEdgeWeight(1, 2, 1);
    service.AddOrDecreaseEdge(3, 7, 2);
    service.SetEdgeWeight(5, 9, 4);
    service.RemoveEdge(3, 7);  // Removes the arc added two updates ago.
    service.AddOrDecreaseEdge(0, 11, 3);
    service.SetEdgeWeight(1, 2, 9);  // Raise what we first lowered.
  };

  // Batched: the whole stream lands as one coalesced repair.
  ServiceConfig batched_config;
  batched_config.num_workers = 1;
  batched_config.update_batch_window_s = 3600;
  KosrEngine batched_engine(inst.graph, inst.categories);
  batched_engine.BuildIndexes();
  KosrService batched(std::move(batched_engine), batched_config);
  apply(batched);
  UpdateAck ack = batched.FlushUpdates();
  ASSERT_TRUE(ack.applied);
  ASSERT_TRUE(ack.summary.graph_changed);
  EXPECT_EQ(batched.Metrics().snapshots.batches_applied, 1u);

  // Immediate: the same stream, one repair per update.
  KosrEngine immediate_engine(inst.graph, inst.categories);
  immediate_engine.BuildIndexes();
  KosrService immediate(std::move(immediate_engine), {.num_workers = 1});
  apply(immediate);

  // From scratch: rebuild the labeling on the post-update graph with the
  // same hub order (the repair never re-ranks; a free rebuild would pick a
  // fresh degree order and trivially different bytes).
  auto snapshot = batched.CurrentSnapshot();
  uint32_t n = snapshot->graph().num_vertices();
  std::vector<VertexId> order(n);
  for (uint32_t r = 0; r < n; ++r) {
    order[r] = snapshot->labeling().HubVertex(r);
  }
  KosrEngine rebuilt(Graph::FromEdges(n, snapshot->graph().ToEdges()),
                     snapshot->categories());
  rebuilt.BuildIndexes(order);

  std::ostringstream batched_bytes, immediate_bytes, rebuilt_bytes;
  snapshot->labeling().Serialize(batched_bytes);
  immediate.CurrentSnapshot()->labeling().Serialize(immediate_bytes);
  rebuilt.labeling().Serialize(rebuilt_bytes);
  EXPECT_EQ(batched_bytes.str(), rebuilt_bytes.str());
  EXPECT_EQ(immediate_bytes.str(), rebuilt_bytes.str());
}

// --- Satellite (b): targeted invalidation spares unaffected pairs ----------

// Two disconnected line components; a label-changing update in component A
// must evict A's cached route and leave component B's entry warm.
TEST(SnapshotBatchTest, LabelChangingUpdateKeepsUnaffectedComponentWarm) {
  Graph graph = Graph::FromEdges(8, {{0, 1, 1},
                                     {1, 0, 1},
                                     {1, 2, 1},
                                     {2, 1, 1},
                                     {2, 3, 1},
                                     {3, 2, 1},
                                     {4, 5, 1},
                                     {5, 4, 1},
                                     {5, 6, 1},
                                     {6, 5, 1},
                                     {6, 7, 1},
                                     {7, 6, 1}});
  CategoryTable categories(8, 3);
  categories.Add(3, 0);  // Component A.
  categories.Add(2, 1);  // Component A.
  categories.Add(6, 2);  // Component B.
  KosrEngine engine(std::move(graph), std::move(categories));
  engine.BuildIndexes();
  KosrService service(std::move(engine), {.num_workers = 1});

  ServiceRequest in_a = MakeRequest(0, 0, {0});  // 0 -> 3 -> 0 = 6.
  ServiceRequest in_b = MakeRequest(4, 4, {2});  // 4 -> 6 -> 4 = 4.
  EXPECT_EQ(service.Submit(in_a).result.routes[0].cost, 6);
  EXPECT_EQ(service.Submit(in_b).result.routes[0].cost, 4);
  EXPECT_TRUE(service.Submit(in_a).cache_hit);
  EXPECT_TRUE(service.Submit(in_b).cache_hit);

  // Raising 0 -> 1 changes distances (and labels) in component A only.
  UpdateAck ack = service.SetEdgeWeight(0, 1, 5);
  ASSERT_TRUE(ack.summary.labels_changed);

  ServiceResponse b_again = service.Submit(in_b);
  EXPECT_TRUE(b_again.cache_hit) << "unaffected component was evicted";
  EXPECT_EQ(b_again.result.routes[0].cost, 4);
  ServiceResponse a_again = service.Submit(in_a);
  EXPECT_FALSE(a_again.cache_hit);
  EXPECT_EQ(a_again.result.routes[0].cost, 10);  // Out 5+1+1, back 1+1+1.
  EXPECT_GT(service.cache().stats().invalidations, 0u);
}

}  // namespace
}  // namespace kosr::service
