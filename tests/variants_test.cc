#include "src/core/variants.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

// Reference for the no-source variant: best costs over all first-category
// start vertices.
std::vector<Cost> BruteForceNoSource(const Graph& graph,
                                     const CategoryTable& cats, VertexId t,
                                     const CategorySequence& seq, uint32_t k) {
  testing::DistanceOracle dis(graph);
  std::vector<Cost> costs;
  CategorySequence rest(seq.begin() + 1, seq.end());
  for (VertexId v : cats.Members(seq.front())) {
    // Reuse the standard brute force with source = v and prepend nothing.
    auto sub = testing::BruteForceKosrCosts(graph, cats, v, t, rest);
    costs.insert(costs.end(), sub.begin(), sub.end());
  }
  std::sort(costs.begin(), costs.end());
  if (costs.size() > k) costs.resize(k);
  return costs;
}

// Reference for the no-destination variant: route ends at the last category.
std::vector<Cost> BruteForceNoDestination(const Graph& graph,
                                          const CategoryTable& cats,
                                          VertexId s,
                                          const CategorySequence& seq,
                                          uint32_t k) {
  testing::DistanceOracle dis(graph);
  std::vector<Cost> costs;
  CategorySequence front(seq.begin(), seq.end() - 1);
  for (VertexId v : cats.Members(seq.back())) {
    // Route s -> ... -> v where v covers the last category: equivalent to a
    // standard query with target v over the remaining prefix.
    auto sub = testing::BruteForceKosrCosts(graph, cats, s, v, front);
    costs.insert(costs.end(), sub.begin(), sub.end());
  }
  std::sort(costs.begin(), costs.end());
  if (costs.size() > k) costs.resize(k);
  return costs;
}

std::vector<Cost> Costs(const KosrResult& r) {
  std::vector<Cost> out;
  for (const auto& route : r.routes) out.push_back(route.cost);
  return out;
}

TEST(NoSourceVariantTest, MatchesBruteForceAllAlgorithms) {
  for (uint64_t seed : {500u, 501u}) {
    auto inst = testing::MakeRandomInstance(40, 220, 4, seed);
    KosrEngine engine(inst.graph, inst.categories);
    engine.BuildIndexes();
    CategorySequence seq = {0, 2, 3};
    VertexId t = 37;
    uint32_t k = 5;
    auto expected =
        BruteForceNoSource(inst.graph, inst.categories, t, seq, k);
    for (Algorithm algo :
         {Algorithm::kKpne, Algorithm::kPruning, Algorithm::kStar}) {
      KosrOptions options;
      options.algorithm = algo;
      auto result = QueryNoSource(engine, t, seq, k, options);
      EXPECT_EQ(Costs(result), expected)
          << "seed=" << seed << " algo=" << static_cast<int>(algo);
    }
  }
}

TEST(NoSourceVariantTest, WitnessStartsInFirstCategory) {
  auto inst = testing::MakeRandomInstance(30, 160, 3, 502);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  CategorySequence seq = {1, 2};
  auto result = QueryNoSource(engine, 25, seq, 3);
  for (const auto& route : result.routes) {
    ASSERT_EQ(route.witness.size(), seq.size() + 1);  // no source vertex
    EXPECT_TRUE(inst.categories.Has(route.witness.front(), seq.front()));
    EXPECT_EQ(route.witness.back(), 25u);
  }
}

TEST(NoDestinationVariantTest, MatchesBruteForce) {
  for (uint64_t seed : {510u, 511u}) {
    auto inst = testing::MakeRandomInstance(40, 220, 4, seed);
    KosrEngine engine(inst.graph, inst.categories);
    engine.BuildIndexes();
    CategorySequence seq = {1, 0, 3};
    VertexId s = 2;
    uint32_t k = 5;
    auto expected =
        BruteForceNoDestination(inst.graph, inst.categories, s, seq, k);
    for (Algorithm algo : {Algorithm::kKpne, Algorithm::kPruning}) {
      KosrOptions options;
      options.algorithm = algo;
      auto result = QueryNoDestination(engine, s, seq, k, options);
      EXPECT_EQ(Costs(result), expected) << "seed=" << seed;
    }
  }
}

TEST(NoDestinationVariantTest, RejectsStarKosr) {
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  KosrOptions options;
  options.algorithm = Algorithm::kStar;
  EXPECT_THROW(
      QueryNoDestination(engine, Figure1::s, {Figure1::MA}, 1, options),
      std::invalid_argument);
}

TEST(NoDestinationVariantTest, Figure1Example) {
  // Best <MA, RE> route from s without destination:
  // s->a(8)->b(5) = 13, s->a->e = 14, ...
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  KosrOptions options;
  options.algorithm = Algorithm::kPruning;
  auto result = QueryNoDestination(engine, Figure1::s,
                                   {Figure1::MA, Figure1::RE}, 2, options);
  ASSERT_EQ(result.routes.size(), 2u);
  EXPECT_EQ(result.routes[0].cost, 13);
  EXPECT_EQ(result.routes[1].cost, 14);
}

TEST(PreferenceFilterTest, RestrictsCategoryMembers) {
  // "Only restaurant e": routes through b are excluded.
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 3};
  KosrOptions options;
  options.filter = [](uint32_t slot, VertexId v) {
    return slot != 2 || v == Figure1::e;  // slot 2 = RE
  };
  for (Algorithm algo :
       {Algorithm::kKpne, Algorithm::kPruning, Algorithm::kStar}) {
    options.algorithm = algo;
    auto result = engine.Query(query, options);
    ASSERT_FALSE(result.routes.empty());
    EXPECT_EQ(result.routes[0].cost, 21);  // <s,a,e,d,t>
    for (const auto& route : result.routes) {
      EXPECT_EQ(route.witness[2], Figure1::e);
    }
  }
}

TEST(PreferenceFilterTest, UnsatisfiableFilterYieldsNothing) {
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  KosrQuery query{Figure1::s, Figure1::t, {Figure1::MA}, 1};
  KosrOptions options;
  options.filter = [](uint32_t, VertexId) { return false; };
  EXPECT_TRUE(engine.Query(query, options).routes.empty());
}

}  // namespace
}  // namespace kosr
