#include "src/labeling/hub_labeling.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

void ExpectAllPairsMatch(const Graph& graph, const HubLabeling& hl) {
  for (VertexId s = 0; s < graph.num_vertices(); ++s) {
    auto dist = DijkstraAllDistances(graph, s);
    for (VertexId t = 0; t < graph.num_vertices(); ++t) {
      EXPECT_EQ(hl.Query(s, t), dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST(HubLabelingTest, Figure1AllPairs) {
  Figure1 fig = MakeFigure1();
  HubLabeling hl;
  hl.Build(fig.graph);
  ExpectAllPairsMatch(fig.graph, hl);
}

TEST(HubLabelingTest, RandomGraphsAllPairs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Graph g = MakeRandomGraph(60, 240, seed);
    HubLabeling hl;
    hl.Build(g);
    ExpectAllPairsMatch(g, hl);
  }
}

TEST(HubLabelingTest, GridAllPairsSample) {
  Graph g = MakeGridRoadNetwork(9, 9, /*seed=*/17);
  HubLabeling hl;
  hl.Build(g);
  for (VertexId s = 0; s < g.num_vertices(); s += 7) {
    auto dist = DijkstraAllDistances(g, s);
    for (VertexId t = 0; t < g.num_vertices(); t += 3) {
      EXPECT_EQ(hl.Query(s, t), dist[t]);
    }
  }
}

TEST(HubLabelingTest, SelfDistanceIsZero) {
  Graph g = MakeRandomGraph(30, 100, 9);
  HubLabeling hl;
  hl.Build(g);
  for (VertexId v = 0; v < 30; ++v) EXPECT_EQ(hl.Query(v, v), 0);
}

TEST(HubLabelingTest, UnreachableIsInf) {
  Graph g = Graph::FromEdges(4, {{0, 1, 1}, {2, 3, 1}});
  HubLabeling hl;
  hl.Build(g);
  EXPECT_EQ(hl.Query(0, 2), kInfCost);
  EXPECT_EQ(hl.Query(1, 3), kInfCost);
  EXPECT_EQ(hl.Query(0, 1), 1);
}

TEST(HubLabelingTest, UnpackPathIsValidShortestPath) {
  for (uint64_t seed : {11u, 12u}) {
    Graph g = MakeRandomGraph(50, 220, seed);
    HubLabeling hl;
    hl.Build(g);
    for (VertexId s = 0; s < 50; s += 5) {
      auto dist = DijkstraAllDistances(g, s);
      for (VertexId t = 0; t < 50; t += 3) {
        auto path = hl.UnpackPath(s, t);
        if (dist[t] == kInfCost) {
          EXPECT_TRUE(path.empty());
          continue;
        }
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.front(), s);
        EXPECT_EQ(path.back(), t);
        Cost total = 0;
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          Cost w = g.ArcWeight(path[i], path[i + 1]);
          ASSERT_LT(w, kInfCost)
              << "missing arc " << path[i] << "->" << path[i + 1];
          total += w;
        }
        EXPECT_EQ(total, dist[t]);
      }
    }
  }
}

TEST(HubLabelingTest, UnpackPathSelf) {
  Graph g = MakeRandomGraph(10, 30, 1);
  HubLabeling hl;
  hl.Build(g);
  EXPECT_EQ(hl.UnpackPath(4, 4), std::vector<VertexId>{4});
}

TEST(HubLabelingTest, SerializeRoundTrip) {
  Graph g = MakeRandomGraph(40, 160, 21);
  HubLabeling hl;
  hl.Build(g);
  std::stringstream buffer;
  hl.Serialize(buffer);
  HubLabeling copy = HubLabeling::Deserialize(buffer);
  EXPECT_EQ(copy.num_vertices(), hl.num_vertices());
  for (VertexId s = 0; s < 40; s += 3) {
    for (VertexId t = 0; t < 40; t += 2) {
      EXPECT_EQ(copy.Query(s, t), hl.Query(s, t));
    }
  }
}

TEST(HubLabelingTest, DeserializeRejectsGarbage) {
  std::stringstream buffer("not a labeling");
  EXPECT_THROW(HubLabeling::Deserialize(buffer), std::runtime_error);
}

TEST(HubLabelingTest, CustomOrderStillCorrect) {
  Graph g = MakeRandomGraph(40, 150, 33);
  // Worst-case-ish order: identity.
  std::vector<VertexId> order(40);
  for (VertexId v = 0; v < 40; ++v) order[v] = v;
  HubLabeling hl;
  hl.Build(g, order);
  ExpectAllPairsMatch(g, hl);
}

TEST(HubLabelingTest, RejectsBadOrder) {
  Graph g = MakeRandomGraph(10, 20, 1);
  HubLabeling hl;
  EXPECT_THROW(hl.Build(g, std::vector<VertexId>{0, 1}),
               std::invalid_argument);
}

TEST(HubLabelingTest, IntrospectionIsConsistent) {
  Graph g = MakeRandomGraph(50, 200, 2);
  HubLabeling hl;
  hl.Build(g);
  EXPECT_GT(hl.AvgInLabelSize(), 0.0);
  EXPECT_GT(hl.AvgOutLabelSize(), 0.0);
  EXPECT_GT(hl.IndexBytes(), 0u);
  EXPECT_EQ(hl.IndexBytes() % sizeof(LabelEntry), 0u);
  EXPECT_GE(hl.BuildSeconds(), 0.0);
}

TEST(HubLabelingTest, OnEdgeDecreasedRepairsDistances) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    Graph g = MakeRandomGraph(40, 140, seed);
    HubLabeling hl;
    hl.Build(g);
    // Insert a cheap new arc and repair incrementally.
    auto edges = g.ToEdges();
    VertexId u = 3, v = 29;
    Weight w = 1;
    edges.emplace_back(u, v, w);
    Graph g2 = Graph::FromEdges(40, edges);
    hl.OnEdgeDecreased(g2, u, v, w);
    for (VertexId s = 0; s < 40; s += 3) {
      auto dist = DijkstraAllDistances(g2, s);
      for (VertexId t = 0; t < 40; t += 2) {
        EXPECT_EQ(hl.Query(s, t), dist[t])
            << "seed=" << seed << " s=" << s << " t=" << t;
      }
    }
  }
}

TEST(HubLabelingTest, FromPartsPartialAnswersLoadedPairs) {
  Graph g = MakeRandomGraph(30, 120, 44);
  HubLabeling full;
  full.Build(g);
  std::vector<VertexId> order;
  for (uint32_t r = 0; r < 30; ++r) order.push_back(full.HubVertex(r));
  std::vector<std::vector<LabelEntry>> in(30), out(30);
  // Load only vertex 5's out-label and vertex 9's in-label.
  out[5].assign(full.Lout(5).begin(), full.Lout(5).end());
  in[9].assign(full.Lin(9).begin(), full.Lin(9).end());
  HubLabeling partial = HubLabeling::FromParts(order, in, out);
  EXPECT_EQ(partial.Query(5, 9), full.Query(5, 9));
  EXPECT_EQ(partial.Query(9, 5), kInfCost);  // not loaded
}

}  // namespace
}  // namespace kosr
