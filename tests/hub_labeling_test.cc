#include "src/labeling/hub_labeling.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

void ExpectAllPairsMatch(const Graph& graph, const HubLabeling& hl) {
  for (VertexId s = 0; s < graph.num_vertices(); ++s) {
    auto dist = DijkstraAllDistances(graph, s);
    for (VertexId t = 0; t < graph.num_vertices(); ++t) {
      EXPECT_EQ(hl.Query(s, t), dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST(HubLabelingTest, Figure1AllPairs) {
  Figure1 fig = MakeFigure1();
  HubLabeling hl;
  hl.Build(fig.graph);
  ExpectAllPairsMatch(fig.graph, hl);
}

TEST(HubLabelingTest, RandomGraphsAllPairs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Graph g = MakeRandomGraph(60, 240, seed);
    HubLabeling hl;
    hl.Build(g);
    ExpectAllPairsMatch(g, hl);
  }
}

TEST(HubLabelingTest, GridAllPairsSample) {
  Graph g = MakeGridRoadNetwork(9, 9, /*seed=*/17);
  HubLabeling hl;
  hl.Build(g);
  for (VertexId s = 0; s < g.num_vertices(); s += 7) {
    auto dist = DijkstraAllDistances(g, s);
    for (VertexId t = 0; t < g.num_vertices(); t += 3) {
      EXPECT_EQ(hl.Query(s, t), dist[t]);
    }
  }
}

TEST(HubLabelingTest, SelfDistanceIsZero) {
  Graph g = MakeRandomGraph(30, 100, 9);
  HubLabeling hl;
  hl.Build(g);
  for (VertexId v = 0; v < 30; ++v) EXPECT_EQ(hl.Query(v, v), 0);
}

TEST(HubLabelingTest, UnreachableIsInf) {
  Graph g = Graph::FromEdges(4, {{0, 1, 1}, {2, 3, 1}});
  HubLabeling hl;
  hl.Build(g);
  EXPECT_EQ(hl.Query(0, 2), kInfCost);
  EXPECT_EQ(hl.Query(1, 3), kInfCost);
  EXPECT_EQ(hl.Query(0, 1), 1);
}

TEST(HubLabelingTest, UnpackPathIsValidShortestPath) {
  for (uint64_t seed : {11u, 12u}) {
    Graph g = MakeRandomGraph(50, 220, seed);
    HubLabeling hl;
    hl.Build(g);
    for (VertexId s = 0; s < 50; s += 5) {
      auto dist = DijkstraAllDistances(g, s);
      for (VertexId t = 0; t < 50; t += 3) {
        auto path = hl.UnpackPath(s, t);
        if (dist[t] == kInfCost) {
          EXPECT_TRUE(path.empty());
          continue;
        }
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.front(), s);
        EXPECT_EQ(path.back(), t);
        Cost total = 0;
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          Cost w = g.ArcWeight(path[i], path[i + 1]);
          ASSERT_LT(w, kInfCost)
              << "missing arc " << path[i] << "->" << path[i + 1];
          total += w;
        }
        EXPECT_EQ(total, dist[t]);
      }
    }
  }
}

TEST(HubLabelingTest, UnpackPathSelf) {
  Graph g = MakeRandomGraph(10, 30, 1);
  HubLabeling hl;
  hl.Build(g);
  EXPECT_EQ(hl.UnpackPath(4, 4), std::vector<VertexId>{4});
}

TEST(HubLabelingTest, SerializeRoundTrip) {
  Graph g = MakeRandomGraph(40, 160, 21);
  HubLabeling hl;
  hl.Build(g);
  std::stringstream buffer;
  hl.Serialize(buffer);
  HubLabeling copy = HubLabeling::Deserialize(buffer);
  EXPECT_EQ(copy.num_vertices(), hl.num_vertices());
  for (VertexId s = 0; s < 40; s += 3) {
    for (VertexId t = 0; t < 40; t += 2) {
      EXPECT_EQ(copy.Query(s, t), hl.Query(s, t));
    }
  }
}

TEST(HubLabelingTest, DeserializeRejectsGarbage) {
  std::stringstream buffer("not a labeling");
  EXPECT_THROW(HubLabeling::Deserialize(buffer), std::runtime_error);
}

TEST(HubLabelingTest, CustomOrderStillCorrect) {
  Graph g = MakeRandomGraph(40, 150, 33);
  // Worst-case-ish order: identity.
  std::vector<VertexId> order(40);
  for (VertexId v = 0; v < 40; ++v) order[v] = v;
  HubLabeling hl;
  hl.Build(g, order);
  ExpectAllPairsMatch(g, hl);
}

TEST(HubLabelingTest, RejectsBadOrder) {
  Graph g = MakeRandomGraph(10, 20, 1);
  HubLabeling hl;
  EXPECT_THROW(hl.Build(g, std::vector<VertexId>{0, 1}),
               std::invalid_argument);
}

TEST(HubLabelingTest, IntrospectionIsConsistent) {
  Graph g = MakeRandomGraph(50, 200, 2);
  HubLabeling hl;
  hl.Build(g);
  EXPECT_GT(hl.AvgInLabelSize(), 0.0);
  EXPECT_GT(hl.AvgOutLabelSize(), 0.0);
  EXPECT_GT(hl.IndexBytes(), 0u);
  EXPECT_EQ(hl.IndexBytes() % sizeof(LabelEntry), 0u);
  EXPECT_GE(hl.BuildSeconds(), 0.0);
}

TEST(HubLabelingTest, OnEdgeDecreasedRepairsDistances) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    Graph g = MakeRandomGraph(40, 140, seed);
    HubLabeling hl;
    hl.Build(g);
    // Insert a cheap new arc and repair incrementally.
    auto edges = g.ToEdges();
    VertexId u = 3, v = 29;
    Weight w = 1;
    edges.emplace_back(u, v, w);
    Graph g2 = Graph::FromEdges(40, edges);
    hl.OnEdgeDecreased(g2, u, v, w);
    for (VertexId s = 0; s < 40; s += 3) {
      auto dist = DijkstraAllDistances(g2, s);
      for (VertexId t = 0; t < 40; t += 2) {
        EXPECT_EQ(hl.Query(s, t), dist[t])
            << "seed=" << seed << " s=" << s << " t=" << t;
      }
    }
  }
}

// --- Parallel build equivalence --------------------------------------------

// Byte-for-byte equality of every label entry (rank, dist, parent) — the
// parallel build's contract is identical output, not merely equal distances.
void ExpectIdenticalLabels(const HubLabeling& a, const HubLabeling& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  for (uint32_t r = 0; r < a.num_vertices(); ++r) {
    ASSERT_EQ(a.HubVertex(r), b.HubVertex(r)) << "rank " << r;
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    auto ain = a.Lin(v), bin = b.Lin(v);
    ASSERT_EQ(ain.size(), bin.size()) << "Lin(" << v << ")";
    for (size_t i = 0; i < ain.size(); ++i) {
      ASSERT_EQ(ain[i], bin[i]) << "Lin(" << v << ")[" << i << "]";
    }
    auto aout = a.Lout(v), bout = b.Lout(v);
    ASSERT_EQ(aout.size(), bout.size()) << "Lout(" << v << ")";
    for (size_t i = 0; i < aout.size(); ++i) {
      ASSERT_EQ(aout[i], bout[i]) << "Lout(" << v << ")[" << i << "]";
    }
  }
}

TEST(HubLabelingTest, ParallelBuildIsByteIdenticalToSequential) {
  std::vector<Graph> graphs;
  for (uint64_t seed : {1u, 2u, 3u}) {
    graphs.push_back(MakeRandomGraph(60, 240, seed));
  }
  graphs.push_back(MakeGridRoadNetwork(9, 9, /*seed=*/17));
  for (const Graph& g : graphs) {
    HubLabeling sequential;
    sequential.Build(g, /*num_threads=*/1);
    for (uint32_t threads : {2u, 3u, 8u, testing::TestThreads()}) {
      HubLabeling parallel;
      parallel.Build(g, threads);
      ExpectIdenticalLabels(sequential, parallel);
    }
  }
}

TEST(HubLabelingTest, ParallelBuildCustomOrderMatchesAndIsCorrect) {
  Graph g = MakeRandomGraph(50, 200, 33);
  // Worst-case-ish order (identity): batches pack hubs that barely prune
  // each other, the stress case for the commit-phase re-check.
  std::vector<VertexId> order(50);
  for (VertexId v = 0; v < 50; ++v) order[v] = v;
  HubLabeling sequential;
  sequential.Build(g, order, /*num_threads=*/1);
  HubLabeling parallel;
  parallel.Build(g, order, testing::TestThreads());
  ExpectIdenticalLabels(sequential, parallel);
  ExpectAllPairsMatch(g, parallel);
}

TEST(HubLabelingTest, ParallelDegreeOrderMatchesSequential) {
  // ParallelSort must reproduce std::sort exactly (ties broken by id), even
  // on inputs large enough to take the parallel path.
  Graph g = MakeGridRoadNetwork(150, 150, /*seed=*/3);
  std::vector<VertexId> seq = HubLabeling::DegreeOrder(g, 1);
  std::vector<VertexId> par = HubLabeling::DegreeOrder(g, 5);
  EXPECT_EQ(seq, par);
}

TEST(HubLabelingTest, BuildRejectsNonPermutationOrder) {
  Graph g = MakeRandomGraph(10, 20, 1);
  HubLabeling hl;
  std::vector<VertexId> dup(10, 0);
  EXPECT_THROW(hl.Build(g, dup), std::invalid_argument);
  std::vector<VertexId> oob{0, 1, 2, 3, 4, 5, 6, 7, 8, 42};
  EXPECT_THROW(hl.Build(g, oob), std::invalid_argument);
}

// --- Corrupt snapshot rejection --------------------------------------------

// Hand-crafted snapshot bytes (the Serialize wire format): magic, n, order,
// then 2n length-prefixed label vectors. Lets each test corrupt exactly one
// field.
class SnapshotBuilder {
 public:
  SnapshotBuilder& U32(uint32_t v) { return Append(&v, sizeof(v)); }
  SnapshotBuilder& U64(uint64_t v) { return Append(&v, sizeof(v)); }
  SnapshotBuilder& Magic() { return U64(0x4b4f53524c424c31ull); }
  SnapshotBuilder& Entry(uint32_t rank, uint32_t dist, uint32_t parent) {
    return U32(rank).U32(dist).U32(parent);
  }
  std::string str() const { return bytes_; }

 private:
  SnapshotBuilder& Append(const void* p, size_t len) {
    bytes_.append(static_cast<const char*>(p), len);
    return *this;
  }
  std::string bytes_;
};

HubLabeling DeserializeBytes(const std::string& bytes) {
  std::stringstream in(bytes);
  return HubLabeling::Deserialize(in);
}

// n=2 snapshot with one self-entry per vector — the valid base the corrupt
// variants below mutate.
SnapshotBuilder ValidTinySnapshot() {
  SnapshotBuilder b;
  b.Magic().U32(2).U32(0).U32(1);
  for (int vec = 0; vec < 4; ++vec) {
    b.U64(1).Entry(static_cast<uint32_t>(vec % 2), 0, kInvalidVertex);
  }
  return b;
}

TEST(HubLabelingTest, DeserializeAcceptsValidTinySnapshot) {
  HubLabeling hl = DeserializeBytes(ValidTinySnapshot().str());
  EXPECT_EQ(hl.num_vertices(), 2u);
  EXPECT_EQ(hl.Query(0, 0), 0);
}

TEST(HubLabelingTest, DeserializeRejectsTruncation) {
  std::string valid = ValidTinySnapshot().str();
  // Every proper prefix must be rejected, never read out of bounds (ASan
  // guards the buffers) or loop forever.
  for (size_t len = 0; len < valid.size(); len += 3) {
    EXPECT_THROW(DeserializeBytes(valid.substr(0, len)), std::runtime_error)
        << "prefix length " << len;
  }
}

TEST(HubLabelingTest, DeserializeRejectsBadMagic) {
  std::string bytes = ValidTinySnapshot().str();
  bytes[0] ^= 0x5a;
  EXPECT_THROW(DeserializeBytes(bytes), std::runtime_error);
}

TEST(HubLabelingTest, DeserializeRejectsNonPermutationOrder) {
  // Duplicate rank: order = {1, 1}.
  SnapshotBuilder dup;
  dup.Magic().U32(2).U32(1).U32(1);
  EXPECT_THROW(DeserializeBytes(dup.str()), std::runtime_error);
  // Out of range: order = {0, 7} — would write rank_[7] out of bounds.
  SnapshotBuilder oob;
  oob.Magic().U32(2).U32(0).U32(7);
  EXPECT_THROW(DeserializeBytes(oob.str()), std::runtime_error);
}

TEST(HubLabelingTest, DeserializeRejectsOversizedLabelCount) {
  // Claims 2^60 label entries; must throw before allocating, not after.
  SnapshotBuilder b;
  b.Magic().U32(2).U32(0).U32(1).U64(1ull << 60);
  EXPECT_THROW(DeserializeBytes(b.str()), std::runtime_error);
}

TEST(HubLabelingTest, DeserializeRejectsEntryFieldsOutOfRange) {
  // hub_rank >= n.
  SnapshotBuilder bad_rank;
  bad_rank.Magic().U32(2).U32(0).U32(1).U64(1).Entry(9, 0, kInvalidVertex);
  EXPECT_THROW(DeserializeBytes(bad_rank.str()), std::runtime_error);
  // parent >= n (and not the kInvalidVertex sentinel).
  SnapshotBuilder bad_parent;
  bad_parent.Magic().U32(2).U32(0).U32(1).U64(1).Entry(0, 0, 9);
  EXPECT_THROW(DeserializeBytes(bad_parent.str()), std::runtime_error);
  // Duplicate rank within a vector (not strictly sorted).
  SnapshotBuilder bad_sort;
  bad_sort.Magic().U32(2).U32(0).U32(1).U64(2).Entry(0, 0, kInvalidVertex)
      .Entry(0, 1, 1);
  EXPECT_THROW(DeserializeBytes(bad_sort.str()), std::runtime_error);
}

TEST(HubLabelingTest, DeserializeRejectsBrokenParentChains) {
  // Field-wise valid snapshots whose parent pointers cannot be walked: these
  // used to pass validation and then crash (dangling) or hang (cycle)
  // UnpackPath inside a serve worker.
  auto base = [](SnapshotBuilder& b) { b.Magic().U32(2).U32(0).U32(1); };
  {  // Dangling: vertex 1's parent 0 has no Lin entry for hub rank 0.
    SnapshotBuilder b;
    base(b);
    b.U64(0);                                 // Lin(0) empty
    b.U64(1).Entry(0, 3, 0);                  // Lin(1): parent 0, no entry
    b.U64(1).Entry(0, 0, kInvalidVertex);     // Lout(0)
    b.U64(1).Entry(1, 0, kInvalidVertex);     // Lout(1)
    EXPECT_THROW(DeserializeBytes(b.str()), std::runtime_error);
  }
  {  // Non-decreasing chain (the 2-cycle shape): both claim dist 5.
    SnapshotBuilder b;
    base(b);
    b.U64(2).Entry(0, 0, kInvalidVertex).Entry(1, 5, 1);  // Lin(0)
    b.U64(2).Entry(0, 5, 0).Entry(1, 0, kInvalidVertex);  // Lin(1)
    // Lin(0)'s rank-1 entry points at 1 whose rank-1 dist is 0 < 5 (fine),
    // but Lin(1)'s rank-0 entry points at 0 whose rank-0 dist is 0 < 5 too —
    // make it circular instead: 0's rank-1 parent 1 (dist 5) and 1's rank-1
    // is the hub self-entry, so craft the cycle on rank 0 of a 3rd vertex.
    b.U64(1).Entry(0, 0, kInvalidVertex);     // Lout(0)
    b.U64(1).Entry(1, 0, kInvalidVertex);     // Lout(1)
    EXPECT_NO_THROW(DeserializeBytes(b.str()));  // this one is walkable
    SnapshotBuilder cyc;
    cyc.Magic().U32(3).U32(0).U32(1).U32(2);
    cyc.U64(1).Entry(0, 0, kInvalidVertex);          // Lin(0) hub self
    cyc.U64(1).Entry(0, 5, 2);                       // Lin(1) -> 2
    cyc.U64(1).Entry(0, 5, 1);                       // Lin(2) -> 1 (cycle)
    cyc.U64(1).Entry(0, 0, kInvalidVertex);          // Lout(0)
    cyc.U64(1).Entry(1, 0, kInvalidVertex);          // Lout(1)
    cyc.U64(1).Entry(2, 0, kInvalidVertex);          // Lout(2)
    EXPECT_THROW(DeserializeBytes(cyc.str()), std::runtime_error);
  }
  {  // Parentless entry that is not the hub's self-entry.
    SnapshotBuilder b;
    base(b);
    b.U64(1).Entry(0, 0, kInvalidVertex);            // Lin(0)
    b.U64(1).Entry(0, 4, kInvalidVertex);            // Lin(1): not hub 0
    b.U64(1).Entry(0, 0, kInvalidVertex);            // Lout(0)
    b.U64(1).Entry(1, 0, kInvalidVertex);            // Lout(1)
    EXPECT_THROW(DeserializeBytes(b.str()), std::runtime_error);
  }
}

TEST(HubLabelingTest, UnpackPathSurvivesBrokenParentsFromParts) {
  // FromParts intentionally skips the parent-chain closure check (partial
  // disk-resident working sets lack the chain links), so UnpackPath must
  // stay defensive: a broken or circular chain yields an empty path instead
  // of a null dereference or an unbounded walk.
  std::vector<std::vector<LabelEntry>> in(2), out(2);
  out[0] = {{1, 5, 0}};                 // 0's parent toward hub 1 is... 0.
  in[1] = {{1, 0, kInvalidVertex}};     // hub 1 self-entry
  HubLabeling hl = HubLabeling::FromParts({0, 1}, in, out);
  EXPECT_EQ(hl.Query(0, 1), 5);         // the labels still answer queries
  EXPECT_TRUE(hl.UnpackPath(0, 1).empty());
}

TEST(HubLabelingTest, SerializeRoundTripSurvivesValidation) {
  // A real labeling must of course still round-trip through the hardened
  // deserializer, including after a parallel build.
  Graph g = MakeGridRoadNetwork(8, 8, 5);
  HubLabeling hl;
  hl.Build(g, testing::TestThreads());
  std::stringstream buffer;
  hl.Serialize(buffer);
  HubLabeling copy = HubLabeling::Deserialize(buffer);
  ExpectIdenticalLabels(hl, copy);
}

TEST(HubLabelingTest, FromPartsRejectsMalformedInput) {
  std::vector<VertexId> order{0, 1, 2};
  std::vector<std::vector<LabelEntry>> empty3(3);
  // Non-permutation order.
  EXPECT_THROW(HubLabeling::FromParts({0, 0, 2}, empty3, empty3),
               std::runtime_error);
  // Label table sized differently from the order.
  EXPECT_THROW(
      HubLabeling::FromParts(order, empty3,
                             std::vector<std::vector<LabelEntry>>(2)),
      std::runtime_error);
  // Entry with out-of-range rank.
  auto bad = empty3;
  bad[1].push_back({7, 1, kInvalidVertex});
  EXPECT_THROW(HubLabeling::FromParts(order, bad, empty3),
               std::runtime_error);
}

TEST(HubLabelingTest, FromPartsPartialAnswersLoadedPairs) {
  Graph g = MakeRandomGraph(30, 120, 44);
  HubLabeling full;
  full.Build(g);
  std::vector<VertexId> order;
  for (uint32_t r = 0; r < 30; ++r) order.push_back(full.HubVertex(r));
  std::vector<std::vector<LabelEntry>> in(30), out(30);
  // Load only vertex 5's out-label and vertex 9's in-label.
  out[5].assign(full.Lout(5).begin(), full.Lout(5).end());
  in[9].assign(full.Lin(9).begin(), full.Lin(9).end());
  HubLabeling partial = HubLabeling::FromParts(order, in, out);
  EXPECT_EQ(partial.Query(5, 9), full.Query(5, 9));
  EXPECT_EQ(partial.Query(9, 5), kInfCost);  // not loaded
}

}  // namespace
}  // namespace kosr
