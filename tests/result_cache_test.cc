#include "src/service/result_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace kosr::service {
namespace {

CacheKey MakeKey(VertexId source, CategorySequence sequence = {0},
                 uint32_t k = 2) {
  CacheKey key;
  key.source = source;
  key.target = source + 1;
  key.sequence = std::move(sequence);
  key.k = k;
  return key;
}

KosrResult MakeResult(Cost cost) {
  KosrResult result;
  SequencedRoute route;
  route.cost = cost;
  result.routes.push_back(route);
  return result;
}

Cost CachedCost(const KosrResult& result) { return result.routes[0].cost; }

// Single-version shorthands: most structural tests (LRU, sharding,
// invalidation by key) run entirely at snapshot version 1.
constexpr uint64_t kV1 = 1;

TEST(ResultCacheTest, LookupReturnsInsertedResult) {
  ShardedResultCache cache(/*capacity=*/8, /*num_shards=*/2);
  EXPECT_FALSE(cache.Lookup(MakeKey(1), kV1).has_value());
  cache.Insert(MakeKey(1), MakeResult(42), kV1);
  auto hit = cache.Lookup(MakeKey(1), kV1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(CachedCost(*hit), 42);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, DistinctMethodsAndKAreDistinctEntries) {
  ShardedResultCache cache(/*capacity=*/16, /*num_shards=*/1);
  CacheKey sk = MakeKey(1);
  CacheKey pk = sk;
  pk.algorithm = Algorithm::kPruning;
  CacheKey k5 = sk;
  k5.k = 5;
  cache.Insert(sk, MakeResult(1), kV1);
  cache.Insert(pk, MakeResult(2), kV1);
  cache.Insert(k5, MakeResult(3), kV1);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(CachedCost(*cache.Lookup(sk, kV1)), 1);
  EXPECT_EQ(CachedCost(*cache.Lookup(pk, kV1)), 2);
  EXPECT_EQ(CachedCost(*cache.Lookup(k5, kV1)), 3);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedInOrder) {
  // Single shard so the LRU order is global and deterministic.
  ShardedResultCache cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Insert(MakeKey(1), MakeResult(1), kV1);
  cache.Insert(MakeKey(2), MakeResult(2), kV1);
  cache.Insert(MakeKey(3), MakeResult(3), kV1);
  // Touch 1: recency order becomes 1, 3, 2.
  EXPECT_TRUE(cache.Lookup(MakeKey(1), kV1).has_value());
  // Inserting 4 must evict 2 (the least recent), not 1 or 3.
  cache.Insert(MakeKey(4), MakeResult(4), kV1);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Lookup(MakeKey(2), kV1).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(1), kV1).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(3), kV1).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(4), kV1).has_value());
  // Next eviction order: 3 is now least recent after the lookups above.
  cache.Insert(MakeKey(5), MakeResult(5), kV1);
  EXPECT_FALSE(cache.Lookup(MakeKey(1), kV1).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(3), kV1).has_value());
}

TEST(ResultCacheTest, ReinsertRefreshesValueWithoutGrowth) {
  ShardedResultCache cache(/*capacity=*/4, /*num_shards=*/1);
  cache.Insert(MakeKey(1), MakeResult(10), kV1);
  cache.Insert(MakeKey(1), MakeResult(20), kV1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(CachedCost(*cache.Lookup(MakeKey(1), kV1)), 20);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ShardedResultCache cache(/*capacity=*/0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(MakeKey(1), MakeResult(1), kV1);
  EXPECT_FALSE(cache.Lookup(MakeKey(1), kV1).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 0u);  // Disabled lookups are not counted.
}

TEST(ResultCacheTest, InvalidateCategoryDropsOnlyMatchingSequences) {
  ShardedResultCache cache(/*capacity=*/16, /*num_shards=*/4);
  cache.Insert(MakeKey(1, {0, 1}), MakeResult(1), kV1);
  cache.Insert(MakeKey(2, {2}), MakeResult(2), kV1);
  cache.Insert(MakeKey(3, {1}), MakeResult(3), kV1);
  cache.InvalidateCategory(1);
  EXPECT_FALSE(cache.Lookup(MakeKey(1, {0, 1}), kV1).has_value());
  EXPECT_FALSE(cache.Lookup(MakeKey(3, {1}), kV1).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(2, {2}), kV1).has_value());
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(ResultCacheTest, InvalidateAllEmptiesEveryShard) {
  ShardedResultCache cache(/*capacity=*/32, /*num_shards=*/4);
  for (VertexId v = 0; v < 12; ++v) {
    cache.Insert(MakeKey(v), MakeResult(v), kV1);
  }
  EXPECT_EQ(cache.size(), 12u);
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 12u);
  for (VertexId v = 0; v < 12; ++v) {
    EXPECT_FALSE(cache.Lookup(MakeKey(v), kV1).has_value());
  }
}

TEST(ResultCacheTest, EntryNewerThanPinnedVersionMissesButStaysCached) {
  ShardedResultCache cache(/*capacity=*/8, /*num_shards=*/1);
  cache.Insert(MakeKey(1), MakeResult(42), /*version=*/3);
  // A reader still pinned to snapshot 2 must not see a result computed
  // against snapshot 3 (its consistent view predates the entry).
  EXPECT_FALSE(cache.Lookup(MakeKey(1), /*pinned_version=*/2).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  // A current reader still gets it: the version miss did not erase it.
  auto hit = cache.Lookup(MakeKey(1), /*pinned_version=*/3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(CachedCost(*hit), 42);
  // Older entries serve newer readers fine: answers only go stale through
  // invalidation, never through the version tag alone.
  EXPECT_TRUE(cache.Lookup(MakeKey(1), /*pinned_version=*/9).has_value());
}

TEST(ResultCacheTest, InvalidationGateRejectsStragglerInserts) {
  ShardedResultCache cache(/*capacity=*/8, /*num_shards=*/1);
  cache.BeginInvalidation(/*version=*/5);
  // A result computed against a pre-invalidation snapshot arrives late
  // (slow reader): it must not enter the cache.
  cache.Insert(MakeKey(1), MakeResult(10), /*version=*/4);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(MakeKey(1), /*pinned_version=*/9).has_value());
  // Results computed at or after the invalidation version are accepted.
  cache.Insert(MakeKey(1), MakeResult(20), /*version=*/5);
  EXPECT_EQ(CachedCost(*cache.Lookup(MakeKey(1), 5)), 20);
  // The gate is monotonic: an older BeginInvalidation cannot loosen it.
  cache.BeginInvalidation(/*version=*/3);
  cache.Insert(MakeKey(2), MakeResult(30), /*version=*/4);
  EXPECT_FALSE(cache.Lookup(MakeKey(2), /*pinned_version=*/9).has_value());
}

TEST(ResultCacheTest, RefreshNeverReplacesNewerResultWithOlder) {
  ShardedResultCache cache(/*capacity=*/8, /*num_shards=*/1);
  cache.Insert(MakeKey(1), MakeResult(20), /*version=*/7);
  cache.Insert(MakeKey(1), MakeResult(10), /*version=*/2);  // stale refresh
  EXPECT_EQ(CachedCost(*cache.Lookup(MakeKey(1), 7)), 20);
  // The entry kept version 7, so a version-2 reader still misses.
  EXPECT_FALSE(cache.Lookup(MakeKey(1), /*pinned_version=*/2).has_value());
}

TEST(ResultCacheTest, InvalidateEdgeDeltaDropsExactlyTheStaleableEntries) {
  ShardedResultCache cache(/*capacity=*/32, /*num_shards=*/2);
  // Keys: MakeKey(v) is source v -> target v+1.
  cache.Insert(MakeKey(1, {0}), MakeResult(1), kV1);   // source 1 affected
  cache.Insert(MakeKey(4, {0}), MakeResult(2), kV1);   // target 5 affected
  cache.Insert(MakeKey(7, {3}), MakeResult(3), kV1);   // category 3 affected
  cache.Insert(MakeKey(9, {0}), MakeResult(4), kV1);   // untouched
  CacheKey with_paths = MakeKey(9, {0});
  with_paths.with_paths = true;                        // paths: always drop
  cache.Insert(with_paths, MakeResult(5), kV1);

  EdgeInvalidationFilter filter;
  filter.changed_out.assign(16, false);
  filter.changed_in.assign(16, false);
  filter.affected_categories.assign(8, false);
  filter.changed_out[1] = true;   // out-labels of vertex 1 changed
  filter.changed_in[5] = true;    // in-labels of vertex 5 changed
  filter.affected_categories[3] = true;
  cache.InvalidateEdgeDelta(filter);

  EXPECT_FALSE(cache.Lookup(MakeKey(1, {0}), kV1).has_value());
  EXPECT_FALSE(cache.Lookup(MakeKey(4, {0}), kV1).has_value());
  EXPECT_FALSE(cache.Lookup(MakeKey(7, {3}), kV1).has_value());
  EXPECT_FALSE(cache.Lookup(with_paths, kV1).has_value());
  // The unaffected pair survives — targeted invalidation keeps it warm.
  EXPECT_TRUE(cache.Lookup(MakeKey(9, {0}), kV1).has_value());
  EXPECT_EQ(cache.stats().invalidations, 4u);
}

TEST(ResultCacheTest, ConcurrentHitMissAccountingIsExact) {
  // No evictions (capacity > key universe), so across all threads every
  // lookup is either a hit returning the key's exact value or a miss
  // followed by insert; the counters must balance exactly.
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kOpsPerThread = 500;
  constexpr uint32_t kKeys = 32;
  ShardedResultCache cache(/*capacity=*/2 * kKeys, /*num_shards=*/4);
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (uint32_t i = 0; i < kOpsPerThread; ++i) {
        VertexId v = (i * 7 + t * 13) % kKeys;
        CacheKey key = MakeKey(v);
        if (auto hit = cache.Lookup(key, kV1)) {
          // A hit must carry the value some thread inserted for this key.
          ASSERT_EQ(CachedCost(*hit), static_cast<Cost>(v) * 1000);
        } else {
          cache.Insert(key, MakeResult(static_cast<Cost>(v) * 1000), kV1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_LE(cache.size(), kKeys);
  EXPECT_GT(stats.hits, 0u);
  for (VertexId v = 0; v < kKeys; ++v) {
    auto hit = cache.Lookup(MakeKey(v), kV1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(CachedCost(*hit), static_cast<Cost>(v) * 1000);
  }
}

}  // namespace
}  // namespace kosr::service
