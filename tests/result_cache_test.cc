#include "src/service/result_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace kosr::service {
namespace {

CacheKey MakeKey(VertexId source, CategorySequence sequence = {0},
                 uint32_t k = 2) {
  CacheKey key;
  key.source = source;
  key.target = source + 1;
  key.sequence = std::move(sequence);
  key.k = k;
  return key;
}

KosrResult MakeResult(Cost cost) {
  KosrResult result;
  SequencedRoute route;
  route.cost = cost;
  result.routes.push_back(route);
  return result;
}

Cost CachedCost(const KosrResult& result) { return result.routes[0].cost; }

TEST(ResultCacheTest, LookupReturnsInsertedResult) {
  ShardedResultCache cache(/*capacity=*/8, /*num_shards=*/2);
  EXPECT_FALSE(cache.Lookup(MakeKey(1)).has_value());
  cache.Insert(MakeKey(1), MakeResult(42));
  auto hit = cache.Lookup(MakeKey(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(CachedCost(*hit), 42);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, DistinctMethodsAndKAreDistinctEntries) {
  ShardedResultCache cache(/*capacity=*/16, /*num_shards=*/1);
  CacheKey sk = MakeKey(1);
  CacheKey pk = sk;
  pk.algorithm = Algorithm::kPruning;
  CacheKey k5 = sk;
  k5.k = 5;
  cache.Insert(sk, MakeResult(1));
  cache.Insert(pk, MakeResult(2));
  cache.Insert(k5, MakeResult(3));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(CachedCost(*cache.Lookup(sk)), 1);
  EXPECT_EQ(CachedCost(*cache.Lookup(pk)), 2);
  EXPECT_EQ(CachedCost(*cache.Lookup(k5)), 3);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedInOrder) {
  // Single shard so the LRU order is global and deterministic.
  ShardedResultCache cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Insert(MakeKey(1), MakeResult(1));
  cache.Insert(MakeKey(2), MakeResult(2));
  cache.Insert(MakeKey(3), MakeResult(3));
  // Touch 1: recency order becomes 1, 3, 2.
  EXPECT_TRUE(cache.Lookup(MakeKey(1)).has_value());
  // Inserting 4 must evict 2 (the least recent), not 1 or 3.
  cache.Insert(MakeKey(4), MakeResult(4));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Lookup(MakeKey(2)).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(1)).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(3)).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(4)).has_value());
  // Next eviction order: 3 is now least recent after the lookups above.
  cache.Insert(MakeKey(5), MakeResult(5));
  EXPECT_FALSE(cache.Lookup(MakeKey(1)).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(3)).has_value());
}

TEST(ResultCacheTest, ReinsertRefreshesValueWithoutGrowth) {
  ShardedResultCache cache(/*capacity=*/4, /*num_shards=*/1);
  cache.Insert(MakeKey(1), MakeResult(10));
  cache.Insert(MakeKey(1), MakeResult(20));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(CachedCost(*cache.Lookup(MakeKey(1))), 20);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ShardedResultCache cache(/*capacity=*/0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(MakeKey(1), MakeResult(1));
  EXPECT_FALSE(cache.Lookup(MakeKey(1)).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 0u);  // Disabled lookups are not counted.
}

TEST(ResultCacheTest, InvalidateCategoryDropsOnlyMatchingSequences) {
  ShardedResultCache cache(/*capacity=*/16, /*num_shards=*/4);
  cache.Insert(MakeKey(1, {0, 1}), MakeResult(1));
  cache.Insert(MakeKey(2, {2}), MakeResult(2));
  cache.Insert(MakeKey(3, {1}), MakeResult(3));
  cache.InvalidateCategory(1);
  EXPECT_FALSE(cache.Lookup(MakeKey(1, {0, 1})).has_value());
  EXPECT_FALSE(cache.Lookup(MakeKey(3, {1})).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(2, {2})).has_value());
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(ResultCacheTest, InvalidateAllEmptiesEveryShard) {
  ShardedResultCache cache(/*capacity=*/32, /*num_shards=*/4);
  for (VertexId v = 0; v < 12; ++v) {
    cache.Insert(MakeKey(v), MakeResult(v));
  }
  EXPECT_EQ(cache.size(), 12u);
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 12u);
  for (VertexId v = 0; v < 12; ++v) {
    EXPECT_FALSE(cache.Lookup(MakeKey(v)).has_value());
  }
}

TEST(ResultCacheTest, ConcurrentHitMissAccountingIsExact) {
  // No evictions (capacity > key universe), so across all threads every
  // lookup is either a hit returning the key's exact value or a miss
  // followed by insert; the counters must balance exactly.
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kOpsPerThread = 500;
  constexpr uint32_t kKeys = 32;
  ShardedResultCache cache(/*capacity=*/2 * kKeys, /*num_shards=*/4);
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (uint32_t i = 0; i < kOpsPerThread; ++i) {
        VertexId v = (i * 7 + t * 13) % kKeys;
        CacheKey key = MakeKey(v);
        if (auto hit = cache.Lookup(key)) {
          // A hit must carry the value some thread inserted for this key.
          ASSERT_EQ(CachedCost(*hit), static_cast<Cost>(v) * 1000);
        } else {
          cache.Insert(key, MakeResult(static_cast<Cost>(v) * 1000));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_LE(cache.size(), kKeys);
  EXPECT_GT(stats.hits, 0u);
  for (VertexId v = 0; v < kKeys; ++v) {
    auto hit = cache.Lookup(MakeKey(v));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(CachedCost(*hit), static_cast<Cost>(v) * 1000);
  }
}

}  // namespace
}  // namespace kosr::service
