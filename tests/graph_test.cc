#include "src/graph/graph.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"

namespace kosr {
namespace {

Graph Diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3, plus the slow direct arc 0 -> 3.
  return Graph::FromEdges(4, {{0, 1, 1},
                              {1, 3, 1},
                              {0, 2, 5},
                              {2, 3, 1},
                              {0, 3, 100}});
}

TEST(GraphTest, CsrDegreesAndArcs) {
  Graph g = Diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.OutDegree(0), 3u);
  EXPECT_EQ(g.InDegree(3), 3u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  // Adjacency sorted by head.
  auto arcs = g.OutArcs(0);
  ASSERT_EQ(arcs.size(), 3u);
  EXPECT_EQ(arcs[0].head, 1u);
  EXPECT_EQ(arcs[1].head, 2u);
  EXPECT_EQ(arcs[2].head, 3u);
}

TEST(GraphTest, InArcsMirrorOutArcs) {
  Graph g = Diamond();
  auto in = g.InArcs(3);
  ASSERT_EQ(in.size(), 3u);
  EXPECT_EQ(in[0].head, 0u);  // tail of arc 0->3
  EXPECT_EQ(in[0].weight, 100u);
}

TEST(GraphTest, SelfLoopsDropped) {
  Graph g = Graph::FromEdges(2, {{0, 0, 7}, {0, 1, 3}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, ParallelEdgesKeptAndArcWeightTakesMin) {
  Graph g = Graph::FromEdges(2, {{0, 1, 9}, {0, 1, 4}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.ArcWeight(0, 1), 4);
  EXPECT_EQ(g.ArcWeight(1, 0), kInfCost);
}

TEST(GraphTest, ToEdgesRoundTrip) {
  Graph g = Diamond();
  Graph g2 = Graph::FromEdges(4, g.ToEdges());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(g2.OutDegree(v), g.OutDegree(v));
  }
}

TEST(GraphTest, IsSymmetricDetectsAsymmetry) {
  Graph sym = Graph::FromEdges(2, {{0, 1, 2}, {1, 0, 2}});
  EXPECT_TRUE(sym.IsSymmetric());
  Graph asym = Graph::FromEdges(2, {{0, 1, 2}, {1, 0, 3}});
  EXPECT_FALSE(asym.IsSymmetric());
}

TEST(DijkstraTest, DiamondDistances) {
  Graph g = Diamond();
  auto dist = DijkstraAllDistances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 5);
  EXPECT_EQ(dist[3], 2);
}

TEST(DijkstraTest, ReverseDistances) {
  Graph g = Diamond();
  auto dist = DijkstraAllDistances(g, 3, /*reverse=*/true);
  EXPECT_EQ(dist[0], 2);  // cost *to* 3
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 1);
}

TEST(DijkstraTest, UnreachableIsInf) {
  Graph g = Graph::FromEdges(3, {{0, 1, 1}});
  EXPECT_EQ(DijkstraDistance(g, 0, 2), kInfCost);
  EXPECT_TRUE(DijkstraPath(g, 0, 2).empty());
}

TEST(DijkstraTest, PathMatchesDistance) {
  Graph g = MakeGridRoadNetwork(8, 8, /*seed=*/11);
  auto dist = DijkstraAllDistances(g, 0);
  auto path = DijkstraPath(g, 0, 63);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 63u);
  Cost total = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    Cost w = g.ArcWeight(path[i], path[i + 1]);
    ASSERT_LT(w, kInfCost);
    total += w;
  }
  EXPECT_EQ(total, dist[63]);
}

TEST(DijkstraTest, PointToPointAgreesWithFullSearch) {
  Graph g = MakeRandomGraph(60, 300, /*seed=*/5);
  auto dist = DijkstraAllDistances(g, 7);
  for (VertexId t = 0; t < 60; ++t) {
    EXPECT_EQ(DijkstraDistance(g, 7, t), dist[t]);
  }
}

}  // namespace
}  // namespace kosr
