#include "src/graph/graph.h"

#include <gtest/gtest.h>

#include <random>

#include "src/graph/generators.h"

namespace kosr {
namespace {

Graph Diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3, plus the slow direct arc 0 -> 3.
  return Graph::FromEdges(4, {{0, 1, 1},
                              {1, 3, 1},
                              {0, 2, 5},
                              {2, 3, 1},
                              {0, 3, 100}});
}

TEST(GraphTest, CsrDegreesAndArcs) {
  Graph g = Diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.OutDegree(0), 3u);
  EXPECT_EQ(g.InDegree(3), 3u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  // Adjacency sorted by head.
  auto arcs = g.OutArcs(0);
  ASSERT_EQ(arcs.size(), 3u);
  EXPECT_EQ(arcs[0].head, 1u);
  EXPECT_EQ(arcs[1].head, 2u);
  EXPECT_EQ(arcs[2].head, 3u);
}

TEST(GraphTest, InArcsMirrorOutArcs) {
  Graph g = Diamond();
  auto in = g.InArcs(3);
  ASSERT_EQ(in.size(), 3u);
  EXPECT_EQ(in[0].head, 0u);  // tail of arc 0->3
  EXPECT_EQ(in[0].weight, 100u);
}

TEST(GraphTest, SelfLoopsDropped) {
  Graph g = Graph::FromEdges(2, {{0, 0, 7}, {0, 1, 3}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, ParallelEdgesKeptAndArcWeightTakesMin) {
  Graph g = Graph::FromEdges(2, {{0, 1, 9}, {0, 1, 4}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.ArcWeight(0, 1), 4);
  EXPECT_EQ(g.ArcWeight(1, 0), kInfCost);
}

TEST(GraphTest, ToEdgesRoundTrip) {
  Graph g = Diamond();
  Graph g2 = Graph::FromEdges(4, g.ToEdges());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(g2.OutDegree(v), g.OutDegree(v));
  }
}

TEST(GraphTest, IsSymmetricDetectsAsymmetry) {
  Graph sym = Graph::FromEdges(2, {{0, 1, 2}, {1, 0, 2}});
  EXPECT_TRUE(sym.IsSymmetric());
  Graph asym = Graph::FromEdges(2, {{0, 1, 2}, {1, 0, 3}});
  EXPECT_FALSE(asym.IsSymmetric());
}

TEST(DijkstraTest, DiamondDistances) {
  Graph g = Diamond();
  auto dist = DijkstraAllDistances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 5);
  EXPECT_EQ(dist[3], 2);
}

TEST(DijkstraTest, ReverseDistances) {
  Graph g = Diamond();
  auto dist = DijkstraAllDistances(g, 3, /*reverse=*/true);
  EXPECT_EQ(dist[0], 2);  // cost *to* 3
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 1);
}

TEST(DijkstraTest, UnreachableIsInf) {
  Graph g = Graph::FromEdges(3, {{0, 1, 1}});
  EXPECT_EQ(DijkstraDistance(g, 0, 2), kInfCost);
  EXPECT_TRUE(DijkstraPath(g, 0, 2).empty());
}

TEST(DijkstraTest, PathMatchesDistance) {
  Graph g = MakeGridRoadNetwork(8, 8, /*seed=*/11);
  auto dist = DijkstraAllDistances(g, 0);
  auto path = DijkstraPath(g, 0, 63);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 63u);
  Cost total = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    Cost w = g.ArcWeight(path[i], path[i + 1]);
    ASSERT_LT(w, kInfCost);
    total += w;
  }
  EXPECT_EQ(total, dist[63]);
}

TEST(DijkstraTest, PointToPointAgreesWithFullSearch) {
  Graph g = MakeRandomGraph(60, 300, /*seed=*/5);
  auto dist = DijkstraAllDistances(g, 7);
  for (VertexId t = 0; t < 60; ++t) {
    EXPECT_EQ(DijkstraDistance(g, 7, t), dist[t]);
  }
}

// The in-place update must leave the graph exactly as FromEdges would have
// built it from the updated edge list (CSR offsets, sort order, reverse
// adjacency — everything ToEdges can observe, plus degrees).
void ExpectSameAsRebuilt(const Graph& g) {
  Graph rebuilt = Graph::FromEdges(g.num_vertices(), g.ToEdges());
  ASSERT_EQ(g.num_edges(), rebuilt.num_edges());
  EXPECT_EQ(g.ToEdges(), rebuilt.ToEdges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.OutDegree(v), rebuilt.OutDegree(v)) << v;
    EXPECT_EQ(g.InDegree(v), rebuilt.InDegree(v)) << v;
    auto in = g.InArcs(v);
    auto rin = rebuilt.InArcs(v);
    ASSERT_EQ(in.size(), rin.size()) << v;
    for (size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(in[i].head, rin[i].head) << v;
      EXPECT_EQ(in[i].weight, rin[i].weight) << v;
    }
  }
}

TEST(GraphTest, AddOrDecreaseArcInsertsOnce) {
  Graph g = Graph::FromEdges(4, {{0, 1, 5}, {2, 3, 2}});
  EXPECT_TRUE(g.AddOrDecreaseArc(1, 2, 7));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.ArcWeight(1, 2), 7);
  ExpectSameAsRebuilt(g);
  // Same arc again, worse or equal weight: no-op.
  EXPECT_FALSE(g.AddOrDecreaseArc(1, 2, 7));
  EXPECT_FALSE(g.AddOrDecreaseArc(1, 2, 100));
  EXPECT_EQ(g.num_edges(), 3u);
  // Better weight: updates in place, still one arc.
  EXPECT_TRUE(g.AddOrDecreaseArc(1, 2, 3));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.ArcWeight(1, 2), 3);
  ExpectSameAsRebuilt(g);
}

TEST(GraphTest, AddOrDecreaseArcHandlesParallelArcs) {
  // FromEdges keeps parallel arcs; the update must lower the cheapest one
  // and never add another parallel.
  Graph g = Graph::FromEdges(3, {{0, 1, 4}, {0, 1, 9}, {1, 2, 1}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_FALSE(g.AddOrDecreaseArc(0, 1, 6));  // worse than the cheapest
  EXPECT_TRUE(g.AddOrDecreaseArc(0, 1, 2));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.ArcWeight(0, 1), 2);
  ExpectSameAsRebuilt(g);
}

TEST(GraphTest, AddOrDecreaseArcRejectsBadInput) {
  Graph g = Graph::FromEdges(3, {{0, 1, 4}});
  EXPECT_FALSE(g.AddOrDecreaseArc(1, 1, 2));  // self loop: dropped
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_THROW(g.AddOrDecreaseArc(0, 3, 1), std::invalid_argument);
  EXPECT_THROW(g.AddOrDecreaseArc(9, 0, 1), std::invalid_argument);
}

TEST(GraphTest, AddOrDecreaseArcRandomizedAgainstRebuild) {
  std::mt19937_64 rng(13);
  Graph g = MakeRandomGraph(20, 60, /*seed=*/3);
  std::uniform_int_distribution<VertexId> pick(0, 19);
  std::uniform_int_distribution<Weight> weight(1, 50);
  for (int step = 0; step < 200; ++step) {
    VertexId u = pick(rng), v = pick(rng);
    Weight w = weight(rng);
    Cost before = u == v ? kInfCost : g.ArcWeight(u, v);
    bool changed = g.AddOrDecreaseArc(u, v, w);
    EXPECT_EQ(changed, u != v && static_cast<Cost>(w) < before);
    if (step % 40 == 39) ExpectSameAsRebuilt(g);
  }
  ExpectSameAsRebuilt(g);
}

}  // namespace
}  // namespace kosr
