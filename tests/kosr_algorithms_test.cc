#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

using ::kosr::testing::BruteForceTopK;
using ::kosr::testing::WitnessFeasible;

std::vector<Cost> Costs(const KosrResult& result) {
  std::vector<Cost> out;
  for (const auto& r : result.routes) out.push_back(r.cost);
  return out;
}

struct MethodSpec {
  Algorithm algorithm;
  NnMode nn_mode;
  const char* name;
};

const MethodSpec kAllMethods[] = {
    {Algorithm::kKpne, NnMode::kHopLabel, "KPNE"},
    {Algorithm::kKpne, NnMode::kDijkstra, "KPNE-Dij"},
    {Algorithm::kPruning, NnMode::kHopLabel, "PK"},
    {Algorithm::kPruning, NnMode::kDijkstra, "PK-Dij"},
    {Algorithm::kStar, NnMode::kHopLabel, "SK"},
    {Algorithm::kStar, NnMode::kDijkstra, "SK-Dij"},
};

class Figure1Fixture : public ::testing::Test {
 protected:
  Figure1Fixture() : fig_(MakeFigure1()), engine_(fig_.graph, fig_.categories) {
    engine_.BuildIndexes();
  }
  Figure1 fig_;
  KosrEngine engine_;
};

TEST_F(Figure1Fixture, PaperExample1Top3AllMethods) {
  // Example 1: (s, t, <MA, RE, CI>, 3) returns routes with costs 20, 21, 22:
  // <s,a,b,d,t>, <s,a,e,d,t>, <s,c,b,d,t>.
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 3};
  for (const MethodSpec& m : kAllMethods) {
    KosrOptions options;
    options.algorithm = m.algorithm;
    options.nn_mode = m.nn_mode;
    KosrResult result = engine_.Query(query, options);
    ASSERT_EQ(result.routes.size(), 3u) << m.name;
    EXPECT_EQ(Costs(result), (std::vector<Cost>{20, 21, 22})) << m.name;
  }
}

TEST_F(Figure1Fixture, PaperExample1Witnesses) {
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 3};
  KosrResult result = engine_.Query(query);
  using F = Figure1;
  ASSERT_EQ(result.routes.size(), 3u);
  EXPECT_EQ(result.routes[0].witness,
            (std::vector<VertexId>{F::s, F::a, F::b, F::d, F::t}));
  EXPECT_EQ(result.routes[1].witness,
            (std::vector<VertexId>{F::s, F::a, F::e, F::d, F::t}));
  EXPECT_EQ(result.routes[2].witness,
            (std::vector<VertexId>{F::s, F::c, F::b, F::d, F::t}));
}

TEST_F(Figure1Fixture, Top2MatchesPaperExample2) {
  // Example 2 / 6: top-2 routes are <s,a,b,d,t>(20) and <s,a,e,d,t>(21).
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 2};
  for (Algorithm algo : {Algorithm::kPruning, Algorithm::kStar}) {
    KosrOptions options;
    options.algorithm = algo;
    KosrResult result = engine_.Query(query, options);
    ASSERT_EQ(result.routes.size(), 2u);
    EXPECT_EQ(Costs(result), (std::vector<Cost>{20, 21}));
  }
}

TEST_F(Figure1Fixture, StarExaminesFewerRoutesThanPruning) {
  // The paper's Example 6 observes SK examining fewer witnesses than PK
  // (9 steps vs 13 on the k = 2 query).
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 2};
  KosrOptions pk, sk;
  pk.algorithm = Algorithm::kPruning;
  sk.algorithm = Algorithm::kStar;
  auto pk_result = engine_.Query(query, pk);
  auto sk_result = engine_.Query(query, sk);
  EXPECT_LT(sk_result.stats.examined_routes, pk_result.stats.examined_routes);
  EXPECT_EQ(pk_result.stats.examined_routes, 13u);  // Table III
  EXPECT_EQ(sk_result.stats.examined_routes, 9u);   // Table VI
}

TEST_F(Figure1Fixture, KMuchLargerThanFeasibleRouteCount) {
  // Only 2*2*2 = 8 witnesses exist; all are feasible here.
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 100};
  for (const MethodSpec& m : kAllMethods) {
    KosrOptions options;
    options.algorithm = m.algorithm;
    options.nn_mode = m.nn_mode;
    KosrResult result = engine_.Query(query, options);
    EXPECT_EQ(result.routes.size(), 8u) << m.name;
    auto expected = BruteForceTopK(fig_.graph, fig_.categories, Figure1::s,
                                   Figure1::t,
                                   {Figure1::MA, Figure1::RE, Figure1::CI},
                                   100);
    EXPECT_EQ(Costs(result), expected) << m.name;
  }
}

TEST_F(Figure1Fixture, RepeatedCategoryInSequence) {
  // <MA, MA>: the same category twice; the same vertex may serve both.
  KosrQuery query{Figure1::s, Figure1::t, {Figure1::MA, Figure1::MA}, 4};
  auto expected = BruteForceTopK(fig_.graph, fig_.categories, Figure1::s,
                                 Figure1::t, {Figure1::MA, Figure1::MA}, 4);
  for (const MethodSpec& m : kAllMethods) {
    KosrOptions options;
    options.algorithm = m.algorithm;
    options.nn_mode = m.nn_mode;
    EXPECT_EQ(Costs(engine_.Query(query, options)), expected) << m.name;
  }
}

TEST_F(Figure1Fixture, SingleCategorySequence) {
  KosrQuery query{Figure1::s, Figure1::t, {Figure1::RE}, 2};
  auto expected = BruteForceTopK(fig_.graph, fig_.categories, Figure1::s,
                                 Figure1::t, {Figure1::RE}, 2);
  for (const MethodSpec& m : kAllMethods) {
    KosrOptions options;
    options.algorithm = m.algorithm;
    options.nn_mode = m.nn_mode;
    EXPECT_EQ(Costs(engine_.Query(query, options)), expected) << m.name;
  }
}

TEST_F(Figure1Fixture, ResultsSortedAndFeasible) {
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 5};
  KosrResult result = engine_.Query(query);
  for (size_t i = 1; i < result.routes.size(); ++i) {
    EXPECT_LE(result.routes[i - 1].cost, result.routes[i].cost);
  }
  for (const auto& route : result.routes) {
    EXPECT_TRUE(WitnessFeasible(fig_.graph, fig_.categories, Figure1::s,
                                Figure1::t,
                                {Figure1::MA, Figure1::RE, Figure1::CI},
                                route.witness, route.cost));
  }
}

TEST(KosrAlgorithmsTest, AgreementWithBruteForceOnRandomInstances) {
  for (uint64_t seed : {100u, 101u, 102u, 103u}) {
    auto inst = testing::MakeRandomInstance(45, 260, 5, seed);
    KosrEngine engine(inst.graph, inst.categories);
    engine.BuildIndexes();
    CategorySequence seq = {0, 2, 4};
    VertexId s = 1, t = 44;
    uint32_t k = 6;
    auto expected =
        BruteForceTopK(inst.graph, inst.categories, s, t, seq, k);
    KosrQuery query{s, t, seq, k};
    for (const MethodSpec& m : kAllMethods) {
      KosrOptions options;
      options.algorithm = m.algorithm;
      options.nn_mode = m.nn_mode;
      KosrResult result = engine.Query(query, options);
      EXPECT_EQ(Costs(result), expected) << m.name << " seed=" << seed;
    }
  }
}

TEST(KosrAlgorithmsTest, PruningNeverExaminesMoreThanKpne) {
  for (uint64_t seed : {200u, 201u}) {
    auto inst = testing::MakeRandomInstance(60, 330, 4, seed);
    KosrEngine engine(inst.graph, inst.categories);
    engine.BuildIndexes();
    KosrQuery query{0, 59, {0, 1, 2}, 4};
    KosrOptions kpne, pk, sk;
    kpne.algorithm = Algorithm::kKpne;
    pk.algorithm = Algorithm::kPruning;
    sk.algorithm = Algorithm::kStar;
    auto r_kpne = engine.Query(query, kpne);
    auto r_pk = engine.Query(query, pk);
    auto r_sk = engine.Query(query, sk);
    EXPECT_EQ(Costs(r_kpne), Costs(r_pk));
    EXPECT_EQ(Costs(r_kpne), Costs(r_sk));
    EXPECT_LE(r_pk.stats.examined_routes, r_kpne.stats.examined_routes);
    EXPECT_LE(r_sk.stats.examined_routes, r_kpne.stats.examined_routes);
  }
}

TEST(KosrAlgorithmsTest, UnreachableDestinationYieldsNoRoutes) {
  // Two disjoint components.
  Graph g = Graph::FromEdges(6, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {4, 5, 1}});
  CategoryTable cats(6, 1);
  cats.Add(1, 0);
  cats.Add(4, 0);
  KosrEngine engine(g, cats);
  engine.BuildIndexes();
  KosrQuery query{0, 5, {0}, 3};
  for (const MethodSpec& m : kAllMethods) {
    KosrOptions options;
    options.algorithm = m.algorithm;
    options.nn_mode = m.nn_mode;
    EXPECT_TRUE(engine.Query(query, options).routes.empty()) << m.name;
  }
}

TEST(KosrAlgorithmsTest, SourceEqualsTarget) {
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  KosrQuery query{Figure1::s, Figure1::s, {Figure1::MA}, 2};
  auto expected = BruteForceTopK(fig.graph, fig.categories, Figure1::s,
                                 Figure1::s, {Figure1::MA}, 2);
  for (const MethodSpec& m : kAllMethods) {
    KosrOptions options;
    options.algorithm = m.algorithm;
    options.nn_mode = m.nn_mode;
    EXPECT_EQ(Costs(engine.Query(query, options)), expected) << m.name;
  }
}

TEST(KosrAlgorithmsTest, ExaminedBudgetTriggersTimeout) {
  auto inst = testing::MakeRandomInstance(60, 300, 3, 77);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  KosrQuery query{0, 59, {0, 1, 2}, 50};
  KosrOptions options;
  options.algorithm = Algorithm::kKpne;
  options.max_examined_routes = 1;  // absurdly small
  KosrResult result = engine.Query(query, options);
  EXPECT_TRUE(result.stats.timed_out);
  EXPECT_LT(result.routes.size(), 50u);
}

TEST(KosrAlgorithmsTest, PhaseTimingsSumBelowTotal) {
  auto inst = testing::MakeRandomInstance(60, 300, 3, 78);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  KosrQuery query{0, 59, {0, 1, 2}, 10};
  KosrOptions options;
  options.algorithm = Algorithm::kStar;
  options.collect_phase_times = true;
  KosrResult result = engine.Query(query, options);
  const QueryStats& s = result.stats;
  EXPECT_GT(s.total_time_s, 0.0);
  EXPECT_GE(s.OtherTimeSeconds(), 0.0);
}

TEST(KosrAlgorithmsTest, PerDepthCountsSumToExamined) {
  auto inst = testing::MakeRandomInstance(60, 320, 4, 79);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  KosrQuery query{2, 57, {0, 1, 2, 3}, 8};
  KosrOptions options;
  options.algorithm = Algorithm::kStar;
  KosrResult result = engine.Query(query, options);
  uint64_t sum = 0;
  for (uint64_t c : result.stats.examined_per_depth) sum += c;
  EXPECT_EQ(sum, result.stats.examined_routes);
  ASSERT_FALSE(result.stats.examined_per_depth.empty());
}

}  // namespace
}  // namespace kosr
