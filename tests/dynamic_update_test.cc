// Randomized dynamic-update equivalence: a KosrEngine that absorbed a
// sequence of in-place edge and category updates must answer exactly like an
// engine rebuilt from scratch on the final graph/categories — for label
// distance queries, unpacked path costs, and full KOSR queries. Also pins
// the in-place AddOrDecreaseArc regressions: repeated updates to the same
// edge may not grow the arc lists.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/core/engine.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

// Every-pair label queries + unpacked path costs must match a from-scratch
// rebuild of the current graph.
void ExpectMatchesRebuild(const KosrEngine& updated) {
  Graph rebuilt_graph = Graph::FromEdges(updated.graph().num_vertices(),
                                         updated.graph().ToEdges());
  CategoryTable rebuilt_cats = updated.categories();
  KosrEngine rebuilt(std::move(rebuilt_graph), std::move(rebuilt_cats));
  rebuilt.BuildIndexes();

  uint32_t n = updated.graph().num_vertices();
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      Cost expected = rebuilt.labeling().Query(s, t);
      ASSERT_EQ(updated.labeling().Query(s, t), expected)
          << "s=" << s << " t=" << t;
      if (expected == kInfCost || s == t) continue;
      // The unpacked path must exist and cost exactly the query distance on
      // the updated graph.
      std::vector<VertexId> path = updated.labeling().UnpackPath(s, t);
      ASSERT_FALSE(path.empty()) << "s=" << s << " t=" << t;
      ASSERT_EQ(path.front(), s);
      ASSERT_EQ(path.back(), t);
      Cost total = 0;
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        Cost w = updated.graph().ArcWeight(path[i], path[i + 1]);
        ASSERT_LT(w, kInfCost)
            << "missing arc " << path[i] << "->" << path[i + 1];
        total += w;
      }
      ASSERT_EQ(total, expected) << "s=" << s << " t=" << t;
    }
  }

  // A few full KOSR queries through the repaired inverted indexes.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  uint32_t num_categories = updated.categories().num_categories();
  for (int q = 0; q < 8; ++q) {
    KosrQuery query;
    query.source = pick(rng);
    query.target = pick(rng);
    query.sequence = {q % num_categories, (q + 1) % num_categories};
    query.k = 3;
    KosrResult got = updated.Query(query);
    KosrResult want = rebuilt.Query(query);
    ASSERT_EQ(got.routes.size(), want.routes.size()) << "query " << q;
    for (size_t i = 0; i < got.routes.size(); ++i) {
      EXPECT_EQ(got.routes[i].cost, want.routes[i].cost)
          << "query " << q << " route " << i;
    }
  }
}

TEST(DynamicUpdateTest, RandomizedUpdatesMatchFromScratchRebuild) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    auto inst = testing::MakeRandomInstance(36, 130, 3, seed);
    KosrEngine engine(inst.graph, inst.categories);
    engine.BuildIndexes(testing::TestThreads());

    std::mt19937_64 rng(seed * 997);
    std::uniform_int_distribution<VertexId> pick_vertex(0, 35);
    std::uniform_int_distribution<uint32_t> pick_cat(0, 2);
    std::uniform_int_distribution<Weight> pick_weight(1, 80);
    std::uniform_int_distribution<int> pick_op(0, 3);
    for (int step = 0; step < 24; ++step) {
      switch (pick_op(rng)) {
        case 0:
        case 1: {  // edge updates dominate the mix
          VertexId u = pick_vertex(rng), v = pick_vertex(rng);
          if (u != v) engine.AddOrDecreaseEdge(u, v, pick_weight(rng));
          break;
        }
        case 2: {
          VertexId v = pick_vertex(rng);
          CategoryId c = pick_cat(rng);
          if (!engine.categories().Has(v, c)) engine.AddVertexCategory(v, c);
          break;
        }
        case 3: {
          VertexId v = pick_vertex(rng);
          CategoryId c = pick_cat(rng);
          // Keep every category non-empty so KOSR queries stay comparable.
          if (engine.categories().Has(v, c) &&
              engine.categories().CategorySize(c) > 1) {
            engine.RemoveVertexCategory(v, c);
          }
          break;
        }
      }
      if (step % 8 == 7) ExpectMatchesRebuild(engine);
    }
    ExpectMatchesRebuild(engine);
  }
}

TEST(DynamicUpdateTest, RepeatedEdgeUpdatesDoNotGrowArcCount) {
  auto inst = testing::MakeRandomInstance(40, 140, 3, 7);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();

  uint64_t before = engine.graph().num_edges();
  engine.AddOrDecreaseEdge(3, 29, 60);
  uint64_t after_insert = engine.graph().num_edges();
  EXPECT_LE(after_insert, before + 1);  // at most one new arc, ever

  // Regression for the ToEdges/FromEdges append: 20 updates to the same
  // edge used to add 20 parallel arcs.
  for (Weight w = 59; w >= 40; --w) engine.AddOrDecreaseEdge(3, 29, w);
  EXPECT_EQ(engine.graph().num_edges(), after_insert);
  EXPECT_EQ(engine.graph().ArcWeight(3, 29), 40);

  // A worse weight is a no-op: no arc growth, no weight change.
  engine.AddOrDecreaseEdge(3, 29, 1000);
  EXPECT_EQ(engine.graph().num_edges(), after_insert);
  EXPECT_EQ(engine.graph().ArcWeight(3, 29), 40);

  // Self loops and out-of-range endpoints are rejected without mutation.
  engine.AddOrDecreaseEdge(5, 5, 1);
  EXPECT_EQ(engine.graph().num_edges(), after_insert);
  EXPECT_THROW(engine.AddOrDecreaseEdge(3, 4000, 1), std::invalid_argument);

  ExpectMatchesRebuild(engine);
}

TEST(DynamicUpdateTest, NoOpEdgeUpdateLeavesAnswersIdentical) {
  auto inst = testing::MakeRandomInstance(30, 110, 3, 9);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  // Re-adding an existing arc at its current weight must change nothing.
  auto edges = engine.graph().ToEdges();
  auto [u, v, w] = edges.front();
  uint64_t arcs = engine.graph().num_edges();
  engine.AddOrDecreaseEdge(u, v, w);
  engine.AddOrDecreaseEdge(u, v, w + 10);
  EXPECT_EQ(engine.graph().num_edges(), arcs);
  EXPECT_EQ(engine.graph().ArcWeight(u, v), static_cast<Cost>(w));
  ExpectMatchesRebuild(engine);
}

}  // namespace
}  // namespace kosr
