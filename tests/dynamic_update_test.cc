// Randomized dynamic-update equivalence: a KosrEngine that absorbed a
// sequence of in-place edge and category updates — decreases, *increases*,
// and *deletions* — must answer exactly like an engine rebuilt from scratch
// on the final graph/categories (label distance queries, unpacked path
// costs, full KOSR queries), and its incrementally repaired labels must be
// *byte-identical* to a from-scratch build with the same hub order, with
// the incrementally patched inverted indexes matching per-category
// rebuilds. Also pins the in-place AddOrDecreaseArc regressions: repeated
// updates to the same edge may not grow the arc lists.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <vector>

#include "src/core/engine.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/nn/inverted_label_index.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

// The canonical-label invariant: an incrementally repaired labeling must be
// byte-identical to a from-scratch Build on the current graph with the
// *same hub order* (the repair never re-ranks; a rebuilt engine would pick
// a fresh degree order, so the order is pinned explicitly). The inverted
// indexes, patched list by list from repair deltas, must equally match
// per-category from-scratch builds.
void ExpectLabelsCanonical(const KosrEngine& updated) {
  uint32_t n = updated.graph().num_vertices();
  std::vector<VertexId> order(n);
  for (uint32_t r = 0; r < n; ++r) order[r] = updated.labeling().HubVertex(r);
  KosrEngine rebuilt(Graph::FromEdges(n, updated.graph().ToEdges()),
                     updated.categories());
  rebuilt.BuildIndexes(order);

  for (VertexId v = 0; v < n; ++v) {
    auto lin = updated.labeling().Lin(v);
    auto want_lin = rebuilt.labeling().Lin(v);
    ASSERT_TRUE(std::equal(lin.begin(), lin.end(), want_lin.begin(),
                           want_lin.end()))
        << "Lin(" << v << ") diverged from the canonical rebuild";
    auto lout = updated.labeling().Lout(v);
    auto want_lout = rebuilt.labeling().Lout(v);
    ASSERT_TRUE(std::equal(lout.begin(), lout.end(), want_lout.begin(),
                           want_lout.end()))
        << "Lout(" << v << ") diverged from the canonical rebuild";
  }
  // Byte-identical, not merely entry-equal: the serialized snapshots match.
  std::ostringstream updated_bytes, rebuilt_bytes;
  updated.labeling().Serialize(updated_bytes);
  rebuilt.labeling().Serialize(rebuilt_bytes);
  ASSERT_EQ(updated_bytes.str(), rebuilt_bytes.str());

  for (CategoryId c = 0; c < updated.categories().num_categories(); ++c) {
    const InvertedLabelIndex& got = updated.inverted(c);
    const InvertedLabelIndex& want = rebuilt.inverted(c);
    ASSERT_EQ(got.num_lists(), want.num_lists()) << "category " << c;
    ASSERT_EQ(got.total_entries(), want.total_entries()) << "category " << c;
    for (uint32_t r = 0; r < n; ++r) {
      auto got_list = got.Entries(r);
      auto want_list = want.Entries(r);
      ASSERT_EQ(got_list.size(), want_list.size())
          << "category " << c << " hub rank " << r;
      for (size_t i = 0; i < got_list.size(); ++i) {
        ASSERT_EQ(got_list[i].member, want_list[i].member)
            << "category " << c << " hub rank " << r << " entry " << i;
        ASSERT_EQ(got_list[i].dist, want_list[i].dist)
            << "category " << c << " hub rank " << r << " entry " << i;
      }
    }
  }
}

// Every-pair label queries + unpacked path costs must match a from-scratch
// rebuild of the current graph.
void ExpectMatchesRebuild(const KosrEngine& updated) {
  Graph rebuilt_graph = Graph::FromEdges(updated.graph().num_vertices(),
                                         updated.graph().ToEdges());
  CategoryTable rebuilt_cats = updated.categories();
  KosrEngine rebuilt(std::move(rebuilt_graph), std::move(rebuilt_cats));
  rebuilt.BuildIndexes();

  uint32_t n = updated.graph().num_vertices();
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      Cost expected = rebuilt.labeling().Query(s, t);
      ASSERT_EQ(updated.labeling().Query(s, t), expected)
          << "s=" << s << " t=" << t;
      if (expected == kInfCost || s == t) continue;
      // The unpacked path must exist and cost exactly the query distance on
      // the updated graph.
      std::vector<VertexId> path = updated.labeling().UnpackPath(s, t);
      ASSERT_FALSE(path.empty()) << "s=" << s << " t=" << t;
      ASSERT_EQ(path.front(), s);
      ASSERT_EQ(path.back(), t);
      Cost total = 0;
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        Cost w = updated.graph().ArcWeight(path[i], path[i + 1]);
        ASSERT_LT(w, kInfCost)
            << "missing arc " << path[i] << "->" << path[i + 1];
        total += w;
      }
      ASSERT_EQ(total, expected) << "s=" << s << " t=" << t;
    }
  }

  // A few full KOSR queries through the repaired inverted indexes.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  uint32_t num_categories = updated.categories().num_categories();
  for (int q = 0; q < 8; ++q) {
    KosrQuery query;
    query.source = pick(rng);
    query.target = pick(rng);
    query.sequence = {q % num_categories, (q + 1) % num_categories};
    query.k = 3;
    KosrResult got = updated.Query(query);
    KosrResult want = rebuilt.Query(query);
    ASSERT_EQ(got.routes.size(), want.routes.size()) << "query " << q;
    for (size_t i = 0; i < got.routes.size(); ++i) {
      EXPECT_EQ(got.routes[i].cost, want.routes[i].cost)
          << "query " << q << " route " << i;
    }
  }

  ExpectLabelsCanonical(updated);
}

TEST(DynamicUpdateTest, RandomizedUpdatesMatchFromScratchRebuild) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    auto inst = testing::MakeRandomInstance(36, 130, 3, seed);
    KosrEngine engine(inst.graph, inst.categories);
    engine.BuildIndexes(testing::TestThreads());

    std::mt19937_64 rng(seed * 997);
    std::uniform_int_distribution<VertexId> pick_vertex(0, 35);
    std::uniform_int_distribution<uint32_t> pick_cat(0, 2);
    std::uniform_int_distribution<Weight> pick_weight(1, 80);
    std::uniform_int_distribution<int> pick_op(0, 3);
    for (int step = 0; step < 24; ++step) {
      switch (pick_op(rng)) {
        case 0:
        case 1: {  // edge updates dominate the mix
          VertexId u = pick_vertex(rng), v = pick_vertex(rng);
          if (u != v) engine.AddOrDecreaseEdge(u, v, pick_weight(rng));
          break;
        }
        case 2: {
          VertexId v = pick_vertex(rng);
          CategoryId c = pick_cat(rng);
          if (!engine.categories().Has(v, c)) engine.AddVertexCategory(v, c);
          break;
        }
        case 3: {
          VertexId v = pick_vertex(rng);
          CategoryId c = pick_cat(rng);
          // Keep every category non-empty so KOSR queries stay comparable.
          if (engine.categories().Has(v, c) &&
              engine.categories().CategorySize(c) > 1) {
            engine.RemoveVertexCategory(v, c);
          }
          break;
        }
      }
      if (step % 8 == 7) ExpectMatchesRebuild(engine);
    }
    ExpectMatchesRebuild(engine);
  }
}

TEST(DynamicUpdateTest, RepeatedEdgeUpdatesDoNotGrowArcCount) {
  auto inst = testing::MakeRandomInstance(40, 140, 3, 7);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();

  uint64_t before = engine.graph().num_edges();
  engine.AddOrDecreaseEdge(3, 29, 60);
  uint64_t after_insert = engine.graph().num_edges();
  EXPECT_LE(after_insert, before + 1);  // at most one new arc, ever

  // Regression for the ToEdges/FromEdges append: 20 updates to the same
  // edge used to add 20 parallel arcs.
  for (Weight w = 59; w >= 40; --w) engine.AddOrDecreaseEdge(3, 29, w);
  EXPECT_EQ(engine.graph().num_edges(), after_insert);
  EXPECT_EQ(engine.graph().ArcWeight(3, 29), 40);

  // A worse weight is a no-op: no arc growth, no weight change.
  engine.AddOrDecreaseEdge(3, 29, 1000);
  EXPECT_EQ(engine.graph().num_edges(), after_insert);
  EXPECT_EQ(engine.graph().ArcWeight(3, 29), 40);

  // Self loops and out-of-range endpoints are rejected without mutation.
  engine.AddOrDecreaseEdge(5, 5, 1);
  EXPECT_EQ(engine.graph().num_edges(), after_insert);
  EXPECT_THROW(engine.AddOrDecreaseEdge(3, 4000, 1), std::invalid_argument);

  ExpectMatchesRebuild(engine);
}

// The full dynamic surface in one randomized stream: weight decreases,
// weight increases (SET_EDGE), deletions (REMOVE_EDGE), fresh inserts, and
// category churn, interleaved — checked label-for-label against canonical
// rebuilds along the way and at the end.
TEST(DynamicUpdateTest, MixedIncreaseDecreaseDeleteMatchesRebuild) {
  for (uint64_t seed : {3u, 14u, 59u}) {
    auto inst = testing::MakeRandomInstance(30, 110, 3, seed);
    KosrEngine engine(inst.graph, inst.categories);
    engine.BuildIndexes(testing::TestThreads());

    std::mt19937_64 rng(seed * 2654435761u);
    std::uniform_int_distribution<VertexId> pick_vertex(0, 29);
    std::uniform_int_distribution<Weight> pick_weight(1, 90);
    std::uniform_int_distribution<int> pick_op(0, 5);
    for (int step = 0; step < 30; ++step) {
      switch (pick_op(rng)) {
        case 0: {  // insert / decrease
          VertexId u = pick_vertex(rng), v = pick_vertex(rng);
          if (u != v) engine.AddOrDecreaseEdge(u, v, pick_weight(rng));
          break;
        }
        case 1: {  // arbitrary set: increase or decrease of a random pair
          VertexId u = pick_vertex(rng), v = pick_vertex(rng);
          if (u != v) engine.SetEdgeWeight(u, v, pick_weight(rng));
          break;
        }
        case 2: {  // guaranteed increase of an existing arc
          auto edges = engine.graph().ToEdges();
          auto [u, v, w] = edges[rng() % edges.size()];
          EdgeUpdateSummary summary =
              engine.SetEdgeWeight(u, v, w + 1 + pick_weight(rng));
          EXPECT_TRUE(summary.graph_changed);
          break;
        }
        case 3: {  // deletion of an existing arc
          auto edges = engine.graph().ToEdges();
          if (edges.size() <= 1) break;  // keep the graph non-trivial
          auto [u, v, w] = edges[rng() % edges.size()];
          EdgeUpdateSummary summary = engine.RemoveEdge(u, v);
          EXPECT_TRUE(summary.graph_changed);
          break;
        }
        case 4: {
          VertexId v = pick_vertex(rng);
          CategoryId c = static_cast<CategoryId>(rng() % 3);
          if (!engine.categories().Has(v, c)) engine.AddVertexCategory(v, c);
          break;
        }
        case 5: {
          VertexId v = pick_vertex(rng);
          CategoryId c = static_cast<CategoryId>(rng() % 3);
          if (engine.categories().Has(v, c) &&
              engine.categories().CategorySize(c) > 1) {
            engine.RemoveVertexCategory(v, c);
          }
          break;
        }
      }
      if (step % 10 == 9) ExpectMatchesRebuild(engine);
    }
    ExpectMatchesRebuild(engine);
  }
}

// A weight increase on an arc that lies on no shortest path (tight for no
// hub) must repair nothing — and because the hub order covers every vertex,
// an empty repair certifies that no distance changed at all. This is the
// signal the service uses to keep its result cache warm.
TEST(DynamicUpdateTest, OffShortestPathIncreaseRepairsNothing) {
  // Directed chain 0 -> 1 -> 2 -> 3 (unit weights) plus a detour arc
  // 0 -> 3 of weight 100 that no shortest path uses.
  Graph graph = Graph::FromEdges(
      4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 100}});
  CategoryTable cats(4, 1);
  cats.Add(2, 0);
  KosrEngine engine(std::move(graph), std::move(cats));
  engine.BuildIndexes();
  ASSERT_EQ(engine.labeling().Query(0, 3), 3);

  EdgeUpdateSummary summary = engine.SetEdgeWeight(0, 3, 200);
  EXPECT_TRUE(summary.graph_changed);
  EXPECT_FALSE(summary.labels_changed);
  EXPECT_EQ(summary.changed_in_labels, 0u);
  EXPECT_EQ(summary.changed_out_labels, 0u);
  EXPECT_EQ(engine.labeling().Query(0, 3), 3);
  ExpectMatchesRebuild(engine);

  // Raising it onto the shortest path *down* is a decrease repair; pushing
  // the chain's middle arc up makes the detour the new shortest path.
  summary = engine.SetEdgeWeight(1, 2, 500);
  EXPECT_TRUE(summary.labels_changed);
  EXPECT_EQ(engine.labeling().Query(0, 3), 200);
  ExpectMatchesRebuild(engine);
}

TEST(DynamicUpdateTest, RemovingBridgeDisconnectsAndMatchesRebuild) {
  // Two directed cycles joined by a single bridge arc 2 -> 3.
  Graph graph = Graph::FromEdges(6, {{0, 1, 2},
                                     {1, 2, 2},
                                     {2, 0, 2},
                                     {3, 4, 2},
                                     {4, 5, 2},
                                     {5, 3, 2},
                                     {2, 3, 7}});
  CategoryTable cats(6, 2);
  cats.Add(1, 0);
  cats.Add(4, 1);
  KosrEngine engine(std::move(graph), std::move(cats));
  engine.BuildIndexes();
  ASSERT_LT(engine.labeling().Query(0, 4), kInfCost);

  EdgeUpdateSummary summary = engine.RemoveEdge(2, 3);
  EXPECT_TRUE(summary.graph_changed);
  EXPECT_TRUE(summary.labels_changed);
  EXPECT_GE(engine.labeling().Query(0, 4), kInfCost);
  EXPECT_TRUE(engine.labeling().UnpackPath(0, 4).empty());
  ExpectMatchesRebuild(engine);

  // Removing it again is a no-op, as is removing a never-existing arc.
  summary = engine.RemoveEdge(2, 3);
  EXPECT_FALSE(summary.graph_changed);
  summary = engine.RemoveEdge(0, 5);
  EXPECT_FALSE(summary.graph_changed);
  EXPECT_THROW(engine.RemoveEdge(0, 4000), std::invalid_argument);
  EXPECT_THROW(engine.SetEdgeWeight(4000, 0, 1), std::invalid_argument);
  ExpectMatchesRebuild(engine);
}

TEST(DynamicUpdateTest, SetEdgeWeightRoundTripRestoresLabelsExactly) {
  auto inst = testing::MakeRandomInstance(28, 100, 3, 21);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  std::ostringstream before;
  engine.labeling().Serialize(before);

  // Raise a batch of existing arcs, then restore the original weights: the
  // repaired labels must return to the exact original bytes (canonicality
  // is a function of the graph + order only, not of update history).
  // SetEdgeWeight collapses parallel arcs, so operate on unique (u, v)
  // pairs at their effective minimum weight — the only thing labels see.
  std::vector<std::tuple<VertexId, VertexId, Weight>> targets;
  for (auto [u, v, w] : engine.graph().ToEdges()) {
    Cost min_w = engine.graph().ArcWeight(u, v);
    if (static_cast<Cost>(w) == min_w &&
        (targets.empty() || std::get<0>(targets.back()) != u ||
         std::get<1>(targets.back()) != v)) {
      targets.emplace_back(u, v, w);
    }
  }
  for (size_t i = 0; i < targets.size(); i += 7) {
    auto [u, v, w] = targets[i];
    engine.SetEdgeWeight(u, v, w + 50);
  }
  ExpectLabelsCanonical(engine);
  for (size_t i = 0; i < targets.size(); i += 7) {
    auto [u, v, w] = targets[i];
    engine.SetEdgeWeight(u, v, w);
  }
  std::ostringstream after;
  engine.labeling().Serialize(after);
  EXPECT_EQ(before.str(), after.str());
  ExpectMatchesRebuild(engine);
}

TEST(DynamicUpdateTest, NoOpEdgeUpdateLeavesAnswersIdentical) {
  auto inst = testing::MakeRandomInstance(30, 110, 3, 9);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  // Re-adding an existing arc at its current weight must change nothing.
  auto edges = engine.graph().ToEdges();
  auto [u, v, w] = edges.front();
  uint64_t arcs = engine.graph().num_edges();
  engine.AddOrDecreaseEdge(u, v, w);
  engine.AddOrDecreaseEdge(u, v, w + 10);
  EXPECT_EQ(engine.graph().num_edges(), arcs);
  EXPECT_EQ(engine.graph().ArcWeight(u, v), static_cast<Cost>(w));
  ExpectMatchesRebuild(engine);
}

}  // namespace
}  // namespace kosr
