// Parameterized property tests: for a sweep of random instances and query
// shapes, all three algorithms (under both NN backends) must agree with the
// brute-force reference, and structural invariants must hold.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/engine.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

struct PropertyCase {
  uint32_t n;
  uint64_t m;
  uint32_t num_categories;
  uint32_t seq_len;
  uint32_t k;
  uint64_t seed;
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << "n=" << c.n << " m=" << c.m << " cats=" << c.num_categories
      << " |C|=" << c.seq_len << " k=" << c.k << " seed=" << c.seed;
}

class KosrPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(KosrPropertyTest, AllMethodsMatchBruteForceAndInvariantsHold) {
  const PropertyCase& p = GetParam();
  auto inst = testing::MakeRandomInstance(p.n, p.m, p.num_categories, p.seed);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();

  std::mt19937_64 rng(p.seed * 7919 + 13);
  CategorySequence seq =
      RandomCategorySequence(inst.categories, p.seq_len, rng);
  std::uniform_int_distribution<VertexId> pick(0, p.n - 1);
  VertexId s = pick(rng), t = pick(rng);

  auto expected =
      testing::BruteForceTopK(inst.graph, inst.categories, s, t, seq, p.k);

  KosrQuery query{s, t, seq, p.k};
  struct Method {
    Algorithm algorithm;
    NnMode nn;
    const char* name;
  };
  const Method methods[] = {
      {Algorithm::kKpne, NnMode::kHopLabel, "KPNE"},
      {Algorithm::kPruning, NnMode::kHopLabel, "PK"},
      {Algorithm::kStar, NnMode::kHopLabel, "SK"},
      {Algorithm::kKpne, NnMode::kDijkstra, "KPNE-Dij"},
      {Algorithm::kPruning, NnMode::kDijkstra, "PK-Dij"},
      {Algorithm::kStar, NnMode::kDijkstra, "SK-Dij"},
  };

  for (const Method& m : methods) {
    KosrOptions options;
    options.algorithm = m.algorithm;
    options.nn_mode = m.nn;
    KosrResult result = engine.Query(query, options);

    std::vector<Cost> costs;
    for (const auto& r : result.routes) costs.push_back(r.cost);
    EXPECT_EQ(costs, expected) << m.name;

    // Invariants: sorted, feasible witnesses, distinct witnesses.
    EXPECT_TRUE(std::is_sorted(costs.begin(), costs.end())) << m.name;
    std::set<std::vector<VertexId>> witnesses;
    for (const auto& r : result.routes) {
      EXPECT_TRUE(testing::WitnessFeasible(inst.graph, inst.categories, s, t,
                                           seq, r.witness, r.cost))
          << m.name;
      EXPECT_TRUE(witnesses.insert(r.witness).second)
          << m.name << ": duplicate witness";
    }
    // StarKOSR legitimately examines nothing when t is unreachable from s
    // (the seed itself is filtered by an infinite estimate).
    if (!expected.empty()) {
      EXPECT_GT(result.stats.examined_routes, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KosrPropertyTest,
    ::testing::Values(
        // Vary graph size.
        PropertyCase{20, 80, 3, 2, 3, 1},
        PropertyCase{40, 200, 3, 2, 3, 2},
        PropertyCase{70, 400, 3, 2, 3, 3},
        // Vary sequence length.
        PropertyCase{40, 240, 6, 1, 4, 4},
        PropertyCase{40, 240, 6, 3, 4, 5},
        PropertyCase{40, 240, 6, 4, 4, 6},
        // Vary k.
        PropertyCase{35, 210, 4, 2, 1, 7},
        PropertyCase{35, 210, 4, 2, 8, 8},
        PropertyCase{35, 210, 4, 2, 20, 9},
        // Vary category count (bigger = smaller categories).
        PropertyCase{50, 300, 2, 2, 5, 10},
        PropertyCase{50, 300, 10, 3, 5, 11},
        // Sparse, likely-disconnected graphs.
        PropertyCase{60, 90, 4, 2, 4, 12},
        PropertyCase{60, 70, 4, 3, 4, 13},
        // Dense small graph.
        PropertyCase{15, 160, 3, 3, 10, 14},
        // More random seeds on a middle shape.
        PropertyCase{45, 260, 5, 3, 6, 15},
        PropertyCase{45, 260, 5, 3, 6, 16},
        PropertyCase{45, 260, 5, 3, 6, 17},
        PropertyCase{45, 260, 5, 3, 6, 18}));

// Property: on unit-weight graphs (the unweighted variant of Sec. IV-C),
// costs equal hop counts of the witness legs.
class UnweightedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnweightedPropertyTest, MethodsAgreeOnSmallWorld) {
  uint64_t seed = GetParam();
  Graph g = MakeSmallWorld(80, 2, 2.0, seed);
  CategoryTable cats(80, 4);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> pick(0, 3);
  for (VertexId v = 0; v < 80; ++v) cats.Add(v, pick(rng));
  KosrEngine engine(g, cats);
  engine.BuildIndexes();
  CategorySequence seq = {0, 2};
  auto expected = testing::BruteForceTopK(g, cats, 0, 79, seq, 5);
  KosrQuery query{0, 79, seq, 5};
  for (Algorithm algo :
       {Algorithm::kKpne, Algorithm::kPruning, Algorithm::kStar}) {
    KosrOptions options;
    options.algorithm = algo;
    std::vector<Cost> costs;
    for (const auto& r : engine.Query(query, options).routes) {
      costs.push_back(r.cost);
    }
    EXPECT_EQ(costs, expected) << static_cast<int>(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnweightedPropertyTest,
                         ::testing::Values(21u, 22u, 23u, 24u));

}  // namespace
}  // namespace kosr
