#include "src/core/batch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  BatchTest() {
    auto inst = testing::MakeRandomInstance(60, 320, 4, 4242);
    engine_ = std::make_unique<KosrEngine>(inst.graph, inst.categories);
    engine_->BuildIndexes();
    std::mt19937_64 rng(11);
    std::uniform_int_distribution<VertexId> pick(0, 59);
    for (int i = 0; i < 24; ++i) {
      KosrQuery q;
      q.source = pick(rng);
      q.target = pick(rng);
      q.sequence = RandomCategorySequence(engine_->categories(), 2, rng);
      q.k = 4;
      queries_.push_back(q);
    }
  }
  std::unique_ptr<KosrEngine> engine_;
  std::vector<KosrQuery> queries_;
};

TEST_F(BatchTest, ParallelMatchesSequential) {
  auto sequential = RunQueryBatch(*engine_, queries_, {}, 1);
  auto parallel = RunQueryBatch(*engine_, queries_, {}, 4);
  ASSERT_EQ(sequential.results.size(), parallel.results.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    const auto& a = sequential.results[i].routes;
    const auto& b = parallel.results[i].routes;
    ASSERT_EQ(a.size(), b.size()) << "query " << i;
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].cost, b[j].cost);
      EXPECT_EQ(a[j].witness, b[j].witness);
    }
  }
}

TEST_F(BatchTest, AggregateSumsQueryStats) {
  auto batch = RunQueryBatch(*engine_, queries_, {}, 2);
  uint64_t examined = 0;
  for (const auto& r : batch.results) examined += r.stats.examined_routes;
  EXPECT_EQ(batch.aggregate.examined_routes, examined);
  EXPECT_GE(batch.wall_seconds, 0.0);
  EXPECT_GT(batch.AvgQueryMillis(), 0.0);
}

TEST_F(BatchTest, DefaultThreadsRun) {
  auto batch = RunQueryBatch(*engine_, queries_);
  EXPECT_EQ(batch.results.size(), queries_.size());
}

TEST_F(BatchTest, EmptyBatch) {
  auto batch = RunQueryBatch(*engine_, {});
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.AvgQueryMillis(), 0.0);
}

TEST_F(BatchTest, ReportsLatencyPercentilesNotJustMean) {
  auto batch = RunQueryBatch(*engine_, queries_, {}, 2);
  EXPECT_EQ(batch.latencies.count(), queries_.size());
  EXPECT_GT(batch.P50QueryMillis(), 0.0);
  EXPECT_LE(batch.P50QueryMillis(), batch.P95QueryMillis());
  EXPECT_LE(batch.P95QueryMillis(), batch.P99QueryMillis());
  EXPECT_LE(batch.P99QueryMillis(), batch.latencies.MaxSeconds() * 1e3);
  // The mean lies between min and max of the same distribution.
  EXPECT_GE(batch.AvgQueryMillis(), batch.latencies.MinSeconds() * 1e3);
  EXPECT_LE(batch.AvgQueryMillis(), batch.latencies.MaxSeconds() * 1e3);
}

TEST_F(BatchTest, WorkerExceptionPropagates) {
  std::vector<KosrQuery> bad = queries_;
  bad[5].k = 0;  // invalid: engine throws
  EXPECT_THROW(RunQueryBatch(*engine_, bad, {}, 4), std::invalid_argument);
}

TEST_F(BatchTest, WorkerExceptionAbortsBatchPromptly) {
  // A poisoned query at the front (throws in validation, before any search
  // work) plus a 48-query tail. The reject-all filter makes each tail
  // query's work observable and bounded: the NN search consults the filter
  // once per member of the query's first category (~15 here) and then
  // gives up, and each call sleeps 1 ms — so the worker that draws the
  // poison is scheduled (and sets the shared stop flag) while the survivor
  // is still inside its first query. With the stop flag the survivor
  // abandons the tail after a query or two (~35 calls; the 400 threshold
  // tolerates the poison thread being descheduled for ~400 ms on a loaded
  // CI machine); without the flag the survivor drains all 48 tail queries
  // (measured ~3300 calls), which is what this threshold catches.
  std::atomic<uint64_t> filter_calls{0};
  KosrOptions options;
  options.filter = [&filter_calls](uint32_t, VertexId) {
    filter_calls.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return false;
  };
  std::vector<KosrQuery> bad;
  bad.push_back(queries_[0]);
  bad[0].k = 0;  // invalid: engine throws
  for (int copy = 0; copy < 2; ++copy) {
    bad.insert(bad.end(), queries_.begin(), queries_.end());
  }
  EXPECT_THROW(RunQueryBatch(*engine_, bad, options, 2),
               std::invalid_argument);
  EXPECT_LT(filter_calls.load(), 400u);
}

TEST_F(BatchTest, AllAlgorithmsAgreeUnderParallelism) {
  std::vector<std::vector<Cost>> per_algo;
  for (Algorithm algo :
       {Algorithm::kKpne, Algorithm::kPruning, Algorithm::kStar}) {
    KosrOptions options;
    options.algorithm = algo;
    auto batch = RunQueryBatch(*engine_, queries_, options, 4);
    std::vector<Cost> costs;
    for (const auto& r : batch.results) {
      for (const auto& route : r.routes) costs.push_back(route.cost);
    }
    per_algo.push_back(std::move(costs));
  }
  EXPECT_EQ(per_algo[0], per_algo[1]);
  EXPECT_EQ(per_algo[0], per_algo[2]);
}

}  // namespace
}  // namespace kosr
