#include "src/algo/gsp.h"

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

TEST(GspTest, Figure1OptimalRoute) {
  Figure1 fig = MakeFigure1();
  auto route = RunGsp(fig.graph, fig.categories,
                      {Figure1::MA, Figure1::RE, Figure1::CI}, Figure1::s,
                      Figure1::t);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->cost, 20);
  EXPECT_EQ(route->witness, (std::vector<VertexId>{Figure1::s, Figure1::a,
                                                   Figure1::b, Figure1::d,
                                                   Figure1::t}));
}

TEST(GspTest, MatchesKosrK1OnRandomInstances) {
  for (uint64_t seed : {300u, 301u, 302u, 303u, 304u}) {
    auto inst = testing::MakeRandomInstance(50, 280, 4, seed);
    KosrEngine engine(inst.graph, inst.categories);
    engine.BuildIndexes();
    CategorySequence seq = {1, 3, 0};
    KosrQuery query{4, 47, seq, 1};
    auto kosr = engine.Query(query);
    auto gsp = RunGsp(inst.graph, inst.categories, seq, 4, 47);
    if (kosr.routes.empty()) {
      EXPECT_FALSE(gsp.has_value()) << "seed=" << seed;
    } else {
      ASSERT_TRUE(gsp.has_value()) << "seed=" << seed;
      EXPECT_EQ(gsp->cost, kosr.routes[0].cost) << "seed=" << seed;
    }
  }
}

TEST(GspTest, WitnessIsFeasible) {
  auto inst = testing::MakeRandomInstance(40, 220, 3, 310);
  CategorySequence seq = {0, 1, 2};
  auto route = RunGsp(inst.graph, inst.categories, seq, 0, 39);
  if (route) {
    EXPECT_TRUE(testing::WitnessFeasible(inst.graph, inst.categories, 0, 39,
                                         seq, route->witness, route->cost));
  }
}

TEST(GspTest, UnreachableReturnsNullopt) {
  Graph g = Graph::FromEdges(4, {{0, 1, 1}, {2, 3, 1}});
  CategoryTable cats(4, 1);
  cats.Add(1, 0);
  auto route = RunGsp(g, cats, {0}, 0, 3);
  EXPECT_FALSE(route.has_value());
}

TEST(GspTest, EmptySequenceIsPlainShortestPath) {
  Figure1 fig = MakeFigure1();
  auto route = RunGsp(fig.graph, fig.categories, {}, Figure1::s, Figure1::t);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->cost, 17);  // dis(s, t) in Table IV
}

TEST(GspTest, StatsReportSettledVertices) {
  Figure1 fig = MakeFigure1();
  QueryStats stats;
  RunGsp(fig.graph, fig.categories, {Figure1::MA, Figure1::RE}, Figure1::s,
         Figure1::t, &stats);
  EXPECT_GT(stats.examined_routes, 0u);
  EXPECT_GE(stats.total_time_s, 0.0);
}

}  // namespace
}  // namespace kosr
