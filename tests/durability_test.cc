// Unit tests for the ISSUE 9 durability subsystem: CRC32C, the durable-file
// primitives, the write-ahead journal (round trip, torn tail, interior
// corruption), checkpoints (round trip, validation, fallback), recovery
// replay equivalence, and the failpoint registry.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/durability/checkpoint.h"
#include "src/durability/crc32c.h"
#include "src/durability/journal.h"
#include "src/durability/recovery.h"
#include "src/util/durable_file.h"
#include "src/util/failpoint.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

namespace fs = std::filesystem;
using durability::FsyncPolicy;
using durability::JournalRecord;
using durability::JournalScan;
using durability::UpdateJournal;

/// A scratch directory removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("kosr_durability_" + tag + "_" +
                std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string IndexBytes(const KosrEngine& engine) {
  std::ostringstream os;
  engine.SaveIndexes(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, KnownVectors) {
  // The CRC-32C (Castagnoli) check value for "123456789" — RFC 3720 App. B.
  EXPECT_EQ(durability::Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(durability::Crc32c("", 0), 0u);
  // 32 zero bytes, per the iSCSI test vectors.
  std::string zeros(32, '\0');
  EXPECT_EQ(durability::Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = durability::Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t first = durability::Crc32c(data.data(), split);
    uint32_t chained =
        durability::Crc32c(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chained, one_shot) << "split at " << split;
  }
}

// ---------------------------------------------------------------------------
// AtomicFileWriter

TEST(AtomicFileWriterTest, CommitPublishesAtomically) {
  ScratchDir dir("afw");
  std::string path = dir.path() + "/file.bin";
  WriteFile(path, "old contents");
  {
    AtomicFileWriter writer(path);
    writer.stream() << "new contents";
    // Not yet committed: the old file is untouched.
    EXPECT_EQ(ReadFile(path), "old contents");
    writer.Commit();
  }
  EXPECT_EQ(ReadFile(path), "new contents");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicFileWriterTest, UncommittedWriterLeavesTargetAlone) {
  ScratchDir dir("afw2");
  std::string path = dir.path() + "/file.bin";
  WriteFile(path, "old contents");
  {
    AtomicFileWriter writer(path);
    writer.stream() << "half-written garbage";
    // Destructor without Commit: discard.
  }
  EXPECT_EQ(ReadFile(path), "old contents");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// UpdateJournal

JournalRecord EdgeRec(JournalRecord::Type type, uint32_t a, uint32_t b,
                      uint32_t w) {
  JournalRecord r;
  r.type = type;
  r.a = a;
  r.b = b;
  r.w = w;
  return r;
}

TEST(JournalTest, RoundTripAndContiguousSequences) {
  ScratchDir dir("journal_rt");
  {
    UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 0);
    EXPECT_EQ(journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 1, 2, 3)),
              1u);
    EXPECT_EQ(
        journal.Append(EdgeRec(JournalRecord::Type::kRemoveEdge, 4, 5, 0)),
        2u);
    EXPECT_EQ(
        journal.Append(EdgeRec(JournalRecord::Type::kAddCategory, 6, 7, 0)),
        3u);
    EXPECT_EQ(journal.last_sequence(), 3u);
    EXPECT_EQ(journal.appends(), 3u);
  }
  JournalScan scan = UpdateJournal::Scan(UpdateJournal::PathFor(dir.path()));
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_FALSE(scan.tail_truncated);
  EXPECT_EQ(scan.records[0].seq, 1u);
  EXPECT_EQ(scan.records[0].type, JournalRecord::Type::kSetEdge);
  EXPECT_EQ(scan.records[0].a, 1u);
  EXPECT_EQ(scan.records[0].b, 2u);
  EXPECT_EQ(scan.records[0].w, 3u);
  EXPECT_EQ(scan.records[1].type, JournalRecord::Type::kRemoveEdge);
  EXPECT_EQ(scan.records[2].seq, 3u);
  EXPECT_EQ(scan.records[2].type, JournalRecord::Type::kAddCategory);

  // Reopen: sequences continue from the last record on disk.
  UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 0);
  EXPECT_EQ(journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 9, 9, 9)),
            4u);
}

TEST(JournalTest, BaseSeqFloorsTheSequenceCounter) {
  ScratchDir dir("journal_base");
  UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 41);
  EXPECT_EQ(journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 0, 1, 2)),
            42u);
}

TEST(JournalTest, MissingFileScansEmpty) {
  ScratchDir dir("journal_missing");
  JournalScan scan = UpdateJournal::Scan(dir.path() + "/journal.log");
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.tail_truncated);
}

TEST(JournalTest, TornTailIsTruncatedOnOpen) {
  ScratchDir dir("journal_torn");
  std::string path = UpdateJournal::PathFor(dir.path());
  {
    UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 0);
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 1, 1, 1));
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 2, 2, 2));
  }
  std::string bytes = ReadFile(path);
  // Chop the final record mid-body: crash between the two write pages.
  WriteFile(path, bytes.substr(0, bytes.size() - 5));
  JournalScan scan = UpdateJournal::Scan(path);
  EXPECT_TRUE(scan.tail_truncated);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 1u);

  // Opening repairs the file in place and appends continue after seq 1.
  UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 0);
  EXPECT_EQ(journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 3, 3, 3)),
            2u);
  JournalScan rescan = UpdateJournal::Scan(path);
  EXPECT_FALSE(rescan.tail_truncated);
  ASSERT_EQ(rescan.records.size(), 2u);
  EXPECT_EQ(rescan.records[1].a, 3u);
}

TEST(JournalTest, CorruptFinalRecordCountsAsTornTail) {
  // The very last complete frame failing its CRC is indistinguishable from
  // a torn write (length page persisted, body page lost) — tolerated.
  ScratchDir dir("journal_lastcrc");
  std::string path = UpdateJournal::PathFor(dir.path());
  {
    UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 0);
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 1, 1, 1));
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 2, 2, 2));
  }
  std::string bytes = ReadFile(path);
  bytes.back() ^= 0x01;  // Flip a bit in the FINAL record's body.
  WriteFile(path, bytes);
  JournalScan scan = UpdateJournal::Scan(path);
  EXPECT_TRUE(scan.tail_truncated);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST(JournalTest, InteriorBitFlipRefusesToOpen) {
  ScratchDir dir("journal_flip");
  std::string path = UpdateJournal::PathFor(dir.path());
  {
    UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 0);
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 1, 1, 1));
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 2, 2, 2));
  }
  std::string bytes = ReadFile(path);
  // Flip a bit inside the FIRST record's body (header is 8 bytes, frame
  // header 8 more; byte 20 is mid-body) — corruption with valid data after
  // it, which replay must refuse rather than skip.
  bytes[20] ^= 0x40;
  WriteFile(path, bytes);
  EXPECT_THROW(UpdateJournal::Scan(path), std::runtime_error);
  EXPECT_THROW(UpdateJournal(dir.path(), FsyncPolicy::kNever, 0, 0),
               std::runtime_error);
}

TEST(JournalTest, BadMagicRefusesToOpen) {
  ScratchDir dir("journal_magic");
  std::string path = UpdateJournal::PathFor(dir.path());
  WriteFile(path, "NOTAWAL1 some bytes beyond the header");
  EXPECT_THROW(UpdateJournal::Scan(path), std::runtime_error);
}

TEST(JournalTest, TruncateThroughKeepsNewerRecords) {
  ScratchDir dir("journal_trunc");
  UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 0);
  for (uint32_t i = 1; i <= 5; ++i) {
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, i, i, i));
  }
  journal.TruncateThrough(3);
  EXPECT_EQ(journal.truncations(), 1u);
  JournalScan scan = UpdateJournal::Scan(journal.path());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].seq, 4u);
  EXPECT_EQ(scan.records[1].seq, 5u);
  // Sequences keep counting from the pre-truncation high-water mark.
  EXPECT_EQ(journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 6, 6, 6)),
            6u);
}

TEST(JournalTest, SyncHonorsPolicy) {
  ScratchDir dir("journal_sync");
  {
    UpdateJournal journal(dir.path(), FsyncPolicy::kAlways, 0, 0);
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 1, 1, 1));
    journal.SyncIfAlways();
    EXPECT_GE(journal.fsyncs(), 1u);
    // Clean (not dirty): a second SyncIfAlways is a no-op.
    uint64_t before = journal.fsyncs();
    journal.SyncIfAlways();
    EXPECT_EQ(journal.fsyncs(), before);
  }
  UpdateJournal never(dir.path(), FsyncPolicy::kNever, 0, 0);
  never.Append(EdgeRec(JournalRecord::Type::kSetEdge, 2, 2, 2));
  never.SyncIfAlways();
  EXPECT_EQ(never.fsyncs(), 0u);
}

// ---------------------------------------------------------------------------
// Checkpoints

TEST(CheckpointTest, RoundTripRestoresEngineByteIdentically) {
  ScratchDir dir("ckpt_rt");
  auto inst = testing::MakeRandomInstance(60, 240, 4, 11);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  std::string want = IndexBytes(engine);

  durability::WriteCheckpoint(dir.path(), engine, 17);
  auto loaded = durability::LoadCheckpoint(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 17u);
  EXPECT_EQ(IndexBytes(*loaded->engine), want);
  EXPECT_EQ(loaded->engine->graph().num_vertices(),
            engine.graph().num_vertices());
}

TEST(CheckpointTest, MissingDirectoryIsColdStart) {
  ScratchDir dir("ckpt_cold");
  EXPECT_FALSE(durability::LoadCheckpoint(dir.path()).has_value());
}

TEST(CheckpointTest, CorruptIndexBytesRefuseToLoad) {
  ScratchDir dir("ckpt_flip");
  auto inst = testing::MakeRandomInstance(40, 160, 3, 5);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  durability::WriteCheckpoint(dir.path(), engine, 1);

  std::string index_path = dir.path() + "/checkpoint/indexes.bin";
  std::string bytes = ReadFile(index_path);
  bytes[bytes.size() / 2] ^= 0x10;
  WriteFile(index_path, bytes);
  EXPECT_THROW(durability::LoadCheckpoint(dir.path()), std::runtime_error);
}

TEST(CheckpointTest, TruncatedFileRefusesToLoad) {
  ScratchDir dir("ckpt_trunc");
  auto inst = testing::MakeRandomInstance(40, 160, 3, 6);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  durability::WriteCheckpoint(dir.path(), engine, 1);

  std::string graph_path = dir.path() + "/checkpoint/graph.gr";
  std::string bytes = ReadFile(graph_path);
  WriteFile(graph_path, bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(durability::LoadCheckpoint(dir.path()), std::runtime_error);
}

TEST(CheckpointTest, MissingManifestRefusesToLoad) {
  ScratchDir dir("ckpt_nomanifest");
  auto inst = testing::MakeRandomInstance(40, 160, 3, 7);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  durability::WriteCheckpoint(dir.path(), engine, 1);
  fs::remove(dir.path() + "/checkpoint/MANIFEST");
  EXPECT_THROW(durability::LoadCheckpoint(dir.path()), std::runtime_error);
}

TEST(CheckpointTest, FallsBackToParkedCheckpoint) {
  // A crash between parking checkpoint/ at checkpoint.old/ and renaming the
  // temp dir into place leaves only the parked copy — it must load.
  ScratchDir dir("ckpt_old");
  auto inst = testing::MakeRandomInstance(40, 160, 3, 8);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  durability::WriteCheckpoint(dir.path(), engine, 9);
  fs::rename(dir.path() + "/checkpoint", dir.path() + "/checkpoint.old");
  auto loaded = durability::LoadCheckpoint(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 9u);
}

TEST(CheckpointTest, SecondCheckpointReplacesFirst) {
  ScratchDir dir("ckpt_twice");
  auto inst = testing::MakeRandomInstance(40, 160, 3, 9);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  durability::WriteCheckpoint(dir.path(), engine, 1);

  EdgeUpdate update{EdgeUpdate::Kind::kSet, 0, 1, 5};
  engine.ApplyEdgeUpdates({&update, 1});
  durability::WriteCheckpoint(dir.path(), engine, 2);

  auto loaded = durability::LoadCheckpoint(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 2u);
  EXPECT_EQ(IndexBytes(*loaded->engine), IndexBytes(engine));
  EXPECT_FALSE(fs::exists(dir.path() + "/checkpoint.old"));
  EXPECT_FALSE(fs::exists(dir.path() + "/checkpoint.tmp"));
}

// ---------------------------------------------------------------------------
// Recovery

TEST(RecoveryTest, ReplayMatchesLiveApplicationByteForByte) {
  ScratchDir dir("recover_replay");
  auto inst = testing::MakeRandomInstance(60, 240, 4, 21);

  // Live engine: apply updates directly.
  KosrEngine live(inst.graph, inst.categories);
  live.BuildIndexes();
  std::vector<EdgeUpdate> updates = {
      {EdgeUpdate::Kind::kAddOrDecrease, 3, 40, 2},
      {EdgeUpdate::Kind::kSet, 10, 20, 7},
      {EdgeUpdate::Kind::kRemove, 5, 6, 0},
  };
  live.ApplyEdgeUpdates(updates);
  live.AddVertexCategory(12, 1);
  live.RemoveVertexCategory(12, 1);

  // Journal the same mutations (no checkpoint: cold start + full replay).
  {
    UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 0);
    journal.Append(EdgeRec(JournalRecord::Type::kAddOrDecreaseEdge, 3, 40, 2));
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 10, 20, 7));
    journal.Append(EdgeRec(JournalRecord::Type::kRemoveEdge, 5, 6, 0));
    journal.Append(EdgeRec(JournalRecord::Type::kAddCategory, 12, 1, 0));
    journal.Append(EdgeRec(JournalRecord::Type::kRemoveCategory, 12, 1, 0));
  }

  durability::RecoveryOptions options;
  options.dir = dir.path();
  options.fsync_policy = FsyncPolicy::kNever;
  bool seeded = false;
  auto recovered = durability::Recover(options, [&] {
    seeded = true;
    auto engine = std::make_unique<KosrEngine>(inst.graph, inst.categories);
    engine->BuildIndexes();
    return engine;
  });
  EXPECT_TRUE(seeded);
  EXPECT_FALSE(recovered.stats.checkpoint_loaded);
  EXPECT_EQ(recovered.stats.replayed_records, 5u);
  EXPECT_EQ(recovered.journal->last_sequence(), 5u);
  EXPECT_EQ(IndexBytes(*recovered.engine), IndexBytes(live));
}

TEST(RecoveryTest, CheckpointSkipsSeedAndReplaysOnlyNewerRecords) {
  ScratchDir dir("recover_ckpt");
  auto inst = testing::MakeRandomInstance(60, 240, 4, 22);
  KosrEngine live(inst.graph, inst.categories);
  live.BuildIndexes();

  // Records 1-2 are folded into the checkpoint; 3 is journal-only. Record 2
  // also stays in the journal (crash before truncation): replay must skip
  // it, not double-apply.
  std::vector<EdgeUpdate> first = {{EdgeUpdate::Kind::kSet, 1, 2, 9},
                                   {EdgeUpdate::Kind::kSet, 3, 4, 9}};
  live.ApplyEdgeUpdates(first);
  durability::WriteCheckpoint(dir.path(), live, 2);
  {
    UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 1);
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 3, 4, 9));   // seq 2
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 7, 8, 11));  // seq 3
  }
  EdgeUpdate third{EdgeUpdate::Kind::kSet, 7, 8, 11};
  live.ApplyEdgeUpdates({&third, 1});

  durability::RecoveryOptions options;
  options.dir = dir.path();
  options.fsync_policy = FsyncPolicy::kNever;
  auto recovered = durability::Recover(options, [&]() ->
                                       std::unique_ptr<KosrEngine> {
    ADD_FAILURE() << "seed_engine must not run when a checkpoint exists";
    return nullptr;
  });
  EXPECT_TRUE(recovered.stats.checkpoint_loaded);
  EXPECT_EQ(recovered.stats.checkpoint_seq, 2u);
  EXPECT_EQ(recovered.stats.skipped_records, 1u);
  EXPECT_EQ(recovered.stats.replayed_records, 1u);
  EXPECT_EQ(IndexBytes(*recovered.engine), IndexBytes(live));
}

TEST(RecoveryTest, SequenceGapAfterCheckpointRefuses) {
  ScratchDir dir("recover_gap");
  auto inst = testing::MakeRandomInstance(40, 160, 3, 23);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  durability::WriteCheckpoint(dir.path(), engine, 2);
  {
    // First journal record is seq 4: record 3 is missing — refusing beats
    // silently skipping an acked update.
    UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 3);
    journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 1, 2, 3));
  }
  durability::RecoveryOptions options;
  options.dir = dir.path();
  options.fsync_policy = FsyncPolicy::kNever;
  EXPECT_THROW(durability::Recover(
                   options, [&]() -> std::unique_ptr<KosrEngine> {
                     return nullptr;
                   }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Failpoints

TEST(FailpointTest, UnarmedPointIsANoOp) {
  failpoint::DisarmAll();
  KOSR_FAILPOINT("durability-test-point");
  EXPECT_EQ(failpoint::HitCount("durability-test-point"), 0u);
}

TEST(FailpointTest, ErrorActionThrowsAndCounts) {
  failpoint::Arm("durability-test-point", failpoint::Action::kError);
  EXPECT_THROW(KOSR_FAILPOINT("durability-test-point"), std::runtime_error);
  EXPECT_THROW(KOSR_FAILPOINT("durability-test-point"), std::runtime_error);
  EXPECT_EQ(failpoint::HitCount("durability-test-point"), 2u);
  // Other points stay unarmed.
  KOSR_FAILPOINT("durability-other-point");
  failpoint::DisarmAll();
  KOSR_FAILPOINT("durability-test-point");
  EXPECT_EQ(failpoint::HitCount("durability-test-point"), 2u);
}

TEST(FailpointTest, EnvSpecParses) {
  ::setenv("KOSR_FAILPOINTS", "durability-env-point=error", 1);
  failpoint::ReloadFromEnv();
  EXPECT_THROW(KOSR_FAILPOINT("durability-env-point"), std::runtime_error);
  ::setenv("KOSR_FAILPOINTS", "durability-env-point=off", 1);
  failpoint::ReloadFromEnv();
  KOSR_FAILPOINT("durability-env-point");
  ::setenv("KOSR_FAILPOINTS", "bogus-spec-without-equals", 1);
  EXPECT_THROW(failpoint::ReloadFromEnv(), std::invalid_argument);
  ::unsetenv("KOSR_FAILPOINTS");
  failpoint::DisarmAll();
}

TEST(FailpointDeathTest, CrashActionExitsWithCrashCode) {
  EXPECT_EXIT(
      {
        failpoint::Arm("durability-crash-point", failpoint::Action::kCrash);
        KOSR_FAILPOINT("durability-crash-point");
      },
      ::testing::ExitedWithCode(failpoint::kCrashExitCode), "failpoint");
}

// Armed failpoints on the real durability paths fire (the crash-recovery
// harness depends on them); kError is used here so the test process
// survives.
TEST(FailpointTest, JournalAppendFailpointFires) {
  ScratchDir dir("fp_journal");
  UpdateJournal journal(dir.path(), FsyncPolicy::kNever, 0, 0);
  failpoint::Arm(durability::kFailpointAfterAppend, failpoint::Action::kError);
  EXPECT_THROW(
      journal.Append(EdgeRec(JournalRecord::Type::kSetEdge, 1, 2, 3)),
      std::runtime_error);
  failpoint::DisarmAll();
  EXPECT_GE(failpoint::HitCount(durability::kFailpointAfterAppend), 1u);
  // The record was written before the failpoint: it is on disk.
  JournalScan scan = UpdateJournal::Scan(journal.path());
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST(FailpointTest, MidCheckpointFailpointLeavesPreviousCheckpoint) {
  ScratchDir dir("fp_ckpt");
  auto inst = testing::MakeRandomInstance(40, 160, 3, 31);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  durability::WriteCheckpoint(dir.path(), engine, 1);

  failpoint::Arm(durability::kFailpointMidCheckpoint,
                 failpoint::Action::kError);
  EXPECT_THROW(durability::WriteCheckpoint(dir.path(), engine, 2),
               std::runtime_error);
  failpoint::DisarmAll();

  auto loaded = durability::LoadCheckpoint(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 1u);
}

}  // namespace
}  // namespace kosr
