// Fine-grained checks against the paper's worked traces (Tables III-VI and
// Examples 2-6), beyond the end-to-end results: dominance and
// reconsideration counters, and the hub-label index behaviour the examples
// rely on.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/graph/generators.h"
#include "src/labeling/hub_labeling.h"

namespace kosr {
namespace {

class PaperTraceTest : public ::testing::Test {
 protected:
  PaperTraceTest()
      : fig_(MakeFigure1()), engine_(fig_.graph, fig_.categories) {
    engine_.BuildIndexes();
  }
  Figure1 fig_;
  KosrEngine engine_;
};

TEST_F(PaperTraceTest, PruningTraceCountersMatchTableIII) {
  // Table III, query (s, t, <MA,RE,CI>, 2): 13 examined witnesses, exactly
  // matching the paper's 13 steps. Dominated/reconsidered counters are 3/3
  // rather than the 2/2 visible in Table III's queue column: after the
  // released <s,a,e,d> re-claims the dominator slot at d (the same
  // re-claiming Table III(b) shows for <s,c,b> at b in step 10),
  // Algorithm 2's lines 14-19 dominate <s,c,b,d> at step 12, and the second
  // result's reconsideration releases it. (The paper's step-13 queue shows
  // <s,c,b,d,t> instead, which contradicts its own pseudocode; we follow
  // the pseudocode. Examined counts and results are unaffected.)
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 2};
  KosrOptions options;
  options.algorithm = Algorithm::kPruning;
  KosrResult result = engine_.Query(query, options);
  EXPECT_EQ(result.stats.examined_routes, 13u);
  EXPECT_EQ(result.stats.dominated_routes, 3u);
  EXPECT_EQ(result.stats.reconsidered_routes, 3u);
}

TEST_F(PaperTraceTest, StarTraceMatchesTableVI) {
  // Table VI: StarKOSR finds both routes in 9 steps, with no dominated
  // routes ("the first optimal sequenced route is found and no dominated
  // routes exist").
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 2};
  KosrOptions options;
  options.algorithm = Algorithm::kStar;
  KosrResult result = engine_.Query(query, options);
  EXPECT_EQ(result.stats.examined_routes, 9u);
  EXPECT_EQ(result.stats.dominated_routes, 0u);
  EXPECT_EQ(result.stats.reconsidered_routes, 0u);
}

TEST_F(PaperTraceTest, HubLabelQueriesMatchTableIVExamples) {
  // Example 3: dis(a, c) = 20 through matching label entries.
  const HubLabeling& hl = engine_.labeling();
  EXPECT_EQ(hl.Query(Figure1::a, Figure1::c), 20);
  // The distances used throughout Table III's costs.
  EXPECT_EQ(hl.Query(Figure1::s, Figure1::t), 17);
  EXPECT_EQ(hl.Query(Figure1::c, Figure1::e), 17);
  EXPECT_EQ(hl.Query(Figure1::b, Figure1::f), 27);
}

TEST_F(PaperTraceTest, EstimatedCostsOfTableVI) {
  // Table VI step 3: <s,a> has estimated cost 20, <s,c,b> has 22.
  const HubLabeling& hl = engine_.labeling();
  Cost est_sa = hl.Query(Figure1::s, Figure1::a) +
                hl.Query(Figure1::a, Figure1::t);
  EXPECT_EQ(est_sa, 20);
  Cost est_scb = hl.Query(Figure1::s, Figure1::c) +
                 hl.Query(Figure1::c, Figure1::b) +
                 hl.Query(Figure1::b, Figure1::t);
  EXPECT_EQ(est_scb, 22);
}

TEST_F(PaperTraceTest, FirstResultIdenticalAcrossK) {
  // The k-th result prefix property: enlarging k must not change earlier
  // results (the result set is a prefix of the full ranking).
  KosrQuery q1{Figure1::s, Figure1::t,
               {Figure1::MA, Figure1::RE, Figure1::CI}, 1};
  KosrQuery q3 = q1;
  q3.k = 3;
  for (Algorithm algo :
       {Algorithm::kKpne, Algorithm::kPruning, Algorithm::kStar}) {
    KosrOptions options;
    options.algorithm = algo;
    auto r1 = engine_.Query(q1, options);
    auto r3 = engine_.Query(q3, options);
    ASSERT_GE(r3.routes.size(), r1.routes.size());
    EXPECT_EQ(r1.routes[0].witness, r3.routes[0].witness);
    EXPECT_EQ(r1.routes[0].cost, r3.routes[0].cost);
  }
}

TEST_F(PaperTraceTest, ExaminedPerDepthBellShapeOnFigure1) {
  // Figure 5's qualitative property at toy scale: depth 0 examines exactly
  // one witness (the source).
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 2};
  KosrOptions options;
  options.algorithm = Algorithm::kStar;
  KosrResult result = engine_.Query(query, options);
  ASSERT_GE(result.stats.examined_per_depth.size(), 1u);
  EXPECT_EQ(result.stats.examined_per_depth[0], 1u);
  // Destination depth examines exactly the k found routes here.
  ASSERT_EQ(result.stats.examined_per_depth.size(), 5u);
  EXPECT_EQ(result.stats.examined_per_depth[4], 2u);
}

}  // namespace
}  // namespace kosr
