// Unit tests for the observability primitives (ISSUE 7): the exact
// mergeable LogHistogram (bucket boundaries, merge associativity, and a
// percentile-error bound against a sorted oracle), the engine counter
// slots and their Diff semantics, the per-query stage span buffer, the
// slow-query trace serialization, and the minimal JSON reader that the
// metrics surfaces are validated against.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/counters.h"
#include "src/obs/json_reader.h"
#include "src/obs/log_histogram.h"
#include "src/obs/trace.h"
#include "src/service/metrics.h"

namespace kosr::obs {
namespace {

// ---------------------------------------------------------------------------
// LogHistogram: bucket geometry.

TEST(LogHistogramBucketsTest, ValuesBelowTwoSubBucketsAreExact) {
  // The first 2 * kSubBuckets values get unit-width buckets: recording is
  // lossless there, which covers every sub-microsecond span exactly.
  for (uint64_t ns : {uint64_t{0}, uint64_t{1}, uint64_t{100}, uint64_t{255}}) {
    size_t index = LogHistogram::BucketIndex(ns);
    EXPECT_EQ(index, static_cast<size_t>(ns));
    EXPECT_EQ(LogHistogram::BucketLowerBoundNs(index), ns);
    EXPECT_EQ(LogHistogram::BucketWidthNs(index), 1u);
  }
}

TEST(LogHistogramBucketsTest, FirstLogarithmicBucketStartsAt256) {
  // 255 is the last exact bucket; 256 opens the first width-2 group.
  EXPECT_EQ(LogHistogram::BucketIndex(255), 255u);
  EXPECT_EQ(LogHistogram::BucketIndex(256), 256u);
  EXPECT_EQ(LogHistogram::BucketLowerBoundNs(256), 256u);
  EXPECT_EQ(LogHistogram::BucketWidthNs(256), 2u);
  // 257 shares 256's bucket (width 2), 258 starts the next one.
  EXPECT_EQ(LogHistogram::BucketIndex(257), 256u);
  EXPECT_EQ(LogHistogram::BucketIndex(258), 257u);
}

TEST(LogHistogramBucketsTest, BucketsTileTheRangeWithoutGaps) {
  // Every bucket's lower bound must be the previous bucket's lower bound
  // plus its width — no gaps, no overlaps, across all 4608 buckets.
  for (size_t i = 1; i < LogHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(LogHistogram::BucketLowerBoundNs(i),
              LogHistogram::BucketLowerBoundNs(i - 1) +
                  LogHistogram::BucketWidthNs(i - 1))
        << "gap at bucket " << i;
  }
}

TEST(LogHistogramBucketsTest, IndexIsConsistentWithBoundsEverywhere) {
  // Sweep values across the full tracked range (all powers of two and
  // their neighbours): BucketIndex must land the value inside the bucket's
  // [lower, lower + width) range, and the width must respect the 1/128
  // relative granularity that yields the <=1/256 midpoint error.
  std::vector<uint64_t> probes;
  for (uint32_t bit = 0; bit <= 42; ++bit) {
    uint64_t p = 1ull << bit;
    for (int64_t delta : {-1, 0, 1}) {
      if (delta < 0 && p == 0) continue;
      uint64_t ns = p + static_cast<uint64_t>(delta);
      probes.push_back(std::min(ns, LogHistogram::kMaxTrackableNs));
    }
  }
  for (uint64_t ns : probes) {
    size_t index = LogHistogram::BucketIndex(ns);
    ASSERT_LT(index, LogHistogram::kNumBuckets);
    uint64_t lower = LogHistogram::BucketLowerBoundNs(index);
    uint64_t width = LogHistogram::BucketWidthNs(index);
    EXPECT_GE(ns, lower) << "ns=" << ns;
    EXPECT_LT(ns, lower + width) << "ns=" << ns;
    // Midpoint error bound: half a bucket width relative to the value.
    EXPECT_LE(static_cast<double>(width - 1) / 2.0,
              std::max(1.0, static_cast<double>(ns) / 256.0))
        << "ns=" << ns;
  }
}

TEST(LogHistogramBucketsTest, TopBucketAbsorbsTheWholeTail) {
  EXPECT_EQ(LogHistogram::BucketIndex(LogHistogram::kMaxTrackableNs),
            LogHistogram::kNumBuckets - 1);
  // Values past the trackable ceiling clamp instead of indexing out of
  // range (a 73-minute query is still "the slowest bucket", not UB).
  EXPECT_EQ(LogHistogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            LogHistogram::kNumBuckets - 1);
}

// ---------------------------------------------------------------------------
// LogHistogram: recording and summary statistics.

TEST(LogHistogramTest, EmptyHistogramReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanSeconds(), 0.0);
  EXPECT_EQ(h.PercentileNs(50), 0u);
  EXPECT_EQ(h.PercentileNs(99), 0u);
}

TEST(LogHistogramTest, SingleValuePercentilesAreExact) {
  // The midpoint is clamped to [min, max], so a single sample reports
  // itself exactly at every percentile regardless of bucket width.
  LogHistogram h;
  h.RecordNs(123456789);
  for (double pct : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(h.PercentileNs(pct), 123456789u) << "pct=" << pct;
  }
  EXPECT_DOUBLE_EQ(h.MeanSeconds(), 123456789e-9);
}

TEST(LogHistogramTest, RecordSecondsClampsNegativesAndNan) {
  LogHistogram h;
  h.Record(-1.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.PercentileNs(100), 0u);
}

TEST(LogHistogramTest, ClearResetsEverything) {
  LogHistogram h;
  h.RecordNs(42);
  h.RecordNs(4200);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanSeconds(), 0.0);
  EXPECT_EQ(h.PercentileNs(50), 0u);
}

TEST(LogHistogramTest, MergeMatchesDirectRecordingAndIsAssociative) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<uint64_t> dist(0, 1ull << 36);
  LogHistogram a, b, c, all;
  for (int i = 0; i < 500; ++i) {
    uint64_t va = dist(rng), vb = dist(rng), vc = dist(rng);
    a.RecordNs(va);
    b.RecordNs(vb);
    c.RecordNs(vc);
    all.RecordNs(va);
    all.RecordNs(vb);
    all.RecordNs(vc);
  }
  // (a + b) + c
  LogHistogram left = a;
  left.Merge(b);
  left.Merge(c);
  // a + (b + c)
  LogHistogram right_tail = b;
  right_tail.Merge(c);
  LogHistogram right = a;
  right.Merge(right_tail);
  for (const LogHistogram* merged : {&left, &right}) {
    EXPECT_EQ(merged->count(), all.count());
    EXPECT_DOUBLE_EQ(merged->MinSeconds(), all.MinSeconds());
    EXPECT_DOUBLE_EQ(merged->MaxSeconds(), all.MaxSeconds());
    EXPECT_DOUBLE_EQ(merged->MeanSeconds(), all.MeanSeconds());
    for (double pct : {50.0, 95.0, 99.0, 100.0}) {
      EXPECT_EQ(merged->PercentileNs(pct), all.PercentileNs(pct))
          << "pct=" << pct;
    }
  }
}

TEST(LogHistogramTest, MergingAnEmptyHistogramIsANoOp) {
  LogHistogram h, empty;
  h.RecordNs(1000);
  LogHistogram before = h;
  h.Merge(empty);
  EXPECT_EQ(h.count(), before.count());
  EXPECT_EQ(h.PercentileNs(50), before.PercentileNs(50));
  // And merging *into* an empty one adopts the other's extremes.
  LogHistogram fresh;
  fresh.Merge(h);
  EXPECT_EQ(fresh.count(), 1u);
  EXPECT_EQ(fresh.PercentileNs(100), 1000u);
}

TEST(LogHistogramTest, PercentilesTrackASortedOracleAcrossNineDecades) {
  // Log-uniform samples spanning 1ns..1s (10^0..10^9): each reported
  // percentile must sit within the bucket's relative-error bound of the
  // exact nearest-rank value from the sorted sample vector.
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> log_ns(0.0, 9.0);
  LogHistogram h;
  std::vector<uint64_t> oracle;
  constexpr size_t kSamples = 20000;
  oracle.reserve(kSamples);
  for (size_t i = 0; i < kSamples; ++i) {
    uint64_t ns = static_cast<uint64_t>(std::pow(10.0, log_ns(rng)));
    h.RecordNs(ns);
    oracle.push_back(ns);
  }
  std::sort(oracle.begin(), oracle.end());
  for (double pct : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(pct / 100.0 * static_cast<double>(kSamples)));
    rank = std::clamp<uint64_t>(rank, 1, kSamples);
    uint64_t exact = oracle[rank - 1];
    uint64_t reported = h.PercentileNs(pct);
    // Reported value lies in the same bucket as the exact one, so the gap
    // is at most one bucket width: value/128 (+1 for integer rounding).
    double tolerance = static_cast<double>(exact) / 128.0 + 1.0;
    EXPECT_NEAR(static_cast<double>(reported), static_cast<double>(exact),
                tolerance)
        << "pct=" << pct;
  }
}

TEST(LogHistogramTest, SummaryJsonIsParseable) {
  LogHistogram h;
  h.Record(0.001);
  h.Record(0.020);
  h.Record(1.5);
  JsonValue v = ParseJson(h.SummaryJson());
  ASSERT_TRUE(v.IsObject());
  EXPECT_EQ(v.At("count").number, 3.0);
  EXPECT_GT(v.At("mean_ms").number, 0.0);
  EXPECT_GT(v.At("p50_ms").number, 0.0);
  EXPECT_GE(v.At("p99_ms").number, v.At("p50_ms").number);
  EXPECT_TRUE(v.At("p95_ms").IsNumber());
}

// ---------------------------------------------------------------------------
// Engine counters.

TEST(EngineCountersTest, AddAccumulatesAndMaxKeepsHighWater) {
  EngineCounters c;
  c.Add(Counter::kLabelQueries, 2);
  c.Add(Counter::kLabelQueries, 3);
  EXPECT_EQ(c.Get(Counter::kLabelQueries), 5u);
  c.Max(Counter::kScratchPeakWitnesses, 10);
  c.Max(Counter::kScratchPeakWitnesses, 4);  // lower: ignored
  EXPECT_EQ(c.Get(Counter::kScratchPeakWitnesses), 10u);
  c.Max(Counter::kScratchPeakWitnesses, 12);
  EXPECT_EQ(c.Get(Counter::kScratchPeakWitnesses), 12u);
}

TEST(EngineCountersTest, DiffSubtractsSumsAndPassesThroughMaxes) {
  EngineCounters before, after;
  before.Add(Counter::kMergeJoinCompares, 100);
  after.Add(Counter::kMergeJoinCompares, 175);
  before.Max(Counter::kScratchPeakWitnesses, 40);
  after.Max(Counter::kScratchPeakWitnesses, 40);  // unchanged high water
  EngineCounters delta = Diff(after, before);
  EXPECT_EQ(delta.Get(Counter::kMergeJoinCompares), 75u);
  // A high-water mark has no meaningful difference; the delta carries the
  // current value so registry max-merges stay correct.
  EXPECT_EQ(delta.Get(Counter::kScratchPeakWitnesses), 40u);
}

TEST(EngineCountersTest, CounterNamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (size_t i = 0; i < kNumCounters; ++i) {
    const char* name = CounterName(static_cast<Counter>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    // snake_case, JSON-key safe.
    for (char ch : std::string(name)) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_') << name;
    }
  }
  EXPECT_EQ(std::string(CounterName(Counter::kLabelQueries)),
            "label_queries");
  EXPECT_EQ(std::string(CounterName(Counter::kScratchPeakWitnesses)),
            "scratch_peak_witnesses");
}

TEST(EngineCountersTest, OnlyTheWitnessPeakIsAMaxCounter) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    Counter c = static_cast<Counter>(i);
    EXPECT_EQ(IsMaxCounter(c), c == Counter::kScratchPeakWitnesses);
  }
}

TEST(EngineCountersTest, CountMacroBumpsTheCallingThreadsSlots) {
  if (!Enabled()) GTEST_SKIP() << "KOSR_OBS_OFF=1 in the environment";
  EngineCounters before = TlsCounters();
  KOSR_COUNT(kGallopProbes, 7);
  KOSR_COUNT_MAX(kScratchPeakWitnesses,
                 before.Get(Counter::kScratchPeakWitnesses) + 5);
  EngineCounters delta = Diff(TlsCounters(), before);
  EXPECT_EQ(delta.Get(Counter::kGallopProbes), 7u);
  EXPECT_EQ(delta.Get(Counter::kScratchPeakWitnesses),
            before.Get(Counter::kScratchPeakWitnesses) + 5);
}

// ---------------------------------------------------------------------------
// Stage spans and slow-query traces.

TEST(StageTimesTest, SlotsDefaultToUnrecorded) {
  StageTimes t;
  for (size_t i = 0; i < kNumStages; ++i) {
    EXPECT_FALSE(t.Recorded(static_cast<Stage>(i)));
  }
  t.Set(Stage::kQueueWait, 0.0);  // zero duration still counts as recorded
  EXPECT_TRUE(t.Recorded(Stage::kQueueWait));
  t.Clear();
  EXPECT_FALSE(t.Recorded(Stage::kQueueWait));
}

TEST(StageTimesTest, StageNamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (size_t i = 0; i < kNumStages; ++i) {
    const char* name = StageName(static_cast<Stage>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(std::string(StageName(Stage::kQueueWait)), "queue_wait");
  EXPECT_EQ(std::string(StageName(Stage::kSerialize)), "serialize");
}

TEST(SlowQueryEntryTest, ToJsonParsesAndOmitsUnrecordedStages) {
  SlowQueryEntry entry;
  entry.method = "SK";
  entry.source = 3;
  entry.target = 9;
  entry.k = 4;
  entry.sequence_length = 2;
  entry.latency_s = 0.25;
  entry.timed_out = true;
  entry.stages.Set(Stage::kQueueWait, 0.01);
  entry.stages.Set(Stage::kSerialize, 0.002);
  JsonValue v = ParseJson(entry.ToJson());
  ASSERT_TRUE(v.IsObject());
  EXPECT_EQ(v.At("method").string, "SK");
  EXPECT_EQ(v.At("source").number, 3.0);
  EXPECT_EQ(v.At("target").number, 9.0);
  EXPECT_EQ(v.At("k").number, 4.0);
  EXPECT_EQ(v.At("sequence_length").number, 2.0);
  EXPECT_NEAR(v.At("latency_ms").number, 250.0, 1e-6);
  EXPECT_TRUE(v.At("timed_out").bool_value);
  EXPECT_FALSE(v.At("cache_hit").bool_value);
  const JsonValue& stages = v.At("stages");
  ASSERT_TRUE(stages.IsObject());
  EXPECT_NEAR(stages.At("queue_wait_ms").number, 10.0, 1e-6);
  EXPECT_NEAR(stages.At("serialize_ms").number, 2.0, 1e-6);
  // Unsampled engine stages stay out of the trace entirely.
  EXPECT_EQ(stages.Find("nn_ms"), nullptr);
  EXPECT_EQ(stages.Find("enumerate_ms"), nullptr);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot::ToJson round-trips through the reader.

TEST(MetricsSnapshotTest, ToJsonIsParseableAndComplete) {
  service::MetricsSnapshot snap;
  snap.uptime_s = 12.5;
  snap.submitted = 10;
  snap.completed = 8;
  snap.rejected = 1;
  snap.errors = 1;
  snap.qps = 8 / 12.5;
  snap.queue_depth = 3;
  snap.in_flight = 2;
  snap.per_method["SK"].Record(0.004);
  snap.per_method["PK-Dij"].Record(0.1);
  snap.stages[static_cast<size_t>(Stage::kQueueWait)].Record(0.001);
  for (size_t i = 0; i < kNumCounters; ++i) snap.counters[i] = 10 * (i + 1);
  SlowQueryEntry slow;
  slow.method = "SK";
  slow.latency_s = 1.0;
  slow.stages.Set(Stage::kQueueWait, 0.9);
  snap.slow_queries.push_back(slow);

  JsonValue v = ParseJson(snap.ToJson());
  ASSERT_TRUE(v.IsObject());
  EXPECT_EQ(v.At("submitted").number, 10.0);
  EXPECT_EQ(v.At("completed").number, 8.0);
  EXPECT_EQ(v.At("gauges").At("queue_depth").number, 3.0);
  EXPECT_EQ(v.At("gauges").At("in_flight").number, 2.0);
  EXPECT_TRUE(v.At("cache").At("hit_rate").IsNumber());
  EXPECT_EQ(v.At("methods").At("SK").At("count").number, 1.0);
  EXPECT_EQ(v.At("methods").At("PK-Dij").At("count").number, 1.0);
  // Every stage and every counter appears under its stable name.
  const JsonValue& stages = v.At("stages");
  for (size_t i = 0; i < kNumStages; ++i) {
    EXPECT_NE(stages.Find(StageName(static_cast<Stage>(i))), nullptr);
  }
  const JsonValue& counters = v.At("counters");
  for (size_t i = 0; i < kNumCounters; ++i) {
    EXPECT_EQ(counters.At(CounterName(static_cast<Counter>(i))).number,
              10.0 * (i + 1));
  }
  const JsonValue& slow_queries = v.At("slow_queries");
  ASSERT_TRUE(slow_queries.IsArray());
  ASSERT_EQ(slow_queries.items.size(), 1u);
  EXPECT_EQ(slow_queries.items[0].At("method").string, "SK");
}

// ---------------------------------------------------------------------------
// JSON reader.

TEST(JsonReaderTest, ParsesScalarsAndContainers) {
  JsonValue v = ParseJson(
      R"({"a": 1.5, "b": [true, false, null], "s": "x\ty", "neg": -2e3})");
  ASSERT_TRUE(v.IsObject());
  EXPECT_DOUBLE_EQ(v.At("a").number, 1.5);
  const JsonValue& b = v.At("b");
  ASSERT_TRUE(b.IsArray());
  ASSERT_EQ(b.items.size(), 3u);
  EXPECT_TRUE(b.items[0].bool_value);
  EXPECT_FALSE(b.items[1].bool_value);
  EXPECT_EQ(b.items[2].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.At("s").string, "x\ty");
  EXPECT_DOUBLE_EQ(v.At("neg").number, -2000.0);
}

TEST(JsonReaderTest, KeepsObjectKeysInDocumentOrder) {
  JsonValue v = ParseJson(R"({"z": 1, "a": 2})");
  ASSERT_EQ(v.members.size(), 2u);
  EXPECT_EQ(v.members[0].first, "z");
  EXPECT_EQ(v.members[1].first, "a");
}

TEST(JsonReaderTest, DecodesEscapesIncludingUnicode) {
  JsonValue v = ParseJson(R"("quote:\" slash:\\ u:\u0041 wide:\u20ac")");
  EXPECT_EQ(v.string, "quote:\" slash:\\ u:A wide:?");
}

TEST(JsonReaderTest, FindAndAtBehaveOnMissingKeys) {
  JsonValue v = ParseJson(R"({"present": 1})");
  EXPECT_NE(v.Find("present"), nullptr);
  EXPECT_EQ(v.Find("absent"), nullptr);
  EXPECT_THROW(v.At("absent"), std::runtime_error);
  // Find on a non-object is a nullptr, not a crash.
  EXPECT_EQ(v.At("present").Find("anything"), nullptr);
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
        "\"unterminated", "{\"a\":1,}", "[1 2]", "\"bad\\u12zz\"",
        "nan", "--1"}) {
    EXPECT_THROW(ParseJson(bad), std::runtime_error) << "input: " << bad;
  }
}

}  // namespace
}  // namespace kosr::obs
