#include "src/nn/find_nen.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.h"
#include "src/nn/dijkstra_nn.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

// Reference: members sorted by dis(v, u) + dis(u, t); members that cannot
// reach t excluded.
std::vector<Cost> BruteForceNenEstimates(const Graph& graph,
                                         const CategoryTable& cats,
                                         CategoryId c, VertexId v,
                                         VertexId t) {
  auto from_v = DijkstraAllDistances(graph, v);
  auto to_t = DijkstraAllDistances(graph, t, /*reverse=*/true);
  std::vector<Cost> ests;
  for (VertexId m : cats.Members(c)) {
    if (from_v[m] < kInfCost && to_t[m] < kInfCost) {
      ests.push_back(from_v[m] + to_t[m]);
    }
  }
  std::sort(ests.begin(), ests.end());
  return ests;
}

TEST(FindNenTest, Figure1Example6) {
  // Paper Example 6: for s in MA with destination t, the 1st nearest
  // estimated neighbor is c (8->12 for a = 20 vs 10->7 for c = 17), the 2nd
  // is a.
  Figure1 fig = MakeFigure1();
  HubLabeling hl;
  hl.Build(fig.graph);
  auto il = InvertedLabelIndex::Build(hl, fig.categories.Members(Figure1::MA));
  HopLabelNenProvider provider(&hl, {&il}, Figure1::t);
  QueryStats stats;
  auto first = provider.FindNEN(Figure1::s, 1, 1, &stats);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->vertex, Figure1::c);
  EXPECT_EQ(first->dist, 10);
  EXPECT_EQ(first->est, 17);
  auto second = provider.FindNEN(Figure1::s, 1, 2, &stats);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->vertex, Figure1::a);
  EXPECT_EQ(second->est, 20);
  EXPECT_FALSE(provider.FindNEN(Figure1::s, 1, 3, &stats).has_value());
}

TEST(FindNenTest, HopLabelMatchesBruteForce) {
  for (uint64_t seed : {4u, 5u, 6u}) {
    auto inst = testing::MakeRandomInstance(50, 220, 3, seed);
    HubLabeling hl;
    hl.Build(inst.graph);
    VertexId t = 41;
    for (CategoryId c = 0; c < 3; ++c) {
      auto il = InvertedLabelIndex::Build(hl, inst.categories.Members(c));
      HopLabelNenProvider provider(&hl, {&il}, t);
      for (VertexId v = 0; v < 50; v += 11) {
        auto expected =
            BruteForceNenEstimates(inst.graph, inst.categories, c, v, t);
        for (size_t x = 1; x <= expected.size(); ++x) {
          auto got = provider.FindNEN(v, 1, static_cast<uint32_t>(x), nullptr);
          ASSERT_TRUE(got.has_value())
              << "seed=" << seed << " c=" << c << " v=" << v << " x=" << x;
          EXPECT_EQ(got->est, expected[x - 1]);
        }
        EXPECT_FALSE(
            provider.FindNEN(v, 1, static_cast<uint32_t>(expected.size()) + 1,
                             nullptr)
                .has_value());
      }
    }
  }
}

TEST(FindNenTest, DijkstraBackendAgreesWithHopLabelBackend) {
  auto inst = testing::MakeRandomInstance(40, 170, 3, 8);
  HubLabeling hl;
  hl.Build(inst.graph);
  VertexId t = 33;
  CategorySequence seq = {0, 1};
  auto il0 = InvertedLabelIndex::Build(hl, inst.categories.Members(0));
  auto il1 = InvertedLabelIndex::Build(hl, inst.categories.Members(1));
  HopLabelNenProvider hop(&hl, {&il0, &il1}, t);
  DijkstraNenProvider dij(&inst.graph, &inst.categories, seq, t);
  for (VertexId v = 0; v < 40; v += 9) {
    for (uint32_t slot = 1; slot <= 2; ++slot) {
      for (uint32_t x = 1; x <= 5; ++x) {
        auto a = hop.FindNEN(v, slot, x, nullptr);
        auto b = dij.FindNEN(v, slot, x, nullptr);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
          EXPECT_EQ(a->est, b->est) << "v=" << v << " slot=" << slot;
          EXPECT_EQ(a->dist, b->dist);
        }
      }
    }
  }
}

TEST(FindNenTest, EstimateToTargetMatchesTrueDistance) {
  auto inst = testing::MakeRandomInstance(30, 140, 2, 10);
  HubLabeling hl;
  hl.Build(inst.graph);
  VertexId t = 22;
  auto il = InvertedLabelIndex::Build(hl, inst.categories.Members(0));
  HopLabelNenProvider provider(&hl, {&il}, t);
  auto to_t = DijkstraAllDistances(inst.graph, t, /*reverse=*/true);
  for (VertexId v = 0; v < 30; ++v) {
    EXPECT_EQ(provider.EstimateToTarget(v, nullptr), to_t[v]);
  }
}

TEST(FindNenTest, MembersUnableToReachTargetAreSkipped) {
  // 0 -> {1, 2}, 1 -> 3, but 2 is a dead end: NEN of 0 must only yield 1.
  Graph g = Graph::FromEdges(4, {{0, 1, 5}, {0, 2, 1}, {1, 3, 1}});
  CategoryTable cats(4, 1);
  cats.Add(1, 0);
  cats.Add(2, 0);
  HubLabeling hl;
  hl.Build(g);
  auto il = InvertedLabelIndex::Build(hl, cats.Members(0));
  HopLabelNenProvider provider(&hl, {&il}, /*target=*/3);
  auto first = provider.FindNEN(0, 1, 1, nullptr);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->vertex, 1u);
  EXPECT_EQ(first->est, 6);
  EXPECT_FALSE(provider.FindNEN(0, 1, 2, nullptr).has_value());
}

}  // namespace
}  // namespace kosr
