#include "src/graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/graph/generators.h"

namespace kosr {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kosr_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, DimacsRoundTrip) {
  Graph g = MakeGridRoadNetwork(6, 7, /*seed=*/5);
  SaveDimacsGraph(g, Path("g.gr"));
  Graph loaded = LoadDimacsGraph(Path("g.gr"));
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.ToEdges(), g.ToEdges());
}

TEST_F(IoTest, DimacsParsesCommentsAndOneBasedIds) {
  std::ofstream out(Path("tiny.gr"));
  out << "c tiny test graph\n"
      << "p sp 3 2\n"
      << "a 1 2 5\n"
      << "c interior comment\n"
      << "a 2 3 7\n";
  out.close();
  Graph g = LoadDimacsGraph(Path("tiny.gr"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.ArcWeight(0, 1), 5);
  EXPECT_EQ(g.ArcWeight(1, 2), 7);
}

TEST_F(IoTest, DimacsRejectsMalformedInput) {
  std::ofstream(Path("bad1.gr")) << "a 1 2 3\n";  // arc before problem line
  EXPECT_THROW(LoadDimacsGraph(Path("bad1.gr")), std::runtime_error);
  std::ofstream(Path("bad2.gr")) << "p sp 2 1\na 0 1 3\n";  // 0-based id
  EXPECT_THROW(LoadDimacsGraph(Path("bad2.gr")), std::runtime_error);
  EXPECT_THROW(LoadDimacsGraph(Path("missing.gr")), std::runtime_error);
}

TEST_F(IoTest, EdgeListRoundTrip) {
  std::ofstream out(Path("edges.txt"));
  out << "# comment\n0 1 10\n1 2 20\n2 0 30\n";
  out.close();
  Graph g = LoadEdgeList(Path("edges.txt"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.ArcWeight(2, 0), 30);
}

TEST_F(IoTest, CategoriesRoundTrip) {
  CategoryTable table(10, 4);
  table.Add(0, 1);
  table.Add(0, 2);  // multi-category vertex
  table.Add(5, 3);
  SaveCategories(table, Path("cats.txt"));
  CategoryTable loaded = LoadCategories(Path("cats.txt"), 10, 4);
  EXPECT_TRUE(loaded.Has(0, 1));
  EXPECT_TRUE(loaded.Has(0, 2));
  EXPECT_TRUE(loaded.Has(5, 3));
  EXPECT_EQ(loaded.CategorySize(3), 1u);
}

TEST_F(IoTest, CategoriesRejectOutOfRange) {
  std::ofstream(Path("bad_cats.txt")) << "11 0\n";
  EXPECT_THROW(LoadCategories(Path("bad_cats.txt"), 10, 4),
               std::runtime_error);
}

}  // namespace
}  // namespace kosr
