#include "src/core/engine.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

TEST(EngineTest, RejectsMismatchedUniverse) {
  Graph g = MakeRandomGraph(10, 20, 1);
  CategoryTable cats(5, 2);
  EXPECT_THROW(KosrEngine(g, cats), std::invalid_argument);
}

TEST(EngineTest, HopLabelQueriesRequireIndexes) {
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  KosrQuery query{Figure1::s, Figure1::t, {Figure1::MA}, 1};
  EXPECT_THROW(engine.Query(query), std::logic_error);
  // Dijkstra mode works without indexes.
  KosrOptions options;
  options.nn_mode = NnMode::kDijkstra;
  EXPECT_EQ(engine.Query(query, options).routes.size(), 1u);
}

TEST(EngineTest, ValidatesQueries) {
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  KosrQuery bad_k{Figure1::s, Figure1::t, {Figure1::MA}, 0};
  EXPECT_THROW(engine.Query(bad_k), std::invalid_argument);
  KosrQuery bad_cat{Figure1::s, Figure1::t, {42}, 1};
  EXPECT_THROW(engine.Query(bad_cat), std::invalid_argument);
  KosrQuery no_source{kInvalidVertex, Figure1::t, {Figure1::MA}, 1};
  EXPECT_THROW(engine.Query(no_source), std::invalid_argument);
}

TEST(EngineTest, ReconstructedPathsAreRealRoutes) {
  auto inst = testing::MakeRandomInstance(50, 260, 3, 55);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  KosrQuery query{3, 46, {0, 1, 2}, 3};
  KosrOptions options;
  options.reconstruct_paths = true;
  KosrResult result = engine.Query(query, options);
  for (const auto& route : result.routes) {
    ASSERT_FALSE(route.path.empty());
    EXPECT_EQ(route.path.front(), 3u);
    EXPECT_EQ(route.path.back(), 46u);
    // Consecutive path vertices are connected, and the path's real edge cost
    // equals the route cost.
    Cost total = 0;
    for (size_t i = 0; i + 1 < route.path.size(); ++i) {
      Cost w = inst.graph.ArcWeight(route.path[i], route.path[i + 1]);
      ASSERT_LT(w, kInfCost);
      total += w;
    }
    EXPECT_EQ(total, route.cost);
    // The witness is a subsequence of the path.
    size_t pos = 0;
    for (VertexId w : route.witness) {
      while (pos < route.path.size() && route.path[pos] != w) ++pos;
      ASSERT_LT(pos, route.path.size()) << "witness vertex missing from path";
    }
  }
}

TEST(EngineTest, QuickstartShapedUsage) {
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  EXPECT_TRUE(engine.indexes_built());
  EXPECT_GE(engine.label_build_seconds(), 0.0);
  EXPECT_GE(engine.inverted_build_seconds(), 0.0);
  KosrResult r = engine.Query(
      {Figure1::s, Figure1::t, {Figure1::MA, Figure1::RE, Figure1::CI}, 3});
  ASSERT_EQ(r.routes.size(), 3u);
  EXPECT_EQ(r.routes[0].cost, 20);
}

TEST(EngineTest, BuildWithExplicitOrder) {
  auto inst = testing::MakeRandomInstance(30, 130, 2, 66);
  KosrEngine engine(inst.graph, inst.categories);
  std::vector<VertexId> order(30);
  for (VertexId v = 0; v < 30; ++v) order[v] = 29 - v;
  engine.BuildIndexes(order);
  KosrQuery query{0, 29, {0, 1}, 2};
  auto expected = testing::BruteForceTopK(inst.graph, inst.categories, 0, 29,
                                          {0, 1}, 2);
  std::vector<Cost> got;
  for (const auto& r : engine.Query(query).routes) got.push_back(r.cost);
  EXPECT_EQ(got, expected);
}

TEST(EngineTest, GspThroughEngine) {
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  auto route = engine.QueryGsp(Figure1::s, Figure1::t,
                               {Figure1::MA, Figure1::RE, Figure1::CI});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->cost, 20);
}

TEST(EngineTest, SaveAndLoadIndexes) {
  auto inst = testing::MakeRandomInstance(40, 200, 3, 91);
  KosrEngine built(inst.graph, inst.categories);
  built.BuildIndexes();
  std::stringstream snapshot;
  built.SaveIndexes(snapshot);

  KosrEngine loaded(inst.graph, inst.categories);
  loaded.LoadIndexes(snapshot);
  EXPECT_TRUE(loaded.indexes_built());

  KosrQuery query{0, 39, {0, 1, 2}, 4};
  auto a = built.Query(query);
  auto b = loaded.Query(query);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].cost, b.routes[i].cost);
    EXPECT_EQ(a.routes[i].witness, b.routes[i].witness);
  }
}

TEST(EngineTest, ThreadedBuildAnswersIdentically) {
  auto inst = testing::MakeRandomInstance(40, 200, 3, 94);
  KosrEngine sequential(inst.graph, inst.categories);
  sequential.BuildIndexes(1);
  KosrEngine threaded(inst.graph, inst.categories);
  threaded.BuildIndexes(testing::TestThreads());

  // Identical snapshots is the strongest equivalence the engine can state:
  // it covers the labeling (order, every entry) and all inverted indexes.
  std::stringstream a, b;
  sequential.SaveIndexes(a);
  threaded.SaveIndexes(b);
  EXPECT_EQ(a.str(), b.str());

  KosrQuery query{0, 39, {0, 1, 2}, 4};
  auto ra = sequential.Query(query);
  auto rb = threaded.Query(query);
  ASSERT_EQ(ra.routes.size(), rb.routes.size());
  for (size_t i = 0; i < ra.routes.size(); ++i) {
    EXPECT_EQ(ra.routes[i].cost, rb.routes[i].cost);
    EXPECT_EQ(ra.routes[i].witness, rb.routes[i].witness);
  }
}

TEST(EngineTest, LoadIndexesRejectsCorruptSnapshot) {
  auto inst = testing::MakeRandomInstance(30, 140, 3, 95);
  KosrEngine built(inst.graph, inst.categories);
  built.BuildIndexes();
  std::stringstream snapshot;
  built.SaveIndexes(snapshot);
  std::string bytes = snapshot.str();

  {  // Absurd claimed vertex count: rejected before the O(n) allocations.
    std::string corrupt = bytes;
    uint32_t huge = 0x7fffffff;
    corrupt.replace(8, 4, reinterpret_cast<const char*>(&huge), 4);
    KosrEngine engine(inst.graph, inst.categories);
    std::stringstream in(corrupt);
    EXPECT_THROW(engine.LoadIndexes(in), std::runtime_error);
  }
  {  // Out-of-range hub order value: used to write rank_ out of bounds.
    std::string corrupt = bytes;
    uint32_t bogus = 4000000;
    corrupt.replace(12, 4, reinterpret_cast<const char*>(&bogus), 4);
    KosrEngine engine(inst.graph, inst.categories);
    std::stringstream in(corrupt);
    EXPECT_THROW(engine.LoadIndexes(in), std::runtime_error);
  }
  {  // Truncations anywhere in the stream.
    for (size_t len : {4ul, 40ul, bytes.size() / 2, bytes.size() - 3}) {
      KosrEngine engine(inst.graph, inst.categories);
      std::stringstream in(bytes.substr(0, len));
      EXPECT_THROW(engine.LoadIndexes(in), std::runtime_error) << len;
    }
  }
}

TEST(EngineTest, LoadIndexesRejectsMismatch) {
  auto inst = testing::MakeRandomInstance(40, 200, 3, 92);
  KosrEngine built(inst.graph, inst.categories);
  built.BuildIndexes();
  std::stringstream snapshot;
  built.SaveIndexes(snapshot);

  auto other = testing::MakeRandomInstance(50, 250, 3, 93);
  KosrEngine wrong(other.graph, other.categories);
  EXPECT_THROW(wrong.LoadIndexes(snapshot), std::runtime_error);

  KosrEngine unbuilt(inst.graph, inst.categories);
  std::stringstream empty;
  EXPECT_THROW(unbuilt.SaveIndexes(empty), std::logic_error);
}

TEST(EngineDynamicTest, CategoryAddChangesAnswers) {
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  // Initially the best <RE> route s->b->t costs 13 + 7 = 20.
  KosrQuery query{Figure1::s, Figure1::t, {Figure1::RE}, 1};
  EXPECT_EQ(engine.Query(query).routes[0].cost, 20);
  // Promote a (dis(s,a)=8, dis(a,t)=12) into RE: cost still 20.
  engine.AddVertexCategory(Figure1::a, Figure1::RE);
  EXPECT_EQ(engine.Query(query).routes[0].cost, 20);
  // Promote d (13 + 4 = 17): better.
  engine.AddVertexCategory(Figure1::d, Figure1::RE);
  EXPECT_EQ(engine.Query(query).routes[0].cost, 17);
  // Remove d again.
  engine.RemoveVertexCategory(Figure1::d, Figure1::RE);
  EXPECT_EQ(engine.Query(query).routes[0].cost, 20);
}

TEST(EngineDynamicTest, CategoryUpdatesMatchRebuiltEngine) {
  auto inst = testing::MakeRandomInstance(40, 200, 3, 67);
  KosrEngine dynamic(inst.graph, inst.categories);
  dynamic.BuildIndexes();
  // Apply a batch of category mutations dynamically.
  std::vector<std::pair<VertexId, CategoryId>> added = {
      {5, 1}, {6, 1}, {7, 2}, {8, 0}};
  for (auto [v, c] : added) dynamic.AddVertexCategory(v, c);
  dynamic.RemoveVertexCategory(added[0].first, added[0].second);

  // Rebuild a fresh engine with the same final table.
  KosrEngine fresh(dynamic.graph(), dynamic.categories());
  fresh.BuildIndexes();

  KosrQuery query{0, 39, {0, 1, 2}, 4};
  auto a = dynamic.Query(query);
  auto b = fresh.Query(query);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].cost, b.routes[i].cost);
  }
}

TEST(EngineDynamicTest, EdgeDecreaseMatchesRebuiltEngine) {
  auto inst = testing::MakeRandomInstance(35, 160, 3, 68);
  KosrEngine dynamic(inst.graph, inst.categories);
  dynamic.BuildIndexes();
  dynamic.AddOrDecreaseEdge(2, 31, 1);
  dynamic.AddOrDecreaseEdge(17, 4, 2);

  KosrEngine fresh(dynamic.graph(), dynamic.categories());
  fresh.BuildIndexes();
  KosrQuery query{0, 34, {0, 1}, 3};
  auto a = dynamic.Query(query);
  auto b = fresh.Query(query);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].cost, b.routes[i].cost);
  }
}

}  // namespace
}  // namespace kosr
