// Medium-scale cross-validation on bench-shaped workloads (no brute force:
// the methods validate each other, which is also how the paper argues
// correctness of PK/SK against KPNE in Sec. V-B).

#include <gtest/gtest.h>

#include <random>

#include "src/core/engine.h"
#include "src/graph/generators.h"

namespace kosr {
namespace {

class GridStressTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kSide = 40;

  GridStressTest() {
    Graph graph = MakeGridRoadNetwork(kSide, kSide, /*seed=*/777);
    CategoryTable cats =
        CategoryTable::Uniform(graph.num_vertices(), 40, /*seed=*/778);
    engine_ = std::make_unique<KosrEngine>(std::move(graph), std::move(cats));
    engine_->BuildIndexes(GridDissectionOrder(kSide, kSide));
  }

  std::unique_ptr<KosrEngine> engine_;
};

TEST_F(GridStressTest, MethodsAgreeOnManyRandomQueries) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<VertexId> pick(0, kSide * kSide - 1);
  uint64_t kpne_total = 0, pk_total = 0, sk_total = 0;
  for (int round = 0; round < 12; ++round) {
    KosrQuery query;
    query.source = pick(rng);
    query.target = pick(rng);
    query.sequence =
        RandomCategorySequence(engine_->categories(), 2 + round % 4, rng);
    query.k = 1 + round * 2;

    KosrOptions kpne_opt, pk_opt, sk_opt;
    kpne_opt.algorithm = Algorithm::kKpne;
    pk_opt.algorithm = Algorithm::kPruning;
    sk_opt.algorithm = Algorithm::kStar;

    auto kpne = engine_->Query(query, kpne_opt);
    auto pk = engine_->Query(query, pk_opt);
    auto sk = engine_->Query(query, sk_opt);

    ASSERT_EQ(pk.routes.size(), kpne.routes.size()) << "round " << round;
    ASSERT_EQ(sk.routes.size(), kpne.routes.size()) << "round " << round;
    for (size_t i = 0; i < kpne.routes.size(); ++i) {
      EXPECT_EQ(pk.routes[i].cost, kpne.routes[i].cost)
          << "round " << round << " i=" << i;
      EXPECT_EQ(sk.routes[i].cost, kpne.routes[i].cost)
          << "round " << round << " i=" << i;
    }
    // Per query, PK can examine a handful more witnesses than KPNE because
    // released dominated routes are examined twice (parked, then re-popped
    // after a result). The bound that must hold per query includes that
    // re-examination allowance.
    EXPECT_LE(pk.stats.examined_routes,
              kpne.stats.examined_routes + pk.stats.reconsidered_routes +
                  pk.stats.dominated_routes);
    kpne_total += kpne.stats.examined_routes;
    pk_total += pk.stats.examined_routes;
    sk_total += sk.stats.examined_routes;
  }
  // In aggregate the paper's search-space ordering SK < PK <= KPNE holds.
  EXPECT_LE(pk_total, kpne_total);
  EXPECT_LT(sk_total, pk_total);
  EXPECT_LT(sk_total, kpne_total);
}

TEST_F(GridStressTest, PathReconstructionOnGrid) {
  std::mt19937_64 rng(123);
  std::uniform_int_distribution<VertexId> pick(0, kSide * kSide - 1);
  KosrQuery query;
  query.source = pick(rng);
  query.target = pick(rng);
  query.sequence = RandomCategorySequence(engine_->categories(), 3, rng);
  query.k = 5;
  KosrOptions options;
  options.reconstruct_paths = true;
  auto result = engine_->Query(query, options);
  ASSERT_FALSE(result.routes.empty());
  for (const auto& route : result.routes) {
    Cost total = 0;
    for (size_t i = 0; i + 1 < route.path.size(); ++i) {
      Cost w = engine_->graph().ArcWeight(route.path[i], route.path[i + 1]);
      ASSERT_LT(w, kInfCost);
      total += w;
    }
    EXPECT_EQ(total, route.cost);
  }
}

TEST_F(GridStressTest, DeepSequenceLargeK) {
  std::mt19937_64 rng(321);
  KosrQuery query;
  query.source = 0;
  query.target = kSide * kSide - 1;
  query.sequence = RandomCategorySequence(engine_->categories(), 8, rng);
  query.k = 50;
  KosrOptions pk_opt, sk_opt;
  pk_opt.algorithm = Algorithm::kPruning;
  sk_opt.algorithm = Algorithm::kStar;
  auto pk = engine_->Query(query, pk_opt);
  auto sk = engine_->Query(query, sk_opt);
  ASSERT_EQ(pk.routes.size(), sk.routes.size());
  ASSERT_EQ(pk.routes.size(), 50u);
  for (size_t i = 0; i < pk.routes.size(); ++i) {
    EXPECT_EQ(pk.routes[i].cost, sk.routes[i].cost);
  }
}

TEST_F(GridStressTest, DissectionOrderIsPermutation) {
  auto order = GridDissectionOrder(kSide, kSide);
  ASSERT_EQ(order.size(), static_cast<size_t>(kSide) * kSide);
  std::vector<bool> seen(order.size(), false);
  for (VertexId v : order) {
    ASSERT_LT(v, order.size());
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  // The first vertex is on the top-level separator (middle row or column).
  uint32_t mid = kSide / 2;
  EXPECT_EQ(order[0] / kSide, mid);
}

TEST_F(GridStressTest, DissectionOrderBeatsDegreeOrderOnLabels) {
  Graph graph = MakeGridRoadNetwork(24, 24, /*seed=*/5);
  HubLabeling dissection, degree;
  dissection.Build(graph, GridDissectionOrder(24, 24));
  degree.Build(graph);
  EXPECT_LT(dissection.AvgInLabelSize(), degree.AvgInLabelSize());
}

class SmallWorldStressTest : public ::testing::Test {
 protected:
  SmallWorldStressTest() {
    Graph graph = MakeSmallWorld(600, 2, 4.0, /*seed=*/888);
    CategoryTable cats =
        CategoryTable::Uniform(graph.num_vertices(), 30, /*seed=*/889);
    engine_ = std::make_unique<KosrEngine>(std::move(graph), std::move(cats));
    engine_->BuildIndexes();
  }
  std::unique_ptr<KosrEngine> engine_;
};

TEST_F(SmallWorldStressTest, UnitWeightAgreementAcrossMethods) {
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<VertexId> pick(0, 599);
  for (int round = 0; round < 6; ++round) {
    KosrQuery query;
    query.source = pick(rng);
    query.target = pick(rng);
    query.sequence = RandomCategorySequence(engine_->categories(), 3, rng);
    query.k = 10;
    std::vector<std::vector<Cost>> all;
    for (Algorithm algo :
         {Algorithm::kKpne, Algorithm::kPruning, Algorithm::kStar}) {
      KosrOptions options;
      options.algorithm = algo;
      std::vector<Cost> costs;
      for (const auto& r : engine_->Query(query, options).routes) {
        costs.push_back(r.cost);
      }
      all.push_back(std::move(costs));
    }
    EXPECT_EQ(all[0], all[1]) << "round " << round;
    EXPECT_EQ(all[0], all[2]) << "round " << round;
  }
}

}  // namespace
}  // namespace kosr
