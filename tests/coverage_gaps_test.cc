// Cross-cutting combinations not covered by the per-module suites:
// variants under the Dijkstra NN backend, disk-resident queries with
// preference filters, GSP corner cases, and option plumbing.

#include <gtest/gtest.h>

#include <filesystem>
#include <random>

#include "src/algo/gsp.h"
#include "src/core/variants.h"
#include "src/graph/generators.h"
#include "src/labeling/disk_store.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

std::vector<Cost> Costs(const KosrResult& r) {
  std::vector<Cost> out;
  for (const auto& route : r.routes) out.push_back(route.cost);
  return out;
}

TEST(VariantBackendTest, NoSourceDijkstraMatchesHopLabel) {
  auto inst = testing::MakeRandomInstance(40, 220, 4, 700);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  CategorySequence seq = {0, 3};
  for (Algorithm algo :
       {Algorithm::kKpne, Algorithm::kPruning, Algorithm::kStar}) {
    KosrOptions hop, dij;
    hop.algorithm = dij.algorithm = algo;
    dij.nn_mode = NnMode::kDijkstra;
    auto a = QueryNoSource(engine, 35, seq, 5, hop);
    auto b = QueryNoSource(engine, 35, seq, 5, dij);
    EXPECT_EQ(Costs(a), Costs(b)) << static_cast<int>(algo);
  }
}

TEST(VariantBackendTest, NoDestinationDijkstraMatchesHopLabel) {
  auto inst = testing::MakeRandomInstance(40, 220, 4, 701);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  CategorySequence seq = {1, 2};
  for (Algorithm algo : {Algorithm::kKpne, Algorithm::kPruning}) {
    KosrOptions hop, dij;
    hop.algorithm = dij.algorithm = algo;
    dij.nn_mode = NnMode::kDijkstra;
    auto a = QueryNoDestination(engine, 3, seq, 5, hop);
    auto b = QueryNoDestination(engine, 3, seq, 5, dij);
    EXPECT_EQ(Costs(a), Costs(b)) << static_cast<int>(algo);
  }
}

TEST(VariantBackendTest, NoSourceFilterAppliesToSeeds) {
  // The filter must also exclude *seed* vertices of the first category.
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  KosrOptions options;
  options.algorithm = Algorithm::kPruning;
  options.filter = [](uint32_t slot, VertexId v) {
    return slot != 1 || v == Figure1::c;  // only mall c may start the route
  };
  auto result = QueryNoSource(engine, Figure1::t,
                              {Figure1::MA, Figure1::RE, Figure1::CI}, 5,
                              options);
  for (const auto& route : result.routes) {
    EXPECT_EQ(route.witness.front(), Figure1::c);
  }
  ASSERT_FALSE(result.routes.empty());
  // c -> b(5) -> d(3) -> t(4) = 12.
  EXPECT_EQ(result.routes[0].cost, 12);
}

class DiskFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kosr_gap_test_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(DiskFilterTest, QueryFromDiskHonorsPreferenceFilter) {
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  engine.WriteDiskStore(dir_.string());
  DiskLabelStore store(dir_.string());

  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 3};
  KosrOptions options;
  options.filter = [](uint32_t slot, VertexId v) {
    return slot != 2 || v == Figure1::e;  // only restaurant e
  };
  auto disk = KosrEngine::QueryFromDisk(store, query, options);
  auto mem = engine.Query(query, options);
  ASSERT_EQ(disk.routes.size(), mem.routes.size());
  ASSERT_FALSE(disk.routes.empty());
  EXPECT_EQ(disk.routes[0].cost, 21);  // <s,a,e,d,t>
  for (size_t i = 0; i < disk.routes.size(); ++i) {
    EXPECT_EQ(disk.routes[i].witness, mem.routes[i].witness);
  }
}

TEST(GspEdgeCaseTest, RepeatedCategoryAndSelfService) {
  // The same category twice in a row: one vertex may serve both visits.
  Figure1 fig = MakeFigure1();
  auto route = RunGsp(fig.graph, fig.categories, {Figure1::MA, Figure1::MA},
                      Figure1::s, Figure1::t);
  ASSERT_TRUE(route.has_value());
  // Best double-mall visit: s->c (10), stay at c, c->d->t (7) = 17.
  EXPECT_EQ(route->cost, 17);
  EXPECT_EQ(route->witness.size(), 4u);
  EXPECT_EQ(route->witness[1], Figure1::c);
  EXPECT_EQ(route->witness[1], route->witness[2]);
}

TEST(GspEdgeCaseTest, SourceInFirstCategory) {
  // Source vertex that itself carries the first category still needs to
  // "visit" it — which it can do at zero cost (r1 can equal the source
  // position boundary case: paper requires 0 < r1, so the visit vertex is
  // distinct in position but may be the same vertex only if revisited).
  Figure1 fig = MakeFigure1();
  auto route = RunGsp(fig.graph, fig.categories, {Figure1::MA}, Figure1::a,
                      Figure1::t);
  ASSERT_TRUE(route.has_value());
  // a is itself a mall: dis(a,a)=0 + dis(a,t)=12.
  EXPECT_EQ(route->cost, 12);
}

TEST(GspEdgeCaseTest, AgreesWithEngineOnGrids) {
  Graph g = MakeGridRoadNetwork(15, 15, /*seed=*/55);
  CategoryTable cats = CategoryTable::Uniform(g.num_vertices(), 20, 56);
  KosrEngine engine(g, cats);
  engine.BuildIndexes();
  std::mt19937_64 rng(57);
  std::uniform_int_distribution<VertexId> pick(0, g.num_vertices() - 1);
  for (int round = 0; round < 8; ++round) {
    VertexId s = pick(rng), t = pick(rng);
    CategorySequence seq = RandomCategorySequence(cats, 3, rng);
    auto gsp = engine.QueryGsp(s, t, seq);
    auto kosr = engine.Query({s, t, seq, 1});
    if (kosr.routes.empty()) {
      EXPECT_FALSE(gsp.has_value());
    } else {
      ASSERT_TRUE(gsp.has_value());
      EXPECT_EQ(gsp->cost, kosr.routes[0].cost) << "round " << round;
    }
  }
}

TEST(OptionPlumbingTest, TimeBudgetReportsTimeout) {
  // A zero-ish time budget must abort and flag, not crash or loop.
  auto inst = testing::MakeRandomInstance(60, 320, 3, 702);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  KosrQuery query{0, 59, {0, 1, 2}, 500};
  for (Algorithm algo :
       {Algorithm::kKpne, Algorithm::kPruning, Algorithm::kStar}) {
    KosrOptions options;
    options.algorithm = algo;
    options.max_examined_routes = 64;
    auto result = engine.Query(query, options);
    EXPECT_TRUE(result.stats.timed_out || result.routes.size() == 500)
        << static_cast<int>(algo);
    EXPECT_LE(result.stats.examined_routes, 64u + 1)
        << static_cast<int>(algo);
  }
}

TEST(OptionPlumbingTest, ReconstructionWorksInDijkstraMode) {
  // Without built indexes, paths fall back to Dijkstra unpacking.
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  KosrOptions options;
  options.nn_mode = NnMode::kDijkstra;
  options.reconstruct_paths = true;
  auto result = engine.Query(
      {Figure1::s, Figure1::t, {Figure1::MA, Figure1::RE, Figure1::CI}, 1},
      options);
  ASSERT_EQ(result.routes.size(), 1u);
  EXPECT_EQ(result.routes[0].path,
            (std::vector<VertexId>{Figure1::s, Figure1::a, Figure1::b,
                                   Figure1::d, Figure1::t}));
}

}  // namespace
}  // namespace kosr
