// Crash-recovery harness (ISSUE 9 tentpole): spawns a real `kosr_cli serve`
// child over pipes, drives updates through the newline protocol, kills the
// process at each durability failpoint (KOSR_FAILPOINTS=...=crash makes the
// child std::_Exit mid-persistence-step), restarts it against the same
// journal directory, and asserts the recovered engine state is
// byte-identical to an oracle rebuild that applies exactly the journaled
// records.
//
// Needs the CLI binary path: `crash_recovery_test --cli <path>` (CTest
// passes $<TARGET_FILE:kosr_cli>) or the KOSR_CLI environment variable;
// without either, every test skips.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/durability/checkpoint.h"
#include "src/durability/journal.h"
#include "src/graph/io.h"
#include "src/net/client.h"
#include "src/net/frame.h"
#include "src/util/failpoint.h"
#include "tests/test_util.h"

// Set by main() from --cli or $KOSR_CLI (outside the anonymous namespace so
// main can reach it).
static std::string g_cli_path;  // NOLINT(runtime/string)

namespace kosr {
namespace {

namespace fs = std::filesystem;
using durability::JournalRecord;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// One serve child on stdin/stdout pipes.
class ServeChild {
 public:
  ~ServeChild() {
    CloseStdin();
    if (out_ != nullptr) fclose(out_);
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      int status = 0;
      waitpid(pid_, &status, 0);
    }
  }

  /// Launches `kosr_cli serve` in `dir` (which must hold graph.gr /
  /// cats.txt / idx.bin). `failpoints` becomes KOSR_FAILPOINTS in the
  /// child; `extra_args` append to the serve command line.
  void Start(const std::string& dir, const std::string& failpoints,
             const std::vector<std::string>& extra_args) {
    int to_child[2];
    int from_child[2];
    ASSERT_EQ(pipe(to_child), 0);
    ASSERT_EQ(pipe(from_child), 0);
    pid_ = fork();
    ASSERT_GE(pid_, 0) << "fork: " << std::strerror(errno);
    if (pid_ == 0) {
      // Child: wire the pipes, arm failpoints, exec the CLI.
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      if (chdir(dir.c_str()) != 0) _exit(120);
      if (failpoints.empty()) {
        unsetenv("KOSR_FAILPOINTS");
      } else {
        setenv("KOSR_FAILPOINTS", failpoints.c_str(), 1);
      }
      std::vector<std::string> args = {g_cli_path,     "serve",
                                       "--graph",      "graph.gr",
                                       "--categories", "cats.txt",
                                       "--indexes",    "idx.bin"};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(g_cli_path.c_str(), argv.data());
      _exit(121);
    }
    close(to_child[0]);
    close(from_child[1]);
    stdin_fd_ = to_child[1];
    out_ = fdopen(from_child[0], "r");
    ASSERT_NE(out_, nullptr);
  }

  /// Reads one response line (nullopt on EOF — the child died).
  std::optional<std::string> ReadLine() {
    char* line = nullptr;
    size_t cap = 0;
    ssize_t n = getline(&line, &cap, out_);
    if (n < 0) {
      free(line);
      return std::nullopt;
    }
    std::string result(line, static_cast<size_t>(n));
    free(line);
    while (!result.empty() &&
           (result.back() == '\n' || result.back() == '\r')) {
      result.pop_back();
    }
    return result;
  }

  /// Writes one request line. Returns false when the pipe is broken (the
  /// child crashed) — SIGPIPE is ignored process-wide.
  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t off = 0;
    while (off < framed.size()) {
      ssize_t n = write(stdin_fd_, framed.data() + off, framed.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Request/response in lockstep; nullopt when the child died first.
  std::optional<std::string> Request(const std::string& line) {
    if (!SendLine(line)) return std::nullopt;
    return ReadLine();
  }

  void CloseStdin() {
    if (stdin_fd_ >= 0) {
      close(stdin_fd_);
      stdin_fd_ = -1;
    }
  }

  void Signal(int signo) { kill(pid_, signo); }

  /// Waits for the child and returns its raw waitpid status.
  int Wait() {
    int status = 0;
    EXPECT_EQ(waitpid(pid_, &status, 0), pid_);
    pid_ = -1;
    return status;
  }

  /// Waits and asserts a normal exit with `code`.
  void ExpectExit(int code) {
    int status = Wait();
    ASSERT_TRUE(WIFEXITED(status))
        << "child did not exit normally, status=" << status;
    EXPECT_EQ(WEXITSTATUS(status), code);
  }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  FILE* out_ = nullptr;
};

/// Scratch dir with the serving inputs (graph.gr, cats.txt, idx.bin) and an
/// in-process twin of the instance the child serves, used to build recovery
/// oracles.
class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (g_cli_path.empty()) {
      GTEST_SKIP() << "no --cli path and no KOSR_CLI in the environment";
    }
    dir_ = (fs::temp_directory_path() /
            ("kosr_crash_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()
                     ->name()) +
             "_" + std::to_string(getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    inst_ = testing::MakeRandomInstance(60, 240, 4, 1234);
    SaveDimacsGraph(inst_.graph, dir_ + "/graph.gr");
    SaveCategories(inst_.categories, dir_ + "/cats.txt");
    KosrEngine engine(inst_.graph, inst_.categories);
    engine.BuildIndexes();
    std::ofstream out(dir_ + "/idx.bin", std::ios::binary);
    engine.SaveIndexes(out);
  }

  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  std::vector<std::string> JournalArgs(
      const std::string& policy = "always") const {
    return {"--journal", "jdir", "--fsync-policy", policy};
  }

  /// Deterministic pseudo-random update lines. `edges_only` restricts to
  /// edge verbs (the batch-window scenario buffers edges; a category verb
  /// would force an early flush).
  std::vector<std::string> RandomUpdateLines(size_t count, uint64_t seed,
                                             bool edges_only = false) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<uint32_t> vertex(0, 59);
    std::uniform_int_distribution<uint32_t> weight(1, 100);
    std::uniform_int_distribution<uint32_t> category(0, 3);
    std::uniform_int_distribution<int> verb(0, edges_only ? 3 : 4);
    std::vector<std::string> lines;
    lines.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      std::ostringstream os;
      uint32_t u = vertex(rng);
      uint32_t v = vertex(rng);
      if (u == v) v = (v + 1) % 60;
      switch (verb(rng)) {
        case 0:
          os << "ADD_EDGE " << u << ' ' << v << ' ' << weight(rng);
          break;
        case 1:
        case 2:  // Bias toward SET_EDGE: it exercises increase repair.
          os << "SET_EDGE " << u << ' ' << v << ' ' << weight(rng);
          break;
        case 3:
          os << "REMOVE_EDGE " << u << ' ' << v;
          break;
        default:
          os << (i % 2 == 0 ? "ADD_CAT " : "REMOVE_CAT ") << u << ' '
             << category(rng);
          break;
      }
      lines.push_back(os.str());
    }
    return lines;
  }

  std::vector<JournalRecord> ScanJournal() const {
    return durability::UpdateJournal::Scan(dir_ + "/jdir/journal.log")
        .records;
  }

  /// Oracle: a fresh engine with `records` applied through the same entry
  /// points recovery uses, serialized with SaveIndexes — what the restarted
  /// child's state must equal byte for byte.
  std::string OracleBytes(const std::vector<JournalRecord>& records) const {
    KosrEngine oracle(inst_.graph, inst_.categories);
    oracle.BuildIndexes();
    for (const JournalRecord& r : records) {
      switch (r.type) {
        case JournalRecord::Type::kAddOrDecreaseEdge:
          oracle.AddOrDecreaseEdge(r.a, r.b, r.w);
          break;
        case JournalRecord::Type::kSetEdge:
          oracle.SetEdgeWeight(r.a, r.b, r.w);
          break;
        case JournalRecord::Type::kRemoveEdge:
          oracle.RemoveEdge(r.a, r.b);
          break;
        case JournalRecord::Type::kAddCategory:
          oracle.AddVertexCategory(r.a, r.b);
          break;
        case JournalRecord::Type::kRemoveCategory:
          oracle.RemoveVertexCategory(r.a, r.b);
          break;
      }
    }
    std::ostringstream os;
    oracle.SaveIndexes(os);
    return os.str();
  }

  /// Restarts a child on the same journal dir, forces a checkpoint, shuts
  /// it down cleanly, and returns the checkpointed index bytes — the
  /// recovered engine's exact SaveIndexes serialization.
  std::string RecoveredBytes(const std::string& policy = "always") {
    ServeChild child;
    child.Start(dir_, "", JournalArgs(policy));
    EXPECT_TRUE(child.ReadLine().has_value());  // ready line
    auto ack = child.Request("CHECKPOINT");
    EXPECT_TRUE(ack.has_value());
    if (ack.has_value()) {
      EXPECT_EQ(ack->rfind("OK CHECKPOINT", 0), 0u) << *ack;
    }
    auto bye = child.Request("QUIT");
    EXPECT_TRUE(bye.has_value());
    child.CloseStdin();
    child.ExpectExit(0);
    return ReadFileBytes(dir_ + "/jdir/checkpoint/indexes.bin");
  }

  /// Extracts the ephemeral port from a `serve --listen 127.0.0.1:0` ready
  /// line ("... listen=127.0.0.1:<port>"). 0 when absent.
  static uint16_t ListenPort(const std::string& ready_line) {
    const std::string key = "listen=127.0.0.1:";
    size_t pos = ready_line.find(key);
    if (pos == std::string::npos) return 0;
    return static_cast<uint16_t>(
        std::stoul(ready_line.substr(pos + key.size())));
  }

  std::string dir_;
  testing::TestInstance inst_;
};

TEST_F(CrashRecoveryTest, CleanShutdownRecoversEverything) {
  std::vector<std::string> lines = RandomUpdateLines(12, 7);
  std::vector<JournalRecord> acked;
  {
    ServeChild child;
    child.Start(dir_, "", JournalArgs());
    ASSERT_TRUE(child.ReadLine().has_value());  // ready line
    for (const std::string& line : lines) {
      auto response = child.Request(line);
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(response->rfind("OK ", 0), 0u) << *response;
    }
    // Every ack is on disk; capture the journal before the shutdown
    // checkpoint folds it in and truncates.
    acked = ScanJournal();
    ASSERT_EQ(acked.size(), lines.size());
    // SIGTERM: drain, final checkpoint, clean exit.
    child.Signal(SIGTERM);
    child.ExpectExit(0);
  }
  // The shutdown checkpoint covers all acked records; the journal is empty.
  EXPECT_TRUE(ScanJournal().empty());
  auto ckpt = durability::LoadCheckpoint(dir_ + "/jdir");
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->seq, lines.size());
  std::string oracle = OracleBytes(acked);
  EXPECT_EQ(RecoveredBytes(), oracle);
}

// Crash matrix: each case arms one durability failpoint as `crash`, drives
// the child into it, asserts the distinctive exit code, then verifies the
// restarted engine equals the oracle rebuilt from exactly the records that
// reached the journal.

TEST_F(CrashRecoveryTest, CrashAfterJournalAppend) {
  std::vector<std::string> warmup = RandomUpdateLines(6, 11);
  std::vector<JournalRecord> applied;
  {
    ServeChild child;
    child.Start(dir_, "", JournalArgs());
    ASSERT_TRUE(child.ReadLine().has_value());
    for (const std::string& line : warmup) {
      ASSERT_TRUE(child.Request(line).has_value());
    }
    // Capture the warmup records before the shutdown checkpoint truncates
    // them out of the journal.
    applied = ScanJournal();
    ASSERT_EQ(applied.size(), warmup.size());
    child.Signal(SIGTERM);
    child.ExpectExit(0);
  }
  {
    // Armed child: the first update's append writes the record, then dies
    // before fsync/apply/ack.
    ServeChild child;
    child.Start(dir_, "journal-after-append=crash", JournalArgs());
    ASSERT_TRUE(child.ReadLine().has_value());
    child.SendLine("SET_EDGE 1 2 77");
    EXPECT_FALSE(child.ReadLine().has_value());  // EOF: child crashed.
    child.ExpectExit(failpoint::kCrashExitCode);
  }
  // The unacked record hit the journal (write-ahead) and is recovered —
  // recovering MORE than was acked is allowed, losing acked data is not.
  std::vector<JournalRecord> tail = ScanJournal();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].seq, warmup.size() + 1);
  EXPECT_EQ(tail[0].a, 1u);
  EXPECT_EQ(tail[0].b, 2u);
  EXPECT_EQ(tail[0].w, 77u);
  applied.push_back(tail[0]);
  std::string oracle = OracleBytes(applied);
  EXPECT_EQ(RecoveredBytes(), oracle);
}

TEST_F(CrashRecoveryTest, CrashMidCheckpointWrite) {
  std::vector<std::string> lines = RandomUpdateLines(8, 13);
  {
    ServeChild child;
    child.Start(dir_, "checkpoint-mid-write=crash", JournalArgs());
    ASSERT_TRUE(child.ReadLine().has_value());
    for (const std::string& line : lines) {
      auto response = child.Request(line);
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(response->rfind("OK ", 0), 0u) << *response;
    }
    child.SendLine("CHECKPOINT");
    EXPECT_FALSE(child.ReadLine().has_value());
    child.ExpectExit(failpoint::kCrashExitCode);
  }
  // Died half way through writing checkpoint.tmp: no checkpoint was ever
  // published, the journal is intact, and recovery replays all of it.
  EXPECT_FALSE(durability::LoadCheckpoint(dir_ + "/jdir").has_value());
  std::vector<JournalRecord> records = ScanJournal();
  EXPECT_EQ(records.size(), lines.size());
  std::string oracle = OracleBytes(records);
  EXPECT_EQ(RecoveredBytes(), oracle);
}

TEST_F(CrashRecoveryTest, CrashBetweenCheckpointAndTruncate) {
  std::vector<std::string> lines = RandomUpdateLines(8, 17);
  {
    ServeChild child;
    child.Start(dir_, "checkpoint-before-truncate=crash", JournalArgs());
    ASSERT_TRUE(child.ReadLine().has_value());
    for (const std::string& line : lines) {
      ASSERT_TRUE(child.Request(line).has_value());
    }
    child.SendLine("CHECKPOINT");
    EXPECT_FALSE(child.ReadLine().has_value());
    child.ExpectExit(failpoint::kCrashExitCode);
  }
  // The checkpoint IS published but the journal was never truncated:
  // replay must skip the already-folded records (idempotent recovery).
  auto ckpt = durability::LoadCheckpoint(dir_ + "/jdir");
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->seq, lines.size());
  std::vector<JournalRecord> records = ScanJournal();
  EXPECT_EQ(records.size(), lines.size());
  std::string oracle = OracleBytes(records);
  EXPECT_EQ(RecoveredBytes(), oracle);
}

TEST_F(CrashRecoveryTest, CrashMidBatchApplyUnderBatchWindow) {
  std::vector<std::string> lines =
      RandomUpdateLines(6, 19, /*edges_only=*/true);
  {
    // Huge batch window: edge updates buffer (OK BUFFERED) until the
    // explicit FLUSH_UPDATES, whose apply hits the armed failpoint after
    // the journal sync — the acked-buffered records are already durable.
    ServeChild child;
    std::vector<std::string> args = JournalArgs();
    args.push_back("--update-batch-window");
    args.push_back("3600");
    child.Start(dir_, "batch-mid-apply=crash", args);
    ASSERT_TRUE(child.ReadLine().has_value());
    for (const std::string& line : lines) {
      auto response = child.Request(line);
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(response->rfind("OK BUFFERED", 0), 0u) << *response;
    }
    child.SendLine("FLUSH_UPDATES");
    EXPECT_FALSE(child.ReadLine().has_value());
    child.ExpectExit(failpoint::kCrashExitCode);
  }
  std::vector<JournalRecord> records = ScanJournal();
  EXPECT_EQ(records.size(), lines.size());
  std::string oracle = OracleBytes(records);
  EXPECT_EQ(RecoveredBytes(), oracle);
}

TEST_F(CrashRecoveryTest, RepeatedCrashRestartCyclesConverge) {
  // Several kill/recover rounds against one journal dir: each round adds
  // updates and dies without ceremony; recovery must stay exact.
  for (int round = 0; round < 3; ++round) {
    std::vector<std::string> lines =
        RandomUpdateLines(4, 100 + static_cast<uint64_t>(round));
    ServeChild child;
    child.Start(dir_, "", JournalArgs());
    ASSERT_TRUE(child.ReadLine().has_value());
    for (const std::string& line : lines) {
      ASSERT_TRUE(child.Request(line).has_value());
    }
    // Die without any checkpoint: SIGKILL, the harshest stop.
    child.Signal(SIGKILL);
    int status = child.Wait();
    ASSERT_TRUE(WIFSIGNALED(status));
  }
  // Each restart replays the full journal (no checkpoint was ever written:
  // RecoveredBytes below writes the first one).
  std::vector<JournalRecord> records = ScanJournal();
  EXPECT_EQ(records.size(), 12u);
  std::string oracle = OracleBytes(records);
  EXPECT_EQ(RecoveredBytes(), oracle);
}

TEST_F(CrashRecoveryTest, FsyncNeverStillRecoversAfterProcessKill) {
  // fsync-policy=never still write(2)s before acking: a process crash (not
  // power loss) loses nothing, because the kernel owns the pages.
  std::vector<std::string> lines = RandomUpdateLines(6, 23);
  {
    ServeChild child;
    child.Start(dir_, "", JournalArgs("never"));
    ASSERT_TRUE(child.ReadLine().has_value());
    for (const std::string& line : lines) {
      ASSERT_TRUE(child.Request(line).has_value());
    }
    child.Signal(SIGKILL);
    int status = child.Wait();
    ASSERT_TRUE(WIFSIGNALED(status));
  }
  std::vector<JournalRecord> records = ScanJournal();
  EXPECT_EQ(records.size(), lines.size());
  std::string oracle = OracleBytes(records);
  EXPECT_EQ(RecoveredBytes("never"), oracle);
}

// --- TCP serving legs (ISSUE 10 satellite): the same crash discipline must
// hold when the child serves real sockets instead of stdio. ---------------

TEST_F(CrashRecoveryTest, TcpSigtermDrainsPipelinedInFlightThenExitsClean) {
  ServeChild child;
  std::vector<std::string> args = JournalArgs();
  args.push_back("--listen");
  args.push_back("127.0.0.1:0");
  child.Start(dir_, "", args);
  auto ready = child.ReadLine();
  ASSERT_TRUE(ready.has_value());
  const uint16_t port = ListenPort(*ready);
  ASSERT_NE(port, 0) << *ready;

  // Known updates (exact oracle below) interleaved with queries, all
  // pipelined in one burst.
  std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> updates = {
      {1, 2, 77}, {3, 4, 5}, {10, 11, 42}, {7, 30, 9},
      {2, 1, 33}, {5, 9, 12}, {40, 41, 3}, {8, 20, 60},
  };
  std::string blob;
  uint64_t next_id = 1;
  size_t total = 0;
  for (auto [u, v, w] : updates) {
    net::AppendFrame(blob, next_id++, net::kVerbLine,
                     "SET_EDGE " + std::to_string(u) + " " +
                         std::to_string(v) + " " + std::to_string(w));
    ++total;
  }
  for (int i = 0; i < 12; ++i) {
    net::AppendFrame(blob, next_id++, net::kVerbLine,
                     "QUERY " + std::to_string(i) + " 59 0,1 3");
    ++total;
  }
  net::FramedClient client("127.0.0.1", port);
  client.SendRaw(blob);
  // One response proves the session is established and mid-burst, then
  // SIGTERM lands with most of the pipeline still in flight.
  auto first = client.Recv();
  ASSERT_TRUE(first.has_value());
  child.Signal(SIGTERM);
  // Drain contract: every pipelined frame is answered, then EOF.
  std::set<uint64_t> seen = {first->request_id};
  size_t answered = 1;
  while (auto response = client.Recv()) {
    EXPECT_EQ(response->status, net::kStatusOk) << response->payload;
    seen.insert(response->request_id);
    ++answered;
  }
  EXPECT_EQ(answered, total);
  EXPECT_EQ(seen.size(), total);  // every id answered exactly once
  bool clean = false;
  while (auto line = child.ReadLine()) {
    if (*line == "clean shutdown") clean = true;
  }
  EXPECT_TRUE(clean);
  child.ExpectExit(0);

  // The shutdown checkpoint folded every acked update in; a restart equals
  // an oracle applying the same updates in stream order.
  EXPECT_TRUE(ScanJournal().empty());
  auto ckpt = durability::LoadCheckpoint(dir_ + "/jdir");
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->seq, updates.size());
  KosrEngine oracle(inst_.graph, inst_.categories);
  oracle.BuildIndexes();
  for (auto [u, v, w] : updates) oracle.SetEdgeWeight(u, v, w);
  std::ostringstream os;
  oracle.SaveIndexes(os);
  EXPECT_EQ(RecoveredBytes(), os.str());
}

TEST_F(CrashRecoveryTest, TcpSigkillMidTrafficRecoversFromJournal) {
  ServeChild child;
  std::vector<std::string> args = JournalArgs();
  args.push_back("--listen");
  args.push_back("127.0.0.1:0");
  child.Start(dir_, "", args);
  auto ready = child.ReadLine();
  ASSERT_TRUE(ready.has_value());
  const uint16_t port = ListenPort(*ready);
  ASSERT_NE(port, 0) << *ready;

  net::FramedClient client("127.0.0.1", port);
  // Ten acked updates: write-ahead means an acked update is journaled.
  std::vector<std::string> acked_lines = RandomUpdateLines(10, 29);
  for (const std::string& line : acked_lines) {
    client.SendLine(line);
    auto ack = client.Recv();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->payload.rfind("OK ", 0), 0u) << ack->payload;
  }
  // Then mid-traffic murder: more updates and queries pipelined with
  // nothing read back, SIGKILL while they are on the wire or in flight.
  std::string blob;
  uint64_t next_id = 1000;
  for (const std::string& line : RandomUpdateLines(5, 31)) {
    net::AppendFrame(blob, next_id++, net::kVerbLine, line);
  }
  for (int i = 0; i < 8; ++i) {
    net::AppendFrame(blob, next_id++, net::kVerbLine, "QUERY 0 59 0,1 3");
  }
  client.SendRaw(blob);
  child.Signal(SIGKILL);
  int status = child.Wait();
  ASSERT_TRUE(WIFSIGNALED(status));

  // Recovery replays exactly what reached the journal: all ten acked
  // records, plus whichever tail updates the child journaled before dying.
  std::vector<JournalRecord> records = ScanJournal();
  ASSERT_GE(records.size(), acked_lines.size());
  ASSERT_LE(records.size(), acked_lines.size() + 5);
  std::string oracle = OracleBytes(records);
  EXPECT_EQ(RecoveredBytes(), oracle);
}

}  // namespace
}  // namespace kosr

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  signal(SIGPIPE, SIG_IGN);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--cli" && i + 1 < argc) {
      g_cli_path = argv[i + 1];
    }
  }
  if (g_cli_path.empty()) {
    const char* env = std::getenv("KOSR_CLI");
    if (env != nullptr) g_cli_path = env;
  }
  return RUN_ALL_TESTS();
}
