#ifndef KOSR_TESTS_TEST_UTIL_H_
#define KOSR_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <map>
#include <random>
#include <vector>

#include "src/graph/categories.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/util/types.h"

namespace kosr::testing {

/// Thread count the parallel-build tests exercise. CI pins KOSR_TEST_THREADS
/// to 4 so the batched build runs under the ASan/UBSan and TSan jobs with
/// real concurrency; locally it defaults to 4 as well.
inline uint32_t TestThreads() {
  const char* env = std::getenv("KOSR_TEST_THREADS");
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) return static_cast<uint32_t>(parsed);
  }
  return 4;
}

/// A random sparse instance with one category per vertex drawn uniformly.
struct TestInstance {
  Graph graph;
  CategoryTable categories;
};

inline TestInstance MakeRandomInstance(uint32_t n, uint64_t m,
                                       uint32_t num_categories,
                                       uint64_t seed) {
  TestInstance inst;
  inst.graph = MakeRandomGraph(n, m, seed);
  inst.categories = CategoryTable(n, num_categories);
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::uniform_int_distribution<uint32_t> pick(0, num_categories - 1);
  for (VertexId v = 0; v < n; ++v) inst.categories.Add(v, pick(rng));
  return inst;
}

/// All-pairs distances by repeated Dijkstra (test-sized graphs only).
class DistanceOracle {
 public:
  explicit DistanceOracle(const Graph& graph) : graph_(&graph) {}

  Cost operator()(VertexId s, VertexId t) {
    auto it = cache_.find(s);
    if (it == cache_.end()) {
      it = cache_.emplace(s, DijkstraAllDistances(*graph_, s)).first;
    }
    return it->second[t];
  }

 private:
  const Graph* graph_;
  std::map<VertexId, std::vector<Cost>> cache_;
};

/// Reference KOSR: enumerates every witness tuple in VC1 x ... x VCj and
/// returns all finite feasible costs, sorted ascending. Exponential — only
/// for tiny instances.
inline std::vector<Cost> BruteForceKosrCosts(const Graph& graph,
                                             const CategoryTable& categories,
                                             VertexId s, VertexId t,
                                             const CategorySequence& seq) {
  DistanceOracle dis(graph);
  std::vector<Cost> costs;
  std::vector<VertexId> pick(seq.size());
  auto recurse = [&](auto&& self, size_t i, Cost acc, VertexId prev) -> void {
    if (acc >= kInfCost) return;
    if (i == seq.size()) {
      Cost leg = dis(prev, t);
      if (leg < kInfCost) costs.push_back(acc + leg);
      return;
    }
    for (VertexId v : categories.Members(seq[i])) {
      Cost leg = dis(prev, v);
      if (leg < kInfCost) self(self, i + 1, acc + leg, v);
    }
  };
  recurse(recurse, 0, 0, s);
  std::sort(costs.begin(), costs.end());
  return costs;
}

/// First k reference costs (fewer if fewer feasible witnesses exist).
inline std::vector<Cost> BruteForceTopK(const Graph& graph,
                                        const CategoryTable& categories,
                                        VertexId s, VertexId t,
                                        const CategorySequence& seq,
                                        uint32_t k) {
  auto costs = BruteForceKosrCosts(graph, categories, s, t, seq);
  if (costs.size() > k) costs.resize(k);
  return costs;
}

/// Checks that a witness is structurally feasible: starts at s, ends at t,
/// interior vertices carry the right categories, and the claimed cost equals
/// the sum of shortest-path legs.
inline bool WitnessFeasible(const Graph& graph,
                            const CategoryTable& categories, VertexId s,
                            VertexId t, const CategorySequence& seq,
                            const std::vector<VertexId>& witness,
                            Cost claimed_cost) {
  if (witness.size() != seq.size() + 2) return false;
  if (witness.front() != s || witness.back() != t) return false;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (!categories.Has(witness[i + 1], seq[i])) return false;
  }
  DistanceOracle dis(graph);
  Cost total = 0;
  for (size_t i = 0; i + 1 < witness.size(); ++i) {
    Cost leg = dis(witness[i], witness[i + 1]);
    if (leg >= kInfCost) return false;
    total += leg;
  }
  return total == claimed_cost;
}

}  // namespace kosr::testing

#endif  // KOSR_TESTS_TEST_UTIL_H_
