#include "src/algo/witness_pool.h"

#include <gtest/gtest.h>

namespace kosr {
namespace {

TEST(WitnessPoolTest, AddAndMaterialize) {
  WitnessPool pool;
  uint32_t root = pool.Add(10, 0, 0, kNoWitness, 1);
  uint32_t child = pool.Add(20, 1, 5, root, 1);
  uint32_t grand = pool.Add(30, 2, 9, child, 2);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.Vertices(grand), (std::vector<VertexId>{10, 20, 30}));
  EXPECT_EQ(pool.Vertices(root), (std::vector<VertexId>{10}));
  EXPECT_EQ(pool[grand].cost, 9);
  EXPECT_EQ(pool[grand].x, 2u);
}

TEST(WitnessPoolTest, SharedPrefixes) {
  WitnessPool pool;
  uint32_t root = pool.Add(1, 0, 0, kNoWitness, 1);
  uint32_t a = pool.Add(2, 1, 3, root, 1);
  uint32_t b = pool.Add(3, 1, 4, root, 2);  // sibling shares the root
  EXPECT_EQ(pool.Vertices(a), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(pool.Vertices(b), (std::vector<VertexId>{1, 3}));
}

TEST(WitnessPoolTest, AncestorAt) {
  WitnessPool pool;
  uint32_t n0 = pool.Add(5, 0, 0, kNoWitness, 1);
  uint32_t n1 = pool.Add(6, 1, 2, n0, 1);
  uint32_t n2 = pool.Add(7, 2, 4, n1, 1);
  uint32_t n3 = pool.Add(8, 3, 6, n2, 1);
  EXPECT_EQ(pool.AncestorAt(n3, 3), n3);
  EXPECT_EQ(pool.AncestorAt(n3, 2), n2);
  EXPECT_EQ(pool.AncestorAt(n3, 1), n1);
  EXPECT_EQ(pool.AncestorAt(n3, 0), n0);
}

TEST(WitnessPoolTest, MutableXForReconsideration) {
  WitnessPool pool;
  uint32_t id = pool.Add(4, 1, 7, kNoWitness, 3);
  pool[id].x = kNoX;
  EXPECT_EQ(pool[id].x, kNoX);
}

}  // namespace
}  // namespace kosr
