// Property tests for the sealed flat SoA label store: on randomized graphs
// the flat view must answer Query / QueryWithHub / UnpackPath exactly like
// the nested-vector reference path — including after batches of dynamic
// updates in every direction (weight decreases, increases, and deletions:
// incremental run re-sealing, tail growth, in-place shrinks, emptied runs,
// and the garbage-triggered compaction) and after a snapshot save/load
// round trip.

#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/labeling/hub_labeling.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

using testing::DistanceOracle;

// The flat runs must mirror the nested vectors entry for entry, with the
// sentinel in place — this is the strongest equivalence statement, and every
// query-level check below follows from it.
void ExpectFlatMirrorsNested(const HubLabeling& hl) {
  for (VertexId v = 0; v < hl.num_vertices(); ++v) {
    for (bool in_side : {true, false}) {
      auto nested = in_side ? hl.Lin(v) : hl.Lout(v);
      LabelRun run = in_side ? hl.InRun(v) : hl.OutRun(v);
      ASSERT_EQ(run.size, nested.size()) << "vertex " << v;
      for (uint32_t i = 0; i < run.size; ++i) {
        EXPECT_EQ(run.RankAt(i), nested[i].hub_rank);
        EXPECT_EQ(run.DistAt(i), nested[i].dist);
        EXPECT_EQ(run.parent[i], nested[i].parent);
      }
      EXPECT_EQ(run.key[run.size], kSentinelKey);
    }
  }
}

// Flat Query/QueryWithHub agree with the nested reference merge for every
// pair, and UnpackPath yields a real path of exactly that cost.
void ExpectQueriesMatchReference(const Graph& graph, const HubLabeling& hl) {
  DistanceOracle dis(graph);
  uint32_t n = hl.num_vertices();
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      auto flat = hl.QueryWithHub(s, t);
      auto ref = hl.QueryWithHubReference(s, t);
      ASSERT_EQ(flat.has_value(), ref.has_value()) << s << "->" << t;
      if (flat.has_value()) {
        EXPECT_EQ(flat->first, ref->first) << s << "->" << t;
        EXPECT_EQ(flat->second, ref->second) << s << "->" << t;
        EXPECT_EQ(hl.Query(s, t), ref->first);
        // The labeling must also be *correct*, not merely self-consistent.
        EXPECT_EQ(flat->first, dis(s, t)) << s << "->" << t;
      } else {
        EXPECT_EQ(dis(s, t), kInfCost) << s << "->" << t;
      }
    }
  }
}

void ExpectUnpackedPathsValid(const Graph& graph, const HubLabeling& hl) {
  uint32_t n = hl.num_vertices();
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      std::vector<VertexId> path = hl.UnpackPath(s, t);
      Cost d = hl.Query(s, t);
      if (s == t) {
        ASSERT_EQ(path, std::vector<VertexId>{s});
        continue;
      }
      if (d >= kInfCost) {
        EXPECT_TRUE(path.empty());
        continue;
      }
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), t);
      Cost total = 0;
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        Cost leg = graph.ArcWeight(path[i], path[i + 1]);
        ASSERT_LT(leg, kInfCost)
            << path[i] << "->" << path[i + 1] << " is not an arc";
        total += leg;
      }
      EXPECT_EQ(total, d);
    }
  }
}

TEST(FlatLabelsTest, SealedStoreMatchesNestedOnRandomGraphs) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    Graph graph = MakeRandomGraph(60, 240, seed);
    HubLabeling hl;
    hl.Build(graph);
    ExpectFlatMirrorsNested(hl);
    ExpectQueriesMatchReference(graph, hl);
    ExpectUnpackedPathsValid(graph, hl);
  }
}

TEST(FlatLabelsTest, SealedStoreMatchesNestedOnGrid) {
  Graph graph = MakeGridRoadNetwork(7, 7, 5, 10, 100, 0);
  HubLabeling hl;
  hl.Build(graph);
  ExpectFlatMirrorsNested(hl);
  ExpectQueriesMatchReference(graph, hl);
  ExpectUnpackedPathsValid(graph, hl);
}

TEST(FlatLabelsTest, ParallelBuildSealsIdentically) {
  Graph graph = MakeRandomGraph(80, 400, 7);
  HubLabeling sequential;
  sequential.Build(graph, 1);
  HubLabeling parallel;
  parallel.Build(graph, testing::TestThreads());
  ExpectFlatMirrorsNested(parallel);
  for (VertexId s = 0; s < graph.num_vertices(); ++s) {
    for (VertexId t = 0; t < graph.num_vertices(); ++t) {
      EXPECT_EQ(parallel.Query(s, t), sequential.Query(s, t));
    }
  }
}

// A long stream of weight decreases exercises every re-seal path: in-place
// overwrites (distance improved, run length unchanged), tail appends (run
// grew a new hub), and eventually the garbage-triggered full compaction.
// After every update the store must stay equivalent to the nested truth,
// and at the end it must agree with a from-scratch rebuild.
TEST(FlatLabelsTest, EquivalentAfterDynamicDecreaseBatch) {
  std::mt19937_64 rng(99);
  Graph graph = MakeRandomGraph(50, 180, 17);
  HubLabeling hl;
  hl.Build(graph);
  std::uniform_int_distribution<VertexId> pick(0, graph.num_vertices() - 1);
  std::uniform_int_distribution<Weight> weight(1, 40);
  uint32_t applied = 0;
  for (uint32_t step = 0; step < 120; ++step) {
    VertexId u = pick(rng), v = pick(rng);
    Weight w = weight(rng);
    if (!graph.AddOrDecreaseArc(u, v, w)) continue;
    hl.OnEdgeDecreased(graph, u, v, w);
    ++applied;
    ExpectFlatMirrorsNested(hl);
  }
  ASSERT_GT(applied, 20u);  // the stream must actually exercise repairs
  ExpectQueriesMatchReference(graph, hl);
  ExpectUnpackedPathsValid(graph, hl);
  HubLabeling rebuilt;
  rebuilt.Build(graph);
  for (VertexId s = 0; s < graph.num_vertices(); ++s) {
    for (VertexId t = 0; t < graph.num_vertices(); ++t) {
      EXPECT_EQ(hl.Query(s, t), rebuilt.Query(s, t)) << s << "->" << t;
    }
  }
}

// Joining two previously disconnected components makes runs grow out of
// the shared empty block (an isolated sink has an empty Lin everywhere but
// itself) — the reseal path that repoints start[v] from slot 0 to an owned
// tail slot must keep the store equivalent.
TEST(FlatLabelsTest, EmptyRunsGrowAfterConnectingUpdate) {
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
  for (VertexId v = 0; v + 1 < 6; ++v) {
    edges.emplace_back(v, v + 1, 3);
    edges.emplace_back(v + 1, v, 3);
  }
  for (VertexId v = 6; v + 1 < 12; ++v) {
    edges.emplace_back(v, v + 1, 5);
    edges.emplace_back(v + 1, v, 5);
  }
  Graph graph = Graph::FromEdges(12, edges);
  HubLabeling hl;
  hl.Build(graph);
  // Cross-component pairs are unreachable before the bridging update.
  ASSERT_GE(hl.Query(0, 11), kInfCost);
  ASSERT_TRUE(graph.AddOrDecreaseArc(5, 6, 2));
  hl.OnEdgeDecreased(graph, 5, 6, 2);
  ExpectFlatMirrorsNested(hl);
  ExpectQueriesMatchReference(graph, hl);
  ExpectUnpackedPathsValid(graph, hl);
  HubLabeling rebuilt;
  rebuilt.Build(graph);
  for (VertexId s = 0; s < 12; ++s) {
    for (VertexId t = 0; t < 12; ++t) {
      EXPECT_EQ(hl.Query(s, t), rebuilt.Query(s, t)) << s << "->" << t;
    }
  }
}

// Mixed weakening stream (increases and deletions) exercises the re-seal
// paths the decrease batch cannot: in-place *shrinks* (a hub lost coverage
// of a vertex, the run got shorter) and runs emptied outright (a deletion
// disconnected a vertex). After every repair the store must mirror the
// nested truth, keep answering correctly, and match a canonical rebuild
// with the same order byte for byte.
TEST(FlatLabelsTest, EquivalentAfterIncreaseAndRemovalStream) {
  std::mt19937_64 rng(4242);
  Graph graph = MakeRandomGraph(45, 170, 29);
  HubLabeling hl;
  hl.Build(graph);
  std::vector<VertexId> order(hl.num_vertices());
  for (uint32_t r = 0; r < hl.num_vertices(); ++r) order[r] = hl.HubVertex(r);

  uint32_t applied = 0;
  for (uint32_t step = 0; step < 60; ++step) {
    auto edges = graph.ToEdges();
    if (edges.empty()) break;
    auto [u, v, w] = edges[rng() % edges.size()];
    if (step % 3 == 0) {
      auto old = graph.RemoveArc(u, v);
      ASSERT_TRUE(old.has_value());
      LabelRepairDelta delta =
          hl.OnEdgeRemoved(graph, u, v, static_cast<Weight>(*old));
      applied += delta.Empty() ? 0 : 1;
    } else {
      Weight raised = w + 1 + static_cast<Weight>(rng() % 60);
      auto old = graph.SetArcWeight(u, v, raised);
      ASSERT_TRUE(old.has_value());
      LabelRepairDelta delta =
          hl.OnEdgeIncreased(graph, u, v, static_cast<Weight>(*old));
      applied += delta.Empty() ? 0 : 1;
    }
    ExpectFlatMirrorsNested(hl);
  }
  ASSERT_GT(applied, 15u);  // the stream must actually trigger repairs
  ExpectQueriesMatchReference(graph, hl);
  ExpectUnpackedPathsValid(graph, hl);
  HubLabeling rebuilt;
  rebuilt.Build(graph, order);
  std::stringstream got, want;
  hl.Serialize(got);
  rebuilt.Serialize(want);
  EXPECT_EQ(got.str(), want.str());
}

// Deleting a vertex's every incident arc empties its label runs (only the
// self-entry can survive on one side) — the re-seal must repoint shrunken
// and emptied runs correctly and the store must stay equivalent.
TEST(FlatLabelsTest, RunsShrinkAndEmptyAfterIsolatingAVertex) {
  Graph graph = MakeGridRoadNetwork(5, 5, 3, 10, 100, 0);
  HubLabeling hl;
  hl.Build(graph);
  VertexId isolated = 12;  // grid center
  for (auto [u, v, w] : graph.ToEdges()) {
    if (u != isolated && v != isolated) continue;
    auto old = graph.RemoveArc(u, v);
    if (!old.has_value()) continue;  // already removed as a parallel
    hl.OnEdgeRemoved(graph, u, v, static_cast<Weight>(*old));
    ExpectFlatMirrorsNested(hl);
  }
  // The isolated vertex reaches nothing and is reached by nothing; at most
  // its own self-entries remain.
  for (VertexId t = 0; t < hl.num_vertices(); ++t) {
    if (t == isolated) continue;
    EXPECT_GE(hl.Query(isolated, t), kInfCost);
    EXPECT_GE(hl.Query(t, isolated), kInfCost);
  }
  EXPECT_LE(hl.Lin(isolated).size(), 1u);
  EXPECT_LE(hl.Lout(isolated).size(), 1u);
  ExpectQueriesMatchReference(graph, hl);
  ExpectUnpackedPathsValid(graph, hl);
}

TEST(FlatLabelsTest, EquivalentAfterSnapshotRoundTrip) {
  Graph graph = MakeRandomGraph(60, 260, 23);
  HubLabeling hl;
  hl.Build(graph);
  std::stringstream stream;
  hl.Serialize(stream);
  HubLabeling loaded = HubLabeling::Deserialize(stream);
  ExpectFlatMirrorsNested(loaded);
  ExpectQueriesMatchReference(graph, loaded);
  ExpectUnpackedPathsValid(graph, loaded);
  // And a decrease applied to the *loaded* labeling repairs its flat store
  // too (snapshot -> serve -> dynamic update is the service's real path).
  ASSERT_TRUE(graph.AddOrDecreaseArc(0, graph.num_vertices() - 1, 1));
  loaded.OnEdgeDecreased(graph, 0, graph.num_vertices() - 1, 1);
  ExpectFlatMirrorsNested(loaded);
  ExpectQueriesMatchReference(graph, loaded);
}

TEST(FlatLabelsTest, FromPartsSealsPartialWorkingSet) {
  Graph graph = MakeRandomGraph(40, 160, 31);
  HubLabeling full;
  full.Build(graph);
  // Working set: only Lout(3) and Lin(8) populated, like a disk-store load.
  std::vector<std::vector<LabelEntry>> in(40), out(40);
  out[3].assign(full.Lout(3).begin(), full.Lout(3).end());
  in[8].assign(full.Lin(8).begin(), full.Lin(8).end());
  std::vector<VertexId> order(full.num_vertices());
  for (uint32_t r = 0; r < full.num_vertices(); ++r) {
    order[r] = full.HubVertex(r);
  }
  HubLabeling partial =
      HubLabeling::FromParts(std::move(order), std::move(in), std::move(out));
  ExpectFlatMirrorsNested(partial);
  EXPECT_EQ(partial.Query(3, 8), full.Query(3, 8));
  // Unloaded vertices answer unreachable, with empty (sentinel-only) runs.
  EXPECT_EQ(partial.OutRun(5).size, 0u);
  EXPECT_EQ(partial.OutRun(5).key[0], kSentinelKey);
  EXPECT_GE(partial.Query(5, 8), kInfCost);
}

TEST(FlatLabelsTest, FlatBytesTracksStore) {
  Graph graph = MakeRandomGraph(30, 120, 41);
  HubLabeling hl;
  hl.Build(graph);
  // Lower bound: every entry appears in both arrays' SoA slots.
  EXPECT_GT(hl.FlatBytes(), hl.IndexBytes());
}

}  // namespace
}  // namespace kosr
