#include "src/graph/generators.h"

#include <gtest/gtest.h>

#include "src/graph/graph.h"

namespace kosr {
namespace {

// Table IV of the paper pins down several exact shortest distances for the
// Figure 1 graph; these validate our edge reconstruction.
TEST(Figure1Test, PaperDistances) {
  Figure1 fig = MakeFigure1();
  using F = Figure1;
  auto dis = [&](VertexId a, VertexId b) {
    return DijkstraDistance(fig.graph, a, b);
  };
  EXPECT_EQ(dis(F::s, F::a), 8);
  EXPECT_EQ(dis(F::s, F::c), 10);
  EXPECT_EQ(dis(F::s, F::b), 13);
  EXPECT_EQ(dis(F::s, F::e), 14);
  EXPECT_EQ(dis(F::s, F::d), 13);
  EXPECT_EQ(dis(F::s, F::t), 17);
  EXPECT_EQ(dis(F::a, F::b), 5);
  EXPECT_EQ(dis(F::a, F::e), 6);
  EXPECT_EQ(dis(F::a, F::t), 12);
  EXPECT_EQ(dis(F::a, F::s), 10);
  EXPECT_EQ(dis(F::a, F::c), 20);  // Example 3 of the paper
  EXPECT_EQ(dis(F::b, F::d), 3);
  EXPECT_EQ(dis(F::b, F::t), 7);
  EXPECT_EQ(dis(F::b, F::f), 27);
  EXPECT_EQ(dis(F::c, F::b), 5);
  EXPECT_EQ(dis(F::c, F::e), 17);
  EXPECT_EQ(dis(F::c, F::t), 7);
  EXPECT_EQ(dis(F::d, F::t), 4);
  EXPECT_EQ(dis(F::e, F::d), 3);
  EXPECT_EQ(dis(F::e, F::f), 10);
  EXPECT_EQ(dis(F::t, F::c), 15);
  EXPECT_EQ(dis(F::t, F::e), 10);
  EXPECT_EQ(dis(F::t, F::d), 13);
  EXPECT_EQ(dis(F::t, F::s), 25);
  EXPECT_EQ(dis(F::t, F::a), 33);
  EXPECT_EQ(dis(F::t, F::f), 20);
}

TEST(Figure1Test, Categories) {
  Figure1 fig = MakeFigure1();
  using F = Figure1;
  EXPECT_TRUE(fig.categories.Has(F::a, F::MA));
  EXPECT_TRUE(fig.categories.Has(F::c, F::MA));
  EXPECT_TRUE(fig.categories.Has(F::b, F::RE));
  EXPECT_TRUE(fig.categories.Has(F::e, F::RE));
  EXPECT_TRUE(fig.categories.Has(F::d, F::CI));
  EXPECT_TRUE(fig.categories.Has(F::f, F::CI));
  EXPECT_FALSE(fig.categories.Has(F::s, F::MA));
  EXPECT_EQ(fig.categories.CategorySize(F::MA), 2u);
  EXPECT_EQ(Figure1::VertexName(F::s), "s");
  EXPECT_EQ(Figure1::VertexName(F::t), "t");
}

TEST(GridRoadNetworkTest, SizeAndStrongConnectivity) {
  Graph g = MakeGridRoadNetwork(10, 12, /*seed=*/3);
  EXPECT_EQ(g.num_vertices(), 120u);
  // Every vertex reachable from corner 0 and vice versa.
  auto fwd = DijkstraAllDistances(g, 0);
  auto bwd = DijkstraAllDistances(g, 0, /*reverse=*/true);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(fwd[v], kInfCost) << v;
    EXPECT_LT(bwd[v], kInfCost) << v;
  }
}

TEST(GridRoadNetworkTest, AsymmetricWeights) {
  Graph g = MakeGridRoadNetwork(16, 16, /*seed=*/4, 10, 100,
                                /*highway_fraction=*/0);
  EXPECT_FALSE(g.IsSymmetric());
}

TEST(GridRoadNetworkTest, DeterministicForFixedSeed) {
  Graph a = MakeGridRoadNetwork(6, 6, 99);
  Graph b = MakeGridRoadNetwork(6, 6, 99);
  EXPECT_EQ(a.ToEdges(), b.ToEdges());
}

TEST(GridRoadNetworkTest, RejectsEmptyGrid) {
  EXPECT_THROW(MakeGridRoadNetwork(0, 5, 1), std::invalid_argument);
}

TEST(SmallWorldTest, UnitWeightsAndSmallDiameter) {
  Graph g = MakeSmallWorld(500, 2, 3.0, /*seed=*/1);
  for (const auto& [u, v, w] : g.ToEdges()) EXPECT_EQ(w, 1u);
  auto dist = DijkstraAllDistances(g, 0);
  Cost diameter = 0;
  for (Cost d : dist) {
    ASSERT_LT(d, kInfCost);
    diameter = std::max(diameter, d);
  }
  // Chords shrink the 500-cycle's radius (125 hops) dramatically.
  EXPECT_LE(diameter, 20);
}

TEST(RandomGraphTest, RespectsWeightBounds) {
  Graph g = MakeRandomGraph(100, 500, 8, 5, 9);
  for (const auto& [u, v, w] : g.ToEdges()) {
    EXPECT_GE(w, 5u);
    EXPECT_LE(w, 9u);
  }
}

TEST(CategoryTableTest, UniformAssignsEveryVertexOnce) {
  CategoryTable t = CategoryTable::Uniform(1000, 100, /*seed=*/5);
  EXPECT_EQ(t.num_categories(), 10u);
  uint64_t total = 0;
  for (CategoryId c = 0; c < t.num_categories(); ++c) {
    total += t.CategorySize(c);
  }
  EXPECT_EQ(total, 1000u);
  for (VertexId v = 0; v < 1000; ++v) {
    EXPECT_EQ(t.CategoriesOf(v).size(), 1u);
  }
}

TEST(CategoryTableTest, ZipfianIsSkewedAndLessSkewForLargerF) {
  auto spread = [](double f) {
    CategoryTable t = CategoryTable::Zipfian(20000, 50, f, /*seed=*/2);
    uint32_t min_size = UINT32_MAX, max_size = 0;
    for (CategoryId c = 0; c < t.num_categories(); ++c) {
      min_size = std::min(min_size, t.CategorySize(c));
      max_size = std::max(max_size, t.CategorySize(c));
    }
    return static_cast<double>(max_size) / std::max(1u, min_size);
  };
  EXPECT_GT(spread(1.0), spread(1.8));  // paper: larger f = less skew
}

TEST(CategoryTableTest, AddRemove) {
  CategoryTable t(5, 2);
  t.Add(3, 1);
  t.Add(3, 1);  // idempotent
  EXPECT_EQ(t.CategorySize(1), 1u);
  EXPECT_TRUE(t.Remove(3, 1));
  EXPECT_FALSE(t.Remove(3, 1));
  EXPECT_EQ(t.CategorySize(1), 0u);
}

TEST(CategoryTableTest, RandomSequenceDistinctNonEmpty) {
  CategoryTable t = CategoryTable::Uniform(500, 50, 3);
  std::mt19937_64 rng(4);
  auto seq = RandomCategorySequence(t, 5, rng);
  ASSERT_EQ(seq.size(), 5u);
  std::set<CategoryId> unique(seq.begin(), seq.end());
  EXPECT_EQ(unique.size(), 5u);
  for (CategoryId c : seq) EXPECT_GT(t.CategorySize(c), 0u);
}

}  // namespace
}  // namespace kosr
