#include "src/cli/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace kosr::cli {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kosr_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  int Run(const std::vector<std::string>& argv) {
    out_.str("");
    return RunCli(argv, out_);
  }

  std::filesystem::path dir_;
  std::ostringstream out_;
};

TEST(ParseArgsTest, SubcommandAndFlags) {
  Args args = ParseArgs({"query", "--k", "3", "--sequence", "1,2"});
  EXPECT_EQ(args.command, "query");
  EXPECT_EQ(args.GetOr("k", ""), "3");
  EXPECT_EQ(args.GetInt("k"), 3);
  EXPECT_EQ(args.GetIntOr("missing", 9), 9);
  EXPECT_FALSE(args.Get("missing").has_value());
}

TEST(ParseArgsTest, RejectsDanglingFlag) {
  EXPECT_THROW(ParseArgs({"query", "--k"}), std::invalid_argument);
  EXPECT_THROW(ParseArgs({"query", "positional"}), std::invalid_argument);
}

TEST(ParseArgsTest, GetIntRejectsGarbage) {
  Args args = ParseArgs({"x", "--k", "3abc"});
  EXPECT_THROW(args.GetInt("k"), std::invalid_argument);
}

TEST(ParseSequenceTest, ParsesAndValidates) {
  EXPECT_EQ(ParseSequence("3,1,4"), (std::vector<uint32_t>{3, 1, 4}));
  EXPECT_EQ(ParseSequence("7"), (std::vector<uint32_t>{7}));
  EXPECT_THROW(ParseSequence(""), std::invalid_argument);
  EXPECT_THROW(ParseSequence("1,,2"), std::invalid_argument);
}

TEST_F(CliTest, HelpAndUnknownCommand) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("Usage"), std::string::npos);
  EXPECT_EQ(Run({"frobnicate"}), 1);
  EXPECT_EQ(Run({}), 0);  // no args = help
}

TEST_F(CliTest, GenerateStatsBuildQueryPipeline) {
  // generate
  ASSERT_EQ(Run({"generate", "--type", "grid", "--rows", "12", "--cols", "12",
                 "--seed", "5", "--out", Path("g.gr"), "--categories-out",
                 Path("c.txt"), "--category-size", "16"}),
            0)
      << out_.str();
  EXPECT_NE(out_.str().find("144 vertices"), std::string::npos);

  // stats
  ASSERT_EQ(Run({"stats", "--graph", Path("g.gr"), "--categories",
                 Path("c.txt")}),
            0)
      << out_.str();
  EXPECT_NE(out_.str().find("vertices: 144"), std::string::npos);

  // build-index with dissection order + compressed output
  ASSERT_EQ(Run({"build-index", "--graph", Path("g.gr"), "--categories",
                 Path("c.txt"), "--order", "dissection", "--rows", "12",
                 "--cols", "12", "--out", Path("store"), "--compressed-out",
                 Path("labels.zbin")}),
            0)
      << out_.str();
  EXPECT_TRUE(std::filesystem::exists(Path("store") + "/meta.bin"));
  EXPECT_TRUE(std::filesystem::exists(Path("labels.zbin")));

  // query
  ASSERT_EQ(Run({"query", "--graph", Path("g.gr"), "--categories",
                 Path("c.txt"), "--source", "0", "--target", "143",
                 "--sequence", "0,1", "--k", "3", "--algorithm", "sk",
                 "--paths", "1"}),
            0)
      << out_.str();
  EXPECT_NE(out_.str().find("routes:"), std::string::npos);
  EXPECT_NE(out_.str().find("#1 cost"), std::string::npos);
}

TEST_F(CliTest, QueryAlgorithmsAgree) {
  ASSERT_EQ(Run({"generate", "--type", "random", "--vertices", "60",
                 "--edges", "360", "--seed", "9", "--out", Path("g.gr"),
                 "--categories-out", Path("c.txt"), "--category-size", "12"}),
            0);
  std::string first;
  for (const char* algo : {"kpne", "pk", "sk"}) {
    ASSERT_EQ(Run({"query", "--graph", Path("g.gr"), "--categories",
                   Path("c.txt"), "--source", "1", "--target", "50",
                   "--sequence", "0,2", "--k", "2", "--algorithm", algo}),
              0)
        << out_.str();
    std::string body = out_.str();
    std::string costs = body.substr(0, body.find("stats:"));
    if (first.empty()) {
      first = costs;
    } else {
      EXPECT_EQ(costs, first) << algo;
    }
  }
}

TEST_F(CliTest, QueryAppliesDynamicUpdateScript) {
  ASSERT_EQ(Run({"generate", "--type", "grid", "--rows", "8", "--cols", "8",
                 "--seed", "3", "--out", Path("g.gr"), "--categories-out",
                 Path("c.txt"), "--category-size", "8"}),
            0);
  auto query = [&] {
    return Run({"query", "--graph", Path("g.gr"), "--categories",
                Path("c.txt"), "--source", "0", "--target", "63",
                "--sequence", "0", "--k", "1", "--updates",
                Path("updates.txt")});
  };

  // A shortcut straight to the target must lower the best route; removing
  // it and raising a fresh detour must leave the baseline answer intact.
  {
    std::ofstream updates(Path("updates.txt"));
    updates << "# warm the repair path\n"
            << "SET_EDGE 0 63 1\n";
  }
  ASSERT_EQ(query(), 0) << out_.str();
  EXPECT_NE(out_.str().find("applied 1 updates"), std::string::npos)
      << out_.str();
  std::string with_shortcut = out_.str();

  {
    std::ofstream updates(Path("updates.txt"));
    updates << "SET_EDGE 0 63 1\n"
            << "REMOVE_EDGE 0 63\n"
            << "ADD_EDGE 0 63 9000\n"   // off every shortest path
            << "SET_EDGE 0 63 9500\n";  // raise it: repairs nothing
  }
  ASSERT_EQ(query(), 0) << out_.str();
  EXPECT_NE(out_.str().find("applied 4 updates"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str(), with_shortcut);

  // Malformed scripts fail loudly, not silently.
  {
    std::ofstream updates(Path("updates.txt"));
    updates << "FROBNICATE 1 2 3\n";
  }
  EXPECT_NE(query(), 0);
  EXPECT_NE(out_.str().find("unknown update verb"), std::string::npos)
      << out_.str();
}

TEST_F(CliTest, DijkstraModeWorks) {
  ASSERT_EQ(Run({"generate", "--type", "grid", "--rows", "8", "--cols", "8",
                 "--out", Path("g.gr"), "--categories-out", Path("c.txt"),
                 "--category-size", "8"}),
            0);
  EXPECT_EQ(Run({"query", "--graph", Path("g.gr"), "--categories",
                 Path("c.txt"), "--source", "0", "--target", "63",
                 "--sequence", "0", "--k", "1", "--nn", "dijkstra"}),
            0)
      << out_.str();
}

TEST_F(CliTest, ThreadedBuildMatchesSequentialSnapshot) {
  ASSERT_EQ(Run({"generate", "--type", "grid", "--rows", "10", "--cols", "10",
                 "--seed", "4", "--out", Path("g.gr"), "--categories-out",
                 Path("c.txt"), "--category-size", "10"}),
            0);
  // --threads flows through build-index; the written snapshots must be
  // byte-identical regardless of thread count.
  ASSERT_EQ(Run({"build-index", "--graph", Path("g.gr"), "--categories",
                 Path("c.txt"), "--indexes-out", Path("seq.bin")}),
            0)
      << out_.str();
  ASSERT_EQ(Run({"build-index", "--graph", Path("g.gr"), "--categories",
                 Path("c.txt"), "--threads", "4", "--indexes-out",
                 Path("par.bin")}),
            0)
      << out_.str();
  std::ifstream a(Path("seq.bin"), std::ios::binary);
  std::ifstream b(Path("par.bin"), std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());

  // Negative thread counts are rejected, not wrapped to huge unsigned.
  EXPECT_EQ(Run({"build-index", "--graph", Path("g.gr"), "--categories",
                 Path("c.txt"), "--threads", "-2"}),
            1);
  EXPECT_NE(out_.str().find("--threads"), std::string::npos);
}

TEST_F(CliTest, UsageErrorsReturnOne) {
  EXPECT_EQ(Run({"generate", "--type", "tesseract"}), 1);
  EXPECT_EQ(Run({"query", "--graph", Path("missing.gr"), "--source", "0",
                 "--target", "1", "--sequence", "0"}),
            2);  // runtime error: file missing
}

TEST_F(CliTest, ZipfianGeneration) {
  ASSERT_EQ(Run({"generate", "--type", "grid", "--rows", "10", "--cols", "10",
                 "--out", Path("g.gr"), "--categories-out", Path("c.txt"),
                 "--zipf", "1.2", "--num-categories", "10"}),
            0)
      << out_.str();
  EXPECT_NE(out_.str().find("10 categories"), std::string::npos);
}

}  // namespace
}  // namespace kosr::cli
