#include "src/algo/enumerator.h"

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/graph/generators.h"
#include "src/nn/find_nn.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

// Builds a hop-label provider over an engine's indexes for a query.
std::unique_ptr<HopLabelNnProvider> MakeProvider(const KosrEngine& engine,
                                                 const KosrQuery& query) {
  std::vector<const InvertedLabelIndex*> slots;
  for (CategoryId c : query.sequence) slots.push_back(&engine.inverted(c));
  return std::make_unique<HopLabelNnProvider>(&engine.labeling(), slots,
                                              query.target);
}

AlgoConfig MakeConfig(const KosrQuery& query) {
  AlgoConfig config;
  config.source = query.source;
  config.target = query.target;
  config.num_categories = static_cast<uint32_t>(query.sequence.size());
  config.k = query.k;
  return config;
}

TEST(EnumeratorTest, StreamsFigure1RoutesInOrder) {
  Figure1 fig = MakeFigure1();
  KosrEngine engine(fig.graph, fig.categories);
  engine.BuildIndexes();
  KosrQuery query{Figure1::s, Figure1::t,
                  {Figure1::MA, Figure1::RE, Figure1::CI}, 1};
  auto nn = MakeProvider(engine, query);
  PruningKosrEnumerator enumerator(MakeConfig(query), nn.get());

  std::vector<Cost> costs;
  while (auto route = enumerator.Next()) costs.push_back(route->cost);
  // All 8 feasible witnesses, cheapest first.
  ASSERT_EQ(costs.size(), 8u);
  EXPECT_EQ(costs[0], 20);
  EXPECT_EQ(costs[1], 21);
  EXPECT_EQ(costs[2], 22);
  EXPECT_TRUE(std::is_sorted(costs.begin(), costs.end()));
  // Exhausted stream stays exhausted.
  EXPECT_FALSE(enumerator.Next().has_value());
  EXPECT_FALSE(enumerator.stats().timed_out);
}

TEST(EnumeratorTest, IncrementalMatchesBatchQuery) {
  auto inst = testing::MakeRandomInstance(50, 260, 4, 404);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  KosrQuery query{2, 47, {0, 1, 3}, 10};
  KosrOptions options;
  options.algorithm = Algorithm::kPruning;  // same tie-breaking as the stream
  auto batch = engine.Query(query, options);

  auto nn = MakeProvider(engine, query);
  PruningKosrEnumerator enumerator(MakeConfig(query), nn.get());
  for (size_t i = 0; i < batch.routes.size(); ++i) {
    auto route = enumerator.Next();
    ASSERT_TRUE(route.has_value()) << i;
    EXPECT_EQ(route->cost, batch.routes[i].cost);
    EXPECT_EQ(route->witness, batch.routes[i].witness);
  }
}

TEST(EnumeratorTest, MarginalCostOfExtraRoutesIsSmall) {
  // The paper's scalability-in-k argument: after the first route, each
  // additional route examines only a handful more witnesses.
  auto inst = testing::MakeRandomInstance(60, 320, 4, 405);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  KosrQuery query{0, 59, {0, 1, 2}, 1};
  auto nn = MakeProvider(engine, query);
  PruningKosrEnumerator enumerator(MakeConfig(query), nn.get());

  ASSERT_TRUE(enumerator.Next().has_value());
  uint64_t after_first = enumerator.stats().examined_routes;
  for (int i = 0; i < 5; ++i) {
    if (!enumerator.Next().has_value()) break;
  }
  uint64_t after_six = enumerator.stats().examined_routes;
  // Five more routes must cost less than the initial search did.
  EXPECT_LT(after_six - after_first, after_first + 50);
}

TEST(EnumeratorTest, BudgetStopsStream) {
  auto inst = testing::MakeRandomInstance(60, 320, 4, 406);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  KosrQuery query{0, 59, {0, 1, 2}, 1000};
  AlgoConfig config = MakeConfig(query);
  config.max_examined = 1;
  auto nn = MakeProvider(engine, query);
  PruningKosrEnumerator enumerator(config, nn.get());
  EXPECT_FALSE(enumerator.Next().has_value());
  EXPECT_TRUE(enumerator.stats().timed_out);
}

}  // namespace
}  // namespace kosr
